// Quickstart: compute the optimal location-update threshold and paging plan
// for one mobile user, then print what the network should do.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "pcn/core/location_manager.hpp"

int main() {
  // A pedestrian in a city: moves to a neighboring cell in 5% of time
  // slots, receives a call in 1% of them.  A location update costs 100
  // cost units of signalling; polling one cell during paging costs 10.
  const pcn::MobilityProfile profile{/*move_prob=*/0.05,
                                     /*call_prob=*/0.01};
  const pcn::CostWeights weights{/*update_cost=*/100.0,
                                 /*poll_cost=*/10.0};

  const pcn::core::LocationManager manager(pcn::Dimension::kTwoD, profile,
                                           weights);

  std::printf("user profile: q = %.2f, c = %.2f (2-D hexagonal cells)\n\n",
              profile.move_prob, profile.call_prob);

  for (int delay : {1, 2, 3, 0}) {
    const pcn::DelayBound bound =
        delay == 0 ? pcn::DelayBound::unbounded() : pcn::DelayBound(delay);
    const pcn::core::LocationPlan plan = manager.plan(bound);

    std::printf("max paging delay %-9s -> update beyond ring %d; page %d "
                "subarea(s):",
                to_string(bound).c_str(), plan.threshold,
                plan.partition.subarea_count());
    for (int j = 0; j < plan.partition.subarea_count(); ++j) {
      std::printf(" {");
      for (std::size_t k = 0; k < plan.partition.rings(j).size(); ++k) {
        std::printf("%s r%d", k ? "," : "", plan.partition.rings(j)[k]);
      }
      std::printf(" }");
    }
    std::printf("\n  expected cost/slot: %.4f (update %.4f + paging %.4f), "
                "mean paging delay %.2f cycles\n",
                plan.expected_total(), plan.expected.update,
                plan.expected.paging, plan.expected_delay_cycles);
  }

  std::printf("\nNote the paper's headline: allowing just 2 polling cycles "
              "instead of 1 recovers most of the unbounded-delay saving.\n");
  return 0;
}
