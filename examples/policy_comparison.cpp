// Head-to-head comparison of the four update-policy families on one user
// profile: distance-based (this paper, analytically planned), movement-
// based and time-based (Bar-Noy et al. [3]), and the static location-area
// scheme (Xie et al. [8]).  All run side by side in one network over the
// same slots; prints measured costs, update/paging split, and paging delay.
//
// Usage: policy_comparison [q] [c] [slots]
#include <cstdio>
#include <cstdlib>

#include "pcn/core/location_manager.hpp"
#include "pcn/sim/network.hpp"

int main(int argc, char** argv) {
  const double q = argc > 1 ? std::atof(argv[1]) : 0.1;
  const double c = argc > 2 ? std::atof(argv[2]) : 0.01;
  const std::int64_t slots = argc > 3 ? std::atoll(argv[3]) : 300000;

  const pcn::Dimension dim = pcn::Dimension::kTwoD;
  const pcn::MobilityProfile profile{q, c};
  const pcn::CostWeights weights{100.0, 10.0};
  const pcn::DelayBound bound(3);

  pcn::sim::Network network(
      pcn::sim::NetworkConfig{dim, pcn::sim::SlotSemantics::kChainFaithful,
                              1701},
      weights);

  const pcn::core::LocationManager manager(dim, profile, weights);
  const pcn::core::LocationPlan plan = manager.plan(bound);

  struct Entry {
    const char* label;
    pcn::sim::TerminalId id;
  };
  const Entry entries[] = {
      {"distance (planned d*)",
       network.add_terminal(manager.make_terminal_spec(plan))},
      {"movement (M = d* + 1)",
       network.add_terminal(pcn::sim::make_movement_terminal(
           dim, profile, plan.threshold + 1, bound))},
      {"time (T = 50)",
       network.add_terminal(pcn::sim::make_time_terminal(dim, profile, 50))},
      {"location-area (R = 2)",
       network.add_terminal(pcn::sim::make_la_terminal(dim, profile, 2))},
  };

  std::printf("profile q=%.3f c=%.3f, U=%.0f V=%.0f, delay bound 3, "
              "%lld slots; planned d* = %d (expected %.4f/slot)\n\n",
              q, c, weights.update_cost, weights.poll_cost,
              static_cast<long long>(slots), plan.threshold,
              plan.expected_total());
  network.run(slots);

  std::printf("  %-22s | cost/slot | update%% | paging%% | updates/1k | "
              "cells/call | delay\n", "policy");
  std::printf("  -----------------------+-----------+---------+---------+"
              "------------+------------+------\n");
  for (const Entry& entry : entries) {
    const pcn::sim::TerminalMetrics& m = network.metrics(entry.id);
    const double cost = m.cost_per_slot();
    std::printf("  %-22s | %9.4f | %6.1f%% | %6.1f%% | %10.2f | %10.1f | "
                "%5.2f\n",
                entry.label, cost, 100.0 * m.update_cost / m.total_cost(),
                100.0 * m.paging_cost / m.total_cost(),
                1000.0 * static_cast<double>(m.updates) /
                    static_cast<double>(m.slots),
                static_cast<double>(m.polled_cells) /
                    static_cast<double>(m.calls ? m.calls : 1),
                m.calls ? m.paging_cycles.mean() : 0.0);
  }
  std::printf("\nThe distance policy pays updates only when the user "
              "actually strays, and pages a disk sized to its own "
              "threshold — the trade-off the paper optimizes.\n");
  return 0;
}
