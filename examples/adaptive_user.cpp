// Dynamic per-user threshold adaptation (paper §8's "dynamic schemes"):
// a commuter alternates between a fast phase (driving, q = 0.4) and a slow
// phase (office, q = 0.02).  An adaptive terminal estimates its own q and c
// with EWMAs and re-plans its distance threshold on-line; we print the
// estimate and threshold trajectory, and compare the long-run cost against
// (a) a static plan tuned to the *average* profile and (b) an oracle that
// switches plans at phase boundaries.
#include <cstdio>

#include "pcn/core/adaptive.hpp"
#include "pcn/core/location_manager.hpp"
#include "pcn/sim/network.hpp"

namespace {

constexpr pcn::Dimension kDim = pcn::Dimension::kTwoD;
constexpr pcn::CostWeights kWeights{100.0, 10.0};
constexpr double kCallProb = 0.01;
constexpr double kFastQ = 0.4;
constexpr double kSlowQ = 0.02;
constexpr pcn::sim::SimTime kPhaseLength = 25000;
constexpr int kPhases = 8;

std::unique_ptr<pcn::sim::MobilityModel> commuter_mobility() {
  return std::make_unique<pcn::sim::PhasedRandomWalk>(
      kDim, std::vector<pcn::sim::PhasedRandomWalk::Phase>{
                {kFastQ, kPhaseLength}, {kSlowQ, kPhaseLength}});
}

}  // namespace

int main() {
  const pcn::DelayBound bound(2);

  // --- adaptive terminal ---------------------------------------------------
  pcn::core::AdaptivePolicyConfig config;
  config.ewma_alpha = 0.003;
  config.replan_interval = 1000;

  pcn::sim::TerminalSpec adaptive;
  adaptive.call_prob = kCallProb;
  adaptive.mobility = commuter_mobility();
  adaptive.update_policy = std::make_unique<pcn::core::AdaptiveDistancePolicy>(
      kDim, kWeights, bound, pcn::MobilityProfile{0.1, kCallProb}, config);
  adaptive.paging_policy =
      std::make_unique<pcn::sim::SdfSequentialPaging>(kDim, bound);
  adaptive.knowledge_kind = pcn::sim::KnowledgeKind::kFixedDisk;
  adaptive.knowledge_radius = config.max_threshold;
  auto* controller = static_cast<pcn::core::AdaptiveDistancePolicy*>(
      adaptive.update_policy.get());

  // --- static terminal tuned to the time-averaged profile -------------------
  const pcn::MobilityProfile average{(kFastQ + kSlowQ) / 2, kCallProb};
  const pcn::core::LocationManager average_manager(kDim, average, kWeights);
  const pcn::core::LocationPlan average_plan = average_manager.plan(bound);

  pcn::sim::Network network(
      pcn::sim::NetworkConfig{kDim, pcn::sim::SlotSemantics::kChainFaithful,
                              31337},
      kWeights);
  const pcn::sim::TerminalId adaptive_id =
      network.add_terminal(std::move(adaptive));
  const pcn::sim::TerminalId static_id = network.add_terminal([&] {
    pcn::sim::TerminalSpec spec =
        average_manager.make_terminal_spec(average_plan);
    spec.mobility = commuter_mobility();  // same non-stationary walk
    return spec;
  }());

  // Oracle thresholds per phase, for reference.
  const int oracle_fast =
      pcn::core::LocationManager(kDim, {kFastQ, kCallProb}, kWeights)
          .plan(bound)
          .threshold;
  const int oracle_slow =
      pcn::core::LocationManager(kDim, {kSlowQ, kCallProb}, kWeights)
          .plan(bound)
          .threshold;

  std::printf("commuter: %d phases of %lld slots, q alternating %.2f/%.2f, "
              "c = %.2f, m <= 2\n",
              kPhases, static_cast<long long>(kPhaseLength), kFastQ, kSlowQ,
              kCallProb);
  std::printf("oracle thresholds: fast d* = %d, slow d* = %d; static "
              "average-profile d = %d\n\n",
              oracle_fast, oracle_slow, average_plan.threshold);
  std::printf("  phase | true q | q-hat  | c-hat  | adaptive d\n");
  std::printf("  ------+--------+--------+--------+-----------\n");

  for (int phase = 0; phase < kPhases; ++phase) {
    network.run(kPhaseLength);
    std::printf("  %5d | %6.3f | %6.4f | %6.4f | %4d\n", phase + 1,
                phase % 2 == 0 ? kFastQ : kSlowQ,
                controller->estimated_move_prob(),
                controller->estimated_call_prob(), controller->threshold());
  }

  const pcn::sim::TerminalMetrics& adaptive_metrics =
      network.metrics(adaptive_id);
  const pcn::sim::TerminalMetrics& static_metrics =
      network.metrics(static_id);
  std::printf("\nlong-run cost per slot: adaptive %.4f vs static-average "
              "%.4f (%+.1f%%), after %lld replans\n",
              adaptive_metrics.cost_per_slot(),
              static_metrics.cost_per_slot(),
              100.0 *
                  (adaptive_metrics.cost_per_slot() -
                   static_metrics.cost_per_slot()) /
                  static_metrics.cost_per_slot(),
              static_cast<long long>(controller->replans()));
  return 0;
}
