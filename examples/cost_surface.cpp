// Explore the cost surface C_T(d, m): prints the average total cost for
// every threshold distance and delay bound, marking each column's optimum.
// Useful to see the update/paging trade-off and the local minima that rule
// out gradient descent (paper §6).
//
// Usage: cost_surface [q] [c] [U] [V] [max_d]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "pcn/costs/cost_model.hpp"
#include "pcn/optimize/exhaustive.hpp"

int main(int argc, char** argv) {
  const double q = argc > 1 ? std::atof(argv[1]) : 0.05;
  const double c = argc > 2 ? std::atof(argv[2]) : 0.01;
  const double update_cost = argc > 3 ? std::atof(argv[3]) : 100.0;
  const double poll_cost = argc > 4 ? std::atof(argv[4]) : 10.0;
  const int max_d = argc > 5 ? std::atoi(argv[5]) : 15;

  const pcn::MobilityProfile profile{q, c};
  const pcn::CostWeights weights{update_cost, poll_cost};
  const std::vector<int> delays = {1, 2, 3, 5, 0};  // 0 = unbounded

  for (pcn::Dimension dim : {pcn::Dimension::kOneD, pcn::Dimension::kTwoD}) {
    const pcn::costs::CostModel model =
        pcn::costs::CostModel::exact(dim, profile, weights);

    std::printf("%s model: C_T(d, m) for q=%.3f c=%.3f U=%.0f V=%.0f\n",
                to_string(dim).c_str(), q, c, update_cost, poll_cost);
    std::printf("    d |");
    for (int m : delays) {
      std::printf("  m=%-9s", m == 0 ? "unbnd" : std::to_string(m).c_str());
    }
    std::printf("\n  ----+%s\n",
                std::string(13 * delays.size(), '-').c_str());

    std::vector<int> optima;
    for (int m : delays) {
      const pcn::DelayBound bound =
          m == 0 ? pcn::DelayBound::unbounded() : pcn::DelayBound(m);
      optima.push_back(
          pcn::optimize::exhaustive_search(model, bound, max_d).threshold);
    }

    for (int d = 0; d <= max_d; ++d) {
      std::printf("  %3d |", d);
      for (std::size_t i = 0; i < delays.size(); ++i) {
        const int m = delays[i];
        const pcn::DelayBound bound =
            m == 0 ? pcn::DelayBound::unbounded() : pcn::DelayBound(m);
        std::printf("  %8.4f%s", model.total_cost(d, bound),
                    optima[i] == d ? " *" : "  ");
      }
      std::printf("\n");
    }
    std::printf("  (* = column optimum d*)\n\n");
  }
  return 0;
}
