// Paging-channel capacity planning: the paper's "very limited wireless
// bandwidth" motivation made concrete.  For a growing per-cell user
// population, computes the per-cell signalling load each delay bound
// induces at its own optimal threshold, converts it to offered Erlangs,
// and dimensions the paging channel group for 1% blocking.
//
// The punchline is subtler than "more delay = fewer channels": going from
// m = 1 to m = 2 cuts the channel count (same d*, sequential paging polls
// fewer cells), but at m = 3 the *cost* optimizer moves to a larger
// threshold — trading update signalling for paging — and the channel
// demand goes back up.  Cost-optimal is not channel-minimal; dimensioning
// has to evaluate the actual plan, which is exactly what this module does.
#include <cstdio>

#include "pcn/capacity/paging_capacity.hpp"

int main() {
  const pcn::MobilityProfile profile{0.05, 0.01};
  const pcn::CostWeights weights{100.0, 10.0};
  const pcn::core::LocationManager manager(pcn::Dimension::kTwoD, profile,
                                           weights);
  const double slots_per_message = 1.0;
  const double target_blocking = 0.01;

  std::printf("paging-channel dimensioning, 2-D, q=%.2f c=%.2f, 1%% "
              "blocking target\n\n",
              profile.move_prob, profile.call_prob);
  std::printf("  users/cell | delay | d* | polls/slot | updates/slot | "
              "Erlangs | channels\n");
  std::printf("  -----------+-------+----+------------+--------------+"
              "---------+---------\n");

  for (double users : {50.0, 200.0, 500.0, 1000.0}) {
    for (int delay : {1, 2, 3, 0}) {
      const pcn::DelayBound bound =
          delay == 0 ? pcn::DelayBound::unbounded() : pcn::DelayBound(delay);
      const pcn::core::LocationPlan plan = manager.plan(bound);
      const pcn::capacity::CellLoad load =
          pcn::capacity::cell_load(manager, plan, users);
      const double erlangs =
          pcn::capacity::offered_erlangs(load, slots_per_message);
      const int channels =
          pcn::capacity::min_channels(erlangs, target_blocking);
      std::printf("  %10.0f | %5s | %2d | %10.3f | %12.4f | %7.2f | %8d\n",
                  users, delay == 0 ? "unbnd" : std::to_string(delay).c_str(),
                  plan.threshold, load.polls_per_slot,
                  load.updates_per_slot, erlangs, channels);
    }
    std::printf("\n");
  }

  std::printf("Reading: m=1 -> m=2 saves channels at the same d*; at m=3 "
              "the cost optimizer grows d* (cheaper updates, more polls), "
              "so the cost-optimal plan is not the channel-minimal one — "
              "dimension against the actual plan.\n");
  return 0;
}
