// Full PCN simulation: a population of heterogeneous users (pedestrians,
// drivers, desk workers) managed by one network, each with its analytically
// planned distance threshold and delay-bounded paging.  Prints per-user
// measured costs against the plans, the paging-delay distribution, and the
// aggregate signalling load.
#include <cstdio>
#include <vector>

#include "pcn/core/location_manager.hpp"
#include "pcn/sim/network.hpp"

namespace {

struct UserClass {
  const char* label;
  pcn::MobilityProfile profile;
  int delay_bound;
};

}  // namespace

int main() {
  const pcn::Dimension dim = pcn::Dimension::kTwoD;
  const pcn::CostWeights weights{100.0, 10.0};
  const std::int64_t slots = 200000;

  const std::vector<UserClass> classes = {
      {"desk worker (slow, chatty)", {0.01, 0.05}, 1},
      {"pedestrian (paper profile)", {0.05, 0.01}, 2},
      {"cyclist (moderate)", {0.15, 0.01}, 2},
      {"driver (fast, quiet)", {0.40, 0.005}, 3},
  };

  pcn::sim::Network network(
      pcn::sim::NetworkConfig{dim, pcn::sim::SlotSemantics::kChainFaithful,
                              7},
      weights);

  std::vector<pcn::core::LocationPlan> plans;
  std::vector<pcn::sim::TerminalId> ids;
  for (const UserClass& user : classes) {
    const pcn::core::LocationManager manager(dim, user.profile, weights);
    plans.push_back(manager.plan(pcn::DelayBound(user.delay_bound)));
    ids.push_back(network.add_terminal(
        manager.make_terminal_spec(plans.back())));
  }

  std::printf("simulating %lld slots for %zu users...\n\n",
              static_cast<long long>(slots), classes.size());
  network.run(slots);

  double aggregate_cost = 0.0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const UserClass& user = classes[i];
    const pcn::core::LocationPlan& plan = plans[i];
    const pcn::sim::TerminalMetrics& m = network.metrics(ids[i]);
    aggregate_cost += m.total_cost();

    std::printf("%-28s q=%.3f c=%.3f m<=%d\n", user.label,
                user.profile.move_prob, user.profile.call_prob,
                user.delay_bound);
    std::printf("  plan: d* = %d, expected cost/slot %.4f, expected delay "
                "%.2f cycles\n",
                plan.threshold, plan.expected_total(),
                plan.expected_delay_cycles);
    std::printf("  sim : cost/slot %.4f (%lld updates, %lld calls, %lld "
                "cells polled)\n",
                m.cost_per_slot(), static_cast<long long>(m.updates),
                static_cast<long long>(m.calls),
                static_cast<long long>(m.polled_cells));
    if (m.calls > 0) {
      std::printf("  paging delay distribution:");
      for (int cycle = 1; cycle <= m.paging_cycles.max_value(); ++cycle) {
        std::printf(" P(%d)=%.3f", cycle, m.paging_cycles.fraction(cycle));
      }
      std::printf("  (mean %.2f, bound %d)\n", m.paging_cycles.mean(),
                  user.delay_bound);
    }
    std::printf("\n");
  }

  std::printf("aggregate signalling cost: %.0f units over %lld slots "
              "(%.4f per user-slot)\n",
              aggregate_cost, static_cast<long long>(slots),
              aggregate_cost /
                  (static_cast<double>(slots) *
                   static_cast<double>(classes.size())));
  return 0;
}
