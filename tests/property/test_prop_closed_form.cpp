// Property suite: the paper's closed-form steady states agree with the
// numeric solvers to near machine precision over random (q, c, d) — the
// O(d) backward recurrence (the library's ground truth) and the dense-LU
// global-balance solve are two independent derivations, so a three-way
// match pins all of them down.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "pcn/markov/closed_form.hpp"
#include "pcn/markov/steady_state.hpp"
#include "support/property.hpp"

namespace pcn::proptest {
namespace {

constexpr double kTolerance = 1e-10;

ScenarioLimits wide_limits() {
  // The closed forms are exact for any (q, c) with c > 0; stress well
  // beyond the simulation suites' operating regime, including deep chains.
  ScenarioLimits limits;
  limits.max_q = 0.9;
  limits.max_c = 0.09;
  limits.max_threshold = 40;
  return limits;
}

std::optional<std::string> max_abs_diff_exceeds(
    const std::vector<double>& a, const std::vector<double>& b,
    const char* solver) {
  if (a.size() != b.size()) {
    return std::string("distribution size mismatch vs ") + solver;
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  if (worst <= kTolerance) return std::nullopt;
  char line[128];
  std::snprintf(line, sizeof line, "closed form vs %s differs by %.3e",
                solver, worst);
  return std::string(line);
}

std::optional<std::string> check_closed_form(
    const markov::ChainSpec& spec, const std::vector<double>& closed,
    double boundary, int threshold) {
  if (auto f = max_abs_diff_exceeds(
          closed, markov::solve_steady_state(spec, threshold),
          "recurrence")) {
    return f;
  }
  if (auto f = max_abs_diff_exceeds(
          closed, markov::solve_steady_state_dense(spec, threshold),
          "dense LU")) {
    return f;
  }
  if (std::abs(boundary - closed.back()) > 1e-12 * (1.0 + closed.back())) {
    return "O(1) boundary probability disagrees with the distribution";
  }
  return std::nullopt;
}

TEST(PropClosedForm, OneDimensionalMatchesRecurrenceAndDenseLu) {
  PropertyOptions options;
  options.limits = wide_limits();
  check_property("closed-form/1d", [](const Scenario& scenario) {
    return check_closed_form(
        markov::ChainSpec::one_dim(scenario.profile),
        markov::closed_form_1d(scenario.profile, scenario.threshold),
        markov::closed_form_1d_boundary_probability(scenario.profile,
                                                    scenario.threshold),
        scenario.threshold);
  }, options);
}

TEST(PropClosedForm, TwoDimensionalApproximateMatchesRecurrenceAndDenseLu) {
  PropertyOptions options;
  options.limits = wide_limits();
  check_property("closed-form/2d-approx", [](const Scenario& scenario) {
    return check_closed_form(
        markov::ChainSpec::two_dim_approx(scenario.profile),
        markov::closed_form_2d_approx(scenario.profile, scenario.threshold),
        markov::closed_form_2d_approx_boundary_probability(
            scenario.profile, scenario.threshold),
        scenario.threshold);
  }, options);
}

}  // namespace
}  // namespace pcn::proptest
