// Property suite: engine equivalence over the scenario space.  For any
// canonical distance-update scenario (q, c, d, m) in either geometry and
// under either slot semantics, the struct-of-arrays fast path must
// reproduce the reference polymorphic engine's per-terminal metrics
// *bit-identically* — integer counters, signalling bytes, floating-point
// costs and both histograms — at 1 thread and through the sharded path.
// The tier-1 suite (tests/sim/test_soa_engine.cpp) pins a fixed fleet;
// this sweep hunts the parameter corners (d = 0, m = 1, rates near the
// chain-semantics boundary) where a table-building bug would hide.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/fleet.hpp"
#include "support/property.hpp"

namespace pcn::proptest {
namespace {

constexpr int kTerminals = 6;
constexpr std::int64_t kSlots = 15000;

std::optional<std::string> check_engines_agree(const Scenario& scenario) {
  for (const sim::SlotSemantics semantics :
       {sim::SlotSemantics::kChainFaithful,
        sim::SlotSemantics::kIndependent}) {
    const std::vector<sim::TerminalMetrics> reference =
        run_distance_fleet(scenario, semantics, 1, kTerminals, kSlots,
                           sim::SimEngine::kReference);
    for (const int threads : {1, 4}) {
      const std::vector<sim::TerminalMetrics> soa =
          run_distance_fleet(scenario, semantics, threads, kTerminals,
                             kSlots, sim::SimEngine::kSoa);
      for (int i = 0; i < kTerminals; ++i) {
        const auto index = static_cast<std::size_t>(i);
        if (!metrics_identical(reference[index], soa[index])) {
          return std::optional<std::string>(
              "terminal " + std::to_string(i) + " diverged (" +
              (semantics == sim::SlotSemantics::kChainFaithful
                   ? "chain-faithful"
                   : "independent") +
              ", " + std::to_string(threads) + " threads)");
        }
      }
    }
  }
  return std::nullopt;
}

TEST(PropSoaVsReference, BitIdenticalMetricsAcrossTheScenarioSpace) {
  check_property("soa-vs-reference/bit-identical", check_engines_agree);
}

}  // namespace
}  // namespace pcn::proptest
