// Property suite: trace round-trips.  Recording a fleet with EventLog and
// replaying every trajectory through ScriptedMobility (same network seed,
// same attach order) must reproduce *identical* metrics — the event and
// walk RNG streams are split per purpose, so scripting the walk leaves
// the call stream untouched — and the replay must survive the sharded
// parallel path unchanged (scripted fleets are still lock-free terminals).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "pcn/trace/event_log.hpp"
#include "pcn/trace/scripted_mobility.hpp"
#include "support/fleet.hpp"
#include "support/property.hpp"

namespace pcn::proptest {
namespace {

constexpr int kTerminals = 4;
constexpr std::int64_t kSlots = 20000;

ScenarioLimits replay_limits() {
  ScenarioLimits limits;
  limits.max_threshold = 6;
  return limits;
}

std::optional<std::string> check_replay_round_trip(const Scenario& scenario) {
  // Record: an observer forces the source run single-threaded, which is
  // exactly what gives ScriptedMobility a stable slot-by-slot trajectory.
  sim::NetworkConfig config{scenario.dim, sim::SlotSemantics::kIndependent,
                            scenario.seed};
  sim::Network source(config, scenario.weights);
  trace::EventLog recording;
  source.set_observer(&recording);
  std::vector<sim::TerminalId> ids;
  for (int i = 0; i < kTerminals; ++i) {
    ids.push_back(source.add_terminal(
        sim::make_distance_terminal(scenario.dim, scenario.profile,
                                    scenario.threshold, scenario.bound)));
  }
  source.run(kSlots);

  std::vector<std::vector<geometry::Cell>> trajectories;
  for (const sim::TerminalId id : ids) {
    trajectories.push_back(recording.trajectory(id));
    if (trajectories.back().size() != static_cast<std::size_t>(kSlots)) {
      return std::optional<std::string>("trajectory length != slots run");
    }
  }

  const auto replay = [&](int threads) {
    sim::NetworkConfig replay_config = config;
    replay_config.threads = threads;
    sim::Network network(replay_config, scenario.weights);
    std::vector<sim::TerminalId> replay_ids;
    for (int i = 0; i < kTerminals; ++i) {
      sim::TerminalSpec spec = sim::make_distance_terminal(
          scenario.dim, scenario.profile, scenario.threshold, scenario.bound);
      spec.mobility = std::make_unique<trace::ScriptedMobility>(
          scenario.dim, geometry::Cell{},
          trajectories[static_cast<std::size_t>(i)]);
      replay_ids.push_back(network.add_terminal(std::move(spec)));
    }
    network.run(kSlots);
    std::vector<sim::TerminalMetrics> metrics;
    for (const sim::TerminalId id : replay_ids) {
      metrics.push_back(network.metrics(id));
    }
    return metrics;
  };

  const auto serial = replay(1);
  const auto sharded = replay(4);
  for (int i = 0; i < kTerminals; ++i) {
    const auto index = static_cast<std::size_t>(i);
    if (!metrics_identical(source.metrics(ids[index]), serial[index])) {
      return std::optional<std::string>(
          "replayed terminal " + std::to_string(i) +
          " diverged from the recording (1 thread)");
    }
    if (!metrics_identical(source.metrics(ids[index]), sharded[index])) {
      return std::optional<std::string>(
          "replayed terminal " + std::to_string(i) +
          " diverged from the recording (4 threads)");
    }
  }
  return std::nullopt;
}

TEST(PropReplay, RoundTripReproducesIdenticalMetricsThroughTheShardedPath) {
  PropertyOptions options;
  options.limits = replay_limits();
  check_property("replay/round-trip", check_replay_round_trip, options);
}

}  // namespace
}  // namespace pcn::proptest
