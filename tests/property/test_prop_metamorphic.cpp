// Property suite: metamorphic relations of the cost model, the
// partitioners and the threshold optimizers — statements that must hold
// for *every* parameter choice, checked over randomized scenarios:
//   * the SDF partition never exceeds the delay bound (subarea count,
//     worst-case and expected delay), and the DP-optimal partition is
//     never costlier than SDF under the same bound;
//   * C_u(d) is non-increasing in the threshold distance;
//   * the three cost accessors (breakdown, explicit partition, total)
//     are mutually consistent;
//   * exhaustive scan, simulated annealing and the near-optimal search
//     land on costs within tolerance of each other on the same model.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "pcn/costs/cost_model.hpp"
#include "pcn/costs/partition.hpp"
#include "pcn/optimize/annealing.hpp"
#include "pcn/optimize/exhaustive.hpp"
#include "pcn/optimize/near_optimal.hpp"
#include "support/property.hpp"

namespace pcn::proptest {
namespace {

/// A random distribution over 0..d from the scenario's own seed stream
/// (normalized exponentials — a Dirichlet(1, .., 1) draw).
std::vector<double> random_distribution(const Scenario& scenario) {
  ScenarioRng rng(scenario.seed ^ 0xd15717ull);
  std::vector<double> pi(static_cast<std::size_t>(scenario.threshold) + 1);
  double sum = 0.0;
  for (double& p : pi) {
    p = -std::log(1.0 - rng.raw().next_unit());
    sum += p;
  }
  for (double& p : pi) p /= sum;
  return pi;
}

TEST(PropMetamorphic, SdfPartitionRespectsTheDelayBound) {
  PropertyOptions options;
  options.limits.max_threshold = 12;
  options.limits.max_delay = 6;
  options.limits.allow_unbounded_delay = true;
  check_property("metamorphic/sdf-partition", [](const Scenario& scenario) {
    const int d = scenario.threshold;
    const DelayBound bound = scenario.bound;
    const costs::Partition sdf = costs::Partition::sdf(d, bound);
    if (sdf.subarea_count() != bound.subarea_count(d)) {
      return std::optional<std::string>("SDF subarea count != min(d+1, m)");
    }
    if (!bound.is_unbounded() && sdf.subarea_count() > bound.cycles()) {
      return std::optional<std::string>(
          "SDF worst-case delay exceeds the bound");
    }
    const std::vector<double> pi = random_distribution(scenario);
    const double expected_delay = sdf.expected_delay_cycles(pi);
    const double worst = static_cast<double>(sdf.subarea_count());
    if (expected_delay > worst + 1e-12 || expected_delay < 1.0 - 1e-12) {
      return std::optional<std::string>(
          "expected delay outside [1, subarea count]");
    }
    const costs::Partition optimal =
        costs::Partition::optimal(pi, scenario.dim, bound);
    if (optimal.expected_polled_cells(pi, scenario.dim) >
        sdf.expected_polled_cells(pi, scenario.dim) + 1e-9) {
      return std::optional<std::string>(
          "DP-optimal partition costlier than SDF");
    }
    return std::optional<std::string>();
  }, options);
}

TEST(PropMetamorphic, UpdateCostIsNonIncreasingInTheThreshold) {
  check_property("metamorphic/update-cost-monotone",
                 [](const Scenario& scenario) {
    const costs::CostModel model = costs::CostModel::exact(
        scenario.dim, scenario.profile, scenario.weights);
    for (int d = 0; d < 10; ++d) {
      const double here = model.update_cost(d);
      const double next = model.update_cost(d + 1);
      if (next > here + 1e-9 * (1.0 + here)) {
        char line[96];
        std::snprintf(line, sizeof line,
                      "C_u(%d)=%.6f < C_u(%d)=%.6f", d, here, d + 1, next);
        return std::optional<std::string>(line);
      }
    }
    return std::optional<std::string>();
  });
}

TEST(PropMetamorphic, CostAccessorsAreMutuallyConsistent) {
  check_property("metamorphic/cost-consistency",
                 [](const Scenario& scenario) {
    const costs::CostModel model = costs::CostModel::exact(
        scenario.dim, scenario.profile, scenario.weights);
    const int d = scenario.threshold;
    const DelayBound bound = scenario.bound;
    const costs::CostBreakdown breakdown = model.cost(d, bound);
    if (std::abs(breakdown.update - model.update_cost(d)) > 1e-12 ||
        std::abs(breakdown.paging - model.paging_cost(d, bound)) > 1e-12 ||
        std::abs(model.total_cost(d, bound) - breakdown.total()) > 1e-12) {
      return std::optional<std::string>("cost breakdown inconsistent");
    }
    const double via_partition =
        model.paging_cost(d, model.partition(d, bound));
    if (std::abs(via_partition - breakdown.paging) > 1e-12) {
      return std::optional<std::string>(
          "explicit-partition paging cost disagrees with the scheme's");
    }
    return std::optional<std::string>();
  });
}

TEST(PropMetamorphic, OptimizersAgreeOnTheOptimum) {
  check_property("metamorphic/optimizers", [](const Scenario& scenario) {
    constexpr int kMaxThreshold = 30;
    const costs::CostModel model = costs::CostModel::exact(
        scenario.dim, scenario.profile, scenario.weights);
    const DelayBound bound = scenario.bound;
    const optimize::Optimum exhaustive =
        optimize::exhaustive_search(model, bound, kMaxThreshold);

    optimize::AnnealingConfig annealing_config;
    annealing_config.max_threshold = kMaxThreshold;
    annealing_config.seed = scenario.seed | 1;
    const optimize::Optimum annealed =
        optimize::simulated_annealing(model, bound, annealing_config);
    // Exhaustive scan is the true minimum over the shared domain; the
    // annealer may only match it (its incumbent never beats the scan) and
    // must come within 2%.
    if (annealed.total_cost < exhaustive.total_cost - 1e-9) {
      return std::optional<std::string>(
          "annealing reported a cost below the exhaustive minimum");
    }
    if (annealed.total_cost > exhaustive.total_cost * 1.02 + 1e-9) {
      char line[96];
      std::snprintf(line, sizeof line, "annealing %.6f vs exhaustive %.6f",
                    annealed.total_cost, exhaustive.total_cost);
      return std::optional<std::string>(line);
    }

    const optimize::Optimum near =
        optimize::near_optimal_search(model, bound, kMaxThreshold);
    if (near.total_cost < exhaustive.total_cost - 1e-9) {
      return std::optional<std::string>(
          "near-optimal reported a cost below the exhaustive minimum");
    }
    // For 1-D the approximate chain *is* the exact chain, so d' = d*; in
    // 2-D the paper accepts missing d* by a ring, which stays within 10%.
    const double near_tolerance =
        scenario.dim == Dimension::kOneD ? 1e-9 : 0.10 * exhaustive.total_cost;
    if (near.total_cost > exhaustive.total_cost + near_tolerance + 1e-9) {
      char line[96];
      std::snprintf(line, sizeof line, "near-optimal %.6f vs exhaustive %.6f",
                    near.total_cost, exhaustive.total_cost);
      return std::optional<std::string>(line);
    }
    return std::optional<std::string>();
  });
}

}  // namespace
}  // namespace pcn::proptest
