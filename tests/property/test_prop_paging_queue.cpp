// Property suite for the daemon's bounded per-cell paging queue
// (pcn/daemon/paging_queue.hpp), checked against a transparent model of
// what the osmo-style queue promises:
//
//   * the depth never exceeds max_pending, and an enqueue at the bound is
//     rejected (kFull) or — under an eviction policy — admitted with an
//     explicit victim (kEvicted); never silently absorbed;
//   * one entry per identity: a second add of a pending terminal refreshes
//     (kRefreshed) instead of duplicating, and size() always equals the
//     number of distinct pending terminals;
//   * expired pages are never served: every ServedPage leaves within its
//     lifetime, every expired page is reported with expiry < slot;
//   * service is FIFO within a paging group, and every pop (serve or
//     expiry) comes off the front of its group — the checker keeps a
//     per-group deque of expected page ids and insists drains consume a
//     front segment of it, serves in order.
//
// Per-admission-policy oracles on the eviction path:
//
//   * drop_newest never evicts;
//   * drop_oldest only evicts group heads, never evicts a younger page
//     than it admits, and always picks the longest-waiting head (ties to
//     the lowest group index);
//   * priority_delay_bound never evicts a page with less SLA slack than
//     the admitted one, always picks the latest-deadline victim (ties to
//     the most recently scanned), and rejects only when every pending
//     deadline is strictly earlier than the incoming one.
//
// Queue parameters derive from the scenario (threshold -> capacity and
// groups, delay bound -> lifetime and SLA), so shrinking walks toward a
// minimal failing configuration; the op stream derives from the seed
// alone, and a failure prints the usual PCN-REPRO line.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "pcn/daemon/paging_queue.hpp"
#include "support/property.hpp"

namespace pcn::proptest {
namespace {

using pcn::daemon::AdmissionPolicy;
using pcn::daemon::BoundedPagingQueue;
using pcn::daemon::EnqueueResult;
using pcn::daemon::PagingQueueConfig;
using pcn::daemon::PendingPage;
using pcn::daemon::ServedPage;

struct ModelEntry {
  std::uint64_t terminal_id = 0;
  std::uint64_t page_id = 0;
  std::int64_t enqueued_slot = 0;
  std::int64_t deadline_slot = 0;
};

std::optional<std::string> check_paging_queue(const Scenario& scenario,
                                              AdmissionPolicy policy) {
  PagingQueueConfig config;
  config.max_pending = static_cast<std::size_t>(2 + scenario.threshold);
  config.groups = 1 + scenario.threshold % 4;
  config.lifetime_slots = scenario.bound.is_unbounded()
                              ? 8
                              : std::int64_t{2} * scenario.bound.cycles();
  config.admission = policy;
  // Exercise both deadline flavors: a real SLA bound when the scenario
  // has one, the lifetime fallback when it does not.
  config.sla_delay_slots =
      scenario.bound.is_unbounded() ? 0 : scenario.bound.cycles();
  BoundedPagingQueue queue(config);

  const auto deadline_for = [&](std::int64_t slot) {
    const std::int64_t bound = config.sla_delay_slots > 0
                                   ? config.sla_delay_slots
                                   : config.lifetime_slots;
    return slot + bound;
  };

  // The transparent model: who is pending, and per group, in what order.
  std::set<std::uint64_t> pending;
  std::vector<std::deque<ModelEntry>> groups(
      static_cast<std::size_t>(config.groups));
  const auto group_of = [&](std::uint64_t terminal) {
    return static_cast<std::size_t>(
        terminal % static_cast<std::uint64_t>(config.groups));
  };

  stats::Rng rng(scenario.seed);
  std::uint64_t next_page_id = 1;
  std::vector<ServedPage> served;
  std::vector<PendingPage> expired;

  for (std::int64_t slot = 0; slot < 60; ++slot) {
    // A burst of submits from a small terminal pool, so dedup, group
    // collisions and the capacity bound all trigger.
    const std::uint64_t submits = rng.next_below(7);
    for (std::uint64_t i = 0; i < submits; ++i) {
      PendingPage page;
      page.terminal_id = rng.next_below(12);
      page.page_id = next_page_id++;
      page.enqueued_slot = slot;
      const bool was_pending = pending.count(page.terminal_id) > 0;
      const bool was_full = queue.size() >= config.max_pending;
      PendingPage evicted{};
      const EnqueueResult result = queue.add(page, &evicted);
      switch (result) {
        case EnqueueResult::kQueued:
          if (was_pending) return "duplicate identity accepted as new";
          if (was_full) return "enqueue accepted past max_pending";
          pending.insert(page.terminal_id);
          groups[group_of(page.terminal_id)].push_back(
              {page.terminal_id, page.page_id, slot, deadline_for(slot)});
          break;
        case EnqueueResult::kRefreshed: {
          if (!was_pending) return "refresh of a terminal not pending";
          auto& group = groups[group_of(page.terminal_id)];
          for (ModelEntry& entry : group) {
            if (entry.terminal_id == page.terminal_id) {
              entry.deadline_slot =
                  std::max(entry.deadline_slot, deadline_for(slot));
            }
          }
          break;
        }
        case EnqueueResult::kFull: {
          if (was_pending) return "pending terminal rejected as full";
          if (!was_full) return "rejection below max_pending";
          if (policy == AdmissionPolicy::kDropOldest) {
            return "drop_oldest rejected instead of evicting";
          }
          if (policy == AdmissionPolicy::kPriorityDelayBound) {
            // Legal only when every pending page has strictly less
            // slack than the incoming one.
            for (const auto& group : groups) {
              for (const ModelEntry& entry : group) {
                if (entry.deadline_slot >= deadline_for(slot)) {
                  return "priority rejected although a pending page had "
                         "at least as much slack";
                }
              }
            }
          }
          break;
        }
        case EnqueueResult::kEvicted: {
          if (policy == AdmissionPolicy::kDropNewest) {
            return "drop_newest must never evict";
          }
          if (was_pending) {
            return "pending terminal triggered eviction instead of refresh";
          }
          if (!was_full) return "eviction below max_pending";
          // The victim must be a page the model holds.
          auto& victim_group = groups[group_of(evicted.terminal_id)];
          std::size_t victim_index = victim_group.size();
          for (std::size_t k = 0; k < victim_group.size(); ++k) {
            if (victim_group[k].terminal_id == evicted.terminal_id) {
              victim_index = k;
              break;
            }
          }
          if (victim_index == victim_group.size()) {
            return "evicted a page the model does not hold";
          }
          const ModelEntry victim = victim_group[victim_index];
          if (victim.page_id != evicted.page_id) {
            return "evicted page_id does not match the pending entry";
          }
          if (policy == AdmissionPolicy::kDropOldest) {
            if (victim_index != 0) {
              return "drop_oldest evicted a non-head page";
            }
            // Oracle: never evict a younger page than the one admitted.
            if (victim.enqueued_slot > slot) {
              return "drop_oldest evicted a younger page than it admitted";
            }
            // Exact choice: the longest-waiting head, ties to the
            // lowest group index.
            for (std::size_t g = 0; g < groups.size(); ++g) {
              if (groups[g].empty()) continue;
              const ModelEntry& head = groups[g].front();
              if (head.enqueued_slot < victim.enqueued_slot ||
                  (head.enqueued_slot == victim.enqueued_slot &&
                   g < group_of(evicted.terminal_id))) {
                return "drop_oldest did not evict the longest-waiting head";
              }
            }
          } else {  // kPriorityDelayBound
            // Oracle: never evict a page with less slack than the
            // admitted one.
            if (victim.deadline_slot < deadline_for(slot)) {
              return "priority evicted a page with less slack than the "
                     "admitted one";
            }
            // Exact choice: the latest deadline wins; among equals the
            // last in scan order (groups ascending, front to back).
            std::size_t best_group = groups.size();
            std::size_t best_index = 0;
            std::int64_t best_deadline = 0;
            for (std::size_t g = 0; g < groups.size(); ++g) {
              for (std::size_t k = 0; k < groups[g].size(); ++k) {
                if (best_group == groups.size() ||
                    groups[g][k].deadline_slot >= best_deadline) {
                  best_group = g;
                  best_index = k;
                  best_deadline = groups[g][k].deadline_slot;
                }
              }
            }
            if (best_group != group_of(evicted.terminal_id) ||
                best_index != victim_index) {
              return "priority did not evict the most-slack page";
            }
          }
          pending.erase(victim.terminal_id);
          victim_group.erase(victim_group.begin() +
                             static_cast<std::ptrdiff_t>(victim_index));
          pending.insert(page.terminal_id);
          groups[group_of(page.terminal_id)].push_back(
              {page.terminal_id, page.page_id, slot, deadline_for(slot)});
          break;
        }
      }
      if (queue.size() > config.max_pending) {
        return "depth exceeded max_pending";
      }
      if (queue.size() != pending.size()) {
        return "size() != distinct pending identities";
      }
      if (!queue.contains(page.terminal_id) &&
          result != EnqueueResult::kFull) {
        return "accepted page not reported by contains()";
      }
      if (queue.buffer_space() != config.max_pending - queue.size()) {
        return "buffer_space() inconsistent with size()";
      }
    }

    const int budget = static_cast<int>(rng.next_below(4));
    served.clear();
    expired.clear();
    queue.drain(slot, budget, &served, &expired);

    if (static_cast<int>(served.size()) > budget) {
      return "drain served more than the slot budget";
    }
    for (const ServedPage& page : served) {
      if (page.page.expiry_slot < slot) {
        return "expired page was served";
      }
      if (page.served_slot != slot) return "served_slot != drain slot";
    }
    for (const PendingPage& page : expired) {
      if (page.expiry_slot >= slot) {
        return "unexpired page reported as expired";
      }
    }

    // Every pop must come off the front of its group, serves in FIFO
    // order.  Count pops per group, take that prefix of the model deque,
    // and require (a) the popped page-id sets match, (b) the served
    // subsequence of each group preserves deque order.
    std::vector<std::vector<std::uint64_t>> popped(groups.size());
    std::vector<std::vector<std::uint64_t>> served_per_group(groups.size());
    for (const ServedPage& page : served) {
      popped[group_of(page.page.terminal_id)].push_back(page.page.page_id);
      served_per_group[group_of(page.page.terminal_id)].push_back(
          page.page.page_id);
    }
    for (const PendingPage& page : expired) {
      popped[group_of(page.terminal_id)].push_back(page.page_id);
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
      auto& model = groups[g];
      if (popped[g].size() > model.size()) {
        return "drain popped more pages than the group held";
      }
      std::vector<std::uint64_t> prefix;
      std::vector<std::uint64_t> prefix_in_order;
      for (std::size_t i = 0; i < popped[g].size(); ++i) {
        prefix.push_back(model[i].page_id);
        prefix_in_order.push_back(model[i].page_id);
      }
      std::vector<std::uint64_t> popped_sorted = popped[g];
      std::sort(popped_sorted.begin(), popped_sorted.end());
      std::sort(prefix.begin(), prefix.end());
      if (popped_sorted != prefix) {
        return "drain consumed pages out of front-segment order";
      }
      // Served pages of this group, in served-vector order, must be the
      // in-order subsequence of the consumed prefix (FIFO within group).
      std::size_t cursor = 0;
      for (const std::uint64_t page_id : served_per_group[g]) {
        while (cursor < prefix_in_order.size() &&
               prefix_in_order[cursor] != page_id) {
          ++cursor;
        }
        if (cursor == prefix_in_order.size()) {
          return "service broke FIFO order within a paging group";
        }
        ++cursor;
      }
      for (std::size_t i = 0; i < popped[g].size(); ++i) {
        pending.erase(model.front().terminal_id);
        model.pop_front();
      }
    }
    if (queue.size() != pending.size()) {
      return "size() diverged from the model after drain";
    }
  }
  return std::nullopt;
}

TEST(PropPagingQueue, BoundedDedupedFifoWithExpiry) {
  PropertyOptions options;
  options.scenarios = 40;
  check_property(
      "daemon/paging-queue",
      [](const Scenario& scenario) {
        return check_paging_queue(scenario, AdmissionPolicy::kDropNewest);
      },
      options);
}

TEST(PropPagingQueue, DropOldestAdmissionOracles) {
  PropertyOptions options;
  options.scenarios = 40;
  check_property(
      "daemon/paging-queue-drop-oldest",
      [](const Scenario& scenario) {
        return check_paging_queue(scenario, AdmissionPolicy::kDropOldest);
      },
      options);
}

TEST(PropPagingQueue, PriorityDelayBoundAdmissionOracles) {
  PropertyOptions options;
  options.scenarios = 40;
  check_property(
      "daemon/paging-queue-priority",
      [](const Scenario& scenario) {
        return check_paging_queue(scenario,
                                  AdmissionPolicy::kPriorityDelayBound);
      },
      options);
}

}  // namespace
}  // namespace pcn::proptest
