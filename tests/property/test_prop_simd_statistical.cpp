// Property suite gating the SIMD engine's *statistical* equivalence
// contract: over the randomized scenario space, a fleet run under
// SimEngine::kSimd must land inside the same confidence bands as the
// reference pair — C_u, C_v, C_T per slot against the CostModel
// predictions, mean paging delay against the SDF partition, and (where the
// chain is the exact law: 1-D, chain-faithful) a chi-square GOF of the
// ring-distance occupancy against p_{i,d}.  The engine draws from
// counter-based per-(terminal, slot) streams instead of the sequential
// ones, so a bitwise diff against the reference is meaningless; these
// oracles are the acceptance test that the fixed-point thresholds
// (error < 2^-32) and the stream re-keying leave the physics untouched.
// The same scenarios also pin thread-count determinism: 1-thread and
// 4-thread simd runs must agree bit-for-bit per terminal.
#include <gtest/gtest.h>

#include <cstdio>

#include "pcn/costs/cost_model.hpp"
#include "support/fleet.hpp"
#include "support/oracles.hpp"
#include "support/property.hpp"

namespace pcn::proptest {
namespace {

constexpr int kTerminals = 8;
constexpr std::int64_t kSlotsPerTerminal = 100000;
constexpr double kZ = 4.0;
constexpr double kGofAlpha = 1e-6;

std::optional<std::string> outside(const char* what, const Band& band,
                                   double measured) {
  if (band.contains(measured)) return std::nullopt;
  char line[160];
  std::snprintf(line, sizeof line, "%s = %.6f outside band %s", what,
                measured, to_string(band).c_str());
  return std::string(line);
}

/// Same modeling slacks as test_prop_sim_vs_chain.cpp: the gaps are
/// between the simulation physics and the chain model, not between
/// engines, so the simd engine inherits them unchanged.
double modeling_slack(const Scenario& scenario) {
  return 0.05 + 3.0 * scenario.profile.move_prob * scenario.profile.call_prob;
}

double ring_approximation_slack(const Scenario& scenario) {
  if (scenario.dim == Dimension::kOneD) return 0.0;
  return 0.03 + 0.25 * scenario.profile.move_prob;
}

std::optional<std::string> check_simd_against_model(
    const Scenario& scenario, sim::SlotSemantics semantics, double slack) {
  const auto single =
      run_distance_fleet(scenario, semantics, 1, kTerminals,
                         kSlotsPerTerminal, sim::SimEngine::kSimd);
  const auto sharded =
      run_distance_fleet(scenario, semantics, 4, kTerminals,
                         kSlotsPerTerminal, sim::SimEngine::kSimd);
  for (std::size_t i = 0; i < single.size(); ++i) {
    if (!metrics_identical(single[i], sharded[i])) {
      return "terminal " + std::to_string(i) +
             " simd metrics differ between 1 and 4 threads";
    }
  }

  FleetMetrics fleet;
  for (const sim::TerminalMetrics& metrics : single) {
    fleet.accumulate(metrics);
  }
  const costs::CostModel model = costs::CostModel::exact(
      scenario.dim, scenario.profile, scenario.weights);
  const CostBands bands = predicted_cost_bands(
      model, scenario.threshold, scenario.bound, fleet.slots, kZ);
  if (auto f = outside("C_u/slot", bands.update.widened(slack),
                       fleet.update_cost_per_slot())) {
    return f;
  }
  if (auto f = outside("C_v/slot", bands.paging.widened(slack),
                       fleet.paging_cost_per_slot())) {
    return f;
  }
  if (auto f = outside("C_T/slot", bands.total.widened(slack),
                       fleet.cost_per_slot())) {
    return f;
  }
  if (fleet.calls > 200) {
    if (auto f = outside("mean paging delay", bands.delay.widened(slack),
                         fleet.paging_cycles.mean())) {
      return f;
    }
  }
  if (semantics == sim::SlotSemantics::kChainFaithful &&
      scenario.dim == Dimension::kOneD) {
    const GofResult fit = occupancy_goodness_of_fit(
        model, scenario.threshold, fleet.ring_distance, kGofAlpha);
    if (!fit.accepted) {
      return "simd ring occupancy rejects the steady state: " +
             fit.describe();
    }
  }
  return std::nullopt;
}

TEST(PropSimdStatistical, ChainFaithfulMatchesCostModelAtAnyThreadCount) {
  check_property("simd-statistical/chain-faithful",
                 [](const Scenario& scenario) {
                   return check_simd_against_model(
                       scenario, sim::SlotSemantics::kChainFaithful,
                       ring_approximation_slack(scenario));
                 });
}

TEST(PropSimdStatistical, IndependentSemanticsStaysWithinModelingGapBands) {
  check_property("simd-statistical/independent",
                 [](const Scenario& scenario) {
                   return check_simd_against_model(
                       scenario, sim::SlotSemantics::kIndependent,
                       ring_approximation_slack(scenario) +
                           modeling_slack(scenario));
                 });
}

}  // namespace
}  // namespace pcn::proptest
