// Property suite: the discrete-event simulator agrees with the Markov
// cost model over a randomized parameter space, not just hand-picked
// points.  For every scenario an 8-terminal fleet runs under 1 thread and
// under 4 threads; the two runs must be bit-identical per terminal (the
// sharded path may not change physics), and the aggregate measurements
// must fall inside the statistical oracle's confidence bands:
//   * C_u, C_v, C_T per slot vs the CostModel predictions,
//   * mean paging delay vs the SDF partition's prediction,
//   * ring-distance occupancy vs p_{i,d} (chi-square GOF).
// In 1-D under chain-faithful semantics the chain is *exact*, so the bands
// apply as computed and the occupancy fit is strict.  Two relative slacks
// cover the two known modeling gaps everywhere else:
//   * 2-D: the paper's "exact" 2-D chain assumes the terminal is uniform
//     within its ring (the q(1/3 +- 1/(6i)) rates); the real hex walk is
//     not, and the C_u bias grows with q (~7% at q = 0.5);
//   * independent semantics: move and call draws are independent instead
//     of competing, a gap of order q*c per slot.
#include <gtest/gtest.h>

#include <cstdio>

#include "pcn/costs/cost_model.hpp"
#include "support/fleet.hpp"
#include "support/oracles.hpp"
#include "support/property.hpp"

namespace pcn::proptest {
namespace {

constexpr int kTerminals = 8;
constexpr std::int64_t kSlotsPerTerminal = 100000;
constexpr double kZ = 4.0;
constexpr double kGofAlpha = 1e-6;

std::optional<std::string> outside(const char* what, const Band& band,
                                   double measured) {
  if (band.contains(measured)) return std::nullopt;
  char line[160];
  std::snprintf(line, sizeof line, "%s = %.6f outside band %s", what,
                measured, to_string(band).c_str());
  return std::string(line);
}

/// Relative slack covering the gap between independent move/call draws and
/// the competing-event chain the model assumes; the leading mismatch is
/// the O(q*c) probability of both events firing in one slot.
double modeling_slack(const Scenario& scenario) {
  return 0.05 + 3.0 * scenario.profile.move_prob * scenario.profile.call_prob;
}

/// Relative slack covering the iso-distance approximation in 2-D: the
/// chain's boundary-hit rate overshoots the hex walk's by an amount that
/// grows with q (bench/sim_validation measures ~6-7% at q in [0.3, 0.5]).
/// Zero in 1-D, where the distance process is exactly the chain.
double ring_approximation_slack(const Scenario& scenario) {
  if (scenario.dim == Dimension::kOneD) return 0.0;
  return 0.03 + 0.25 * scenario.profile.move_prob;
}

std::optional<std::string> check_against_model(const Scenario& scenario,
                                               sim::SlotSemantics semantics,
                                               double slack) {
  const auto single = run_distance_fleet(scenario, semantics, 1, kTerminals,
                                         kSlotsPerTerminal);
  const auto sharded = run_distance_fleet(scenario, semantics, 4, kTerminals,
                                          kSlotsPerTerminal);
  for (std::size_t i = 0; i < single.size(); ++i) {
    if (!metrics_identical(single[i], sharded[i])) {
      return "terminal " + std::to_string(i) +
             " metrics differ between 1 and 4 threads";
    }
  }

  FleetMetrics fleet;
  for (const sim::TerminalMetrics& metrics : single) {
    fleet.accumulate(metrics);
  }
  const costs::CostModel model =
      costs::CostModel::exact(scenario.dim, scenario.profile,
                              scenario.weights);
  const CostBands bands = predicted_cost_bands(model, scenario.threshold,
                                               scenario.bound, fleet.slots,
                                               kZ);
  if (auto f = outside("C_u/slot", bands.update.widened(slack),
                       fleet.update_cost_per_slot())) {
    return f;
  }
  if (auto f = outside("C_v/slot", bands.paging.widened(slack),
                       fleet.paging_cost_per_slot())) {
    return f;
  }
  if (auto f = outside("C_T/slot", bands.total.widened(slack),
                       fleet.cost_per_slot())) {
    return f;
  }
  if (fleet.calls > 200) {
    if (auto f = outside("mean paging delay", bands.delay.widened(slack),
                         fleet.paging_cycles.mean())) {
      return f;
    }
  }
  // The occupancy fit is only a sharp test where the chain is the exact
  // law of the distance process: 1-D, chain-faithful draws.
  if (semantics == sim::SlotSemantics::kChainFaithful &&
      scenario.dim == Dimension::kOneD) {
    const GofResult fit = occupancy_goodness_of_fit(
        model, scenario.threshold, fleet.ring_distance, kGofAlpha);
    if (!fit.accepted) {
      return "ring occupancy rejects the steady state: " + fit.describe();
    }
  }
  return std::nullopt;
}

TEST(PropSimVsChain, ChainFaithfulMatchesCostModelAtAnyThreadCount) {
  check_property("sim-vs-chain/chain-faithful",
                 [](const Scenario& scenario) {
                   return check_against_model(
                       scenario, sim::SlotSemantics::kChainFaithful,
                       ring_approximation_slack(scenario));
                 });
}

TEST(PropSimVsChain, IndependentSemanticsStaysWithinModelingGapBands) {
  check_property("sim-vs-chain/independent",
                 [](const Scenario& scenario) {
                   return check_against_model(
                       scenario, sim::SlotSemantics::kIndependent,
                       ring_approximation_slack(scenario) +
                           modeling_slack(scenario));
                 });
}

}  // namespace
}  // namespace pcn::proptest
