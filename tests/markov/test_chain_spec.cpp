#include "pcn/markov/chain_spec.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"

namespace pcn::markov {
namespace {

constexpr MobilityProfile kProfile{0.12, 0.03};

TEST(ChainSpec, OneDimRatesMatchEquationsThreeAndFour) {
  const ChainSpec spec = ChainSpec::one_dim(kProfile);
  EXPECT_DOUBLE_EQ(spec.up(0), 0.12);         // a_{0,1} = q
  for (int i = 1; i <= 20; ++i) {
    EXPECT_DOUBLE_EQ(spec.up(i), 0.06);       // a_{i,i+1} = q/2
    EXPECT_DOUBLE_EQ(spec.down(i), 0.06);     // b_{i,i-1} = q/2
  }
  EXPECT_DOUBLE_EQ(spec.call(), 0.03);
}

TEST(ChainSpec, TwoDimExactRatesMatchEquations41And42) {
  const ChainSpec spec = ChainSpec::two_dim_exact(kProfile);
  EXPECT_DOUBLE_EQ(spec.up(0), 0.12);
  for (int i = 1; i <= 20; ++i) {
    EXPECT_DOUBLE_EQ(spec.up(i), 0.12 * (1.0 / 3 + 1.0 / (6.0 * i)));
    EXPECT_DOUBLE_EQ(spec.down(i), 0.12 * (1.0 / 3 - 1.0 / (6.0 * i)));
  }
}

TEST(ChainSpec, TwoDimExactRingOneMatchesPaperFigure3) {
  // p+(1) = 1/2 and p-(1) = 1/6 (paper §4.1).
  const ChainSpec spec = ChainSpec::two_dim_exact(kProfile);
  EXPECT_DOUBLE_EQ(spec.up(1), 0.12 * 0.5);
  EXPECT_DOUBLE_EQ(spec.down(1), 0.12 / 6.0);
  // p+(2) = 5/12 and p-(2) = 1/4.
  EXPECT_DOUBLE_EQ(spec.up(2), 0.12 * 5.0 / 12.0);
  EXPECT_DOUBLE_EQ(spec.down(2), 0.12 * 0.25);
}

TEST(ChainSpec, TwoDimApproxRatesMatchEquations43And44) {
  const ChainSpec spec = ChainSpec::two_dim_approx(kProfile);
  EXPECT_DOUBLE_EQ(spec.up(0), 0.12);
  for (int i = 1; i <= 20; ++i) {
    EXPECT_DOUBLE_EQ(spec.up(i), 0.04);
    EXPECT_DOUBLE_EQ(spec.down(i), 0.04);
  }
}

TEST(ChainSpec, ApproxConvergesToExactForLargeRings) {
  const ChainSpec exact = ChainSpec::two_dim_exact(kProfile);
  const ChainSpec approx = ChainSpec::two_dim_approx(kProfile);
  // The truncated term is q/(6i) = q * 1.67e-4 at i = 1000.
  EXPECT_NEAR(exact.up(1000), approx.up(1000), 2e-4 * kProfile.move_prob);
  EXPECT_NEAR(exact.down(1000), approx.down(1000),
              2e-4 * kProfile.move_prob);
}

TEST(ChainSpec, ExactFactorySelectsByDimension) {
  EXPECT_EQ(ChainSpec::exact(Dimension::kOneD, kProfile).kind(),
            ChainKind::kOneDimExact);
  EXPECT_EQ(ChainSpec::exact(Dimension::kTwoD, kProfile).kind(),
            ChainKind::kTwoDimExact);
}

TEST(ChainSpec, DimensionReportsGeometry) {
  EXPECT_EQ(ChainSpec::one_dim(kProfile).dimension(), Dimension::kOneD);
  EXPECT_EQ(ChainSpec::two_dim_exact(kProfile).dimension(), Dimension::kTwoD);
  EXPECT_EQ(ChainSpec::two_dim_approx(kProfile).dimension(), Dimension::kTwoD);
}

TEST(ChainSpec, RejectsInvalidProfiles) {
  EXPECT_THROW(ChainSpec::one_dim(MobilityProfile{0.0, 0.1}),
               InvalidArgument);
  EXPECT_THROW(ChainSpec::two_dim_exact(MobilityProfile{0.9, 0.5}),
               InvalidArgument);
}

TEST(ChainSpec, RejectsOutOfDomainStates) {
  const ChainSpec spec = ChainSpec::one_dim(kProfile);
  EXPECT_THROW(spec.up(-1), InvalidArgument);
  EXPECT_THROW(spec.down(0), InvalidArgument);
}

class ChainSpecMassConservation
    : public ::testing::TestWithParam<ChainKind> {};

TEST_P(ChainSpecMassConservation, PerSlotEventMassStaysBelowOne) {
  // up(i) + down(i) + c <= 1 must hold for the slotted model to be a
  // probability distribution, for every state and a grid of profiles.
  for (double q : {0.001, 0.05, 0.3, 0.7}) {
    for (double c : {0.0001, 0.01, 0.1}) {
      if (q + c > 1.0) continue;
      const ChainSpec spec(GetParam(), MobilityProfile{q, c});
      EXPECT_LE(spec.up(0) + spec.call(), 1.0 + 1e-15);
      for (int i = 1; i <= 64; ++i) {
        EXPECT_LE(spec.up(i) + spec.down(i) + spec.call(), 1.0 + 1e-15);
        EXPECT_GE(spec.up(i), 0.0);
        EXPECT_GE(spec.down(i), 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ChainSpecMassConservation,
                         ::testing::Values(ChainKind::kOneDimExact,
                                           ChainKind::kTwoDimExact,
                                           ChainKind::kTwoDimApprox));

}  // namespace
}  // namespace pcn::markov
