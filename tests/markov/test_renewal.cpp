#include "pcn/markov/renewal.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "pcn/common/error.hpp"
#include "pcn/costs/cost_model.hpp"
#include "pcn/markov/steady_state.hpp"

namespace pcn::markov {
namespace {

TEST(Renewal, ThresholdZeroHasClosedFormCycle) {
  // d = 0: the cycle ends with the first move (update) or call:
  // h_0 = 1/(q+c), u_0 = q/(q+c).
  const double q = 0.1;
  const double c = 0.02;
  const RenewalAnalysis analysis =
      analyze_renewal(ChainSpec::one_dim(MobilityProfile{q, c}), 0);
  EXPECT_NEAR(analysis.cycle_length(), 1.0 / (q + c), 1e-12);
  EXPECT_NEAR(analysis.update_fraction(), q / (q + c), 1e-12);
  EXPECT_NEAR(analysis.update_rate(), q, 1e-12);
  EXPECT_NEAR(analysis.call_rate(), c, 1e-12);
}

TEST(Renewal, CycleLengthGrowsWithThreshold) {
  // A larger residing area means longer excursions before an update.
  const ChainSpec spec = ChainSpec::two_dim_exact(MobilityProfile{0.1, 0.01});
  double previous = analyze_renewal(spec, 0).cycle_length();
  for (int d = 1; d <= 10; ++d) {
    const double current = analyze_renewal(spec, d).cycle_length();
    EXPECT_GT(current, previous) << "d = " << d;
    previous = current;
  }
}

TEST(Renewal, UpdateProbabilityDecreasesWithDistanceFromBoundaryInverse) {
  // u_i increases with i: starting closer to the boundary makes ending in
  // an update more likely.
  const ChainSpec spec = ChainSpec::one_dim(MobilityProfile{0.2, 0.02});
  const RenewalAnalysis analysis = analyze_renewal(spec, 8);
  for (std::size_t i = 0; i + 1 < analysis.update_probability.size(); ++i) {
    EXPECT_LT(analysis.update_probability[i],
              analysis.update_probability[i + 1])
        << "state " << i;
  }
}

using Param = std::tuple<ChainKind, double, double, int>;

class RenewalRewardIdentity : public ::testing::TestWithParam<Param> {};

TEST_P(RenewalRewardIdentity, UpdateRateMatchesSteadyStateDerivation) {
  // Renewal-reward vs. eq. (61): u_0 / h_0 == p_{d,d} · a_{d,d+1}.
  const auto& [kind, q, c, d] = GetParam();
  const ChainSpec spec(kind, MobilityProfile{q, c});
  const RenewalAnalysis renewal = analyze_renewal(spec, d);
  const double via_steady_state =
      solve_steady_state(spec, d).back() * spec.up(d);
  EXPECT_NEAR(renewal.update_rate(), via_steady_state,
              1e-10 * (1.0 + via_steady_state));
}

TEST_P(RenewalRewardIdentity, CallRateIsExactlyTheCallProbability) {
  // Calls end cycles from every state, so cycles end in calls at rate c.
  const auto& [kind, q, c, d] = GetParam();
  const ChainSpec spec(kind, MobilityProfile{q, c});
  const RenewalAnalysis renewal = analyze_renewal(spec, d);
  EXPECT_NEAR(renewal.call_rate(), c, 1e-10);
}

TEST_P(RenewalRewardIdentity, UpdateCostMatchesTheCostModel) {
  // C_u = U · u_0 / h_0 without ever touching the stationary distribution.
  const auto& [kind, q, c, d] = GetParam();
  const ChainSpec spec(kind, MobilityProfile{q, c});
  const CostWeights weights{137.0, 10.0};
  const costs::CostModel model(spec, weights);
  const RenewalAnalysis renewal = analyze_renewal(spec, d);
  EXPECT_NEAR(renewal.update_rate() * weights.update_cost,
              model.update_cost(d), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    KindsProfilesThresholds, RenewalRewardIdentity,
    ::testing::Combine(
        ::testing::Values(ChainKind::kOneDimExact, ChainKind::kTwoDimExact,
                          ChainKind::kTwoDimApprox),
        ::testing::Values(0.01, 0.2),
        ::testing::Values(0.002, 0.05),
        ::testing::Values(0, 1, 2, 5, 12)));

TEST(Renewal, WithoutCallsEveryCycleEndsInAnUpdate) {
  const ChainSpec spec = ChainSpec::one_dim(MobilityProfile{0.3, 0.0});
  const RenewalAnalysis analysis = analyze_renewal(spec, 4);
  EXPECT_NEAR(analysis.update_fraction(), 1.0, 1e-10);
  for (double u : analysis.update_probability) {
    EXPECT_NEAR(u, 1.0, 1e-10);
  }
}

TEST(Renewal, OneDimCycleLengthHasGamblersRuinScale) {
  // With c = 0 and threshold d, reaching d+1 from 0 on a lazy symmetric
  // walk (one-sided boundary at the center) takes (d+1)^2 / q expected
  // slots — the classic ruin time, scaled by the move rate.  (The walk's
  // first step from 0 is always outward, hence the exact identity.)
  const double q = 0.4;
  const int d = 6;
  const RenewalAnalysis analysis =
      analyze_renewal(ChainSpec::one_dim(MobilityProfile{q, 0.0}), d);
  const double expected = static_cast<double>((d + 1) * (d + 1)) / q;
  EXPECT_NEAR(analysis.cycle_length(), expected, expected * 1e-9);
}

TEST(Renewal, RejectsNegativeThreshold) {
  const ChainSpec spec = ChainSpec::one_dim(MobilityProfile{0.1, 0.01});
  EXPECT_THROW(analyze_renewal(spec, -1), InvalidArgument);
}

}  // namespace
}  // namespace pcn::markov
