#include <gtest/gtest.h>

#include <cmath>

#include "pcn/common/error.hpp"
#include "pcn/markov/renewal.hpp"

namespace pcn::markov {
namespace {

const ChainSpec& spec() {
  static const ChainSpec s =
      ChainSpec::two_dim_exact(MobilityProfile{0.1, 0.02});
  return s;
}

TEST(CycleDistribution, IsAProbabilityDistributionUpToTailMass) {
  const auto pmf = cycle_length_distribution(spec(), 4, 5000);
  double total = 0.0;
  for (double p : pmf) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_LE(total, 1.0 + 1e-12);
  EXPECT_GT(total, 1.0 - 1e-9);  // horizon long enough to capture the tail
  EXPECT_DOUBLE_EQ(pmf[0], 0.0);  // cycles take at least one slot
}

TEST(CycleDistribution, ThresholdZeroIsGeometric) {
  // d = 0: the cycle ends in each slot independently with prob q + c.
  const double q = 0.1;
  const double c = 0.05;
  const auto pmf = cycle_length_distribution(
      ChainSpec::one_dim(MobilityProfile{q, c}), 0, 200);
  const double p = q + c;
  for (int k = 1; k <= 50; ++k) {
    EXPECT_NEAR(pmf[static_cast<std::size_t>(k)],
                std::pow(1.0 - p, k - 1) * p, 1e-12)
        << "k = " << k;
  }
}

TEST(CycleDistribution, FirstSlotMassIsTheImmediateEndProbability) {
  // From state 0 the cycle can end in slot 1 only via a call (d >= 1).
  const auto pmf = cycle_length_distribution(spec(), 3, 10);
  EXPECT_NEAR(pmf[1], spec().call(), 1e-12);
}

TEST(CycleDistribution, MeanMatchesTheRenewalAnalysis) {
  const int d = 3;
  const auto pmf = cycle_length_distribution(spec(), d, 20000);
  double mean = 0.0;
  double total = 0.0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    mean += static_cast<double>(k) * pmf[k];
    total += pmf[k];
  }
  ASSERT_GT(total, 1.0 - 1e-10);
  const RenewalAnalysis renewal = analyze_renewal(spec(), d);
  EXPECT_NEAR(mean, renewal.cycle_length(),
              1e-6 * renewal.cycle_length());
}

TEST(CycleDistribution, LargerThresholdShiftsMassRight) {
  // P(cycle <= 20 slots) decreases with d: bigger residing areas survive
  // longer before an update.
  auto mass_within = [](int d) {
    const auto pmf = cycle_length_distribution(spec(), d, 20);
    double total = 0.0;
    for (double p : pmf) total += p;
    return total;
  };
  EXPECT_GT(mass_within(0), mass_within(2));
  EXPECT_GT(mass_within(2), mass_within(6));
}

TEST(CycleDistribution, ValidatesInputs) {
  EXPECT_THROW(cycle_length_distribution(spec(), -1, 10), InvalidArgument);
  EXPECT_THROW(cycle_length_distribution(spec(), 2, 0), InvalidArgument);
}

}  // namespace
}  // namespace pcn::markov
