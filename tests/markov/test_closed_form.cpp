#include "pcn/markov/closed_form.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "pcn/common/error.hpp"
#include "pcn/markov/steady_state.hpp"

namespace pcn::markov {
namespace {

// --- equivalence with the exact solver --------------------------------------

using Param = std::tuple<double, double, int>;  // q, c, d

class ClosedForm1dSweep : public ::testing::TestWithParam<Param> {};

TEST_P(ClosedForm1dSweep, MatchesExactRecurrenceSolver) {
  const auto& [q, c, d] = GetParam();
  const MobilityProfile profile{q, c};
  const auto closed = closed_form_1d(profile, d);
  const auto exact = solve_steady_state(ChainSpec::one_dim(profile), d);
  ASSERT_EQ(closed.size(), exact.size());
  for (std::size_t i = 0; i < closed.size(); ++i) {
    EXPECT_NEAR(closed[i], exact[i], 1e-12) << "state " << i;
  }
}

TEST_P(ClosedForm1dSweep, BoundaryProbabilityMatchesFullDistribution) {
  const auto& [q, c, d] = GetParam();
  const MobilityProfile profile{q, c};
  EXPECT_NEAR(closed_form_1d_boundary_probability(profile, d),
              closed_form_1d(profile, d).back(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesByThreshold, ClosedForm1dSweep,
    ::testing::Combine(::testing::Values(0.001, 0.05, 0.3),
                       ::testing::Values(0.001, 0.01, 0.1),
                       ::testing::Values(0, 1, 2, 3, 5, 12, 40)));

class ClosedForm2dSweep : public ::testing::TestWithParam<Param> {};

TEST_P(ClosedForm2dSweep, MatchesApproxRecurrenceSolver) {
  const auto& [q, c, d] = GetParam();
  const MobilityProfile profile{q, c};
  const auto closed = closed_form_2d_approx(profile, d);
  const auto exact = solve_steady_state(ChainSpec::two_dim_approx(profile), d);
  ASSERT_EQ(closed.size(), exact.size());
  for (std::size_t i = 0; i < closed.size(); ++i) {
    EXPECT_NEAR(closed[i], exact[i], 1e-12) << "state " << i;
  }
}

TEST_P(ClosedForm2dSweep, BoundaryProbabilityMatchesFullDistribution) {
  const auto& [q, c, d] = GetParam();
  const MobilityProfile profile{q, c};
  EXPECT_NEAR(closed_form_2d_approx_boundary_probability(profile, d),
              closed_form_2d_approx(profile, d).back(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesByThreshold, ClosedForm2dSweep,
    ::testing::Combine(::testing::Values(0.001, 0.05, 0.3),
                       ::testing::Values(0.001, 0.01, 0.1),
                       ::testing::Values(0, 1, 2, 3, 5, 12, 40)));

// --- the paper's printed boundary cases -------------------------------------

TEST(ClosedForm1d, ThresholdZeroOneTwoMatchPaperEquations33To38) {
  const double q = 0.08;
  const double c = 0.03;
  const MobilityProfile profile{q, c};

  EXPECT_DOUBLE_EQ(closed_form_1d(profile, 0)[0], 1.0);  // eq. 33

  const auto d1 = closed_form_1d(profile, 1);
  EXPECT_NEAR(d1[0], (q + c) / (2 * q + c), 1e-13);      // eq. 34
  EXPECT_NEAR(d1[1], q / (2 * q + c), 1e-13);            // eq. 35

  const auto d2 = closed_form_1d(profile, 2);
  const double denom = 9 * q * q + 12 * q * c + 4 * c * c;
  EXPECT_NEAR(d2[0], (2 * c + q) / (2 * c + 3 * q), 1e-13);  // eq. 36
  EXPECT_NEAR(d2[1], 4 * q * (c + q) / denom, 1e-13);        // eq. 37
  EXPECT_NEAR(d2[2], 2 * q * q / denom, 1e-13);              // eq. 38
}

TEST(ClosedForm2d, ThresholdZeroOneTwoMatchPaperEquations55To60) {
  const double q = 0.08;
  const double c = 0.03;
  const MobilityProfile profile{q, c};

  EXPECT_DOUBLE_EQ(closed_form_2d_approx(profile, 0)[0], 1.0);  // eq. 55

  const auto d1 = closed_form_2d_approx(profile, 1);
  EXPECT_NEAR(d1[0], (2 * q + 3 * c) / (5 * q + 3 * c), 1e-13);  // eq. 56
  EXPECT_NEAR(d1[1], 3 * q / (5 * q + 3 * c), 1e-13);            // eq. 57

  const auto d2 = closed_form_2d_approx(profile, 2);
  const double denom = 4 * q * q + 7 * q * c + 3 * c * c;
  EXPECT_NEAR(d2[0], (3 * c + q) / (3 * c + 4 * q), 1e-13);       // eq. 58
  EXPECT_NEAR(d2[1], q * (3 * c + 2 * q) / denom, 1e-13);         // eq. 59
  EXPECT_NEAR(d2[2], q * q / denom, 1e-13);                       // eq. 60
}

// --- structural properties ---------------------------------------------------

TEST(ClosedForm1d, TailIsGeometricWithRatioBetweenRootBounds) {
  // p_i proportional to e1^{d+1-i} - e2^{d+1-i}: consecutive ratios
  // p_i / p_{i+1} decrease from beta (at i = d - 1, since p_{d-1} =
  // beta p_d) toward the dominant root e1, always staying in (e1, beta].
  const MobilityProfile profile{0.05, 0.01};
  const double beta = 2.0 + 2.0 * profile.call_prob / profile.move_prob;
  const double e1 = (beta + std::sqrt(beta * beta - 4.0)) / 2.0;
  const auto pi = closed_form_1d(profile, 20);
  for (std::size_t i = 1; i + 1 < pi.size(); ++i) {
    const double ratio = pi[i] / pi[i + 1];
    EXPECT_GT(ratio, e1);
    EXPECT_LE(ratio, beta + 1e-9);
  }
  EXPECT_NEAR(pi[19] / pi[20], beta, 1e-9);
}

TEST(ClosedForm, NoOverflowForHugeThresholdAndExtremeBeta) {
  // c/q = 100 -> beta = 202; naive e1^d evaluation would overflow long
  // before d = 2000.  The scaled form must stay finite and normalized.
  // (p_{d,d} itself is ~ e1^{-2000}, far below double's denormal range, so
  // it legitimately underflows to +0 — finiteness and normalization are
  // the meaningful requirements at this extreme.)
  const MobilityProfile profile{0.001, 0.1};
  const auto pi = closed_form_1d(profile, 2000);
  double total = 0.0;
  for (double p : pi) {
    ASSERT_TRUE(std::isfinite(p));
    ASSERT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GE(closed_form_1d_boundary_probability(profile, 2000), 0.0);
}

TEST(ClosedForm, BoundaryProbabilityStaysPositiveWithinDoubleRange) {
  // beta = 2.4 -> e1 = 1.86: at d = 300, p_{d,d} ~ e1^{-300} ~ 1e-81 is
  // comfortably representable and must be computed as positive.
  const MobilityProfile profile{0.05, 0.01};
  const double p = closed_form_1d_boundary_probability(profile, 300);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1e-60);
  EXPECT_NEAR(p, closed_form_1d(profile, 300).back(), p * 1e-6);
}

TEST(ClosedForm, RequiresPositiveCallProbability) {
  // c = 0 collapses the characteristic roots; the closed form refuses and
  // points at the recurrence solver.
  const MobilityProfile profile{0.1, 0.0};
  EXPECT_THROW(closed_form_1d(profile, 3), InvalidArgument);
  EXPECT_THROW(closed_form_2d_approx(profile, 3), InvalidArgument);
  EXPECT_THROW(closed_form_1d_boundary_probability(profile, 3),
               InvalidArgument);
  // The recurrence solver handles c = 0 fine (uniform-ish random walk with
  // resets only at the boundary).
  EXPECT_NO_THROW(solve_steady_state(ChainSpec::one_dim(profile), 3));
}

TEST(ClosedForm, RejectsNegativeThreshold) {
  const MobilityProfile profile{0.1, 0.01};
  EXPECT_THROW(closed_form_1d(profile, -1), InvalidArgument);
  EXPECT_THROW(closed_form_2d_approx(profile, -2), InvalidArgument);
}

}  // namespace
}  // namespace pcn::markov
