#include "pcn/markov/steady_state.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "pcn/common/error.hpp"

namespace pcn::markov {
namespace {

// --- basic shape -----------------------------------------------------------

TEST(SteadyState, ThresholdZeroIsDegenerate) {
  const ChainSpec spec = ChainSpec::one_dim(MobilityProfile{0.1, 0.01});
  const auto pi = solve_steady_state(spec, 0);
  ASSERT_EQ(pi.size(), 1u);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);  // paper eq. 33 / 55
}

TEST(SteadyState, RejectsNegativeThreshold) {
  const ChainSpec spec = ChainSpec::one_dim(MobilityProfile{0.1, 0.01});
  EXPECT_THROW(solve_steady_state(spec, -1), InvalidArgument);
}

// --- paper boundary-case formulas (eqs. 34-38) -----------------------------

TEST(SteadyState, OneDimThresholdOneMatchesEquations34And35) {
  const double q = 0.07;
  const double c = 0.02;
  const auto pi =
      solve_steady_state(ChainSpec::one_dim(MobilityProfile{q, c}), 1);
  EXPECT_NEAR(pi[0], (q + c) / (2 * q + c), 1e-14);
  EXPECT_NEAR(pi[1], q / (2 * q + c), 1e-14);
}

TEST(SteadyState, OneDimThresholdTwoMatchesEquations36To38) {
  const double q = 0.05;
  const double c = 0.01;
  const auto pi =
      solve_steady_state(ChainSpec::one_dim(MobilityProfile{q, c}), 2);
  EXPECT_NEAR(pi[0], (2 * c + q) / (2 * c + 3 * q), 1e-14);
  EXPECT_NEAR(pi[1],
              4 * q * (c + q) / (9 * q * q + 12 * q * c + 4 * c * c), 1e-14);
  EXPECT_NEAR(pi[2], 2 * q * q / (9 * q * q + 12 * q * c + 4 * c * c),
              1e-14);
}

// --- paper boundary-case formulas for the approximate 2-D chain (56-60) ----

TEST(SteadyState, TwoDimApproxThresholdOneMatchesEquations56And57) {
  const double q = 0.2;
  const double c = 0.04;
  const auto pi =
      solve_steady_state(ChainSpec::two_dim_approx(MobilityProfile{q, c}), 1);
  EXPECT_NEAR(pi[0], (2 * q + 3 * c) / (5 * q + 3 * c), 1e-14);
  EXPECT_NEAR(pi[1], 3 * q / (5 * q + 3 * c), 1e-14);
}

TEST(SteadyState, TwoDimApproxThresholdTwoMatchesEquations58To60) {
  const double q = 0.05;
  const double c = 0.01;
  const auto pi =
      solve_steady_state(ChainSpec::two_dim_approx(MobilityProfile{q, c}), 2);
  EXPECT_NEAR(pi[0], (3 * c + q) / (3 * c + 4 * q), 1e-14);
  EXPECT_NEAR(pi[1],
              q * (3 * c + 2 * q) / (4 * q * q + 7 * q * c + 3 * c * c),
              1e-14);
  EXPECT_NEAR(pi[2], q * q / (4 * q * q + 7 * q * c + 3 * c * c), 1e-14);
}

// --- exact 2-D chain, hand-solved d = 1 ------------------------------------

TEST(SteadyState, TwoDimExactThresholdOneHandSolved) {
  // From state 1 every event leads to 0 with total rate 2q/3 + c; from 0
  // outward with rate q:  p1/p0 = q / (2q/3 + c).
  const double q = 0.05;
  const double c = 0.01;
  const auto pi =
      solve_steady_state(ChainSpec::two_dim_exact(MobilityProfile{q, c}), 1);
  const double ratio = q / (2 * q / 3 + c);
  EXPECT_NEAR(pi[1] / pi[0], ratio, 1e-12);
}

// --- property sweep: recurrence vs dense LU vs global balance --------------

using SweepParam = std::tuple<ChainKind, double, double, int>;

class SteadyStateSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  ChainSpec spec() const {
    const auto& [kind, q, c, d] = GetParam();
    return ChainSpec(kind, MobilityProfile{q, c});
  }
  int threshold() const { return std::get<3>(GetParam()); }
};

TEST_P(SteadyStateSweep, DistributionIsNormalizedAndPositive) {
  const auto pi = solve_steady_state(spec(), threshold());
  ASSERT_EQ(pi.size(), static_cast<std::size_t>(threshold()) + 1);
  double total = 0.0;
  for (double p : pi) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_P(SteadyStateSweep, RecurrenceMatchesDenseLuSolver) {
  const auto fast = solve_steady_state(spec(), threshold());
  const auto dense = solve_steady_state_dense(spec(), threshold());
  ASSERT_EQ(fast.size(), dense.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], dense[i], 1e-10) << "state " << i;
  }
}

TEST_P(SteadyStateSweep, DistributionIsInvariantUnderTheTransitionMatrix) {
  // pi P = pi: the recurrence solution satisfies global balance.
  const auto pi = solve_steady_state(spec(), threshold());
  const linalg::Matrix p = transition_matrix(spec(), threshold());
  for (std::size_t j = 0; j < pi.size(); ++j) {
    double inflow = 0.0;
    for (std::size_t i = 0; i < pi.size(); ++i) {
      inflow += pi[i] * p.at(i, j);
    }
    EXPECT_NEAR(inflow, pi[j], 1e-12) << "state " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsByProfilesByThresholds, SteadyStateSweep,
    ::testing::Combine(
        ::testing::Values(ChainKind::kOneDimExact, ChainKind::kTwoDimExact,
                          ChainKind::kTwoDimApprox),
        ::testing::Values(0.001, 0.05, 0.4),
        ::testing::Values(0.0005, 0.01, 0.1),
        ::testing::Values(1, 2, 3, 7, 25)));

// --- transition matrix structure -------------------------------------------

TEST(TransitionMatrix, RowsAreStochastic) {
  const ChainSpec spec = ChainSpec::two_dim_exact(MobilityProfile{0.3, 0.05});
  const linalg::Matrix p = transition_matrix(spec, 6);
  for (std::size_t i = 0; i < p.rows(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < p.cols(); ++j) {
      EXPECT_GE(p.at(i, j), -1e-15);
      row += p.at(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-12) << "row " << i;
  }
}

TEST(TransitionMatrix, BoundaryStateFoldsUpdateIntoResetColumn) {
  const double q = 0.1;
  const double c = 0.02;
  const ChainSpec spec = ChainSpec::one_dim(MobilityProfile{q, c});
  const linalg::Matrix p = transition_matrix(spec, 3);
  // From state 3: outward (q/2, update) + call (c) both land in 0;
  // inward q/2 lands in 2.
  EXPECT_NEAR(p.at(3, 0), q / 2 + c, 1e-15);
  EXPECT_NEAR(p.at(3, 2), q / 2, 1e-15);
  EXPECT_NEAR(p.at(3, 3), 1.0 - q - c, 1e-15);
}

TEST(TransitionMatrix, CallFromStateZeroIsASelfLoop) {
  const ChainSpec spec = ChainSpec::one_dim(MobilityProfile{0.1, 0.02});
  const linalg::Matrix p = transition_matrix(spec, 2);
  // Row 0: up q; rest is self-loop (call does not change state 0).
  EXPECT_NEAR(p.at(0, 1), 0.1, 1e-15);
  EXPECT_NEAR(p.at(0, 0), 0.9, 1e-15);
}

// --- numerical robustness ---------------------------------------------------

TEST(SteadyState, StableForLargeThresholdAndExtremeRatios) {
  // beta = 2 + 2c/q is huge when c >> q; the scaled recurrence must not
  // overflow and must stay a distribution.
  const ChainSpec spec = ChainSpec::one_dim(MobilityProfile{0.001, 0.1});
  const auto pi = solve_steady_state(spec, 400);
  double total = 0.0;
  for (double p : pi) {
    ASSERT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Probability mass should concentrate near the center.
  EXPECT_GT(pi[0] + pi[1], 0.99);
}

TEST(SteadyState, MassMovesOutwardWhenMobilityDominates) {
  // With q >> c the terminal wanders: p_d grows relative to the c >> q case.
  const auto mobile = solve_steady_state(
      ChainSpec::one_dim(MobilityProfile{0.4, 0.001}), 10);
  const auto sessile = solve_steady_state(
      ChainSpec::one_dim(MobilityProfile{0.001, 0.1}), 10);
  EXPECT_GT(mobile.back(), 100 * sessile.back());
}

TEST(SteadyState, TwoDimExactPushesMassFurtherOutThanApprox) {
  // The exact chain's outward bias (1/3 + 1/(6i) > 1/3) moves mass outward
  // relative to the symmetric approximation.
  const MobilityProfile profile{0.1, 0.01};
  const auto exact =
      solve_steady_state(ChainSpec::two_dim_exact(profile), 8);
  const auto approx =
      solve_steady_state(ChainSpec::two_dim_approx(profile), 8);
  EXPECT_GT(exact.back(), approx.back());
}

}  // namespace
}  // namespace pcn::markov
