#include "pcn/markov/transient.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"
#include "pcn/linalg/matrix.hpp"
#include "pcn/markov/steady_state.hpp"

namespace pcn::markov {
namespace {

const ChainSpec& spec_2d() {
  static const ChainSpec spec =
      ChainSpec::two_dim_exact(MobilityProfile{0.1, 0.02});
  return spec;
}

TEST(Transient, ZeroStepsReturnsTheInitialDistribution) {
  const std::vector<double> initial{0.25, 0.5, 0.25};
  const auto out = evolve_distribution(spec_2d(), 2, initial, 0);
  EXPECT_EQ(out, initial);
}

TEST(Transient, OneStepMatchesTheTransitionMatrix) {
  const int d = 5;
  const linalg::Matrix p = transition_matrix(spec_2d(), d);
  std::vector<double> initial(static_cast<std::size_t>(d) + 1, 0.0);
  initial[2] = 1.0;
  const auto fast = evolve_distribution(spec_2d(), d, initial, 1);
  for (std::size_t j = 0; j <= static_cast<std::size_t>(d); ++j) {
    EXPECT_NEAR(fast[j], p.at(2, j), 1e-15) << "state " << j;
  }
}

TEST(Transient, ManyStepsMatchRepeatedMatrixMultiplication) {
  const int d = 4;
  const int steps = 37;
  const linalg::Matrix p = transition_matrix(spec_2d(), d);
  linalg::Matrix power = linalg::Matrix::identity(static_cast<std::size_t>(d) + 1);
  for (int k = 0; k < steps; ++k) power = power.multiply(p);

  const auto fast = distribution_after(spec_2d(), d, steps);
  for (std::size_t j = 0; j <= static_cast<std::size_t>(d); ++j) {
    EXPECT_NEAR(fast[j], power.at(0, j), 1e-12) << "state " << j;
  }
}

TEST(Transient, MassIsConservedEveryStep) {
  const int d = 7;
  for (int steps : {1, 3, 10, 100, 1000}) {
    const auto dist = distribution_after(spec_2d(), d, steps);
    double total = 0.0;
    for (double v : dist) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "steps " << steps;
  }
}

TEST(Transient, ConvergesToTheSteadyState) {
  const int d = 6;
  const auto stationary = solve_steady_state(spec_2d(), d);
  const auto late = distribution_after(spec_2d(), d, 20000);
  for (std::size_t i = 0; i < stationary.size(); ++i) {
    EXPECT_NEAR(late[i], stationary[i], 1e-9) << "state " << i;
  }
}

TEST(Transient, SteadyStateIsAFixedPoint) {
  const int d = 6;
  const auto stationary = solve_steady_state(spec_2d(), d);
  const auto stepped = evolve_distribution(spec_2d(), d, stationary, 1);
  for (std::size_t i = 0; i < stationary.size(); ++i) {
    EXPECT_NEAR(stepped[i], stationary[i], 1e-14) << "state " << i;
  }
}

TEST(Transient, TotalVariationBasics) {
  EXPECT_DOUBLE_EQ(total_variation({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(total_variation({1.0, 0.0}, {0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(total_variation({0.7, 0.3}, {0.5, 0.5}), 0.2);
  EXPECT_THROW(total_variation({1.0}, {0.5, 0.5}), InvalidArgument);
}

TEST(Transient, MixingTimeIsMonotoneInEpsilon) {
  const int d = 5;
  const auto strict = mixing_time(spec_2d(), d, 1e-6);
  const auto loose = mixing_time(spec_2d(), d, 1e-2);
  EXPECT_GT(strict, loose);
  EXPECT_GT(loose, 0);
}

TEST(Transient, MixingTimeZeroForDegenerateChain) {
  // d = 0 has a single state; the chain is already mixed.
  EXPECT_EQ(mixing_time(spec_2d(), 0, 1e-9), 0);
}

TEST(Transient, MixingTimeHonorsTheCap) {
  EXPECT_EQ(mixing_time(spec_2d(), 10, 1e-300, /*max_steps=*/50), 50);
}

TEST(Transient, FasterResetsMixFaster) {
  // Higher call probability pulls the chain back to 0 more often, so it
  // reaches stationarity sooner.
  const ChainSpec chatty =
      ChainSpec::two_dim_exact(MobilityProfile{0.1, 0.1});
  const ChainSpec quiet =
      ChainSpec::two_dim_exact(MobilityProfile{0.1, 0.001});
  EXPECT_LT(mixing_time(chatty, 6, 1e-4), mixing_time(quiet, 6, 1e-4));
}

TEST(Transient, ValidatesInputs) {
  EXPECT_THROW(evolve_distribution(spec_2d(), 2, {0.5, 0.5}, 1),
               InvalidArgument);  // wrong size
  EXPECT_THROW(evolve_distribution(spec_2d(), 1, {0.9, 0.2}, 1),
               InvalidArgument);  // not a distribution
  EXPECT_THROW(evolve_distribution(spec_2d(), 1, {1.2, -0.2}, 1),
               InvalidArgument);  // negative mass
  EXPECT_THROW(distribution_after(spec_2d(), 2, -1), InvalidArgument);
  EXPECT_THROW(mixing_time(spec_2d(), 2, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace pcn::markov
