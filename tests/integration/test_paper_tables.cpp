// Full regression of the paper's Table 1 and Table 2.
//
// These are analytical results, so we require the *absolute* published
// numbers (to the tables' 3-decimal precision), not just the trend:
//   * Table 1 (1-D): optimal d* and C_T for U in {1..10, 20..100,
//     200..1000}, V = 10, c = 0.01, q = 0.05, delays m = 1, 2, 3, infinity.
//     The published d = 0 rows used a_{0,1} = q/2 (see DESIGN.md), so this
//     table is checked under the legacy cost-model flag.
//   * Table 2 (2-D): d*, C_T under the exact chain and d', C'_T under the
//     approximate chain, delays m = 1, 3, infinity.  The published d'
//     columns computed C_u(0) with the generic q/3 rate (the 2-D analogue
//     of the Table 1 quirk), reproduced via the same legacy flag.
//
// Tolerance: the paper prints 3 decimals, so we allow 1.5e-3 absolute to
// absorb its rounding; thresholds must match exactly.
#include <gtest/gtest.h>

#include <vector>

#include "pcn/costs/cost_model.hpp"
#include "pcn/optimize/exhaustive.hpp"
#include "pcn/optimize/near_optimal.hpp"

namespace pcn {
namespace {

constexpr MobilityProfile kProfile{0.05, 0.01};
constexpr double kPollCost = 10.0;
constexpr double kTolerance = 1.5e-3;

DelayBound bound_of(int m) {
  return m == 0 ? DelayBound::unbounded() : DelayBound(m);
}

struct Table1Row {
  double update_cost;
  // {d*, C_T} for m = 1, 2, 3, unbounded.
  int d1;
  double c1;
  int d2;
  double c2;
  int d3;
  double c3;
  int du;
  double cu;
};

// Table 1 of the paper, transcribed verbatim.
const std::vector<Table1Row>& table1() {
  static const std::vector<Table1Row> rows = {
      {1, 0, 0.125, 0, 0.125, 0, 0.125, 0, 0.125},
      {2, 0, 0.150, 0, 0.150, 0, 0.150, 0, 0.150},
      {3, 0, 0.175, 0, 0.175, 0, 0.175, 0, 0.175},
      {4, 0, 0.200, 0, 0.200, 0, 0.200, 0, 0.200},
      {5, 0, 0.225, 0, 0.225, 0, 0.225, 0, 0.225},
      {6, 0, 0.250, 0, 0.250, 0, 0.250, 0, 0.250},
      {7, 0, 0.275, 1, 0.270, 1, 0.270, 1, 0.270},
      {8, 0, 0.300, 1, 0.282, 1, 0.282, 1, 0.282},
      {9, 0, 0.325, 1, 0.293, 2, 0.291, 2, 0.291},
      {10, 0, 0.350, 1, 0.305, 2, 0.296, 2, 0.296},
      {20, 1, 0.527, 1, 0.418, 2, 0.339, 3, 0.338},
      {30, 2, 0.630, 2, 0.465, 2, 0.382, 3, 0.357},
      {40, 2, 0.673, 3, 0.486, 3, 0.415, 4, 0.371},
      {50, 2, 0.716, 3, 0.506, 3, 0.435, 4, 0.381},
      {60, 2, 0.760, 3, 0.526, 3, 0.454, 5, 0.386},
      {70, 2, 0.803, 3, 0.545, 3, 0.474, 6, 0.391},
      {80, 2, 0.846, 3, 0.565, 3, 0.494, 6, 0.394},
      {90, 3, 0.878, 4, 0.579, 5, 0.510, 7, 0.396},
      {100, 3, 0.897, 4, 0.589, 5, 0.515, 7, 0.397},
      {200, 3, 1.095, 4, 0.686, 6, 0.548, 12, 0.401},
      {300, 4, 1.193, 6, 0.724, 7, 0.565, 17, 0.402},
      {400, 4, 1.290, 6, 0.750, 7, 0.579, 22, 0.402},
      {500, 5, 1.351, 6, 0.776, 7, 0.593, 27, 0.402},
      {600, 5, 1.401, 6, 0.803, 7, 0.607, 32, 0.402},
      {700, 5, 1.451, 6, 0.829, 7, 0.621, 37, 0.402},
      {800, 5, 1.501, 6, 0.855, 7, 0.635, 42, 0.402},
      {900, 6, 1.537, 8, 0.868, 7, 0.649, 47, 0.402},
      {1000, 6, 1.563, 8, 0.876, 7, 0.663, 52, 0.402},
  };
  return rows;
}

class Table1 : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1, OptimalThresholdAndCostMatchThePublishedRow) {
  const Table1Row row = GetParam();
  costs::CostModelOptions options;
  options.legacy_d0_generic_update_rate = true;
  const costs::CostModel model =
      costs::CostModel::exact(Dimension::kOneD, kProfile,
                              CostWeights{row.update_cost, kPollCost},
                              options);
  const struct {
    int m;
    int d_expected;
    double cost_expected;
  } cases[] = {{1, row.d1, row.c1},
               {2, row.d2, row.c2},
               {3, row.d3, row.c3},
               {0, row.du, row.cu}};
  for (const auto& expected : cases) {
    const optimize::Optimum optimum =
        optimize::exhaustive_search(model, bound_of(expected.m), 80);
    EXPECT_NEAR(optimum.total_cost, expected.cost_expected, kTolerance)
        << "U = " << row.update_cost << " m = " << expected.m;
    // Near-degenerate rows can have two thresholds within print precision;
    // accept the published threshold when its cost is within tolerance.
    if (optimum.threshold != expected.d_expected) {
      EXPECT_NEAR(model.total_cost(expected.d_expected, bound_of(expected.m)),
                  optimum.total_cost, kTolerance)
          << "U = " << row.update_cost << " m = " << expected.m
          << " (threshold " << optimum.threshold << " vs published "
          << expected.d_expected << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table1, ::testing::ValuesIn(table1()));

struct Table2Row {
  double update_cost;
  // delay = 1: d*, d', C_T, C'_T; delay = 3: same; unbounded: same.
  int d1;
  int dp1;
  double c1;
  double cp1;
  int d3;
  int dp3;
  double c3;
  double cp3;
  int du;
  int dpu;
  double cu;
  double cpu;
};

// Table 2 of the paper, transcribed verbatim.
const std::vector<Table2Row>& table2() {
  static const std::vector<Table2Row> rows = {
      {1, 0, 0, 0.150, 0.150, 0, 0, 0.150, 0.150, 0, 0, 0.150, 0.150},
      {2, 0, 0, 0.200, 0.200, 0, 0, 0.200, 0.200, 0, 0, 0.200, 0.200},
      {3, 0, 0, 0.250, 0.250, 0, 0, 0.250, 0.250, 0, 0, 0.250, 0.250},
      {4, 0, 0, 0.300, 0.300, 0, 0, 0.300, 0.300, 0, 0, 0.300, 0.300},
      {5, 0, 0, 0.350, 0.350, 0, 0, 0.350, 0.350, 0, 0, 0.350, 0.350},
      {6, 0, 0, 0.400, 0.400, 0, 0, 0.400, 0.400, 0, 0, 0.400, 0.400},
      {7, 0, 0, 0.450, 0.450, 0, 0, 0.450, 0.450, 0, 0, 0.450, 0.450},
      {8, 0, 0, 0.500, 0.500, 0, 0, 0.500, 0.500, 0, 0, 0.500, 0.500},
      {9, 0, 0, 0.550, 0.550, 1, 0, 0.542, 0.550, 1, 0, 0.542, 0.550},
      {10, 0, 0, 0.600, 0.600, 1, 0, 0.555, 0.600, 1, 0, 0.555, 0.600},
      {20, 1, 0, 0.968, 1.100, 1, 0, 0.689, 1.100, 1, 0, 0.689, 1.100},
      {30, 1, 0, 1.102, 1.600, 1, 0, 0.823, 1.600, 1, 0, 0.823, 1.600},
      {40, 1, 0, 1.236, 2.100, 1, 0, 0.957, 2.100, 1, 0, 0.957, 2.100},
      {50, 1, 0, 1.370, 2.600, 2, 2, 1.074, 1.074, 2, 2, 1.074, 1.074},
      {60, 1, 0, 1.504, 3.100, 2, 2, 1.126, 1.126, 2, 2, 1.126, 1.126},
      {70, 1, 0, 1.638, 3.600, 2, 2, 1.178, 1.178, 2, 2, 1.178, 1.178},
      {80, 1, 1, 1.771, 1.771, 2, 2, 1.231, 1.231, 2, 2, 1.231, 1.231},
      {90, 1, 1, 1.905, 1.905, 2, 2, 1.283, 1.283, 2, 2, 1.283, 1.283},
      {100, 1, 1, 2.039, 2.039, 2, 2, 1.335, 1.335, 2, 2, 1.335, 1.335},
      {200, 2, 1, 2.945, 3.379, 2, 2, 1.858, 1.858, 3, 3, 1.683, 1.683},
      {300, 2, 2, 3.468, 3.468, 3, 2, 2.372, 2.381, 4, 3, 1.912, 1.918},
      {400, 2, 2, 3.991, 3.991, 3, 3, 2.608, 2.608, 4, 4, 2.025, 2.025},
      {500, 2, 2, 4.514, 4.514, 3, 3, 2.843, 2.843, 4, 4, 2.138, 2.138},
      {600, 2, 2, 5.036, 5.036, 5, 3, 2.955, 3.079, 5, 5, 2.204, 2.204},
      {700, 3, 2, 5.349, 5.559, 5, 5, 3.011, 3.011, 5, 5, 2.260, 2.260},
      {800, 3, 2, 5.585, 6.082, 5, 5, 3.066, 3.066, 5, 5, 2.315, 2.315},
      {900, 3, 2, 5.820, 6.604, 5, 5, 3.122, 3.122, 6, 6, 2.346, 2.346},
      {1000, 3, 2, 6.056, 7.127, 5, 5, 3.177, 3.177, 6, 6, 2.374, 2.374},
  };
  return rows;
}

class Table2 : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2, ExactAndNearOptimalMatchThePublishedRow) {
  const Table2Row row = GetParam();
  const CostWeights weights{row.update_cost, kPollCost};
  const costs::CostModel model =
      costs::CostModel::exact(Dimension::kTwoD, kProfile, weights);

  const struct {
    int m;
    int d_expected;
    int dp_expected;
    double cost_expected;
    double near_cost_expected;
  } cases[] = {{1, row.d1, row.dp1, row.c1, row.cp1},
               {3, row.d3, row.dp3, row.c3, row.cp3},
               {0, row.du, row.dpu, row.cu, row.cpu}};

  for (const auto& expected : cases) {
    const DelayBound bound = bound_of(expected.m);
    const optimize::Optimum exact =
        optimize::exhaustive_search(model, bound, 80);
    EXPECT_NEAR(exact.total_cost, expected.cost_expected, kTolerance)
        << "U = " << row.update_cost << " m = " << expected.m;
    if (exact.threshold != expected.d_expected) {
      EXPECT_NEAR(model.total_cost(expected.d_expected, bound),
                  exact.total_cost, kTolerance)
          << "U = " << row.update_cost << " m = " << expected.m
          << " (threshold " << exact.threshold << " vs published "
          << expected.d_expected << ")";
    }

    // The paper's published d' (and C'_T) come from the *uncorrected*
    // approximate scan: rows like U = 20 report d' = 0 with C'_T double the
    // optimum, which motivates the correction.  Those published numbers
    // also computed C_u(0) with the generic q/3 rate (DESIGN.md), hence
    // the legacy flag.  Reproduce the uncorrected value here.
    costs::CostModelOptions approx_options;
    approx_options.legacy_d0_generic_update_rate = true;
    const costs::CostModel approx =
        costs::CostModel::approximate_2d(kProfile, weights, approx_options);
    const optimize::Optimum near =
        optimize::exhaustive_search(approx, bound, 80);
    const double near_cost = model.total_cost(near.threshold, bound);
    EXPECT_NEAR(near_cost, expected.near_cost_expected, kTolerance)
        << "U = " << row.update_cost << " m = " << expected.m << " (d' = "
        << near.threshold << " vs published " << expected.dp_expected << ")";
    if (near.threshold != expected.dp_expected) {
      EXPECT_NEAR(model.total_cost(expected.dp_expected, bound), near_cost,
                  kTolerance)
          << "U = " << row.update_cost << " m = " << expected.m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table2, ::testing::ValuesIn(table2()));

}  // namespace
}  // namespace pcn
