// Grand cross-validation: the same quantity computed by three independent
// routes — closed form / linear algebra, renewal theory, and discrete-event
// simulation — must agree.  Any bug in one route shows up as a triangle
// inequality violation here.
#include <gtest/gtest.h>

#include <cmath>

#include "pcn/baselines/baseline_models.hpp"
#include "pcn/costs/cost_model.hpp"
#include "pcn/markov/closed_form.hpp"
#include "pcn/markov/renewal.hpp"
#include "pcn/markov/steady_state.hpp"
#include "pcn/markov/transient.hpp"
#include "pcn/sim/network.hpp"

namespace pcn {
namespace {

constexpr MobilityProfile kProfile{0.1, 0.02};
constexpr CostWeights kWeights{100.0, 10.0};

TEST(CrossCheck, UpdateRateFourWays) {
  // (1) steady state x exit rate, (2) renewal reward, (3) long-run
  // transient average, (4) simulation frequency.
  const Dimension dim = Dimension::kOneD;
  const int d = 4;
  const markov::ChainSpec spec = markov::ChainSpec::exact(dim, kProfile);

  const double via_steady =
      markov::solve_steady_state(spec, d).back() * spec.up(d);
  const double via_renewal = markov::analyze_renewal(spec, d).update_rate();
  const double via_transient =
      markov::distribution_after(spec, d, 50000).back() * spec.up(d);

  sim::Network network(
      sim::NetworkConfig{dim, sim::SlotSemantics::kChainFaithful, 0xc0de},
      kWeights);
  const sim::TerminalId id = network.add_terminal(
      sim::make_distance_terminal(dim, kProfile, d, DelayBound(2)));
  network.run(500000);
  const double via_simulation =
      static_cast<double>(network.metrics(id).updates) / 500000.0;

  EXPECT_NEAR(via_renewal, via_steady, 1e-10);
  EXPECT_NEAR(via_transient, via_steady, 1e-8);
  EXPECT_NEAR(via_simulation, via_steady, 0.08 * via_steady);
}

TEST(CrossCheck, OneDimSteadyStateThreeWays) {
  const int d = 7;
  const markov::ChainSpec spec = markov::ChainSpec::one_dim(kProfile);
  const auto recurrence = markov::solve_steady_state(spec, d);
  const auto dense = markov::solve_steady_state_dense(spec, d);
  const auto closed = markov::closed_form_1d(kProfile, d);
  for (int i = 0; i <= d; ++i) {
    EXPECT_NEAR(recurrence[static_cast<std::size_t>(i)],
                dense[static_cast<std::size_t>(i)], 1e-12);
    EXPECT_NEAR(recurrence[static_cast<std::size_t>(i)],
                closed[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(CrossCheck, MeanCycleLengthThreeWays) {
  // Renewal solve vs truncated PMF vs measured update+call inter-reset
  // times (slots / resets).
  const Dimension dim = Dimension::kTwoD;
  const int d = 3;
  const markov::ChainSpec spec = markov::ChainSpec::exact(dim, kProfile);

  const double via_renewal =
      markov::analyze_renewal(spec, d).cycle_length();
  const auto pmf = markov::cycle_length_distribution(spec, d, 20000);
  double via_pmf = 0.0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    via_pmf += static_cast<double>(k) * pmf[k];
  }

  sim::Network network(
      sim::NetworkConfig{dim, sim::SlotSemantics::kChainFaithful, 0xfade},
      kWeights);
  const sim::TerminalId id = network.add_terminal(
      sim::make_distance_terminal(dim, kProfile, d, DelayBound(2)));
  const std::int64_t slots = 500000;
  network.run(slots);
  const sim::TerminalMetrics& m = network.metrics(id);
  const double via_simulation =
      static_cast<double>(slots) /
      static_cast<double>(m.updates + m.calls);

  EXPECT_NEAR(via_pmf, via_renewal, 1e-6 * via_renewal);
  EXPECT_NEAR(via_simulation, via_renewal, 0.05 * via_renewal);
}

TEST(CrossCheck, MovementPolicyCostThreeWays) {
  // Analytic baseline model vs simulation, with the analytic paging cost
  // re-derived from the mixed walk distribution by hand.
  const Dimension dim = Dimension::kTwoD;
  const int max_moves = 4;
  const DelayBound bound(2);
  const baselines::BaselineCosts model = baselines::movement_based_costs(
      dim, kProfile, kWeights, max_moves, bound);

  // Hand recomputation of the paging component.
  const double q = kProfile.move_prob;
  const double c = kProfile.call_prob;
  std::vector<double> count(static_cast<std::size_t>(max_moves), 0.0);
  double total = 0.0;
  for (int j = 0; j < max_moves; ++j) {
    count[static_cast<std::size_t>(j)] = std::pow(q / (q + c), j);
    total += count[static_cast<std::size_t>(j)];
  }
  std::vector<double> rings(static_cast<std::size_t>(max_moves), 0.0);
  for (int j = 0; j < max_moves; ++j) {
    const auto walk = baselines::walk_ring_distribution(dim, j);
    for (std::size_t i = 0; i < walk.size(); ++i) {
      rings[i] += count[static_cast<std::size_t>(j)] / total * walk[i];
    }
  }
  const double paging_by_hand =
      c * kWeights.poll_cost *
      costs::Partition::sdf(max_moves - 1, bound)
          .expected_polled_cells(rings, dim);
  EXPECT_NEAR(model.paging, paging_by_hand, 1e-12);

  sim::Network network(
      sim::NetworkConfig{dim, sim::SlotSemantics::kChainFaithful, 0xbead},
      kWeights);
  const sim::TerminalId id = network.add_terminal(
      sim::make_movement_terminal(dim, kProfile, max_moves, bound));
  network.run(500000);
  EXPECT_NEAR(network.metrics(id).cost_per_slot(), model.total(),
              0.05 * model.total());
}

TEST(CrossCheck, PagingDelayPredictionMatchesPartitionAndSimulation) {
  const Dimension dim = Dimension::kTwoD;
  const int d = 4;
  const DelayBound bound(3);
  const auto pi = markov::solve_steady_state(
      markov::ChainSpec::exact(dim, kProfile), d);
  const double via_partition =
      costs::Partition::sdf(d, bound).expected_delay_cycles(pi);

  sim::Network network(
      sim::NetworkConfig{dim, sim::SlotSemantics::kChainFaithful, 0xfeed},
      kWeights);
  const sim::TerminalId id = network.add_terminal(
      sim::make_distance_terminal(dim, kProfile, d, bound));
  network.run(500000);
  EXPECT_NEAR(network.metrics(id).paging_cycles.mean(), via_partition,
              0.05);
}

}  // namespace
}  // namespace pcn
