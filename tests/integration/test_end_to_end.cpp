// End-to-end integration: plan with the analytical facade, execute the plan
// in the discrete-event network, and check the measured behaviour agrees
// with the plan's predictions — the full pipeline a deployment would run.
#include <gtest/gtest.h>

#include "pcn/core/adaptive.hpp"
#include "pcn/core/location_manager.hpp"
#include "pcn/sim/network.hpp"

namespace pcn {
namespace {

constexpr MobilityProfile kProfile{0.05, 0.01};
constexpr CostWeights kWeights{100.0, 10.0};
constexpr std::int64_t kSlots = 300000;

struct PipelineResult {
  core::LocationPlan plan;
  sim::TerminalMetrics metrics;
};

PipelineResult run_pipeline(Dimension dim, DelayBound bound,
                            costs::PartitionScheme scheme,
                            std::uint64_t seed) {
  core::PlannerConfig config;
  config.scheme = scheme;
  const core::LocationManager manager(dim, kProfile, kWeights, config);
  const core::LocationPlan plan = manager.plan(bound);

  sim::Network network(
      sim::NetworkConfig{dim, sim::SlotSemantics::kChainFaithful, seed},
      kWeights);
  const sim::TerminalId id =
      network.add_terminal(manager.make_terminal_spec(plan));
  network.run(kSlots);
  return PipelineResult{plan, network.metrics(id)};
}

class EndToEnd : public ::testing::TestWithParam<Dimension> {};

TEST_P(EndToEnd, MeasuredCostTracksThePlannedCost) {
  const PipelineResult result = run_pipeline(
      GetParam(), DelayBound(2), costs::PartitionScheme::kSdfEqual, 42);
  EXPECT_NEAR(result.metrics.cost_per_slot(), result.plan.expected_total(),
              0.10 * result.plan.expected_total());
}

TEST_P(EndToEnd, MeasuredPagingDelayTracksThePlannedDelay) {
  const PipelineResult result = run_pipeline(
      GetParam(), DelayBound(3), costs::PartitionScheme::kSdfEqual, 43);
  ASSERT_GT(result.metrics.calls, 100);
  EXPECT_NEAR(result.metrics.paging_cycles.mean(),
              result.plan.expected_delay_cycles, 0.15);
  EXPECT_LE(result.metrics.paging_cycles.max_value(), 3);
}

TEST_P(EndToEnd, DpOptimalPartitionMeasuresNoWorseThanSdf) {
  const PipelineResult sdf = run_pipeline(
      GetParam(), DelayBound(2), costs::PartitionScheme::kSdfEqual, 44);
  const PipelineResult dp = run_pipeline(
      GetParam(), DelayBound(2), costs::PartitionScheme::kOptimalContiguous,
      44);
  // Planned: DP <= SDF by construction.  Measured: allow simulation noise.
  EXPECT_LE(dp.plan.expected_total(), sdf.plan.expected_total() + 1e-12);
  EXPECT_LE(dp.metrics.cost_per_slot(),
            sdf.metrics.cost_per_slot() * 1.06);
}

INSTANTIATE_TEST_SUITE_P(BothGeometries, EndToEnd,
                         ::testing::Values(Dimension::kOneD,
                                           Dimension::kTwoD));

TEST(EndToEndAdaptive, AdaptiveUserApproachesTheOraclePlanCost) {
  // A terminal that starts with a wrong profile estimate but adapts should
  // end up with a long-run cost close to the oracle plan's.
  const Dimension dim = Dimension::kTwoD;
  const DelayBound bound(2);

  const core::LocationManager oracle(dim, kProfile, kWeights);
  const core::LocationPlan oracle_plan = oracle.plan(bound);

  core::AdaptivePolicyConfig config;
  config.ewma_alpha = 0.002;
  config.replan_interval = 1000;

  sim::TerminalSpec spec;
  spec.call_prob = kProfile.call_prob;
  spec.mobility = std::make_unique<sim::RandomWalk>(dim, kProfile.move_prob);
  spec.update_policy = std::make_unique<core::AdaptiveDistancePolicy>(
      dim, kWeights, bound, MobilityProfile{0.5, 0.2}, config);
  spec.paging_policy = std::make_unique<sim::SdfSequentialPaging>(dim, bound);
  spec.knowledge_kind = sim::KnowledgeKind::kFixedDisk;
  spec.knowledge_radius = config.max_threshold;

  sim::Network network(
      sim::NetworkConfig{dim, sim::SlotSemantics::kChainFaithful, 4242},
      kWeights);
  const sim::TerminalId id = network.add_terminal(std::move(spec));
  network.run(kSlots);

  // Within 25% of the oracle despite the cold start (the early mis-planned
  // slots are included in the average).
  EXPECT_NEAR(network.metrics(id).cost_per_slot(),
              oracle_plan.expected_total(),
              0.25 * oracle_plan.expected_total());
}

TEST(EndToEndBaselines, DistanceBasedBeatsTheLaBaselineOnThePaperProfile) {
  // The paper's motivation: per-user distance thresholds beat static LAs.
  // Compare the planned-optimal distance terminal against an LA terminal
  // of comparable paging delay (both locate in one cycle -> m = 1).
  const Dimension dim = Dimension::kTwoD;
  const core::LocationManager manager(dim, kProfile, kWeights);
  const core::LocationPlan plan = manager.plan(DelayBound(1));

  sim::Network network(
      sim::NetworkConfig{dim, sim::SlotSemantics::kChainFaithful, 77},
      kWeights);
  const sim::TerminalId distance =
      network.add_terminal(manager.make_terminal_spec(plan));
  const sim::TerminalId la =
      network.add_terminal(sim::make_la_terminal(dim, kProfile, 2));
  network.run(kSlots);

  EXPECT_LT(network.metrics(distance).cost_per_slot(),
            network.metrics(la).cost_per_slot());
}

}  // namespace
}  // namespace pcn
