// Validation D as an asserting test: the bench/sim_validation.cpp scenario
// grid, with the printed side-by-side comparison replaced by the
// statistical oracle's confidence bands.  1-D chain-faithful runs must
// match the Markov cost model within pure Monte-Carlo noise (z = 4 bands
// plus the chi-square occupancy fit); 2-D adds the iso-distance chain
// approximation slack (see test_prop_sim_vs_chain.cpp), and independent
// semantics adds the q*c modeling-gap slack on top.  The bench target
// keeps the human-readable report; this suite is the gate.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pcn/costs/cost_model.hpp"
#include "support/fleet.hpp"
#include "support/oracles.hpp"

namespace pcn::proptest {
namespace {

constexpr int kTerminals = 2;
constexpr std::int64_t kSlotsPerTerminal = 250000;
constexpr double kZ = 4.0;
constexpr double kGofAlpha = 1e-6;

// The exact grid bench/sim_validation.cpp reports on.
std::vector<Scenario> validation_grid() {
  const CostWeights weights{100.0, 10.0};
  const std::uint64_t seed = 0xd1ce;
  return {
      {Dimension::kOneD, {0.05, 0.01}, 3, DelayBound(1), weights, seed},
      {Dimension::kOneD, {0.05, 0.01}, 5, DelayBound(3), weights, seed},
      {Dimension::kOneD, {0.3, 0.02}, 6, DelayBound(2), weights, seed},
      {Dimension::kTwoD, {0.05, 0.01}, 1, DelayBound(1), weights, seed},
      {Dimension::kTwoD, {0.05, 0.01}, 2, DelayBound(3), weights, seed},
      {Dimension::kTwoD, {0.3, 0.02}, 4, DelayBound(2), weights, seed},
      {Dimension::kTwoD, {0.5, 0.005}, 6, DelayBound(3), weights, seed},
  };
}

double modeling_slack(const Scenario& scenario) {
  return 0.05 + 3.0 * scenario.profile.move_prob * scenario.profile.call_prob;
}

double ring_approximation_slack(const Scenario& scenario) {
  if (scenario.dim == Dimension::kOneD) return 0.0;
  return 0.03 + 0.25 * scenario.profile.move_prob;
}

void expect_inside(const Scenario& scenario, const char* what,
                   const Band& band, double measured) {
  EXPECT_TRUE(band.contains(measured))
      << scenario.describe() << ": " << what << " = " << measured
      << " outside band " << to_string(band);
}

void check_scenario(const Scenario& scenario, sim::SlotSemantics semantics,
                    double slack) {
  const FleetMetrics fleet = run_distance_fleet_aggregate(
      scenario, semantics, 1, kTerminals, kSlotsPerTerminal);
  const costs::CostModel model = costs::CostModel::exact(
      scenario.dim, scenario.profile, scenario.weights);
  const CostBands bands = predicted_cost_bands(
      model, scenario.threshold, scenario.bound, fleet.slots, kZ);

  expect_inside(scenario, "C_u/slot", bands.update.widened(slack),
                fleet.update_cost_per_slot());
  expect_inside(scenario, "C_v/slot", bands.paging.widened(slack),
                fleet.paging_cost_per_slot());
  expect_inside(scenario, "C_T/slot", bands.total.widened(slack),
                fleet.cost_per_slot());
  ASSERT_GT(fleet.calls, 200) << scenario.describe();
  expect_inside(scenario, "mean paging delay", bands.delay.widened(slack),
                fleet.paging_cycles.mean());

  if (semantics == sim::SlotSemantics::kChainFaithful &&
      scenario.dim == Dimension::kOneD) {
    const GofResult fit = occupancy_goodness_of_fit(
        model, scenario.threshold, fleet.ring_distance, kGofAlpha);
    EXPECT_TRUE(fit.accepted)
        << scenario.describe()
        << ": ring occupancy rejects the steady state: " << fit.describe();
  }
}

TEST(SimValidation, ChainFaithfulGridStaysInsideMonteCarloBands) {
  for (const Scenario& scenario : validation_grid()) {
    check_scenario(scenario, sim::SlotSemantics::kChainFaithful,
                   ring_approximation_slack(scenario));
  }
}

TEST(SimValidation, IndependentGridStaysInsideModelingGapBands) {
  for (const Scenario& scenario : validation_grid()) {
    check_scenario(scenario, sim::SlotSemantics::kIndependent,
                   ring_approximation_slack(scenario) +
                       modeling_slack(scenario));
  }
}

}  // namespace
}  // namespace pcn::proptest
