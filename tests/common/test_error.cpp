#include "pcn/common/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pcn {
namespace {

TEST(Expect, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(PCN_EXPECT(1 + 1 == 2, "never"));
}

TEST(Expect, FailingConditionThrowsInvalidArgumentWithMessage) {
  try {
    PCN_EXPECT(false, "the message");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    EXPECT_STREQ(error.what(), "the message");
  }
}

TEST(Expect, InvalidArgumentIsAStdInvalidArgument) {
  EXPECT_THROW(PCN_EXPECT(false, "x"), std::invalid_argument);
}

TEST(Assert, PassingInvariantDoesNothing) {
  EXPECT_NO_THROW(PCN_ASSERT(2 > 1));
}

TEST(Assert, FailingInvariantThrowsInternalErrorNamingTheExpression) {
  try {
    PCN_ASSERT(1 == 2);
    FAIL() << "expected InternalError";
  } catch (const InternalError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Assert, InternalErrorIsAStdLogicError) {
  EXPECT_THROW(PCN_ASSERT(false), std::logic_error);
}

}  // namespace
}  // namespace pcn
