#include "pcn/common/params.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"

namespace pcn {
namespace {

TEST(Dimension, ToStringNamesBothGeometries) {
  EXPECT_EQ(to_string(Dimension::kOneD), "1-D");
  EXPECT_EQ(to_string(Dimension::kTwoD), "2-D");
}

TEST(Dimension, NeighborCountMatchesGeometry) {
  EXPECT_EQ(neighbor_count(Dimension::kOneD), 2);
  EXPECT_EQ(neighbor_count(Dimension::kTwoD), 6);
}

TEST(MobilityProfile, AcceptsPaperParameterRanges) {
  // The paper sweeps q in [0.001, 0.5] and c in [0.001, 0.1].
  EXPECT_NO_THROW((MobilityProfile{0.001, 0.001}.validate()));
  EXPECT_NO_THROW((MobilityProfile{0.5, 0.1}.validate()));
  EXPECT_NO_THROW((MobilityProfile{1.0, 0.0}.validate()));
}

TEST(MobilityProfile, RejectsZeroOrNegativeMoveProbability) {
  EXPECT_THROW((MobilityProfile{0.0, 0.01}.validate()), InvalidArgument);
  EXPECT_THROW((MobilityProfile{-0.1, 0.01}.validate()), InvalidArgument);
}

TEST(MobilityProfile, RejectsMoveProbabilityAboveOne) {
  EXPECT_THROW((MobilityProfile{1.1, 0.0}.validate()), InvalidArgument);
}

TEST(MobilityProfile, RejectsCallProbabilityOutsideUnitInterval) {
  EXPECT_THROW((MobilityProfile{0.1, -0.01}.validate()), InvalidArgument);
  EXPECT_THROW((MobilityProfile{0.1, 1.0}.validate()), InvalidArgument);
}

TEST(MobilityProfile, RejectsCompetingEventMassAboveOne) {
  // q + c > 1 leaves no room for the self-loop in the slotted model.
  EXPECT_THROW((MobilityProfile{0.8, 0.3}.validate()), InvalidArgument);
}

TEST(CostWeights, AcceptsPositiveCosts) {
  EXPECT_NO_THROW((CostWeights{1.0, 1.0}.validate()));
  EXPECT_NO_THROW((CostWeights{1000.0, 10.0}.validate()));
}

TEST(CostWeights, RejectsNonPositiveCosts) {
  EXPECT_THROW((CostWeights{0.0, 1.0}.validate()), InvalidArgument);
  EXPECT_THROW((CostWeights{1.0, 0.0}.validate()), InvalidArgument);
  EXPECT_THROW((CostWeights{-5.0, 1.0}.validate()), InvalidArgument);
}

TEST(DelayBound, BoundedCarriesCycleCount) {
  const DelayBound bound(3);
  EXPECT_FALSE(bound.is_unbounded());
  EXPECT_EQ(bound.cycles(), 3);
  EXPECT_EQ(to_string(bound), "3");
}

TEST(DelayBound, UnboundedHasNoCycleCount) {
  const DelayBound bound = DelayBound::unbounded();
  EXPECT_TRUE(bound.is_unbounded());
  EXPECT_THROW(bound.cycles(), InvalidArgument);
  EXPECT_EQ(to_string(bound), "unbounded");
}

TEST(DelayBound, RejectsNonPositiveCycleCounts) {
  EXPECT_THROW(DelayBound(0), InvalidArgument);
  EXPECT_THROW(DelayBound(-1), InvalidArgument);
}

TEST(DelayBound, SubareaCountIsPaperEquationTwo) {
  // ℓ = min(d + 1, m)
  EXPECT_EQ(DelayBound(1).subarea_count(5), 1);
  EXPECT_EQ(DelayBound(3).subarea_count(5), 3);
  EXPECT_EQ(DelayBound(10).subarea_count(5), 6);
  EXPECT_EQ(DelayBound::unbounded().subarea_count(5), 6);
  EXPECT_EQ(DelayBound::unbounded().subarea_count(0), 1);
}

TEST(DelayBound, SubareaCountRejectsNegativeThreshold) {
  EXPECT_THROW(DelayBound(1).subarea_count(-1), InvalidArgument);
}

TEST(DelayBound, EqualityComparesBoundKindAndCycles) {
  EXPECT_EQ(DelayBound(2), DelayBound(2));
  EXPECT_NE(DelayBound(2), DelayBound(3));
  EXPECT_EQ(DelayBound::unbounded(), DelayBound::unbounded());
  EXPECT_NE(DelayBound(2), DelayBound::unbounded());
}

}  // namespace
}  // namespace pcn
