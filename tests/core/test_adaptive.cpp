#include "pcn/core/adaptive.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"
#include "pcn/optimize/near_optimal.hpp"
#include "pcn/sim/network.hpp"

namespace pcn::core {
namespace {

constexpr CostWeights kWeights{100.0, 10.0};

sim::TerminalSpec adaptive_spec(Dimension dim, MobilityProfile true_profile,
                                MobilityProfile initial_guess,
                                DelayBound bound,
                                AdaptivePolicyConfig config = {}) {
  sim::TerminalSpec spec;
  spec.call_prob = true_profile.call_prob;
  spec.mobility = std::make_unique<sim::RandomWalk>(dim,
                                                    true_profile.move_prob);
  spec.update_policy = std::make_unique<AdaptiveDistancePolicy>(
      dim, kWeights, bound, initial_guess, config);
  spec.paging_policy = std::make_unique<sim::SdfSequentialPaging>(dim, bound);
  spec.knowledge_kind = sim::KnowledgeKind::kFixedDisk;
  // The adaptive threshold never exceeds max_threshold; the knowledge disk
  // must cover the largest threshold the controller may pick.
  spec.knowledge_radius = config.max_threshold;
  return spec;
}

TEST(AdaptiveDistancePolicy, SeedsWithAPlanFromTheInitialEstimates) {
  const MobilityProfile initial{0.05, 0.01};
  const AdaptiveDistancePolicy policy(Dimension::kTwoD, kWeights,
                                      DelayBound(1), initial);
  // Table 2, U = 100, m = 1: d* = 1.
  EXPECT_EQ(policy.threshold(), 1);
  EXPECT_DOUBLE_EQ(policy.estimated_move_prob(), 0.05);
  EXPECT_DOUBLE_EQ(policy.estimated_call_prob(), 0.01);
  EXPECT_EQ(policy.replans(), 1);
}

TEST(AdaptiveDistancePolicy, EstimatesConvergeToTheTrueRates) {
  const MobilityProfile truth{0.3, 0.02};
  const MobilityProfile guess{0.01, 0.1};  // badly wrong on purpose
  AdaptivePolicyConfig config;
  config.ewma_alpha = 0.005;
  config.replan_interval = 2000;

  sim::Network network(
      sim::NetworkConfig{Dimension::kTwoD,
                         sim::SlotSemantics::kChainFaithful, 77},
      kWeights);
  sim::TerminalSpec spec = adaptive_spec(Dimension::kTwoD, truth, guess,
                                         DelayBound(2), config);
  auto* policy = static_cast<AdaptiveDistancePolicy*>(spec.update_policy.get());
  network.add_terminal(std::move(spec));
  network.run(60000);

  EXPECT_NEAR(policy->estimated_move_prob(), truth.move_prob, 0.05);
  EXPECT_NEAR(policy->estimated_call_prob(), truth.call_prob, 0.015);
  EXPECT_GT(policy->replans(), 10);
}

TEST(AdaptiveDistancePolicy, ConvergesToTheOracleThreshold) {
  const MobilityProfile truth{0.2, 0.01};
  const MobilityProfile guess{0.01, 0.1};
  AdaptivePolicyConfig config;
  config.ewma_alpha = 0.005;
  config.replan_interval = 2000;
  const DelayBound bound(2);

  sim::Network network(
      sim::NetworkConfig{Dimension::kTwoD,
                         sim::SlotSemantics::kChainFaithful, 99},
      kWeights);
  sim::TerminalSpec spec =
      adaptive_spec(Dimension::kTwoD, truth, guess, bound, config);
  auto* policy = static_cast<AdaptiveDistancePolicy*>(spec.update_policy.get());
  network.add_terminal(std::move(spec));
  network.run(80000);

  const costs::CostModel oracle =
      costs::CostModel::exact(Dimension::kTwoD, truth, kWeights);
  const optimize::Optimum best =
      optimize::near_optimal_search(oracle, bound, config.max_threshold);
  EXPECT_LE(std::abs(policy->threshold() - best.threshold), 1)
      << "adaptive " << policy->threshold() << " oracle " << best.threshold;
}

TEST(AdaptiveDistancePolicy, TracksAPhasedMobilityProfile) {
  // Alternating commute (fast) and office (slow) phases: the controller's
  // threshold after a long slow phase must not exceed its threshold after
  // a long fast phase.
  const DelayBound bound(2);
  AdaptivePolicyConfig config;
  config.ewma_alpha = 0.01;
  config.replan_interval = 500;

  sim::TerminalSpec spec;
  spec.call_prob = 0.01;
  spec.mobility = std::make_unique<sim::PhasedRandomWalk>(
      Dimension::kTwoD,
      std::vector<sim::PhasedRandomWalk::Phase>{{0.4, 20000}, {0.01, 20000}});
  spec.update_policy = std::make_unique<AdaptiveDistancePolicy>(
      Dimension::kTwoD, kWeights, bound, MobilityProfile{0.1, 0.01}, config);
  spec.paging_policy =
      std::make_unique<sim::SdfSequentialPaging>(Dimension::kTwoD, bound);
  spec.knowledge_kind = sim::KnowledgeKind::kFixedDisk;
  spec.knowledge_radius = config.max_threshold;
  auto* policy = static_cast<AdaptiveDistancePolicy*>(spec.update_policy.get());

  sim::Network network(
      sim::NetworkConfig{Dimension::kTwoD,
                         sim::SlotSemantics::kChainFaithful, 1234},
      kWeights);
  network.add_terminal(std::move(spec));

  network.run(20000);  // end of fast phase
  const int fast_threshold = policy->threshold();
  network.run(20000);  // end of slow phase
  const int slow_threshold = policy->threshold();
  EXPECT_LT(slow_threshold, fast_threshold);
}

TEST(AdaptiveDistancePolicy, ValidatesItsConfiguration) {
  const MobilityProfile initial{0.05, 0.01};
  AdaptivePolicyConfig bad;
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(AdaptiveDistancePolicy(Dimension::kTwoD, kWeights,
                                      DelayBound(1), initial, bad),
               InvalidArgument);
  bad = {};
  bad.replan_interval = 0;
  EXPECT_THROW(AdaptiveDistancePolicy(Dimension::kTwoD, kWeights,
                                      DelayBound(1), initial, bad),
               InvalidArgument);
  bad = {};
  bad.max_threshold = 0;
  EXPECT_THROW(AdaptiveDistancePolicy(Dimension::kTwoD, kWeights,
                                      DelayBound(1), initial, bad),
               InvalidArgument);
  bad = {};
  bad.floor_probability = 0.0;
  EXPECT_THROW(AdaptiveDistancePolicy(Dimension::kTwoD, kWeights,
                                      DelayBound(1), initial, bad),
               InvalidArgument);
}

TEST(AdaptiveDistancePolicy, NameReflectsTheCurrentThreshold) {
  const AdaptiveDistancePolicy policy(Dimension::kTwoD, kWeights,
                                      DelayBound(1),
                                      MobilityProfile{0.05, 0.01});
  EXPECT_EQ(policy.name(), "adaptive-distance(d=1)");
}

}  // namespace
}  // namespace pcn::core
