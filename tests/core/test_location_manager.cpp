#include "pcn/core/location_manager.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"
#include "pcn/optimize/exhaustive.hpp"

namespace pcn::core {
namespace {

constexpr MobilityProfile kPaperProfile{0.05, 0.01};
constexpr CostWeights kPaperWeights{100.0, 10.0};

TEST(LocationManager, PlanReproducesTheExhaustiveOptimum) {
  const LocationManager manager(Dimension::kTwoD, kPaperProfile,
                                kPaperWeights);
  const LocationPlan plan = manager.plan(DelayBound(3));
  const optimize::Optimum direct = optimize::exhaustive_search(
      manager.model(), DelayBound(3), manager.config().max_threshold);
  EXPECT_EQ(plan.threshold, direct.threshold);
  EXPECT_NEAR(plan.expected_total(), direct.total_cost, 1e-12);
}

TEST(LocationManager, PaperTable2Row100) {
  const LocationManager manager(Dimension::kTwoD, kPaperProfile,
                                kPaperWeights);
  EXPECT_EQ(manager.plan(DelayBound(1)).threshold, 1);
  EXPECT_EQ(manager.plan(DelayBound(3)).threshold, 2);
  EXPECT_EQ(manager.plan(DelayBound::unbounded()).threshold, 2);
  EXPECT_NEAR(manager.plan(DelayBound(1)).expected_total(), 2.039, 5e-4);
}

TEST(LocationManager, PlanPartitionMatchesTheThresholdAndBound) {
  const LocationManager manager(Dimension::kTwoD, kPaperProfile,
                                kPaperWeights);
  const DelayBound bound(2);
  const LocationPlan plan = manager.plan(bound);
  EXPECT_EQ(plan.partition.threshold(), plan.threshold);
  EXPECT_EQ(plan.partition.subarea_count(),
            bound.subarea_count(plan.threshold));
}

TEST(LocationManager, ExpectedDelayIsWithinTheBound) {
  const LocationManager manager(Dimension::kTwoD, kPaperProfile,
                                kPaperWeights);
  for (int m : {1, 2, 3, 5}) {
    const LocationPlan plan = manager.plan(DelayBound(m));
    EXPECT_GE(plan.expected_delay_cycles, 1.0);
    EXPECT_LE(plan.expected_delay_cycles, static_cast<double>(m));
  }
}

TEST(LocationManager, AnnealingOptimizerLandsNearTheScanOptimum) {
  PlannerConfig config;
  config.optimizer = OptimizerKind::kSimulatedAnnealing;
  config.annealing.seed = 5;
  const LocationManager annealed(Dimension::kTwoD, kPaperProfile,
                                 kPaperWeights, config);
  const LocationManager scanned(Dimension::kTwoD, kPaperProfile,
                                kPaperWeights);
  const DelayBound bound(3);
  EXPECT_LE(annealed.plan(bound).expected_total(),
            scanned.plan(bound).expected_total() * 1.02);
}

TEST(LocationManager, NearOptimalOptimizerUsesTheApproximateChain) {
  PlannerConfig config;
  config.optimizer = OptimizerKind::kNearOptimal;
  const LocationManager manager(Dimension::kTwoD, kPaperProfile,
                                kPaperWeights, config);
  const LocationPlan plan = manager.plan(DelayBound(3));
  const LocationManager exact(Dimension::kTwoD, kPaperProfile,
                              kPaperWeights);
  EXPECT_LE(std::abs(plan.threshold -
                     exact.plan(DelayBound(3)).threshold),
            1);
}

TEST(LocationManager, OptimalContiguousSchemeLowersOrMatchesTheCost) {
  PlannerConfig dp;
  dp.scheme = costs::PartitionScheme::kOptimalContiguous;
  const LocationManager optimal(Dimension::kTwoD, kPaperProfile,
                                kPaperWeights, dp);
  const LocationManager sdf(Dimension::kTwoD, kPaperProfile, kPaperWeights);
  for (int m : {1, 2, 3}) {
    EXPECT_LE(optimal.plan(DelayBound(m)).expected_total(),
              sdf.plan(DelayBound(m)).expected_total() + 1e-12);
  }
}

TEST(LocationManager, TotalCostDelegatesToTheModel) {
  const LocationManager manager(Dimension::kOneD, kPaperProfile,
                                kPaperWeights);
  EXPECT_NEAR(manager.total_cost(3, DelayBound(1)), 0.897, 5e-4);
}

TEST(LocationManager, MakeTerminalSpecWiresThePlan) {
  const LocationManager manager(Dimension::kTwoD, kPaperProfile,
                                kPaperWeights);
  const LocationPlan plan = manager.plan(DelayBound(2));
  sim::TerminalSpec spec = manager.make_terminal_spec(plan);
  EXPECT_EQ(spec.knowledge_radius, plan.threshold);
  EXPECT_EQ(spec.knowledge_kind, sim::KnowledgeKind::kFixedDisk);
  EXPECT_DOUBLE_EQ(spec.call_prob, kPaperProfile.call_prob);
  ASSERT_NE(spec.update_policy, nullptr);
  ASSERT_NE(spec.paging_policy, nullptr);
  EXPECT_LE(spec.paging_policy->delay_bound().cycles(), 2);

  // The spec must actually run.
  sim::Network network(
      sim::NetworkConfig{Dimension::kTwoD,
                         sim::SlotSemantics::kChainFaithful, 5},
      kPaperWeights);
  const sim::TerminalId id = network.add_terminal(std::move(spec));
  network.run(5000);
  EXPECT_EQ(network.metrics(id).slots, 5000);
}

TEST(LocationManager, RejectsInvalidConfiguration) {
  PlannerConfig config;
  config.max_threshold = -1;
  EXPECT_THROW(LocationManager(Dimension::kOneD, kPaperProfile,
                               kPaperWeights, config),
               InvalidArgument);
}

TEST(LocationManager, LegacyFlagReproducesTable1DZeroRows) {
  PlannerConfig config;
  config.legacy_d0_generic_update_rate = true;
  const LocationManager legacy(Dimension::kOneD, kPaperProfile,
                               CostWeights{1.0, 10.0}, config);
  // Table 1, U = 1: d* = 0, C_T = 0.125 for every delay bound.
  const LocationPlan plan = legacy.plan(DelayBound(1));
  EXPECT_EQ(plan.threshold, 0);
  EXPECT_NEAR(plan.expected_total(), 0.125, 1e-9);
}

}  // namespace
}  // namespace pcn::core
