#include "pcn/costs/cost_model.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"
#include "pcn/geometry/ring_metrics.hpp"
#include "pcn/markov/steady_state.hpp"

namespace pcn::costs {
namespace {

constexpr MobilityProfile kPaperProfile{0.05, 0.01};  // q, c of Tables 1-2
constexpr CostWeights kPaperWeights{100.0, 10.0};     // U = 100, V = 10

// --- C_u ---------------------------------------------------------------------

TEST(UpdateCost, EquationSixtyOne) {
  // C_u(d) = p_{d,d} a_{d,d+1} U, hand-wired against the solver.
  const CostModel model =
      CostModel::exact(Dimension::kOneD, kPaperProfile, kPaperWeights);
  const auto pi = markov::solve_steady_state(model.spec(), 3);
  EXPECT_NEAR(model.update_cost(3), pi[3] * (0.05 / 2) * 100.0, 1e-12);
}

TEST(UpdateCost, ThresholdZeroUsesFullOutwardRate) {
  // At d = 0 every move triggers an update: C_u(0) = q U (eq. 3).
  const CostModel model =
      CostModel::exact(Dimension::kOneD, kPaperProfile, kPaperWeights);
  EXPECT_NEAR(model.update_cost(0), 0.05 * 100.0, 1e-12);
}

TEST(UpdateCost, LegacyTable1FlagHalvesTheDZeroRate) {
  // The paper's published Table 1 used q/2 at d = 0; the flag reproduces it.
  CostModelOptions options;
  options.legacy_d0_generic_update_rate = true;
  const CostModel model = CostModel::exact(Dimension::kOneD, kPaperProfile,
                                           kPaperWeights, options);
  EXPECT_NEAR(model.update_cost(0), 0.025 * 100.0, 1e-12);
  // d >= 1 unaffected.
  const CostModel plain =
      CostModel::exact(Dimension::kOneD, kPaperProfile, kPaperWeights);
  EXPECT_NEAR(model.update_cost(3), plain.update_cost(3), 1e-15);
}

TEST(UpdateCost, LegacyFlagRejectedForTwoDimExactOnly) {
  CostModelOptions options;
  options.legacy_d0_generic_update_rate = true;
  // The paper's Table 2 exact columns used a_{0,1} = q, so the quirk is
  // rejected there; its near-optimal columns used q/3, so the approximate
  // chain accepts it.
  EXPECT_THROW(CostModel::exact(Dimension::kTwoD, kPaperProfile,
                                kPaperWeights, options),
               InvalidArgument);
  const CostModel approx =
      CostModel::approximate_2d(kPaperProfile, kPaperWeights, options);
  EXPECT_NEAR(approx.update_cost(0), (0.05 / 3.0) * 100.0, 1e-12);
}

TEST(UpdateCost, DecreasesWithThreshold) {
  // Larger residing areas mean rarer updates.
  const CostModel model =
      CostModel::exact(Dimension::kTwoD, kPaperProfile, kPaperWeights);
  double previous = model.update_cost(1);
  for (int d = 2; d <= 12; ++d) {
    const double current = model.update_cost(d);
    EXPECT_LT(current, previous) << "d = " << d;
    previous = current;
  }
}

// --- C_v ---------------------------------------------------------------------

class PagingCostBlanket : public ::testing::TestWithParam<Dimension> {};

TEST_P(PagingCostBlanket, DelayOneIsEquationSixtyTwo) {
  // C_v(d, 1) = c g(d) V.
  const Dimension dim = GetParam();
  const CostModel model = CostModel::exact(dim, kPaperProfile, kPaperWeights);
  for (int d = 0; d <= 10; ++d) {
    EXPECT_NEAR(model.paging_cost(d, DelayBound(1)),
                0.01 * static_cast<double>(geometry::cells_within(dim, d)) *
                    10.0,
                1e-12)
        << "d = " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(BothGeometries, PagingCostBlanket,
                         ::testing::Values(Dimension::kOneD,
                                           Dimension::kTwoD));

TEST(PagingCost, HandComputedOneDimDelayTwo) {
  // d = 1, m = 2 (1-D): alpha = (p0, p1), w = (1, 3):
  // C_v = c V (p0 + 3 p1).
  const CostModel model =
      CostModel::exact(Dimension::kOneD, kPaperProfile, kPaperWeights);
  const auto pi = markov::solve_steady_state(model.spec(), 1);
  EXPECT_NEAR(model.paging_cost(1, DelayBound(2)),
              0.01 * 10.0 * (pi[0] * 1 + pi[1] * 3), 1e-12);
}

TEST(PagingCost, SdfNeverExceedsBlanketAndUnboundedIsFinest) {
  // The paper's SDF equal-split rule is NOT monotone in m (its group
  // boundaries shift discontinuously with gamma), but every sequential
  // schedule beats blanket polling, and m >= d + 1 saturates at the
  // one-ring-per-cycle partition.
  const CostModel model =
      CostModel::exact(Dimension::kTwoD, kPaperProfile, kPaperWeights);
  for (int d : {3, 6, 10}) {
    const double blanket = model.paging_cost(d, DelayBound(1));
    const double unbounded =
        model.paging_cost(d, DelayBound::unbounded());
    for (int m = 2; m <= d + 2; ++m) {
      const double current = model.paging_cost(d, DelayBound(m));
      EXPECT_LE(current, blanket + 1e-12) << "d=" << d << " m=" << m;
      EXPECT_GE(current, unbounded - 1e-12) << "d=" << d << " m=" << m;
    }
    EXPECT_NEAR(model.paging_cost(d, DelayBound(d + 1)), unbounded, 1e-12);
  }
}

TEST(PagingCost, OptimalContiguousSchemeIsMonotoneInDelay) {
  // With DP-optimal partitions, extra polling cycles can only help.
  CostModelOptions options;
  options.scheme = PartitionScheme::kOptimalContiguous;
  const CostModel model = CostModel::exact(Dimension::kTwoD, kPaperProfile,
                                           kPaperWeights, options);
  for (int d : {3, 6, 10}) {
    double previous = model.paging_cost(d, DelayBound(1));
    for (int m = 2; m <= d + 2; ++m) {
      const double current = model.paging_cost(d, DelayBound(m));
      EXPECT_LE(current, previous + 1e-12) << "d=" << d << " m=" << m;
      previous = current;
    }
  }
}

TEST(PagingCost, ExplicitPartitionOverloadAgreesWithScheme) {
  const CostModel model =
      CostModel::exact(Dimension::kTwoD, kPaperProfile, kPaperWeights);
  const DelayBound bound(3);
  const Partition partition = model.partition(7, bound);
  EXPECT_NEAR(model.paging_cost(7, partition),
              model.paging_cost(7, bound), 1e-15);
}

TEST(PagingCost, PartitionThresholdMismatchIsRejected) {
  const CostModel model =
      CostModel::exact(Dimension::kTwoD, kPaperProfile, kPaperWeights);
  const Partition partition = Partition::sdf(5, DelayBound(2));
  EXPECT_THROW(model.paging_cost(4, partition), InvalidArgument);
}

// --- C_T and scheme options ---------------------------------------------------

TEST(TotalCost, IsSumOfComponents) {
  const CostModel model =
      CostModel::exact(Dimension::kTwoD, kPaperProfile, kPaperWeights);
  const DelayBound bound(2);
  const CostBreakdown breakdown = model.cost(5, bound);
  EXPECT_NEAR(breakdown.total(),
              model.update_cost(5) + model.paging_cost(5, bound), 1e-15);
  EXPECT_NEAR(model.total_cost(5, bound), breakdown.total(), 1e-15);
}

TEST(TotalCost, OptimalContiguousSchemeNeverCostsMoreThanSdf) {
  CostModelOptions optimal;
  optimal.scheme = PartitionScheme::kOptimalContiguous;
  const CostModel dp = CostModel::exact(Dimension::kTwoD, kPaperProfile,
                                        kPaperWeights, optimal);
  const CostModel sdf =
      CostModel::exact(Dimension::kTwoD, kPaperProfile, kPaperWeights);
  for (int d : {2, 5, 9}) {
    for (int m : {1, 2, 3}) {
      EXPECT_LE(dp.total_cost(d, DelayBound(m)),
                sdf.total_cost(d, DelayBound(m)) + 1e-12)
          << "d=" << d << " m=" << m;
    }
  }
}

TEST(TotalCost, ApproximateTwoDimModelIsCloseToExact) {
  // Section 4.2: the q/(6i) truncation changes costs only mildly.
  const CostModel exact =
      CostModel::exact(Dimension::kTwoD, kPaperProfile, kPaperWeights);
  const CostModel approx =
      CostModel::approximate_2d(kPaperProfile, kPaperWeights);
  for (int d : {2, 4, 8}) {
    const double a = exact.total_cost(d, DelayBound(3));
    const double b = approx.total_cost(d, DelayBound(3));
    EXPECT_NEAR(a, b, 0.35 * a) << "d = " << d;
  }
}

// --- regression against published table rows ---------------------------------

TEST(PaperValues, Table1RowU100) {
  // U = 100, V = 10, q = 0.05, c = 0.01 (1-D):
  //   d* = 3 -> C_T = 0.897 (m=1); d* = 4 -> 0.589 (m=2);
  //   d* = 5 -> 0.515 (m=3); d* = 7 -> 0.397 (unbounded).
  const CostModel model =
      CostModel::exact(Dimension::kOneD, kPaperProfile, kPaperWeights);
  EXPECT_NEAR(model.total_cost(3, DelayBound(1)), 0.897, 5e-4);
  EXPECT_NEAR(model.total_cost(4, DelayBound(2)), 0.589, 5e-4);
  EXPECT_NEAR(model.total_cost(5, DelayBound(3)), 0.515, 5e-4);
  EXPECT_NEAR(model.total_cost(7, DelayBound::unbounded()), 0.397, 5e-4);
}

TEST(PaperValues, Table2RowU100) {
  // 2-D exact: d* = 1 -> 2.039 (m=1); d* = 2 -> 1.335 (m=3 and unbounded).
  const CostModel model =
      CostModel::exact(Dimension::kTwoD, kPaperProfile, kPaperWeights);
  EXPECT_NEAR(model.total_cost(1, DelayBound(1)), 2.039, 5e-4);
  EXPECT_NEAR(model.total_cost(2, DelayBound(3)), 1.335, 5e-4);
  EXPECT_NEAR(model.total_cost(2, DelayBound::unbounded()), 1.335, 5e-4);
}

TEST(PaperValues, Table2SmallUOptimaAreDZero) {
  // For U <= 8 (2-D) staying at d = 0 is optimal: C_T = c V + q U.
  const CostModel model =
      CostModel::exact(Dimension::kTwoD, kPaperProfile,
                       CostWeights{6.0, 10.0});
  EXPECT_NEAR(model.total_cost(0, DelayBound(1)), 0.01 * 10 + 0.05 * 6,
              1e-12);
}

TEST(CostModel, RejectsNegativeThreshold) {
  const CostModel model =
      CostModel::exact(Dimension::kOneD, kPaperProfile, kPaperWeights);
  EXPECT_THROW(model.update_cost(-1), InvalidArgument);
}

TEST(CostModel, RejectsInvalidWeights) {
  EXPECT_THROW(CostModel::exact(Dimension::kOneD, kPaperProfile,
                                CostWeights{0.0, 1.0}),
               InvalidArgument);
}

}  // namespace
}  // namespace pcn::costs
