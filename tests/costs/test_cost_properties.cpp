// Property sweep over randomized parameters: structural invariants of the
// cost model that must hold for *any* admissible (q, c, U, V, d, m).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "pcn/costs/cost_model.hpp"
#include "pcn/geometry/ring_metrics.hpp"
#include "pcn/markov/steady_state.hpp"
#include "pcn/stats/rng.hpp"

namespace pcn::costs {
namespace {

struct RandomCase {
  Dimension dim;
  MobilityProfile profile;
  CostWeights weights;
  int threshold;
  DelayBound bound;
};

RandomCase draw_case(stats::Rng& rng) {
  RandomCase c{Dimension::kOneD, MobilityProfile{}, CostWeights{}, 0,
               DelayBound(1)};
  c.dim = rng.next_bernoulli(0.5) ? Dimension::kOneD : Dimension::kTwoD;
  c.profile.move_prob = 0.001 + rng.next_unit() * 0.6;
  c.profile.call_prob =
      0.0005 + rng.next_unit() * std::min(0.2, 1.0 - c.profile.move_prob -
                                                   0.01);
  c.weights.update_cost = 0.5 + rng.next_unit() * 500.0;
  c.weights.poll_cost = 0.1 + rng.next_unit() * 20.0;
  c.threshold = static_cast<int>(rng.next_below(15));
  c.bound = rng.next_bernoulli(0.25)
                ? DelayBound::unbounded()
                : DelayBound(1 + static_cast<int>(rng.next_below(6)));
  return c;
}

class CostModelProperties : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CostModelProperties, ComponentsArePositiveAndFinite) {
  stats::Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const RandomCase c = draw_case(rng);
    const CostModel model = CostModel::exact(c.dim, c.profile, c.weights);
    const CostBreakdown breakdown = model.cost(c.threshold, c.bound);
    EXPECT_GT(breakdown.update, 0.0);
    EXPECT_GT(breakdown.paging, 0.0);
    EXPECT_TRUE(std::isfinite(breakdown.total()));
  }
}

TEST_P(CostModelProperties, UpdateCostIsLinearInU) {
  stats::Rng rng(GetParam() ^ 0x11);
  for (int trial = 0; trial < 25; ++trial) {
    const RandomCase c = draw_case(rng);
    CostWeights doubled = c.weights;
    doubled.update_cost *= 2.0;
    const CostModel base = CostModel::exact(c.dim, c.profile, c.weights);
    const CostModel scaled = CostModel::exact(c.dim, c.profile, doubled);
    EXPECT_NEAR(scaled.update_cost(c.threshold),
                2.0 * base.update_cost(c.threshold),
                1e-9 * base.update_cost(c.threshold));
    // Paging untouched by U.
    EXPECT_NEAR(scaled.paging_cost(c.threshold, c.bound),
                base.paging_cost(c.threshold, c.bound), 1e-12);
  }
}

TEST_P(CostModelProperties, PagingCostIsLinearInV) {
  stats::Rng rng(GetParam() ^ 0x22);
  for (int trial = 0; trial < 25; ++trial) {
    const RandomCase c = draw_case(rng);
    CostWeights tripled = c.weights;
    tripled.poll_cost *= 3.0;
    const CostModel base = CostModel::exact(c.dim, c.profile, c.weights);
    const CostModel scaled = CostModel::exact(c.dim, c.profile, tripled);
    EXPECT_NEAR(scaled.paging_cost(c.threshold, c.bound),
                3.0 * base.paging_cost(c.threshold, c.bound),
                1e-9 * base.paging_cost(c.threshold, c.bound));
    EXPECT_NEAR(scaled.update_cost(c.threshold),
                base.update_cost(c.threshold), 1e-12);
  }
}

TEST_P(CostModelProperties, PagingCostIsBracketedByOnePollAndBlanket) {
  // cV <= C_v(d, m) <= c g(d) V for every sequential schedule.
  stats::Rng rng(GetParam() ^ 0x33);
  for (int trial = 0; trial < 40; ++trial) {
    const RandomCase c = draw_case(rng);
    const CostModel model = CostModel::exact(c.dim, c.profile, c.weights);
    const double paging = model.paging_cost(c.threshold, c.bound);
    const double floor = c.profile.call_prob * c.weights.poll_cost;
    const double ceiling =
        c.profile.call_prob * c.weights.poll_cost *
        static_cast<double>(geometry::cells_within(c.dim, c.threshold));
    EXPECT_GE(paging, floor - 1e-12);
    EXPECT_LE(paging, ceiling + 1e-12);
  }
}

TEST_P(CostModelProperties, UpdateCostBoundedByMoveRate) {
  // Updates can happen at most once per slot and only on a move:
  // C_u <= q U (with equality only at d = 0).
  stats::Rng rng(GetParam() ^ 0x44);
  for (int trial = 0; trial < 40; ++trial) {
    const RandomCase c = draw_case(rng);
    const CostModel model = CostModel::exact(c.dim, c.profile, c.weights);
    EXPECT_LE(model.update_cost(c.threshold),
              c.profile.move_prob * c.weights.update_cost + 1e-12);
  }
}

TEST_P(CostModelProperties, SteadyStateMatchesSolverForTheSameSpec) {
  stats::Rng rng(GetParam() ^ 0x55);
  for (int trial = 0; trial < 10; ++trial) {
    const RandomCase c = draw_case(rng);
    const CostModel model = CostModel::exact(c.dim, c.profile, c.weights);
    const auto via_model = model.steady_state(c.threshold);
    const auto direct = markov::solve_steady_state(model.spec(), c.threshold);
    ASSERT_EQ(via_model.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_DOUBLE_EQ(via_model[i], direct[i]);
    }
  }
}

TEST_P(CostModelProperties, MorePagingDelayNeverHurtsAtTheOptimum) {
  // At each bound's own optimal threshold, min_d C_T(d, m) is
  // non-increasing in m for the DP-optimal scheme.
  stats::Rng rng(GetParam() ^ 0x66);
  for (int trial = 0; trial < 8; ++trial) {
    const RandomCase c = draw_case(rng);
    CostModelOptions options;
    options.scheme = PartitionScheme::kOptimalContiguous;
    const CostModel model =
        CostModel::exact(c.dim, c.profile, c.weights, options);
    double previous = 1e300;
    for (int m = 1; m <= 4; ++m) {
      double best = 1e300;
      for (int d = 0; d <= 12; ++d) {
        best = std::min(best, model.total_cost(d, DelayBound(m)));
      }
      EXPECT_LE(best, previous + 1e-9) << "m = " << m;
      previous = best;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostModelProperties,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace pcn::costs
