// The cost model's memoized steady-state solve: cached distributions must
// equal the uncached solver exactly, and the evaluation hot path must
// trigger exactly one chain solve per threshold.
#include <gtest/gtest.h>

#include <vector>

#include "pcn/costs/cost_model.hpp"
#include "pcn/markov/steady_state.hpp"

namespace pcn::costs {
namespace {

constexpr MobilityProfile kProfile{0.1, 0.02};
constexpr CostWeights kWeights{100.0, 5.0};

std::vector<markov::ChainSpec> all_chain_kinds() {
  return {markov::ChainSpec::one_dim(kProfile),
          markov::ChainSpec::two_dim_exact(kProfile),
          markov::ChainSpec::two_dim_approx(kProfile)};
}

TEST(SolveCache, MatchesUncachedSolverForAllKindsAndThresholds) {
  for (const markov::ChainSpec& spec : all_chain_kinds()) {
    const CostModel model(spec, kWeights);
    for (int d = 0; d <= 64; ++d) {
      const std::vector<double> cached = model.steady_state(d);
      const std::vector<double> direct = markov::solve_steady_state(spec, d);
      ASSERT_EQ(cached.size(), direct.size());
      for (std::size_t i = 0; i < cached.size(); ++i) {
        // Same solver, same inputs: the cache must be bit-transparent.
        EXPECT_EQ(cached[i], direct[i])
            << "kind=" << static_cast<int>(spec.kind()) << " d=" << d
            << " i=" << i;
      }
    }
    // The repeat pass above hit the cache: one solve per threshold.
    EXPECT_EQ(model.solves_performed(), 65);
  }
}

TEST(SolveCache, OneTotalCostCallTriggersExactlyOneSolve) {
  for (auto scheme :
       {PartitionScheme::kSdfEqual, PartitionScheme::kOptimalContiguous,
        PartitionScheme::kHighestProbabilityFirst}) {
    CostModelOptions options;
    options.scheme = scheme;
    const CostModel model = CostModel::exact(Dimension::kTwoD, kProfile,
                                             kWeights, options);
    ASSERT_EQ(model.solves_performed(), 0);
    model.total_cost(7, DelayBound(3));
    EXPECT_EQ(model.solves_performed(), 1)
        << "scheme " << static_cast<int>(scheme);
    // Every decomposition of the same evaluation shares that solve.
    model.update_cost(7);
    model.paging_cost(7, DelayBound(3));
    model.partition(7, DelayBound(3));
    model.cost(7, DelayBound(3));
    EXPECT_EQ(model.solves_performed(), 1);
    // A new threshold costs one more; a new bound at a known threshold is
    // free (the steady state does not depend on m).
    model.total_cost(8, DelayBound(3));
    EXPECT_EQ(model.solves_performed(), 2);
    model.total_cost(7, DelayBound(5));
    model.total_cost(7, DelayBound::unbounded());
    EXPECT_EQ(model.solves_performed(), 2);
  }
}

TEST(SolveCache, SweepSolvesEachThresholdOnce) {
  const CostModel model =
      CostModel::exact(Dimension::kTwoD, kProfile, kWeights);
  const int d_max = 40;
  for (int d = 0; d <= d_max; ++d) model.total_cost(d, DelayBound(3));
  EXPECT_EQ(model.solves_performed(), d_max + 1);
  // A second full sweep is free.
  for (int d = 0; d <= d_max; ++d) model.total_cost(d, DelayBound(3));
  EXPECT_EQ(model.solves_performed(), d_max + 1);
}

TEST(SolveCache, CopiesShareTheCache) {
  const CostModel model =
      CostModel::exact(Dimension::kTwoD, kProfile, kWeights);
  model.total_cost(5, DelayBound(2));
  const CostModel copy = model;  // same immutable inputs -> shared cache
  EXPECT_EQ(copy.solves_performed(), 1);
  copy.total_cost(5, DelayBound(2));
  EXPECT_EQ(copy.solves_performed(), 1);
  copy.total_cost(6, DelayBound(2));
  EXPECT_EQ(model.solves_performed(), 2);
}

TEST(SolveCache, CachedPartitionEqualsFreshConstruction) {
  for (auto scheme :
       {PartitionScheme::kSdfEqual, PartitionScheme::kOptimalContiguous,
        PartitionScheme::kHighestProbabilityFirst}) {
    CostModelOptions options;
    options.scheme = scheme;
    const CostModel model = CostModel::exact(Dimension::kTwoD, kProfile,
                                             kWeights, options);
    for (int d : {0, 3, 11}) {
      for (DelayBound bound :
           {DelayBound(1), DelayBound(3), DelayBound::unbounded()}) {
        const Partition first = model.partition(d, bound);
        const Partition again = model.partition(d, bound);
        EXPECT_EQ(first, again);
        EXPECT_EQ(first.threshold(), d);
      }
    }
  }
}

}  // namespace
}  // namespace pcn::costs
