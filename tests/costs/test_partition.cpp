#include "pcn/costs/partition.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "pcn/common/error.hpp"
#include "pcn/geometry/ring_metrics.hpp"
#include "pcn/markov/steady_state.hpp"

namespace pcn::costs {
namespace {

// --- the paper's SDF equal-split rule ---------------------------------------

TEST(SdfPartition, UnboundedDelayGivesOneRingPerSubarea) {
  const Partition p = Partition::sdf(4, DelayBound::unbounded());
  ASSERT_EQ(p.subarea_count(), 5);
  for (int j = 0; j < 5; ++j) {
    ASSERT_EQ(p.rings(j).size(), 1u);
    EXPECT_EQ(p.rings(j)[0], j);
  }
}

TEST(SdfPartition, DelayOneIsBlanket) {
  const Partition p = Partition::sdf(4, DelayBound(1));
  ASSERT_EQ(p.subarea_count(), 1);
  EXPECT_EQ(p.rings(0).size(), 5u);
}

TEST(SdfPartition, EqualSplitWithRemainderInLastSubarea) {
  // d = 9, m = 3: gamma = floor(10/3) = 3 -> subareas {0-2}, {3-5}, {6-9}.
  const Partition p = Partition::sdf(9, DelayBound(3));
  ASSERT_EQ(p.subarea_count(), 3);
  EXPECT_EQ(p.rings(0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(p.rings(1), (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(p.rings(2), (std::vector<int>{6, 7, 8, 9}));
}

TEST(SdfPartition, SubareaCountIsEquationTwo) {
  for (int d = 0; d <= 20; ++d) {
    for (int m = 1; m <= 25; ++m) {
      EXPECT_EQ(Partition::sdf(d, DelayBound(m)).subarea_count(),
                std::min(d + 1, m))
          << "d=" << d << " m=" << m;
    }
  }
}

class PartitionCoverage
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionCoverage, SdfCoversEveryRingExactlyOnce) {
  const auto& [d, m] = GetParam();
  const Partition p = Partition::sdf(d, DelayBound(m));
  std::set<int> covered;
  for (int j = 0; j < p.subarea_count(); ++j) {
    for (int ring : p.rings(j)) {
      EXPECT_TRUE(covered.insert(ring).second) << "duplicate ring " << ring;
    }
  }
  EXPECT_EQ(static_cast<int>(covered.size()), d + 1);
  EXPECT_EQ(*covered.begin(), 0);
  EXPECT_EQ(*covered.rbegin(), d);
}

TEST_P(PartitionCoverage, SdfRingsAreInShortestDistanceFirstOrder) {
  const auto& [d, m] = GetParam();
  const Partition p = Partition::sdf(d, DelayBound(m));
  int previous = -1;
  for (int j = 0; j < p.subarea_count(); ++j) {
    for (int ring : p.rings(j)) {
      EXPECT_EQ(ring, previous + 1);
      previous = ring;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThresholdsByDelays, PartitionCoverage,
    ::testing::Combine(::testing::Values(0, 1, 2, 5, 9, 17),
                       ::testing::Values(1, 2, 3, 4, 8)));

// --- cost evaluation ---------------------------------------------------------

TEST(PartitionCost, BlanketExpectedCellsIsGOfD) {
  // With one subarea every call polls g(d) cells regardless of location.
  const std::vector<double> pi{0.5, 0.3, 0.2};
  EXPECT_DOUBLE_EQ(Partition::blanket(2).expected_polled_cells(
                       pi, Dimension::kTwoD),
                   static_cast<double>(
                       geometry::cells_within(Dimension::kTwoD, 2)));
}

TEST(PartitionCost, HandComputedTwoSubareaExample) {
  // 1-D, d = 1, subareas {r0}, {r1}: w = (1, 3);
  // E = p0*1 + p1*3.
  const std::vector<double> pi{0.6, 0.4};
  const Partition p = Partition::sdf(1, DelayBound(2));
  EXPECT_DOUBLE_EQ(p.expected_polled_cells(pi, Dimension::kOneD),
                   0.6 * 1 + 0.4 * 3);
}

TEST(PartitionCost, ExpectedDelayWeightsCyclesByMass) {
  const std::vector<double> pi{0.6, 0.3, 0.1};
  const Partition p = Partition::sdf(2, DelayBound(3));
  EXPECT_DOUBLE_EQ(p.expected_delay_cycles(pi), 0.6 * 1 + 0.3 * 2 + 0.1 * 3);
}

TEST(PartitionCost, SequentialSchedulesNeverExceedBlanket) {
  // Note the SDF equal-split rule itself is not monotone in m (gamma
  // changes shift the group boundaries discontinuously); the guarantees
  // are: any schedule <= blanket, and the one-ring-per-cycle partition is
  // the cheapest contiguous one.
  const MobilityProfile profile{0.1, 0.01};
  const auto pi = markov::solve_steady_state(
      markov::ChainSpec::two_dim_exact(profile), 8);
  const double blanket =
      Partition::blanket(8).expected_polled_cells(pi, Dimension::kTwoD);
  const double finest = Partition::single_rings(8).expected_polled_cells(
      pi, Dimension::kTwoD);
  for (int m = 2; m <= 9; ++m) {
    const double current =
        Partition::sdf(8, DelayBound(m)).expected_polled_cells(
            pi, Dimension::kTwoD);
    EXPECT_LE(current, blanket + 1e-12) << "m = " << m;
    EXPECT_GE(current, finest - 1e-12) << "m = " << m;
  }
}

TEST(PartitionCost, DpOptimalIsMonotoneNonIncreasingInDelay) {
  const MobilityProfile profile{0.1, 0.01};
  const auto pi = markov::solve_steady_state(
      markov::ChainSpec::two_dim_exact(profile), 8);
  double previous = Partition::optimal(pi, Dimension::kTwoD, DelayBound(1))
                        .expected_polled_cells(pi, Dimension::kTwoD);
  for (int m = 2; m <= 9; ++m) {
    const double current =
        Partition::optimal(pi, Dimension::kTwoD, DelayBound(m))
            .expected_polled_cells(pi, Dimension::kTwoD);
    EXPECT_LE(current, previous + 1e-12) << "m = " << m;
    previous = current;
  }
}

// --- optimal (DP) partitioning ----------------------------------------------

class OptimalPartitionSweep
    : public ::testing::TestWithParam<std::tuple<Dimension, int, int>> {};

TEST_P(OptimalPartitionSweep, NeverWorseThanSdfEqualSplit) {
  const auto& [dim, d, m] = GetParam();
  const MobilityProfile profile{0.1, 0.02};
  const auto pi =
      markov::solve_steady_state(markov::ChainSpec::exact(dim, profile), d);
  const DelayBound bound(m);
  const double optimal =
      Partition::optimal(pi, dim, bound).expected_polled_cells(pi, dim);
  const double sdf =
      Partition::sdf(d, bound).expected_polled_cells(pi, dim);
  EXPECT_LE(optimal, sdf + 1e-12);
}

TEST_P(OptimalPartitionSweep, RespectsTheDelayBound) {
  const auto& [dim, d, m] = GetParam();
  const MobilityProfile profile{0.1, 0.02};
  const auto pi =
      markov::solve_steady_state(markov::ChainSpec::exact(dim, profile), d);
  const Partition p = Partition::optimal(pi, dim, DelayBound(m));
  EXPECT_LE(p.subarea_count(), m);
  EXPECT_EQ(p.subarea_count(), std::min(d + 1, m));
}

INSTANTIATE_TEST_SUITE_P(
    GeometriesThresholdsDelays, OptimalPartitionSweep,
    ::testing::Combine(::testing::Values(Dimension::kOneD, Dimension::kTwoD),
                       ::testing::Values(1, 3, 6, 11),
                       ::testing::Values(1, 2, 3, 5)));

TEST(OptimalPartition, UnboundedDelayMakesSingletonsOptimal) {
  // With strictly positive ring mass, one ring per cycle minimizes cost.
  const std::vector<double> pi{0.4, 0.3, 0.2, 0.1};
  const Partition p =
      Partition::optimal(pi, Dimension::kOneD, DelayBound::unbounded());
  EXPECT_EQ(p.subarea_count(), 4);
}

TEST(HighestProbabilityFirst, ReordersRingsByPerCellMass) {
  // Ring 1 carries almost all mass per cell; HPF must poll it first even
  // though SDF would start at ring 0.
  const std::vector<double> pi{0.02, 0.9, 0.08};
  const Partition p = Partition::highest_probability_first(
      pi, Dimension::kOneD, DelayBound::unbounded());
  ASSERT_EQ(p.subarea_count(), 3);
  EXPECT_EQ(p.rings(0), (std::vector<int>{1}));
}

TEST(HighestProbabilityFirst, NeverWorseThanSdfUnbounded) {
  // Rose & Yates: decreasing per-cell probability order minimizes expected
  // polled cells when delay is unconstrained.
  const MobilityProfile profile{0.3, 0.005};
  for (int d : {2, 5, 9}) {
    const auto pi = markov::solve_steady_state(
        markov::ChainSpec::two_dim_exact(profile), d);
    const double hpf =
        Partition::highest_probability_first(pi, Dimension::kTwoD,
                                             DelayBound::unbounded())
            .expected_polled_cells(pi, Dimension::kTwoD);
    const double sdf = Partition::sdf(d, DelayBound::unbounded())
                           .expected_polled_cells(pi, Dimension::kTwoD);
    EXPECT_LE(hpf, sdf + 1e-12) << "d = " << d;
  }
}

// --- explicit construction and validation ------------------------------------

TEST(FromSubareas, AcceptsAValidPartition) {
  const Partition p = Partition::from_subareas(2, {{1}, {0, 2}});
  EXPECT_EQ(p.subarea_count(), 2);
  EXPECT_EQ(p.cell_count(Dimension::kTwoD, 1), 1 + 12);
}

TEST(FromSubareas, RejectsMissingDuplicateOrOutOfRangeRings) {
  EXPECT_THROW(Partition::from_subareas(2, {{0, 1}}), InvalidArgument);
  EXPECT_THROW(Partition::from_subareas(2, {{0, 1, 1}, {2}}),
               InvalidArgument);
  EXPECT_THROW(Partition::from_subareas(2, {{0, 1}, {2, 3}}),
               InvalidArgument);
  EXPECT_THROW(Partition::from_subareas(2, {{0, 1, 2}, {}}),
               InvalidArgument);
}

TEST(Partition, ExpectedCostRejectsWrongProbabilityVectorLength) {
  const Partition p = Partition::sdf(3, DelayBound(2));
  const std::vector<double> wrong{0.5, 0.5};
  EXPECT_THROW(p.expected_polled_cells(wrong, Dimension::kOneD),
               InvalidArgument);
}

namespace brute {

/// Enumerates every contiguous partition of rings 0..d into exactly
/// `groups` blocks and returns the minimal expected polled cells.
double best_contiguous(std::span<const double> pi, Dimension dim, int d,
                       int groups) {
  // Choose group boundaries 0 < b1 < ... < b_{g-1} <= d over ring indices.
  std::vector<int> cuts(static_cast<std::size_t>(groups) - 1, 0);
  double best = 1e300;
  // Iterate over all increasing cut sequences via odometer.
  std::vector<int> state;
  for (int i = 1; i < groups; ++i) state.push_back(i);
  auto evaluate = [&]() {
    std::vector<std::vector<int>> subareas;
    int start = 0;
    for (int cut : state) {
      std::vector<int> rings;
      for (int r = start; r < cut; ++r) rings.push_back(r);
      subareas.push_back(std::move(rings));
      start = cut;
    }
    std::vector<int> tail;
    for (int r = start; r <= d; ++r) tail.push_back(r);
    subareas.push_back(std::move(tail));
    const Partition partition =
        Partition::from_subareas(d, std::move(subareas));
    best = std::min(best, partition.expected_polled_cells(pi, dim));
  };
  if (groups == 1) {
    return Partition::blanket(d).expected_polled_cells(pi, dim);
  }
  for (;;) {
    evaluate();
    // Advance the odometer of strictly increasing cuts in [1, d].
    int idx = groups - 2;
    while (idx >= 0) {
      ++state[static_cast<std::size_t>(idx)];
      bool ok = true;
      for (int j = idx; j < groups - 1; ++j) {
        if (j > idx) {
          state[static_cast<std::size_t>(j)] =
              state[static_cast<std::size_t>(j) - 1] + 1;
        }
        if (state[static_cast<std::size_t>(j)] > d) ok = false;
      }
      if (ok) break;
      --idx;
    }
    if (idx < 0) break;
  }
  return best;
}

}  // namespace brute

TEST(OptimalPartition, MatchesBruteForceEnumerationOnSmallCases) {
  // The DP must equal exhaustive enumeration of all contiguous splits.
  const MobilityProfile profile{0.15, 0.02};
  for (Dimension dim : {Dimension::kOneD, Dimension::kTwoD}) {
    for (int d : {2, 4, 6}) {
      const auto pi = markov::solve_steady_state(
          markov::ChainSpec::exact(dim, profile), d);
      for (int m = 1; m <= d + 1; ++m) {
        const double dp = Partition::optimal(pi, dim, DelayBound(m))
                              .expected_polled_cells(pi, dim);
        const double brute_best =
            brute::best_contiguous(pi, dim, d, std::min(d + 1, m));
        EXPECT_NEAR(dp, brute_best, 1e-12)
            << to_string(dim) << " d=" << d << " m=" << m;
      }
    }
  }
}

TEST(Partition, RingsRejectsOutOfRangeSubarea) {
  const Partition p = Partition::sdf(3, DelayBound(2));
  EXPECT_THROW(p.rings(-1), InvalidArgument);
  EXPECT_THROW(p.rings(2), InvalidArgument);
}

}  // namespace
}  // namespace pcn::costs
