#include "pcn/capacity/paging_capacity.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"
#include "pcn/geometry/ring_metrics.hpp"

namespace pcn::capacity {
namespace {

constexpr MobilityProfile kProfile{0.05, 0.01};
constexpr CostWeights kWeights{100.0, 10.0};

TEST(CellLoad, DecomposesThePlannedCosts) {
  const core::LocationManager manager(Dimension::kTwoD, kProfile, kWeights);
  const core::LocationPlan plan = manager.plan(DelayBound(2));
  const CellLoad load = cell_load(manager, plan, 50.0);
  EXPECT_NEAR(load.polls_per_slot, 50.0 * plan.expected.paging / 10.0,
              1e-12);
  EXPECT_NEAR(load.updates_per_slot, 50.0 * plan.expected.update / 100.0,
              1e-12);
  EXPECT_NEAR(load.total_per_slot(),
              load.polls_per_slot + load.updates_per_slot, 1e-15);
}

TEST(CellLoad, BlanketPagingLoadHasClosedForm) {
  // m = 1: each call polls g(d*) cells, so per-user polls/slot = c·g(d*).
  const core::LocationManager manager(Dimension::kTwoD, kProfile, kWeights);
  const core::LocationPlan plan = manager.plan(DelayBound(1));
  const CellLoad load = cell_load(manager, plan, 1.0);
  EXPECT_NEAR(load.polls_per_slot,
              kProfile.call_prob *
                  static_cast<double>(geometry::cells_within(
                      Dimension::kTwoD, plan.threshold)),
              1e-12);
}

TEST(CellLoad, SequentialPagingReducesTheChannelLoad) {
  // The paper's delay trade-off is also a capacity statement: at the same
  // threshold, m = 3 polls strictly fewer cells per call than blanket.
  const core::LocationManager manager(Dimension::kTwoD, kProfile, kWeights);
  const core::LocationPlan blanket = manager.plan(DelayBound(1));
  const core::LocationPlan sequential = manager.plan(DelayBound(3));
  const double blanket_polls =
      cell_load(manager, blanket, 1.0).polls_per_slot;
  // Compare at the same residing-area size for a fair per-plan statement.
  const double sequential_polls =
      cell_load(manager, sequential, 1.0).polls_per_slot;
  EXPECT_LT(sequential_polls,
            kProfile.call_prob *
                static_cast<double>(geometry::cells_within(
                    Dimension::kTwoD, sequential.threshold)));
  EXPECT_LT(sequential_polls, blanket_polls * 2.0);
}

TEST(CellLoad, ScalesLinearlyWithUserDensity) {
  const core::LocationManager manager(Dimension::kTwoD, kProfile, kWeights);
  const core::LocationPlan plan = manager.plan(DelayBound(2));
  const CellLoad one = cell_load(manager, plan, 1.0);
  const CellLoad many = cell_load(manager, plan, 250.0);
  EXPECT_NEAR(many.total_per_slot(), 250.0 * one.total_per_slot(), 1e-9);
  EXPECT_THROW(cell_load(manager, plan, -1.0), InvalidArgument);
}

TEST(ErlangB, MatchesClassicTableValues) {
  EXPECT_NEAR(erlang_b_blocking(1, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(erlang_b_blocking(2, 1.0), 0.2, 1e-12);
  EXPECT_NEAR(erlang_b_blocking(5, 3.0), 0.11005, 5e-5);
  EXPECT_NEAR(erlang_b_blocking(10, 5.0), 0.018385, 5e-5);
}

TEST(ErlangB, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(erlang_b_blocking(0, 2.5), 1.0);  // no channels
  EXPECT_DOUBLE_EQ(erlang_b_blocking(4, 0.0), 0.0);  // no load
  EXPECT_DOUBLE_EQ(erlang_b_blocking(0, 0.0), 1.0);
  EXPECT_THROW(erlang_b_blocking(-1, 1.0), InvalidArgument);
  EXPECT_THROW(erlang_b_blocking(1, -0.5), InvalidArgument);
}

TEST(ErlangB, MonotoneInChannelsAndLoad) {
  for (int k = 1; k <= 20; ++k) {
    EXPECT_LT(erlang_b_blocking(k, 4.0), erlang_b_blocking(k - 1, 4.0));
  }
  double previous = 0.0;
  for (double load : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double blocking = erlang_b_blocking(6, load);
    EXPECT_GT(blocking, previous);
    previous = blocking;
  }
}

TEST(MinChannels, FindsTheSmallestSufficientCount) {
  const double load = 3.0;
  const double target = 0.01;
  const int channels = min_channels(load, target);
  EXPECT_LE(erlang_b_blocking(channels, load), target);
  ASSERT_GT(channels, 0);
  EXPECT_GT(erlang_b_blocking(channels - 1, load), target);
  // Known value: A = 3 Erlang at 1% blocking needs 8 channels.
  EXPECT_EQ(channels, 8);
}

TEST(MinChannels, ZeroLoadNeedsNoChannels) {
  EXPECT_EQ(min_channels(0.0, 0.01), 0);
}

TEST(MinChannels, ValidatesParameters) {
  EXPECT_THROW(min_channels(1.0, 0.0), InvalidArgument);
  EXPECT_THROW(min_channels(1.0, 1.0), InvalidArgument);
  EXPECT_THROW(min_channels(1e9, 0.001, /*max_channels=*/10),
               InvalidArgument);
}

TEST(OfferedErlangs, ScalesLoadByServiceTime) {
  CellLoad load;
  load.polls_per_slot = 0.4;
  load.updates_per_slot = 0.1;
  EXPECT_NEAR(offered_erlangs(load, 2.0), 1.0, 1e-12);
  EXPECT_THROW(offered_erlangs(load, 0.0), InvalidArgument);
}

TEST(Capacity, EndToEndDimensioningStory) {
  // 200 users per cell on the paper's profile, one slot per message: the
  // delay-2 plan must need no more paging channels than the blanket plan.
  const core::LocationManager manager(Dimension::kTwoD, kProfile, kWeights);
  const core::LocationPlan blanket = manager.plan(DelayBound(1));
  const core::LocationPlan delayed = manager.plan(DelayBound(2));
  const int channels_blanket = min_channels(
      offered_erlangs(cell_load(manager, blanket, 200.0), 1.0), 0.02);
  const int channels_delayed = min_channels(
      offered_erlangs(cell_load(manager, delayed, 200.0), 1.0), 0.02);
  EXPECT_LE(channels_delayed, channels_blanket);
  EXPECT_GT(channels_blanket, 0);
}

}  // namespace
}  // namespace pcn::capacity
