// Fuzz-style round-trip properties for the signalling codec.  Each seeded
// scenario drives randomized messages (ids and coordinates spanning the
// full varint magnitude range) through:
//   * encode -> decode -> re-encode, which must be byte-identical and
//     match encoded_size() / peek_type();
//   * every truncated prefix of a valid frame, which must raise
//     DecodeError instead of reading out of bounds (the ASan preset turns
//     any overread into a hard failure);
//   * single-bit corruption, which the CRC-32 trailer detects by
//     construction (CRC-32 catches all single-bit errors);
//   * decoding a frame as the wrong message type;
//   * the daemon messages (PageSubmit / PageOutcome) through all of the
//     above, plus value-range rejection: a well-framed PageOutcome with an
//     oversized queue_depth or an unknown outcome kind must not decode.
// Shrinking is disabled — the scenario parameters are irrelevant here,
// only the seed feeds the payload stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pcn/obs/metrics.hpp"
#include "pcn/obs/timeseries.hpp"
#include "pcn/obs/timeseries_codec.hpp"
#include "pcn/proto/messages.hpp"
#include "pcn/proto/wire.hpp"
#include "support/property.hpp"

namespace pcn::proptest {
namespace {

/// A signed value whose magnitude is uniform in *bit length* (0..63), so
/// 1-byte and 10-byte varints are both exercised.
std::int64_t random_signed(stats::Rng& rng) {
  const std::uint64_t shift = rng.next_below(64);
  const std::uint64_t magnitude = rng.next() >> shift;
  const auto value = static_cast<std::int64_t>(magnitude >> 1);
  return rng.next_bernoulli(0.5) ? -value : value;
}

std::uint64_t random_unsigned(stats::Rng& rng) {
  return rng.next() >> rng.next_below(64);
}

geometry::Cell random_cell(stats::Rng& rng) {
  return {random_signed(rng), random_signed(rng)};
}

proto::LocationUpdate random_location_update(stats::Rng& rng) {
  proto::LocationUpdate message;
  message.terminal_id = random_unsigned(rng);
  message.sequence = random_unsigned(rng);
  message.cell = random_cell(rng);
  message.containment_radius =
      static_cast<std::uint32_t>(rng.next_below(1u << 16));
  return message;
}

proto::PageRequest random_page_request(stats::Rng& rng) {
  proto::PageRequest message;
  message.page_id = random_unsigned(rng);
  message.terminal_id = random_unsigned(rng);
  message.cycle = static_cast<std::uint32_t>(rng.next_below(64));
  const std::uint64_t cells = rng.next_below(24);
  // Delta encoding is relative to the first cell; mix one far base cell
  // with nearby ones so both tiny and huge deltas appear.
  for (std::uint64_t i = 0; i < cells; ++i) {
    message.cells.push_back(random_cell(rng));
  }
  return message;
}

proto::PageResponse random_page_response(stats::Rng& rng) {
  proto::PageResponse message;
  message.page_id = random_unsigned(rng);
  message.terminal_id = random_unsigned(rng);
  message.cell = random_cell(rng);
  return message;
}

proto::PageSubmit random_page_submit(stats::Rng& rng) {
  proto::PageSubmit message;
  message.page_id = random_unsigned(rng);
  message.terminal_id = random_unsigned(rng);
  return message;
}

proto::PageOutcome random_page_outcome(stats::Rng& rng) {
  proto::PageOutcome message;
  message.page_id = random_unsigned(rng);
  message.terminal_id = random_unsigned(rng);
  message.outcome =
      static_cast<proto::PageOutcomeKind>(1 + rng.next_below(3));
  message.queue_delay_slots = random_unsigned(rng);
  message.queue_depth =
      static_cast<std::uint32_t>(rng.next_below(proto::kMaxQueueDepth + 1));
  return message;
}

/// Runs `decode` and reports unless it raises DecodeError.
template <typename Decode>
std::optional<std::string> expect_decode_error(const char* what,
                                               Decode&& decode) {
  try {
    decode();
  } catch (const proto::DecodeError&) {
    return std::nullopt;
  } catch (const std::exception& error) {
    return std::string(what) + ": wrong exception type: " + error.what();
  }
  return std::string(what) + ": malformed frame decoded without error";
}

template <typename Message, typename Decoder>
std::optional<std::string> check_round_trip(const Message& message,
                                            proto::MessageType type,
                                            Decoder&& decoder,
                                            stats::Rng& rng) {
  const std::vector<std::uint8_t> frame = proto::encode(message);
  if (frame.size() != proto::encoded_size(message)) {
    return std::optional<std::string>("encoded_size != actual frame size");
  }
  if (proto::peek_type(frame) != type) {
    return std::optional<std::string>("peek_type mismatch");
  }
  const Message decoded = decoder(frame);
  if (!(decoded == message)) {
    return std::optional<std::string>("decode(encode(m)) != m");
  }
  if (proto::encode(decoded) != frame) {
    return std::optional<std::string>("re-encode is not byte-identical");
  }

  // Every proper prefix is a truncation; none may decode.
  for (std::size_t length = 0; length < frame.size(); ++length) {
    const std::span<const std::uint8_t> prefix(frame.data(), length);
    if (auto f = expect_decode_error(
            "truncation", [&] { decoder(prefix); })) {
      return f;
    }
  }

  // CRC-32 detects any single-bit error, so a random flip must be caught
  // (possibly earlier, as a version/type/varint malformation).
  std::vector<std::uint8_t> corrupted = frame;
  const std::uint64_t bit = rng.next_below(corrupted.size() * 8);
  corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  if (auto f = expect_decode_error(
          "bit flip", [&] { decoder(corrupted); })) {
    return f;
  }
  return std::nullopt;
}

std::optional<std::string> check_wire_fuzz(const Scenario& scenario) {
  stats::Rng rng(scenario.seed);
  const proto::LocationUpdate update = random_location_update(rng);
  const proto::PageRequest request = random_page_request(rng);
  const proto::PageResponse response = random_page_response(rng);

  if (auto f = check_round_trip(update, proto::MessageType::kLocationUpdate,
                                [](std::span<const std::uint8_t> bytes) {
                                  return proto::decode_location_update(bytes);
                                },
                                rng)) {
    return f;
  }
  if (auto f = check_round_trip(request, proto::MessageType::kPageRequest,
                                [](std::span<const std::uint8_t> bytes) {
                                  return proto::decode_page_request(bytes);
                                },
                                rng)) {
    return f;
  }
  if (auto f = check_round_trip(response, proto::MessageType::kPageResponse,
                                [](std::span<const std::uint8_t> bytes) {
                                  return proto::decode_page_response(bytes);
                                },
                                rng)) {
    return f;
  }

  // Daemon messages ride the same frame machinery.
  const proto::PageSubmit submit = random_page_submit(rng);
  const proto::PageOutcome outcome = random_page_outcome(rng);
  if (auto f = check_round_trip(submit, proto::MessageType::kPageSubmit,
                                [](std::span<const std::uint8_t> bytes) {
                                  return proto::decode_page_submit(bytes);
                                },
                                rng)) {
    return f;
  }
  if (auto f = check_round_trip(outcome, proto::MessageType::kPageOutcome,
                                [](std::span<const std::uint8_t> bytes) {
                                  return proto::decode_page_outcome(bytes);
                                },
                                rng)) {
    return f;
  }

  // A structurally valid frame of one type must not decode as another.
  const std::vector<std::uint8_t> update_frame = proto::encode(update);
  if (auto f = expect_decode_error("cross-type decode", [&] {
        proto::decode_page_request(update_frame);
      })) {
    return f;
  }
  if (auto f = expect_decode_error("cross-type decode", [&] {
        proto::decode_page_response(proto::encode(request));
      })) {
    return f;
  }
  if (auto f = expect_decode_error("cross-type decode", [&] {
        proto::decode_page_outcome(proto::encode(submit));
      })) {
    return f;
  }
  if (auto f = expect_decode_error("cross-type decode", [&] {
        proto::decode_page_submit(proto::encode(outcome));
      })) {
    return f;
  }

  // Range validation: a well-framed PageOutcome whose queue_depth exceeds
  // kMaxQueueDepth (the frame's CRC is valid — the *value* is absurd) and
  // one whose outcome kind is unknown must both be rejected.
  proto::PageOutcome oversized = outcome;
  oversized.queue_depth =
      proto::kMaxQueueDepth + 1 +
      static_cast<std::uint32_t>(rng.next_below(1u << 10));
  if (auto f = expect_decode_error("oversized queue depth", [&] {
        proto::decode_page_outcome(proto::encode(oversized));
      })) {
    return f;
  }
  proto::PageOutcome unknown_kind = outcome;
  unknown_kind.outcome = static_cast<proto::PageOutcomeKind>(
      4 + rng.next_below(250));
  if (auto f = expect_decode_error("unknown outcome kind", [&] {
        proto::decode_page_outcome(proto::encode(unknown_kind));
      })) {
    return f;
  }
  return std::nullopt;
}

TEST(PropWireFuzz, RoundTripsAndRejectsTruncatedOrCorruptedFrames) {
  PropertyOptions options;
  options.enable_shrinking = false;  // only the seed matters here
  check_property("wire/fuzz-round-trip", check_wire_fuzz, options);
}

/// A randomized pcn.timeseries.v1 timeline: random mixes of counter /
/// gauge / histogram series sampled at random strictly-increasing slots.
obs::Timeseries random_timeseries(stats::Rng& rng) {
  obs::MetricsRegistry registry;
  std::vector<obs::Counter> counters;
  std::vector<obs::Gauge> gauges;
  std::vector<obs::Histogram> histograms;
  const std::uint64_t n_counters = rng.next_below(4);
  const std::uint64_t n_gauges = rng.next_below(3);
  const std::uint64_t n_histograms = rng.next_below(3);
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    counters.push_back(registry.counter("fuzz.counter." + std::to_string(i)));
  }
  for (std::uint64_t i = 0; i < n_gauges; ++i) {
    gauges.push_back(registry.gauge("fuzz.gauge." + std::to_string(i)));
  }
  for (std::uint64_t i = 0; i < n_histograms; ++i) {
    std::vector<double> bounds;
    double edge = 1.0 + double(rng.next_below(4));
    const std::uint64_t n_bounds = 1 + rng.next_below(5);
    for (std::uint64_t b = 0; b < n_bounds; ++b) {
      bounds.push_back(edge);
      edge = edge * 2.0 + 1.0;
    }
    histograms.push_back(registry.histogram(
        "fuzz.histogram." + std::to_string(i), bounds));
  }

  const std::int64_t every =
      1 + static_cast<std::int64_t>(rng.next_below(16));
  obs::TimeseriesRecorder recorder(every);
  std::int64_t slot = static_cast<std::int64_t>(rng.next_below(100));
  const std::uint64_t samples = rng.next_below(20);
  for (std::uint64_t s = 0; s < samples; ++s) {
    for (obs::Counter& c : counters) c.add(rng.next_below(1000));
    for (obs::Gauge& g : gauges) {
      g.set(static_cast<std::int64_t>(rng.next_below(1u << 20)));
    }
    for (obs::Histogram& h : histograms) {
      const std::uint64_t observations = rng.next_below(8);
      for (std::uint64_t o = 0; o < observations; ++o) {
        h.observe(double(rng.next_below(1u << 10)) * 0.25);
      }
    }
    recorder.sample(slot, registry.snapshot());
    slot += every;
  }
  return recorder.data();
}

std::optional<std::string> check_timeseries_fuzz(const Scenario& scenario) {
  stats::Rng rng(scenario.seed);
  const obs::Timeseries timeline = random_timeseries(rng);
  const std::vector<std::uint8_t> encoded = obs::encode_timeseries(timeline);

  // decode(encode(t)) re-encodes byte-identically (lossless round trip).
  const obs::Timeseries decoded = obs::decode_timeseries(encoded);
  if (obs::encode_timeseries(decoded) != encoded) {
    return std::optional<std::string>(
        "timeseries re-encode is not byte-identical");
  }

  // Every proper prefix is a truncation; none may decode (ASan turns any
  // overread into a hard failure).
  for (std::size_t length = 0; length < encoded.size(); ++length) {
    const std::span<const std::uint8_t> prefix(encoded.data(), length);
    if (auto f = expect_decode_error("timeseries truncation", [&] {
          obs::decode_timeseries(prefix);
        })) {
      return f;
    }
  }

  // The CRC-32 trailer is validated before anything is parsed, so any
  // single-bit flip must be caught — corrupted lengths never get to
  // drive allocations.
  std::vector<std::uint8_t> corrupted = encoded;
  const std::uint64_t bit = rng.next_below(corrupted.size() * 8);
  corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  if (auto f = expect_decode_error("timeseries bit flip", [&] {
        obs::decode_timeseries(corrupted);
      })) {
    return f;
  }

  // A structurally valid file (correct CRC) whose column block names a
  // dictionary index out of range must be a qualified error, never UB.
  proto::WireWriter writer;
  const std::string_view schema = "pcn.timeseries.v1";
  writer.put_bytes(std::span(
      reinterpret_cast<const std::uint8_t*>(schema.data()), schema.size()));
  writer.put_varint(1 + rng.next_below(32));  // every_slots
  writer.put_varint(1);                       // sample_count
  writer.put_signed(static_cast<std::int64_t>(rng.next_below(1000)));
  writer.put_varint(1);  // series_count
  const std::string_view name = "fuzz";
  writer.put_bytes(std::span(
      reinterpret_cast<const std::uint8_t*>(name.data()), name.size()));
  writer.put_u8(0);  // kind: counter
  writer.put_varint(1 + rng.next_below(1u << 20));  // index out of range
  writer.put_signed(random_signed(rng));
  std::vector<std::uint8_t> crafted(writer.buffer().begin(),
                                    writer.buffer().end());
  const std::uint32_t crc = proto::crc32(crafted);
  for (int i = 0; i < 4; ++i) {
    crafted.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  if (auto f = expect_decode_error("timeseries dictionary index", [&] {
        obs::decode_timeseries(crafted);
      })) {
    return f;
  }
  return std::nullopt;
}

TEST(PropWireFuzz, TimeseriesReaderRejectsTruncatedOrCorruptedFiles) {
  PropertyOptions options;
  options.enable_shrinking = false;  // only the seed matters here
  check_property("wire/timeseries-fuzz", check_timeseries_fuzz, options);
}

}  // namespace
}  // namespace pcn::proptest
