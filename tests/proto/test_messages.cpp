#include "pcn/proto/messages.hpp"

#include <gtest/gtest.h>

#include "pcn/geometry/hex.hpp"
#include "pcn/stats/rng.hpp"

namespace pcn::proto {
namespace {

LocationUpdate sample_update() {
  LocationUpdate message;
  message.terminal_id = 1234;
  message.sequence = 77;
  message.cell = {42, -17};
  message.containment_radius = 5;
  return message;
}

PageRequest sample_request() {
  PageRequest message;
  message.page_id = 99;
  message.terminal_id = 1234;
  message.cycle = 2;
  message.cells = geometry::hex_ring(geometry::HexCell{3, -1}, 2);
  return message;
}

PageResponse sample_response() {
  PageResponse message;
  message.page_id = 99;
  message.terminal_id = 1234;
  message.cell = {4, -2};
  return message;
}

TEST(Messages, LocationUpdateRoundTrips) {
  const LocationUpdate original = sample_update();
  EXPECT_EQ(decode_location_update(encode(original)), original);
}

TEST(Messages, PageRequestRoundTrips) {
  const PageRequest original = sample_request();
  EXPECT_EQ(decode_page_request(encode(original)), original);
}

TEST(Messages, PageResponseRoundTrips) {
  const PageResponse original = sample_response();
  EXPECT_EQ(decode_page_response(encode(original)), original);
}

TEST(Messages, EmptyPageRequestIsLegal) {
  PageRequest message;
  message.cells.clear();
  EXPECT_EQ(decode_page_request(encode(message)), message);
}

TEST(Messages, RoundTripsUnderRandomizedContents) {
  stats::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    LocationUpdate update;
    update.terminal_id = rng.next();
    update.sequence = rng.next();
    update.cell = {rng.next_in_range(-1000000, 1000000),
                   rng.next_in_range(-1000000, 1000000)};
    update.containment_radius =
        static_cast<std::uint32_t>(rng.next_below(1u << 31));
    EXPECT_EQ(decode_location_update(encode(update)), update);
  }
}

TEST(Messages, PeekTypeIdentifiesAllThree) {
  EXPECT_EQ(peek_type(encode(sample_update())),
            MessageType::kLocationUpdate);
  EXPECT_EQ(peek_type(encode(sample_request())), MessageType::kPageRequest);
  EXPECT_EQ(peek_type(encode(sample_response())),
            MessageType::kPageResponse);
}

TEST(Messages, CorruptionAnywhereIsDetected) {
  // Flipping any single byte must fail decode: header/type/payload changes
  // break the CRC; trailer changes mismatch the recomputed CRC.
  const std::vector<std::uint8_t> frame = encode(sample_request());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::vector<std::uint8_t> corrupted = frame;
    corrupted[i] ^= 0x40;
    EXPECT_THROW(decode_page_request(corrupted), DecodeError)
        << "byte " << i;
  }
}

TEST(Messages, TruncationIsDetected) {
  const std::vector<std::uint8_t> frame = encode(sample_update());
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    const std::vector<std::uint8_t> truncated(frame.begin(),
                                              frame.begin() +
                                                  static_cast<long>(keep));
    EXPECT_THROW(decode_location_update(truncated), DecodeError)
        << "kept " << keep;
  }
}

TEST(Messages, TrailingBytesAreDetected) {
  std::vector<std::uint8_t> frame = encode(sample_response());
  // Splice an extra payload byte before the CRC and re-seal with a valid
  // CRC so only the length check can catch it.
  std::vector<std::uint8_t> body(frame.begin(), frame.end() - 4);
  body.push_back(0x00);
  const std::uint32_t crc = crc32(body);
  body.push_back(static_cast<std::uint8_t>(crc));
  body.push_back(static_cast<std::uint8_t>(crc >> 8));
  body.push_back(static_cast<std::uint8_t>(crc >> 16));
  body.push_back(static_cast<std::uint8_t>(crc >> 24));
  EXPECT_THROW(decode_page_response(body), DecodeError);
}

TEST(Messages, WrongTypeIsRejected) {
  EXPECT_THROW(decode_page_request(encode(sample_update())), DecodeError);
  EXPECT_THROW(decode_location_update(encode(sample_response())),
               DecodeError);
}

TEST(Messages, WrongVersionIsRejected) {
  std::vector<std::uint8_t> frame = encode(sample_update());
  std::vector<std::uint8_t> body(frame.begin(), frame.end() - 4);
  body[0] = kProtocolVersion + 1;
  const std::uint32_t crc = crc32(body);
  body.push_back(static_cast<std::uint8_t>(crc));
  body.push_back(static_cast<std::uint8_t>(crc >> 8));
  body.push_back(static_cast<std::uint8_t>(crc >> 16));
  body.push_back(static_cast<std::uint8_t>(crc >> 24));
  EXPECT_THROW(decode_location_update(body), DecodeError);
  EXPECT_THROW(peek_type(body), DecodeError);
}

TEST(Messages, UnknownMessageTypeIsRejectedByPeek) {
  // Hand-build a frame with a valid CRC but a type byte outside the enum.
  std::vector<std::uint8_t> body{kProtocolVersion, 0x7f};
  const std::uint32_t crc = crc32(body);
  body.push_back(static_cast<std::uint8_t>(crc));
  body.push_back(static_cast<std::uint8_t>(crc >> 8));
  body.push_back(static_cast<std::uint8_t>(crc >> 16));
  body.push_back(static_cast<std::uint8_t>(crc >> 24));
  EXPECT_THROW(peek_type(body), DecodeError);
}

TEST(Messages, TinyFramesAreRejected) {
  EXPECT_THROW(peek_type(std::vector<std::uint8_t>{1, 2, 3}), DecodeError);
  EXPECT_THROW(decode_location_update(std::vector<std::uint8_t>{}),
               DecodeError);
}

TEST(Messages, DeltaEncodingKeepsRingFramesCompact) {
  // A full ring of 6*8 = 48 neighboring cells should cost ~2 payload bytes
  // per cell thanks to delta encoding, far below the absolute-coordinate
  // cost of distant cells.
  PageRequest ring;
  ring.cells = geometry::hex_ring(geometry::HexCell{100000, -50000}, 8);
  const std::size_t ring_size = encode(ring).size();
  EXPECT_LT(ring_size, 12 + ring.cells.size() * 3);

  PageRequest scattered;
  for (std::int64_t i = 0; i < 48; ++i) {
    scattered.cells.push_back({i * 1000003, -i * 999983});
  }
  EXPECT_GT(encode(scattered).size(), ring_size * 2);
}

TEST(Messages, EncodedSizeAgreesWithEncode) {
  EXPECT_EQ(encoded_size(sample_update()), encode(sample_update()).size());
  EXPECT_EQ(encoded_size(sample_request()), encode(sample_request()).size());
  EXPECT_EQ(encoded_size(sample_response()),
            encode(sample_response()).size());
}

TEST(Messages, FuzzedRandomBuffersNeverCrash) {
  stats::Rng rng(4);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> noise(rng.next_below(64));
    for (auto& byte : noise) {
      byte = static_cast<std::uint8_t>(rng.next_below(256));
    }
    try {
      (void)decode_location_update(noise);
      (void)decode_page_request(noise);
      (void)decode_page_response(noise);
    } catch (const DecodeError&) {
      // Expected for essentially every random buffer.
    }
  }
}

}  // namespace
}  // namespace pcn::proto
