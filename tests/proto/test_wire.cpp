#include "pcn/proto/wire.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "pcn/stats/rng.hpp"

namespace pcn::proto {
namespace {

TEST(Varint, SmallValuesUseOneByte) {
  WireWriter writer;
  writer.put_varint(0);
  writer.put_varint(127);
  EXPECT_EQ(writer.size(), 2u);
}

TEST(Varint, BoundaryEncodingsAreCanonical) {
  WireWriter writer;
  writer.put_varint(128);
  EXPECT_EQ(writer.buffer(), (std::vector<std::uint8_t>{0x80, 0x01}));
}

TEST(Varint, RoundTripsAcrossTheFullRange) {
  stats::Rng rng(1);
  WireWriter writer;
  std::vector<std::uint64_t> values{0, 1, 127, 128, 16383, 16384,
                                    std::numeric_limits<std::uint64_t>::max()};
  for (int i = 0; i < 100; ++i) values.push_back(rng.next());
  for (std::uint64_t v : values) writer.put_varint(v);

  WireReader reader(writer.buffer());
  for (std::uint64_t v : values) {
    EXPECT_EQ(reader.get_varint(), v);
  }
  EXPECT_TRUE(reader.exhausted());
}

TEST(Varint, TruncationIsDetected) {
  WireWriter writer;
  writer.put_varint(1u << 20);
  std::vector<std::uint8_t> bytes = writer.take();
  bytes.pop_back();
  WireReader reader(bytes);
  EXPECT_THROW(reader.get_varint(), DecodeError);
}

TEST(Varint, OverlongEncodingIsRejected) {
  // 11 continuation bytes can never be a valid 64-bit varint.
  const std::vector<std::uint8_t> bytes(11, 0xff);
  WireReader reader(bytes);
  EXPECT_THROW(reader.get_varint(), DecodeError);
}

TEST(Varint, SixtyFiveBitValueIsRejected) {
  // Ten bytes whose final byte carries more than one significant bit.
  std::vector<std::uint8_t> bytes(9, 0x80);
  bytes.push_back(0x02);
  WireReader reader(bytes);
  EXPECT_THROW(reader.get_varint(), DecodeError);
}

TEST(Zigzag, MapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  EXPECT_EQ(zigzag_encode(2), 4u);
}

TEST(Zigzag, RoundTripsExtremes) {
  for (std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(Signed, RoundTripsThroughTheWire) {
  stats::Rng rng(2);
  WireWriter writer;
  std::vector<std::int64_t> values{0, -1, 1, -1000000, 1000000};
  for (int i = 0; i < 100; ++i) {
    values.push_back(static_cast<std::int64_t>(rng.next()));
  }
  for (std::int64_t v : values) writer.put_signed(v);
  WireReader reader(writer.buffer());
  for (std::int64_t v : values) {
    EXPECT_EQ(reader.get_signed(), v);
  }
}

TEST(Bytes, LengthPrefixedRoundTrip) {
  WireWriter writer;
  const std::vector<std::uint8_t> payload{1, 2, 3, 255, 0};
  writer.put_bytes(payload);
  writer.put_bytes({});  // empty blob is legal
  WireReader reader(writer.buffer());
  EXPECT_EQ(reader.get_bytes(), payload);
  EXPECT_TRUE(reader.get_bytes().empty());
  EXPECT_TRUE(reader.exhausted());
}

TEST(Bytes, LengthBeyondBufferIsRejected) {
  WireWriter writer;
  writer.put_varint(100);  // claims 100 bytes follow
  writer.put_u8(1);
  WireReader reader(writer.buffer());
  EXPECT_THROW(reader.get_bytes(), DecodeError);
}

TEST(Reader, U8AndExhaustion) {
  WireWriter writer;
  writer.put_u8(42);
  WireReader reader(writer.buffer());
  EXPECT_EQ(reader.remaining(), 1u);
  EXPECT_EQ(reader.get_u8(), 42);
  EXPECT_NO_THROW(reader.expect_exhausted());
  EXPECT_THROW(reader.get_u8(), DecodeError);
}

TEST(Reader, TrailingGarbageIsDetected) {
  WireWriter writer;
  writer.put_u8(1);
  writer.put_u8(2);
  WireReader reader(writer.buffer());
  reader.get_u8();
  EXPECT_THROW(reader.expect_exhausted(), DecodeError);
}

TEST(Crc32, MatchesKnownVectors) {
  // IEEE CRC-32 of "123456789" is 0xCBF43926.
  const char* digits = "123456789";
  std::vector<std::uint8_t> bytes(digits, digits + 9);
  EXPECT_EQ(crc32(bytes), 0xcbf43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> bytes{10, 20, 30, 40, 50};
  const std::uint32_t original = crc32(bytes);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32(bytes), original) << "byte " << i << " bit " << bit;
      bytes[i] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

}  // namespace
}  // namespace pcn::proto
