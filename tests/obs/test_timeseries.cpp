// The run-timeline layer: TimeseriesRecorder sampling semantics, the
// determinism filter, the pcn.timeseries.v1 codec (lossless byte-exact
// round-trips, qualified decode errors on corruption), CUSUM changepoint
// detection, and — the contract the whole layer hangs on — bit-identical
// capture at 1 vs 4 threads for both the Network engine and the pcnd
// barrier loop.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pcn/daemon/daemon.hpp"
#include "pcn/daemon/load_gen.hpp"
#include "pcn/obs/metrics.hpp"
#include "pcn/obs/timeseries.hpp"
#include "pcn/obs/timeseries_codec.hpp"
#include "pcn/proto/wire.hpp"
#include "pcn/sim/network.hpp"

namespace pcn::obs {
namespace {

TEST(TimeseriesFilter, ExcludesTimingAndSampledSeries) {
  // Thread-invariant names pass.
  EXPECT_TRUE(timeseries_series_is_deterministic("daemon.page.served"));
  EXPECT_TRUE(timeseries_series_is_deterministic("sim.update.count"));
  EXPECT_TRUE(
      timeseries_series_is_deterministic("daemon.page.queue_delay_slots"));
  // Wall-clock series are not deterministic.
  EXPECT_FALSE(timeseries_series_is_deterministic("daemon.run.wall_ns"));
  EXPECT_FALSE(timeseries_series_is_deterministic("daemon.phase.ingest_us"));
  EXPECT_FALSE(timeseries_series_is_deterministic("x.y.ns"));
  EXPECT_FALSE(timeseries_series_is_deterministic("x.y.us"));
  // The 1-in-32 sampled paging probes depend on flush interleaving.
  EXPECT_FALSE(timeseries_series_is_deterministic("sim.page.sampled"));
  EXPECT_FALSE(timeseries_series_is_deterministic("sim.page.cycles"));
  EXPECT_FALSE(
      timeseries_series_is_deterministic("sim.page.polled_per_call"));
  // Segment parallelism depends on the thread count itself.
  EXPECT_FALSE(timeseries_series_is_deterministic("sim.segment.parallel"));
}

TEST(TimeseriesRecorder, SamplesColumnsAndRejectsStaleSlots) {
  MetricsRegistry registry;
  Counter pages = registry.counter("pages");
  Gauge depth = registry.gauge("depth");
  Histogram delay = registry.histogram("delay", {1.0, 2.0});
  registry.counter("noise.wall_ns").add(123);  // filtered out

  TimeseriesRecorder recorder(/*every_slots=*/4);
  pages.add(10);
  depth.set(3);
  delay.observe(1.5);
  EXPECT_TRUE(recorder.sample(0, registry.snapshot()));
  pages.add(5);
  EXPECT_TRUE(recorder.sample(4, registry.snapshot()));
  // Same or older slot: overlapping triggers are idempotent.
  EXPECT_FALSE(recorder.sample(4, registry.snapshot()));
  EXPECT_FALSE(recorder.sample(2, registry.snapshot()));
  ASSERT_EQ(recorder.sample_count(), 2u);

  const Timeseries& data = recorder.data();
  EXPECT_EQ(data.every_slots, 4);
  ASSERT_EQ(data.slots, (std::vector<std::int64_t>{0, 4}));
  EXPECT_EQ(data.find("noise.wall_ns"), nullptr);
  const Timeseries::Series* counter = data.find("pages");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->kind, SeriesKind::kCounter);
  EXPECT_EQ(counter->values, (std::vector<std::int64_t>{10, 15}));
  const Timeseries::Series* gauge = data.find("depth");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->kind, SeriesKind::kGauge);
  ASSERT_EQ(gauge->dvalues.size(), 2u);
  EXPECT_DOUBLE_EQ(gauge->dvalues[0], 3.0);
  const Timeseries::Series* histogram = data.find("delay");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->kind, SeriesKind::kHistogram);
  EXPECT_EQ(histogram->counts, (std::vector<std::int64_t>{1, 1}));
  ASSERT_EQ(histogram->bucket_columns.size(), 3u);  // 2 bounds + overflow
  EXPECT_EQ(histogram->bucket_columns[1],
            (std::vector<std::int64_t>{1, 1}));  // 1.5 lands in (1,2]

  // snapshot_at reconstructs the registry view at a sample.
  const MetricsSnapshot at0 = data.snapshot_at(0);
  EXPECT_EQ(at0.counter_value("pages"), 10);
  const MetricsSnapshot at1 = data.snapshot_at(1);
  EXPECT_EQ(at1.counter_value("pages"), 15);
}

TEST(TimeseriesRecorder, MaxSamplesKeepsNewestRing) {
  MetricsRegistry registry;
  Counter ticks = registry.counter("ticks");
  TimeseriesRecorder recorder(/*every_slots=*/1, /*max_samples=*/3);
  for (std::int64_t slot = 0; slot < 10; ++slot) {
    ticks.add(1);
    recorder.sample(slot, registry.snapshot());
  }
  ASSERT_EQ(recorder.sample_count(), 3u);
  EXPECT_EQ(recorder.data().slots, (std::vector<std::int64_t>{7, 8, 9}));
  EXPECT_EQ(recorder.data().find("ticks")->values,
            (std::vector<std::int64_t>{8, 9, 10}));
}

Timeseries sample_timeline() {
  MetricsRegistry registry;
  Counter pages = registry.counter("pages");
  Gauge depth = registry.gauge("depth");
  Histogram delay = registry.histogram("delay", {1.0, 2.0, 4.0});
  TimeseriesRecorder recorder(/*every_slots=*/8);
  for (std::int64_t slot = 0; slot <= 64; slot += 8) {
    pages.add(slot % 5 + 1);
    depth.set(static_cast<std::int64_t>(slot % 7));
    delay.observe(double(slot % 4) + 0.5);
    recorder.sample(slot, registry.snapshot());
  }
  return recorder.data();
}

TEST(TimeseriesCodec, RoundTripIsLosslessAndByteExact) {
  const Timeseries original = sample_timeline();
  const std::vector<std::uint8_t> encoded = encode_timeseries(original);
  const Timeseries decoded = decode_timeseries(encoded);

  EXPECT_EQ(decoded.every_slots, original.every_slots);
  EXPECT_EQ(decoded.slots, original.slots);
  ASSERT_EQ(decoded.series.size(), original.series.size());
  for (std::size_t i = 0; i < original.series.size(); ++i) {
    const Timeseries::Series& a = original.series[i];
    const Timeseries::Series& b = decoded.series[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.bounds, b.bounds);
    EXPECT_EQ(a.values, b.values);
    EXPECT_EQ(a.dvalues, b.dvalues);
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.bucket_columns, b.bucket_columns);
  }
  // decode is a right inverse of encode at the byte level: re-encoding
  // the decoded timeline reproduces the exact file (the `--reencode`
  // contract gate 11 checks with cmp).
  EXPECT_EQ(encode_timeseries(decoded), encoded);
}

TEST(TimeseriesCodec, EmptyTimelineRoundTrips) {
  const Timeseries empty;
  const std::vector<std::uint8_t> encoded = encode_timeseries(empty);
  const Timeseries decoded = decode_timeseries(encoded);
  EXPECT_EQ(decoded.sample_count(), 0u);
  EXPECT_TRUE(decoded.series.empty());
  EXPECT_EQ(encode_timeseries(decoded), encoded);
}

TEST(TimeseriesCodec, TruncationAndBitFlipsAreQualifiedErrors) {
  const std::vector<std::uint8_t> encoded =
      encode_timeseries(sample_timeline());
  // Every proper prefix must throw, never crash or return garbage.
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_THROW(
        decode_timeseries(std::span(encoded.data(), len)),
        proto::DecodeError)
        << "prefix length " << len;
  }
  // Any single bit flip breaks the CRC trailer check.
  for (std::size_t pos = 0; pos < encoded.size(); pos += 7) {
    std::vector<std::uint8_t> corrupt = encoded;
    corrupt[pos] ^= 0x10;
    EXPECT_THROW(decode_timeseries(corrupt), proto::DecodeError)
        << "flip at " << pos;
  }
}

/// Appends the CRC-32 trailer the decoder demands, so the corruption
/// under test is reached instead of being masked by the checksum gate.
std::vector<std::uint8_t> with_crc(const proto::WireWriter& writer) {
  std::vector<std::uint8_t> bytes(writer.buffer().begin(),
                                  writer.buffer().end());
  const std::uint32_t crc = proto::crc32(bytes);
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  return bytes;
}

TEST(TimeseriesCodec, ColumnBlockIndexOutOfRangeIsQualifiedError) {
  // A structurally valid file (correct CRC) whose single column block
  // names series index 5 when the dictionary has one entry.
  const auto bytes_of = [](std::string_view text) {
    return std::span(reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size());
  };
  proto::WireWriter writer;
  writer.put_bytes(bytes_of("pcn.timeseries.v1"));  // schema
  writer.put_varint(4);                             // every_slots
  writer.put_varint(1);                             // sample_count
  writer.put_signed(0);                             // slot column: slot 0
  writer.put_varint(1);                             // series_count
  writer.put_bytes(bytes_of("pages"));              // dictionary entry
  writer.put_u8(0);                                 // kind: counter
  writer.put_varint(5);  // column block index — out of range
  writer.put_signed(7);
  EXPECT_THROW(
      {
        try {
          decode_timeseries(with_crc(writer));
        } catch (const proto::DecodeError& error) {
          EXPECT_NE(std::string(error.what()).find("out of range"),
                    std::string::npos)
              << error.what();
          throw;
        }
      },
      proto::DecodeError);
}

TEST(TimeseriesChangepoint, DetectsStepShiftAtItsOnset) {
  std::vector<std::int64_t> slots;
  std::vector<double> values;
  for (int i = 0; i < 40; ++i) {
    slots.push_back(i * 4);
    // Quiet baseline with mild noise, then a sustained 10x shift.
    values.push_back(i < 20 ? 1.0 + 0.1 * double(i % 3) : 12.0);
  }
  const Changepoint shift = detect_upward_shift(slots, values);
  ASSERT_TRUE(shift.detected);
  EXPECT_EQ(shift.onset_slot, 80);  // first shifted sample, slot 20*4
  EXPECT_GT(shift.peak_score, 8.0);
  EXPECT_NEAR(shift.baseline_mean, 1.1, 0.2);
}

TEST(TimeseriesChangepoint, FlatOrNoisySeriesDoesNotFire) {
  std::vector<std::int64_t> slots;
  std::vector<double> flat;
  std::vector<double> noisy;
  for (int i = 0; i < 40; ++i) {
    slots.push_back(i);
    flat.push_back(5.0);
    noisy.push_back(5.0 + (i % 2 == 0 ? 0.5 : -0.5));
  }
  EXPECT_FALSE(detect_upward_shift(slots, flat).detected);
  EXPECT_FALSE(detect_upward_shift(slots, noisy).detected);
  // Too short for a baseline plus a detection region: never fires.
  EXPECT_FALSE(detect_upward_shift({}, {}).detected);
  EXPECT_FALSE(
      detect_upward_shift(std::vector<std::int64_t>{1},
                          std::vector<double>{3.0})
          .detected);
}

TEST(TimeseriesChangepoint, ZeroVarianceBaselineUsesScaleFloor) {
  // All-constant baseline (zero variance) followed by a jump: the scale
  // floor keeps the z-scores finite and the shift still detected.
  std::vector<std::int64_t> slots;
  std::vector<double> values;
  for (int i = 0; i < 30; ++i) {
    slots.push_back(i);
    values.push_back(i < 15 ? 2.0 : 40.0);
  }
  const Changepoint shift = detect_upward_shift(slots, values);
  ASSERT_TRUE(shift.detected);
  EXPECT_EQ(shift.onset_slot, 15);
  EXPECT_GT(shift.scale, 0.0);
}

// --- capture determinism across thread counts -------------------------------

std::string network_timeline(int threads) {
  sim::NetworkConfig config{Dimension::kTwoD,
                            sim::SlotSemantics::kChainFaithful, 99};
  config.threads = threads;
  config.timeseries_every_slots = 64;
  sim::Network network(config, CostWeights{50.0, 2.0});
  constexpr MobilityProfile kProfile{0.2, 0.05};
  for (int i = 0; i < 64; ++i) {
    switch (i % 3) {
      case 0:
        network.add_terminal(sim::make_distance_terminal(
            Dimension::kTwoD, kProfile, 1 + i % 4, DelayBound(2)));
        break;
      case 1:
        network.add_terminal(sim::make_movement_terminal(
            Dimension::kTwoD, kProfile, 2 + i % 4, DelayBound(3)));
        break;
      default:
        network.add_terminal(
            sim::make_time_terminal(Dimension::kTwoD, kProfile, 10 + i % 7));
        break;
    }
  }
  network.run(512);
  return encode_timeseries_string(network.timeseries()->data());
}

TEST(TimeseriesDeterminism, NetworkCaptureIsBitIdenticalAcrossThreads) {
  const std::string serial = network_timeline(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, network_timeline(4));
}

std::string daemon_timeline(int threads) {
  daemon::PcndConfig config;
  config.threads = threads;
  config.capacity = capacity::PagingCapacityModel(1, 1.0);
  config.queue.max_pending = 8;
  config.queue.lifetime_slots = 16;
  config.queue.groups = 4;
  config.sla_delay_slots = 8;
  config.timeseries_every_slots = 8;
  daemon::Pcnd pcnd(config);

  daemon::ClosedLoopConfig workload_config;
  workload_config.seed = 2026;
  workload_config.terminals = 2000;
  workload_config.region = 16;
  workload_config.move_prob = 0.2;
  workload_config.call_prob = 2.0 * 16 * 16 / 2000.0;  // 2x overload
  workload_config.threshold = 3;
  daemon::ClosedLoopWorkload workload(workload_config);
  pcnd.run_slots(64, &workload);
  return pcnd.timeseries_encoded();
}

TEST(TimeseriesDeterminism, DaemonCaptureIsBitIdenticalAcrossThreads) {
  const std::string serial = daemon_timeline(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, daemon_timeline(4));
}

}  // namespace
}  // namespace pcn::obs
