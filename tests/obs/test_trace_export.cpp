// Trace serialization: the pcn.trace.v1 JSONL round trip (every event
// type, payload-field omission, line-qualified parse errors), the Chrome
// trace_event export (must parse as JSON and carry the expected slices),
// and the JsonValue recursive-descent parser both exporters' tests lean
// on.  The formats are the stable exchange contract of `pcnctl
// trace-summary` and the Perfetto workflow — change them deliberately.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "pcn/obs/json.hpp"
#include "pcn/obs/trace_export.hpp"

namespace pcn::obs {
namespace {

TraceMeta sample_meta() {
  TraceMeta meta;
  meta.dimension = 2;
  meta.semantics = "chain_faithful";
  meta.seed = 42;
  meta.threads = 4;
  meta.slots = 20000;
  meta.move_prob = 0.1;
  meta.call_prob = 0.05;
  meta.update_cost = 100.0;
  meta.poll_cost = 10.0;
  meta.policy = "distance";
  meta.param = 3;
  meta.scheme = "sdf";
  meta.delay_cycles = 2;
  meta.sample_every = 8;
  meta.dropped_events = 0;
  return meta;
}

/// One full recorded lifecycle plus every other event type once.
std::vector<FlightEvent> sample_events() {
  std::vector<FlightEvent> events;
  FlightEvent arrival;
  arrival.slot = 12;
  arrival.terminal = 3;
  arrival.seq = 0;
  arrival.type = FlightEventType::kCallArrival;
  arrival.call = 8;
  arrival.cells = 3;
  arrival.distance = 2;
  events.push_back(arrival);

  FlightEvent cycle;
  cycle.slot = 12;
  cycle.terminal = 3;
  cycle.seq = 1;
  cycle.type = FlightEventType::kPollCycle;
  cycle.call = 8;
  cycle.cycle = 0;
  cycle.cells = 5;
  cycle.cost = 50.0;
  cycle.ring_lo = 0;
  cycle.ring_hi = 2;
  cycle.found = true;
  events.push_back(cycle);

  FlightEvent found;
  found.slot = 12;
  found.terminal = 3;
  found.seq = 2;
  found.type = FlightEventType::kCallFound;
  found.call = 8;
  found.cycle = 1;
  found.cells = 5;
  found.cost = 50.0;
  found.distance = 2;
  found.found = true;
  events.push_back(found);

  FlightEvent update;
  update.slot = 30;
  update.terminal = 1;
  update.seq = 0;
  update.type = FlightEventType::kLocationUpdate;
  update.cost = 100.0;
  update.distance = 3;
  events.push_back(update);

  FlightEvent reset;
  reset.slot = 30;
  reset.terminal = 1;
  reset.seq = 1;
  reset.type = FlightEventType::kAreaReset;
  reset.cells = 3;
  events.push_back(reset);

  FlightEvent lost;
  lost.slot = 41;
  lost.terminal = 1;
  lost.seq = 0;
  lost.type = FlightEventType::kUpdateLost;
  lost.cost = 100.0;
  lost.distance = 3;
  events.push_back(lost);

  FlightEvent fallback;
  fallback.slot = 55;
  fallback.terminal = 1;
  fallback.seq = 1;
  fallback.type = FlightEventType::kPageFallback;
  fallback.call = 2;
  fallback.cycle = 2;
  fallback.distance = 3;
  events.push_back(fallback);
  return events;
}

TEST(TraceJsonlTest, RoundTripIsExact) {
  const TraceMeta meta = sample_meta();
  const std::vector<FlightEvent> events = sample_events();
  const std::string text = to_trace_jsonl(meta, events);
  // Header plus one line per event, newline-terminated.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            events.size() + 1);

  TraceMeta parsed_meta;
  std::vector<FlightEvent> parsed_events;
  std::string error;
  ASSERT_TRUE(parse_trace_jsonl(text, &parsed_meta, &parsed_events, &error))
      << error;
  EXPECT_EQ(parsed_meta, meta);
  ASSERT_EQ(parsed_events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed_events[i], events[i]) << "event " << i;
  }
}

TEST(TraceJsonlTest, DefaultPayloadFieldsAreOmitted) {
  FlightEvent event;
  event.slot = 7;
  event.terminal = 2;
  event.seq = 0;
  event.type = FlightEventType::kAreaReset;
  const std::string text = to_trace_jsonl(sample_meta(), {event});
  const std::size_t line_start = text.find('\n') + 1;
  const std::string line = text.substr(line_start,
                                       text.find('\n', line_start) -
                                           line_start);
  EXPECT_EQ(line,
            "{\"slot\":7,\"terminal\":2,\"seq\":0,\"type\":\"area_reset\"}");
}

TEST(TraceJsonlTest, ParseErrorsAreLineQualified) {
  TraceMeta meta;
  std::vector<FlightEvent> events;
  std::string error;

  EXPECT_FALSE(parse_trace_jsonl("", &meta, &events, &error));
  EXPECT_NE(error.find("empty document"), std::string::npos);

  EXPECT_FALSE(parse_trace_jsonl("{\"schema\":\"bogus\"}\n", &meta, &events,
                                 &error));
  EXPECT_NE(error.find("line 1: missing or unknown schema"),
            std::string::npos);

  const std::string good_header = "{\"schema\":\"pcn.trace.v1\"}\n";
  EXPECT_FALSE(parse_trace_jsonl(good_header + "{\"type\":\"nonsense\"}\n",
                                 &meta, &events, &error));
  EXPECT_NE(error.find("line 2: unknown event type \"nonsense\""),
            std::string::npos);

  EXPECT_FALSE(parse_trace_jsonl(good_header + "{not json\n", &meta, &events,
                                 &error));
  EXPECT_NE(error.find("line 2:"), std::string::npos);

  // Blank lines are tolerated (a trailing newline is normal).
  events.clear();
  EXPECT_TRUE(parse_trace_jsonl(
      good_header + "\n{\"slot\":1,\"terminal\":0,\"seq\":0,"
                    "\"type\":\"call_found\"}\n\n",
      &meta, &events, &error))
      << error;
  EXPECT_EQ(events.size(), 1u);
}

TEST(ChromeTraceTest, ParsesAsJsonWithExpectedSlices) {
  const std::string text = to_chrome_trace(sample_meta(), sample_events());
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parse_json(text, &doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.string_or("displayTimeUnit", ""), "ms");

  const JsonValue* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->string_or("schema", ""), "pcn.trace.v1");
  EXPECT_EQ(other->int_or("seed", 0), 42);

  const JsonValue* trace_events = doc.find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  int metadata = 0, slices = 0, instants = 0;
  for (const JsonValue& event : trace_events->array) {
    const std::string phase = event.string_or("ph", "");
    if (phase == "M") ++metadata;
    if (phase == "X") ++slices;
    if (phase == "i") ++instants;
  }
  // Two terminals appear in the recording => two thread_name records; the
  // call produces one call slice plus one nested cycle slice; the update,
  // reset, lost and fallback events are four instants.
  EXPECT_EQ(metadata, 2);
  EXPECT_EQ(slices, 2);
  EXPECT_EQ(instants, 4);
}

TEST(ChromeTraceTest, IsDeterministic) {
  const std::string a = to_chrome_trace(sample_meta(), sample_events());
  const std::string b = to_chrome_trace(sample_meta(), sample_events());
  EXPECT_EQ(a, b);
}

// ---- JsonValue parser -------------------------------------------------------

JsonValue parse_ok(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(parse_json(text, &value, &error)) << text << ": " << error;
  return value;
}

std::string parse_fail(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(parse_json(text, &value, &error)) << text;
  return error;
}

TEST(JsonParserTest, Scalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_EQ(parse_ok("true").boolean, true);
  EXPECT_EQ(parse_ok("false").boolean, false);
  EXPECT_DOUBLE_EQ(parse_ok("-2.5e2").number, -250.0);
  EXPECT_DOUBLE_EQ(parse_ok("42").number, 42.0);
  EXPECT_EQ(parse_ok("\"hi\"").string, "hi");
}

TEST(JsonParserTest, EscapesAndUnicode) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\nd\te")").string, "a\"b\\c\nd\te");
  EXPECT_EQ(parse_ok(R"("\u0041\u00e9")").string, "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse_ok(R"("\ud83d\ude00")").string, "\xf0\x9f\x98\x80");
}

TEST(JsonParserTest, NestedStructures) {
  const JsonValue doc =
      parse_ok(R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.0);
  EXPECT_EQ(a->array[2].bool_or("b", false), true);
  EXPECT_TRUE(doc.find("c")->find("d")->is_null());
  EXPECT_EQ(doc.string_or("e", ""), "x");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_EQ(doc.int_or("missing", -7), -7);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_NE(parse_fail(""), "");
  EXPECT_NE(parse_fail("{"), "");
  EXPECT_NE(parse_fail("[1,]"), "");
  EXPECT_NE(parse_fail("{\"a\":}"), "");
  EXPECT_NE(parse_fail("tru"), "");
  EXPECT_NE(parse_fail("\"unterminated"), "");
  EXPECT_NE(parse_fail("\"bad escape \\x\""), "");
  // Trailing garbage after a complete value is an error, with an offset.
  const std::string error = parse_fail("{} trailing");
  EXPECT_NE(error.find("offset"), std::string::npos);
}

TEST(JsonParserTest, DepthIsBounded) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_NE(parse_fail(deep).find("nesting too deep"), std::string::npos);
}

}  // namespace
}  // namespace pcn::obs
