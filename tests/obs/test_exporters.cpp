// Exporter goldens: Prometheus text exposition and JSON for a
// deterministic registry, the JsonWriter primitives, BenchReport's
// parse-line/JSON protocol, the TraceRing, and the RunReport built from a
// real (tiny) simulation.  The exact strings here are the stable exchange
// format downstream tooling parses — change them deliberately.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "pcn/obs/bench_report.hpp"
#include "pcn/obs/json.hpp"
#include "pcn/obs/metrics.hpp"
#include "pcn/obs/report.hpp"
#include "pcn/obs/timer.hpp"
#include "pcn/sim/network.hpp"

namespace {

using pcn::obs::BenchReport;
using pcn::obs::JsonWriter;
using pcn::obs::MetricsRegistry;
using pcn::obs::TraceRing;

/// A small fixed registry every golden below is derived from.
MetricsRegistry& golden_registry() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry;
    r->counter("sim.update.count").add(42);
    r->counter("costmodel.solve.miss").add(7);
    r->gauge("sim.fleet.terminals").set(3.5);
    pcn::obs::Histogram histogram =
        r->histogram("sim.page.cycles", {1.0, 2.0, 4.0});
    histogram.observe(1.0);
    histogram.observe(1.0);
    histogram.observe(3.0);
    histogram.observe(9.0);
    return r;
  }();
  return *registry;
}

TEST(Exporters, PrometheusGolden) {
  const std::string text =
      pcn::obs::to_prometheus(golden_registry().snapshot());
  EXPECT_EQ(text,
            "# HELP pcn_costmodel_solve_miss pcn metric costmodel.solve."
            "miss.\n"
            "# TYPE pcn_costmodel_solve_miss counter\n"
            "pcn_costmodel_solve_miss 7\n"
            "# HELP pcn_sim_update_count pcn metric sim.update.count.\n"
            "# TYPE pcn_sim_update_count counter\n"
            "pcn_sim_update_count 42\n"
            "# HELP pcn_sim_fleet_terminals pcn metric sim.fleet."
            "terminals.\n"
            "# TYPE pcn_sim_fleet_terminals gauge\n"
            "pcn_sim_fleet_terminals 3.5\n"
            "# HELP pcn_sim_page_cycles pcn metric sim.page.cycles.\n"
            "# TYPE pcn_sim_page_cycles histogram\n"
            "pcn_sim_page_cycles_bucket{le=\"1\"} 2\n"
            "pcn_sim_page_cycles_bucket{le=\"2\"} 2\n"
            "pcn_sim_page_cycles_bucket{le=\"4\"} 3\n"
            "pcn_sim_page_cycles_bucket{le=\"+Inf\"} 4\n"
            "pcn_sim_page_cycles_sum 14\n"
            "pcn_sim_page_cycles_count 4\n");
}

TEST(Exporters, PrometheusHelpTableCoversDaemonMetrics) {
  // Curated entries do not use the generic fallback text.
  EXPECT_EQ(pcn::obs::prometheus_help("no.such.metric"),
            "pcn metric no.such.metric.");
  EXPECT_EQ(pcn::obs::prometheus_help("daemon.slot.count")
                .find("pcn metric"),
            std::string::npos);
  EXPECT_EQ(pcn::obs::prometheus_help("daemon.phase.ingest_us")
                .find("pcn metric"),
            std::string::npos);
  EXPECT_EQ(pcn::obs::prometheus_help("daemon.socket.decode_errors")
                .find("pcn metric"),
            std::string::npos);
}

TEST(Exporters, PrometheusLabelValueEscaping) {
  // Exposition-format escapes for label values: backslash, double quote,
  // and newline.  Everything else passes through verbatim.
  EXPECT_EQ(pcn::obs::prometheus_escape_label_value("plain"), "plain");
  EXPECT_EQ(pcn::obs::prometheus_escape_label_value("say \"hi\"\\\n"),
            "say \\\"hi\\\"\\\\\\n");
  EXPECT_EQ(pcn::obs::prometheus_escape_label_value("+Inf"), "+Inf");
}

TEST(Exporters, SnapshotJsonGolden) {
  const std::string json = pcn::obs::to_json(golden_registry().snapshot());
  EXPECT_EQ(json,
            "{\"counters\":{\"costmodel.solve.miss\":7,"
            "\"sim.update.count\":42},"
            "\"gauges\":{\"sim.fleet.terminals\":3.5},"
            "\"histograms\":{\"sim.page.cycles\":{\"bounds\":[1,2,4],"
            "\"counts\":[2,0,1,1],\"count\":4,\"sum\":14}}}");
}

TEST(JsonWriterTest, EscapingAndScalars) {
  JsonWriter json;
  json.begin_object();
  json.member("text", "quote\" slash\\ newline\n tab\t");
  json.member("flag", true);
  json.member("off", false);
  json.member("int", std::int64_t{-5});
  json.member("big", std::uint64_t{18446744073709551615ULL});
  json.end_object();
  EXPECT_EQ(json.take(),
            "{\"text\":\"quote\\\" slash\\\\ newline\\n tab\\t\","
            "\"flag\":true,\"off\":false,\"int\":-5,"
            "\"big\":18446744073709551615}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.value(std::numeric_limits<double>::infinity());
  json.value(0.5);
  json.end_array();
  EXPECT_EQ(json.take(), "[null,null,0.5]");
}

TEST(BenchReportTest, ParseLineAndJson) {
  BenchReport report("unit_bench");
  report.set("slots", std::int64_t{1000})
      .set("throughput", 2.5)
      .set("verdict", std::string("pass"));
  report.add_row("case/a").set("cost", 1.25).set("evals", 7);
  EXPECT_EQ(report.parse_line(),
            "PCN_BENCH unit_bench slots=1000 throughput=2.5 verdict=pass");
  EXPECT_EQ(report.json(),
            "{\"schema\":\"pcn.bench_report.v1\",\"name\":\"unit_bench\","
            "\"summary\":{\"slots\":1000,\"throughput\":2.5,"
            "\"verdict\":\"pass\"},"
            "\"rows\":[{\"label\":\"case/a\","
            "\"values\":{\"cost\":1.25,\"evals\":7}}]}");
}

TEST(BenchReportTest, OutputPathHonoursBenchDir) {
  BenchReport report("unit_bench");
  // Not set => the git-ignored default output directory.
  unsetenv("PCN_BENCH_DIR");
  EXPECT_EQ(report.output_path(), "bench/out/BENCH_unit_bench.json");
  setenv("PCN_BENCH_DIR", "/tmp/pcn_bench_test", 1);
  EXPECT_EQ(report.output_path(), "/tmp/pcn_bench_test/BENCH_unit_bench.json");
  unsetenv("PCN_BENCH_DIR");
}

TEST(TraceRingTest, RecordAndRecent) {
  TraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  ring.record("alpha", 10, 5, 1);
  ring.record("beta", 20, 7, 2);
  const auto spans = ring.recent();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "alpha");
  EXPECT_EQ(spans[0].start_ns, 10);
  EXPECT_EQ(spans[0].duration_ns, 5);
  EXPECT_EQ(spans[0].shard, 1u);
  EXPECT_STREQ(spans[1].name, "beta");
  EXPECT_NE(ring.format().find("beta"), std::string::npos);
}

TEST(TraceRingTest, WrapKeepsMostRecent) {
  TraceRing ring(4);
  for (std::int64_t i = 0; i < 10; ++i) ring.record("span", i, 1, 0);
  EXPECT_EQ(ring.recorded(), 10u);
  const auto spans = ring.recent();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first: the four most recent start times are 6..9.
  EXPECT_EQ(spans[0].start_ns, 6);
  EXPECT_EQ(spans[3].start_ns, 9);
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(256).capacity(), 256u);
}

TEST(TraceRingTest, WrapAtNonDefaultCapacity) {
  TraceRing ring(32);
  ASSERT_EQ(ring.capacity(), 32u);
  for (std::int64_t i = 0; i < 100; ++i) ring.record("span", i, 1, 0);
  EXPECT_EQ(ring.recorded(), 100u);
  const auto spans = ring.recent();
  ASSERT_EQ(spans.size(), 32u);
  // Oldest first: the 32 most recent start times are 68..99.
  EXPECT_EQ(spans[0].start_ns, 68);
  EXPECT_EQ(spans[31].start_ns, 99);
}

/// NetworkConfig::trace_ring_capacity sizes the runtime ring; the
/// PCN_TRACE_RING_CAPACITY environment variable overrides it without a
/// recompile.  Both paths must wrap correctly at non-default sizes.
TEST(TraceRingTest, NetworkHonoursConfiguredCapacity) {
  unsetenv("PCN_TRACE_RING_CAPACITY");
  pcn::sim::NetworkConfig config{pcn::Dimension::kOneD,
                                 pcn::sim::SlotSemantics::kChainFaithful, 7};
  config.collect_runtime_stats = true;
  config.trace_ring_capacity = 32;
  pcn::sim::Network network(config, pcn::CostWeights{100.0, 10.0});
  network.add_terminal(pcn::sim::make_distance_terminal(
      pcn::Dimension::kOneD, pcn::MobilityProfile{0.1, 0.05}, 3,
      pcn::DelayBound(2)));
  network.run(50000);
  ASSERT_NE(network.trace(), nullptr);
  EXPECT_EQ(network.trace()->capacity(), 32u);
  // Page spans are 1-in-32 sampled, so 50000 slots at call_prob 0.05
  // still record ~78 of them: the ring must have wrapped, keeping only
  // the newest 32 spans.
  EXPECT_GT(network.trace()->recorded(), 32u);
  EXPECT_EQ(network.trace()->recent().size(), 32u);
}

TEST(TraceRingTest, NetworkHonoursCapacityEnvOverride) {
  setenv("PCN_TRACE_RING_CAPACITY", "64", 1);
  pcn::sim::NetworkConfig config{pcn::Dimension::kOneD,
                                 pcn::sim::SlotSemantics::kChainFaithful, 7};
  config.collect_runtime_stats = true;
  config.trace_ring_capacity = 32;  // env wins over the config value
  pcn::sim::Network network(config, pcn::CostWeights{100.0, 10.0});
  unsetenv("PCN_TRACE_RING_CAPACITY");
  ASSERT_NE(network.trace(), nullptr);
  EXPECT_EQ(network.trace()->capacity(), 64u);
}

TEST(RunReportTest, JsonShapeFromRealRun) {
  pcn::sim::NetworkConfig config{pcn::Dimension::kOneD,
                                 pcn::sim::SlotSemantics::kChainFaithful, 7};
  config.collect_runtime_stats = true;
  pcn::sim::Network network(config, pcn::CostWeights{100.0, 10.0});
  network.add_terminal(pcn::sim::make_distance_terminal(
      pcn::Dimension::kOneD, pcn::MobilityProfile{0.1, 0.05}, 3,
      pcn::DelayBound(2)));
  network.run(5000);

  const pcn::obs::RunReport report = pcn::obs::make_run_report(network);
  EXPECT_EQ(report.terminals, 1);
  EXPECT_EQ(report.slots, 5000);
  EXPECT_TRUE(report.collect_runtime_stats);
  EXPECT_GT(report.calls, 0);
  EXPECT_GT(report.total_cost_per_slot, 0.0);
  EXPECT_GT(report.run_wall_seconds, 0.0);
  EXPECT_GT(report.terminal_slots_per_sec, 0.0);
  EXPECT_EQ(report.metrics.counter_value("sim.terminal.slots"), 5000);

  const std::string json = to_json(report);
  // Stable shape markers downstream tooling keys off.
  EXPECT_NE(json.find("\"schema\":\"pcn.run_report.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"config\":{\"dimension\":\"1-D\""),
            std::string::npos);
  EXPECT_NE(json.find("\"costs\":{\"update_per_slot\":"), std::string::npos);
  EXPECT_NE(json.find("\"breakdown_seconds\":{"), std::string::npos);
  EXPECT_NE(json.find("\"sim.run.wall\":"), std::string::npos);
  EXPECT_NE(json.find("\"throughput\":{\"slots_per_sec\":"),
            std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{\"counters\":{"), std::string::npos);
  // Delay-distribution section: percentiles plus the SLA verdict (the
  // fleet's planned policy has delay bound m=2, so violations must be 0).
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"sla\":{\"bound_cycles\":2,\"violations\":0}"),
            std::string::npos);
}

TEST(WriteFileTest, ReportsUnwritablePath) {
  std::string error;
  EXPECT_FALSE(pcn::obs::write_file("/nonexistent_dir/out.json", "{}",
                                    &error));
  EXPECT_NE(error.find("cannot open '/nonexistent_dir/out.json'"),
            std::string::npos);
}

}  // namespace
