// RollingWindow: windowed counter rates and histogram quantiles derived
// as deltas between retained MetricsSnapshots.  All timestamps here are
// synthetic, so every expectation is exact.
#include <gtest/gtest.h>

#include <cstdint>

#include "pcn/obs/metrics.hpp"
#include "pcn/obs/rolling_window.hpp"

namespace {

using pcn::obs::MetricsRegistry;
using pcn::obs::RollingWindow;
using pcn::obs::WindowQuantiles;
using pcn::obs::WindowRate;

constexpr std::int64_t kSecond = 1'000'000'000;

TEST(RollingWindowTest, RateIsDeltaOverActualSpan) {
  MetricsRegistry registry;
  pcn::obs::Counter pages = registry.counter("pages");
  RollingWindow window(kSecond, 8);

  window.add(0, registry.snapshot());
  pages.add(100);
  window.add(1 * kSecond, registry.snapshot());
  pages.add(300);
  window.add(2 * kSecond, registry.snapshot());

  // 10 s window: base is the oldest entry, delta covers both increments.
  const auto rate10 = window.rate("pages", 10 * kSecond);
  ASSERT_TRUE(rate10.has_value());
  EXPECT_EQ(rate10->delta, 400);
  EXPECT_EQ(rate10->span_ns, 2 * kSecond);
  EXPECT_DOUBLE_EQ(rate10->per_sec, 200.0);

  // 1 s window: base is the middle entry, delta is the last increment.
  const auto rate1 = window.rate("pages", 1 * kSecond);
  ASSERT_TRUE(rate1.has_value());
  EXPECT_EQ(rate1->delta, 300);
  EXPECT_EQ(rate1->span_ns, 1 * kSecond);
  EXPECT_DOUBLE_EQ(rate1->per_sec, 300.0);
}

TEST(RollingWindowTest, RateNeedsTwoEntriesAndKnownCounter) {
  MetricsRegistry registry;
  registry.counter("pages").add(5);
  RollingWindow window(kSecond, 8);
  EXPECT_FALSE(window.rate("pages", kSecond).has_value());
  window.add(0, registry.snapshot());
  EXPECT_FALSE(window.rate("pages", kSecond).has_value());
  window.add(kSecond, registry.snapshot());
  EXPECT_TRUE(window.rate("pages", kSecond).has_value());
  // Unknown counters read as zero in both entries: delta 0, not an error.
  const auto unknown = window.rate("no.such.counter", kSecond);
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->delta, 0);
}

TEST(RollingWindowTest, MaybeAddEnforcesBucketSpacing) {
  MetricsRegistry registry;
  RollingWindow window(kSecond, 8);
  EXPECT_TRUE(window.maybe_add(0, registry.snapshot()));
  // Under one bucket interval since the newest entry: dropped.
  EXPECT_FALSE(window.maybe_add(kSecond / 2, registry.snapshot()));
  EXPECT_EQ(window.size(), 1u);
  EXPECT_TRUE(window.maybe_add(kSecond, registry.snapshot()));
  EXPECT_EQ(window.size(), 2u);
  EXPECT_EQ(window.newest_ns(), kSecond);
}

TEST(RollingWindowTest, CapacityEvictsOldestEntries) {
  MetricsRegistry registry;
  pcn::obs::Counter ticks = registry.counter("ticks");
  RollingWindow window(kSecond, 4);
  for (int i = 0; i < 10; ++i) {
    ticks.add(1);
    window.add(i * kSecond, registry.snapshot());
  }
  EXPECT_EQ(window.size(), 4u);
  EXPECT_EQ(window.newest_ns(), 9 * kSecond);
  // A huge window only reaches back to the oldest retained entry (t=6s,
  // counter=7), so the delta is 10 - 7 = 3 over 3 seconds.
  const auto rate = window.rate("ticks", 100 * kSecond);
  ASSERT_TRUE(rate.has_value());
  EXPECT_EQ(rate->delta, 3);
  EXPECT_EQ(rate->span_ns, 3 * kSecond);
}

TEST(RollingWindowTest, QuantilesComeFromBucketDeltas) {
  MetricsRegistry registry;
  pcn::obs::Histogram delay =
      registry.histogram("delay", {1.0, 2.0, 4.0, 8.0});

  RollingWindow window(kSecond, 8);
  // Entry 0 carries earlier observations the window must subtract out.
  delay.observe(8.0);
  delay.observe(8.0);
  window.add(0, registry.snapshot());

  // Inside the window: 90 observations in (1,2], 10 in (4,8].
  for (int i = 0; i < 90; ++i) delay.observe(2.0);
  for (int i = 0; i < 10; ++i) delay.observe(8.0);
  window.add(kSecond, registry.snapshot());

  const auto q = window.quantiles("delay", kSecond);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->count, 100);
  EXPECT_DOUBLE_EQ(q->mean, (90 * 2.0 + 10 * 8.0) / 100.0);
  // p50 interpolates inside the (1,2] bucket; p95 and p99 land in (4,8].
  ASSERT_EQ(q->values.size(), 3u);  // default p50/p95/p99
  EXPECT_GT(q->at(0), 1.0);
  EXPECT_LE(q->at(0), 2.0);
  EXPECT_GT(q->at(1), 4.0);
  EXPECT_LE(q->at(1), 8.0);
  EXPECT_GT(q->at(2), q->at(1) - 1e-12);
  EXPECT_LE(q->at(2), 8.0);
  // All window observations fell in (4,8] at the top: max reports the
  // upper bound of the highest non-empty bucket.
  EXPECT_DOUBLE_EQ(q->max, 8.0);
  // Out-of-range quantile index reads as 0 rather than UB.
  EXPECT_DOUBLE_EQ(q->at(99), 0.0);
}

TEST(RollingWindowTest, QuantilesHonourCallerSuppliedList) {
  MetricsRegistry registry;
  pcn::obs::Histogram delay = registry.histogram("delay", {1.0, 2.0, 4.0});
  RollingWindow window(kSecond, 8);
  window.add(0, registry.snapshot());
  for (int i = 0; i < 100; ++i) delay.observe(2.0);
  window.add(kSecond, registry.snapshot());

  const double wanted[] = {0.0, 0.25, 1.0};
  const auto q = window.quantiles("delay", kSecond, wanted);
  ASSERT_TRUE(q.has_value());
  ASSERT_EQ(q->values.size(), 3u);
  // Every observation is in (1,2]: all requested quantiles land there.
  for (const double v : q->values) {
    EXPECT_GT(v, 1.0 - 1e-12);
    EXPECT_LE(v, 2.0);
  }
  EXPECT_DOUBLE_EQ(q->max, 2.0);
}

TEST(RollingWindowTest, WrapAroundWithIrregularAndDuplicateTimestamps) {
  MetricsRegistry registry;
  pcn::obs::Counter ticks = registry.counter("ticks");
  RollingWindow window(kSecond, 4);
  // Irregular spacing, including a duplicate timestamp, pushed well past
  // capacity so the ring wraps several times.
  const std::int64_t stamps[] = {0,
                                 kSecond,
                                 kSecond,  // duplicate
                                 3 * kSecond,
                                 3 * kSecond + 1,
                                 10 * kSecond,
                                 11 * kSecond,
                                 11 * kSecond,  // duplicate at the tail
                                 25 * kSecond};
  for (const std::int64_t ts : stamps) {
    ticks.add(1);
    window.add(ts, registry.snapshot());
  }
  EXPECT_EQ(window.size(), 4u);
  EXPECT_EQ(window.newest_ns(), 25 * kSecond);
  // Retained entries are the newest four: t=10s (c=6), 11s (7), 11s (8),
  // 25s (9).  A wide window bases on t=10s.
  const auto wide = window.rate("ticks", 100 * kSecond);
  ASSERT_TRUE(wide.has_value());
  EXPECT_EQ(wide->delta, 3);
  EXPECT_EQ(wide->span_ns, 15 * kSecond);
  // A window smaller than the gap back to any earlier entry has no base
  // (the newest entry never serves as its own base): no rate, not garbage.
  EXPECT_FALSE(window.rate("ticks", 2 * kSecond).has_value());
  // A window that reaches the duplicate-timestamp pair bases on the older
  // of the two inserts (oldest retained entry inside the window), so the
  // delta covers both duplicate samples and stays non-negative.
  const auto dup = window.rate("ticks", 14 * kSecond);
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(dup->delta, 2);
  EXPECT_EQ(dup->span_ns, 14 * kSecond);
}

TEST(RollingWindowTest, CounterResetDoesNotGoNegative) {
  // A fresh daemon restart scraped into an old window: the newest
  // cumulative value is *smaller* than the base.  The window must not
  // report a negative rate — it falls back to the newest value (everything
  // since the restart).
  MetricsRegistry before;
  before.counter("pages").add(1000);
  MetricsRegistry after;  // restarted process: counters start from zero
  after.counter("pages").add(40);

  RollingWindow window(kSecond, 8);
  window.add(0, before.snapshot());
  window.add(kSecond, after.snapshot());
  const auto rate = window.rate("pages", kSecond);
  ASSERT_TRUE(rate.has_value());
  EXPECT_EQ(rate->delta, 40);
  EXPECT_DOUBLE_EQ(rate->per_sec, 40.0);
}

TEST(RollingWindowTest, HistogramResetFallsBackToRawCounts) {
  // Same restart scenario for histograms: bucket deltas would all be
  // negative, so quantiles fall back to the newest raw cumulative state.
  MetricsRegistry before;
  pcn::obs::Histogram old_delay = before.histogram("delay", {1.0, 2.0, 4.0});
  for (int i = 0; i < 50; ++i) old_delay.observe(4.0);
  MetricsRegistry after;
  pcn::obs::Histogram delay = after.histogram("delay", {1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) delay.observe(2.0);

  RollingWindow window(kSecond, 8);
  window.add(0, before.snapshot());
  window.add(kSecond, after.snapshot());
  const auto q = window.quantiles("delay", kSecond);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->count, 10);
  EXPECT_DOUBLE_EQ(q->mean, 2.0);
  ASSERT_EQ(q->values.size(), 3u);
  EXPECT_GT(q->at(0), 1.0);
  EXPECT_LE(q->at(0), 2.0);
  EXPECT_DOUBLE_EQ(q->max, 2.0);
}

TEST(RollingWindowTest, QuantilesEmptyWindowYieldsZeroCount) {
  MetricsRegistry registry;
  pcn::obs::Histogram delay = registry.histogram("delay", {1.0, 2.0});
  delay.observe(1.0);
  RollingWindow window(kSecond, 8);
  window.add(0, registry.snapshot());
  window.add(kSecond, registry.snapshot());  // no new observations
  const auto q = window.quantiles("delay", kSecond);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->count, 0);
  EXPECT_DOUBLE_EQ(q->mean, 0.0);
  EXPECT_FALSE(window.quantiles("no.such.histogram", kSecond).has_value());
}

}  // namespace
