// RollingWindow: windowed counter rates and histogram quantiles derived
// as deltas between retained MetricsSnapshots.  All timestamps here are
// synthetic, so every expectation is exact.
#include <gtest/gtest.h>

#include <cstdint>

#include "pcn/obs/metrics.hpp"
#include "pcn/obs/rolling_window.hpp"

namespace {

using pcn::obs::MetricsRegistry;
using pcn::obs::RollingWindow;
using pcn::obs::WindowQuantiles;
using pcn::obs::WindowRate;

constexpr std::int64_t kSecond = 1'000'000'000;

TEST(RollingWindowTest, RateIsDeltaOverActualSpan) {
  MetricsRegistry registry;
  pcn::obs::Counter pages = registry.counter("pages");
  RollingWindow window(kSecond, 8);

  window.add(0, registry.snapshot());
  pages.add(100);
  window.add(1 * kSecond, registry.snapshot());
  pages.add(300);
  window.add(2 * kSecond, registry.snapshot());

  // 10 s window: base is the oldest entry, delta covers both increments.
  const auto rate10 = window.rate("pages", 10 * kSecond);
  ASSERT_TRUE(rate10.has_value());
  EXPECT_EQ(rate10->delta, 400);
  EXPECT_EQ(rate10->span_ns, 2 * kSecond);
  EXPECT_DOUBLE_EQ(rate10->per_sec, 200.0);

  // 1 s window: base is the middle entry, delta is the last increment.
  const auto rate1 = window.rate("pages", 1 * kSecond);
  ASSERT_TRUE(rate1.has_value());
  EXPECT_EQ(rate1->delta, 300);
  EXPECT_EQ(rate1->span_ns, 1 * kSecond);
  EXPECT_DOUBLE_EQ(rate1->per_sec, 300.0);
}

TEST(RollingWindowTest, RateNeedsTwoEntriesAndKnownCounter) {
  MetricsRegistry registry;
  registry.counter("pages").add(5);
  RollingWindow window(kSecond, 8);
  EXPECT_FALSE(window.rate("pages", kSecond).has_value());
  window.add(0, registry.snapshot());
  EXPECT_FALSE(window.rate("pages", kSecond).has_value());
  window.add(kSecond, registry.snapshot());
  EXPECT_TRUE(window.rate("pages", kSecond).has_value());
  // Unknown counters read as zero in both entries: delta 0, not an error.
  const auto unknown = window.rate("no.such.counter", kSecond);
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->delta, 0);
}

TEST(RollingWindowTest, MaybeAddEnforcesBucketSpacing) {
  MetricsRegistry registry;
  RollingWindow window(kSecond, 8);
  EXPECT_TRUE(window.maybe_add(0, registry.snapshot()));
  // Under one bucket interval since the newest entry: dropped.
  EXPECT_FALSE(window.maybe_add(kSecond / 2, registry.snapshot()));
  EXPECT_EQ(window.size(), 1u);
  EXPECT_TRUE(window.maybe_add(kSecond, registry.snapshot()));
  EXPECT_EQ(window.size(), 2u);
  EXPECT_EQ(window.newest_ns(), kSecond);
}

TEST(RollingWindowTest, CapacityEvictsOldestEntries) {
  MetricsRegistry registry;
  pcn::obs::Counter ticks = registry.counter("ticks");
  RollingWindow window(kSecond, 4);
  for (int i = 0; i < 10; ++i) {
    ticks.add(1);
    window.add(i * kSecond, registry.snapshot());
  }
  EXPECT_EQ(window.size(), 4u);
  EXPECT_EQ(window.newest_ns(), 9 * kSecond);
  // A huge window only reaches back to the oldest retained entry (t=6s,
  // counter=7), so the delta is 10 - 7 = 3 over 3 seconds.
  const auto rate = window.rate("ticks", 100 * kSecond);
  ASSERT_TRUE(rate.has_value());
  EXPECT_EQ(rate->delta, 3);
  EXPECT_EQ(rate->span_ns, 3 * kSecond);
}

TEST(RollingWindowTest, QuantilesComeFromBucketDeltas) {
  MetricsRegistry registry;
  pcn::obs::Histogram delay =
      registry.histogram("delay", {1.0, 2.0, 4.0, 8.0});

  RollingWindow window(kSecond, 8);
  // Entry 0 carries earlier observations the window must subtract out.
  delay.observe(8.0);
  delay.observe(8.0);
  window.add(0, registry.snapshot());

  // Inside the window: 90 observations in (1,2], 10 in (4,8].
  for (int i = 0; i < 90; ++i) delay.observe(2.0);
  for (int i = 0; i < 10; ++i) delay.observe(8.0);
  window.add(kSecond, registry.snapshot());

  const auto q = window.quantiles("delay", kSecond);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->count, 100);
  EXPECT_DOUBLE_EQ(q->mean, (90 * 2.0 + 10 * 8.0) / 100.0);
  // p50 interpolates inside the (1,2] bucket; p95 and p99 land in (4,8].
  EXPECT_GT(q->p50, 1.0);
  EXPECT_LE(q->p50, 2.0);
  EXPECT_GT(q->p95, 4.0);
  EXPECT_LE(q->p95, 8.0);
  EXPECT_GT(q->p99, q->p95 - 1e-12);
  EXPECT_LE(q->p99, 8.0);
}

TEST(RollingWindowTest, QuantilesEmptyWindowYieldsZeroCount) {
  MetricsRegistry registry;
  pcn::obs::Histogram delay = registry.histogram("delay", {1.0, 2.0});
  delay.observe(1.0);
  RollingWindow window(kSecond, 8);
  window.add(0, registry.snapshot());
  window.add(kSecond, registry.snapshot());  // no new observations
  const auto q = window.quantiles("delay", kSecond);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->count, 0);
  EXPECT_DOUBLE_EQ(q->mean, 0.0);
  EXPECT_FALSE(window.quantiles("no.such.histogram", kSecond).has_value());
}

}  // namespace
