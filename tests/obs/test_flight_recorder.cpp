// Flight recorder: shard append/drop accounting, deterministic sampling,
// the (slot, terminal, seq) merge order, and the two simulator-level
// guarantees the subsystem is built on — TerminalMetrics stay bit-identical
// with recording on or off at any thread count, and the exported trace is
// byte-identical at 1 and 4 worker threads (see docs/observability.md).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pcn/obs/flight_recorder.hpp"
#include "pcn/obs/trace_export.hpp"
#include "pcn/sim/network.hpp"

namespace pcn::obs {
namespace {

FlightEvent make_event(std::int64_t slot, std::int32_t terminal,
                       std::uint32_t seq, FlightEventType type) {
  FlightEvent event;
  event.slot = slot;
  event.terminal = terminal;
  event.seq = seq;
  event.type = type;
  return event;
}

TEST(FlightRecorderTest, TypeNamesRoundTrip) {
  for (int raw = 0; raw <= static_cast<int>(FlightEventType::kAreaReset);
       ++raw) {
    const auto type = static_cast<FlightEventType>(raw);
    FlightEventType parsed;
    ASSERT_TRUE(parse_flight_event_type(to_string(type), &parsed))
        << to_string(type);
    EXPECT_EQ(parsed, type);
  }
  FlightEventType parsed;
  EXPECT_FALSE(parse_flight_event_type("bogus", &parsed));
  EXPECT_FALSE(parse_flight_event_type("", &parsed));
}

TEST(FlightRecorderTest, ShardDropsWhenFullAndCounts) {
  FlightRecorderConfig config;
  config.shard_capacity = 4;
  FlightRecorder recorder(config);
  recorder.ensure_shards(1);
  for (std::int64_t i = 0; i < 10; ++i) {
    recorder.shard(0).append(
        make_event(i, 0, 0, FlightEventType::kCallArrival));
  }
  EXPECT_EQ(recorder.recorded(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  // The first `capacity` events are the ones retained (append-only log).
  EXPECT_EQ(recorder.shard(0).events().front().slot, 0);
  EXPECT_EQ(recorder.shard(0).events().back().slot, 3);

  recorder.clear();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  recorder.shard(0).append(make_event(7, 0, 0, FlightEventType::kCallFound));
  EXPECT_EQ(recorder.recorded(), 1u);
}

TEST(FlightRecorderTest, SamplingIsEveryNthOrdinal) {
  FlightRecorderConfig config;
  config.sample_every = 4;
  const FlightRecorder recorder(config);
  int sampled = 0;
  for (std::uint64_t ordinal = 0; ordinal < 40; ++ordinal) {
    if (recorder.sampled(ordinal)) ++sampled;
  }
  EXPECT_EQ(sampled, 10);
  EXPECT_TRUE(recorder.sampled(0));
  EXPECT_FALSE(recorder.sampled(1));
  EXPECT_TRUE(recorder.sampled(4));

  // sample_every = 1 records everything.
  EXPECT_TRUE(FlightRecorder().sampled(3) == false);  // default is 1-in-8
  FlightRecorderConfig all;
  all.sample_every = 1;
  EXPECT_TRUE(FlightRecorder(all).sampled(3));
}

TEST(FlightRecorderTest, MergedSortsBySlotTerminalSeq) {
  FlightRecorder recorder;
  recorder.ensure_shards(2);
  // Interleave out-of-order events across two shards.
  recorder.shard(0).append(make_event(5, 1, 0, FlightEventType::kCallArrival));
  recorder.shard(0).append(make_event(5, 1, 1, FlightEventType::kPollCycle));
  recorder.shard(1).append(make_event(2, 3, 0, FlightEventType::kCallFound));
  recorder.shard(1).append(
      make_event(5, 0, 0, FlightEventType::kLocationUpdate));
  recorder.shard(0).append(make_event(2, 0, 0, FlightEventType::kAreaReset));

  const std::vector<FlightEvent> merged = recorder.merged();
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].slot, 2);
  EXPECT_EQ(merged[0].terminal, 0);
  EXPECT_EQ(merged[1].slot, 2);
  EXPECT_EQ(merged[1].terminal, 3);
  EXPECT_EQ(merged[2].slot, 5);
  EXPECT_EQ(merged[2].terminal, 0);
  EXPECT_EQ(merged[3].terminal, 1);
  EXPECT_EQ(merged[3].seq, 0u);
  EXPECT_EQ(merged[4].seq, 1u);
}

// ---- Simulator-level guarantees ---------------------------------------------

constexpr MobilityProfile kProfile{0.2, 0.05};
constexpr CostWeights kWeights{50.0, 2.0};
constexpr int kTerminals = 16;
constexpr std::int64_t kSlots = 6000;

sim::NetworkConfig make_config(bool record, int threads,
                               std::uint64_t sample_every) {
  sim::NetworkConfig config{Dimension::kTwoD,
                            sim::SlotSemantics::kChainFaithful, 77};
  config.threads = threads;
  config.record_flight = record;
  config.flight_sample_every = sample_every;
  config.update_loss_prob = 0.01;  // exercise the lost/fallback paths too
  return config;
}

std::vector<sim::TerminalId> add_mixed_fleet(sim::Network& network) {
  using namespace pcn::sim;
  std::vector<TerminalId> ids;
  for (int i = 0; i < kTerminals; ++i) {
    switch (i % 4) {
      case 0:
        ids.push_back(network.add_terminal(make_distance_terminal(
            Dimension::kTwoD, kProfile, 1 + i % 4, pcn::DelayBound(2))));
        break;
      case 1:
        ids.push_back(network.add_terminal(make_movement_terminal(
            Dimension::kTwoD, kProfile, 2 + i % 4, pcn::DelayBound(3))));
        break;
      case 2:
        ids.push_back(network.add_terminal(
            make_time_terminal(Dimension::kTwoD, kProfile, 10 + i % 7)));
        break;
      default:
        ids.push_back(network.add_terminal(
            make_la_terminal(Dimension::kTwoD, kProfile, 1 + i % 3)));
        break;
    }
  }
  return ids;
}

void expect_metrics_identical(const sim::TerminalMetrics& a,
                              const sim::TerminalMetrics& b,
                              sim::TerminalId id) {
  SCOPED_TRACE(::testing::Message() << "terminal " << id);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.polled_cells, b.polled_cells);
  EXPECT_EQ(a.lost_updates, b.lost_updates);
  EXPECT_EQ(a.paging_failures, b.paging_failures);
  // Exact even for the floating-point costs: recording may not perturb
  // the per-event addends or their per-terminal order.
  EXPECT_EQ(a.update_cost, b.update_cost);
  EXPECT_EQ(a.paging_cost, b.paging_cost);
  ASSERT_EQ(a.paging_cycles.bucket_count(), b.paging_cycles.bucket_count());
  for (int v = 0; v < a.paging_cycles.bucket_count(); ++v) {
    EXPECT_EQ(a.paging_cycles.count(v), b.paging_cycles.count(v));
  }
}

TEST(FlightRecorderNetworkTest, MetricsBitIdenticalWithRecordingOnOrOff) {
  sim::Network reference(make_config(false, 1, 1), kWeights);
  const std::vector<sim::TerminalId> ids = add_mixed_fleet(reference);
  reference.run(kSlots);
  EXPECT_EQ(reference.flight_recorder(), nullptr);

  for (const bool record : {false, true}) {
    for (const int threads : {1, 4}) {
      SCOPED_TRACE(::testing::Message()
                   << "record_flight=" << record << " threads=" << threads);
      sim::Network network(make_config(record, threads, 1), kWeights);
      add_mixed_fleet(network);
      network.run(kSlots);
      for (const sim::TerminalId id : ids) {
        expect_metrics_identical(reference.metrics(id), network.metrics(id),
                                 id);
      }
    }
  }
}

TEST(FlightRecorderNetworkTest, ExportByteIdenticalAcrossThreadCounts) {
  std::vector<std::string> exports;
  for (const int threads : {1, 4}) {
    sim::Network network(make_config(true, threads, 2), kWeights);
    add_mixed_fleet(network);
    network.run(kSlots);
    const FlightRecorder* recorder = network.flight_recorder();
    ASSERT_NE(recorder, nullptr);
    ASSERT_EQ(recorder->dropped(), 0u);
    EXPECT_GT(recorder->recorded(), 0u);
    // Identical meta on purpose: the recording itself must already be
    // thread-count independent, so the documents compare byte-for-byte.
    TraceMeta meta;
    meta.dimension = 2;
    meta.seed = 77;
    meta.slots = kSlots;
    meta.policy = "mixed";
    meta.sample_every = 2;
    exports.push_back(to_trace_jsonl(meta, recorder->merged()));
  }
  EXPECT_EQ(exports[0], exports[1]);
}

TEST(FlightRecorderNetworkTest, SamplingThinsTheRecording) {
  std::uint64_t recorded_all = 0;
  std::uint64_t recorded_sampled = 0;
  for (const std::uint64_t every : {std::uint64_t{1}, std::uint64_t{8}}) {
    sim::Network network(make_config(true, 1, every), kWeights);
    add_mixed_fleet(network);
    network.run(kSlots);
    (every == 1 ? recorded_all : recorded_sampled) =
        network.flight_recorder()->recorded();
  }
  EXPECT_GT(recorded_all, 0u);
  EXPECT_GT(recorded_sampled, 0u);
  // 1-in-8 sampling keeps roughly an eighth of the full recording.
  EXPECT_LT(recorded_sampled, recorded_all / 4);
}

}  // namespace
}  // namespace pcn::obs
