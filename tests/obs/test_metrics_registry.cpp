// MetricsRegistry: get-or-create semantics, name/bounds validation,
// histogram le-bucket boundaries, and the concurrency contract (8-thread
// increments sum exactly; snapshots taken mid-write are well-formed).
// tools/run_checks.sh runs this binary under TSan to certify the lock-free
// hot path data-race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "pcn/common/error.hpp"
#include "pcn/obs/metrics.hpp"

namespace {

using pcn::InvalidArgument;
using pcn::obs::Counter;
using pcn::obs::Gauge;
using pcn::obs::Histogram;
using pcn::obs::MetricsRegistry;
using pcn::obs::MetricsSnapshot;

TEST(MetricsRegistry, CounterStartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter counter = registry.counter("test.counter.basic");
  EXPECT_TRUE(counter.valid());
  EXPECT_EQ(counter.value(), 0);
  counter.add(5);
  counter.increment();
  counter.add(-2);
  EXPECT_EQ(counter.value(), 4);
}

TEST(MetricsRegistry, DefaultHandlesAreNoOps) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  EXPECT_FALSE(counter.valid());
  EXPECT_FALSE(gauge.valid());
  EXPECT_FALSE(histogram.valid());
  counter.add(7);
  gauge.set(1.5);
  histogram.observe(3.0);
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_EQ(histogram.sum(), 0.0);
}

TEST(MetricsRegistry, GetOrCreateReturnsSameMetric) {
  MetricsRegistry registry;
  Counter a = registry.counter("test.counter.shared");
  Counter b = registry.counter("test.counter.shared");
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7);
  EXPECT_EQ(b.value(), 7);
  EXPECT_EQ(registry.size(), 1u);

  Gauge g1 = registry.gauge("test.gauge.shared");
  Gauge g2 = registry.gauge("test.gauge.shared");
  g1.set(2.5);
  EXPECT_EQ(g2.value(), 2.5);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistry, DistinctShardsSumTogether) {
  MetricsRegistry registry;
  Counter counter = registry.counter("test.counter.sharded");
  for (std::size_t shard = 0; shard < 2 * pcn::obs::kShards; ++shard) {
    counter.add(1, shard);  // shard indices fold with & kShardMask
  }
  EXPECT_EQ(counter.value(), static_cast<std::int64_t>(2 * pcn::obs::kShards));
}

TEST(MetricsRegistry, NameValidation) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter(""), InvalidArgument);
  EXPECT_THROW(registry.counter("Bad.Name"), InvalidArgument);
  EXPECT_THROW(registry.counter("has space"), InvalidArgument);
  EXPECT_THROW(registry.counter(".leading.dot"), InvalidArgument);
  EXPECT_THROW(registry.counter("trailing.dot."), InvalidArgument);
  EXPECT_THROW(registry.gauge("hy-phen"), InvalidArgument);
  EXPECT_THROW(registry.histogram("Bad", {1.0}), InvalidArgument);
  // The documented scheme itself is accepted.
  EXPECT_TRUE(registry.counter("sim.page.polled_cells").valid());
  EXPECT_TRUE(registry.counter("costmodel.solve.ns").valid());
}

TEST(MetricsRegistry, HistogramBoundsValidation) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("test.histogram.empty", {}),
               InvalidArgument);
  EXPECT_THROW(registry.histogram("test.histogram.flat", {1.0, 1.0}),
               InvalidArgument);
  EXPECT_THROW(registry.histogram("test.histogram.unsorted", {2.0, 1.0}),
               InvalidArgument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(registry.histogram("test.histogram.inf", {1.0, inf}),
               InvalidArgument);

  registry.histogram("test.histogram.ok", {1.0, 2.0});
  // Re-registration with the same bounds is the get-or-create path...
  Histogram again = registry.histogram("test.histogram.ok", {1.0, 2.0});
  EXPECT_TRUE(again.valid());
  // ...but differing bounds are a caller bug.
  EXPECT_THROW(registry.histogram("test.histogram.ok", {1.0, 3.0}),
               InvalidArgument);
}

TEST(MetricsRegistry, HistogramLeBucketBoundaries) {
  MetricsRegistry registry;
  Histogram histogram =
      registry.histogram("test.histogram.le", {1.0, 2.0, 4.0});
  // Prometheus le semantics: x lands in the first bucket with x <= bound.
  histogram.observe(0.5);  // <= 1.0
  histogram.observe(1.0);  // exactly on a bound stays in that bucket
  histogram.observe(1.5);  // <= 2.0
  histogram.observe(4.0);  // last finite bucket
  histogram.observe(4.5);  // overflow
  histogram.observe(100.0);

  const MetricsSnapshot snapshot = registry.snapshot();
  const auto* sample = snapshot.find_histogram("test.histogram.le");
  ASSERT_NE(sample, nullptr);
  ASSERT_EQ(sample->counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(sample->counts[0], 2);       // 0.5, 1.0
  EXPECT_EQ(sample->counts[1], 1);       // 1.5
  EXPECT_EQ(sample->counts[2], 1);       // 4.0
  EXPECT_EQ(sample->counts[3], 2);       // 4.5, 100.0
  EXPECT_EQ(sample->count, 6);
  EXPECT_DOUBLE_EQ(sample->sum, 0.5 + 1.0 + 1.5 + 4.0 + 4.5 + 100.0);
  EXPECT_DOUBLE_EQ(sample->mean(), sample->sum / 6.0);
  EXPECT_EQ(histogram.count(), 6);
}

TEST(MetricsRegistry, BucketHelpers) {
  const std::vector<double> exp = pcn::obs::exponential_buckets(1.0, 2.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[0], 1.0);
  EXPECT_DOUBLE_EQ(exp[1], 2.0);
  EXPECT_DOUBLE_EQ(exp[2], 4.0);
  EXPECT_DOUBLE_EQ(exp[3], 8.0);

  const std::vector<double> lin = pcn::obs::linear_buckets(0.5, 0.25, 3);
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_DOUBLE_EQ(lin[0], 0.5);
  EXPECT_DOUBLE_EQ(lin[1], 0.75);
  EXPECT_DOUBLE_EQ(lin[2], 1.0);

  EXPECT_THROW(pcn::obs::exponential_buckets(0.0, 2.0, 4), InvalidArgument);
  EXPECT_THROW(pcn::obs::exponential_buckets(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(pcn::obs::exponential_buckets(1.0, 2.0, 0), InvalidArgument);
  EXPECT_THROW(pcn::obs::linear_buckets(1.0, 0.0, 4), InvalidArgument);
}

TEST(MetricsRegistry, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.counter("zeta.last.count");
  registry.counter("alpha.first.count");
  registry.counter("mid.dle.count");
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha.first.count");
  EXPECT_EQ(snapshot.counters[1].name, "mid.dle.count");
  EXPECT_EQ(snapshot.counters[2].name, "zeta.last.count");
  EXPECT_EQ(snapshot.counter_value("missing.counter"), 0);
  EXPECT_EQ(snapshot.find_counter("missing.counter"), nullptr);
}

// --- Concurrency contract (run under TSan by tools/run_checks.sh) ------------

TEST(MetricsRegistryConcurrency, EightThreadIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter counter = registry.counter("test.concurrent.count");
  Histogram histogram =
      registry.histogram("test.concurrent.hist", {1.0, 2.0, 4.0, 8.0});
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 20000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        counter.add(1, static_cast<std::size_t>(t));
        histogram.observe(static_cast<double>(i % 10),
                          static_cast<std::size_t>(t));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  // Sum of i % 10 over kPerThread consecutive i, per thread.
  const double per_thread_sum = 45.0 * (kPerThread / 10.0);
  EXPECT_DOUBLE_EQ(histogram.sum(), kThreads * per_thread_sum);
}

TEST(MetricsRegistryConcurrency, ConcurrentGetOrCreateIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        registry.counter("test.race.c" + std::to_string(i)).increment();
        registry.gauge("test.race.g" + std::to_string(i)).set(1.0);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(registry.size(), 100u);
  EXPECT_EQ(registry.snapshot().counter_value("test.race.c0"), kThreads);
}

TEST(MetricsRegistryConcurrency, SnapshotWhileWriting) {
  MetricsRegistry registry;
  Counter counter = registry.counter("test.live.count");
  Histogram histogram = registry.histogram("test.live.hist", {1.0, 2.0});
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      std::int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter.add(1, static_cast<std::size_t>(t));
        histogram.observe(static_cast<double>(i++ % 3),
                          static_cast<std::size_t>(t));
      }
    });
  }

  // Snapshots under live writers: totals must be monotone (no torn or
  // double-counted cells) and internally consistent.
  std::int64_t last_count = 0;
  for (int round = 0; round < 200; ++round) {
    const MetricsSnapshot snapshot = registry.snapshot();
    const std::int64_t count = snapshot.counter_value("test.live.count");
    EXPECT_GE(count, last_count);
    last_count = count;
    const auto* sample = snapshot.find_histogram("test.live.hist");
    ASSERT_NE(sample, nullptr);
    std::int64_t bucket_total = 0;
    for (const std::int64_t bucket : sample->counts) {
      EXPECT_GE(bucket, 0);
      bucket_total += bucket;
    }
    EXPECT_EQ(bucket_total, sample->count);
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
  EXPECT_GE(counter.value(), last_count);
}

}  // namespace
