// Trace analysis: the delay distribution / per-cycle / SLA aggregation
// over synthetic recordings with known answers, and the observed-vs-
// predicted model comparison (α_j chi-square, per-call poll cost) on a
// real seeded distance-policy run — the statistical acceptance check
// `pcnctl trace-summary` prints.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "pcn/obs/trace_analysis.hpp"
#include "pcn/sim/network.hpp"

namespace pcn::obs {
namespace {

/// Appends one complete recorded lifecycle taking `cycles` polling cycles
/// (10 cells, 1 cost unit per cell per cycle), optionally via fallback.
void add_call(std::vector<FlightEvent>* events, std::int64_t slot,
              std::int32_t terminal, std::uint64_t call, int cycles,
              bool clean = true) {
  std::uint32_t seq = 0;
  FlightEvent arrival;
  arrival.slot = slot;
  arrival.terminal = terminal;
  arrival.seq = seq++;
  arrival.type = FlightEventType::kCallArrival;
  arrival.call = call;
  events->push_back(arrival);
  for (int k = 0; k < cycles; ++k) {
    FlightEvent cycle;
    cycle.slot = slot;
    cycle.terminal = terminal;
    cycle.seq = seq++;
    cycle.type = FlightEventType::kPollCycle;
    cycle.call = call;
    cycle.cycle = k;
    cycle.cells = 10;
    cycle.cost = 10.0;
    cycle.found = k == cycles - 1;
    events->push_back(cycle);
  }
  FlightEvent found;
  found.slot = slot;
  found.terminal = terminal;
  found.seq = seq++;
  found.type = FlightEventType::kCallFound;
  found.call = call;
  found.cycle = cycles;
  found.cells = 10 * cycles;
  found.cost = 10.0 * cycles;
  found.found = clean;
  events->push_back(found);
}

TEST(TraceAnalysisTest, AggregatesSyntheticRecording) {
  TraceMeta meta;
  meta.delay_cycles = 2;
  std::vector<FlightEvent> events;
  // 10 calls: six in 1 cycle, three in 2, one (fallback) in 4 — the
  // 4-cycle call violates the m = 2 bound.
  for (int i = 0; i < 6; ++i) add_call(&events, 10 + i, 0, i, 1);
  for (int i = 0; i < 3; ++i) add_call(&events, 30 + i, 1, i, 2);
  add_call(&events, 90, 2, 0, 4, /*clean=*/false);

  FlightEvent update;
  update.slot = 5;
  update.type = FlightEventType::kLocationUpdate;
  update.cost = 100.0;
  events.push_back(update);
  FlightEvent lost = update;
  lost.slot = 6;
  lost.type = FlightEventType::kUpdateLost;
  events.push_back(lost);
  FlightEvent reset;
  reset.slot = 5;
  reset.seq = 1;
  reset.type = FlightEventType::kAreaReset;
  reset.cells = 3;
  events.push_back(reset);

  const TraceAnalysis analysis = analyze_trace(meta, events);
  EXPECT_EQ(analysis.calls, 10);
  EXPECT_EQ(analysis.clean_calls, 9);
  EXPECT_EQ(analysis.fallback_calls, 1);
  ASSERT_EQ(analysis.cycles_hist.size(), 5u);  // [0] unused, up to 4 cycles
  EXPECT_EQ(analysis.cycles_hist[1], 6);
  EXPECT_EQ(analysis.cycles_hist[2], 3);
  EXPECT_EQ(analysis.cycles_hist[3], 0);
  EXPECT_EQ(analysis.cycles_hist[4], 1);
  ASSERT_EQ(analysis.clean_cycles_hist.size(), 3u);
  EXPECT_EQ(analysis.clean_cycles_hist[1], 6);
  EXPECT_EQ(analysis.clean_cycles_hist[2], 3);
  EXPECT_DOUBLE_EQ(analysis.mean_cycles, 1.6);  // (6*1 + 3*2 + 4) / 10
  EXPECT_EQ(analysis.p50, 1);
  EXPECT_EQ(analysis.p95, 4);
  EXPECT_EQ(analysis.p99, 4);
  EXPECT_EQ(analysis.max_cycles, 4);

  // Per-cycle breakdown: all 10 calls ran cycle 0; four reached cycle 1.
  ASSERT_EQ(analysis.per_cycle.size(), 4u);
  EXPECT_EQ(analysis.per_cycle[0].reached, 10);
  EXPECT_EQ(analysis.per_cycle[0].found, 6);
  EXPECT_EQ(analysis.per_cycle[0].cells, 100);
  EXPECT_EQ(analysis.per_cycle[1].reached, 4);
  EXPECT_EQ(analysis.per_cycle[1].found, 3);
  EXPECT_EQ(analysis.per_cycle[3].reached, 1);
  EXPECT_EQ(analysis.per_cycle[3].found, 1);
  EXPECT_EQ(analysis.total_cells, 160);
  EXPECT_DOUBLE_EQ(analysis.total_cost, 160.0);
  EXPECT_DOUBLE_EQ(analysis.mean_cost, 16.0);

  EXPECT_EQ(analysis.updates, 1);
  EXPECT_EQ(analysis.updates_lost, 1);
  EXPECT_EQ(analysis.resets, 1);

  EXPECT_EQ(analysis.sla_bound, 2);
  ASSERT_EQ(analysis.violations.size(), 1u);
  EXPECT_EQ(analysis.violations[0].slot, 90);
  EXPECT_EQ(analysis.violations[0].terminal, 2);
  EXPECT_EQ(analysis.violations[0].cycles, 4);
}

/// One daemon page-lifecycle event.
FlightEvent page_event(FlightEventType type, std::int64_t slot,
                       std::int32_t terminal, std::uint64_t page_id,
                       std::int32_t delay_slots = 0) {
  FlightEvent event;
  event.slot = slot;
  event.terminal = terminal;
  event.type = type;
  event.call = page_id;
  event.cycle = delay_slots;
  return event;
}

TEST(TraceAnalysisTest, DaemonPageEventsCountAndDroppedAlwaysViolates) {
  TraceMeta meta;
  meta.delay_cycles = 3;
  std::vector<FlightEvent> events;
  events.push_back(page_event(FlightEventType::kPageQueued, 0, 1, 10));
  events.push_back(page_event(FlightEventType::kPageServed, 2, 1, 10, 2));
  events.push_back(page_event(FlightEventType::kPageQueued, 0, 2, 11));
  events.push_back(
      page_event(FlightEventType::kPageServed, 5, 2, 11, 5));  // late
  events.push_back(page_event(FlightEventType::kPageDropped, 1, 3, 12));
  events.push_back(page_event(FlightEventType::kPageQueued, 1, 4, 13));
  events.push_back(page_event(FlightEventType::kPageExpired, 9, 4, 13, 8));

  const TraceAnalysis analysis = analyze_trace(meta, events);
  EXPECT_EQ(analysis.pages_queued, 3);
  EXPECT_EQ(analysis.pages_served, 2);
  EXPECT_EQ(analysis.pages_dropped, 1);
  EXPECT_EQ(analysis.pages_expired, 1);
  // Violations: the 5-slot serve (> m=3), the drop, the expiry.
  ASSERT_EQ(analysis.violations.size(), 3u);
  EXPECT_EQ(analysis.violations[0].cycles, 5);
  EXPECT_EQ(analysis.violations[1].cycles, SlaViolation::kDroppedPage);
  EXPECT_EQ(analysis.violations[1].call, 12u);
  EXPECT_EQ(analysis.violations[2].cycles, SlaViolation::kExpiredPage);
}

TEST(TraceAnalysisTest, DroppedPagesViolateEvenWithoutABound) {
  TraceMeta meta;  // delay_cycles = 0 => no served-delay bound
  std::vector<FlightEvent> events;
  events.push_back(page_event(FlightEventType::kPageQueued, 0, 1, 10));
  events.push_back(page_event(FlightEventType::kPageServed, 7, 1, 10, 7));
  events.push_back(page_event(FlightEventType::kPageDropped, 1, 2, 11));

  const TraceAnalysis analysis = analyze_trace(meta, events);
  // The slow serve is fine without a bound; the drop never is.
  ASSERT_EQ(analysis.violations.size(), 1u);
  EXPECT_EQ(analysis.violations[0].cycles, SlaViolation::kDroppedPage);
  EXPECT_EQ(analysis.violations[0].terminal, 2);
}

TEST(TraceAnalysisTest, UnboundedDelayMeansNoViolations) {
  TraceMeta meta;  // delay_cycles = 0 => unbounded
  std::vector<FlightEvent> events;
  add_call(&events, 10, 0, 0, 9);
  const TraceAnalysis analysis = analyze_trace(meta, events);
  EXPECT_EQ(analysis.sla_bound, 0);
  EXPECT_TRUE(analysis.violations.empty());
}

TEST(AlphaComparisonTest, NotApplicableOutsideDistancePolicy) {
  TraceMeta meta;
  meta.policy = "movement";
  meta.move_prob = 0.1;
  meta.call_prob = 0.05;
  std::vector<FlightEvent> events;
  add_call(&events, 1, 0, 0, 1);
  const AlphaComparison comparison =
      compare_with_model(meta, analyze_trace(meta, events));
  EXPECT_FALSE(comparison.applicable);
  EXPECT_NE(comparison.reason.find("distance"), std::string::npos);
}

TEST(AlphaComparisonTest, ConsistentOnSeededDistanceRun) {
  // A real 1-D run: distance threshold d = 3, delay bound m = 2.  The
  // recording's clean-call cycle frequencies must be statistically
  // consistent with the chain's α_j at the 99.9% level, and the observed
  // per-call poll cost must land near V · Σ α_j w_j.
  const MobilityProfile profile{0.1, 0.05};
  const CostWeights weights{100.0, 10.0};
  sim::NetworkConfig config{Dimension::kOneD,
                            sim::SlotSemantics::kChainFaithful, 11};
  config.record_flight = true;
  config.flight_sample_every = 1;
  sim::Network network(config, weights);
  network.add_terminal(sim::make_distance_terminal(
      Dimension::kOneD, profile, 3, DelayBound(2)));
  network.run(60000);

  TraceMeta meta;
  meta.dimension = 1;
  meta.seed = 11;
  meta.slots = 60000;
  meta.move_prob = profile.move_prob;
  meta.call_prob = profile.call_prob;
  meta.update_cost = weights.update_cost;
  meta.poll_cost = weights.poll_cost;
  meta.policy = "distance";
  meta.param = 3;
  meta.scheme = "sdf";
  meta.delay_cycles = 2;

  const TraceAnalysis analysis =
      analyze_trace(meta, network.flight_recorder()->merged());
  EXPECT_GT(analysis.clean_calls, 1000);
  EXPECT_TRUE(analysis.violations.empty());

  const AlphaComparison comparison = compare_with_model(meta, analysis);
  ASSERT_TRUE(comparison.applicable) << comparison.reason;
  ASSERT_EQ(comparison.predicted_alpha.size(), 2u);  // m = 2 subareas
  EXPECT_EQ(comparison.sample_size, analysis.clean_calls);
  double alpha_sum = 0.0;
  for (const double alpha : comparison.predicted_alpha) alpha_sum += alpha;
  EXPECT_NEAR(alpha_sum, 1.0, 1e-9);
  EXPECT_TRUE(comparison.consistent)
      << "chi-square " << comparison.chi_square << " on " << comparison.dof
      << " dof (critical " << comparison.critical_999 << ")";
  EXPECT_GT(comparison.predicted_cost_per_call, 0.0);
  // 10% agreement is loose against the ~1.5% statistical wobble at this
  // sample size but tight against any real modelling mismatch.
  EXPECT_NEAR(comparison.observed_cost_per_call,
              comparison.predicted_cost_per_call,
              0.1 * comparison.predicted_cost_per_call);
}

TEST(AlphaComparisonTest, NotApplicableWithoutCleanCalls) {
  TraceMeta meta;
  meta.policy = "distance";
  meta.param = 3;
  meta.move_prob = 0.1;
  meta.call_prob = 0.05;
  meta.delay_cycles = 2;
  const AlphaComparison comparison =
      compare_with_model(meta, analyze_trace(meta, {}));
  EXPECT_FALSE(comparison.applicable);
}

}  // namespace
}  // namespace pcn::obs
