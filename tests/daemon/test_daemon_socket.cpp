// The Unix-socket front end: length-prefixed proto frames in, the same
// DaemonRequest ring as in-process producers, PageOutcome frames routed
// back to the submitting connection; malformed frames are counted and
// the connection survives them.
#include "pcn/daemon/socket_server.hpp"

#include <gtest/gtest.h>
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "pcn/proto/messages.hpp"

namespace pcn::daemon {
namespace {

std::string socket_path(const char* name) {
  return testing::TempDir() + name;
}

int connect_client(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  EXPECT_LT(path.size(), sizeof(address.sun_path));
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                      sizeof(address)),
            0)
      << "connect(" << path << "): " << std::strerror(errno);
  return fd;
}

void send_frame(int fd, const std::vector<std::uint8_t>& frame) {
  const auto length = static_cast<std::uint32_t>(frame.size());
  std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(length & 0xff),
      static_cast<std::uint8_t>((length >> 8) & 0xff),
      static_cast<std::uint8_t>((length >> 16) & 0xff),
      static_cast<std::uint8_t>((length >> 24) & 0xff),
  };
  ASSERT_EQ(::write(fd, prefix, 4), 4);
  ASSERT_EQ(::write(fd, frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
}

bool read_exactly(int fd, std::uint8_t* buffer, std::size_t length) {
  std::size_t done = 0;
  while (done < length) {
    const ssize_t n = ::read(fd, buffer + done, length - done);
    if (n <= 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

std::vector<std::uint8_t> recv_frame(int fd) {
  std::uint8_t prefix[4];
  if (!read_exactly(fd, prefix, 4)) return {};
  const std::uint32_t length =
      static_cast<std::uint32_t>(prefix[0]) |
      (static_cast<std::uint32_t>(prefix[1]) << 8) |
      (static_cast<std::uint32_t>(prefix[2]) << 16) |
      (static_cast<std::uint32_t>(prefix[3]) << 24);
  std::vector<std::uint8_t> frame(length);
  if (!read_exactly(fd, frame.data(), frame.size())) return {};
  return frame;
}

/// The reader threads are asynchronous; wait until `counter` reaches
/// `expected` before advancing the slot loop.
void await_counter(const Pcnd& daemon, const char* counter,
                   std::int64_t expected) {
  for (int i = 0; i < 5000; ++i) {
    if (daemon.metrics_registry().snapshot().counter_value(counter) >=
        expected) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << counter << " never reached " << expected;
}

TEST(SocketServer, RequiresOutcomeCollection) {
  PcndConfig config;  // collect_outcomes = false
  Pcnd daemon(config);
  EXPECT_THROW(SocketServer(&daemon, socket_path("pcnd_no_outcomes.sock")),
               InvalidArgument);
}

TEST(SocketServer, RoutesRequestsInAndOutcomesBack) {
  PcndConfig config;
  config.collect_outcomes = true;
  Pcnd daemon(config);
  SocketServer server(&daemon, socket_path("pcnd_roundtrip.sock"));
  server.start();

  const int fd = connect_client(server.path());
  proto::LocationUpdate update;
  update.terminal_id = 7;
  update.sequence = 1;
  update.cell = {2, -1};
  update.containment_radius = 3;
  send_frame(fd, proto::encode(update));
  proto::PageSubmit submit;
  submit.page_id = 100;
  submit.terminal_id = 7;
  send_frame(fd, proto::encode(submit));

  await_counter(daemon, "daemon.socket.frames_in", 2);
  daemon.run_slots(1);
  EXPECT_EQ(server.flush_outcomes(), 1u);

  const std::vector<std::uint8_t> frame = recv_frame(fd);
  ASSERT_FALSE(frame.empty());
  const proto::PageOutcome outcome = proto::decode_page_outcome(frame);
  EXPECT_EQ(outcome.page_id, 100u);
  EXPECT_EQ(outcome.terminal_id, 7u);
  EXPECT_EQ(outcome.outcome, proto::PageOutcomeKind::kServed);
  EXPECT_EQ(outcome.queue_delay_slots, 0u);

  const Pcnd::TerminalInfo info = daemon.terminal_info(7);
  EXPECT_TRUE(info.known);
  EXPECT_EQ(info.center, (geometry::Cell{2, -1}));

  ::close(fd);
  server.stop();
  EXPECT_EQ(server.connections_accepted(), 1u);
}

TEST(SocketServer, BadFramesAreCountedAndTheConnectionSurvives) {
  PcndConfig config;
  config.collect_outcomes = true;
  Pcnd daemon(config);
  SocketServer server(&daemon, socket_path("pcnd_badframe.sock"));
  server.start();

  const int fd = connect_client(server.path());
  // Well-framed garbage: a length prefix followed by junk bytes.
  send_frame(fd, {0xde, 0xad, 0xbe, 0xef, 0x00});
  await_counter(daemon, "daemon.socket.decode_errors", 1);

  // A PageResponse is a valid proto frame of an un-servable type.
  proto::PageResponse response;
  response.page_id = 1;
  response.terminal_id = 2;
  response.cell = {0, 0};
  send_frame(fd, proto::encode(response));
  await_counter(daemon, "daemon.socket.decode_errors", 2);

  // The connection still works: an unknown-terminal page round-trips to
  // a kDropped outcome.
  proto::PageSubmit submit;
  submit.page_id = 9;
  submit.terminal_id = 555;
  send_frame(fd, proto::encode(submit));
  await_counter(daemon, "daemon.socket.frames_in", 3);
  daemon.run_slots(1);
  EXPECT_EQ(server.flush_outcomes(), 1u);

  const std::vector<std::uint8_t> frame = recv_frame(fd);
  ASSERT_FALSE(frame.empty());
  const proto::PageOutcome outcome = proto::decode_page_outcome(frame);
  EXPECT_EQ(outcome.page_id, 9u);
  EXPECT_EQ(outcome.outcome, proto::PageOutcomeKind::kDropped);

  ::close(fd);
  server.stop();
}

TEST(SocketServer, DisconnectedClientIsReapedAndCannotKillTheDaemon) {
  PcndConfig config;
  config.collect_outcomes = true;
  Pcnd daemon(config);
  SocketServer server(&daemon, socket_path("pcnd_disconnect.sock"));
  server.start();

  // Submit a page, then disconnect before the verdict flushes.  The
  // flush used to raise SIGPIPE on the peer-closed socket (killing the
  // process); now the send fails with EPIPE and the connection is
  // reaped: fd closed, reader joined, registry entry gone.
  const int fd = connect_client(server.path());
  proto::PageSubmit submit;
  submit.page_id = 5;
  submit.terminal_id = 77;
  send_frame(fd, proto::encode(submit));
  await_counter(daemon, "daemon.socket.frames_in", 1);
  ::close(fd);

  daemon.run_slots(1);
  for (int i = 0; i < 5000 && server.open_connections() > 0; ++i) {
    server.flush_outcomes();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.open_connections(), 0u);
  EXPECT_GE(daemon.metrics_registry().snapshot().counter_value(
                "daemon.socket.disconnects"),
            1);

  // The daemon is still alive and serves a fresh client end to end.
  const int fd2 = connect_client(server.path());
  proto::LocationUpdate update;
  update.terminal_id = 1;
  update.sequence = 1;
  update.cell = {0, 0};
  update.containment_radius = 3;
  send_frame(fd2, proto::encode(update));
  submit.page_id = 6;
  submit.terminal_id = 1;
  send_frame(fd2, proto::encode(submit));
  await_counter(daemon, "daemon.socket.frames_in", 3);
  daemon.run_slots(1);
  EXPECT_EQ(server.flush_outcomes(), 1u);
  const proto::PageOutcome outcome =
      proto::decode_page_outcome(recv_frame(fd2));
  EXPECT_EQ(outcome.page_id, 6u);
  EXPECT_EQ(outcome.terminal_id, 1u);

  ::close(fd2);
  server.stop();
  EXPECT_EQ(server.connections_accepted(), 2u);
}

TEST(SocketServer, TwoClientsGetTheirOwnOutcomes) {
  PcndConfig config;
  config.collect_outcomes = true;
  Pcnd daemon(config);
  SocketServer server(&daemon, socket_path("pcnd_two_clients.sock"));
  server.start();

  const int fd_a = connect_client(server.path());
  const int fd_b = connect_client(server.path());

  proto::LocationUpdate update;
  update.terminal_id = 1;
  update.sequence = 1;
  update.cell = {0, 0};
  send_frame(fd_a, proto::encode(update));
  update.terminal_id = 2;
  send_frame(fd_b, proto::encode(update));
  await_counter(daemon, "daemon.socket.frames_in", 2);
  daemon.run_slots(1);

  proto::PageSubmit submit;
  submit.page_id = 11;
  submit.terminal_id = 1;
  send_frame(fd_a, proto::encode(submit));
  submit.page_id = 22;
  submit.terminal_id = 2;
  send_frame(fd_b, proto::encode(submit));
  await_counter(daemon, "daemon.socket.frames_in", 4);
  daemon.run_slots(1);
  EXPECT_EQ(server.flush_outcomes(), 2u);

  const proto::PageOutcome outcome_a =
      proto::decode_page_outcome(recv_frame(fd_a));
  const proto::PageOutcome outcome_b =
      proto::decode_page_outcome(recv_frame(fd_b));
  EXPECT_EQ(outcome_a.page_id, 11u);
  EXPECT_EQ(outcome_a.terminal_id, 1u);
  EXPECT_EQ(outcome_b.page_id, 22u);
  EXPECT_EQ(outcome_b.terminal_id, 2u);

  ::close(fd_a);
  ::close(fd_b);
  server.stop();
}

TEST(SocketServer, RingFullPageIsAnsweredWithRejectedOutcome) {
  PcndConfig config;
  config.collect_outcomes = true;
  config.ring_capacity = 1;  // rounds up to the 2-slot minimum ring
  Pcnd daemon(config);
  SocketServer server(&daemon, socket_path("pcnd_ring_full.sock"));
  server.start();

  // Four submits against a 2-slot ring with no slot running: the first
  // two fill the ring, the last two must come straight back as kRejected
  // instead of being counted and then never answered.
  const int fd = connect_client(server.path());
  proto::PageSubmit submit;
  submit.terminal_id = 42;
  for (std::uint64_t page_id = 1; page_id <= 4; ++page_id) {
    submit.page_id = page_id;
    send_frame(fd, proto::encode(submit));
  }
  await_counter(daemon, "daemon.socket.rejected_ring_full", 2);

  // The rejections are pumped from the reader thread immediately, before
  // any slot runs.
  for (const std::uint64_t page_id : {std::uint64_t{3}, std::uint64_t{4}}) {
    const std::vector<std::uint8_t> frame = recv_frame(fd);
    ASSERT_FALSE(frame.empty());
    const proto::PageOutcome outcome = proto::decode_page_outcome(frame);
    EXPECT_EQ(outcome.page_id, page_id);
    EXPECT_EQ(outcome.terminal_id, 42u);
    EXPECT_EQ(outcome.outcome, proto::PageOutcomeKind::kRejected);
  }

  // The two admitted pages still settle normally (unknown terminal ->
  // kDropped) once a slot runs.
  daemon.run_slots(1);
  EXPECT_EQ(server.flush_outcomes(), 2u);
  for (const std::uint64_t page_id : {std::uint64_t{1}, std::uint64_t{2}}) {
    const proto::PageOutcome outcome =
        proto::decode_page_outcome(recv_frame(fd));
    EXPECT_EQ(outcome.page_id, page_id);
    EXPECT_EQ(outcome.outcome, proto::PageOutcomeKind::kDropped);
  }

  ::close(fd);
  server.stop();
}

TEST(SocketServer, AcceptLoopSurvivesFdExhaustionAndRecovers) {
  PcndConfig config;
  config.collect_outcomes = true;
  Pcnd daemon(config);
  SocketServer server(&daemon, socket_path("pcnd_emfile.sock"));
  server.start();

  // Reserve the client's fd before exhausting the table: connect() needs
  // no new descriptor on an already-created socket, but accept() does.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);

  rlimit old_limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old_limit), 0);
  rlimit tight = old_limit;
  tight.rlim_cur = 128;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);
  std::vector<int> fillers;
  for (;;) {
    const int filler = ::open("/dev/null", O_RDONLY);
    if (filler < 0) break;
    fillers.push_back(filler);
  }

  // The connection parks in the listen backlog; accept() fails with
  // EMFILE.  The old accept loop exited permanently here.
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  const std::string path = server.path();
  ASSERT_LT(path.size(), sizeof(address.sun_path));
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                      sizeof(address)),
            0)
      << "connect: " << std::strerror(errno);
  await_counter(daemon, "daemon.socket.accept_errors", 1);

  // Free the table; the retrying loop must pick the parked client up.
  for (const int filler : fillers) ::close(filler);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &old_limit), 0);
  for (int i = 0; i < 5000 && server.connections_accepted() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.connections_accepted(), 1u);

  // And the recovered connection serves end to end.
  proto::PageSubmit submit;
  submit.page_id = 77;
  submit.terminal_id = 9;
  send_frame(fd, proto::encode(submit));
  await_counter(daemon, "daemon.socket.frames_in", 1);
  daemon.run_slots(1);
  EXPECT_EQ(server.flush_outcomes(), 1u);
  const proto::PageOutcome outcome =
      proto::decode_page_outcome(recv_frame(fd));
  EXPECT_EQ(outcome.page_id, 77u);
  EXPECT_EQ(outcome.outcome, proto::PageOutcomeKind::kDropped);

  ::close(fd);
  server.stop();
}

TEST(SocketServer, StopDeliversSettledVerdictsBeforeClosing) {
  PcndConfig config;
  config.collect_outcomes = true;
  Pcnd daemon(config);
  SocketServer server(&daemon, socket_path("pcnd_stop_drain.sock"));
  server.start();

  const int fd = connect_client(server.path());
  proto::LocationUpdate update;
  update.terminal_id = 3;
  update.sequence = 1;
  update.cell = {1, 1};
  update.containment_radius = 3;
  send_frame(fd, proto::encode(update));
  proto::PageSubmit submit;
  submit.page_id = 31;
  submit.terminal_id = 3;
  send_frame(fd, proto::encode(submit));
  await_counter(daemon, "daemon.socket.frames_in", 2);
  daemon.run_slots(1);

  // The verdict has settled but was never flushed.  stop() used to close
  // the connection with the frame still unstaged; now it performs a
  // final flush plus a bounded outbox drain, so the client reads its
  // verdict even after the server is gone.
  server.stop();

  const std::vector<std::uint8_t> frame = recv_frame(fd);
  ASSERT_FALSE(frame.empty());
  const proto::PageOutcome outcome = proto::decode_page_outcome(frame);
  EXPECT_EQ(outcome.page_id, 31u);
  EXPECT_EQ(outcome.terminal_id, 3u);
  EXPECT_EQ(outcome.outcome, proto::PageOutcomeKind::kServed);
  ::close(fd);
}

}  // namespace
}  // namespace pcn::daemon
