// DelayFeedbackPlanner unit tests: the paper-derived rate factor, the
// fractional budget accumulator, the Q16 EWMAs, and the widen/narrow
// feedback rule — all pure serial arithmetic, so the expectations here
// are exact.
#include "pcn/daemon/delay_planner.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "pcn/capacity/paging_capacity.hpp"
#include "pcn/common/error.hpp"

namespace pcn::daemon {
namespace {

DelayPlanConfig feedback_config() {
  DelayPlanConfig config;
  config.mode = DelayPlanConfig::Mode::kFeedback;
  config.m_min = 1;
  config.m_max = 8;
  config.m_start = 2;
  config.adjust_every_slots = 4;
  config.ewma_shift = 3;
  return config;
}

TEST(DelayPlanner, RateFactorIsOneAtMMaxAndMonotoneInM) {
  DelayPlanConfig config = feedback_config();
  const capacity::PagingCapacityModel capacity(1, 1.0);
  double previous = 0.0;
  for (int m = config.m_min; m <= config.m_max; ++m) {
    config.m_start = m;
    DelayFeedbackPlanner planner(config, capacity, /*sla_delay_slots=*/8);
    EXPECT_EQ(planner.effective_m(), m);
    const double factor = planner.rate_factor();
    // factor(m) = m(M+1)/(M(m+1)): increasing in m, exactly 1 at m_max.
    EXPECT_GT(factor, previous);
    previous = factor;
  }
  EXPECT_DOUBLE_EQ(previous, 1.0);
}

TEST(DelayPlanner, BudgetAccumulatesFractionsLikeTheCapacityModel) {
  DelayPlanConfig config = feedback_config();
  config.mode = DelayPlanConfig::Mode::kStatic;
  config.m_start = config.m_max;  // factor = 1.0: must match base budget
  capacity::PagingCapacityModel capacity(1, 1.6);  // 0.625 pages/slot
  DelayFeedbackPlanner planner(config, capacity, 8);
  capacity::PagingCapacityModel reference(1, 1.6);
  std::int64_t planned = 0;
  std::int64_t base = 0;
  for (std::int64_t slot = 0; slot < 100; ++slot) {
    planned += planner.budget_for_slot(slot);
    base += reference.budget_for_slot(slot);
  }
  EXPECT_EQ(planned, base);

  // A narrower m yields a strictly smaller cumulative budget, and the
  // carry never lets a single slot round past its rate.
  config.m_start = 2;  // factor = 9/24 * 2 = 0.75
  DelayFeedbackPlanner narrow(config, capacity, 8);
  std::int64_t narrowed = 0;
  for (std::int64_t slot = 0; slot < 100; ++slot) {
    const int budget = narrow.budget_for_slot(slot);
    EXPECT_LE(budget, 1);
    narrowed += budget;
  }
  EXPECT_LT(narrowed, planned);
  // 100 slots * 0.625 * 0.75 = 46.875 -> 46 whole pages issued.
  EXPECT_EQ(narrowed, 46);
}

TEST(DelayPlanner, StaticModeNeverMoves) {
  DelayPlanConfig config = feedback_config();
  config.mode = DelayPlanConfig::Mode::kStatic;
  const capacity::PagingCapacityModel capacity(1, 1.0);
  DelayFeedbackPlanner planner(config, capacity, 8);
  for (std::int64_t slot = 0; slot < 64; ++slot) {
    planner.observe_cell({0, 0}, /*served=*/4, /*delay_sum_slots=*/28);
    planner.end_slot(slot);
  }
  EXPECT_EQ(planner.effective_m(), config.m_start);
  EXPECT_EQ(planner.widen_count(), 0);
  EXPECT_EQ(planner.narrow_count(), 0);
  // The EWMAs still track (introspection works in static mode too).
  EXPECT_GT(planner.global_ewma_q16(), 0);
}

TEST(DelayPlanner, WidensUnderSustainedHighDelay) {
  const DelayPlanConfig config = feedback_config();
  const capacity::PagingCapacityModel capacity(1, 1.0);
  DelayFeedbackPlanner planner(config, capacity, /*sla_delay_slots=*/8);
  // Mean served delay 7 slots >> sla/4 = 2: every adjust boundary must
  // widen until m_max.
  for (std::int64_t slot = 0; slot < 64; ++slot) {
    planner.observe_cell({0, 0}, /*served=*/2, /*delay_sum_slots=*/14);
    planner.end_slot(slot);
  }
  EXPECT_EQ(planner.effective_m(), config.m_max);
  EXPECT_EQ(planner.widen_count(), config.m_max - config.m_start);
  EXPECT_EQ(planner.narrow_count(), 0);
  EXPECT_DOUBLE_EQ(planner.rate_factor(), 1.0);
}

TEST(DelayPlanner, NarrowsBackWhenDelayHasHeadroom) {
  const DelayPlanConfig config = feedback_config();
  const capacity::PagingCapacityModel capacity(1, 1.0);
  DelayFeedbackPlanner planner(config, capacity, /*sla_delay_slots=*/8);
  // Zero measured delay < sla/16 = 0.5: narrow from m_start to m_min.
  for (std::int64_t slot = 0; slot < 64; ++slot) {
    planner.observe_cell({1, -1}, /*served=*/3, /*delay_sum_slots=*/0);
    planner.end_slot(slot);
  }
  EXPECT_EQ(planner.effective_m(), config.m_min);
  EXPECT_EQ(planner.narrow_count(), config.m_start - config.m_min);
  EXPECT_EQ(planner.widen_count(), 0);
}

TEST(DelayPlanner, IdleSlotsLeaveTheEwmaAlone) {
  const DelayPlanConfig config = feedback_config();
  const capacity::PagingCapacityModel capacity(1, 1.0);
  DelayFeedbackPlanner planner(config, capacity, 8);
  planner.observe_cell({0, 0}, 1, 6);
  planner.end_slot(0);
  const std::int64_t after_first = planner.global_ewma_q16();
  EXPECT_GT(after_first, 0);
  // Slots that serve nothing must not decay the estimate toward zero —
  // an idle channel says nothing about queueing delay.
  for (std::int64_t slot = 1; slot < 8; ++slot) planner.end_slot(slot);
  EXPECT_EQ(planner.global_ewma_q16(), after_first);
}

TEST(DelayPlanner, TracksPerCellEwmasIndependently) {
  const DelayPlanConfig config = feedback_config();
  const capacity::PagingCapacityModel capacity(1, 1.0);
  DelayFeedbackPlanner planner(config, capacity, 8);
  const geometry::Cell hot{2, 3};
  const geometry::Cell cold{-1, 0};
  for (std::int64_t slot = 0; slot < 16; ++slot) {
    planner.observe_cell(hot, 2, 12);  // mean 6 slots
    planner.observe_cell(cold, 2, 0);  // mean 0 slots
    planner.end_slot(slot);
  }
  EXPECT_EQ(planner.cells_tracked(), 2u);
  EXPECT_GT(planner.cell_ewma_q16(hot), planner.cell_ewma_q16(cold));
  EXPECT_EQ(planner.cell_ewma_q16({9, 9}), 0);
}

TEST(DelayPlanner, RejectsBadConfig) {
  const capacity::PagingCapacityModel capacity(1, 1.0);
  DelayPlanConfig config = feedback_config();
  config.mode = DelayPlanConfig::Mode::kOff;
  EXPECT_THROW(DelayFeedbackPlanner(config, capacity, 8), InvalidArgument);
  config = feedback_config();
  config.m_min = 0;
  EXPECT_THROW(DelayFeedbackPlanner(config, capacity, 8), InvalidArgument);
  config = feedback_config();
  config.m_min = 4;
  config.m_max = 2;
  EXPECT_THROW(DelayFeedbackPlanner(config, capacity, 8), InvalidArgument);
  config = feedback_config();
  config.adjust_every_slots = 0;
  EXPECT_THROW(DelayFeedbackPlanner(config, capacity, 8), InvalidArgument);
  config = feedback_config();
  // Feedback needs a real SLA to steer against.
  EXPECT_THROW(DelayFeedbackPlanner(config, capacity, 0), InvalidArgument);
}

}  // namespace
}  // namespace pcn::daemon
