#include "pcn/daemon/request_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

namespace pcn::daemon {
namespace {

DaemonRequest page_request(std::uint64_t page_id, std::uint64_t terminal) {
  DaemonRequest request;
  request.kind = DaemonRequest::Kind::kPage;
  request.page_id = page_id;
  request.terminal_id = terminal;
  return request;
}

TEST(RequestRing, SingleThreadedFifo) {
  RequestRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.try_push(page_request(i, i)));
  }
  DaemonRequest out;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_pop(&out));
    EXPECT_EQ(out.page_id, i);
  }
  EXPECT_FALSE(ring.try_pop(&out));
}

TEST(RequestRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(RequestRing(5).capacity(), 8u);
  EXPECT_EQ(RequestRing(8).capacity(), 8u);
  EXPECT_EQ(RequestRing(1).capacity(), 2u);
}

TEST(RequestRing, FullRingRejectsInsteadOfBlocking) {
  RequestRing ring(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_push(page_request(i, i)));
  }
  EXPECT_FALSE(ring.try_push(page_request(99, 99)));

  // Popping one frees exactly one slot.
  DaemonRequest out;
  ASSERT_TRUE(ring.try_pop(&out));
  EXPECT_TRUE(ring.try_push(page_request(100, 100)));
  EXPECT_FALSE(ring.try_push(page_request(101, 101)));
}

TEST(RequestRing, PreservesBothPayloadShapes) {
  RequestRing ring(4);
  DaemonRequest update;
  update.kind = DaemonRequest::Kind::kUpdate;
  update.client = 7;
  update.update.terminal_id = 42;
  update.update.sequence = 3;
  update.update.cell = {5, -2};
  update.update.containment_radius = 4;
  ASSERT_TRUE(ring.try_push(update));
  ASSERT_TRUE(ring.try_push(page_request(11, 42)));

  DaemonRequest out;
  ASSERT_TRUE(ring.try_pop(&out));
  EXPECT_EQ(out.kind, DaemonRequest::Kind::kUpdate);
  EXPECT_EQ(out.client, 7u);
  EXPECT_EQ(out.update.terminal_id, 42u);
  EXPECT_EQ(out.update.sequence, 3u);
  EXPECT_EQ(out.update.cell, (geometry::Cell{5, -2}));
  EXPECT_EQ(out.update.containment_radius, 4u);
  ASSERT_TRUE(ring.try_pop(&out));
  EXPECT_EQ(out.kind, DaemonRequest::Kind::kPage);
  EXPECT_EQ(out.page_id, 11u);
}

TEST(RequestRing, ConcurrentProducersLoseNoAcceptedPush) {
  // 4 producers hammer a ring big enough to hold everything; every
  // accepted push must surface exactly once on the consumer side.
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  RequestRing ring(kProducers * kPerProducer);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t id =
            static_cast<std::uint64_t>(p) * kPerProducer + i;
        while (!ring.try_push(page_request(id, id))) {
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();

  std::set<std::uint64_t> seen;
  DaemonRequest out;
  while (ring.try_pop(&out)) {
    EXPECT_TRUE(seen.insert(out.page_id).second)
        << "duplicate delivery of " << out.page_id;
  }
  EXPECT_EQ(seen.size(), kProducers * kPerProducer);
}

TEST(RequestRing, ContendedBoundedRingDeliversEveryAcceptedPush) {
  // A tiny ring under contention: pushes may be rejected, but accepted
  // ones are never lost or duplicated.
  constexpr int kProducers = 4;
  constexpr std::uint64_t kAttempts = 5000;
  RequestRing ring(8);
  std::vector<std::vector<std::uint64_t>> accepted(kProducers);
  std::set<std::uint64_t> popped;
  std::atomic<bool> done{false};

  std::thread consumer([&] {
    DaemonRequest out;
    for (;;) {
      if (ring.try_pop(&out)) {
        EXPECT_TRUE(popped.insert(out.page_id).second);
      } else if (done.load(std::memory_order_acquire)) {
        while (ring.try_pop(&out)) {
          EXPECT_TRUE(popped.insert(out.page_id).second);
        }
        break;
      }
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kAttempts; ++i) {
        const std::uint64_t id =
            static_cast<std::uint64_t>(p) * kAttempts + i + 1;
        if (ring.try_push(page_request(id, id))) {
          accepted[static_cast<std::size_t>(p)].push_back(id);
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  std::size_t accepted_total = 0;
  for (const auto& ids : accepted) {
    accepted_total += ids.size();
    for (const std::uint64_t id : ids) {
      EXPECT_TRUE(popped.count(id)) << "accepted push lost: " << id;
    }
  }
  EXPECT_EQ(popped.size(), accepted_total);
}

}  // namespace
}  // namespace pcn::daemon
