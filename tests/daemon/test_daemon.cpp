// Pcnd slot-loop semantics: update/page routing, the bounded-queue
// verdict paths (served / duplicate / dropped / expired / unknown),
// page accounting identities, and the determinism contract — counters,
// delay histograms and sampled flight recordings bit-identical at any
// worker-thread count.
#include "pcn/daemon/daemon.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "pcn/daemon/load_gen.hpp"
#include "pcn/daemon/daemon_report.hpp"
#include "pcn/obs/trace_export.hpp"

namespace pcn::daemon {
namespace {

DaemonRequest update_request(std::uint64_t terminal, std::uint64_t sequence,
                             geometry::Cell cell) {
  DaemonRequest request;
  request.kind = DaemonRequest::Kind::kUpdate;
  request.update.terminal_id = terminal;
  request.update.sequence = sequence;
  request.update.cell = cell;
  request.update.containment_radius = 2;
  return request;
}

DaemonRequest page_request(std::uint64_t page_id, std::uint64_t terminal) {
  DaemonRequest request;
  request.kind = DaemonRequest::Kind::kPage;
  request.page_id = page_id;
  request.terminal_id = terminal;
  return request;
}

PcndConfig base_config() {
  PcndConfig config;
  config.collect_outcomes = true;
  return config;
}

TEST(Pcnd, UpdateRegistersTerminalAndSequenceDedups) {
  Pcnd daemon(base_config());
  ASSERT_TRUE(daemon.submit(update_request(7, 2, {3, -1})));
  daemon.run_slots(1);
  ASSERT_TRUE(daemon.submit(update_request(7, 1, {9, 9})));  // stale
  daemon.run_slots(1);

  EXPECT_EQ(daemon.terminal_count(), 1u);
  const Pcnd::TerminalInfo info = daemon.terminal_info(7);
  ASSERT_TRUE(info.known);
  EXPECT_EQ(info.center, (geometry::Cell{3, -1}));
  EXPECT_EQ(info.sequence, 2u);

  const obs::MetricsSnapshot snapshot = daemon.metrics_registry().snapshot();
  EXPECT_EQ(snapshot.counter_value("daemon.update.applied"), 1);
  EXPECT_EQ(snapshot.counter_value("daemon.update.stale"), 1);
  EXPECT_FALSE(daemon.terminal_info(8).known);
}

TEST(Pcnd, PageForKnownTerminalIsServed) {
  PcndConfig config = base_config();
  config.sla_delay_slots = 4;
  Pcnd daemon(config);
  ASSERT_TRUE(daemon.submit(update_request(7, 1, {0, 0})));
  // Update and page land in the same slot; INGEST sorts updates before
  // pages for a terminal, so the page finds the center cell.
  ASSERT_TRUE(daemon.submit(page_request(100, 7)));
  daemon.run_slots(1);

  std::vector<PageOutcomeEvent> outcomes;
  daemon.drain_outcomes(&outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].page_id, 100u);
  EXPECT_EQ(outcomes[0].terminal_id, 7u);
  EXPECT_EQ(outcomes[0].kind, proto::PageOutcomeKind::kServed);
  EXPECT_EQ(outcomes[0].queue_delay_slots, 0);
  EXPECT_EQ(outcomes[0].slot, 0);

  const obs::MetricsSnapshot snapshot = daemon.metrics_registry().snapshot();
  EXPECT_EQ(snapshot.counter_value("daemon.page.queued"), 1);
  EXPECT_EQ(snapshot.counter_value("daemon.page.served"), 1);
  EXPECT_EQ(snapshot.counter_value("daemon.page.sla_violation"), 0);
  EXPECT_EQ(daemon.queue_depth({0, 0}), 0);
}

TEST(Pcnd, UnknownTerminalPageDropsImmediately) {
  Pcnd daemon(base_config());
  ASSERT_TRUE(daemon.submit(page_request(5, 1234)));
  daemon.run_slots(1);

  std::vector<PageOutcomeEvent> outcomes;
  daemon.drain_outcomes(&outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, proto::PageOutcomeKind::kDropped);

  const obs::MetricsSnapshot snapshot = daemon.metrics_registry().snapshot();
  EXPECT_EQ(snapshot.counter_value("daemon.page.unknown_terminal"), 1);
  EXPECT_EQ(snapshot.counter_value("daemon.page.queued"), 0);
  EXPECT_EQ(snapshot.counter_value("daemon.page.sla_violation"), 1);
}

TEST(Pcnd, DuplicatePageRefreshesNotDuplicates) {
  Pcnd daemon(base_config());
  ASSERT_TRUE(daemon.submit(update_request(7, 1, {0, 0})));
  ASSERT_TRUE(daemon.submit(page_request(1, 7)));
  ASSERT_TRUE(daemon.submit(page_request(2, 7)));
  // Both submits land in slot 0 before any drain, so the second is a
  // duplicate regardless of the slot budget.
  daemon.run_slots(1);

  const obs::MetricsSnapshot snapshot = daemon.metrics_registry().snapshot();
  EXPECT_EQ(snapshot.counter_value("daemon.page.queued"), 1);
  EXPECT_EQ(snapshot.counter_value("daemon.page.duplicate"), 1);
  EXPECT_EQ(snapshot.counter_value("daemon.page.served"), 1);
}

TEST(Pcnd, FullQueueDropsAndExpiryFiresUnderStarvedBudget) {
  PcndConfig config = base_config();
  // Budget ~1 page every 4 slots, tiny queue, short lifetime: with 4
  // terminals paged in one cell, some are dropped at the bound and the
  // rest mostly expire before the channel gets credit.
  config.capacity = capacity::PagingCapacityModel(1, 4.0);
  config.queue.max_pending = 2;
  config.queue.lifetime_slots = 2;
  config.queue.groups = 1;
  Pcnd daemon(config);
  for (std::uint64_t t = 0; t < 4; ++t) {
    ASSERT_TRUE(daemon.submit(update_request(t, 1, {0, 0})));
    ASSERT_TRUE(daemon.submit(page_request(10 + t, t)));
  }
  daemon.run_slots(8);

  const obs::MetricsSnapshot snapshot = daemon.metrics_registry().snapshot();
  EXPECT_EQ(snapshot.counter_value("daemon.page.queued"), 2);
  EXPECT_EQ(snapshot.counter_value("daemon.page.dropped"), 2);
  EXPECT_EQ(snapshot.counter_value("daemon.page.queued") +
                snapshot.counter_value("daemon.page.dropped"),
            4);
  EXPECT_EQ(snapshot.counter_value("daemon.page.served") +
                snapshot.counter_value("daemon.page.expired"),
            2);
  EXPECT_GE(snapshot.counter_value("daemon.page.expired"), 1);
  EXPECT_EQ(daemon.max_queue_depth(), 2);

  std::vector<PageOutcomeEvent> outcomes;
  daemon.drain_outcomes(&outcomes);
  EXPECT_EQ(outcomes.size(), 4u);
}

TEST(Pcnd, RingFullRejectsAndCounts) {
  PcndConfig config = base_config();
  config.ring_capacity = 4;
  Pcnd daemon(config);
  int accepted = 0;
  for (std::uint64_t t = 0; t < 6; ++t) {
    if (daemon.submit(update_request(t, 1, {0, 0}))) ++accepted;
  }
  EXPECT_EQ(accepted, 4);
  const obs::MetricsSnapshot snapshot = daemon.metrics_registry().snapshot();
  EXPECT_EQ(snapshot.counter_value("daemon.request.rejected_ring_full"), 2);
  EXPECT_EQ(snapshot.counter_value("daemon.request.update"), 4);
}

TEST(Pcnd, SlaCountsLateServes) {
  PcndConfig config = base_config();
  config.capacity = capacity::PagingCapacityModel(1, 2.0);  // 1 page / 2 slots
  config.sla_delay_slots = 1;
  config.queue.groups = 1;
  Pcnd daemon(config);
  for (std::uint64_t t = 0; t < 3; ++t) {
    ASSERT_TRUE(daemon.submit(update_request(t, 1, {0, 0})));
    ASSERT_TRUE(daemon.submit(page_request(10 + t, t)));
  }
  daemon.run_slots(8);

  const obs::MetricsSnapshot snapshot = daemon.metrics_registry().snapshot();
  EXPECT_EQ(snapshot.counter_value("daemon.page.served"), 3);
  // Serves land in slots 1, 3, 5 -> delays 1, 3, 5; two exceed the
  // 1-slot SLA.
  EXPECT_EQ(snapshot.counter_value("daemon.page.sla_violation"), 2);
  const std::vector<std::int64_t> delays = daemon.delay_histogram();
  ASSERT_EQ(delays.size(), 6u);
  EXPECT_EQ(delays[1], 1);
  EXPECT_EQ(delays[3], 1);
  EXPECT_EQ(delays[5], 1);
}

TEST(Pcnd, DrainOutcomesRequiresCollectFlag) {
  PcndConfig config;  // collect_outcomes = false
  Pcnd daemon(config);
  std::vector<PageOutcomeEvent> outcomes;
  EXPECT_THROW(daemon.drain_outcomes(&outcomes), InvalidArgument);
}

TEST(Pcnd, RejectsBadConfig) {
  PcndConfig config;
  config.threads = 0;
  EXPECT_THROW(Pcnd{config}, InvalidArgument);
  config = PcndConfig{};
  config.terminal_shards = 0;
  EXPECT_THROW(Pcnd{config}, InvalidArgument);
  config = PcndConfig{};
  config.queue_shards = 0;
  EXPECT_THROW(Pcnd{config}, InvalidArgument);
  config = PcndConfig{};
  config.sla_delay_slots = -1;
  EXPECT_THROW(Pcnd{config}, InvalidArgument);
}

TEST(Pcnd, FlightRecorderCapturesPageLifecycles) {
  PcndConfig config = base_config();
  config.record_flight = true;
  config.flight_sample_every = 1;  // sample every page
  Pcnd daemon(config);
  ASSERT_TRUE(daemon.submit(update_request(7, 1, {0, 0})));
  ASSERT_TRUE(daemon.submit(page_request(100, 7)));
  ASSERT_TRUE(daemon.submit(page_request(5, 1234)));  // unknown -> dropped
  daemon.run_slots(1);

  ASSERT_NE(daemon.flight_recorder(), nullptr);
  const std::vector<obs::FlightEvent> events =
      daemon.flight_recorder()->merged();
  int queued = 0;
  int served = 0;
  int dropped = 0;
  for (const obs::FlightEvent& event : events) {
    switch (event.type) {
      case obs::FlightEventType::kPageQueued:
        ++queued;
        EXPECT_EQ(event.terminal, 7);
        break;
      case obs::FlightEventType::kPageServed:
        ++served;
        EXPECT_EQ(event.call, 100);
        break;
      case obs::FlightEventType::kPageDropped:
        ++dropped;
        EXPECT_EQ(event.terminal, 1234);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(queued, 1);
  EXPECT_EQ(served, 1);
  EXPECT_EQ(dropped, 1);
}

/// Collapses a run into a comparable fingerprint: every counter, the
/// exact delay histogram, and the merged flight recording.
std::string run_fingerprint(int threads, std::uint64_t seed) {
  PcndConfig config;
  config.threads = threads;
  config.capacity = capacity::PagingCapacityModel(1, 1.0);
  config.queue.max_pending = 8;
  config.queue.lifetime_slots = 12;
  config.sla_delay_slots = 4;
  config.record_flight = true;
  config.flight_sample_every = 4;
  Pcnd daemon(config);

  ClosedLoopConfig workload_config;
  workload_config.seed = seed;
  workload_config.terminals = 600;
  workload_config.region = 6;  // 36 cells -> well past the capacity knee
  workload_config.call_prob = 0.1;
  workload_config.threshold = 2;
  ClosedLoopWorkload workload(workload_config);
  daemon.run_slots(48, &workload);

  std::string fingerprint;
  const obs::MetricsSnapshot snapshot = daemon.metrics_registry().snapshot();
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "daemon.run.wall_ns") continue;  // wall time varies
    fingerprint += counter.name + "=" + std::to_string(counter.value) + "\n";
  }
  for (const std::int64_t count : daemon.delay_histogram()) {
    fingerprint += std::to_string(count) + ",";
  }
  fingerprint += "\n";
  fingerprint += obs::to_trace_jsonl({}, daemon.flight_recorder()->merged());
  fingerprint += "outstanding=" + std::to_string(workload.outstanding_count());
  fingerprint +=
      " served=" + std::to_string(workload.outcomes_served()) +
      " dropped=" + std::to_string(workload.outcomes_dropped()) +
      " expired=" + std::to_string(workload.outcomes_expired());
  return fingerprint;
}

TEST(Pcnd, BitIdenticalResultsAcrossThreadCounts) {
  const std::string one = run_fingerprint(1, 42);
  const std::string two = run_fingerprint(2, 42);
  const std::string four = run_fingerprint(4, 42);
  const std::string five = run_fingerprint(5, 42);  // odd, non-divisor
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, five);
  // Sanity: the scenario actually exercised the overload paths.
  EXPECT_NE(one.find("daemon.page.served"), std::string::npos);
}

TEST(Pcnd, ClosedLoopWorkloadKeepsOnePageInFlight) {
  PcndConfig config;
  config.capacity = capacity::PagingCapacityModel(1, 2.0);
  config.queue.max_pending = 4;
  config.queue.lifetime_slots = 6;
  Pcnd daemon(config);

  ClosedLoopConfig workload_config;
  workload_config.terminals = 200;
  workload_config.region = 4;
  workload_config.call_prob = 0.2;
  ClosedLoopWorkload workload(workload_config);
  daemon.run_slots(40, &workload);

  // Conservation: every submitted page is either settled back to the
  // workload or still in flight.
  EXPECT_EQ(workload.pages_submitted(),
            workload.outcomes_served() + workload.outcomes_dropped() +
                workload.outcomes_expired() + workload.outstanding_count());
  EXPECT_GT(workload.pages_submitted(), 0);
  EXPECT_GT(workload.updates_sent(), 0);

  // Daemon-side accounting: offered = queued + duplicate + dropped +
  // unknown, and settled = served + expired + dropped + unknown.
  const obs::MetricsSnapshot snapshot = daemon.metrics_registry().snapshot();
  const std::int64_t offered =
      snapshot.counter_value("daemon.request.page");
  EXPECT_EQ(offered, workload.pages_submitted());
  EXPECT_EQ(offered, snapshot.counter_value("daemon.page.queued") +
                         snapshot.counter_value("daemon.page.duplicate") +
                         snapshot.counter_value("daemon.page.dropped") +
                         snapshot.counter_value("daemon.page.unknown_terminal"));
  // The closed-loop generator registers a terminal before paging it.
  EXPECT_EQ(snapshot.counter_value("daemon.page.unknown_terminal"), 0);
}

TEST(DaemonReport, AccountsAndSerializes) {
  PcndConfig config;
  config.capacity = capacity::PagingCapacityModel(1, 1.0);
  config.sla_delay_slots = 4;
  Pcnd daemon(config);
  ClosedLoopConfig workload_config;
  workload_config.terminals = 300;
  workload_config.region = 4;
  workload_config.call_prob = 0.15;
  ClosedLoopWorkload workload(workload_config);
  daemon.run_slots(32, &workload);

  const DaemonRunReport report = make_daemon_report(
      daemon, workload_config.seed,
      static_cast<std::int64_t>(workload_config.terminals));
  EXPECT_EQ(report.slots, 32);
  EXPECT_EQ(report.terminals, 300);
  EXPECT_EQ(report.pages_offered,
            report.pages_queued + report.pages_duplicate +
                report.pages_dropped + report.pages_unknown);
  EXPECT_GT(report.pages_served, 0);
  EXPECT_GE(report.drop_rate, 0.0);
  EXPECT_LE(report.drop_rate, 1.0);
  EXPECT_GE(report.delay_p99, report.delay_p50);
  EXPECT_GE(report.delay_max, report.delay_p99);

  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"schema\":\"pcn.run_report.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"daemon\""), std::string::npos);
  EXPECT_NE(json.find("\"drop_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_delay_slots\""), std::string::npos);
  EXPECT_NE(json.find("\"sla\""), std::string::npos);
}

}  // namespace
}  // namespace pcn::daemon
