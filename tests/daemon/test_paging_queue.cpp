#include "pcn/daemon/paging_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace pcn::daemon {
namespace {

PendingPage page_for(std::uint64_t terminal, std::uint64_t page_id,
                     std::int64_t slot) {
  PendingPage page;
  page.terminal_id = terminal;
  page.page_id = page_id;
  page.enqueued_slot = slot;
  return page;
}

PagingQueueConfig single_group(std::size_t max_pending,
                               std::int64_t lifetime) {
  PagingQueueConfig config;
  config.max_pending = max_pending;
  config.lifetime_slots = lifetime;
  config.groups = 1;
  return config;
}

TEST(BoundedPagingQueue, ServesFifoWithinOneGroup) {
  BoundedPagingQueue queue(single_group(8, 16));
  EXPECT_EQ(queue.add(page_for(1, 10, 0)), EnqueueResult::kQueued);
  EXPECT_EQ(queue.add(page_for(2, 11, 0)), EnqueueResult::kQueued);
  EXPECT_EQ(queue.add(page_for(3, 12, 0)), EnqueueResult::kQueued);

  std::vector<ServedPage> served;
  std::vector<PendingPage> expired;
  EXPECT_EQ(queue.drain(1, 2, &served, &expired), 2);
  ASSERT_EQ(served.size(), 2u);
  EXPECT_EQ(served[0].page.page_id, 10u);
  EXPECT_EQ(served[1].page.page_id, 11u);
  EXPECT_EQ(served[0].served_slot, 1);
  EXPECT_TRUE(expired.empty());
  EXPECT_EQ(queue.size(), 1u);

  EXPECT_EQ(queue.drain(2, 4, &served, &expired), 1);
  EXPECT_EQ(served.back().page.page_id, 12u);
  EXPECT_TRUE(queue.empty());
}

TEST(BoundedPagingQueue, DepthBeforeCountsTheServedPageItself) {
  BoundedPagingQueue queue(single_group(8, 16));
  queue.add(page_for(1, 1, 0));
  queue.add(page_for(2, 2, 0));
  std::vector<ServedPage> served;
  std::vector<PendingPage> expired;
  queue.drain(0, 2, &served, &expired);
  ASSERT_EQ(served.size(), 2u);
  EXPECT_EQ(served[0].depth_before, 2u);
  EXPECT_EQ(served[1].depth_before, 1u);
}

TEST(BoundedPagingQueue, DuplicateIdentityRefreshesInPlace) {
  BoundedPagingQueue queue(single_group(8, 4));
  queue.add(page_for(1, 10, 0));
  queue.add(page_for(2, 11, 3));
  EXPECT_EQ(queue.size(), 2u);

  // Re-paging terminal 1 later refreshes its lifetime but keeps the
  // original page id and FIFO position.
  EXPECT_EQ(queue.add(page_for(1, 99, 3)), EnqueueResult::kRefreshed);
  EXPECT_EQ(queue.size(), 2u);

  std::vector<ServedPage> served;
  std::vector<PendingPage> expired;
  // Slot 6 is past the original expiry (0 + 4) but within the refreshed
  // one (3 + 4): the entry must still be servable, and first in line.
  queue.drain(6, 2, &served, &expired);
  ASSERT_EQ(served.size(), 2u);
  EXPECT_TRUE(expired.empty());
  EXPECT_EQ(served[0].page.terminal_id, 1u);
  EXPECT_EQ(served[0].page.page_id, 10u);  // original, not 99
}

TEST(BoundedPagingQueue, FullQueueRejectsNewButRefreshesPending) {
  BoundedPagingQueue queue(single_group(2, 16));
  EXPECT_EQ(queue.add(page_for(1, 1, 0)), EnqueueResult::kQueued);
  EXPECT_EQ(queue.add(page_for(2, 2, 0)), EnqueueResult::kQueued);
  EXPECT_EQ(queue.buffer_space(), 0u);

  EXPECT_EQ(queue.add(page_for(3, 3, 0)), EnqueueResult::kFull);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_FALSE(queue.contains(3));

  // osmo semantics: dedup applies before the capacity check, so an
  // already-pending terminal refreshes even when the queue is full.
  EXPECT_EQ(queue.add(page_for(1, 4, 1)), EnqueueResult::kRefreshed);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedPagingQueue, ExpiredPagesAreSweptNeverServed) {
  BoundedPagingQueue queue(single_group(8, 2));
  queue.add(page_for(1, 1, 0));  // servable through slot 2
  queue.add(page_for(2, 2, 0));

  std::vector<ServedPage> served;
  std::vector<PendingPage> expired;
  // Slot 3: both entries are past their lifetime.  The sweep reports
  // them as expired without consuming the budget.
  EXPECT_EQ(queue.drain(3, 5, &served, &expired), 0);
  EXPECT_TRUE(served.empty());
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].page_id, 1u);
  EXPECT_EQ(expired[1].page_id, 2u);
  EXPECT_TRUE(queue.empty());
}

TEST(BoundedPagingQueue, ExpiryBoundaryIsInclusive) {
  BoundedPagingQueue queue(single_group(8, 2));
  queue.add(page_for(1, 1, 0));
  std::vector<ServedPage> served;
  std::vector<PendingPage> expired;
  // enqueued_slot + lifetime = 2: still servable in exactly slot 2.
  EXPECT_EQ(queue.drain(2, 1, &served, &expired), 1);
  EXPECT_TRUE(expired.empty());
}

TEST(BoundedPagingQueue, RoundRobinRotatesAcrossGroups) {
  PagingQueueConfig config;
  config.max_pending = 16;
  config.lifetime_slots = 32;
  config.groups = 2;
  BoundedPagingQueue queue(config);
  // Terminals 0/2 land in group 0, 1/3 in group 1.
  queue.add(page_for(0, 10, 0));
  queue.add(page_for(2, 11, 0));
  queue.add(page_for(1, 20, 0));
  queue.add(page_for(3, 21, 0));

  std::vector<ServedPage> served;
  std::vector<PendingPage> expired;
  queue.drain(0, 4, &served, &expired);
  ASSERT_EQ(served.size(), 4u);
  // Alternating groups, FIFO within each.
  EXPECT_EQ(served[0].page.page_id, 10u);
  EXPECT_EQ(served[1].page.page_id, 20u);
  EXPECT_EQ(served[2].page.page_id, 11u);
  EXPECT_EQ(served[3].page.page_id, 21u);
}

TEST(BoundedPagingQueue, RotationResumesWhereTheLastDrainStopped) {
  PagingQueueConfig config;
  config.max_pending = 16;
  config.lifetime_slots = 32;
  config.groups = 2;
  BoundedPagingQueue queue(config);
  queue.add(page_for(0, 10, 0));  // group 0
  queue.add(page_for(1, 20, 0));  // group 1
  queue.add(page_for(3, 21, 0));  // group 1

  std::vector<ServedPage> served;
  std::vector<PendingPage> expired;
  queue.drain(0, 1, &served, &expired);
  ASSERT_EQ(served.size(), 1u);
  EXPECT_EQ(served[0].page.page_id, 10u);

  // The next drain starts with group 1 — group 0 being empty now must
  // not matter, and one chatty group cannot be starved.
  served.clear();
  queue.drain(1, 1, &served, &expired);
  ASSERT_EQ(served.size(), 1u);
  EXPECT_EQ(served[0].page.page_id, 20u);
}

TEST(BoundedPagingQueue, BudgetZeroServesNothingButStillSweeps) {
  BoundedPagingQueue queue(single_group(8, 1));
  queue.add(page_for(1, 1, 0));
  std::vector<ServedPage> served;
  std::vector<PendingPage> expired;
  EXPECT_EQ(queue.drain(5, 0, &served, &expired), 0);
  EXPECT_TRUE(served.empty());
  EXPECT_EQ(expired.size(), 1u);
  EXPECT_TRUE(queue.empty());
}

TEST(BoundedPagingQueue, DropOldestEvictsTheLongestWaitingHead) {
  PagingQueueConfig config;
  config.max_pending = 3;
  config.lifetime_slots = 32;
  config.groups = 2;
  config.admission = AdmissionPolicy::kDropOldest;
  BoundedPagingQueue queue(config);
  queue.add(page_for(1, 10, 0));  // group 1, oldest
  queue.add(page_for(2, 11, 1));  // group 0
  queue.add(page_for(3, 12, 2));  // group 1

  PendingPage evicted;
  EXPECT_EQ(queue.add(page_for(4, 13, 3), &evicted), EnqueueResult::kEvicted);
  EXPECT_EQ(evicted.terminal_id, 1u);  // slot-0 head, the oldest
  EXPECT_EQ(evicted.page_id, 10u);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_FALSE(queue.contains(1));
  EXPECT_TRUE(queue.contains(4));

  // Survivors keep FIFO order within their groups.
  std::vector<ServedPage> served;
  std::vector<PendingPage> expired;
  queue.drain(3, 3, &served, &expired);
  ASSERT_EQ(served.size(), 3u);
  EXPECT_EQ(served[0].page.page_id, 11u);  // group 0 head
  EXPECT_EQ(served[1].page.page_id, 12u);  // group 1: 12 before 13
  EXPECT_EQ(served[2].page.page_id, 13u);
}

TEST(BoundedPagingQueue, DropOldestTieBreaksTowardLowestGroup) {
  PagingQueueConfig config;
  config.max_pending = 2;
  config.lifetime_slots = 32;
  config.groups = 2;
  config.admission = AdmissionPolicy::kDropOldest;
  BoundedPagingQueue queue(config);
  queue.add(page_for(1, 10, 0));  // group 1
  queue.add(page_for(2, 11, 0));  // group 0, same slot
  PendingPage evicted;
  EXPECT_EQ(queue.add(page_for(3, 12, 1), &evicted), EnqueueResult::kEvicted);
  EXPECT_EQ(evicted.terminal_id, 2u);  // group 0 wins the tie
}

TEST(BoundedPagingQueue, DropOldestStillRefreshesDuplicatesOnFullQueue) {
  PagingQueueConfig config;
  config.max_pending = 2;
  config.lifetime_slots = 4;
  config.groups = 1;
  config.admission = AdmissionPolicy::kDropOldest;
  BoundedPagingQueue queue(config);
  queue.add(page_for(1, 1, 0));
  queue.add(page_for(2, 2, 0));
  PendingPage evicted;
  EXPECT_EQ(queue.add(page_for(1, 9, 3), &evicted), EnqueueResult::kRefreshed);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedPagingQueue, PriorityEvictsTheMostSlackAndKeepsUrgentPages) {
  PagingQueueConfig config;
  config.max_pending = 2;
  config.lifetime_slots = 32;
  config.groups = 1;
  config.admission = AdmissionPolicy::kPriorityDelayBound;
  config.sla_delay_slots = 8;
  BoundedPagingQueue queue(config);
  queue.add(page_for(1, 1, 0));  // deadline 8
  queue.add(page_for(2, 2, 5));  // deadline 13 — the most slack

  PendingPage evicted;
  // Incoming at slot 7 has deadline 15; the best victim (13) has *less*
  // slack, so evicting it would invert the priority: reject instead.
  EXPECT_EQ(queue.add(page_for(3, 3, 7), &evicted), EnqueueResult::kFull);
  EXPECT_EQ(queue.size(), 2u);

  // Incoming at slot 5 has deadline 13; victim deadline 13 >= 13, so the
  // most recently enqueued of the equals (terminal 2) gives way.
  EXPECT_EQ(queue.add(page_for(4, 4, 5), &evicted), EnqueueResult::kEvicted);
  EXPECT_EQ(evicted.terminal_id, 2u);
  EXPECT_TRUE(queue.contains(1));  // the urgent page survived
  EXPECT_TRUE(queue.contains(4));
}

TEST(BoundedPagingQueue, PriorityDeadlineFallsBackToLifetimeWithoutSla) {
  PagingQueueConfig config;
  config.max_pending = 1;
  config.lifetime_slots = 16;
  config.groups = 1;
  config.admission = AdmissionPolicy::kPriorityDelayBound;
  config.sla_delay_slots = 0;  // deadlines coincide with expiry
  BoundedPagingQueue queue(config);
  queue.add(page_for(1, 1, 0));  // deadline 16
  PendingPage evicted;
  EXPECT_EQ(queue.add(page_for(2, 2, 0), &evicted), EnqueueResult::kEvicted);
  EXPECT_EQ(evicted.terminal_id, 1u);
}

TEST(BoundedPagingQueue, DropNewestNeedsNoEvictedOutParam) {
  BoundedPagingQueue queue(single_group(1, 16));
  EXPECT_EQ(queue.add(page_for(1, 1, 0)), EnqueueResult::kQueued);
  EXPECT_EQ(queue.add(page_for(2, 2, 0)), EnqueueResult::kFull);
}

TEST(BoundedPagingQueue, RejectsBadConfig) {
  PagingQueueConfig config;
  config.max_pending = 0;
  EXPECT_THROW(BoundedPagingQueue{config}, InvalidArgument);
  config = PagingQueueConfig{};
  config.groups = 0;
  EXPECT_THROW(BoundedPagingQueue{config}, InvalidArgument);
  config = PagingQueueConfig{};
  config.lifetime_slots = -1;
  EXPECT_THROW(BoundedPagingQueue{config}, InvalidArgument);
}

}  // namespace
}  // namespace pcn::daemon
