// Live introspection under fire (tier 2, TSan'd by run_checks gate 2):
// an AdminServer scraping a 4-thread pcnd mid-soak must
//   * produce parseable payloads (pcn.live_snapshot.v1 JSON, Prometheus
//     text with # HELP/# TYPE lines) on both the in-process render path
//     and the Unix-socket protocol;
//   * see monotone non-decreasing counter totals across successive
//     scrapes (every registry cell only grows);
//   * leave the run bit-identical: the counter fingerprint with live
//     scraping at 4 threads equals an unscraped 1-thread run, and the
//     final scrape agrees exactly with make_daemon_report's counters.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "pcn/daemon/admin_server.hpp"
#include "pcn/daemon/daemon.hpp"
#include "pcn/daemon/daemon_report.hpp"
#include "pcn/daemon/load_gen.hpp"
#include "pcn/obs/json.hpp"

namespace pcn::daemon {
namespace {

std::int64_t env_or(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  return (value != nullptr && *value != '\0') ? std::atoll(value) : fallback;
}

// Reuses the soak suite's scale knobs so the TSan run_checks gate can
// shrink the scenario the same way it shrinks the soak.
const std::int64_t kTerminals = env_or("PCN_SOAK_TERMINALS", 4000);
const std::int64_t kSlots = env_or("PCN_SOAK_SLOTS", 300);
constexpr int kRegion = 16;

PcndConfig make_config(int threads, bool live_stats) {
  PcndConfig config;
  config.threads = threads;
  config.live_stats = live_stats;
  config.capacity = capacity::PagingCapacityModel(1, 1.0);
  config.queue.max_pending = 8;
  config.queue.lifetime_slots = 16;
  config.queue.groups = 4;
  config.sla_delay_slots = 8;
  return config;
}

ClosedLoopConfig make_workload_config() {
  ClosedLoopConfig workload_config;
  workload_config.seed = 2026;
  workload_config.terminals = static_cast<std::uint64_t>(kTerminals);
  workload_config.region = kRegion;
  workload_config.move_prob = 0.2;
  // 2x the channel capacity of region^2 cells x 1 page/slot.
  workload_config.call_prob =
      2.0 * kRegion * kRegion / static_cast<double>(kTerminals);
  workload_config.threshold = 3;
  return workload_config;
}

std::string test_socket_path() {
  return "/tmp/pcn_test_admin." + std::to_string(::getpid()) + ".sock";
}

/// Counter name -> value from a parsed live snapshot's "metrics" section.
std::map<std::string, std::int64_t> snapshot_counters(
    const obs::JsonValue& doc) {
  std::map<std::string, std::int64_t> out;
  const obs::JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr) return out;
  const obs::JsonValue* counters = metrics->find("counters");
  if (counters == nullptr) return out;
  for (const auto& [name, value] : counters->object) {
    out[name] = static_cast<std::int64_t>(value.number);
  }
  return out;
}

/// Every deterministic counter (wall time excluded), as one string.
std::string counter_fingerprint(const DaemonRunReport& report) {
  std::string fingerprint;
  for (const auto& counter : report.metrics.counters) {
    if (counter.name == "daemon.run.wall_ns") continue;
    fingerprint +=
        counter.name + "=" + std::to_string(counter.value) + "\n";
  }
  return fingerprint;
}

/// One admin request over the real socket protocol; empty on failure.
std::string socket_scrape(const std::string& path, const std::string& verb) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return std::string();
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    return std::string();
  }
  const std::string request = verb + "\n";
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string reply;
  char buffer[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    reply.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

TEST(AdminIntrospection, ScrapesUnderFireAreMonotoneAndNonPerturbing) {
  // Reference run: 1 thread, no live stats, no admin plane.
  Pcnd reference(make_config(1, false));
  {
    ClosedLoopWorkload workload(make_workload_config());
    reference.run_slots(kSlots, &workload);
  }
  const DaemonRunReport reference_report =
      make_daemon_report(reference, 2026, kTerminals);

  // Scraped run: 4 worker threads, live stats on, AdminServer up, and a
  // scraper hammering both render paths plus the socket protocol while
  // the slot loop runs.
  Pcnd daemon(make_config(4, true));
  AdminServer admin(&daemon, test_socket_path());
  admin.start();

  std::atomic<bool> done{false};
  std::vector<std::string> json_scrapes;
  std::vector<std::string> prom_scrapes;
  std::vector<std::string> socket_replies;
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      json_scrapes.push_back(admin.render_live_snapshot());
      prom_scrapes.push_back(admin.render_prometheus());
      socket_replies.push_back(socket_scrape(admin.path(), "prom"));
    }
  });

  {
    ClosedLoopWorkload workload(make_workload_config());
    daemon.run_slots(kSlots, &workload);
  }
  done.store(true, std::memory_order_relaxed);
  scraper.join();

  // One more of each after the run settles: the final snapshot must agree
  // exactly with the end-of-run report.
  json_scrapes.push_back(admin.render_live_snapshot());
  socket_replies.push_back(socket_scrape(admin.path(), "json"));
  admin.stop();
  const DaemonRunReport report = make_daemon_report(daemon, 2026, kTerminals);

  ASSERT_GE(json_scrapes.size(), 2u);
  EXPECT_EQ(admin.scrapes(),
            json_scrapes.size() + prom_scrapes.size() + socket_replies.size());

  // Every JSON scrape parses, declares the schema, and its counters are
  // monotone non-decreasing relative to the previous scrape.
  std::map<std::string, std::int64_t> previous;
  for (const std::string& payload : json_scrapes) {
    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::parse_json(payload, &doc, &error)) << error;
    EXPECT_EQ(doc.string_or("schema", ""), "pcn.live_snapshot.v1");
    const std::map<std::string, std::int64_t> counters =
        snapshot_counters(doc);
    EXPECT_FALSE(counters.empty());
    for (const auto& [name, value] : previous) {
      const auto it = counters.find(name);
      ASSERT_NE(it, counters.end()) << name << " disappeared";
      EXPECT_GE(it->second, value) << name << " went backwards";
    }
    previous = counters;
  }

  // Prometheus scrapes are well-formed expositions.
  for (const std::string& payload : prom_scrapes) {
    EXPECT_NE(payload.find("# TYPE "), std::string::npos);
    EXPECT_NE(payload.find("# HELP "), std::string::npos);
    EXPECT_NE(payload.find("pcn_daemon_slot_count "), std::string::npos);
  }

  // The socket protocol serves the same payloads as the render path.
  for (const std::string& payload : socket_replies) {
    ASSERT_FALSE(payload.empty());
  }
  EXPECT_NE(socket_replies.back().find("\"schema\":\"pcn.live_snapshot.v1\""),
            std::string::npos);

  // The final scrape equals the end-of-run report, counter for counter.
  obs::JsonValue final_doc;
  std::string error;
  ASSERT_TRUE(obs::parse_json(json_scrapes.back(), &final_doc, &error))
      << error;
  const std::map<std::string, std::int64_t> final_counters =
      snapshot_counters(final_doc);
  for (const auto& counter : report.metrics.counters) {
    const auto it = final_counters.find(counter.name);
    ASSERT_NE(it, final_counters.end()) << counter.name;
    EXPECT_EQ(it->second, counter.value) << counter.name;
  }

  // Scraping observed the run without perturbing it: counters match the
  // unscraped single-thread reference bit for bit.
  EXPECT_EQ(counter_fingerprint(report),
            counter_fingerprint(reference_report));

  // Live queue stats were populated by the finalize-phase walk (which
  // stamps the slot being finalized, i.e. the last zero-based slot).
  const LiveQueueStats stats = daemon.live_queue_stats();
  EXPECT_EQ(stats.slot, kSlots - 1);
  EXPECT_GE(stats.max_depth_ever, 0);
  EXPECT_LE(static_cast<std::int64_t>(stats.deepest.size()),
            static_cast<std::int64_t>(LiveQueueStats::kTopCells));
}

}  // namespace
}  // namespace pcn::daemon
