// Deterministic overload soak (tier 2): pcnd under a closed-loop fleet
// offering roughly twice the paging-channel capacity, long enough for
// the bounded queues to reach their stationary overloaded regime.
//
// What must hold:
//   * bit-identical results at 1 and 4 worker threads — every counter,
//     the exact queueing-delay histogram, the merged flight recording,
//     and the workload-side tallies;
//   * the run report lands in the golden overload band: a real drop
//     rate (the channel is over capacity) that still serves a majority
//     of the offered load at 2x (the queue smooths bursts, it does not
//     collapse);
//   * page accounting closes exactly — offered = queued + duplicate +
//     dropped + unknown, settled + in-flight = submitted.
//
// Scale knobs (for run_checks smoke): PCN_SOAK_TERMINALS, PCN_SOAK_SLOTS.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "pcn/daemon/daemon.hpp"
#include "pcn/daemon/daemon_report.hpp"
#include "pcn/daemon/load_gen.hpp"
#include "pcn/obs/trace_export.hpp"

namespace pcn::daemon {
namespace {

std::int64_t env_or(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  return (value != nullptr && *value != '\0') ? std::atoll(value) : fallback;
}

struct SoakResult {
  DaemonRunReport report;
  std::vector<std::int64_t> delay_histogram;
  std::string flight_jsonl;
  std::int64_t workload_submitted = 0;
  std::int64_t workload_served = 0;
  std::int64_t workload_dropped = 0;
  std::int64_t workload_expired = 0;
  std::int64_t workload_outstanding = 0;
};

SoakResult run_soak(
    int threads, AdmissionPolicy admission = AdmissionPolicy::kDropNewest,
    DelayPlanConfig::Mode plan_mode = DelayPlanConfig::Mode::kOff) {
  const std::int64_t terminals = env_or("PCN_SOAK_TERMINALS", 8000);
  const std::int64_t slots = env_or("PCN_SOAK_SLOTS", 400);
  constexpr int kRegion = 16;  // 256 cells
  constexpr double kOfferedMultiple = 2.0;

  PcndConfig config;
  config.threads = threads;
  config.capacity = capacity::PagingCapacityModel(1, 1.0);  // 1 page/slot
  config.queue.max_pending = 8;
  config.queue.lifetime_slots = 16;
  config.queue.groups = 4;
  config.queue.admission = admission;
  config.sla_delay_slots = 8;
  config.plan.mode = plan_mode;
  config.record_flight = true;
  config.flight_sample_every = 64;
  Pcnd daemon(config);

  ClosedLoopConfig workload_config;
  workload_config.seed = 2026;
  workload_config.terminals = static_cast<std::uint64_t>(terminals);
  workload_config.region = kRegion;
  workload_config.move_prob = 0.2;
  // Offered pages/slot = terminals * call_prob; pin it to 2x the total
  // channel capacity of region^2 cells x 1 page/slot.
  workload_config.call_prob =
      kOfferedMultiple * kRegion * kRegion / static_cast<double>(terminals);
  workload_config.threshold = 3;
  ClosedLoopWorkload workload(workload_config);

  daemon.run_slots(slots, &workload);

  SoakResult result;
  result.report =
      make_daemon_report(daemon, workload_config.seed, terminals);
  result.delay_histogram = daemon.delay_histogram();
  result.flight_jsonl =
      obs::to_trace_jsonl({}, daemon.flight_recorder()->merged());
  result.workload_submitted = workload.pages_submitted();
  result.workload_served = workload.outcomes_served();
  result.workload_dropped = workload.outcomes_dropped();
  result.workload_expired = workload.outcomes_expired();
  result.workload_outstanding = workload.outstanding_count();
  return result;
}

/// Every deterministic counter in the snapshot (wall time excluded).
std::string counter_fingerprint(const DaemonRunReport& report) {
  std::string fingerprint;
  for (const auto& counter : report.metrics.counters) {
    if (counter.name == "daemon.run.wall_ns") continue;
    fingerprint +=
        counter.name + "=" + std::to_string(counter.value) + "\n";
  }
  return fingerprint;
}

TEST(DaemonSoak, TwoTimesCapacityOverloadIsDeterministicAcrossThreads) {
  const SoakResult one = run_soak(1);
  const SoakResult four = run_soak(4);

  // Bit-identical counters, delay distribution, flight recording and
  // workload tallies at both thread counts.
  EXPECT_EQ(counter_fingerprint(one.report), counter_fingerprint(four.report));
  EXPECT_EQ(one.delay_histogram, four.delay_histogram);
  EXPECT_EQ(one.flight_jsonl, four.flight_jsonl);
  EXPECT_EQ(one.workload_submitted, four.workload_submitted);
  EXPECT_EQ(one.workload_served, four.workload_served);
  EXPECT_EQ(one.workload_dropped, four.workload_dropped);
  EXPECT_EQ(one.workload_expired, four.workload_expired);
  EXPECT_EQ(one.workload_outstanding, four.workload_outstanding);
  EXPECT_EQ(one.report.pages_served, four.report.pages_served);
  EXPECT_EQ(one.report.pages_dropped, four.report.pages_dropped);
  EXPECT_EQ(one.report.pages_expired, four.report.pages_expired);
  EXPECT_EQ(one.report.max_queue_depth, four.report.max_queue_depth);
  EXPECT_EQ(one.report.sla_violations, four.report.sla_violations);

  const DaemonRunReport& report = one.report;

  // The scenario is genuinely past the knee...
  EXPECT_GT(report.pages_offered, 0);
  EXPECT_GT(report.pages_dropped + report.pages_expired, 0);
  // ...the golden overload band: at 2x offered load the bounded queue
  // drops a visible share but still serves most pages (the closed loop
  // throttles re-offers while a page is in flight).
  EXPECT_GE(report.drop_rate, 0.01);
  EXPECT_LE(report.drop_rate, 0.60);
  EXPECT_GT(report.pages_served,
            report.pages_dropped + report.pages_expired);

  // Bounded-queue guarantees.
  EXPECT_LE(report.max_queue_depth,
            static_cast<std::int64_t>(report.queue_max_pending));
  EXPECT_LE(report.delay_max, report.queue_lifetime_slots);
  EXPECT_GE(report.delay_p99, report.delay_p50);

  // Accounting closes exactly.
  EXPECT_EQ(report.pages_offered,
            report.pages_queued + report.pages_duplicate +
                report.pages_dropped + report.pages_unknown);
  EXPECT_EQ(report.pages_unknown, 0);
  EXPECT_EQ(one.workload_submitted,
            one.workload_served + one.workload_dropped +
                one.workload_expired + one.workload_outstanding);
  EXPECT_GE(report.sla_violations,
            report.pages_dropped + report.pages_expired);

  // The report serializes with the daemon schema markers.
  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"schema\":\"pcn.run_report.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"daemon\""), std::string::npos);
}

// The eviction policies under the same 2x overload: still bit-identical
// across thread counts, still inside the overload band — but the failure
// mass moves from tail drops to explicit evictions.
TEST(DaemonSoak, EvictionPoliciesAreDeterministicAndStayInTheOverloadBand) {
  for (const AdmissionPolicy policy :
       {AdmissionPolicy::kDropOldest, AdmissionPolicy::kPriorityDelayBound}) {
    SCOPED_TRACE(to_string(policy));
    const SoakResult one = run_soak(1, policy);
    const SoakResult four = run_soak(4, policy);

    EXPECT_EQ(counter_fingerprint(one.report),
              counter_fingerprint(four.report));
    EXPECT_EQ(one.delay_histogram, four.delay_histogram);
    EXPECT_EQ(one.flight_jsonl, four.flight_jsonl);
    EXPECT_EQ(one.workload_submitted, four.workload_submitted);
    EXPECT_EQ(one.workload_outstanding, four.workload_outstanding);

    const DaemonRunReport& report = one.report;
    EXPECT_EQ(report.queue_admission, to_string(policy));
    // Same overload band as drop_newest: a visible failure share, but a
    // served majority.
    EXPECT_GE(report.drop_rate, 0.01);
    EXPECT_LE(report.drop_rate, 0.60);
    EXPECT_GT(report.pages_served, report.pages_dropped +
                                       report.pages_evicted +
                                       report.pages_expired);
    if (policy == AdmissionPolicy::kDropOldest) {
      // drop_oldest always finds a victim: the tail-drop counter stays
      // at zero and the whole failure mass is evictions.
      EXPECT_EQ(report.pages_dropped, 0);
      EXPECT_GT(report.pages_evicted, 0);
    } else {
      // priority evicts when the newcomer is more urgent and rejects
      // otherwise; under a uniform workload both paths must trigger.
      EXPECT_GT(report.pages_evicted, 0);
    }

    // Accounting still closes exactly (evicted pages were counted as
    // queued on admission; they only join the failure numerator).
    EXPECT_EQ(report.pages_offered,
              report.pages_queued + report.pages_duplicate +
                  report.pages_dropped + report.pages_unknown);
    EXPECT_EQ(one.workload_submitted,
              one.workload_served + one.workload_dropped +
                  one.workload_expired + one.workload_outstanding);
    EXPECT_LE(report.max_queue_depth,
              static_cast<std::int64_t>(report.queue_max_pending));
  }
}

// The delay-feedback planner folds its EWMAs in serial FINALIZE, so a
// planner-steered run must stay bit-identical across thread counts too —
// including the adjustment trail itself.
TEST(DaemonSoak, FeedbackPlannerIsDeterministicAcrossThreads) {
  const SoakResult one =
      run_soak(1, AdmissionPolicy::kDropOldest,
               DelayPlanConfig::Mode::kFeedback);
  const SoakResult four =
      run_soak(4, AdmissionPolicy::kDropOldest,
               DelayPlanConfig::Mode::kFeedback);

  EXPECT_EQ(counter_fingerprint(one.report), counter_fingerprint(four.report));
  EXPECT_EQ(one.delay_histogram, four.delay_histogram);
  EXPECT_EQ(one.flight_jsonl, four.flight_jsonl);
  EXPECT_EQ(one.report.plan_effective_m, four.report.plan_effective_m);
  EXPECT_EQ(one.report.plan_widen, four.report.plan_widen);
  EXPECT_EQ(one.report.plan_narrow, four.report.plan_narrow);

  // Under sustained 2x overload the controller must have widened the
  // paging factor away from its starting point at least once.
  EXPECT_EQ(one.report.plan_mode, "feedback");
  EXPECT_GT(one.report.plan_widen, 0);
  EXPECT_GE(one.report.plan_effective_m, one.report.plan_m_start);
}

}  // namespace
}  // namespace pcn::daemon
