#include "pcn/cli/args.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>

namespace pcn::cli {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"pcnctl"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, EmptyCommandLine) {
  const Args args = parse({});
  EXPECT_EQ(args.command(), "");
  EXPECT_NO_THROW(args.reject_unconsumed());
}

TEST(Args, CommandAndFlags) {
  const Args args = parse({"plan", "--q", "0.05", "--delay", "2"});
  EXPECT_EQ(args.command(), "plan");
  EXPECT_DOUBLE_EQ(args.get_double("q"), 0.05);
  EXPECT_EQ(args.get_int("delay"), 2);
}

TEST(Args, DefaultsApplyOnlyWhenMissing) {
  const Args args = parse({"plan", "--q", "0.2"});
  EXPECT_DOUBLE_EQ(args.get_double_or("q", 0.05), 0.2);
  EXPECT_DOUBLE_EQ(args.get_double_or("c", 0.01), 0.01);
  EXPECT_EQ(args.get_int_or("max-d", 100), 100);
  EXPECT_EQ(args.get_string_or("scheme", "sdf"), "sdf");
}

TEST(Args, SwitchesAreValueless) {
  const Args args = parse({"plan", "--verbose", "--q", "0.1"});
  EXPECT_TRUE(args.get_switch("verbose"));
  EXPECT_FALSE(args.get_switch("quiet"));
}

TEST(Args, SwitchWithValueIsRejected) {
  const Args args = parse({"plan", "--verbose", "yes"});
  EXPECT_THROW(args.get_switch("verbose"), UsageError);
}

TEST(Args, MissingRequiredFlagIsReported) {
  const Args args = parse({"plan"});
  EXPECT_THROW(args.get_string("q"), UsageError);
  EXPECT_THROW(args.get_double("q"), UsageError);
  EXPECT_THROW(args.get_int("q"), UsageError);
}

TEST(Args, MalformedNumbersAreReported) {
  const Args args = parse({"plan", "--q", "fast", "--delay", "2.5"});
  EXPECT_THROW(args.get_double("q"), UsageError);
  EXPECT_THROW(args.get_int("delay"), UsageError);
}

TEST(Args, OverflowingIntegersAreRejectedNotClamped) {
  // strtoll saturates to LLONG_MAX/LLONG_MIN with ERANGE; the parser must
  // surface that, not hand a clamped value to the simulator.
  const Args args = parse({"simulate", "--slots", "99999999999999999999",
                           "--delay", "-99999999999999999999"});
  EXPECT_THROW(args.get_int("slots"), UsageError);
  EXPECT_THROW(args.get_int("delay"), UsageError);
}

TEST(Args, OverflowingDoublesAreRejectedNotInfinity) {
  const Args args = parse({"plan", "--q", "1e999", "--c", "-1e999"});
  EXPECT_THROW(args.get_double("q"), UsageError);
  EXPECT_THROW(args.get_double("c"), UsageError);
}

TEST(Args, NonFiniteAndHexNumberSpellingsAreRejected) {
  const Args args = parse({"plan", "--a", "inf", "--b", "-inf", "--c", "nan",
                           "--d", "infinity", "--e", "0x10", "--f", "0x1p4"});
  for (const char* key : {"a", "b", "c", "d", "e", "f"}) {
    EXPECT_THROW(args.get_double(key), UsageError) << "--" << key;
  }
  // Hex never parsed as an integer (base 10), but the partial-parse
  // rejection path deserves a pin too.
  EXPECT_THROW(args.get_int("e"), UsageError);
}

TEST(Args, RangeErrorsNameTheFlagAndValue) {
  const Args args = parse({"simulate", "--slots", "99999999999999999999"});
  try {
    args.get_int("slots");
    FAIL() << "expected UsageError";
  } catch (const UsageError& error) {
    EXPECT_NE(std::string(error.what()).find(
                  "flag --slots is out of range: 99999999999999999999"),
              std::string::npos);
  }
}

TEST(Args, ExtremeButRepresentableNumbersStillParse) {
  const Args args = parse({"x", "--big", "9223372036854775807", "--small",
                           "-9223372036854775808", "--tiny", "1e-320",
                           "--large", "1e308"});
  EXPECT_EQ(args.get_int("big"), INT64_MAX);
  EXPECT_EQ(args.get_int("small"), INT64_MIN);
  // Gradual underflow to a denormal is finite and acceptable.
  EXPECT_GT(args.get_double("tiny"), 0.0);
  EXPECT_DOUBLE_EQ(args.get_double("large"), 1e308);
}

TEST(Args, NegativeAndScientificNumbersParse) {
  // A leading '-' is not a flag marker ('--' is), so negative values work.
  const Args args = parse({"x", "--a", "-3", "--b", "1e-3"});
  EXPECT_EQ(args.get_int("a"), -3);
  EXPECT_DOUBLE_EQ(args.get_double("b"), 1e-3);
}

TEST(Args, DuplicateFlagsAreRejected) {
  EXPECT_THROW(parse({"plan", "--q", "0.1", "--q", "0.2"}), UsageError);
}

TEST(Args, UnconsumedPositionalIsRejected) {
  const Args args = parse({"plan", "--q", "0.1", "stray"});
  EXPECT_DOUBLE_EQ(args.get_double("q"), 0.1);
  // Commands that take no operands reject stray positionals at
  // reject_unconsumed() time, mirroring the unknown-flag check.
  EXPECT_THROW(args.reject_unconsumed(), UsageError);
}

TEST(Args, PositionalsAreCollectedInOrder) {
  const Args args = parse({"trace-summary", "first", "--q", "0.1", "second"});
  ASSERT_EQ(args.positional_count(), 2u);
  EXPECT_EQ(args.positional(0, "TRACE_FILE"), "first");
  EXPECT_EQ(args.positional(1, "OTHER"), "second");
  EXPECT_DOUBLE_EQ(args.get_double("q"), 0.1);
  EXPECT_NO_THROW(args.reject_unconsumed());
}

TEST(Args, MissingPositionalNamesTheOperand) {
  const Args args = parse({"trace-summary"});
  try {
    args.positional(0, "TRACE_FILE");
    FAIL() << "expected UsageError";
  } catch (const UsageError& error) {
    EXPECT_NE(std::string(error.what()).find(
                  "missing required argument: TRACE_FILE"),
              std::string::npos);
  }
}

TEST(Args, UnknownFlagsAreCaughtByRejectUnconsumed) {
  const Args args = parse({"plan", "--q", "0.1", "--trehshold", "4"});
  EXPECT_DOUBLE_EQ(args.get_double("q"), 0.1);
  EXPECT_THROW(args.reject_unconsumed(), UsageError);
}

TEST(Args, ConsumedFlagsPassRejectUnconsumed) {
  const Args args = parse({"plan", "--q", "0.1", "--fast"});
  EXPECT_DOUBLE_EQ(args.get_double("q"), 0.1);
  EXPECT_TRUE(args.get_switch("fast"));
  EXPECT_NO_THROW(args.reject_unconsumed());
}

TEST(Args, HasMarksAsConsumed) {
  const Args args = parse({"plan", "--delay", "3"});
  EXPECT_TRUE(args.has("delay"));
  EXPECT_NO_THROW(args.reject_unconsumed());
}

TEST(Args, FlagWithoutCommandIsAllowed) {
  const Args args = parse({"--q", "0.1"});
  EXPECT_EQ(args.command(), "");
  EXPECT_DOUBLE_EQ(args.get_double("q"), 0.1);
}

}  // namespace
}  // namespace pcn::cli
