#include "pcn/linalg/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "pcn/common/error.hpp"
#include "pcn/stats/rng.hpp"

namespace pcn::linalg {
namespace {

TEST(LuSolve, SolvesAKnownSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 2; a.at(0, 1) = 1;
  a.at(1, 0) = 1; a.at(1, 1) = 3;
  const std::vector<double> x = lu_solve(a, {5.0, 10.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuSolve, HandlesSystemsRequiringPivoting) {
  // Zero leading pivot forces a row swap.
  Matrix a(2, 2);
  a.at(0, 0) = 0; a.at(0, 1) = 1;
  a.at(1, 0) = 1; a.at(1, 1) = 0;
  const std::vector<double> x = lu_solve(a, {3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuSolve, RejectsSingularMatrices) {
  Matrix a(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2;
  a.at(1, 0) = 2; a.at(1, 1) = 4;
  EXPECT_THROW(lu_solve(a, {1.0, 2.0}), InvalidArgument);
}

TEST(LuSolve, RejectsNonSquareOrMismatchedSizes) {
  EXPECT_THROW(lu_solve(Matrix(2, 3), {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(lu_solve(Matrix(2, 2), {1.0}), InvalidArgument);
}

TEST(LuSolve, RandomSystemsRoundTrip) {
  stats::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + trial % 12;
    Matrix a(n, n);
    std::vector<double> x_true(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.next_unit() * 4.0 - 2.0;
      for (std::size_t j = 0; j < n; ++j) {
        a.at(i, j) = rng.next_unit() * 2.0 - 1.0;
      }
      a.at(i, i) += static_cast<double>(n);  // diagonally dominant
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
    }
    const std::vector<double> x = lu_solve(a, b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-9) << "trial " << trial << " i " << i;
    }
  }
}

TEST(StationaryDistribution, TwoStateChainHasKnownSolution) {
  // P = [[1-a, a], [b, 1-b]] -> pi = (b, a) / (a + b).
  const double a = 0.3;
  const double b = 0.1;
  Matrix p(2, 2);
  p.at(0, 1) = a;
  p.at(1, 0) = b;
  const std::vector<double> pi = stationary_distribution(p);
  EXPECT_NEAR(pi[0], b / (a + b), 1e-12);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-12);
}

TEST(StationaryDistribution, UniformForDoublyStochasticChain) {
  // Cyclic walk: stationary distribution is uniform.
  const std::size_t n = 5;
  Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    p.at(i, (i + 1) % n) = 0.4;
    p.at(i, (i + n - 1) % n) = 0.4;
  }
  const std::vector<double> pi = stationary_distribution(p);
  for (double v : pi) EXPECT_NEAR(v, 1.0 / static_cast<double>(n), 1e-12);
}

TEST(StationaryDistribution, SumsToOneAndNonNegative) {
  stats::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + trial % 8;
    Matrix p(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      double mass = 0.9;  // leave some self-loop probability
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double share = mass * rng.next_unit() * 0.5;
        p.at(i, j) = share;
        mass -= share;
      }
    }
    const std::vector<double> pi = stationary_distribution(p);
    double total = 0.0;
    for (double v : pi) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-10);
  }
}

TEST(StationaryDistribution, RejectsNegativeProbabilitiesAndExcessMass) {
  Matrix negative(2, 2);
  negative.at(0, 1) = -0.1;
  EXPECT_THROW(stationary_distribution(negative), InvalidArgument);

  Matrix heavy(2, 2);
  heavy.at(0, 1) = 0.7;
  heavy.at(1, 0) = 0.6;
  heavy.at(0, 0) = 0.0;  // row 0 mass fine
  heavy.at(1, 1) = 0.0;
  heavy.at(0, 1) = 1.2;  // row 0 off-diagonal exceeds 1
  EXPECT_THROW(stationary_distribution(heavy), InvalidArgument);
}

}  // namespace
}  // namespace pcn::linalg
