#include "pcn/linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"

namespace pcn::linalg {
namespace {

TEST(Matrix, ZeroInitialized) {
  const Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(m.at(i, j), 0.0);
    }
  }
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  const Matrix eye = Matrix::identity(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(eye.at(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, AtRejectsOutOfRangeIndices) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, 2), InvalidArgument);
  const Matrix& cm = m;
  EXPECT_THROW(cm.at(2, 0), InvalidArgument);
}

TEST(Matrix, MultiplyComputesTheProduct) {
  Matrix a(2, 3);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(0, 2) = 3;
  a.at(1, 0) = 4; a.at(1, 1) = 5; a.at(1, 2) = 6;
  Matrix b(3, 2);
  b.at(0, 0) = 7;  b.at(0, 1) = 8;
  b.at(1, 0) = 9;  b.at(1, 1) = 10;
  b.at(2, 0) = 11; b.at(2, 1) = 12;

  const Matrix c = a.multiply(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_EQ(c.at(0, 0), 58.0);
  EXPECT_EQ(c.at(0, 1), 64.0);
  EXPECT_EQ(c.at(1, 0), 139.0);
  EXPECT_EQ(c.at(1, 1), 154.0);
}

TEST(Matrix, MultiplyByIdentityIsANoOp) {
  Matrix a(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      a.at(i, j) = static_cast<double>(i * 3 + j + 1);
    }
  }
  const Matrix product = a.multiply(Matrix::identity(3));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(product.at(i, j), a.at(i, j));
    }
  }
}

TEST(Matrix, MultiplyRejectsDimensionMismatch) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), InvalidArgument);
}

TEST(Matrix, TransposedSwapsIndices) {
  Matrix a(2, 3);
  a.at(0, 2) = 5.0;
  a.at(1, 0) = -2.0;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.at(2, 0), 5.0);
  EXPECT_EQ(t.at(0, 1), -2.0);
}

TEST(Matrix, MaxAbsFindsLargestMagnitude) {
  Matrix a(2, 2);
  a.at(0, 1) = -7.5;
  a.at(1, 0) = 3.0;
  EXPECT_EQ(a.max_abs(), 7.5);
}

}  // namespace
}  // namespace pcn::linalg
