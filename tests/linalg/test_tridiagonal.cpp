#include "pcn/linalg/tridiagonal.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"
#include "pcn/linalg/lu.hpp"
#include "pcn/stats/rng.hpp"

namespace pcn::linalg {
namespace {

TEST(Tridiagonal, SolvesOneByOneSystem) {
  const auto x = solve_tridiagonal({}, {4.0}, {}, {8.0});
  ASSERT_EQ(x.size(), 1u);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
}

TEST(Tridiagonal, SolvesAKnownThreeByThreeSystem) {
  //  [ 2 -1  0 ] [x0]   [1]
  //  [-1  2 -1 ] [x1] = [0]   ->  x = (3/4, 1/2, 1/4)... solve below
  //  [ 0 -1  2 ] [x2]   [0]
  const auto x =
      solve_tridiagonal({-1.0, -1.0}, {2.0, 2.0, 2.0}, {-1.0, -1.0},
                        {1.0, 0.0, 0.0});
  ASSERT_EQ(x.size(), 3u);
  EXPECT_NEAR(x[0], 0.75, 1e-12);
  EXPECT_NEAR(x[1], 0.5, 1e-12);
  EXPECT_NEAR(x[2], 0.25, 1e-12);
}

TEST(Tridiagonal, MatchesDenseLuOnRandomDominantSystems) {
  stats::Rng rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 2 + trial % 15;
    std::vector<double> lower(n - 1), upper(n - 1), diag(n), rhs(n);
    for (std::size_t i = 0; i < n - 1; ++i) {
      lower[i] = rng.next_unit() - 0.5;
      upper[i] = rng.next_unit() - 0.5;
    }
    for (std::size_t i = 0; i < n; ++i) {
      diag[i] = 3.0 + rng.next_unit();  // dominant
      rhs[i] = rng.next_unit() * 10.0 - 5.0;
    }

    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      a.at(i, i) = diag[i];
      if (i > 0) a.at(i, i - 1) = lower[i - 1];
      if (i + 1 < n) a.at(i, i + 1) = upper[i];
    }

    const auto fast = solve_tridiagonal(lower, diag, upper, rhs);
    const auto dense = lu_solve(a, rhs);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(fast[i], dense[i], 1e-10) << "trial " << trial;
    }
  }
}

TEST(Tridiagonal, RejectsSizeMismatches) {
  EXPECT_THROW(solve_tridiagonal({1.0}, {1.0}, {}, {1.0}), InvalidArgument);
  EXPECT_THROW(solve_tridiagonal({}, {1.0}, {1.0}, {1.0}), InvalidArgument);
  EXPECT_THROW(solve_tridiagonal({}, {1.0}, {}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(solve_tridiagonal({}, {}, {}, {}), InvalidArgument);
}

TEST(Tridiagonal, RejectsZeroPivot) {
  EXPECT_THROW(solve_tridiagonal({}, {0.0}, {}, {1.0}), InvalidArgument);
  // Fill-in pivot becomes zero: diag[1] - lower[0]*upper[0]/diag[0] = 0.
  EXPECT_THROW(
      solve_tridiagonal({1.0}, {1.0, 1.0}, {1.0}, {1.0, 1.0}),
      InvalidArgument);
}

}  // namespace
}  // namespace pcn::linalg
