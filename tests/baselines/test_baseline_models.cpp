#include "pcn/baselines/baseline_models.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"
#include "pcn/geometry/ring_metrics.hpp"
#include "pcn/sim/network.hpp"

namespace pcn::baselines {
namespace {

constexpr CostWeights kWeights{100.0, 10.0};

// --- walk distributions ------------------------------------------------------

TEST(WalkDistribution, ZeroMovesIsADeltaAtTheCenter) {
  const auto dist = walk_ring_distribution(Dimension::kTwoD, 0);
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_DOUBLE_EQ(dist[0], 1.0);
}

TEST(WalkDistribution, OneMoveAlwaysLeavesTheCenter) {
  for (Dimension dim : {Dimension::kOneD, Dimension::kTwoD}) {
    const auto dist = walk_ring_distribution(dim, 1);
    ASSERT_EQ(dist.size(), 2u);
    EXPECT_DOUBLE_EQ(dist[0], 0.0);
    EXPECT_DOUBLE_EQ(dist[1], 1.0);
  }
}

TEST(WalkDistribution, OneDimTwoMovesIsTheSymmetricWalk) {
  // From ring 1: back with 1/2, out with 1/2.
  const auto dist = walk_ring_distribution(Dimension::kOneD, 2);
  EXPECT_DOUBLE_EQ(dist[0], 0.5);
  EXPECT_DOUBLE_EQ(dist[1], 0.0);
  EXPECT_DOUBLE_EQ(dist[2], 0.5);
}

TEST(WalkDistribution, TwoDimTwoMovesMatchesRingOneEdgeCounts) {
  // From ring 1: inward 1/6, sideways 1/3 (stay on ring 1), outward 1/2.
  const auto dist = walk_ring_distribution(Dimension::kTwoD, 2);
  EXPECT_NEAR(dist[0], 1.0 / 6, 1e-15);
  EXPECT_NEAR(dist[1], 1.0 / 3, 1e-15);
  EXPECT_NEAR(dist[2], 0.5, 1e-15);
}

TEST(WalkDistribution, IsNormalizedForManyMoves) {
  for (Dimension dim : {Dimension::kOneD, Dimension::kTwoD}) {
    const auto dist = walk_ring_distribution(dim, 40);
    double total = 0.0;
    for (double p : dist) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(LazyWalkDistribution, ZeroMoveProbabilityStaysPut) {
  const auto dist =
      lazy_walk_ring_distribution(Dimension::kTwoD, 0.0, 25);
  EXPECT_DOUBLE_EQ(dist[0], 1.0);
}

TEST(LazyWalkDistribution, FullMoveProbabilityIsThePureWalk) {
  const auto lazy = lazy_walk_ring_distribution(Dimension::kTwoD, 1.0, 7);
  const auto pure = walk_ring_distribution(Dimension::kTwoD, 7);
  for (std::size_t i = 0; i < pure.size(); ++i) {
    EXPECT_NEAR(lazy[i], pure[i], 1e-14);
  }
}

TEST(LazyWalkDistribution, MeanDistanceGrowsWithMoveProbability) {
  auto mean = [](const std::vector<double>& dist) {
    double value = 0.0;
    for (std::size_t i = 0; i < dist.size(); ++i) {
      value += static_cast<double>(i) * dist[i];
    }
    return value;
  };
  const auto slow = lazy_walk_ring_distribution(Dimension::kTwoD, 0.1, 30);
  const auto fast = lazy_walk_ring_distribution(Dimension::kTwoD, 0.6, 30);
  EXPECT_LT(mean(slow), mean(fast));
}

// --- movement-based analytic model -------------------------------------------

TEST(MovementModel, MEqualsOneIsTheDistanceZeroPolicy) {
  // Updating after every move is exactly the d = 0 distance policy:
  // C_u = q U, C_v = c g(0) V.
  const MobilityProfile profile{0.1, 0.02};
  const BaselineCosts costs = movement_based_costs(
      Dimension::kTwoD, profile, kWeights, 1, DelayBound(1));
  EXPECT_NEAR(costs.update, 0.1 * kWeights.update_cost, 1e-12);
  EXPECT_NEAR(costs.paging, 0.02 * kWeights.poll_cost, 1e-12);
  EXPECT_DOUBLE_EQ(costs.expected_delay_cycles, 1.0);
}

TEST(MovementModel, UpdateRateDecreasesWithTheThreshold) {
  const MobilityProfile profile{0.2, 0.02};
  double previous = 1e9;
  for (int max_moves : {1, 2, 4, 8, 16}) {
    const double update = movement_based_costs(Dimension::kTwoD, profile,
                                               kWeights, max_moves,
                                               DelayBound(2))
                              .update;
    EXPECT_LT(update, previous) << "M = " << max_moves;
    previous = update;
  }
}

class MovementModelVsSimulation
    : public ::testing::TestWithParam<std::tuple<Dimension, int>> {};

TEST_P(MovementModelVsSimulation, PredictsTheSimulatedCosts) {
  const auto& [dim, max_moves] = GetParam();
  const MobilityProfile profile{0.2, 0.02};
  const DelayBound bound(2);
  const BaselineCosts predicted =
      movement_based_costs(dim, profile, kWeights, max_moves, bound);

  sim::Network network(
      sim::NetworkConfig{dim, sim::SlotSemantics::kChainFaithful, 0xabc},
      kWeights);
  const sim::TerminalId id = network.add_terminal(
      sim::make_movement_terminal(dim, profile, max_moves, bound));
  network.run(400000);
  const sim::TerminalMetrics& m = network.metrics(id);

  EXPECT_NEAR(m.update_cost_per_slot(), predicted.update,
              0.05 * predicted.update + 1e-3);
  EXPECT_NEAR(m.paging_cost_per_slot(), predicted.paging,
              0.05 * predicted.paging + 1e-3);
  EXPECT_NEAR(m.paging_cycles.mean(), predicted.expected_delay_cycles,
              0.05);
}

INSTANTIATE_TEST_SUITE_P(
    GeometriesByThreshold, MovementModelVsSimulation,
    ::testing::Combine(::testing::Values(Dimension::kOneD, Dimension::kTwoD),
                       ::testing::Values(1, 3, 6)));

// --- time-based analytic model ------------------------------------------------

TEST(TimeModel, PeriodOneUpdatesEverySlot) {
  // T = 1: an update fires every slot; calls are paged at the fresh center.
  const MobilityProfile profile{0.1, 0.02};
  const BaselineCosts costs =
      time_based_costs(Dimension::kTwoD, profile, kWeights, 1);
  EXPECT_NEAR(costs.update, kWeights.update_cost, 1e-12);
  EXPECT_NEAR(costs.paging, 0.02 * kWeights.poll_cost, 1e-12);
  EXPECT_DOUBLE_EQ(costs.expected_delay_cycles, 1.0);
}

TEST(TimeModel, UpdateRateApproachesOneOverPeriodForRareCalls) {
  const MobilityProfile profile{0.1, 0.0001};
  const BaselineCosts costs =
      time_based_costs(Dimension::kTwoD, profile, kWeights, 50);
  EXPECT_NEAR(costs.update, kWeights.update_cost / 50.0,
              kWeights.update_cost / 50.0 * 0.01);
}

class TimeModelVsSimulation
    : public ::testing::TestWithParam<std::tuple<Dimension, int>> {};

TEST_P(TimeModelVsSimulation, PredictsTheSimulatedCosts) {
  const auto& [dim, period] = GetParam();
  const MobilityProfile profile{0.2, 0.02};
  const BaselineCosts predicted =
      time_based_costs(dim, profile, kWeights, period);

  sim::Network network(
      sim::NetworkConfig{dim, sim::SlotSemantics::kChainFaithful, 0xdef},
      kWeights);
  const sim::TerminalId id = network.add_terminal(
      sim::make_time_terminal(dim, profile, period));
  network.run(400000);
  const sim::TerminalMetrics& m = network.metrics(id);

  EXPECT_NEAR(m.update_cost_per_slot(), predicted.update,
              0.05 * predicted.update + 1e-3);
  EXPECT_NEAR(m.paging_cost_per_slot(), predicted.paging,
              0.05 * predicted.paging + 2e-3);
  EXPECT_NEAR(m.paging_cycles.mean(), predicted.expected_delay_cycles,
              0.06);
}

INSTANTIATE_TEST_SUITE_P(
    GeometriesByPeriod, TimeModelVsSimulation,
    ::testing::Combine(::testing::Values(Dimension::kOneD, Dimension::kTwoD),
                       ::testing::Values(1, 10, 40)));

TEST(TimeModel, MultipleRingsPerCycleTradeCellsForDelay) {
  const MobilityProfile profile{0.2, 0.02};
  const BaselineCosts one =
      time_based_costs(Dimension::kTwoD, profile, kWeights, 40, 1);
  const BaselineCosts three =
      time_based_costs(Dimension::kTwoD, profile, kWeights, 40, 3);
  EXPECT_LT(three.expected_delay_cycles, one.expected_delay_cycles);
  EXPECT_GT(three.paging, one.paging);
}

// --- validation of inputs ------------------------------------------------------

TEST(BaselineModels, ValidateParameters) {
  const MobilityProfile profile{0.1, 0.02};
  EXPECT_THROW(movement_based_costs(Dimension::kOneD, profile, kWeights, 0,
                                    DelayBound(1)),
               InvalidArgument);
  EXPECT_THROW(time_based_costs(Dimension::kOneD, profile, kWeights, 0),
               InvalidArgument);
  EXPECT_THROW(time_based_costs(Dimension::kOneD, profile, kWeights, 5, 0),
               InvalidArgument);
  EXPECT_THROW(walk_ring_distribution(Dimension::kOneD, -1),
               InvalidArgument);
  EXPECT_THROW(lazy_walk_ring_distribution(Dimension::kOneD, 1.5, 3),
               InvalidArgument);
}

}  // namespace
}  // namespace pcn::baselines
