// Fleet runner for the differential suites: simulates several independent
// distance-policy terminals with one profile and aggregates their metrics.
// Terminals are statistically independent replicas (per-terminal split RNG
// streams), so the aggregate behaves like one run of terminals * slots
// stationary slots — tighter confidence bands per unit of wall clock — and
// a multi-terminal fleet genuinely exercises the sharded parallel path of
// Network::run at thread counts > 1.
#pragma once

#include <cstdint>
#include <vector>

#include "pcn/sim/network.hpp"
#include "support/generators.hpp"

namespace pcn::proptest {

/// Sums of the per-terminal metrics a differential test compares against
/// the analytical model.
struct FleetMetrics {
  std::int64_t slots = 0;
  std::int64_t moves = 0;
  std::int64_t calls = 0;
  std::int64_t updates = 0;
  std::int64_t polled_cells = 0;
  double update_cost = 0.0;
  double paging_cost = 0.0;
  stats::Histogram paging_cycles;
  stats::Histogram ring_distance;

  double update_cost_per_slot() const;
  double paging_cost_per_slot() const;
  double cost_per_slot() const;

  void accumulate(const sim::TerminalMetrics& metrics);
};

/// Runs `terminals` distance-policy replicas of `scenario` for
/// `slots_per_terminal` slots each and returns the per-terminal metrics
/// (index = attach order) — callers aggregate or diff them as needed.
/// `engine` pins the slot-loop implementation (the engine-equivalence
/// suites force kReference / kSoa; the default auto-selects).
std::vector<sim::TerminalMetrics> run_distance_fleet(
    const Scenario& scenario, sim::SlotSemantics semantics, int threads,
    int terminals, std::int64_t slots_per_terminal,
    sim::SimEngine engine = sim::SimEngine::kAuto);

/// Aggregate of run_distance_fleet.
FleetMetrics run_distance_fleet_aggregate(const Scenario& scenario,
                                          sim::SlotSemantics semantics,
                                          int threads, int terminals,
                                          std::int64_t slots_per_terminal);

/// Exact equality of every field the simulator reports, histograms
/// included — the thread-determinism check.
bool metrics_identical(const sim::TerminalMetrics& a,
                       const sim::TerminalMetrics& b);

}  // namespace pcn::proptest
