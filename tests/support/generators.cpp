#include "support/generators.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pcn::proptest {

std::int64_t ScenarioRng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return rng_.next_in_range(lo, hi);
}

double ScenarioRng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * rng_.next_unit();
}

double ScenarioRng::rounded_real(double lo, double hi, int decimals) {
  const double scale = std::pow(10.0, decimals);
  const double value = std::round(uniform_real(lo, hi) * scale) / scale;
  return std::clamp(value, lo, hi);
}

bool ScenarioRng::coin(double p) { return rng_.next_bernoulli(p); }

Dimension ScenarioRng::dimension() {
  return coin() ? Dimension::kTwoD : Dimension::kOneD;
}

MobilityProfile ScenarioRng::mobility(const ScenarioLimits& limits) {
  MobilityProfile profile;
  profile.move_prob = rounded_real(limits.min_q, limits.max_q, 3);
  profile.call_prob = rounded_real(limits.min_c, limits.max_c, 3);
  profile.validate();
  return profile;
}

int ScenarioRng::threshold(const ScenarioLimits& limits) {
  return static_cast<int>(
      uniform_int(limits.min_threshold, limits.max_threshold));
}

DelayBound ScenarioRng::delay_bound(const ScenarioLimits& limits) {
  if (limits.allow_unbounded_delay && coin(0.2)) {
    return DelayBound::unbounded();
  }
  return DelayBound(static_cast<int>(uniform_int(1, limits.max_delay)));
}

CostWeights ScenarioRng::weights(const ScenarioLimits& limits) {
  CostWeights weights;
  weights.update_cost =
      rounded_real(limits.min_update_cost, limits.max_update_cost, 0);
  weights.poll_cost =
      rounded_real(limits.min_poll_cost, limits.max_poll_cost, 0);
  weights.validate();
  return weights;
}

Scenario Scenario::generate(std::uint64_t seed, const ScenarioLimits& limits) {
  ScenarioRng rng(seed);
  Scenario scenario;
  scenario.dim = rng.dimension();
  scenario.profile = rng.mobility(limits);
  scenario.threshold = rng.threshold(limits);
  scenario.bound = rng.delay_bound(limits);
  scenario.weights = rng.weights(limits);
  scenario.seed = seed;
  return scenario;
}

std::string Scenario::describe() const {
  char line[160];
  std::snprintf(line, sizeof line,
                "%s q=%.3f c=%.3f d=%d m=%s U=%.0f V=%.0f seed=0x%llx",
                to_string(dim).c_str(), profile.move_prob, profile.call_prob,
                threshold, to_string(bound).c_str(), weights.update_cost,
                weights.poll_cost,
                static_cast<unsigned long long>(seed));
  return line;
}

bool operator==(const Scenario& a, const Scenario& b) {
  return a.dim == b.dim && a.profile.move_prob == b.profile.move_prob &&
         a.profile.call_prob == b.profile.call_prob &&
         a.threshold == b.threshold && a.bound == b.bound &&
         a.weights.update_cost == b.weights.update_cost &&
         a.weights.poll_cost == b.weights.poll_cost && a.seed == b.seed;
}

std::vector<int> shrink_int(int value, int floor) {
  std::vector<int> candidates;
  const auto push = [&](int v) {
    if (v >= floor && v < value &&
        std::find(candidates.begin(), candidates.end(), v) ==
            candidates.end()) {
      candidates.push_back(v);
    }
  };
  push(floor);
  push(floor + (value - floor) / 2);
  push(value - 1);
  return candidates;
}

std::vector<Scenario> shrink_candidates(const Scenario& scenario) {
  // Floors mirror the default ScenarioLimits so shrunk scenarios stay in
  // every suite's valid range.
  constexpr double kFloorQ = 0.01;
  constexpr double kFloorC = 0.002;

  std::vector<Scenario> out;
  const auto push = [&](const Scenario& candidate) {
    if (candidate == scenario) return;
    if (std::find(out.begin(), out.end(), candidate) == out.end()) {
      out.push_back(candidate);
    }
  };

  if (scenario.dim == Dimension::kTwoD) {
    Scenario v = scenario;
    v.dim = Dimension::kOneD;
    push(v);
  }
  for (int t : shrink_int(scenario.threshold, 0)) {
    Scenario v = scenario;
    v.threshold = t;
    push(v);
  }
  if (scenario.bound.is_unbounded()) {
    Scenario v = scenario;
    v.bound = DelayBound(1);
    push(v);
  } else {
    for (int m : shrink_int(scenario.bound.cycles(), 1)) {
      Scenario v = scenario;
      v.bound = DelayBound(m);
      push(v);
    }
  }
  for (double q : {0.05, std::round(scenario.profile.move_prob * 500.0) / 1000.0}) {
    if (q >= kFloorQ && q < scenario.profile.move_prob) {
      Scenario v = scenario;
      v.profile.move_prob = q;
      push(v);
    }
  }
  for (double c : {0.01, std::round(scenario.profile.call_prob * 500.0) / 1000.0}) {
    if (c >= kFloorC && c < scenario.profile.call_prob) {
      Scenario v = scenario;
      v.profile.call_prob = c;
      push(v);
    }
  }
  if (scenario.weights.update_cost != 100.0 ||
      scenario.weights.poll_cost != 10.0) {
    Scenario v = scenario;
    v.weights = CostWeights{100.0, 10.0};
    push(v);
  }
  return out;
}

}  // namespace pcn::proptest
