#include "support/oracles.hpp"

#include <cstdio>
#include <limits>

#include "pcn/common/error.hpp"
#include "pcn/costs/partition.hpp"
#include "pcn/linalg/lu.hpp"
#include "pcn/markov/steady_state.hpp"

namespace pcn::proptest {
namespace {

// Widens every normal-approximation band to cover what the exact state
// functional misses: the correlation between a slot's reward noise and the
// chain's next state, and CLT tail error at finite run lengths.  Calibrated
// in docs/testing.md against repeated independent simulator runs.
constexpr double kCorrelationSafety = 1.5;

// The per-bin occupancy test ignores cross-bin correlations (bins sum to
// one), so the summed statistic is only approximately chi-square; the
// acceptance threshold doubles to absorb that.
constexpr double kGofSafety = 2.0;

double dot(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace

std::string to_string(const Band& band) {
  char line[96];
  std::snprintf(line, sizeof line, "%.6f ± %.6f", band.center,
                band.halfwidth);
  return line;
}

double asymptotic_variance(const linalg::Matrix& transition,
                           std::span<const double> pi,
                           std::span<const double> f) {
  const std::size_t n = pi.size();
  PCN_EXPECT(transition.rows() == n && transition.cols() == n &&
                 f.size() == n,
             "asymptotic_variance: dimension mismatch");
  const double mean = dot(pi, f);
  std::vector<double> centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = f[i] - mean;

  // Fundamental-matrix system (I - P + 1 pi) g = f~; nonsingular for an
  // ergodic chain, and the solution automatically satisfies pi g = 0.
  linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a.at(i, j) = (i == j ? 1.0 : 0.0) - transition.at(i, j) + pi[j];
    }
  }
  const std::vector<double> g = linalg::lu_solve(std::move(a), centered);

  double sigma2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sigma2 += pi[i] * (2.0 * centered[i] * g[i] - centered[i] * centered[i]);
  }
  return std::max(sigma2, 0.0);
}

CostBands predicted_cost_bands(const costs::CostModel& model, int threshold,
                               DelayBound bound, std::int64_t slots,
                               double z) {
  PCN_EXPECT(slots > 0, "predicted_cost_bands: slots must be positive");
  const std::size_t n = static_cast<std::size_t>(threshold) + 1;
  const std::vector<double> pi = model.steady_state(threshold);
  const costs::Partition partition = model.partition(threshold, bound);
  const linalg::Matrix transition =
      markov::transition_matrix(model.spec(), threshold);
  const Dimension dim = model.dimension();
  const double update_weight = model.weights().update_cost;
  const double poll_weight = model.weights().poll_cost;
  const double call_prob = model.spec().call();

  // Ring -> subarea index and cells polled when the terminal is found
  // there (the cumulative subarea sizes w_j of eqs. 63-65).
  std::vector<int> subarea_of(n, 0);
  std::vector<double> polled_if_here(n, 0.0);
  double cumulative_cells = 0.0;
  for (int j = 0; j < partition.subarea_count(); ++j) {
    cumulative_cells += static_cast<double>(partition.cell_count(dim, j));
    for (int ring : partition.rings(j)) {
      subarea_of[static_cast<std::size_t>(ring)] = j;
      polled_if_here[static_cast<std::size_t>(ring)] = cumulative_cells;
    }
  }

  // Per-state conditional means and variances of the one-slot rewards.
  // The update reward lives on state d only; its conditional rate is read
  // off the model's own C_u so band centers match the model exactly
  // (including the legacy d = 0 option).
  std::vector<double> update_mean(n, 0.0), update_var(n, 0.0);
  const double boundary_pi = pi[n - 1];
  const double update_rate =
      boundary_pi > 0.0 ? model.update_cost(threshold) /
                              (update_weight * boundary_pi)
                        : 0.0;
  update_mean[n - 1] = update_weight * update_rate;
  update_var[n - 1] =
      update_weight * update_weight * update_rate * (1.0 - update_rate);

  std::vector<double> paging_mean(n), paging_var(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double cost_if_called = poll_weight * polled_if_here[i];
    paging_mean[i] = call_prob * cost_if_called;
    paging_var[i] =
        call_prob * (1.0 - call_prob) * cost_if_called * cost_if_called;
  }

  // Under chain-faithful semantics the update (outward move at d) and the
  // call are competing events, so the total reward's second moment is the
  // sum of the exclusive branches.
  std::vector<double> total_mean(n), total_var(n);
  for (std::size_t i = 0; i < n; ++i) {
    total_mean[i] = update_mean[i] + paging_mean[i];
    const double second_moment =
        update_weight * update_weight * update_rate *
            (i == n - 1 ? 1.0 : 0.0) +
        call_prob * poll_weight * polled_if_here[i] * poll_weight *
            polled_if_here[i];
    total_var[i] = std::max(second_moment - total_mean[i] * total_mean[i],
                            0.0);
  }

  const auto band_for = [&](std::span<const double> mean,
                            std::span<const double> cond_var) {
    const double center = dot(pi, mean);
    const double sigma2 =
        dot(pi, cond_var) + asymptotic_variance(transition, pi, mean);
    return Band{center, z * kCorrelationSafety *
                            std::sqrt(sigma2 / static_cast<double>(slots))};
  };

  CostBands bands;
  bands.update = band_for(update_mean, update_var);
  bands.paging = band_for(paging_mean, paging_var);
  bands.total = band_for(total_mean, total_var);

  // Mean paging delay: a ratio estimator over the ~c*slots call slots.
  // With h_t = 1{call}(D(X_t) - mu) the estimator error is sum(h)/(c*n),
  // and sum(h) gets the same exact-variance treatment as the costs.
  std::vector<double> delay_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    delay_of[i] = static_cast<double>(subarea_of[i] + 1);
  }
  const double mean_delay = dot(pi, delay_of);
  std::vector<double> h_mean(n), h_var(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double centered = delay_of[i] - mean_delay;
    h_mean[i] = call_prob * centered;
    h_var[i] = call_prob * (1.0 - call_prob) * centered * centered;
  }
  const double h_sigma2 =
      dot(pi, h_var) + asymptotic_variance(transition, pi, h_mean);
  bands.expected_calls = call_prob * static_cast<double>(slots);
  bands.delay =
      Band{mean_delay,
           z * kCorrelationSafety *
               std::sqrt(h_sigma2 / static_cast<double>(slots)) / call_prob};
  return bands;
}

std::string GofResult::describe() const {
  char line[96];
  std::snprintf(line, sizeof line, "chi2=%.2f %s %.2f (dof %d)", statistic,
                accepted ? "<=" : ">", critical, dof);
  return line;
}

GofResult occupancy_goodness_of_fit(const costs::CostModel& model,
                                    int threshold,
                                    const stats::Histogram& occupancy,
                                    double alpha) {
  GofResult result;
  const std::int64_t samples = occupancy.total();
  PCN_EXPECT(samples > 0, "occupancy_goodness_of_fit: empty histogram");
  if (occupancy.max_value() > threshold) {
    // The simulator can never be further than d rings from the network's
    // knowledge center; any such mass is a hard modeling violation.
    result.accepted = false;
    result.statistic = std::numeric_limits<double>::infinity();
    return result;
  }

  const std::vector<double> pi = model.steady_state(threshold);
  const linalg::Matrix transition =
      markov::transition_matrix(model.spec(), threshold);
  const auto n = static_cast<std::size_t>(threshold) + 1;
  std::vector<double> indicator(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double expected_count = pi[i] * static_cast<double>(samples);
    if (expected_count < 10.0) continue;  // normal approximation invalid
    indicator.assign(n, 0.0);
    indicator[i] = 1.0;
    const double sigma2 =
        std::max(asymptotic_variance(transition, pi, indicator), 1e-18);
    const double diff =
        occupancy.fraction(static_cast<int>(i)) - pi[i];
    result.statistic += diff * diff * static_cast<double>(samples) / sigma2;
    ++result.dof;
  }
  result.critical =
      result.dof > 0 ? kGofSafety * chi_square_critical(result.dof, alpha)
                     : 0.0;
  result.accepted = result.dof == 0 || result.statistic <= result.critical;
  return result;
}

double chi_square_critical(int dof, double alpha) {
  PCN_EXPECT(dof >= 1 && alpha > 0.0 && alpha < 1.0,
             "chi_square_critical: need dof >= 1 and alpha in (0,1)");
  // Wilson-Hilferty: (X/k)^(1/3) is approximately normal with mean
  // 1 - 2/(9k) and variance 2/(9k).
  const double k = static_cast<double>(dof);
  const double z = normal_quantile(1.0 - alpha);
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

double normal_quantile(double p) {
  PCN_EXPECT(p > 0.0 && p < 1.0, "normal_quantile: p must be in (0,1)");
  // Acklam's rational approximation (relative error < 1.15e-9).
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace pcn::proptest
