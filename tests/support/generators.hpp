// Seeded scenario generation for the property-based differential suites.
//
// Every randomized test derives all of its randomness from one 64-bit
// seed: the scenario parameters (geometry, mobility profile, threshold,
// delay bound, cost weights) come from a ScenarioRng stream, and the same
// seed doubles as the simulator seed, so a failing case is reproducible
// from the seed alone (property.hpp prints the repro line and shrinks the
// scenario before reporting).
//
// Generated rates are rounded to a few decimals so that a repro line like
// "2-D q=0.125 c=0.010 d=4 m=2" can be retyped into a unit test verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pcn/common/params.hpp"
#include "pcn/stats/rng.hpp"

namespace pcn::proptest {

/// Bounds for Scenario::generate.  The defaults stay inside the paper's
/// operating regime (small per-slot rates, q + c well below 1) while
/// covering both geometries and the full bounded-delay range.
struct ScenarioLimits {
  double min_q = 0.01;
  double max_q = 0.4;
  double min_c = 0.002;
  double max_c = 0.04;
  int min_threshold = 0;
  int max_threshold = 8;
  int max_delay = 4;              ///< delay bounds are drawn from [1, max_delay]
  bool allow_unbounded_delay = false;
  double min_update_cost = 20.0;
  double max_update_cost = 400.0;
  double min_poll_cost = 1.0;
  double max_poll_cost = 20.0;
};

/// A seeded stream of scenario ingredients (wraps stats::Rng).
class ScenarioRng {
 public:
  explicit ScenarioRng(std::uint64_t seed) : rng_(seed) {}

  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  double uniform_real(double lo, double hi);
  /// Uniform in [lo, hi] rounded to `decimals` places, clamped back into
  /// the interval (readable repro lines).
  double rounded_real(double lo, double hi, int decimals);
  bool coin(double p = 0.5);

  Dimension dimension();
  MobilityProfile mobility(const ScenarioLimits& limits = {});
  int threshold(const ScenarioLimits& limits = {});
  DelayBound delay_bound(const ScenarioLimits& limits = {});
  CostWeights weights(const ScenarioLimits& limits = {});

  /// The underlying stream, for suite-specific draws (e.g. fuzz payloads).
  stats::Rng& raw() { return rng_; }

 private:
  stats::Rng rng_;
};

/// One randomized model/simulation scenario.
struct Scenario {
  Dimension dim = Dimension::kTwoD;
  MobilityProfile profile{};
  int threshold = 1;
  DelayBound bound = DelayBound(1);
  CostWeights weights{};
  std::uint64_t seed = 0;  ///< generating seed; reuse as the simulator seed

  /// Deterministically expands `seed` into a scenario within `limits`.
  static Scenario generate(std::uint64_t seed, const ScenarioLimits& limits = {});

  /// "2-D q=0.125 c=0.010 d=4 m=2 U=100 V=10 seed=0xabc" (one line).
  std::string describe() const;

  friend bool operator==(const Scenario&, const Scenario&);
};

/// Generic integer shrink: candidates strictly between `floor` and `value`,
/// most aggressive (the floor itself) first.
std::vector<int> shrink_int(int value, int floor);

/// Strictly-simpler neighbors of a failing scenario (smaller threshold,
/// tighter delay bound, 1-D instead of 2-D, rates and weights snapped
/// toward canonical paper values), most aggressive first.  The seed is
/// preserved so the simulator stream stays comparable.
std::vector<Scenario> shrink_candidates(const Scenario& scenario);

}  // namespace pcn::proptest
