#include "support/property.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

namespace pcn::proptest {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char ch : text) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::optional<std::uint64_t> env_u64(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::strtoull(value, nullptr, 0);
}

std::string current_test_filter() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  if (info == nullptr) return "<test>";
  return std::string(info->test_suite_name()) + "." + info->name();
}

std::optional<std::string> run_guarded(const Property& property,
                                       const Scenario& scenario) {
  try {
    return property(scenario);
  } catch (const std::exception& error) {
    return std::string("unhandled exception: ") + error.what();
  }
}

}  // namespace

void check_property(const std::string& name, const Property& property,
                    const PropertyOptions& options) {
  const std::uint64_t base =
      options.base_seed != 0 ? options.base_seed : fnv1a(name);
  int scenarios = options.scenarios;
  if (const auto n = env_u64("PCN_PROPERTY_SCENARIOS")) {
    scenarios = static_cast<int>(*n);
  }
  const auto pinned = env_u64("PCN_PROPERTY_SEED");

  for (int i = 0; i < scenarios; ++i) {
    const std::uint64_t seed =
        pinned ? (i == 0 ? *pinned
                         : splitmix64(*pinned + static_cast<std::uint64_t>(i)))
               : splitmix64(base + static_cast<std::uint64_t>(i));
    const Scenario original = Scenario::generate(seed, options.limits);
    const auto failure = run_guarded(property, original);
    if (!failure) continue;

    // Greedy descent: take the first simpler scenario that still fails,
    // restart from it, stop when none fails or the budget runs out.
    Scenario shrunk = original;
    std::string shrunk_message = *failure;
    if (options.enable_shrinking) {
      int budget = options.max_shrink_rounds;
      bool improved = true;
      while (improved && budget > 0) {
        improved = false;
        for (const Scenario& candidate : shrink_candidates(shrunk)) {
          if (budget-- <= 0) break;
          if (const auto message = run_guarded(property, candidate)) {
            shrunk = candidate;
            shrunk_message = *message;
            improved = true;
            break;
          }
        }
      }
    }

    char repro[256];
    std::snprintf(repro, sizeof repro,
                  "PCN-REPRO: PCN_PROPERTY_SEED=0x%llx "
                  "PCN_PROPERTY_SCENARIOS=1 ctest --test-dir build -R '%s'",
                  static_cast<unsigned long long>(seed),
                  current_test_filter().c_str());
    ADD_FAILURE() << name << ": scenario " << i + 1 << "/" << scenarios
                  << " failed\n"
                  << repro << "\n  original: " << original.describe()
                  << "\n    " << *failure
                  << "\n  shrunk  : " << shrunk.describe() << "\n    "
                  << shrunk_message;
    return;  // one failure per run keeps the report and the repro short
  }
}

}  // namespace pcn::proptest
