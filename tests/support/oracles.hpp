// Statistical oracles for the simulator-vs-Markov differential suites.
//
// A chain-faithful simulation run is a stationary Markov reward process,
// so the sampling error of its time-averaged metrics follows a CLT whose
// variance constant is computable *exactly* from the chain itself: for a
// per-state reward f the asymptotic variance is
//
//   sigma^2 = pi(2 f~ g - f~^2),   (I - P + 1 pi) g = f~,   f~ = f - pi f
//
// (the fundamental-matrix / Poisson-equation form; the dense LU substrate
// solves the (d+1)-state system).  `predicted_cost_bands` turns that into
// normal-approximation acceptance bands for the measured per-slot update
// cost, paging cost, total cost, and mean paging delay of a `slots`-slot
// run — the bands an asserting validation compares the simulator against.
//
// What is *not* exact: the per-slot reward also depends on the slot's
// event draw (not just the state), and the draw that pays a reward is the
// draw that moves the chain, so reward noise and the next state are
// correlated.  The conditional-variance term below treats that noise as
// independent; kCorrelationSafety widens every band to cover the neglected
// cross term (see docs/testing.md for the derivation and calibration).
//
// `occupancy_goodness_of_fit` is a chi-square-style test of the empirical
// ring-distance occupancy against p_{i,d}, with each bin normalized by its
// exact autocorrelation-aware variance rather than the iid multinomial
// one (per-slot samples of the chain are strongly correlated).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pcn/costs/cost_model.hpp"
#include "pcn/linalg/matrix.hpp"
#include "pcn/stats/histogram.hpp"

namespace pcn::proptest {

/// Two-sided acceptance band `center ± halfwidth`.
struct Band {
  double center = 0.0;
  double halfwidth = 0.0;

  double lo() const { return center - halfwidth; }
  double hi() const { return center + halfwidth; }

  /// Containment with a float-rounding guard: a degenerate band (zero
  /// halfwidth, e.g. the delay with m = 1 cycle) must still accept a
  /// measurement that equals the center up to summation order.
  bool contains(double x) const {
    const double eps = 1e-12 * (std::abs(center) + 1.0);
    return x >= lo() - eps && x <= hi() + eps;
  }

  /// Band with `rel` of |center| added to the halfwidth — the modeling
  /// slack used when the chain is only approximate (independent slot
  /// semantics).
  Band widened(double rel) const {
    return Band{center, halfwidth + rel * std::abs(center)};
  }
};

std::string to_string(const Band& band);

/// Exact CLT variance constant of the running mean of the per-state
/// function `f` over the stationary chain `transition` (row-stochastic,
/// stationary distribution `pi`): Var(mean over n slots) ~ result / n.
double asymptotic_variance(const linalg::Matrix& transition,
                           std::span<const double> pi,
                           std::span<const double> f);

struct CostBands {
  Band update;   ///< measured update cost per slot vs C_u(d)
  Band paging;   ///< measured paging cost per slot vs C_v(d, m)
  Band total;    ///< measured total cost per slot vs C_T(d, m)
  Band delay;    ///< measured mean paging delay (cycles) vs the partition
  double expected_calls = 0.0;  ///< c * slots (delay-band sample size)
};

/// Acceptance bands at `z` standard errors for a chain-faithful simulation
/// of (threshold, bound) totalling `slots` stationary slots (one terminal,
/// or the sum over an independent fleet).  Band centers equal the model's
/// own predictions exactly.
CostBands predicted_cost_bands(const costs::CostModel& model, int threshold,
                               DelayBound bound, std::int64_t slots, double z);

struct GofResult {
  double statistic = 0.0;
  int dof = 0;            ///< bins with enough mass to be tested
  double critical = 0.0;  ///< acceptance threshold the statistic was held to
  bool accepted = true;

  std::string describe() const;  ///< "chi2=3.21 <= 41.2 (dof 7)" one-liner
};

/// Tests the empirical ring-distance occupancy of a chain-faithful run
/// against the chain's steady state at tail probability `alpha`.  Bins
/// with expected count < 10 are skipped (normal approximation invalid);
/// any occupancy mass beyond the threshold distance is an automatic fail.
GofResult occupancy_goodness_of_fit(const costs::CostModel& model,
                                    int threshold,
                                    const stats::Histogram& occupancy,
                                    double alpha);

/// Upper critical value of the chi-square distribution with `dof` degrees
/// of freedom at tail probability `alpha` (Wilson-Hilferty approximation).
double chi_square_critical(int dof, double alpha);

/// Inverse standard-normal CDF (Acklam's rational approximation).
double normal_quantile(double p);

}  // namespace pcn::proptest
