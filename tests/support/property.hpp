// Minimal property-test harness on top of GoogleTest.
//
// A property is a predicate over a randomized Scenario; `check_property`
// runs it over a deterministic family of seeds, and on the first failure
// (a) greedily shrinks the scenario through `shrink_candidates` while it
// keeps failing, then (b) reports one test failure whose first line is a
// machine-pasteable repro:
//
//   PCN-REPRO: PCN_PROPERTY_SEED=0x1f2e... PCN_PROPERTY_SCENARIOS=1
//       ctest --test-dir build -R 'PropSimVsChain.ChainFaithful...'
//
// Environment overrides:
//   PCN_PROPERTY_SEED       pin the first scenario's seed (repro mode)
//   PCN_PROPERTY_SCENARIOS  override the per-property scenario count
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "support/generators.hpp"

namespace pcn::proptest {

struct PropertyOptions {
  int scenarios = 25;           ///< PCN_PROPERTY_SCENARIOS overrides
  std::uint64_t base_seed = 0;  ///< 0 = derive from the property name
  ScenarioLimits limits{};
  bool enable_shrinking = true;   ///< off for seed-only properties (fuzz)
  int max_shrink_rounds = 48;     ///< cap on re-evaluations while shrinking
};

/// nullopt = scenario passed; a message = why it failed.  Exceptions are
/// caught and reported as failures.
using Property = std::function<std::optional<std::string>(const Scenario&)>;

void check_property(const std::string& name, const Property& property,
                    const PropertyOptions& options = {});

}  // namespace pcn::proptest
