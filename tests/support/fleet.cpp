#include "support/fleet.hpp"

namespace pcn::proptest {
namespace {

void merge_histogram(stats::Histogram& into, const stats::Histogram& from) {
  for (int value = 0; value < from.bucket_count(); ++value) {
    if (const std::int64_t count = from.count(value); count > 0) {
      into.add(value, count);
    }
  }
}

bool histograms_identical(const stats::Histogram& a,
                          const stats::Histogram& b) {
  if (a.bucket_count() != b.bucket_count() || a.total() != b.total()) {
    return false;
  }
  for (int value = 0; value < a.bucket_count(); ++value) {
    if (a.count(value) != b.count(value)) return false;
  }
  return true;
}

}  // namespace

double FleetMetrics::update_cost_per_slot() const {
  return update_cost / static_cast<double>(slots);
}

double FleetMetrics::paging_cost_per_slot() const {
  return paging_cost / static_cast<double>(slots);
}

double FleetMetrics::cost_per_slot() const {
  return (update_cost + paging_cost) / static_cast<double>(slots);
}

void FleetMetrics::accumulate(const sim::TerminalMetrics& metrics) {
  slots += metrics.slots;
  moves += metrics.moves;
  calls += metrics.calls;
  updates += metrics.updates;
  polled_cells += metrics.polled_cells;
  update_cost += metrics.update_cost;
  paging_cost += metrics.paging_cost;
  merge_histogram(paging_cycles, metrics.paging_cycles);
  merge_histogram(ring_distance, metrics.ring_distance);
}

std::vector<sim::TerminalMetrics> run_distance_fleet(
    const Scenario& scenario, sim::SlotSemantics semantics, int threads,
    int terminals, std::int64_t slots_per_terminal, sim::SimEngine engine) {
  sim::NetworkConfig config{scenario.dim, semantics, scenario.seed};
  config.threads = threads;
  config.engine = engine;
  sim::Network network(config, scenario.weights);
  std::vector<sim::TerminalId> ids;
  ids.reserve(static_cast<std::size_t>(terminals));
  for (int i = 0; i < terminals; ++i) {
    ids.push_back(network.add_terminal(
        sim::make_distance_terminal(scenario.dim, scenario.profile,
                                    scenario.threshold, scenario.bound)));
  }
  network.run(slots_per_terminal);
  std::vector<sim::TerminalMetrics> metrics;
  metrics.reserve(ids.size());
  for (const sim::TerminalId id : ids) metrics.push_back(network.metrics(id));
  return metrics;
}

FleetMetrics run_distance_fleet_aggregate(const Scenario& scenario,
                                          sim::SlotSemantics semantics,
                                          int threads, int terminals,
                                          std::int64_t slots_per_terminal) {
  FleetMetrics aggregate;
  for (const sim::TerminalMetrics& metrics :
       run_distance_fleet(scenario, semantics, threads, terminals,
                          slots_per_terminal)) {
    aggregate.accumulate(metrics);
  }
  return aggregate;
}

bool metrics_identical(const sim::TerminalMetrics& a,
                       const sim::TerminalMetrics& b) {
  return a.slots == b.slots && a.moves == b.moves && a.calls == b.calls &&
         a.updates == b.updates && a.polled_cells == b.polled_cells &&
         a.update_cost == b.update_cost && a.paging_cost == b.paging_cost &&
         a.update_bytes == b.update_bytes &&
         a.paging_bytes == b.paging_bytes &&
         a.lost_updates == b.lost_updates &&
         a.paging_failures == b.paging_failures &&
         histograms_identical(a.paging_cycles, b.paging_cycles) &&
         histograms_identical(a.ring_distance, b.ring_distance);
}

}  // namespace pcn::proptest
