// Counter-based RNG (stats/counter_rng.hpp): known-answer vectors for the
// Philox4x32-10 bijection, determinism and ordering-freedom of the keyed
// streams, statistical independence between adjacent streams (the simd
// engine keys one stream per terminal id), and the fixed-point threshold
// and key-derivation edge cases.
#include "pcn/stats/counter_rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace pcn::stats {
namespace {

// --- Known-answer vectors (Random123 philox4x32x10) -------------------------

TEST(Philox4x32, ZeroCounterZeroKeyVector) {
  const PhiloxWords w = philox4x32(0, 0, 0, 0, 0, 0);
  EXPECT_EQ(w[0], 0x6627e8d5u);
  EXPECT_EQ(w[1], 0xe169c58du);
  EXPECT_EQ(w[2], 0xbc57ac4cu);
  EXPECT_EQ(w[3], 0x9b00dbd8u);
}

TEST(Philox4x32, AllOnesVector) {
  const PhiloxWords w =
      philox4x32(0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu,
                 0xffffffffu, 0xffffffffu);
  EXPECT_EQ(w[0], 0x408f276du);
  EXPECT_EQ(w[1], 0x41c83b0eu);
  EXPECT_EQ(w[2], 0xa20bc7c6u);
  EXPECT_EQ(w[3], 0x6d5451fdu);
}

TEST(Philox4x32, PiDigitsVector) {
  // Counter and key from the hex digits of pi, as in the Random123 KAT.
  const PhiloxWords w =
      philox4x32(0xa4093822u, 0x299f31d0u, 0x243f6a88u, 0x85a308d3u,
                 0x13198a2eu, 0x03707344u);
  EXPECT_EQ(w[0], 0xd16cfe09u);
  EXPECT_EQ(w[1], 0x94fdccebu);
  EXPECT_EQ(w[2], 0x5001e420u);
  EXPECT_EQ(w[3], 0x24126ea1u);
}

// --- Keyed stream family ----------------------------------------------------

TEST(CounterRng, DeterministicAndOrderFree) {
  const CounterRng rng(0x123456789abcdef0ULL);
  // Same (stream, counter) -> same block, regardless of what was read
  // before (there is no hidden state to advance).
  const PhiloxWords first = rng.block(7, 42);
  rng.block(9999, 0);
  rng.block(7, 43);
  EXPECT_EQ(rng.block(7, 42), first);
  const CounterRng again(0x123456789abcdef0ULL);
  EXPECT_EQ(again.block(7, 42), first);
}

TEST(CounterRng, KeyRoundTripsThroughHalves) {
  const CounterRng rng(0xfedcba9876543210ULL);
  EXPECT_EQ(rng.key(), 0xfedcba9876543210ULL);
  EXPECT_EQ(rng.key_lo(), 0x76543210u);
  EXPECT_EQ(rng.key_hi(), 0xfedcba98u);
}

TEST(CounterRng, KeyedDerivesThroughSeedFrom) {
  // keyed() must agree with the shared seed_from helper so the simulator's
  // key derivation is pinned to the documented scheme.
  const CounterRng rng = CounterRng::keyed(42, 7);
  EXPECT_EQ(rng.key(), rng_detail::seed_from(42, 7));
  // Distinct seeds and distinct salts give distinct keys.
  EXPECT_NE(CounterRng::keyed(42, 7).key(), CounterRng::keyed(43, 7).key());
  EXPECT_NE(CounterRng::keyed(42, 7).key(), CounterRng::keyed(42, 8).key());
}

TEST(CounterRng, SeedFromMatchesRngStateExpansion) {
  // Rng(seed) expands its state through the same helper (word i =
  // seed_from(seed, i)); equal first outputs across the two code paths
  // would be a collision, not a design goal — what we pin here is that
  // seed_from is the SplitMix64 stream of `seed`.
  std::uint64_t state = 42;
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rng_detail::seed_from(42, i), rng_detail::splitmix64(state));
  }
}

TEST(CounterRng, Next64PacksWordsZeroAndOne) {
  const CounterRng rng(99);
  const PhiloxWords w = rng.block(3, 5);
  EXPECT_EQ(rng.next64(3, 5), w[0] | (std::uint64_t{w[1]} << 32));
}

TEST(CounterRng, UnitStaysInHalfOpenInterval) {
  const CounterRng rng(1234);
  for (std::uint64_t counter = 0; counter < 2000; ++counter) {
    const double u = rng.unit(counter & 7, counter);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(CounterRng, DeriveGivesIndependentDeterministicChildren) {
  const CounterRng parent(0xabcdefULL);
  const CounterRng child = parent.derive(1);
  EXPECT_EQ(child.key(), parent.derive(1).key());
  EXPECT_NE(child.key(), parent.key());
  EXPECT_NE(parent.derive(1).key(), parent.derive(2).key());
  // derive(0) must not be an identity (the salt mixing is affine-offset).
  EXPECT_NE(parent.derive(0).key(), parent.key());
  // Child blocks differ from parent blocks at the same coordinates.
  EXPECT_NE(child.block(0, 0), parent.block(0, 0));
}

// --- Statistical independence between adjacent streams ----------------------

// The simd engine keys stream = terminal id, so adjacent ids must behave
// as independent sources.  Critical values are for alpha = 1e-6, so a
// false failure is a once-per-million-runs event.

TEST(CounterRng, LowBitsUniformWithinAStream) {
  // Chi-square on the low 3 bits of word 0 over 1 << 14 counters.
  // dof = 7, critical value chi^2_{7, 1e-6} = 39.25.
  const CounterRng rng = CounterRng::keyed(2026, 0x5150);
  for (std::uint64_t stream : {0ULL, 1ULL, 1000000ULL}) {
    constexpr int kDraws = 1 << 14;
    std::int64_t cells[8] = {0};
    for (std::uint64_t counter = 0; counter < kDraws; ++counter) {
      cells[rng.block(stream, counter)[0] & 7u]++;
    }
    const double expected = kDraws / 8.0;
    double chi2 = 0.0;
    for (const std::int64_t observed : cells) {
      const double d = static_cast<double>(observed) - expected;
      chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 39.25) << "stream " << stream;
  }
}

TEST(CounterRng, AdjacentStreamsAreUncorrelated) {
  // 2x2 contingency table of (bit0 of stream t, bit0 of stream t+1) at the
  // same counter: under independence the table's chi-square statistic has
  // dof = 1, critical value chi^2_{1, 1e-6} = 23.93.
  const CounterRng rng = CounterRng::keyed(7, 0xad7a);
  for (std::uint64_t stream : {0ULL, 17ULL, 4095ULL}) {
    constexpr int kDraws = 1 << 14;
    std::int64_t table[2][2] = {{0, 0}, {0, 0}};
    for (std::uint64_t counter = 0; counter < kDraws; ++counter) {
      const std::uint32_t a = rng.block(stream, counter)[0] & 1u;
      const std::uint32_t b = rng.block(stream + 1, counter)[0] & 1u;
      table[a][b]++;
    }
    double chi2 = 0.0;
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        const double row = static_cast<double>(table[a][0] + table[a][1]);
        const double col = static_cast<double>(table[0][b] + table[1][b]);
        const double expected = row * col / kDraws;
        const double d = static_cast<double>(table[a][b]) - expected;
        chi2 += d * d / expected;
      }
    }
    EXPECT_LT(chi2, 23.93) << "streams " << stream << "," << stream + 1;
  }
}

// --- Fixed-point thresholds -------------------------------------------------

TEST(Threshold32, EdgeCasesAndMonotonicity) {
  EXPECT_EQ(threshold32(0.0), 0u);
  EXPECT_EQ(threshold32(-1.0), 0u);
  EXPECT_EQ(threshold32(1.0), 0xFFFFFFFFu);
  EXPECT_EQ(threshold32(2.0), 0xFFFFFFFFu);
  EXPECT_EQ(threshold32(0.5), 0x80000000u);
  EXPECT_EQ(threshold32(0.25), 0x40000000u);
  // Rounding error below 2^-32 either way.
  const double p = 0.0137;
  const double back = threshold32(p) / 4294967296.0;
  EXPECT_NEAR(back, p, 1.0 / 4294967296.0);
  EXPECT_LE(threshold32(0.1), threshold32(0.100001));
}

TEST(Threshold32, MatchesEmpiricalFrequency) {
  // P(w0 < threshold32(p)) ~= p: binomial bound with z = 4.75 (alpha
  // ~1e-6) over 1 << 14 draws.
  const CounterRng rng = CounterRng::keyed(3, 9);
  const double p = 0.1;
  const std::uint32_t threshold = threshold32(p);
  constexpr int kDraws = 1 << 14;
  int hits = 0;
  for (std::uint64_t counter = 0; counter < kDraws; ++counter) {
    if (rng.block(0, counter)[0] < threshold) ++hits;
  }
  const double sigma = std::sqrt(p * (1 - p) * kDraws);
  EXPECT_NEAR(static_cast<double>(hits), p * kDraws, 4.75 * sigma);
}

}  // namespace
}  // namespace pcn::stats
