#include "pcn/stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pcn/common/error.hpp"
#include "pcn/stats/rng.hpp"

namespace pcn::stats {
namespace {

TEST(Summary, EmptySummaryRefusesStatistics) {
  const Summary s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_THROW(s.mean(), InvalidArgument);
  EXPECT_THROW(s.min(), InvalidArgument);
  EXPECT_THROW(s.max(), InvalidArgument);
}

TEST(Summary, SingleSampleHasMeanButNoVariance) {
  Summary s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_THROW(s.variance(), InvalidArgument);
}

TEST(Summary, MatchesDirectTwoPassComputation) {
  Rng rng(5);
  std::vector<double> values;
  Summary s;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_unit() * 10.0 - 5.0;
    values.push_back(v);
    s.add(v);
  }
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double m2 = 0.0;
  for (double v : values) m2 += (v - mean) * (v - mean);
  const double variance = m2 / static_cast<double>(values.size() - 1);

  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), variance, 1e-10);
  EXPECT_NEAR(s.stddev(), std::sqrt(variance), 1e-10);
}

TEST(Summary, TracksMinAndMax) {
  Summary s;
  for (double v : {2.0, -7.0, 5.0, 0.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), -7.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Summary, StableForLargeOffsets) {
  // Classic catastrophic-cancellation check: tiny variance around 1e9.
  Summary s;
  for (double v : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0}) s.add(v);
  EXPECT_NEAR(s.mean(), 1e9 + 10.0, 1e-3);
  EXPECT_NEAR(s.variance(), 30.0, 1e-6);
}

TEST(Summary, MergeEqualsSequentialAccumulation) {
  Rng rng(9);
  Summary all;
  Summary left;
  Summary right;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.next_unit();
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Summary, MergeWithEmptyIsIdentity) {
  Summary s;
  s.add(1.0);
  s.add(2.0);
  Summary empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2);
  Summary other;
  other.merge(s);
  EXPECT_EQ(other.count(), 2);
  EXPECT_DOUBLE_EQ(other.mean(), 1.5);
}

TEST(Summary, ConfidenceIntervalScalesWithZ) {
  Summary s;
  for (int i = 0; i < 100; ++i) s.add(static_cast<double>(i % 10));
  const double ci95 = s.ci_half_width();
  const double ci99 = s.ci_half_width(2.575829);
  EXPECT_GT(ci99, ci95);
  EXPECT_NEAR(ci95, 1.959964 * s.standard_error(), 1e-12);
  EXPECT_THROW(s.ci_half_width(0.0), InvalidArgument);
}

TEST(Summary, CoversTheTrueMeanOfAUniformSample) {
  Rng rng(1234);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.next_unit());
  // True mean 0.5; a 99.99% interval should contain it.
  EXPECT_NEAR(s.mean(), 0.5, 5.0 * s.standard_error());
}

}  // namespace
}  // namespace pcn::stats
