#include "pcn/stats/histogram.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"

namespace pcn::stats {
namespace {

TEST(Histogram, EmptyHistogramRefusesStatistics) {
  const Histogram h;
  EXPECT_EQ(h.total(), 0);
  EXPECT_EQ(h.bucket_count(), 0);
  EXPECT_THROW(h.fraction(0), InvalidArgument);
  EXPECT_THROW(h.mean(), InvalidArgument);
  EXPECT_THROW(h.max_value(), InvalidArgument);
  EXPECT_THROW(h.distribution(), InvalidArgument);
}

TEST(Histogram, CountsAndGrowsOnDemand) {
  Histogram h;
  h.add(0);
  h.add(3);
  h.add(3);
  EXPECT_EQ(h.total(), 3);
  EXPECT_EQ(h.bucket_count(), 4);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 0);
  EXPECT_EQ(h.count(3), 2);
  EXPECT_EQ(h.count(99), 0);  // never seen, no growth
  EXPECT_EQ(h.bucket_count(), 4);
}

TEST(Histogram, BulkAddWithCount) {
  Histogram h;
  h.add(2, 10);
  h.add(2, 5);
  EXPECT_EQ(h.count(2), 15);
  EXPECT_EQ(h.total(), 15);
  h.add(4, 0);  // zero count is a no-op on totals
  EXPECT_EQ(h.total(), 15);
}

TEST(Histogram, FractionAndDistribution) {
  Histogram h;
  h.add(0, 1);
  h.add(1, 3);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.25);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.0);
  const auto dist = h.distribution();
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_DOUBLE_EQ(dist[0] + dist[1], 1.0);
}

TEST(Histogram, MeanIsTheWeightedAverage) {
  Histogram h;
  h.add(1, 2);
  h.add(4, 2);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(Histogram, MaxValueSkipsEmptyTrailingBuckets) {
  Histogram h;
  h.add(5);
  h.add(2);
  EXPECT_EQ(h.max_value(), 5);
}

TEST(Histogram, RejectsNegativeValuesAndCounts) {
  Histogram h;
  EXPECT_THROW(h.add(-1), InvalidArgument);
  EXPECT_THROW(h.add(1, -2), InvalidArgument);
  EXPECT_THROW(h.count(-1), InvalidArgument);
}

}  // namespace
}  // namespace pcn::stats
