#include "pcn/stats/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "pcn/common/error.hpp"

namespace pcn::stats {
namespace {

TEST(Rng, DeterministicForAFixedSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SmallSeedsAreWellMixed) {
  // Seeds 0 and 1 must not produce correlated low-entropy streams.
  Rng a(0);
  Rng b(1);
  const std::uint64_t x = a.next();
  const std::uint64_t y = b.next();
  EXPECT_NE(x, 0u);
  EXPECT_NE(x, y);
}

TEST(Rng, UnitValuesLieInHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UnitMeanIsNearOneHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_unit();
  // Standard error ~ 0.0009; allow 5 sigma.
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, BernoulliFrequencyMatchesProbability) {
  Rng rng(5);
  const double p = 0.05;  // the paper's favorite q
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bernoulli(p)) ++hits;
  }
  const double freq = static_cast<double>(hits) / n;
  const double sigma = std::sqrt(p * (1 - p) / n);
  EXPECT_NEAR(freq, p, 5 * sigma);
}

TEST(Rng, BernoulliEdgesAreExact) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
  EXPECT_THROW(rng.next_bernoulli(-0.1), InvalidArgument);
  EXPECT_THROW(rng.next_bernoulli(1.1), InvalidArgument);
}

TEST(Rng, NextBelowCoversTheRangeUniformly) {
  Rng rng(7);
  const std::uint64_t bound = 6;  // hex neighbor selection
  std::vector<int> counts(bound, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = rng.next_below(bound);
    ASSERT_LT(v, bound);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (std::uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(v)], n / 6.0, 5 * 100.0)
        << "value " << v;
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
  EXPECT_THROW(rng.next_below(0), InvalidArgument);
}

TEST(Rng, NextInRangeIsInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(rng.next_in_range(3, 2), InvalidArgument);
}

TEST(Rng, SplitStreamsAreUncorrelated) {
  Rng parent(10);
  Rng child_a = parent.split(1);
  Rng child_b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a.next() == child_b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowPowerOfTwoMatchesMaskedDraw) {
  // The power-of-two fast path must consume exactly one next() and return
  // the masked word — the same value the Lemire rejection path yields for
  // a power-of-two bound (its rejection threshold is 0).
  for (const std::uint64_t bound : {2ull, 8ull, 64ull, 1ull << 32}) {
    Rng a(77);
    Rng b(77);
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(a.next_below(bound), b.next() & (bound - 1))
          << "bound " << bound;
    }
  }
}

TEST(Rng, NextBelowPowerOfTwoStaysInRange) {
  Rng rng(78);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(16), 16u);
  }
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(11);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace pcn::stats
