#include "pcn/geometry/line.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pcn/common/error.hpp"

namespace pcn::geometry {
namespace {

TEST(LineDistance, IsAbsoluteCoordinateDifference) {
  EXPECT_EQ(line_distance(LineCell{0}, LineCell{0}), 0);
  EXPECT_EQ(line_distance(LineCell{-3}, LineCell{4}), 7);
  EXPECT_EQ(line_distance(LineCell{10}, LineCell{3}), 7);
}

TEST(LineDistance, IsSymmetric) {
  for (std::int64_t a = -5; a <= 5; ++a) {
    for (std::int64_t b = -5; b <= 5; ++b) {
      EXPECT_EQ(line_distance(LineCell{a}, LineCell{b}),
                line_distance(LineCell{b}, LineCell{a}));
    }
  }
}

TEST(LineNeighbors, EveryCellHasExactlyTwoNeighborsAtDistanceOne) {
  const LineCell cell{42};
  const auto neighbors = line_neighbors(cell);
  ASSERT_EQ(neighbors.size(), 2u);
  for (const LineCell& n : neighbors) {
    EXPECT_EQ(line_distance(cell, n), 1);
  }
  EXPECT_NE(neighbors[0], neighbors[1]);
}

TEST(LineRing, RingZeroIsTheCenterItself) {
  const auto ring = line_ring(LineCell{7}, 0);
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0], (LineCell{7}));
}

TEST(LineRing, PositiveRingsHoldTheTwoCellsAtThatDistance) {
  for (int i = 1; i <= 20; ++i) {
    const auto ring = line_ring(LineCell{-2}, i);
    ASSERT_EQ(ring.size(), 2u) << "ring " << i;
    for (const LineCell& cell : ring) {
      EXPECT_EQ(line_distance(LineCell{-2}, cell), i);
    }
  }
}

TEST(LineRing, RejectsNegativeIndex) {
  EXPECT_THROW(line_ring(LineCell{0}, -1), InvalidArgument);
}

TEST(LineDisk, EnumeratesGOfDCellsOrderedByDistance) {
  const int d = 6;
  const auto disk = line_disk(LineCell{100}, d);
  ASSERT_EQ(disk.size(), static_cast<std::size_t>(2 * d + 1));

  // Ordered ring by ring and all cells distinct.
  std::int64_t previous_distance = 0;
  std::set<std::int64_t> seen;
  for (const LineCell& cell : disk) {
    const std::int64_t dist = line_distance(LineCell{100}, cell);
    EXPECT_GE(dist, previous_distance);
    EXPECT_LE(dist, d);
    previous_distance = dist;
    EXPECT_TRUE(seen.insert(cell.x).second) << "duplicate cell " << cell.x;
  }
}

TEST(LineDisk, CoversExactlyTheInterval) {
  const auto disk = line_disk(LineCell{0}, 3);
  std::set<std::int64_t> coords;
  for (const LineCell& cell : disk) coords.insert(cell.x);
  const std::set<std::int64_t> expected{-3, -2, -1, 0, 1, 2, 3};
  EXPECT_EQ(coords, expected);
}

TEST(LineCellOrdering, ComparesByCoordinate) {
  EXPECT_LT((LineCell{1}), (LineCell{2}));
  EXPECT_EQ((LineCell{5}), (LineCell{5}));
}

}  // namespace
}  // namespace pcn::geometry
