#include "pcn/geometry/ring_metrics.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"

namespace pcn::geometry {
namespace {

TEST(RingSize, CenterRingIsOneCellInBothGeometries) {
  EXPECT_EQ(ring_size(Dimension::kOneD, 0), 1);
  EXPECT_EQ(ring_size(Dimension::kTwoD, 0), 1);
}

TEST(RingSize, OneDimRingsHoldTwoCells) {
  for (int ring = 1; ring <= 50; ++ring) {
    EXPECT_EQ(ring_size(Dimension::kOneD, ring), 2) << "ring " << ring;
  }
}

TEST(RingSize, TwoDimRingsHoldSixTimesIndexCells) {
  for (int ring = 1; ring <= 50; ++ring) {
    EXPECT_EQ(ring_size(Dimension::kTwoD, ring), 6 * ring) << "ring " << ring;
  }
}

TEST(RingSize, RejectsNegativeRing) {
  EXPECT_THROW(ring_size(Dimension::kOneD, -1), InvalidArgument);
}

TEST(CellsWithin, MatchesPaperEquationOneOneDim) {
  // g(d) = 2d + 1
  EXPECT_EQ(cells_within(Dimension::kOneD, 0), 1);
  EXPECT_EQ(cells_within(Dimension::kOneD, 1), 3);
  EXPECT_EQ(cells_within(Dimension::kOneD, 5), 11);
}

TEST(CellsWithin, MatchesPaperEquationOneTwoDim) {
  // g(d) = 3d(d+1) + 1
  EXPECT_EQ(cells_within(Dimension::kTwoD, 0), 1);
  EXPECT_EQ(cells_within(Dimension::kTwoD, 1), 7);
  EXPECT_EQ(cells_within(Dimension::kTwoD, 2), 19);
  EXPECT_EQ(cells_within(Dimension::kTwoD, 3), 37);
}

TEST(CellsWithin, RejectsNegativeDistance) {
  EXPECT_THROW(cells_within(Dimension::kTwoD, -1), InvalidArgument);
}

class RingMetricsConsistency
    : public ::testing::TestWithParam<Dimension> {};

TEST_P(RingMetricsConsistency, DiskIsSumOfItsRings) {
  const Dimension dim = GetParam();
  for (int d = 0; d <= 100; ++d) {
    std::int64_t sum = 0;
    for (int i = 0; i <= d; ++i) sum += ring_size(dim, i);
    EXPECT_EQ(sum, cells_within(dim, d)) << "d = " << d;
  }
}

TEST_P(RingMetricsConsistency, SpanEqualsDifferenceOfDisks) {
  const Dimension dim = GetParam();
  for (int first = 0; first <= 20; ++first) {
    for (int last = first; last <= 25; ++last) {
      std::int64_t sum = 0;
      for (int i = first; i <= last; ++i) sum += ring_size(dim, i);
      EXPECT_EQ(cells_in_ring_span(dim, first, last), sum)
          << "[" << first << ", " << last << "]";
    }
  }
}

TEST_P(RingMetricsConsistency, SpanFromZeroIsTheFullDisk) {
  const Dimension dim = GetParam();
  for (int d = 0; d <= 30; ++d) {
    EXPECT_EQ(cells_in_ring_span(dim, 0, d), cells_within(dim, d));
  }
}

INSTANTIATE_TEST_SUITE_P(BothGeometries, RingMetricsConsistency,
                         ::testing::Values(Dimension::kOneD,
                                           Dimension::kTwoD));

TEST(CellsInRingSpan, RejectsReversedOrNegativeSpan) {
  EXPECT_THROW(cells_in_ring_span(Dimension::kOneD, 3, 2), InvalidArgument);
  EXPECT_THROW(cells_in_ring_span(Dimension::kOneD, -1, 2), InvalidArgument);
}

TEST(CellsWithin, NoOverflowForCityScaleDistances) {
  // 2-D g(d) stays well inside int64 for any realistic coverage area.
  EXPECT_EQ(cells_within(Dimension::kTwoD, 100000),
            std::int64_t{3} * 100000 * 100001 + 1);
}

}  // namespace
}  // namespace pcn::geometry
