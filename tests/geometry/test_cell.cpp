#include "pcn/geometry/cell.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "pcn/common/error.hpp"
#include "pcn/geometry/ring_metrics.hpp"

namespace pcn::geometry {
namespace {

TEST(CellDistance, OneDimUsesTheQAxis) {
  EXPECT_EQ(cell_distance(Dimension::kOneD, Cell{3, 0}, Cell{-2, 0}), 5);
}

TEST(CellDistance, OneDimRejectsCellsOffTheLine) {
  EXPECT_THROW(cell_distance(Dimension::kOneD, Cell{0, 0}, Cell{0, 1}),
               InvalidArgument);
}

TEST(CellDistance, TwoDimIsHexDistance) {
  EXPECT_EQ(cell_distance(Dimension::kTwoD, Cell{0, 0}, Cell{2, -1}),
            hex_distance(Cell{0, 0}, Cell{2, -1}));
}

class CellGeometry : public ::testing::TestWithParam<Dimension> {};

TEST_P(CellGeometry, NeighborCountMatchesDimension) {
  const Dimension dim = GetParam();
  const auto neighbors = cell_neighbors(dim, Cell{4, 0});
  EXPECT_EQ(neighbors.size(),
            static_cast<std::size_t>(neighbor_count(dim)));
  for (const Cell& n : neighbors) {
    EXPECT_EQ(cell_distance(dim, Cell{4, 0}, n), 1);
  }
}

TEST_P(CellGeometry, RingSizesMatchRingMetrics) {
  const Dimension dim = GetParam();
  for (int i = 0; i <= 8; ++i) {
    EXPECT_EQ(cell_ring(dim, Cell{}, i).size(),
              static_cast<std::size_t>(ring_size(dim, i)));
  }
}

TEST_P(CellGeometry, RingCellsAreAtExactlyThatDistance) {
  const Dimension dim = GetParam();
  const Cell center{-3, 0};
  for (int i = 0; i <= 8; ++i) {
    for (const Cell& cell : cell_ring(dim, center, i)) {
      EXPECT_EQ(cell_distance(dim, center, cell), i);
    }
  }
}

TEST_P(CellGeometry, DiskMatchesCellsWithinAndIsDuplicateFree) {
  const Dimension dim = GetParam();
  for (int d = 0; d <= 8; ++d) {
    const auto disk = cell_disk(dim, Cell{}, d);
    EXPECT_EQ(disk.size(), static_cast<std::size_t>(cells_within(dim, d)));
    std::unordered_set<Cell, HexCellHash> unique(disk.begin(), disk.end());
    EXPECT_EQ(unique.size(), disk.size());
  }
}

TEST_P(CellGeometry, NeighborsStayInTheGeometry) {
  // 1-D neighbors keep r = 0; walking neighbors repeatedly never leaves
  // the line.
  const Dimension dim = GetParam();
  Cell cursor{};
  for (int step = 0; step < 50; ++step) {
    cursor = cell_neighbors(dim, cursor)[static_cast<std::size_t>(step) %
                                         cell_neighbors(dim, cursor).size()];
  }
  if (dim == Dimension::kOneD) {
    EXPECT_EQ(cursor.r, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(BothGeometries, CellGeometry,
                         ::testing::Values(Dimension::kOneD,
                                           Dimension::kTwoD));

class CellLaTilingTest : public ::testing::TestWithParam<Dimension> {};

TEST_P(CellLaTilingTest, LaSizeMatchesUnderlyingTiling) {
  const Dimension dim = GetParam();
  const CellLaTiling tiling(dim, 2);
  EXPECT_EQ(tiling.la_size(), dim == Dimension::kOneD ? 5 : 19);
}

TEST_P(CellLaTilingTest, CellsMapWithinRadiusAndIdempotently) {
  const Dimension dim = GetParam();
  const CellLaTiling tiling(dim, 2);
  for (const Cell& cell : cell_disk(dim, Cell{}, 15)) {
    const Cell center = tiling.la_center(cell);
    EXPECT_LE(cell_distance(dim, cell, center), 2);
    EXPECT_EQ(tiling.la_center(center), center);
  }
}

TEST_P(CellLaTilingTest, LaCellsAllShareTheLa) {
  const Dimension dim = GetParam();
  const CellLaTiling tiling(dim, 2);
  const Cell center = tiling.la_center(Cell{});
  const auto cells = tiling.la_cells(center);
  EXPECT_EQ(cells.size(), static_cast<std::size_t>(tiling.la_size()));
  for (const Cell& cell : cells) {
    EXPECT_TRUE(tiling.same_la(cell, center));
  }
}

INSTANTIATE_TEST_SUITE_P(BothGeometries, CellLaTilingTest,
                         ::testing::Values(Dimension::kOneD,
                                           Dimension::kTwoD));

}  // namespace
}  // namespace pcn::geometry
