#include "pcn/geometry/la_tiling.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "pcn/common/error.hpp"

namespace pcn::geometry {
namespace {

TEST(LineLaTiling, LaSizeIsTwoRadiusPlusOne) {
  EXPECT_EQ(LineLaTiling(0).la_size(), 1);
  EXPECT_EQ(LineLaTiling(2).la_size(), 5);
  EXPECT_EQ(LineLaTiling(10).la_size(), 21);
}

TEST(LineLaTiling, CenterCellMapsToItself) {
  const LineLaTiling tiling(3);
  EXPECT_EQ(tiling.la_center(LineCell{0}), (LineCell{0}));
  EXPECT_EQ(tiling.la_center(LineCell{7}), (LineCell{7}));
  EXPECT_EQ(tiling.la_center(LineCell{-7}), (LineCell{-7}));
}

TEST(LineLaTiling, EveryCellIsWithinRadiusOfItsCenter) {
  const LineLaTiling tiling(3);
  for (std::int64_t x = -40; x <= 40; ++x) {
    const LineCell center = tiling.la_center(LineCell{x});
    EXPECT_LE(line_distance(LineCell{x}, center), 3) << "x = " << x;
  }
}

TEST(LineLaTiling, BlocksPartitionTheLine) {
  const LineLaTiling tiling(2);
  // Consecutive LA centers differ by exactly the LA size.
  std::int64_t boundary_changes = 0;
  LineCell previous = tiling.la_center(LineCell{-30});
  for (std::int64_t x = -29; x <= 30; ++x) {
    const LineCell center = tiling.la_center(LineCell{x});
    if (center != previous) {
      EXPECT_EQ(center.x - previous.x, tiling.la_size());
      ++boundary_changes;
      previous = center;
    }
  }
  EXPECT_EQ(boundary_changes, 60 / tiling.la_size());
}

TEST(LineLaTiling, LaCellsEnumeratesTheBlock) {
  const LineLaTiling tiling(2);
  const auto cells = tiling.la_cells(LineCell{5});
  EXPECT_EQ(cells.size(), 5u);
  for (const LineCell& cell : cells) {
    EXPECT_EQ(tiling.la_center(cell), (LineCell{5}));
  }
}

TEST(LineLaTiling, LaCellsRejectsNonCenterArgument) {
  const LineLaTiling tiling(2);
  EXPECT_THROW(tiling.la_cells(LineCell{1}), InvalidArgument);
}

TEST(HexLaTiling, LaSizeIsCenteredHexagonalNumber) {
  EXPECT_EQ(HexLaTiling(0).la_size(), 1);
  EXPECT_EQ(HexLaTiling(1).la_size(), 7);
  EXPECT_EQ(HexLaTiling(2).la_size(), 19);
  EXPECT_EQ(HexLaTiling(3).la_size(), 37);
}

TEST(HexLaTiling, RadiusZeroMakesEveryCellItsOwnLa) {
  const HexLaTiling tiling(0);
  for (const HexCell& cell : hex_disk(HexCell{}, 5)) {
    EXPECT_EQ(tiling.la_center(cell), cell);
  }
}

TEST(HexLaTiling, OriginIsAnLaCenter) {
  for (int radius = 1; radius <= 5; ++radius) {
    EXPECT_EQ(HexLaTiling(radius).la_center(HexCell{}), (HexCell{}))
        << "radius " << radius;
  }
}

class HexLaTilingProperty : public ::testing::TestWithParam<int> {};

TEST_P(HexLaTilingProperty, EveryCellIsWithinRadiusOfItsCenter) {
  const int radius = GetParam();
  const HexLaTiling tiling(radius);
  for (const HexCell& cell : hex_disk(HexCell{}, 6 * radius + 7)) {
    const HexCell center = tiling.la_center(cell);
    EXPECT_LE(hex_distance(cell, center), radius)
        << "cell (" << cell.q << ", " << cell.r << ")";
  }
}

TEST_P(HexLaTilingProperty, CentersFormAPerfectTiling) {
  // Group a large disk of cells by LA center: every *interior* LA (one
  // whose full disk lies inside the scanned region) must contain exactly
  // la_size() cells — disks tile with no gaps or overlaps.
  const int radius = GetParam();
  const HexLaTiling tiling(radius);
  const int scan = 6 * radius + 8;
  std::unordered_map<HexCell, int, HexCellHash> population;
  for (const HexCell& cell : hex_disk(HexCell{}, scan)) {
    ++population[tiling.la_center(cell)];
  }
  int interior_las = 0;
  for (const auto& [center, count] : population) {
    if (hex_distance(HexCell{}, center) + radius <= scan) {
      EXPECT_EQ(count, tiling.la_size())
          << "LA at (" << center.q << ", " << center.r << ")";
      ++interior_las;
    }
  }
  EXPECT_GT(interior_las, 3);
}

TEST_P(HexLaTilingProperty, CenterMappingIsIdempotent) {
  const int radius = GetParam();
  const HexLaTiling tiling(radius);
  for (const HexCell& cell : hex_disk(HexCell{}, 4 * radius + 5)) {
    const HexCell center = tiling.la_center(cell);
    EXPECT_EQ(tiling.la_center(center), center);
  }
}

INSTANTIATE_TEST_SUITE_P(RadiiOneToFive, HexLaTilingProperty,
                         ::testing::Range(1, 6));

TEST(HexLaTiling, LaCellsEnumeratesTheDiskOfTheCenter) {
  const HexLaTiling tiling(2);
  const auto cells = tiling.la_cells(HexCell{});
  EXPECT_EQ(cells.size(), static_cast<std::size_t>(tiling.la_size()));
  for (const HexCell& cell : cells) {
    EXPECT_TRUE(tiling.same_la(cell, HexCell{}));
  }
}

TEST(HexLaTiling, LaCellsRejectsNonCenterArgument) {
  const HexLaTiling tiling(2);
  EXPECT_THROW(tiling.la_cells(HexCell{1, 0}), InvalidArgument);
}

TEST(HexLaTiling, SameLaDistinguishesNeighborsAcrossBoundaries) {
  const HexLaTiling tiling(1);
  // In the 7-cell cluster tiling, a cell at distance 2 from the origin is
  // in another LA.
  EXPECT_FALSE(tiling.same_la(HexCell{}, HexCell{2, 0}));
  EXPECT_TRUE(tiling.same_la(HexCell{}, HexCell{1, 0}));
}

TEST(HexLaTiling, FarAwayCellsStillMapConsistently) {
  const HexLaTiling tiling(3);
  const HexCell far{100000, -54321};
  const HexCell center = tiling.la_center(far);
  EXPECT_LE(hex_distance(far, center), 3);
  EXPECT_EQ(tiling.la_center(center), center);
}

}  // namespace
}  // namespace pcn::geometry
