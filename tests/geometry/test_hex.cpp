#include "pcn/geometry/hex.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "pcn/common/error.hpp"

namespace pcn::geometry {
namespace {

TEST(HexDistance, ZeroOnlyForIdenticalCells) {
  EXPECT_EQ(hex_distance(HexCell{2, -1}, HexCell{2, -1}), 0);
  EXPECT_GT(hex_distance(HexCell{2, -1}, HexCell{2, 0}), 0);
}

TEST(HexDistance, UnitDirectionsAreAtDistanceOne) {
  for (const HexCell& dir : hex_directions()) {
    EXPECT_EQ(hex_distance(HexCell{0, 0}, dir), 1);
  }
}

TEST(HexDistance, IsSymmetricAndTranslationInvariant) {
  const HexCell a{3, -2};
  const HexCell b{-1, 4};
  const HexCell shift{7, -5};
  EXPECT_EQ(hex_distance(a, b), hex_distance(b, a));
  EXPECT_EQ(hex_distance(hex_add(a, shift), hex_add(b, shift)),
            hex_distance(a, b));
}

TEST(HexDistance, SatisfiesTriangleInequalityOnASample) {
  const std::vector<HexCell> cells = hex_disk(HexCell{}, 4);
  for (const HexCell& a : cells) {
    for (const HexCell& b : cells) {
      for (const HexCell& c : cells) {
        EXPECT_LE(hex_distance(a, c),
                  hex_distance(a, b) + hex_distance(b, c));
      }
    }
  }
}

TEST(HexNeighbors, SixDistinctCellsAtDistanceOne) {
  const HexCell center{5, 5};
  const auto neighbors = hex_neighbors(center);
  std::set<std::pair<std::int64_t, std::int64_t>> unique;
  for (const HexCell& n : neighbors) {
    EXPECT_EQ(hex_distance(center, n), 1);
    unique.insert({n.q, n.r});
  }
  EXPECT_EQ(unique.size(), 6u);
}

TEST(HexRing, SizesMatchSixTimesIndex) {
  for (int i = 0; i <= 12; ++i) {
    const auto ring = hex_ring(HexCell{1, -3}, i);
    EXPECT_EQ(ring.size(), static_cast<std::size_t>(i == 0 ? 1 : 6 * i));
  }
}

TEST(HexRing, EveryCellIsAtExactlyTheRingDistance) {
  const HexCell center{-4, 9};
  for (int i = 1; i <= 10; ++i) {
    for (const HexCell& cell : hex_ring(center, i)) {
      EXPECT_EQ(hex_distance(center, cell), i) << "ring " << i;
    }
  }
}

TEST(HexRing, CellsAreDistinct) {
  for (int i = 1; i <= 10; ++i) {
    const auto ring = hex_ring(HexCell{}, i);
    std::unordered_set<HexCell, HexCellHash> unique(ring.begin(), ring.end());
    EXPECT_EQ(unique.size(), ring.size()) << "ring " << i;
  }
}

TEST(HexRing, RejectsNegativeIndex) {
  EXPECT_THROW(hex_ring(HexCell{}, -1), InvalidArgument);
}

TEST(HexDisk, EnumeratesCenteredHexagonalNumbers) {
  for (int d = 0; d <= 10; ++d) {
    const auto disk = hex_disk(HexCell{2, 2}, d);
    EXPECT_EQ(disk.size(), static_cast<std::size_t>(3 * d * (d + 1) + 1));
  }
}

TEST(HexDisk, OrderedByRingAndDuplicateFree) {
  const HexCell center{0, 0};
  const auto disk = hex_disk(center, 5);
  std::int64_t previous = 0;
  std::unordered_set<HexCell, HexCellHash> unique;
  for (const HexCell& cell : disk) {
    const std::int64_t dist = hex_distance(center, cell);
    EXPECT_GE(dist, previous);
    previous = dist;
    EXPECT_TRUE(unique.insert(cell).second);
  }
}

TEST(HexDisk, ContainsExactlyCellsWithinDistance) {
  // Cross-check membership against a bounding-box scan.
  const int d = 4;
  const auto disk = hex_disk(HexCell{}, d);
  const std::unordered_set<HexCell, HexCellHash> in_disk(disk.begin(),
                                                         disk.end());
  for (std::int64_t q = -2 * d; q <= 2 * d; ++q) {
    for (std::int64_t r = -2 * d; r <= 2 * d; ++r) {
      const HexCell cell{q, r};
      const bool within = hex_distance(HexCell{}, cell) <= d;
      EXPECT_EQ(in_disk.count(cell) == 1, within)
          << "(" << q << ", " << r << ")";
    }
  }
}

// --- Paper Figure 3: edge counts of rings 1 and 2 -------------------------

TEST(RingEdgeProfile, RingOneMatchesPaperFigure3a) {
  // 6 cells x 6 edges = 36: 18 outward, 6 inward, 12 sideways.
  const MoveProfile profile = ring_edge_profile(1);
  EXPECT_EQ(profile.outward, 18);
  EXPECT_EQ(profile.inward, 6);
  EXPECT_EQ(profile.sideways, 12);
}

TEST(RingEdgeProfile, RingTwoMatchesPaperFigure3b) {
  // 12 cells x 6 edges = 72; p+ = 5/12 -> 30 outward, p- = 1/4 -> 18 inward.
  const MoveProfile profile = ring_edge_profile(2);
  EXPECT_EQ(profile.outward, 30);
  EXPECT_EQ(profile.inward, 18);
  EXPECT_EQ(profile.sideways, 24);
}

class RingTransitionFractions : public ::testing::TestWithParam<int> {};

TEST_P(RingTransitionFractions, MatchPaperEquations39And40) {
  // Averaged over ring i: p+(i) = 1/3 + 1/(6i), p-(i) = 1/3 - 1/(6i).
  const int ring = GetParam();
  const MoveProfile profile = ring_edge_profile(ring);
  const double edges = 6.0 * 6.0 * ring;
  EXPECT_DOUBLE_EQ(profile.outward / edges, 1.0 / 3 + 1.0 / (6 * ring));
  EXPECT_DOUBLE_EQ(profile.inward / edges, 1.0 / 3 - 1.0 / (6 * ring));
}

INSTANTIATE_TEST_SUITE_P(RingsOneToTwelve, RingTransitionFractions,
                         ::testing::Range(1, 13));

TEST(ClassifyMoves, CenterCellHasOnlyOutwardMoves) {
  const MoveProfile profile = classify_moves(HexCell{}, HexCell{});
  EXPECT_EQ(profile.outward, 6);
  EXPECT_EQ(profile.inward, 0);
  EXPECT_EQ(profile.sideways, 0);
}

TEST(ClassifyMoves, CornerCellsOfARingHaveOneInwardMove) {
  // Corner cells of ring i sit along a lattice direction from the center;
  // exactly one neighbor is closer.
  const HexCell corner = hex_scaled_add(HexCell{}, hex_directions()[0], 3);
  const MoveProfile profile = classify_moves(HexCell{}, corner);
  EXPECT_EQ(profile.inward, 1);
  EXPECT_EQ(profile.outward, 3);
  EXPECT_EQ(profile.sideways, 2);
}

TEST(HexCellHash, DistinguishesNearbyCells) {
  HexCellHash hash;
  std::set<std::size_t> hashes;
  for (const HexCell& cell : hex_disk(HexCell{}, 8)) {
    hashes.insert(hash(cell));
  }
  // No collisions among a few hundred nearby cells.
  EXPECT_EQ(hashes.size(), hex_disk(HexCell{}, 8).size());
}

}  // namespace
}  // namespace pcn::geometry
