#include "pcn/geometry/spiral.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pcn/common/error.hpp"
#include "pcn/geometry/ring_metrics.hpp"

namespace pcn::geometry {
namespace {

TEST(Spiral, CenterIsIndexZero) {
  EXPECT_EQ(hex_spiral_index(HexCell{}), 0);
  EXPECT_EQ(hex_from_spiral(0), (HexCell{}));
  const HexCell other{7, -3};
  EXPECT_EQ(hex_spiral_index(other, other), 0);
  EXPECT_EQ(hex_from_spiral(0, other), other);
}

TEST(Spiral, RingBoundariesMatchCenteredHexagonalNumbers) {
  // Ring r occupies indices [3(r-1)r + 1, 3r(r+1)].
  for (int ring = 1; ring <= 6; ++ring) {
    const std::int64_t first = 3 * (ring - 1) * ring + 1;
    const std::int64_t last = 3 * ring * (ring + 1);
    EXPECT_EQ(hex_distance(HexCell{}, hex_from_spiral(first)), ring);
    EXPECT_EQ(hex_distance(HexCell{}, hex_from_spiral(last)), ring);
    EXPECT_EQ(hex_distance(HexCell{}, hex_from_spiral(last + 1)), ring + 1);
  }
}

TEST(Spiral, RoundTripsOverADisk) {
  const HexCell center{3, -8};
  for (const HexCell& cell : hex_disk(center, 12)) {
    const std::int64_t index = hex_spiral_index(cell, center);
    EXPECT_EQ(hex_from_spiral(index, center), cell);
  }
}

TEST(Spiral, InverseRoundTripsOverARange) {
  for (std::int64_t index = 0; index < 1000; ++index) {
    const HexCell cell = hex_from_spiral(index);
    EXPECT_EQ(hex_spiral_index(cell), index) << "index " << index;
  }
}

TEST(Spiral, EnumeratesTheDiskInHexDiskOrder) {
  const auto disk = hex_disk(HexCell{}, 7);
  for (std::size_t k = 0; k < disk.size(); ++k) {
    EXPECT_EQ(hex_spiral_index(disk[k]), static_cast<std::int64_t>(k));
  }
}

TEST(Spiral, IndicesAreABijectionOnTheDisk) {
  std::set<std::int64_t> indices;
  const int d = 9;
  for (const HexCell& cell : hex_disk(HexCell{}, d)) {
    indices.insert(hex_spiral_index(cell));
  }
  EXPECT_EQ(static_cast<std::int64_t>(indices.size()),
            cells_within(Dimension::kTwoD, d));
  EXPECT_EQ(*indices.begin(), 0);
  EXPECT_EQ(*indices.rbegin(), cells_within(Dimension::kTwoD, d) - 1);
}

TEST(Spiral, IndexMagnitudeGrowsWithDistance) {
  // Any cell strictly closer to the center has a strictly smaller ring
  // block, hence smaller maximum index.
  const HexCell near{1, 0};
  const HexCell far{5, -2};
  EXPECT_LT(hex_spiral_index(near), hex_spiral_index(far));
}

TEST(Spiral, WorksForLargeIndices) {
  const std::int64_t index = 2999999;  // ring ~1000
  const HexCell cell = hex_from_spiral(index);
  EXPECT_EQ(hex_spiral_index(cell), index);
}

TEST(Spiral, RejectsNegativeIndex) {
  EXPECT_THROW(hex_from_spiral(-1), InvalidArgument);
}

}  // namespace
}  // namespace pcn::geometry
