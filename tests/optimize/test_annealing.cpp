#include "pcn/optimize/annealing.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "pcn/common/error.hpp"
#include "pcn/optimize/exhaustive.hpp"

namespace pcn::optimize {
namespace {

constexpr MobilityProfile kPaperProfile{0.05, 0.01};

costs::CostModel paper_model(Dimension dim, double update_cost) {
  return costs::CostModel::exact(dim, kPaperProfile,
                                 CostWeights{update_cost, 10.0});
}

TEST(SimulatedAnnealing, IsDeterministicForAFixedSeed) {
  const costs::CostModel model = paper_model(Dimension::kTwoD, 200.0);
  AnnealingConfig config;
  config.seed = 123;
  const Optimum a = simulated_annealing(model, DelayBound(3), config);
  const Optimum b = simulated_annealing(model, DelayBound(3), config);
  EXPECT_EQ(a.threshold, b.threshold);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(SimulatedAnnealing, StaysInsideTheCandidateDomain) {
  const costs::CostModel model = paper_model(Dimension::kOneD, 1000.0);
  AnnealingConfig config;
  config.max_threshold = 8;
  const Optimum optimum =
      simulated_annealing(model, DelayBound::unbounded(), config);
  EXPECT_GE(optimum.threshold, 0);
  EXPECT_LE(optimum.threshold, 8);
}

class AnnealingQuality
    : public ::testing::TestWithParam<std::tuple<Dimension, double, int>> {};

TEST_P(AnnealingQuality, MatchesExhaustiveOptimumCostClosely) {
  // The paper's cooling schedule should land on (or within a whisker of)
  // the global optimum for the published parameter grid.
  const auto& [dim, update_cost, delay] = GetParam();
  const costs::CostModel model = paper_model(dim, update_cost);
  const DelayBound bound = delay == 0 ? DelayBound::unbounded()
                                      : DelayBound(delay);

  const Optimum exact = exhaustive_search(model, bound, 60);
  AnnealingConfig config;
  config.max_threshold = 60;
  config.seed = 7;
  const Optimum annealed = simulated_annealing(model, bound, config);

  EXPECT_LE(annealed.total_cost, exact.total_cost * 1.02 + 1e-12)
      << "annealing landed at d = " << annealed.threshold << " vs d* = "
      << exact.threshold;
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, AnnealingQuality,
    ::testing::Combine(::testing::Values(Dimension::kOneD, Dimension::kTwoD),
                       ::testing::Values(10.0, 100.0, 500.0),
                       ::testing::Values(0, 1, 2, 3)));

TEST(SimulatedAnnealing, ReportsTheCostOfTheReturnedThreshold) {
  const costs::CostModel model = paper_model(Dimension::kTwoD, 100.0);
  const DelayBound bound(2);
  const Optimum optimum = simulated_annealing(model, bound, {});
  EXPECT_DOUBLE_EQ(optimum.total_cost,
                   model.total_cost(optimum.threshold, bound));
}

TEST(SimulatedAnnealing, MemoizationKeepsEvaluationsBelowIterations) {
  // The default schedule runs ~40k iterations; memoization means only the
  // distinct thresholds visited (at most max_threshold + 1) are evaluated.
  const costs::CostModel model = paper_model(Dimension::kOneD, 100.0);
  AnnealingConfig config;
  config.max_threshold = 30;
  const Optimum optimum = simulated_annealing(model, DelayBound(1), config);
  EXPECT_LE(optimum.evaluations, 31);
  EXPECT_GT(optimum.evaluations, 0);
}

TEST(SimulatedAnnealing, ValidatesConfiguration) {
  const costs::CostModel model = paper_model(Dimension::kOneD, 100.0);
  AnnealingConfig bad;
  bad.max_threshold = -1;
  EXPECT_THROW(simulated_annealing(model, DelayBound(1), bad),
               InvalidArgument);
  bad = {};
  bad.y = 0.0;
  EXPECT_THROW(simulated_annealing(model, DelayBound(1), bad),
               InvalidArgument);
  bad = {};
  bad.exit_temperature = 1.5;
  EXPECT_THROW(simulated_annealing(model, DelayBound(1), bad),
               InvalidArgument);
  bad = {};
  bad.neighborhood = 0;
  EXPECT_THROW(simulated_annealing(model, DelayBound(1), bad),
               InvalidArgument);
}

TEST(SimulatedAnnealing, SurvivesTheFlatUnboundedSurface) {
  // Regression: with unbounded delay the cost surface is nearly flat far
  // from the optimum (differences ~1e-3), where short annealing runs used
  // to stall as an undirected walk (this exact configuration once returned
  // d = 14 at 4.6x the optimal cost).  The default schedule must cover the
  // domain and land on the scan optimum.
  const costs::CostModel model = paper_model(Dimension::kTwoD, 10.0);
  const DelayBound bound = DelayBound::unbounded();
  const Optimum scan = exhaustive_search(model, bound, 80);
  AnnealingConfig config;
  config.max_threshold = 80;
  config.seed = 99;
  const Optimum annealed = simulated_annealing(model, bound, config);
  EXPECT_LE(annealed.total_cost, scan.total_cost * 1.001 + 1e-12);
}

TEST(SimulatedAnnealing, DegenerateDomainReturnsDZero) {
  const costs::CostModel model = paper_model(Dimension::kOneD, 100.0);
  AnnealingConfig config;
  config.max_threshold = 0;
  const Optimum optimum = simulated_annealing(model, DelayBound(1), config);
  EXPECT_EQ(optimum.threshold, 0);
}

}  // namespace
}  // namespace pcn::optimize
