#include "pcn/optimize/near_optimal.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "pcn/common/error.hpp"
#include "pcn/optimize/exhaustive.hpp"

namespace pcn::optimize {
namespace {

constexpr MobilityProfile kPaperProfile{0.05, 0.01};

costs::CostModel paper_model(Dimension dim, double update_cost) {
  return costs::CostModel::exact(dim, kPaperProfile,
                                 CostWeights{update_cost, 10.0});
}

TEST(NearOptimal, OneDimNearOptimalEqualsExactOptimum) {
  // In 1-D the "approximate" chain is the exact chain, so d' = d*.
  for (double update_cost : {10.0, 100.0, 700.0}) {
    const costs::CostModel model = paper_model(Dimension::kOneD, update_cost);
    const Optimum exact = exhaustive_search(model, DelayBound(2), 60);
    const Optimum near = near_optimal_search(model, DelayBound(2), 60);
    EXPECT_EQ(near.threshold, exact.threshold) << "U = " << update_cost;
    EXPECT_NEAR(near.total_cost, exact.total_cost, 1e-12);
  }
}

TEST(NearOptimal, ReportsCostUnderTheExactModel) {
  const costs::CostModel model = paper_model(Dimension::kTwoD, 300.0);
  const DelayBound bound(3);
  const Optimum near = near_optimal_search(model, bound, 60);
  EXPECT_DOUBLE_EQ(near.total_cost, model.total_cost(near.threshold, bound));
}

TEST(NearOptimal, WithinOneRingOfTheExactOptimumAlmostAlways) {
  // Paper §7: "the differences between d* and d' are within 1 from each
  // other almost all the time" — its own Table 2 contains a 2-ring gap
  // (U = 600, m = 3: d* = 5, d' = 3), so require <= 2 always and <= 1 for
  // the large majority of the grid.
  int beyond_one = 0;
  int cases = 0;
  for (double update_cost :
       {1.0, 5.0, 9.0, 20.0, 50.0, 100.0, 300.0, 600.0, 1000.0}) {
    for (int delay : {1, 3, 0}) {
      const DelayBound bound =
          delay == 0 ? DelayBound::unbounded() : DelayBound(delay);
      const costs::CostModel model =
          paper_model(Dimension::kTwoD, update_cost);
      const Optimum exact = exhaustive_search(model, bound, 60);
      const Optimum near = near_optimal_search(model, bound, 60);
      const int gap = std::abs(near.threshold - exact.threshold);
      EXPECT_LE(gap, 2) << "U = " << update_cost << " m = " << delay;
      if (gap > 1) ++beyond_one;
      ++cases;
    }
  }
  EXPECT_LE(beyond_one * 5, cases);  // at most 20% of the grid
}

TEST(NearOptimal, CostPenaltyIsSmallWheneverThresholdsAgree) {
  for (double update_cost : {50.0, 100.0, 500.0}) {
    const costs::CostModel model = paper_model(Dimension::kTwoD, update_cost);
    const DelayBound bound(3);
    const Optimum exact = exhaustive_search(model, bound, 60);
    const Optimum near = near_optimal_search(model, bound, 60);
    if (near.threshold == exact.threshold) {
      EXPECT_NEAR(near.total_cost, exact.total_cost, 1e-12);
    } else {
      // Paper §7: when they differ the penalty stays moderate (well under
      // the 2x worst case the uncorrected d' = 0 could produce).
      EXPECT_LE(near.total_cost, exact.total_cost * 1.35);
    }
  }
}

TEST(NearOptimal, DZeroCorrectionPromotesToOneWhenCheaper) {
  // The paper's fix targets its own approximate evaluation (the published
  // Table 2 d' columns), which lands on d' = 0 across U = 20..70 while the
  // exact optimum is 1, costing up to ~2x (e.g. U = 40, m = 3: 2.100 vs
  // 0.957).  With `use_published_approximation` the correction must
  // engage and return 1.
  const DelayBound bound(3);
  int corrections = 0;
  for (double update_cost : {20.0, 30.0, 40.0}) {
    const costs::CostModel exact_model =
        paper_model(Dimension::kTwoD, update_cost);
    costs::CostModelOptions legacy;
    legacy.legacy_d0_generic_update_rate = true;
    const costs::CostModel published_approx =
        costs::CostModel::approximate_2d(kPaperProfile,
                                         CostWeights{update_cost, 10.0},
                                         legacy);
    ASSERT_EQ(exhaustive_search(published_approx, bound, 60).threshold, 0)
        << "U = " << update_cost;
    ASSERT_EQ(exhaustive_search(exact_model, bound, 60).threshold, 1)
        << "U = " << update_cost;

    const Optimum corrected = near_optimal_search(
        exact_model, bound, 60, /*use_published_approximation=*/true);
    EXPECT_EQ(corrected.threshold, 1) << "U = " << update_cost;
    ++corrections;
  }
  EXPECT_EQ(corrections, 3);
}

TEST(NearOptimal, RejectsNegativeMaxThreshold) {
  EXPECT_THROW(near_optimal_search(paper_model(Dimension::kTwoD, 100.0),
                                   DelayBound(1), -1),
               InvalidArgument);
}

}  // namespace
}  // namespace pcn::optimize
