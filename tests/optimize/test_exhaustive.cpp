#include "pcn/optimize/exhaustive.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"

namespace pcn::optimize {
namespace {

constexpr MobilityProfile kPaperProfile{0.05, 0.01};

costs::CostModel paper_model(Dimension dim, double update_cost) {
  return costs::CostModel::exact(dim, kPaperProfile,
                                 CostWeights{update_cost, 10.0});
}

TEST(ExhaustiveSearch, EvaluatesEveryCandidateOnce) {
  const Optimum optimum =
      exhaustive_search(paper_model(Dimension::kOneD, 100.0), DelayBound(1),
                        30);
  EXPECT_EQ(optimum.evaluations, 31);
}

TEST(ExhaustiveSearch, FindsTable1OptimaAtU100) {
  const costs::CostModel model = paper_model(Dimension::kOneD, 100.0);
  EXPECT_EQ(exhaustive_search(model, DelayBound(1), 60).threshold, 3);
  EXPECT_EQ(exhaustive_search(model, DelayBound(2), 60).threshold, 4);
  EXPECT_EQ(exhaustive_search(model, DelayBound(3), 60).threshold, 5);
  EXPECT_EQ(exhaustive_search(model, DelayBound::unbounded(), 60).threshold,
            7);
}

TEST(ExhaustiveSearch, FindsTable2OptimaAtU100) {
  const costs::CostModel model = paper_model(Dimension::kTwoD, 100.0);
  EXPECT_EQ(exhaustive_search(model, DelayBound(1), 60).threshold, 1);
  EXPECT_EQ(exhaustive_search(model, DelayBound(3), 60).threshold, 2);
  EXPECT_EQ(exhaustive_search(model, DelayBound::unbounded(), 60).threshold,
            2);
}

TEST(ExhaustiveSearch, ReturnedCostMatchesModelEvaluation) {
  const costs::CostModel model = paper_model(Dimension::kTwoD, 300.0);
  const DelayBound bound(3);
  const Optimum optimum = exhaustive_search(model, bound, 40);
  EXPECT_DOUBLE_EQ(optimum.total_cost,
                   model.total_cost(optimum.threshold, bound));
}

TEST(ExhaustiveSearch, ResultIsAGlobalMinimumOverTheScan) {
  const costs::CostModel model = paper_model(Dimension::kTwoD, 500.0);
  const DelayBound bound(2);
  const Optimum optimum = exhaustive_search(model, bound, 40);
  for (int d = 0; d <= 40; ++d) {
    EXPECT_GE(model.total_cost(d, bound), optimum.total_cost - 1e-12)
        << "d = " << d;
  }
}

TEST(ExhaustiveSearch, LargerUpdateCostNeverShrinksTheOptimalThreshold) {
  // Table 1/2 monotonicity: d* is non-decreasing in U.
  const DelayBound bound(3);
  int previous = 0;
  for (double update_cost : {1.0, 10.0, 50.0, 100.0, 400.0, 1000.0}) {
    const Optimum optimum = exhaustive_search(
        paper_model(Dimension::kOneD, update_cost), bound, 80);
    EXPECT_GE(optimum.threshold, previous) << "U = " << update_cost;
    previous = optimum.threshold;
  }
}

TEST(ExhaustiveSearch, TinyUpdateCostDrivesThresholdToZero) {
  const Optimum optimum =
      exhaustive_search(paper_model(Dimension::kTwoD, 1.0), DelayBound(1),
                        40);
  EXPECT_EQ(optimum.threshold, 0);
}

TEST(ExhaustiveSearch, ZeroMaxThresholdStillEvaluatesDZero) {
  const Optimum optimum = exhaustive_search(
      paper_model(Dimension::kOneD, 100.0), DelayBound(1), 0);
  EXPECT_EQ(optimum.threshold, 0);
  EXPECT_EQ(optimum.evaluations, 1);
}

TEST(ExhaustiveSearch, RejectsNegativeMaxThreshold) {
  EXPECT_THROW(exhaustive_search(paper_model(Dimension::kOneD, 100.0),
                                 DelayBound(1), -1),
               InvalidArgument);
}

}  // namespace
}  // namespace pcn::optimize
