#include "pcn/sim/network.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"

namespace pcn::sim {
namespace {

constexpr MobilityProfile kProfile{0.2, 0.05};
constexpr CostWeights kWeights{50.0, 2.0};

NetworkConfig config_2d(std::uint64_t seed,
                        SlotSemantics semantics =
                            SlotSemantics::kChainFaithful) {
  return NetworkConfig{Dimension::kTwoD, semantics, seed};
}

TEST(Network, RunsTheRequestedNumberOfSlots) {
  Network network(config_2d(1), kWeights);
  const TerminalId id = network.add_terminal(
      make_distance_terminal(Dimension::kTwoD, kProfile, 3, DelayBound(2)));
  network.run(500);
  EXPECT_EQ(network.metrics(id).slots, 500);
  network.run(250);
  EXPECT_EQ(network.metrics(id).slots, 750);
}

TEST(Network, IsDeterministicForAFixedSeed) {
  auto run_once = [] {
    Network network(config_2d(99), kWeights);
    const TerminalId id = network.add_terminal(make_distance_terminal(
        Dimension::kTwoD, kProfile, 2, DelayBound(3)));
    network.run(2000);
    return network.metrics(id);
  };
  const TerminalMetrics a = run_once();
  const TerminalMetrics b = run_once();
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.polled_cells, b.polled_cells);
}

TEST(Network, DifferentSeedsProduceDifferentTrajectories) {
  auto moves_for = [](std::uint64_t seed) {
    Network network(NetworkConfig{Dimension::kTwoD,
                                  SlotSemantics::kChainFaithful, seed},
                    kWeights);
    const TerminalId id = network.add_terminal(make_distance_terminal(
        Dimension::kTwoD, kProfile, 2, DelayBound(3)));
    network.run(2000);
    return network.metrics(id).moves;
  };
  EXPECT_NE(moves_for(1), moves_for(2));
}

TEST(Network, EventCountsAreStatisticallyPlausible) {
  Network network(config_2d(7), kWeights);
  const TerminalId id = network.add_terminal(
      make_distance_terminal(Dimension::kTwoD, kProfile, 3, DelayBound(2)));
  const std::int64_t slots = 200000;
  network.run(slots);
  const TerminalMetrics& m = network.metrics(id);
  // Chain-faithful: P(move) = q, P(call) = c exactly.
  EXPECT_NEAR(static_cast<double>(m.moves) / static_cast<double>(slots),
              kProfile.move_prob, 0.01);
  EXPECT_NEAR(static_cast<double>(m.calls) / static_cast<double>(slots),
              kProfile.call_prob, 0.005);
}

TEST(Network, CostAccountingMatchesEventCounts) {
  Network network(config_2d(3), kWeights);
  const TerminalId id = network.add_terminal(
      make_distance_terminal(Dimension::kTwoD, kProfile, 2, DelayBound(2)));
  network.run(20000);
  const TerminalMetrics& m = network.metrics(id);
  EXPECT_DOUBLE_EQ(m.update_cost,
                   static_cast<double>(m.updates) * kWeights.update_cost);
  EXPECT_DOUBLE_EQ(m.paging_cost,
                   static_cast<double>(m.polled_cells) * kWeights.poll_cost);
  EXPECT_DOUBLE_EQ(m.total_cost(), m.update_cost + m.paging_cost);
  EXPECT_EQ(m.paging_cycles.total(), m.calls);
}

class NetworkInvariants
    : public ::testing::TestWithParam<SlotSemantics> {};

TEST_P(NetworkInvariants, DistancePolicyNeverExceedsItsThreshold) {
  const int d = 3;
  Network network(config_2d(11, GetParam()), kWeights);
  const TerminalId id = network.add_terminal(
      make_distance_terminal(Dimension::kTwoD, kProfile, d, DelayBound(2)));
  network.run(50000);
  // Ring-distance occupancy is sampled after the update check, so the
  // distance must never exceed d.
  EXPECT_LE(network.metrics(id).ring_distance.max_value(), d);
}

TEST_P(NetworkInvariants, PagingDelayBoundHolds) {
  const DelayBound bound(2);
  Network network(config_2d(13, GetParam()), kWeights);
  const TerminalId id = network.add_terminal(
      make_distance_terminal(Dimension::kTwoD, kProfile, 5, bound));
  network.run(50000);
  const TerminalMetrics& m = network.metrics(id);
  ASSERT_GT(m.calls, 0);
  EXPECT_LE(m.paging_cycles.max_value(), bound.cycles());
}

TEST_P(NetworkInvariants, AllPolicyKindsRunCleanly) {
  Network network(config_2d(17, GetParam()), kWeights);
  const TerminalId distance = network.add_terminal(
      make_distance_terminal(Dimension::kTwoD, kProfile, 3, DelayBound(2)));
  const TerminalId movement = network.add_terminal(
      make_movement_terminal(Dimension::kTwoD, kProfile, 4, DelayBound(3)));
  const TerminalId time = network.add_terminal(
      make_time_terminal(Dimension::kTwoD, kProfile, 20));
  const TerminalId la =
      network.add_terminal(make_la_terminal(Dimension::kTwoD, kProfile, 2));
  network.run(20000);
  for (TerminalId id : {distance, movement, time, la}) {
    const TerminalMetrics& m = network.metrics(id);
    EXPECT_EQ(m.slots, 20000);
    EXPECT_GT(m.calls, 0) << "terminal " << id;
    EXPECT_GT(m.updates, 0) << "terminal " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(BothSemantics, NetworkInvariants,
                         ::testing::Values(SlotSemantics::kChainFaithful,
                                           SlotSemantics::kIndependent));

TEST(Network, MovementPolicyUpdatesEveryMaxMovesCrossings) {
  // With calls disabled-ish (tiny c), updates ~= moves / max_moves.
  const MobilityProfile profile{0.3, 0.0001};
  Network network(config_2d(23), kWeights);
  const TerminalId id = network.add_terminal(
      make_movement_terminal(Dimension::kTwoD, profile, 5, DelayBound(2)));
  network.run(100000);
  const TerminalMetrics& m = network.metrics(id);
  EXPECT_NEAR(static_cast<double>(m.updates),
              static_cast<double>(m.moves) / 5.0,
              static_cast<double>(m.moves) * 0.01 + 10);
}

TEST(Network, TimePolicyUpdatesAtMostEveryPeriod) {
  const MobilityProfile profile{0.1, 0.0001};
  Network network(config_2d(29), kWeights);
  const TerminalId id = network.add_terminal(
      make_time_terminal(Dimension::kTwoD, profile, 50));
  const std::int64_t slots = 100000;
  network.run(slots);
  const TerminalMetrics& m = network.metrics(id);
  // Roughly one update per 50 slots (calls are rare).
  EXPECT_NEAR(static_cast<double>(m.updates),
              static_cast<double>(slots) / 50.0, slots / 50.0 * 0.1);
}

TEST(Network, LaPolicyBlanketPagesTheLa) {
  Network network(config_2d(31), kWeights);
  const TerminalId id =
      network.add_terminal(make_la_terminal(Dimension::kTwoD, kProfile, 2));
  network.run(20000);
  const TerminalMetrics& m = network.metrics(id);
  ASSERT_GT(m.calls, 0);
  // Every page polls exactly the 19-cell LA in a single cycle.
  EXPECT_EQ(m.polled_cells, m.calls * 19);
  EXPECT_EQ(m.paging_cycles.max_value(), 1);
}

TEST(Network, RejectsIncompleteSpecsAndBadQueries) {
  Network network(config_2d(1), kWeights);
  EXPECT_THROW(network.add_terminal(TerminalSpec{}), InvalidArgument);
  EXPECT_THROW(network.metrics(0), InvalidArgument);
  EXPECT_THROW(network.run(-1), InvalidArgument);
}

TEST(Network, ChainFaithfulRejectsOverfullEventMass) {
  Network network(config_2d(1), kWeights);
  TerminalSpec spec =
      make_distance_terminal(Dimension::kTwoD, kProfile, 2, DelayBound(1));
  spec.call_prob = 0.85;  // q + c > 1
  network.add_terminal(std::move(spec));
  EXPECT_THROW(network.run(10), InvalidArgument);
}

}  // namespace
}  // namespace pcn::sim
