#include "pcn/sim/location_server.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"

namespace pcn::sim {
namespace {

using geometry::Cell;

TEST(Knowledge, FixedDiskRadiusIsConstant) {
  const Knowledge k{KnowledgeKind::kFixedDisk, Cell{}, 4, 10};
  EXPECT_EQ(k.radius_at(10), 4);
  EXPECT_EQ(k.radius_at(1000), 4);
}

TEST(Knowledge, GrowingDiskGrowsOneRingPerSlotUpToTheCap) {
  const Knowledge k{KnowledgeKind::kGrowingDisk, Cell{}, 5, 100};
  EXPECT_EQ(k.radius_at(100), 0);
  EXPECT_EQ(k.radius_at(103), 3);
  EXPECT_EQ(k.radius_at(105), 5);
  EXPECT_EQ(k.radius_at(200), 5);  // capped
}

TEST(Knowledge, LocationAreaRadiusIsTheLaRadius) {
  const Knowledge k{KnowledgeKind::kLocationArea, Cell{}, 2, 0};
  EXPECT_EQ(k.radius_at(50), 2);
}

TEST(Knowledge, RejectsQueriesBeforeTheLastRefresh) {
  const Knowledge k{KnowledgeKind::kGrowingDisk, Cell{}, 5, 100};
  EXPECT_THROW(k.radius_at(99), InvalidArgument);
}

TEST(LocationServer, RegistersAndReportsKnowledge) {
  LocationServer server(Dimension::kTwoD);
  server.register_terminal(7, KnowledgeKind::kFixedDisk, 3, Cell{1, 1}, 0);
  const Knowledge& k = server.knowledge(7);
  EXPECT_EQ(k.center, (Cell{1, 1}));
  EXPECT_EQ(k.radius, 3);
  EXPECT_EQ(k.since, 0);
}

TEST(LocationServer, RejectsDuplicateRegistrationAndUnknownIds) {
  LocationServer server(Dimension::kTwoD);
  server.register_terminal(1, KnowledgeKind::kFixedDisk, 2, Cell{}, 0);
  EXPECT_THROW(
      server.register_terminal(1, KnowledgeKind::kFixedDisk, 2, Cell{}, 0),
      InvalidArgument);
  EXPECT_THROW(server.knowledge(2), InvalidArgument);
  EXPECT_THROW(server.on_update(2, Cell{}, 1), InvalidArgument);
}

TEST(LocationServer, UpdateMovesTheCenterAndRefreshesTheClock) {
  LocationServer server(Dimension::kTwoD);
  server.register_terminal(0, KnowledgeKind::kGrowingDisk, 50, Cell{}, 0);
  server.on_update(0, Cell{4, -2}, 12);
  const Knowledge& k = server.knowledge(0);
  EXPECT_EQ(k.center, (Cell{4, -2}));
  EXPECT_EQ(k.since, 12);
  EXPECT_EQ(k.radius_at(12), 0);
}

TEST(LocationServer, LocatedBehavesLikeAnUpdate) {
  LocationServer server(Dimension::kOneD);
  server.register_terminal(0, KnowledgeKind::kFixedDisk, 2, Cell{}, 0);
  server.on_located(0, Cell{9, 0}, 5);
  EXPECT_EQ(server.knowledge(0).center, (Cell{9, 0}));
  EXPECT_EQ(server.knowledge(0).since, 5);
}

TEST(LocationServer, LocationAreaKnowledgeStoresTheLaCenter) {
  LocationServer server(Dimension::kTwoD);
  // Radius-1 LAs: cell (1, 0) belongs to the LA centered at the origin.
  server.register_terminal(0, KnowledgeKind::kLocationArea, 1, Cell{1, 0},
                           0);
  EXPECT_EQ(server.knowledge(0).center, (Cell{0, 0}));
  // An update from a far cell re-centers on that cell's LA center.
  const geometry::CellLaTiling tiling(Dimension::kTwoD, 1);
  const Cell far{10, 3};
  server.on_update(0, far, 4);
  EXPECT_EQ(server.knowledge(0).center, tiling.la_center(far));
}

TEST(LocationServer, RejectsNegativeRadius) {
  LocationServer server(Dimension::kOneD);
  EXPECT_THROW(
      server.register_terminal(0, KnowledgeKind::kFixedDisk, -1, Cell{}, 0),
      InvalidArgument);
}

TEST(LocationServer, TracksMultipleTerminalsIndependently) {
  LocationServer server(Dimension::kTwoD);
  server.register_terminal(0, KnowledgeKind::kFixedDisk, 1, Cell{}, 0);
  server.register_terminal(1, KnowledgeKind::kFixedDisk, 9, Cell{5, 5}, 0);
  server.on_update(0, Cell{2, 2}, 3);
  EXPECT_EQ(server.knowledge(0).center, (Cell{2, 2}));
  EXPECT_EQ(server.knowledge(1).center, (Cell{5, 5}));
  EXPECT_EQ(server.knowledge(1).radius, 9);
}

}  // namespace
}  // namespace pcn::sim
