// Air-interface byte accounting: the simulator encodes every signalling
// message with the proto codec and aggregates frame sizes per terminal.
#include <gtest/gtest.h>

#include "pcn/proto/messages.hpp"
#include "pcn/sim/network.hpp"

namespace pcn::sim {
namespace {

constexpr MobilityProfile kProfile{0.2, 0.05};
constexpr CostWeights kWeights{50.0, 2.0};

Network make_network(std::uint64_t seed, bool count_bytes = true) {
  NetworkConfig config{Dimension::kTwoD, SlotSemantics::kChainFaithful,
                       seed};
  config.count_signalling_bytes = count_bytes;
  return Network(config, kWeights);
}

TEST(SignallingBytes, AccumulateForBothMessageDirections) {
  Network network = make_network(1);
  const TerminalId id = network.add_terminal(
      make_distance_terminal(Dimension::kTwoD, kProfile, 3, DelayBound(2)));
  network.run(20000);
  const TerminalMetrics& m = network.metrics(id);
  ASSERT_GT(m.updates, 0);
  ASSERT_GT(m.calls, 0);
  EXPECT_GT(m.update_bytes, 0);
  EXPECT_GT(m.paging_bytes, 0);
  EXPECT_EQ(m.total_bytes(), m.update_bytes + m.paging_bytes);
}

TEST(SignallingBytes, UpdateBytesScaleWithUpdateCount) {
  Network network = make_network(2);
  const TerminalId id = network.add_terminal(
      make_distance_terminal(Dimension::kTwoD, kProfile, 2, DelayBound(1)));
  network.run(20000);
  const TerminalMetrics& m = network.metrics(id);
  // Every update frame is small (id + sequence + cell + radius + framing):
  // between the 6-byte floor and ~30 bytes.
  ASSERT_GT(m.updates, 0);
  const double per_update =
      static_cast<double>(m.update_bytes) / static_cast<double>(m.updates);
  EXPECT_GE(per_update, 6.0);
  EXPECT_LE(per_update, 30.0);
}

TEST(SignallingBytes, PagingBytesReflectPolledCells) {
  // Delta-encoded page requests cost a couple of bytes per polled cell
  // plus per-cycle framing and one response frame per call.
  Network network = make_network(3);
  const TerminalId id = network.add_terminal(
      make_distance_terminal(Dimension::kTwoD, kProfile, 4, DelayBound(2)));
  network.run(20000);
  const TerminalMetrics& m = network.metrics(id);
  ASSERT_GT(m.calls, 0);
  EXPECT_GT(m.paging_bytes, m.polled_cells);          // > 1 byte per cell
  EXPECT_LT(m.paging_bytes, 6 * m.polled_cells + 40 * m.calls);
}

TEST(SignallingBytes, AccountingCanBeDisabled) {
  Network network = make_network(4, /*count_bytes=*/false);
  const TerminalId id = network.add_terminal(
      make_distance_terminal(Dimension::kTwoD, kProfile, 3, DelayBound(2)));
  network.run(20000);
  const TerminalMetrics& m = network.metrics(id);
  ASSERT_GT(m.updates, 0);
  EXPECT_EQ(m.total_bytes(), 0);
}

TEST(SignallingBytes, DoNotPerturbTheSimulation) {
  auto run_with = [](bool count_bytes) {
    Network network = make_network(5, count_bytes);
    const TerminalId id = network.add_terminal(make_distance_terminal(
        Dimension::kTwoD, kProfile, 3, DelayBound(2)));
    network.run(20000);
    return network.metrics(id);
  };
  const TerminalMetrics with = run_with(true);
  const TerminalMetrics without = run_with(false);
  EXPECT_EQ(with.moves, without.moves);
  EXPECT_EQ(with.updates, without.updates);
  EXPECT_EQ(with.calls, without.calls);
  EXPECT_EQ(with.polled_cells, without.polled_cells);
}

TEST(SignallingBytes, LargerResidingAreasCostMorePagingBytes) {
  auto paging_bytes_for = [](int threshold) {
    Network network = make_network(6);
    const TerminalId id = network.add_terminal(make_distance_terminal(
        Dimension::kTwoD, kProfile, threshold, DelayBound(1)));
    network.run(40000);
    const TerminalMetrics& m = network.metrics(id);
    return static_cast<double>(m.paging_bytes) /
           static_cast<double>(m.calls);
  };
  EXPECT_LT(paging_bytes_for(1), paging_bytes_for(5));
}

}  // namespace
}  // namespace pcn::sim
