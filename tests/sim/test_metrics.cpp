#include "pcn/sim/metrics.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"

namespace pcn::sim {
namespace {

TEST(TerminalMetrics, FreshMetricsAreZeroed) {
  const TerminalMetrics m;
  EXPECT_EQ(m.slots, 0);
  EXPECT_EQ(m.moves, 0);
  EXPECT_EQ(m.calls, 0);
  EXPECT_EQ(m.updates, 0);
  EXPECT_EQ(m.polled_cells, 0);
  EXPECT_EQ(m.total_bytes(), 0);
  EXPECT_EQ(m.lost_updates, 0);
  EXPECT_EQ(m.paging_failures, 0);
  EXPECT_DOUBLE_EQ(m.total_cost(), 0.0);
}

TEST(TerminalMetrics, PerSlotRatesRequireSimulatedSlots) {
  const TerminalMetrics m;
  EXPECT_THROW(m.cost_per_slot(), InvalidArgument);
  EXPECT_THROW(m.update_cost_per_slot(), InvalidArgument);
  EXPECT_THROW(m.paging_cost_per_slot(), InvalidArgument);
}

TEST(TerminalMetrics, PerSlotRatesDivideBySlots) {
  TerminalMetrics m;
  m.slots = 100;
  m.update_cost = 30.0;
  m.paging_cost = 20.0;
  EXPECT_DOUBLE_EQ(m.update_cost_per_slot(), 0.3);
  EXPECT_DOUBLE_EQ(m.paging_cost_per_slot(), 0.2);
  EXPECT_DOUBLE_EQ(m.cost_per_slot(), 0.5);
  EXPECT_DOUBLE_EQ(m.total_cost(), 50.0);
}

TEST(TerminalMetrics, TotalBytesSumsBothDirections) {
  TerminalMetrics m;
  m.update_bytes = 120;
  m.paging_bytes = 45;
  EXPECT_EQ(m.total_bytes(), 165);
}

}  // namespace
}  // namespace pcn::sim
