#include "pcn/sim/terminal.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"

namespace pcn::sim {
namespace {

using geometry::Cell;

Terminal make_terminal(double call_prob = 0.01,
                       std::uint64_t seed = 1) {
  return Terminal(7, Cell{3, -1}, call_prob,
                  std::make_unique<RandomWalk>(Dimension::kTwoD, 0.1),
                  std::make_unique<DistanceUpdatePolicy>(Dimension::kTwoD, 2),
                  stats::Rng(seed));
}

TEST(Terminal, ExposesItsIdentityAndState) {
  Terminal terminal = make_terminal();
  EXPECT_EQ(terminal.id(), 7);
  EXPECT_EQ(terminal.position(), (Cell{3, -1}));
  EXPECT_DOUBLE_EQ(terminal.call_probability(), 0.01);
  EXPECT_EQ(terminal.mobility().name(), "random-walk");
  EXPECT_EQ(terminal.update_policy().name(), "distance(d=2)");
}

TEST(Terminal, MoveToChangesThePosition) {
  Terminal terminal = make_terminal();
  terminal.move_to(Cell{4, -1});
  EXPECT_EQ(terminal.position(), (Cell{4, -1}));
}

TEST(Terminal, EventAndWalkStreamsAreIndependent) {
  Terminal terminal = make_terminal();
  // The two streams are split from the same root but must not be
  // identical.
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (terminal.event_rng().next() == terminal.walk_rng().next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Terminal, SameSeedGivesSameStreams) {
  Terminal a = make_terminal(0.01, 42);
  Terminal b = make_terminal(0.01, 42);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.event_rng().next(), b.event_rng().next());
    EXPECT_EQ(a.walk_rng().next(), b.walk_rng().next());
  }
}

TEST(Terminal, ValidatesItsConstructorArguments) {
  EXPECT_THROW(make_terminal(1.0), InvalidArgument);   // call prob = 1
  EXPECT_THROW(make_terminal(-0.1), InvalidArgument);  // negative
  EXPECT_THROW(
      Terminal(1, Cell{}, 0.01, nullptr,
               std::make_unique<DistanceUpdatePolicy>(Dimension::kTwoD, 1),
               stats::Rng(1)),
      InvalidArgument);
  EXPECT_THROW(Terminal(1, Cell{}, 0.01,
                        std::make_unique<RandomWalk>(Dimension::kTwoD, 0.1),
                        nullptr, stats::Rng(1)),
               InvalidArgument);
}

}  // namespace
}  // namespace pcn::sim
