// Validation of the analytical model against the discrete-event simulator:
// under chain-faithful slot semantics the empirical ring-distance occupancy
// must converge to the Markov chain's steady state, and the measured
// per-slot costs must converge to C_u(d) and C_v(d, m).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "pcn/costs/cost_model.hpp"
#include "pcn/markov/steady_state.hpp"
#include "pcn/sim/network.hpp"

namespace pcn::sim {
namespace {

constexpr CostWeights kWeights{100.0, 10.0};

TerminalMetrics simulate(Dimension dim, MobilityProfile profile, int d,
                         DelayBound bound, std::int64_t slots,
                         std::uint64_t seed,
                         SlotSemantics semantics =
                             SlotSemantics::kChainFaithful) {
  Network network(NetworkConfig{dim, semantics, seed}, kWeights);
  const TerminalId id =
      network.add_terminal(make_distance_terminal(dim, profile, d, bound));
  network.run(slots);
  return network.metrics(id);
}

using Param = std::tuple<Dimension, double, double, int>;

class SimVsMarkov : public ::testing::TestWithParam<Param> {};

TEST_P(SimVsMarkov, RingOccupancyMatchesSteadyState) {
  const auto& [dim, q, c, d] = GetParam();
  const MobilityProfile profile{q, c};
  const std::int64_t slots = 400000;
  const TerminalMetrics metrics =
      simulate(dim, profile, d, DelayBound(2), slots, 0xfeed);

  const auto pi = markov::solve_steady_state(
      markov::ChainSpec::exact(dim, profile), d);
  for (int i = 0; i <= d; ++i) {
    const double empirical = metrics.ring_distance.fraction(i);
    // Binomial-ish tolerance; correlated samples, so allow generous slack.
    const double sigma = std::sqrt(pi[static_cast<std::size_t>(i)] /
                                   static_cast<double>(slots));
    EXPECT_NEAR(empirical, pi[static_cast<std::size_t>(i)],
                0.02 + 20 * sigma)
        << "ring " << i;
  }
}

TEST_P(SimVsMarkov, MeasuredCostsMatchTheCostModel) {
  const auto& [dim, q, c, d] = GetParam();
  const MobilityProfile profile{q, c};
  const DelayBound bound(2);
  const TerminalMetrics metrics =
      simulate(dim, profile, d, bound, 400000, 0xbeef);

  const costs::CostModel model = costs::CostModel::exact(dim, profile,
                                                         kWeights);
  const costs::CostBreakdown expected = model.cost(d, bound);
  EXPECT_NEAR(metrics.update_cost_per_slot(), expected.update,
              0.12 * expected.update + 0.003);
  EXPECT_NEAR(metrics.paging_cost_per_slot(), expected.paging,
              0.12 * expected.paging + 0.003);
  EXPECT_NEAR(metrics.cost_per_slot(), expected.total(),
              0.12 * expected.total() + 0.005);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, SimVsMarkov,
    ::testing::Values(Param{Dimension::kOneD, 0.05, 0.01, 3},
                      Param{Dimension::kOneD, 0.2, 0.02, 5},
                      Param{Dimension::kTwoD, 0.05, 0.01, 2},
                      Param{Dimension::kTwoD, 0.2, 0.02, 4},
                      Param{Dimension::kTwoD, 0.4, 0.005, 6}));

TEST(SimVsMarkov, ExpectedPagingDelayMatchesPartitionPrediction) {
  const MobilityProfile profile{0.2, 0.02};
  const Dimension dim = Dimension::kTwoD;
  const int d = 5;
  const DelayBound bound(3);
  const TerminalMetrics metrics =
      simulate(dim, profile, d, bound, 400000, 0x5eed);

  const auto pi = markov::solve_steady_state(
      markov::ChainSpec::exact(dim, profile), d);
  const double expected =
      costs::Partition::sdf(d, bound).expected_delay_cycles(pi);
  ASSERT_GT(metrics.calls, 100);
  // Histogram buckets are 1-based polling cycles.
  EXPECT_NEAR(metrics.paging_cycles.mean(), expected, 0.1);
}

TEST(SimVsMarkov, IndependentSemanticsStaysCloseToTheChainModel) {
  // The modeling gap between independent and chain-faithful semantics is
  // small for small q and c (the paper's regime).
  const MobilityProfile profile{0.05, 0.01};
  const Dimension dim = Dimension::kTwoD;
  const int d = 3;
  const DelayBound bound(2);
  const TerminalMetrics chain = simulate(dim, profile, d, bound, 400000,
                                         0xaaaa,
                                         SlotSemantics::kChainFaithful);
  const TerminalMetrics indep = simulate(dim, profile, d, bound, 400000,
                                         0xaaaa,
                                         SlotSemantics::kIndependent);
  EXPECT_NEAR(indep.cost_per_slot(), chain.cost_per_slot(),
              0.15 * chain.cost_per_slot());
}

TEST(SimVsMarkov, OptimalThresholdBeatsNeighborsInSimulationToo) {
  // End-to-end sanity: simulate d* and its neighbors; d* should not be
  // measurably worse than either.
  const MobilityProfile profile{0.05, 0.01};
  const Dimension dim = Dimension::kTwoD;
  const DelayBound bound(1);
  const costs::CostModel model =
      costs::CostModel::exact(dim, profile, kWeights);
  // Table 2, U = 100, m = 1: d* = 1.
  const double at0 = simulate(dim, profile, 0, bound, 400000, 1).cost_per_slot();
  const double at1 = simulate(dim, profile, 1, bound, 400000, 1).cost_per_slot();
  const double at3 = simulate(dim, profile, 3, bound, 400000, 1).cost_per_slot();
  EXPECT_LT(at1, at0);
  EXPECT_LT(at1, at3);
  EXPECT_NEAR(at1, model.total_cost(1, bound), 0.1 * model.total_cost(1, bound));
}

}  // namespace
}  // namespace pcn::sim
