#include "pcn/sim/paging_policy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pcn/common/error.hpp"
#include "pcn/geometry/ring_metrics.hpp"

namespace pcn::sim {
namespace {

using geometry::Cell;

Knowledge fixed_disk(Cell center, int radius, SimTime since = 0) {
  return Knowledge{KnowledgeKind::kFixedDisk, center, radius, since};
}

std::vector<Cell> full_schedule(const PagingPolicy& policy,
                                const Knowledge& knowledge, SimTime now,
                                int* groups_out = nullptr) {
  std::vector<Cell> all;
  int groups = 0;
  for (int cycle = 0;; ++cycle) {
    const auto group = policy.polling_group(knowledge, now, cycle);
    if (group.empty()) break;
    ++groups;
    all.insert(all.end(), group.begin(), group.end());
  }
  if (groups_out != nullptr) *groups_out = groups;
  return all;
}

TEST(BlanketPaging, PollsTheWholeResidingAreaInOneCycle) {
  const BlanketPaging policy(Dimension::kTwoD);
  int groups = 0;
  const auto cells = full_schedule(policy, fixed_disk(Cell{}, 3), 0, &groups);
  EXPECT_EQ(groups, 1);
  EXPECT_EQ(cells.size(),
            static_cast<std::size_t>(
                geometry::cells_within(Dimension::kTwoD, 3)));
  EXPECT_EQ(policy.delay_bound(), DelayBound(1));
}

TEST(BlanketPaging, LocationAreaKnowledgePollsTheLa) {
  const BlanketPaging policy(Dimension::kTwoD);
  const Knowledge knowledge{KnowledgeKind::kLocationArea, Cell{}, 2, 0};
  const auto cells = policy.polling_group(knowledge, 0, 0);
  EXPECT_EQ(cells.size(), 19u);  // 3R^2 + 3R + 1 with R = 2
}

TEST(SdfSequentialPaging, GroupsFollowTheSdfPartition) {
  // radius 9, m = 3: groups of rings {0-2}, {3-5}, {6-9}.
  const SdfSequentialPaging policy(Dimension::kOneD, DelayBound(3));
  const Knowledge knowledge = fixed_disk(Cell{}, 9);
  EXPECT_EQ(policy.polling_group(knowledge, 0, 0).size(), 5u);   // 1+2+2
  EXPECT_EQ(policy.polling_group(knowledge, 0, 1).size(), 6u);   // 2+2+2
  EXPECT_EQ(policy.polling_group(knowledge, 0, 2).size(), 8u);   // 2+2+2+2
  EXPECT_TRUE(policy.polling_group(knowledge, 0, 3).empty());
}

TEST(SdfSequentialPaging, ScheduleCoversTheDiskExactlyOnce) {
  const SdfSequentialPaging policy(Dimension::kTwoD, DelayBound(4));
  const Knowledge knowledge = fixed_disk(Cell{2, -1}, 6);
  const auto cells = full_schedule(policy, knowledge, 0);
  const auto disk = geometry::cell_disk(Dimension::kTwoD, Cell{2, -1}, 6);
  EXPECT_EQ(cells.size(), disk.size());
  const std::set<std::pair<std::int64_t, std::int64_t>> covered = [&] {
    std::set<std::pair<std::int64_t, std::int64_t>> s;
    for (const Cell& cell : cells) s.insert({cell.q, cell.r});
    return s;
  }();
  EXPECT_EQ(covered.size(), disk.size());
  for (const Cell& cell : disk) {
    EXPECT_TRUE(covered.count({cell.q, cell.r})) << cell.q << "," << cell.r;
  }
}

TEST(SdfSequentialPaging, HonorsTheDelayBound) {
  for (int radius : {0, 1, 4, 11}) {
    for (int m : {1, 2, 3, 6}) {
      const SdfSequentialPaging policy(Dimension::kTwoD, DelayBound(m));
      int groups = 0;
      full_schedule(policy, fixed_disk(Cell{}, radius), 0, &groups);
      EXPECT_LE(groups, m) << "radius " << radius << " m " << m;
      EXPECT_EQ(groups, std::min(radius + 1, m));
    }
  }
}

TEST(SdfSequentialPaging, UnboundedPollsOneRingPerCycle) {
  const SdfSequentialPaging policy(Dimension::kTwoD,
                                   DelayBound::unbounded());
  const Knowledge knowledge = fixed_disk(Cell{}, 4);
  for (int ring = 0; ring <= 4; ++ring) {
    EXPECT_EQ(policy.polling_group(knowledge, 0, ring).size(),
              static_cast<std::size_t>(
                  geometry::ring_size(Dimension::kTwoD, ring)));
  }
}

TEST(PlanPartitionPaging, FollowsTheExplicitPartition) {
  const costs::Partition partition =
      costs::Partition::from_subareas(2, {{1}, {0, 2}});
  const PlanPartitionPaging policy(Dimension::kTwoD, partition);
  const Knowledge knowledge = fixed_disk(Cell{}, 2);
  EXPECT_EQ(policy.polling_group(knowledge, 0, 0).size(), 6u);        // ring 1
  EXPECT_EQ(policy.polling_group(knowledge, 0, 1).size(), 1u + 12u);  // 0 + 2
  EXPECT_TRUE(policy.polling_group(knowledge, 0, 2).empty());
  EXPECT_EQ(policy.delay_bound(), DelayBound(2));
}

TEST(PlanPartitionPaging, RejectsMismatchedKnowledgeRadius) {
  const PlanPartitionPaging policy(
      Dimension::kTwoD, costs::Partition::sdf(3, DelayBound(2)));
  EXPECT_THROW(policy.polling_group(fixed_disk(Cell{}, 4), 0, 0),
               InvalidArgument);
}

TEST(ExpandingRingPaging, OneRingPerCycleByDefault) {
  const ExpandingRingPaging policy(Dimension::kOneD);
  const Knowledge knowledge = fixed_disk(Cell{}, 3);
  EXPECT_EQ(policy.polling_group(knowledge, 0, 0).size(), 1u);
  EXPECT_EQ(policy.polling_group(knowledge, 0, 1).size(), 2u);
  EXPECT_EQ(policy.polling_group(knowledge, 0, 3).size(), 2u);
  EXPECT_TRUE(policy.polling_group(knowledge, 0, 4).empty());
}

TEST(ExpandingRingPaging, GroupsSeveralRingsWhenConfigured) {
  const ExpandingRingPaging policy(Dimension::kTwoD, 2);
  const Knowledge knowledge = fixed_disk(Cell{}, 4);
  EXPECT_EQ(policy.polling_group(knowledge, 0, 0).size(), 1u + 6u);
  EXPECT_EQ(policy.polling_group(knowledge, 0, 1).size(), 12u + 18u);
  EXPECT_EQ(policy.polling_group(knowledge, 0, 2).size(), 24u);
  EXPECT_TRUE(policy.polling_group(knowledge, 0, 3).empty());
  EXPECT_THROW(ExpandingRingPaging(Dimension::kTwoD, 0), InvalidArgument);
}

TEST(ExpandingRingPaging, GrowingKnowledgeWidensTheSchedule) {
  const ExpandingRingPaging policy(Dimension::kOneD);
  const Knowledge young{KnowledgeKind::kGrowingDisk, Cell{}, 100, 0};
  int groups = 0;
  full_schedule(policy, young, 2, &groups);
  EXPECT_EQ(groups, 3);  // radius_at(2) = 2 -> rings 0, 1, 2
  full_schedule(policy, young, 7, &groups);
  EXPECT_EQ(groups, 8);
}

TEST(SdfSequentialPaging, TracksGrowingKnowledgeRadius) {
  // With growing-disk knowledge the partition is rebuilt per page from the
  // current radius, so the schedule widens with elapsed time.
  const SdfSequentialPaging policy(Dimension::kTwoD, DelayBound(2));
  const Knowledge knowledge{KnowledgeKind::kGrowingDisk, Cell{}, 100, 10};
  int groups_young = 0;
  const auto young = full_schedule(policy, knowledge, 11, &groups_young);
  int groups_old = 0;
  const auto old = full_schedule(policy, knowledge, 17, &groups_old);
  EXPECT_EQ(young.size(),
            static_cast<std::size_t>(
                geometry::cells_within(Dimension::kTwoD, 1)));
  EXPECT_EQ(old.size(),
            static_cast<std::size_t>(
                geometry::cells_within(Dimension::kTwoD, 7)));
  EXPECT_LE(groups_young, 2);
  EXPECT_LE(groups_old, 2);
}

TEST(PagingPolicies, RejectNegativeCycles) {
  const BlanketPaging policy(Dimension::kOneD);
  EXPECT_THROW(policy.polling_group(fixed_disk(Cell{}, 1), 0, -1),
               InvalidArgument);
}

TEST(PagingPolicies, HaveDescriptiveNames) {
  EXPECT_EQ(BlanketPaging(Dimension::kOneD).name(), "blanket");
  EXPECT_EQ(SdfSequentialPaging(Dimension::kOneD, DelayBound(2)).name(),
            "sdf-sequential(m=2)");
  EXPECT_EQ(ExpandingRingPaging(Dimension::kOneD, 3).name(),
            "expanding-ring(g=3)");
}

}  // namespace
}  // namespace pcn::sim
