// The sharded parallel simulation engine: Network::run must produce
// bit-identical per-terminal metrics for every thread count (per-terminal
// split RNG streams, shard-local state), drain user-scheduled events at
// the right slots, and keep all existing invariants.
#include <gtest/gtest.h>

#include <vector>

#include "pcn/common/error.hpp"
#include "pcn/sim/network.hpp"

namespace pcn::sim {
namespace {

constexpr MobilityProfile kProfile{0.2, 0.05};
constexpr CostWeights kWeights{50.0, 2.0};
constexpr int kTerminals = 64;
constexpr std::int64_t kSlots = 10000;

NetworkConfig config_with_threads(int threads, std::uint64_t seed = 99,
                                  double loss = 0.0) {
  NetworkConfig config{Dimension::kTwoD, SlotSemantics::kChainFaithful,
                       seed};
  config.threads = threads;
  config.update_loss_prob = loss;
  return config;
}

/// A fleet mixing all four policy kinds round-robin with varied parameters.
std::vector<TerminalId> add_mixed_fleet(Network& network, int terminals) {
  std::vector<TerminalId> ids;
  for (int i = 0; i < terminals; ++i) {
    switch (i % 4) {
      case 0:
        ids.push_back(network.add_terminal(make_distance_terminal(
            Dimension::kTwoD, kProfile, 1 + i % 4, DelayBound(2))));
        break;
      case 1:
        ids.push_back(network.add_terminal(make_movement_terminal(
            Dimension::kTwoD, kProfile, 2 + i % 4, DelayBound(3))));
        break;
      case 2:
        ids.push_back(network.add_terminal(
            make_time_terminal(Dimension::kTwoD, kProfile, 10 + i % 7)));
        break;
      default:
        ids.push_back(network.add_terminal(
            make_la_terminal(Dimension::kTwoD, kProfile, 1 + i % 3)));
        break;
    }
  }
  return ids;
}

void expect_histograms_equal(const stats::Histogram& a,
                             const stats::Histogram& b) {
  ASSERT_EQ(a.bucket_count(), b.bucket_count());
  EXPECT_EQ(a.total(), b.total());
  for (int v = 0; v < a.bucket_count(); ++v) {
    EXPECT_EQ(a.count(v), b.count(v)) << "bucket " << v;
  }
}

void expect_metrics_identical(const TerminalMetrics& a,
                              const TerminalMetrics& b, TerminalId id) {
  SCOPED_TRACE(::testing::Message() << "terminal " << id);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.polled_cells, b.polled_cells);
  EXPECT_EQ(a.update_bytes, b.update_bytes);
  EXPECT_EQ(a.paging_bytes, b.paging_bytes);
  EXPECT_EQ(a.lost_updates, b.lost_updates);
  EXPECT_EQ(a.paging_failures, b.paging_failures);
  // Costs are sums of identical per-event addends in identical per-terminal
  // order, so even floating-point results match exactly.
  EXPECT_EQ(a.update_cost, b.update_cost);
  EXPECT_EQ(a.paging_cost, b.paging_cost);
  expect_histograms_equal(a.paging_cycles, b.paging_cycles);
  expect_histograms_equal(a.ring_distance, b.ring_distance);
}

std::vector<TerminalMetrics> run_fleet(int threads, double loss = 0.0) {
  Network network(config_with_threads(threads, 99, loss), kWeights);
  const std::vector<TerminalId> ids = add_mixed_fleet(network, kTerminals);
  network.run(kSlots);
  std::vector<TerminalMetrics> metrics;
  for (TerminalId id : ids) metrics.push_back(network.metrics(id));
  return metrics;
}

TEST(NetworkParallel, ThreadCountDoesNotChangeAnyTerminalMetric) {
  const std::vector<TerminalMetrics> serial = run_fleet(1);
  for (int threads : {2, 4, 0}) {  // 0 = hardware concurrency
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    const std::vector<TerminalMetrics> parallel = run_fleet(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      expect_metrics_identical(serial[i], parallel[i],
                               static_cast<TerminalId>(i));
    }
  }
}

TEST(NetworkParallel, DeterministicUnderLossInjectionToo) {
  const std::vector<TerminalMetrics> serial = run_fleet(1, 0.2);
  const std::vector<TerminalMetrics> parallel = run_fleet(4, 0.2);
  ASSERT_EQ(serial.size(), parallel.size());
  std::int64_t lost = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_metrics_identical(serial[i], parallel[i],
                             static_cast<TerminalId>(i));
    lost += serial[i].lost_updates;
  }
  EXPECT_GT(lost, 0);  // the loss path was actually exercised
}

TEST(NetworkParallel, UserScheduledEventsRunAtTheirSlot) {
  Network network(config_with_threads(4), kWeights);
  add_mixed_fleet(network, kTerminals);
  std::vector<SimTime> fired;
  // Events inside, at the edge of, and splitting the parallel range.
  for (SimTime at : {SimTime{1}, SimTime{777}, SimTime{5000}}) {
    network.events().schedule(at, [&fired, &network] {
      fired.push_back(network.events().now());
    });
  }
  network.run(kSlots);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 777);
  EXPECT_EQ(fired[2], 5000);
  EXPECT_EQ(network.events().now(), kSlots);
}

TEST(NetworkParallel, EventsSplittingTheRunPreserveDeterminism) {
  auto run_with_events = [](int threads) {
    Network network(config_with_threads(threads), kWeights);
    const std::vector<TerminalId> ids = add_mixed_fleet(network, kTerminals);
    for (SimTime at = 500; at < kSlots; at += 500) {
      network.events().schedule(at, [] {});
    }
    network.run(kSlots);
    std::vector<TerminalMetrics> metrics;
    for (TerminalId id : ids) metrics.push_back(network.metrics(id));
    return metrics;
  };
  const std::vector<TerminalMetrics> serial = run_with_events(1);
  const std::vector<TerminalMetrics> parallel = run_with_events(4);
  // Also: chopping the range into event-bounded segments must not change
  // the outcome relative to an unchopped run.
  const std::vector<TerminalMetrics> unchopped = run_fleet(1);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_metrics_identical(serial[i], parallel[i],
                             static_cast<TerminalId>(i));
    expect_metrics_identical(serial[i], unchopped[i],
                             static_cast<TerminalId>(i));
  }
}

TEST(NetworkParallel, SplitRunsMatchOneShotRuns) {
  auto run_split = [](int threads) {
    Network network(config_with_threads(threads), kWeights);
    const std::vector<TerminalId> ids = add_mixed_fleet(network, kTerminals);
    network.run(kSlots / 4);
    network.run(kSlots / 4);
    network.run(kSlots / 2);
    std::vector<TerminalMetrics> metrics;
    for (TerminalId id : ids) metrics.push_back(network.metrics(id));
    return metrics;
  };
  const std::vector<TerminalMetrics> split = run_split(4);
  const std::vector<TerminalMetrics> one_shot = run_fleet(1);
  for (std::size_t i = 0; i < split.size(); ++i) {
    expect_metrics_identical(split[i], one_shot[i],
                             static_cast<TerminalId>(i));
  }
}

TEST(NetworkParallel, RejectsNegativeThreadCount) {
  EXPECT_THROW(Network(config_with_threads(-1), kWeights), InvalidArgument);
}

TEST(NetworkParallel, PropagatesWorkerExceptions) {
  // q + c > 1 violates chain-faithful semantics; the throw happens on a
  // shard worker and must surface to the caller.
  Network network(config_with_threads(4), kWeights);
  add_mixed_fleet(network, kTerminals);
  TerminalSpec bad =
      make_distance_terminal(Dimension::kTwoD, kProfile, 2, DelayBound(1));
  bad.call_prob = 0.85;
  network.add_terminal(std::move(bad));
  EXPECT_THROW(network.run(1000), InvalidArgument);
}

}  // namespace
}  // namespace pcn::sim
