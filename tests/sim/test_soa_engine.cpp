// Engine equivalence: the struct-of-arrays fast path (sim/soa_engine.cpp)
// must be bit-identical to the reference polymorphic slot loop — every
// TerminalMetrics field including floating-point costs and histograms,
// signalling byte counts, and the flight-recorder event stream — at any
// thread count, for both geometries and both slot semantics.  Also covers
// engine selection: kAuto picks the fast path only for canonical fleets,
// kSoa rejects everything else with a diagnostic.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "pcn/common/error.hpp"
#include "pcn/obs/flight_recorder.hpp"
#include "pcn/sim/network.hpp"

namespace pcn::sim {
namespace {

constexpr CostWeights kWeights{50.0, 2.0};
constexpr int kTerminals = 48;
constexpr std::int64_t kSlots = 6000;

NetworkConfig make_config(Dimension dim, SlotSemantics semantics,
                          SimEngine engine, int threads) {
  NetworkConfig config{dim, semantics, 4242};
  config.threads = threads;
  config.engine = engine;
  return config;
}

/// A canonical fleet sweeping (q, c, d, m) so every paging table shape and
/// both hot-loop specializations get coverage.
std::vector<TerminalId> add_canonical_fleet(Network& network, Dimension dim,
                                            int terminals = kTerminals) {
  std::vector<TerminalId> ids;
  for (int i = 0; i < terminals; ++i) {
    const MobilityProfile profile{0.05 + 0.07 * (i % 5),
                                  0.01 + 0.02 * (i % 3)};
    ids.push_back(network.add_terminal(make_distance_terminal(
        dim, profile, 1 + i % 4, DelayBound(1 + i % 3))));
  }
  return ids;
}

void expect_histograms_equal(const stats::Histogram& a,
                             const stats::Histogram& b) {
  ASSERT_EQ(a.bucket_count(), b.bucket_count());
  EXPECT_EQ(a.total(), b.total());
  for (int v = 0; v < a.bucket_count(); ++v) {
    EXPECT_EQ(a.count(v), b.count(v)) << "bucket " << v;
  }
}

void expect_metrics_identical(const TerminalMetrics& a,
                              const TerminalMetrics& b, TerminalId id) {
  SCOPED_TRACE(::testing::Message() << "terminal " << id);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.polled_cells, b.polled_cells);
  EXPECT_EQ(a.update_bytes, b.update_bytes);
  EXPECT_EQ(a.paging_bytes, b.paging_bytes);
  EXPECT_EQ(a.lost_updates, b.lost_updates);
  EXPECT_EQ(a.paging_failures, b.paging_failures);
  // Bit-exact, not approximate: the SoA loop replays the reference
  // engine's floating-point accumulation order.
  EXPECT_EQ(a.update_cost, b.update_cost);
  EXPECT_EQ(a.paging_cost, b.paging_cost);
  expect_histograms_equal(a.paging_cycles, b.paging_cycles);
  expect_histograms_equal(a.ring_distance, b.ring_distance);
}

std::vector<TerminalMetrics> run_canonical(Dimension dim,
                                           SlotSemantics semantics,
                                           SimEngine engine, int threads,
                                           bool* soa_active = nullptr) {
  Network network(make_config(dim, semantics, engine, threads), kWeights);
  const std::vector<TerminalId> ids = add_canonical_fleet(network, dim);
  network.run(kSlots);
  if (soa_active != nullptr) *soa_active = network.soa_active();
  std::vector<TerminalMetrics> metrics;
  for (TerminalId id : ids) metrics.push_back(network.metrics(id));
  return metrics;
}

TEST(SoaEngine, BitIdenticalToReferenceAcrossDimsSemanticsAndThreads) {
  for (Dimension dim : {Dimension::kOneD, Dimension::kTwoD}) {
    for (SlotSemantics semantics :
         {SlotSemantics::kChainFaithful, SlotSemantics::kIndependent}) {
      SCOPED_TRACE(::testing::Message()
                   << "dim=" << (dim == Dimension::kOneD ? 1 : 2)
                   << " chain="
                   << (semantics == SlotSemantics::kChainFaithful));
      const std::vector<TerminalMetrics> reference =
          run_canonical(dim, semantics, SimEngine::kReference, 1);
      for (int threads : {1, 4}) {
        SCOPED_TRACE(::testing::Message() << "threads=" << threads);
        bool active = false;
        const std::vector<TerminalMetrics> soa =
            run_canonical(dim, semantics, SimEngine::kSoa, threads, &active);
        EXPECT_TRUE(active);
        ASSERT_EQ(reference.size(), soa.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
          expect_metrics_identical(reference[i], soa[i],
                                   static_cast<TerminalId>(i));
        }
      }
    }
  }
}

TEST(SoaEngine, AutoSelectsSoaForCanonicalFleetOnly) {
  bool active = false;
  const std::vector<TerminalMetrics> auto_run = run_canonical(
      Dimension::kTwoD, SlotSemantics::kChainFaithful, SimEngine::kAuto, 4,
      &active);
  EXPECT_TRUE(active);
  const std::vector<TerminalMetrics> reference =
      run_canonical(Dimension::kTwoD, SlotSemantics::kChainFaithful,
                    SimEngine::kReference, 4, &active);
  EXPECT_FALSE(active);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    expect_metrics_identical(reference[i], auto_run[i],
                             static_cast<TerminalId>(i));
  }
}

TEST(SoaEngine, AutoFallsBackWhenFleetIsNotCanonical) {
  auto config = make_config(Dimension::kTwoD, SlotSemantics::kChainFaithful,
                            SimEngine::kAuto, 2);
  Network network(config, kWeights);
  add_canonical_fleet(network, Dimension::kTwoD, 4);
  network.add_terminal(make_movement_terminal(
      Dimension::kTwoD, MobilityProfile{0.2, 0.05}, 3, DelayBound(2)));
  network.run(2000);  // must not throw
  EXPECT_FALSE(network.soa_active());
}

TEST(SoaEngine, AutoFallsBackUnderLossInjection) {
  auto config = make_config(Dimension::kTwoD, SlotSemantics::kChainFaithful,
                            SimEngine::kAuto, 1);
  config.update_loss_prob = 0.1;
  Network network(config, kWeights);
  add_canonical_fleet(network, Dimension::kTwoD, 4);
  network.run(2000);
  EXPECT_FALSE(network.soa_active());
}

TEST(SoaEngine, ForcedSoaRejectsNonCanonicalFleet) {
  Network network(make_config(Dimension::kTwoD,
                              SlotSemantics::kChainFaithful, SimEngine::kSoa,
                              1),
                  kWeights);
  network.add_terminal(make_movement_terminal(
      Dimension::kTwoD, MobilityProfile{0.2, 0.05}, 3, DelayBound(2)));
  EXPECT_THROW(network.run(100), InvalidArgument);
}

TEST(SoaEngine, ForcedSoaRejectsObserversAndLoss) {
  {
    Network network(make_config(Dimension::kTwoD,
                                SlotSemantics::kChainFaithful,
                                SimEngine::kSoa, 1),
                    kWeights);
    add_canonical_fleet(network, Dimension::kTwoD, 2);
    NetworkObserver observer;
    network.set_observer(&observer);
    EXPECT_THROW(network.run(100), InvalidArgument);
  }
  {
    auto config = make_config(Dimension::kTwoD,
                              SlotSemantics::kChainFaithful, SimEngine::kSoa,
                              1);
    config.update_loss_prob = 0.1;
    Network network(config, kWeights);
    add_canonical_fleet(network, Dimension::kTwoD, 2);
    EXPECT_THROW(network.run(100), InvalidArgument);
  }
}

TEST(SoaEngine, FlightRecordingIsBitIdenticalAcrossEngines) {
  auto record = [](SimEngine engine, int threads) {
    auto config = make_config(Dimension::kTwoD,
                              SlotSemantics::kChainFaithful, engine, threads);
    config.record_flight = true;
    config.flight_sample_every = 2;
    Network network(config, kWeights);
    add_canonical_fleet(network, Dimension::kTwoD, 16);
    network.run(3000);
    EXPECT_EQ(network.flight_recorder()->dropped(), 0u);
    return network.flight_recorder()->merged();
  };
  const std::vector<obs::FlightEvent> reference =
      record(SimEngine::kReference, 1);
  ASSERT_FALSE(reference.empty());
  for (int threads : {1, 4}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    const std::vector<obs::FlightEvent> soa =
        record(SimEngine::kSoa, threads);
    ASSERT_EQ(reference.size(), soa.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_TRUE(reference[i] == soa[i]) << "event " << i;
    }
  }
}

TEST(SoaEngine, UserEventsSplittingTheRunPreserveIdentity) {
  auto run_with_events = [](SimEngine engine) {
    Network network(make_config(Dimension::kTwoD,
                                SlotSemantics::kChainFaithful, engine, 4),
                    kWeights);
    const std::vector<TerminalId> ids =
        add_canonical_fleet(network, Dimension::kTwoD);
    // Events force segment boundaries and (for the SoA engine) the
    // mid-run revalidation path.
    for (SimTime at : {SimTime{1}, SimTime{1500}, SimTime{1501},
                       SimTime{kSlots - 1}}) {
      network.events().schedule(at, [] {});
    }
    network.run(kSlots);
    std::vector<TerminalMetrics> metrics;
    for (TerminalId id : ids) metrics.push_back(network.metrics(id));
    return metrics;
  };
  const std::vector<TerminalMetrics> soa =
      run_with_events(SimEngine::kSoa);
  // Reference run without events: segment chopping must be unobservable.
  const std::vector<TerminalMetrics> reference = run_canonical(
      Dimension::kTwoD, SlotSemantics::kChainFaithful,
      SimEngine::kReference, 1);
  ASSERT_EQ(reference.size(), soa.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    expect_metrics_identical(reference[i], soa[i],
                             static_cast<TerminalId>(i));
  }
}

TEST(SoaEngine, SplitRunsMatchOneShotRuns) {
  Network network(make_config(Dimension::kTwoD,
                              SlotSemantics::kChainFaithful, SimEngine::kSoa,
                              4),
                  kWeights);
  const std::vector<TerminalId> ids =
      add_canonical_fleet(network, Dimension::kTwoD);
  network.run(kSlots / 4);
  network.run(kSlots / 4);
  network.run(kSlots / 2);
  const std::vector<TerminalMetrics> reference = run_canonical(
      Dimension::kTwoD, SlotSemantics::kChainFaithful,
      SimEngine::kReference, 1);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    expect_metrics_identical(reference[i], network.metrics(ids[i]), ids[i]);
  }
}

TEST(SoaEngine, ChainSemanticsStillRejectImpossibleProfiles) {
  Network network(make_config(Dimension::kTwoD,
                              SlotSemantics::kChainFaithful, SimEngine::kSoa,
                              1),
                  kWeights);
  TerminalSpec bad = make_distance_terminal(
      Dimension::kTwoD, MobilityProfile{0.2, 0.05}, 2, DelayBound(2));
  bad.call_prob = 0.85;  // q + c > 1
  network.add_terminal(std::move(bad));
  EXPECT_THROW(network.run(100), InvalidArgument);
}

}  // namespace
}  // namespace pcn::sim
