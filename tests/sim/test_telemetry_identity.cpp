// NetworkConfig::collect_runtime_stats is purely observational: every
// TerminalMetrics value must be bit-identical with telemetry on or off, at
// any thread count (the flag may not touch RNG streams or event order).
// This is the tier-1 guarantee the telemetry subsystem is built on — see
// docs/observability.md.
#include <gtest/gtest.h>

#include <vector>

#include "pcn/obs/timer.hpp"
#include "pcn/sim/network.hpp"

namespace pcn::sim {
namespace {

constexpr MobilityProfile kProfile{0.2, 0.05};
constexpr CostWeights kWeights{50.0, 2.0};
constexpr int kTerminals = 24;
constexpr std::int64_t kSlots = 8000;

NetworkConfig make_config(bool telemetry, int threads) {
  NetworkConfig config{Dimension::kTwoD, SlotSemantics::kChainFaithful, 77};
  config.threads = threads;
  config.collect_runtime_stats = telemetry;
  config.update_loss_prob = 0.01;  // exercise the retry/fallback paths too
  return config;
}

/// A fleet mixing all four policy kinds round-robin with varied parameters.
std::vector<TerminalId> add_mixed_fleet(Network& network) {
  std::vector<TerminalId> ids;
  for (int i = 0; i < kTerminals; ++i) {
    switch (i % 4) {
      case 0:
        ids.push_back(network.add_terminal(make_distance_terminal(
            Dimension::kTwoD, kProfile, 1 + i % 4, DelayBound(2))));
        break;
      case 1:
        ids.push_back(network.add_terminal(make_movement_terminal(
            Dimension::kTwoD, kProfile, 2 + i % 4, DelayBound(3))));
        break;
      case 2:
        ids.push_back(network.add_terminal(
            make_time_terminal(Dimension::kTwoD, kProfile, 10 + i % 7)));
        break;
      default:
        ids.push_back(network.add_terminal(
            make_la_terminal(Dimension::kTwoD, kProfile, 1 + i % 3)));
        break;
    }
  }
  return ids;
}

void expect_histograms_equal(const stats::Histogram& a,
                             const stats::Histogram& b) {
  ASSERT_EQ(a.bucket_count(), b.bucket_count());
  EXPECT_EQ(a.total(), b.total());
  for (int v = 0; v < a.bucket_count(); ++v) {
    EXPECT_EQ(a.count(v), b.count(v)) << "bucket " << v;
  }
}

void expect_metrics_identical(const TerminalMetrics& a,
                              const TerminalMetrics& b, TerminalId id) {
  SCOPED_TRACE(::testing::Message() << "terminal " << id);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.polled_cells, b.polled_cells);
  EXPECT_EQ(a.update_bytes, b.update_bytes);
  EXPECT_EQ(a.paging_bytes, b.paging_bytes);
  EXPECT_EQ(a.lost_updates, b.lost_updates);
  EXPECT_EQ(a.paging_failures, b.paging_failures);
  // Exact comparison is intentional even for the floating-point costs:
  // both runs must execute the identical per-event addends in the
  // identical per-terminal order.
  EXPECT_EQ(a.update_cost, b.update_cost);
  EXPECT_EQ(a.paging_cost, b.paging_cost);
  expect_histograms_equal(a.paging_cycles, b.paging_cycles);
  expect_histograms_equal(a.ring_distance, b.ring_distance);
}

TEST(TelemetryIdentity, MetricsBitIdenticalAcrossStatsFlagAndThreads) {
  // Reference: telemetry off, single-threaded.
  Network reference(make_config(false, 1), kWeights);
  const std::vector<TerminalId> ids = add_mixed_fleet(reference);
  reference.run(kSlots);

  for (const bool telemetry : {false, true}) {
    for (const int threads : {1, 4}) {
      SCOPED_TRACE(::testing::Message() << "collect_runtime_stats="
                                        << telemetry << " threads="
                                        << threads);
      Network network(make_config(telemetry, threads), kWeights);
      add_mixed_fleet(network);
      network.run(kSlots);
      for (const TerminalId id : ids) {
        expect_metrics_identical(reference.metrics(id), network.metrics(id),
                                 id);
      }
    }
  }
}

TEST(TelemetryIdentity, RegistryPopulatedOnlyWhenEnabled) {
  Network off(make_config(false, 1), kWeights);
  add_mixed_fleet(off);
  off.run(2000);
  EXPECT_EQ(off.trace(), nullptr);
  EXPECT_EQ(off.metrics_registry().snapshot().counter_value("sim.run.slots"),
            0);

  Network on(make_config(true, 4), kWeights);
  add_mixed_fleet(on);
  on.run(2000);
  ASSERT_NE(on.trace(), nullptr);
  EXPECT_GT(on.trace()->recorded(), 0u);
  const obs::MetricsSnapshot snapshot = on.metrics_registry().snapshot();
  EXPECT_EQ(snapshot.counter_value("sim.run.slots"), 2000);
  EXPECT_EQ(snapshot.counter_value("sim.terminal.slots"),
            2000 * std::int64_t{kTerminals});
  EXPECT_GT(snapshot.counter_value("sim.run.wall_ns"), 0);
  EXPECT_GT(snapshot.counter_value("sim.update.count"), 0);
  EXPECT_GT(snapshot.counter_value("sim.page.count"), 0);
}

TEST(TelemetryIdentity, ResumedRunsKeepCounting) {
  // Network::run resumes where the last call stopped; the registry must
  // accumulate across calls (pcnctl --progress slices runs this way).
  Network network(make_config(true, 1), kWeights);
  add_mixed_fleet(network);
  network.run(1000);
  network.run(1000);
  EXPECT_EQ(
      network.metrics_registry().snapshot().counter_value("sim.run.slots"),
      2000);
}

}  // namespace
}  // namespace pcn::sim
