#include "pcn/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "pcn/common/error.hpp"

namespace pcn::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.now(), 0);
  EXPECT_FALSE(queue.run_next());
}

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(30, [&] { order.push_back(3); });
  queue.schedule(10, [&] { order.push_back(1); });
  queue.schedule(20, [&] { order.push_back(2); });
  while (queue.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 30);
}

TEST(EventQueue, EqualTimesRunFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (queue.run_next()) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ClockAdvancesToTheEventTime) {
  EventQueue queue;
  SimTime observed = -1;
  queue.schedule(7, [&] { observed = queue.now(); });
  queue.run_next();
  EXPECT_EQ(observed, 7);
}

TEST(EventQueue, EventsMayScheduleFurtherEvents) {
  EventQueue queue;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) queue.schedule_in(2, chain);
  };
  queue.schedule(1, chain);
  while (queue.run_next()) {
  }
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(queue.now(), 1 + 2 * 4);
}

TEST(EventQueue, RunUntilStopsAtTheHorizonAndAdvancesTheClock) {
  EventQueue queue;
  int fired = 0;
  queue.schedule(5, [&] { ++fired; });
  queue.schedule(15, [&] { ++fired; });
  EXPECT_EQ(queue.run_until(10), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now(), 10);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_EQ(queue.run_until(20), 1);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(queue.now(), 20);
}

TEST(EventQueue, SchedulingInThePastIsRejected) {
  EventQueue queue;
  queue.schedule(10, [] {});
  queue.run_next();
  EXPECT_THROW(queue.schedule(5, [] {}), InvalidArgument);
  EXPECT_THROW(queue.schedule_in(-1, [] {}), InvalidArgument);
}

TEST(EventQueue, NullCallbackIsRejected) {
  EventQueue queue;
  EXPECT_THROW(queue.schedule(1, nullptr), InvalidArgument);
}

TEST(EventQueue, SchedulingAtNowIsAllowed) {
  EventQueue queue;
  queue.schedule(10, [] {});
  queue.run_next();
  bool ran = false;
  queue.schedule(10, [&] { ran = true; });
  queue.run_next();
  EXPECT_TRUE(ran);
  EXPECT_EQ(queue.now(), 10);
}

}  // namespace
}  // namespace pcn::sim
