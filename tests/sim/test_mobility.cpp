#include "pcn/sim/mobility.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "pcn/common/error.hpp"

namespace pcn::sim {
namespace {

TEST(RandomWalk, ReportsItsMoveProbability) {
  const RandomWalk walk(Dimension::kTwoD, 0.25);
  EXPECT_DOUBLE_EQ(walk.move_probability(0), 0.25);
  EXPECT_DOUBLE_EQ(walk.move_probability(1000000), 0.25);
}

TEST(RandomWalk, RejectsInvalidMoveProbability) {
  EXPECT_THROW(RandomWalk(Dimension::kOneD, 0.0), InvalidArgument);
  EXPECT_THROW(RandomWalk(Dimension::kOneD, 1.0001), InvalidArgument);
}

TEST(RandomWalk, TargetsAreAlwaysNeighbors) {
  const RandomWalk walk(Dimension::kTwoD, 0.5);
  stats::Rng rng(1);
  geometry::Cell cursor{};
  for (int step = 0; step < 2000; ++step) {
    const geometry::Cell next = walk.move_target(cursor, step, rng);
    EXPECT_EQ(geometry::cell_distance(Dimension::kTwoD, cursor, next), 1);
    cursor = next;
  }
}

TEST(RandomWalk, OneDimWalkStaysOnTheLine) {
  const RandomWalk walk(Dimension::kOneD, 0.5);
  stats::Rng rng(2);
  geometry::Cell cursor{};
  for (int step = 0; step < 2000; ++step) {
    cursor = walk.move_target(cursor, step, rng);
    EXPECT_EQ(cursor.r, 0);
  }
}

TEST(RandomWalk, NeighborSelectionIsUniform) {
  // Paper: each of the 6 neighbors is chosen with probability 1/6.
  const RandomWalk walk(Dimension::kTwoD, 1.0);
  stats::Rng rng(3);
  std::map<std::pair<std::int64_t, std::int64_t>, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const geometry::Cell next = walk.move_target(geometry::Cell{}, i, rng);
    ++counts[{next.q, next.r}];
  }
  ASSERT_EQ(counts.size(), 6u);
  const double expected = n / 6.0;
  const double sigma = std::sqrt(n * (1.0 / 6) * (5.0 / 6));
  for (const auto& [cell, count] : counts) {
    EXPECT_NEAR(count, expected, 5 * sigma);
  }
}

TEST(PhasedRandomWalk, SwitchesProbabilityOnSchedule) {
  const PhasedRandomWalk walk(
      Dimension::kTwoD,
      {{0.4, 100}, {0.01, 50}});
  EXPECT_DOUBLE_EQ(walk.move_probability(0), 0.4);
  EXPECT_DOUBLE_EQ(walk.move_probability(99), 0.4);
  EXPECT_DOUBLE_EQ(walk.move_probability(100), 0.01);
  EXPECT_DOUBLE_EQ(walk.move_probability(149), 0.01);
  // Periodic wrap-around.
  EXPECT_DOUBLE_EQ(walk.move_probability(150), 0.4);
  EXPECT_DOUBLE_EQ(walk.move_probability(150 + 149), 0.01);
}

TEST(PhasedRandomWalk, ValidatesPhases) {
  EXPECT_THROW(PhasedRandomWalk(Dimension::kOneD, {}), InvalidArgument);
  EXPECT_THROW(PhasedRandomWalk(Dimension::kOneD, {{0.0, 10}}),
               InvalidArgument);
  EXPECT_THROW(PhasedRandomWalk(Dimension::kOneD, {{0.1, 0}}),
               InvalidArgument);
}

TEST(PhasedRandomWalk, TargetsAreNeighbors) {
  const PhasedRandomWalk walk(Dimension::kOneD, {{0.2, 10}});
  stats::Rng rng(4);
  const geometry::Cell next = walk.move_target(geometry::Cell{5, 0}, 0, rng);
  EXPECT_EQ(geometry::cell_distance(Dimension::kOneD, geometry::Cell{5, 0},
                                    next),
            1);
}

TEST(MobilityModels, HaveDescriptiveNames) {
  EXPECT_EQ(RandomWalk(Dimension::kOneD, 0.1).name(), "random-walk");
  EXPECT_EQ(PhasedRandomWalk(Dimension::kOneD, {{0.1, 5}}).name(),
            "phased-random-walk");
}

}  // namespace
}  // namespace pcn::sim
