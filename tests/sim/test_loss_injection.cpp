// Failure injection: lossy update frames with retry, and expanding-ring
// paging recovery when stale knowledge makes the normal schedule miss.
#include <gtest/gtest.h>

#include "pcn/common/error.hpp"
#include "pcn/sim/network.hpp"

namespace pcn::sim {
namespace {

constexpr MobilityProfile kProfile{0.3, 0.02};
constexpr CostWeights kWeights{50.0, 2.0};

Network lossy_network(std::uint64_t seed, double loss) {
  NetworkConfig config{Dimension::kTwoD, SlotSemantics::kChainFaithful,
                       seed};
  config.update_loss_prob = loss;
  return Network(config, kWeights);
}

TEST(LossInjection, ZeroLossRecordsNoFailures) {
  Network network = lossy_network(1, 0.0);
  const TerminalId id = network.add_terminal(
      make_distance_terminal(Dimension::kTwoD, kProfile, 2, DelayBound(2)));
  network.run(50000);
  EXPECT_EQ(network.metrics(id).lost_updates, 0);
  EXPECT_EQ(network.metrics(id).paging_failures, 0);
}

TEST(LossInjection, LostFractionMatchesTheLossProbability) {
  const double loss = 0.3;
  Network network = lossy_network(2, loss);
  const TerminalId id = network.add_terminal(
      make_distance_terminal(Dimension::kTwoD, kProfile, 2, DelayBound(2)));
  network.run(200000);
  const TerminalMetrics& m = network.metrics(id);
  ASSERT_GT(m.updates, 1000);
  const double measured = static_cast<double>(m.lost_updates) /
                          static_cast<double>(m.updates);
  EXPECT_NEAR(measured, loss, 0.03);
}

TEST(LossInjection, EveryCallIsStillDelivered) {
  Network network = lossy_network(3, 0.5);
  const TerminalId id = network.add_terminal(
      make_distance_terminal(Dimension::kTwoD, kProfile, 2, DelayBound(2)));
  network.run(100000);
  const TerminalMetrics& m = network.metrics(id);
  ASSERT_GT(m.calls, 0);
  EXPECT_EQ(m.paging_cycles.total(), m.calls);
  // Recovery paging happened at least once under 50% loss...
  EXPECT_GT(m.paging_failures, 0);
  // ...and every recovered page still located the terminal (the run would
  // have thrown otherwise).
}

TEST(LossInjection, RecoveryCanExceedTheNominalDelayBound) {
  Network network = lossy_network(4, 0.5);
  const TerminalId id = network.add_terminal(
      make_distance_terminal(Dimension::kTwoD, kProfile, 1, DelayBound(1)));
  network.run(200000);
  const TerminalMetrics& m = network.metrics(id);
  ASSERT_GT(m.paging_failures, 0);
  // Blanket paging normally locates in 1 cycle; recovered pages take more.
  EXPECT_GT(m.paging_cycles.max_value(), 1);
  EXPECT_LT(m.paging_cycles.fraction(1), 1.0);
}

TEST(LossInjection, RetriesMakeUpdatesMoreFrequentAndCostlier) {
  auto cost_with_loss = [](double loss) {
    Network network = lossy_network(5, loss);
    const TerminalId id = network.add_terminal(make_distance_terminal(
        Dimension::kTwoD, kProfile, 2, DelayBound(2)));
    network.run(200000);
    return network.metrics(id);
  };
  const TerminalMetrics clean = cost_with_loss(0.0);
  const TerminalMetrics lossy = cost_with_loss(0.4);
  // Each loss forces a retransmission, so attempted updates rise...
  EXPECT_GT(lossy.updates, clean.updates);
  // ...and the measured total cost strictly exceeds the clean run's.
  EXPECT_GT(lossy.cost_per_slot(), clean.cost_per_slot());
}

TEST(LossInjection, FailureRateDropsWithLossProbability) {
  auto failures_per_call = [](double loss) {
    Network network = lossy_network(6, loss);
    const TerminalId id = network.add_terminal(make_distance_terminal(
        Dimension::kTwoD, kProfile, 2, DelayBound(2)));
    network.run(300000);
    const TerminalMetrics& m = network.metrics(id);
    return static_cast<double>(m.paging_failures) /
           static_cast<double>(m.calls);
  };
  EXPECT_GT(failures_per_call(0.6), failures_per_call(0.1));
}

TEST(LossInjection, RejectsInvalidLossProbability) {
  NetworkConfig config;
  config.update_loss_prob = 1.0;
  EXPECT_THROW(Network(config, kWeights), InvalidArgument);
  config.update_loss_prob = -0.1;
  EXPECT_THROW(Network(config, kWeights), InvalidArgument);
}

}  // namespace
}  // namespace pcn::sim
