#include "pcn/sim/update_policy.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"

namespace pcn::sim {
namespace {

using geometry::Cell;

TEST(DistanceUpdatePolicy, TriggersOnlyBeyondTheThreshold) {
  DistanceUpdatePolicy policy(Dimension::kTwoD, 2);
  policy.on_center_reset(Cell{}, 0);
  EXPECT_FALSE(policy.update_due(Cell{}, 1));
  EXPECT_FALSE(policy.update_due(Cell{2, 0}, 1));   // at the threshold
  EXPECT_TRUE(policy.update_due(Cell{3, 0}, 1));    // beyond it
}

TEST(DistanceUpdatePolicy, CenterResetMovesTheReference) {
  DistanceUpdatePolicy policy(Dimension::kTwoD, 1);
  policy.on_center_reset(Cell{}, 0);
  EXPECT_TRUE(policy.update_due(Cell{5, 0}, 1));
  policy.on_center_reset(Cell{5, 0}, 1);
  EXPECT_FALSE(policy.update_due(Cell{5, 0}, 2));
  EXPECT_FALSE(policy.update_due(Cell{6, 0}, 2));
  EXPECT_TRUE(policy.update_due(Cell{7, 0}, 2));
}

TEST(DistanceUpdatePolicy, ThresholdZeroUpdatesOnAnyMove) {
  DistanceUpdatePolicy policy(Dimension::kOneD, 0);
  policy.on_center_reset(Cell{3, 0}, 0);
  EXPECT_FALSE(policy.update_due(Cell{3, 0}, 1));
  EXPECT_TRUE(policy.update_due(Cell{4, 0}, 1));
}

TEST(DistanceUpdatePolicy, SetThresholdTakesEffectImmediately) {
  DistanceUpdatePolicy policy(Dimension::kTwoD, 5);
  policy.on_center_reset(Cell{}, 0);
  EXPECT_FALSE(policy.update_due(Cell{4, 0}, 1));
  policy.set_threshold(3);
  EXPECT_TRUE(policy.update_due(Cell{4, 0}, 1));
  EXPECT_EQ(policy.threshold(), 3);
  EXPECT_THROW(policy.set_threshold(-1), InvalidArgument);
}

TEST(DistanceUpdatePolicy, RejectsNegativeThreshold) {
  EXPECT_THROW(DistanceUpdatePolicy(Dimension::kOneD, -1), InvalidArgument);
}

TEST(TimeUpdatePolicy, FiresEveryPeriodSlots) {
  TimeUpdatePolicy policy(10);
  policy.on_center_reset(Cell{}, 0);
  EXPECT_FALSE(policy.update_due(Cell{}, 9));
  EXPECT_TRUE(policy.update_due(Cell{}, 10));
  policy.on_center_reset(Cell{}, 10);
  EXPECT_FALSE(policy.update_due(Cell{}, 19));
  EXPECT_TRUE(policy.update_due(Cell{}, 20));
}

TEST(TimeUpdatePolicy, CallResetRestartsTheTimer) {
  TimeUpdatePolicy policy(10);
  policy.on_center_reset(Cell{}, 0);
  policy.on_center_reset(Cell{}, 7);  // paged call at t = 7
  EXPECT_FALSE(policy.update_due(Cell{}, 16));
  EXPECT_TRUE(policy.update_due(Cell{}, 17));
}

TEST(TimeUpdatePolicy, IndependentOfPosition) {
  TimeUpdatePolicy policy(5);
  policy.on_center_reset(Cell{}, 0);
  EXPECT_TRUE(policy.update_due(Cell{100, -50}, 5));
}

TEST(TimeUpdatePolicy, RejectsNonPositivePeriod) {
  EXPECT_THROW(TimeUpdatePolicy(0), InvalidArgument);
}

TEST(MovementUpdatePolicy, CountsOnlyActualMoves) {
  MovementUpdatePolicy policy(3);
  policy.on_center_reset(Cell{}, 0);
  policy.on_slot(Cell{1, 0}, true, 1);
  policy.on_slot(Cell{1, 0}, false, 2);  // idle slot does not count
  policy.on_slot(Cell{2, 0}, true, 3);
  EXPECT_FALSE(policy.update_due(Cell{2, 0}, 3));
  policy.on_slot(Cell{3, 0}, true, 4);
  EXPECT_TRUE(policy.update_due(Cell{3, 0}, 4));
}

TEST(MovementUpdatePolicy, ResetClearsTheCounter) {
  MovementUpdatePolicy policy(2);
  policy.on_center_reset(Cell{}, 0);
  policy.on_slot(Cell{1, 0}, true, 1);
  policy.on_slot(Cell{2, 0}, true, 2);
  EXPECT_TRUE(policy.update_due(Cell{2, 0}, 2));
  policy.on_center_reset(Cell{2, 0}, 2);
  EXPECT_FALSE(policy.update_due(Cell{2, 0}, 3));
}

TEST(MovementUpdatePolicy, RejectsNonPositiveBound) {
  EXPECT_THROW(MovementUpdatePolicy(0), InvalidArgument);
}

TEST(LaUpdatePolicy, TriggersOnLocationAreaCrossing) {
  // Radius-1 hex LAs: distance-2 cells are outside the home LA.
  LaUpdatePolicy policy(Dimension::kTwoD, 1);
  policy.on_center_reset(Cell{}, 0);
  EXPECT_FALSE(policy.update_due(Cell{}, 1));
  EXPECT_FALSE(policy.update_due(Cell{1, 0}, 1));
  EXPECT_TRUE(policy.update_due(Cell{2, 0}, 1));
}

TEST(LaUpdatePolicy, OneDimBlocks) {
  // Radius-2 line LAs are 5-cell blocks [-2, 2], [3, 7], ...
  LaUpdatePolicy policy(Dimension::kOneD, 2);
  policy.on_center_reset(Cell{0, 0}, 0);
  EXPECT_FALSE(policy.update_due(Cell{2, 0}, 1));
  EXPECT_TRUE(policy.update_due(Cell{3, 0}, 1));
}

TEST(LaUpdatePolicy, ResetAnywhereInsideTheLaKeepsTheSameLa) {
  LaUpdatePolicy policy(Dimension::kTwoD, 1);
  policy.on_center_reset(Cell{1, 0}, 0);  // non-center cell of the home LA
  EXPECT_FALSE(policy.update_due(Cell{}, 1));
  EXPECT_FALSE(policy.update_due(Cell{1, -1}, 1));
}

TEST(UpdatePolicies, HaveDescriptiveNames) {
  EXPECT_EQ(DistanceUpdatePolicy(Dimension::kOneD, 4).name(),
            "distance(d=4)");
  EXPECT_EQ(TimeUpdatePolicy(9).name(), "time(T=9)");
  EXPECT_EQ(MovementUpdatePolicy(7).name(), "movement(M=7)");
  EXPECT_EQ(LaUpdatePolicy(Dimension::kTwoD, 2).name(),
            "location-area(R=2)");
}

}  // namespace
}  // namespace pcn::sim
