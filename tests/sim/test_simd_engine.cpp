// SIMD engine (sim/simd_engine.cpp): self-consistency and policy.  The
// engine's contract is weaker than SoA's — *statistical* equivalence to
// the reference pair (gated by tests/property/test_prop_simd_statistical)
// — but it must be bit-identical to ITSELF across thread counts, runs,
// segmentation points and ISA paths (AVX2 vs portable), and its selection
// rules are strict: kAuto never picks it, forced kSimd throws on
// non-canonical fleets, flight recording, and PCN_SIMD_ISA=none.
#include "pcn/sim/simd_engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "pcn/common/error.hpp"
#include "pcn/sim/network.hpp"

namespace pcn::sim {
namespace {

constexpr CostWeights kWeights{50.0, 2.0};
constexpr int kTerminals = 48;
constexpr std::int64_t kSlots = 6000;

/// Scoped PCN_SIMD_ISA override (tests in this binary run sequentially).
class ScopedIsaEnv {
 public:
  explicit ScopedIsaEnv(const char* value) {
    const char* old = std::getenv("PCN_SIMD_ISA");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv("PCN_SIMD_ISA", value, 1);
    } else {
      ::unsetenv("PCN_SIMD_ISA");
    }
  }
  ~ScopedIsaEnv() {
    if (had_old_) {
      ::setenv("PCN_SIMD_ISA", old_.c_str(), 1);
    } else {
      ::unsetenv("PCN_SIMD_ISA");
    }
  }
  ScopedIsaEnv(const ScopedIsaEnv&) = delete;
  ScopedIsaEnv& operator=(const ScopedIsaEnv&) = delete;

 private:
  bool had_old_ = false;
  std::string old_;
};

NetworkConfig make_config(Dimension dim, SlotSemantics semantics,
                          SimEngine engine, int threads) {
  NetworkConfig config{dim, semantics, 4242};
  config.threads = threads;
  config.engine = engine;
  return config;
}

std::vector<TerminalId> add_canonical_fleet(Network& network, Dimension dim,
                                            int terminals = kTerminals) {
  std::vector<TerminalId> ids;
  for (int i = 0; i < terminals; ++i) {
    const MobilityProfile profile{0.05 + 0.07 * (i % 5),
                                  0.01 + 0.02 * (i % 3)};
    ids.push_back(network.add_terminal(make_distance_terminal(
        dim, profile, 1 + i % 4, DelayBound(1 + i % 3))));
  }
  return ids;
}

void expect_histograms_equal(const stats::Histogram& a,
                             const stats::Histogram& b) {
  ASSERT_EQ(a.bucket_count(), b.bucket_count());
  EXPECT_EQ(a.total(), b.total());
  for (int v = 0; v < a.bucket_count(); ++v) {
    EXPECT_EQ(a.count(v), b.count(v)) << "bucket " << v;
  }
}

void expect_metrics_identical(const TerminalMetrics& a,
                              const TerminalMetrics& b, TerminalId id) {
  SCOPED_TRACE(::testing::Message() << "terminal " << id);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.polled_cells, b.polled_cells);
  EXPECT_EQ(a.update_bytes, b.update_bytes);
  EXPECT_EQ(a.paging_bytes, b.paging_bytes);
  // Bit-exact within the engine: per-terminal costs fold in at batch sync
  // in a thread-independent order.
  EXPECT_EQ(a.update_cost, b.update_cost);
  EXPECT_EQ(a.paging_cost, b.paging_cost);
  expect_histograms_equal(a.paging_cycles, b.paging_cycles);
  expect_histograms_equal(a.ring_distance, b.ring_distance);
}

std::vector<TerminalMetrics> run_simd(Dimension dim, SlotSemantics semantics,
                                      int threads,
                                      std::int64_t slots = kSlots) {
  Network network(make_config(dim, semantics, SimEngine::kSimd, threads),
                  kWeights);
  const std::vector<TerminalId> ids = add_canonical_fleet(network, dim);
  network.run(slots);
  EXPECT_TRUE(network.simd_active());
  std::vector<TerminalMetrics> metrics;
  for (TerminalId id : ids) metrics.push_back(network.metrics(id));
  return metrics;
}

TEST(SimdEngine, BitIdenticalToItselfAcrossThreadCountsAndRuns) {
  for (Dimension dim : {Dimension::kOneD, Dimension::kTwoD}) {
    for (SlotSemantics semantics :
         {SlotSemantics::kChainFaithful, SlotSemantics::kIndependent}) {
      SCOPED_TRACE(::testing::Message()
                   << "dim=" << (dim == Dimension::kOneD ? 1 : 2)
                   << " chain="
                   << (semantics == SlotSemantics::kChainFaithful));
      const std::vector<TerminalMetrics> base =
          run_simd(dim, semantics, 1);
      const std::vector<TerminalMetrics> rerun =
          run_simd(dim, semantics, 1);
      const std::vector<TerminalMetrics> sharded =
          run_simd(dim, semantics, 4);
      ASSERT_EQ(base.size(), sharded.size());
      for (std::size_t i = 0; i < base.size(); ++i) {
        expect_metrics_identical(base[i], rerun[i],
                                 static_cast<TerminalId>(i));
        expect_metrics_identical(base[i], sharded[i],
                                 static_cast<TerminalId>(i));
      }
    }
  }
}

TEST(SimdEngine, SegmentationPointsDoNotChangeResults) {
  // Draws are keyed on the absolute slot, so splitting a run into
  // segments (the state sync/reload path between user events) is
  // invisible: run(a); run(b) == run(a + b).
  Network whole(make_config(Dimension::kTwoD, SlotSemantics::kChainFaithful,
                            SimEngine::kSimd, 1),
                kWeights);
  Network split(make_config(Dimension::kTwoD, SlotSemantics::kChainFaithful,
                            SimEngine::kSimd, 1),
                kWeights);
  const std::vector<TerminalId> ids =
      add_canonical_fleet(whole, Dimension::kTwoD);
  add_canonical_fleet(split, Dimension::kTwoD);
  whole.run(kSlots);
  split.run(kSlots / 3);
  split.run(kSlots - kSlots / 3);
  for (TerminalId id : ids) {
    expect_metrics_identical(whole.metrics(id), split.metrics(id), id);
  }
}

TEST(SimdEngine, PortableKernelMatchesAvx2BitForBit) {
  {
    ScopedIsaEnv detect(nullptr);
    if (simd_support().isa != SimdIsa::kAvx2) {
      GTEST_SKIP() << "AVX2 kernel not available on this machine";
    }
  }
  for (Dimension dim : {Dimension::kOneD, Dimension::kTwoD}) {
    for (SlotSemantics semantics :
         {SlotSemantics::kChainFaithful, SlotSemantics::kIndependent}) {
      SCOPED_TRACE(::testing::Message()
                   << "dim=" << (dim == Dimension::kOneD ? 1 : 2)
                   << " chain="
                   << (semantics == SlotSemantics::kChainFaithful));
      std::vector<TerminalMetrics> avx2;
      std::vector<TerminalMetrics> portable;
      {
        ScopedIsaEnv env("avx2");
        avx2 = run_simd(dim, semantics, 1);
      }
      {
        ScopedIsaEnv env("portable");
        portable = run_simd(dim, semantics, 1);
      }
      ASSERT_EQ(avx2.size(), portable.size());
      for (std::size_t i = 0; i < avx2.size(); ++i) {
        expect_metrics_identical(avx2[i], portable[i],
                                 static_cast<TerminalId>(i));
      }
    }
  }
}

TEST(SimdEngine, AutoNeverSelectsSimd) {
  Network network(make_config(Dimension::kTwoD,
                              SlotSemantics::kChainFaithful,
                              SimEngine::kAuto, 1),
                  kWeights);
  add_canonical_fleet(network, Dimension::kTwoD);
  network.run(1000);
  EXPECT_FALSE(network.simd_active());
  EXPECT_TRUE(network.soa_active());
  EXPECT_EQ(network.simd_isa_name(), nullptr);
}

TEST(SimdEngine, ReportsActiveIsaName) {
  Network network(make_config(Dimension::kTwoD,
                              SlotSemantics::kChainFaithful,
                              SimEngine::kSimd, 1),
                  kWeights);
  add_canonical_fleet(network, Dimension::kTwoD, 8);
  network.run(100);
  ASSERT_TRUE(network.simd_active());
  const std::string isa = network.simd_isa_name();
  EXPECT_TRUE(isa == "avx2" || isa == "portable") << isa;
}

TEST(SimdEngine, RejectsNonCanonicalFleet) {
  Network network(make_config(Dimension::kTwoD,
                              SlotSemantics::kChainFaithful,
                              SimEngine::kSimd, 1),
                  kWeights);
  network.add_terminal(make_time_terminal(
      Dimension::kTwoD, MobilityProfile{0.1, 0.01}, 50));
  EXPECT_THROW(network.run(100), InvalidArgument);
}

TEST(SimdEngine, RejectsFlightRecording) {
  NetworkConfig config = make_config(
      Dimension::kTwoD, SlotSemantics::kChainFaithful, SimEngine::kSimd, 1);
  config.record_flight = true;
  Network network(config, kWeights);
  add_canonical_fleet(network, Dimension::kTwoD, 8);
  try {
    network.run(100);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("flight"), std::string::npos)
        << error.what();
  }
}

TEST(SimdEngine, IsaNoneDisablesTheEngine) {
  ScopedIsaEnv env("none");
  const SimdSupport support = simd_support();
  EXPECT_FALSE(support.available);
  Network network(make_config(Dimension::kTwoD,
                              SlotSemantics::kChainFaithful,
                              SimEngine::kSimd, 1),
                  kWeights);
  add_canonical_fleet(network, Dimension::kTwoD, 8);
  try {
    network.run(100);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("PCN_SIMD_ISA=none"),
              std::string::npos)
        << error.what();
  }
}

TEST(SimdEngine, ForcedAvx2UnavailableIsAnError) {
  // Simulate unsupported hardware by disabling the kernels, then forcing
  // avx2: prepare must fail with a diagnostic rather than fall back.
#if PCN_HAVE_AVX2_KERNEL
  ScopedIsaEnv detect(nullptr);
  if (simd_support().isa == SimdIsa::kAvx2) {
    GTEST_SKIP() << "AVX2 available here; the unavailable path needs a "
                    "machine or build without it (portable CI leg)";
  }
#endif
  ScopedIsaEnv env("avx2");
  const SimdSupport support = simd_support();
  EXPECT_FALSE(support.available);
  Network network(make_config(Dimension::kTwoD,
                              SlotSemantics::kChainFaithful,
                              SimEngine::kSimd, 1),
                  kWeights);
  add_canonical_fleet(network, Dimension::kTwoD, 8);
  EXPECT_THROW(network.run(100), InvalidArgument);
}

TEST(SimdEngine, SequentialStreamsStayUntouched) {
  // The counter-keyed engine must not consume the terminals' sequential
  // RNG streams: a reference run after a simd run matches a reference run
  // that never ran simd slots... which cannot be compared directly (the
  // simd slots move terminals).  What CAN be pinned: the walk/event Rng
  // state is byte-identical before and after a simd-only run.
  Network network(make_config(Dimension::kTwoD,
                              SlotSemantics::kChainFaithful,
                              SimEngine::kSimd, 1),
                  kWeights);
  const std::vector<TerminalId> ids =
      add_canonical_fleet(network, Dimension::kTwoD, 8);
  const stats::Rng before_ev = network.terminal(ids[0]).event_rng();
  network.run(2000);
  const stats::Rng after_ev = network.terminal(ids[0]).event_rng();
  stats::Rng a = before_ev;
  stats::Rng b = after_ev;
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace pcn::sim
