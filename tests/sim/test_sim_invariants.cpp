// Randomized whole-system invariants: for arbitrary admissible
// configurations and mixed terminal populations, properties that must hold
// in every run regardless of parameters.
#include <gtest/gtest.h>

#include "pcn/sim/network.hpp"
#include "pcn/stats/rng.hpp"

namespace pcn::sim {
namespace {

struct RandomSetup {
  NetworkConfig config;
  CostWeights weights{};
  std::vector<MobilityProfile> profiles;
};

RandomSetup draw_setup(stats::Rng& rng) {
  RandomSetup setup;
  setup.config.dimension =
      rng.next_bernoulli(0.5) ? Dimension::kOneD : Dimension::kTwoD;
  setup.config.semantics = rng.next_bernoulli(0.5)
                               ? SlotSemantics::kChainFaithful
                               : SlotSemantics::kIndependent;
  setup.config.seed = rng.next();
  setup.weights.update_cost = 1.0 + rng.next_unit() * 200.0;
  setup.weights.poll_cost = 0.5 + rng.next_unit() * 20.0;
  const int terminals = 1 + static_cast<int>(rng.next_below(4));
  for (int i = 0; i < terminals; ++i) {
    MobilityProfile profile;
    profile.move_prob = 0.02 + rng.next_unit() * 0.5;
    profile.call_prob = 0.005 + rng.next_unit() * 0.08;
    setup.profiles.push_back(profile);
  }
  return setup;
}

TerminalSpec draw_terminal(stats::Rng& rng, Dimension dim,
                           MobilityProfile profile) {
  const int kind = static_cast<int>(rng.next_below(4));
  const int param = 1 + static_cast<int>(rng.next_below(5));
  const DelayBound bound(1 + static_cast<int>(rng.next_below(4)));
  switch (kind) {
    case 0:
      return make_distance_terminal(dim, profile, param - 1, bound);
    case 1:
      return make_movement_terminal(dim, profile, param, bound);
    case 2:
      return make_time_terminal(dim, profile, 10 * param);
    default:
      return make_la_terminal(dim, profile, param);
  }
}

class SimInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimInvariants, AccountingIdentitiesHoldForRandomPopulations) {
  stats::Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    const RandomSetup setup = draw_setup(rng);
    Network network(setup.config, setup.weights);
    std::vector<TerminalId> ids;
    for (const MobilityProfile& profile : setup.profiles) {
      ids.push_back(network.add_terminal(
          draw_terminal(rng, setup.config.dimension, profile)));
    }
    const std::int64_t slots = 30000;
    network.run(slots);

    for (std::size_t k = 0; k < ids.size(); ++k) {
      const TerminalMetrics& m = network.metrics(ids[k]);
      // Slot bookkeeping.
      EXPECT_EQ(m.slots, slots);
      EXPECT_EQ(m.ring_distance.total(), slots);
      // Every call produced exactly one paging-delay sample, and at least
      // one poll.
      EXPECT_EQ(m.paging_cycles.total(), m.calls);
      EXPECT_GE(m.polled_cells, m.calls);
      // Cost identities (incremental accumulation vs product, so allow
      // floating-point round-off).
      const double expected_update =
          static_cast<double>(m.updates) * setup.weights.update_cost;
      const double expected_paging =
          static_cast<double>(m.polled_cells) * setup.weights.poll_cost;
      EXPECT_NEAR(m.update_cost, expected_update,
                  1e-9 * (1.0 + expected_update));
      EXPECT_NEAR(m.paging_cost, expected_paging,
                  1e-9 * (1.0 + expected_paging));
      // Event frequencies are probabilities.
      EXPECT_LE(m.moves, slots);
      EXPECT_LE(m.updates, slots);
      // Bytes only flow when messages do.
      EXPECT_EQ(m.update_bytes > 0, m.updates > 0);
      EXPECT_EQ(m.paging_bytes > 0, m.calls > 0);
      // No failure injection configured.
      EXPECT_EQ(m.lost_updates, 0);
      EXPECT_EQ(m.paging_failures, 0);
    }
  }
}

TEST_P(SimInvariants, ReRunningTheSameSetupIsBitIdentical) {
  stats::Rng rng(GetParam() ^ 0x77);
  const RandomSetup setup = draw_setup(rng);

  auto run_once = [&](stats::Rng terminal_rng) {
    Network network(setup.config, setup.weights);
    std::vector<TerminalId> ids;
    for (const MobilityProfile& profile : setup.profiles) {
      ids.push_back(network.add_terminal(
          draw_terminal(terminal_rng, setup.config.dimension, profile)));
    }
    network.run(20000);
    std::vector<std::int64_t> signature;
    for (TerminalId id : ids) {
      const TerminalMetrics& m = network.metrics(id);
      signature.push_back(m.moves);
      signature.push_back(m.updates);
      signature.push_back(m.calls);
      signature.push_back(m.polled_cells);
      signature.push_back(m.total_bytes());
    }
    return signature;
  };

  stats::Rng terminal_rng_a(GetParam() ^ 0x88);
  stats::Rng terminal_rng_b(GetParam() ^ 0x88);
  EXPECT_EQ(run_once(terminal_rng_a), run_once(terminal_rng_b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimInvariants,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace pcn::sim
