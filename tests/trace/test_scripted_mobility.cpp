#include "pcn/trace/scripted_mobility.hpp"

#include <gtest/gtest.h>

#include "pcn/common/error.hpp"
#include "pcn/sim/network.hpp"
#include "pcn/trace/event_log.hpp"

namespace pcn::trace {
namespace {

using geometry::Cell;

TEST(ScriptedMobility, MoveProbabilityFollowsTheScript) {
  // Start at origin; slot 1 moves to (1,0), slot 2 stays, slot 3 moves on.
  const ScriptedMobility mobility(
      Dimension::kTwoD, Cell{},
      {Cell{1, 0}, Cell{1, 0}, Cell{2, 0}});
  EXPECT_DOUBLE_EQ(mobility.move_probability(1), 1.0);
  EXPECT_DOUBLE_EQ(mobility.move_probability(2), 0.0);
  EXPECT_DOUBLE_EQ(mobility.move_probability(3), 1.0);
  // Beyond the script: stay put.
  EXPECT_DOUBLE_EQ(mobility.move_probability(4), 0.0);
  EXPECT_DOUBLE_EQ(mobility.move_probability(1000), 0.0);
}

TEST(ScriptedMobility, TargetsComeFromTheScript) {
  const ScriptedMobility mobility(Dimension::kTwoD, Cell{},
                                  {Cell{1, 0}, Cell{1, -1}});
  stats::Rng rng(1);
  EXPECT_EQ(mobility.move_target(Cell{}, 1, rng), (Cell{1, 0}));
  EXPECT_EQ(mobility.move_target(Cell{1, 0}, 2, rng), (Cell{1, -1}));
}

TEST(ScriptedMobility, RejectsTeleportingScripts) {
  EXPECT_THROW(ScriptedMobility(Dimension::kTwoD, Cell{}, {Cell{2, 0}}),
               InvalidArgument);
  EXPECT_THROW(ScriptedMobility(Dimension::kTwoD, Cell{},
                                {Cell{1, 0}, Cell{3, 0}}),
               InvalidArgument);
  EXPECT_THROW(ScriptedMobility(Dimension::kTwoD, Cell{}, {}),
               InvalidArgument);
}

TEST(ScriptedMobility, DesynchronizedReplayIsCaught) {
  const ScriptedMobility mobility(Dimension::kTwoD, Cell{}, {Cell{1, 0}});
  stats::Rng rng(1);
  // Asking for the move from a cell far away from the script.
  EXPECT_THROW(mobility.move_target(Cell{5, 5}, 1, rng), InvalidArgument);
}

TEST(ScriptedReplay, ReproducesARecordedTrajectoryExactly) {
  constexpr MobilityProfile kProfile{0.3, 0.02};
  constexpr CostWeights kWeights{50.0, 2.0};
  constexpr std::int64_t kSlots = 3000;

  // Record a run under independent semantics (replay requires it).
  sim::Network source(
      sim::NetworkConfig{Dimension::kTwoD,
                         sim::SlotSemantics::kIndependent, 99},
      kWeights);
  EventLog recording;
  source.set_observer(&recording);
  const sim::TerminalId id = source.add_terminal(
      sim::make_distance_terminal(Dimension::kTwoD, kProfile, 3,
                                  DelayBound(2)));
  source.run(kSlots);
  const std::vector<Cell> trajectory = recording.trajectory(id);
  ASSERT_EQ(trajectory.size(), static_cast<std::size_t>(kSlots));

  // Replay the exact trajectory under a *different* policy.
  sim::Network replay(
      sim::NetworkConfig{Dimension::kTwoD,
                         sim::SlotSemantics::kIndependent, 4242},
      kWeights);
  EventLog verification;
  replay.set_observer(&verification);
  sim::TerminalSpec spec = sim::make_distance_terminal(
      Dimension::kTwoD, kProfile, 5, DelayBound(3));
  spec.mobility =
      std::make_unique<ScriptedMobility>(Dimension::kTwoD, Cell{},
                                         trajectory);
  const sim::TerminalId replay_id = replay.add_terminal(std::move(spec));
  replay.run(kSlots);

  const std::vector<Cell> replayed = verification.trajectory(replay_id);
  ASSERT_EQ(replayed.size(), trajectory.size());
  for (std::size_t k = 0; k < trajectory.size(); ++k) {
    ASSERT_EQ(replayed[k], trajectory[k]) << "slot " << k + 1;
  }
  // Same walk, same move count, independent of the replay network's seed.
  EXPECT_EQ(replay.metrics(replay_id).moves, source.metrics(id).moves);
}

TEST(ScriptedReplay, DifferentPoliciesOnTheSameTraceAreComparable) {
  // The point of replay: policy A vs policy B on the *identical* walk.
  constexpr MobilityProfile kProfile{0.3, 0.02};
  constexpr CostWeights kWeights{100.0, 10.0};
  constexpr std::int64_t kSlots = 20000;

  sim::Network source(
      sim::NetworkConfig{Dimension::kTwoD,
                         sim::SlotSemantics::kIndependent, 7},
      kWeights);
  EventLog recording;
  source.set_observer(&recording);
  const sim::TerminalId id = source.add_terminal(
      sim::make_distance_terminal(Dimension::kTwoD, kProfile, 3,
                                  DelayBound(2)));
  source.run(kSlots);
  const std::vector<Cell> trajectory = recording.trajectory(id);

  auto replay_cost = [&](int threshold) {
    sim::Network replay(
        sim::NetworkConfig{Dimension::kTwoD,
                           sim::SlotSemantics::kIndependent, 1},
        kWeights);
    sim::TerminalSpec spec = sim::make_distance_terminal(
        Dimension::kTwoD, kProfile, threshold, DelayBound(2));
    spec.mobility = std::make_unique<ScriptedMobility>(Dimension::kTwoD,
                                                       Cell{}, trajectory);
    const sim::TerminalId rid = replay.add_terminal(std::move(spec));
    replay.run(kSlots);
    return replay.metrics(rid).cost_per_slot();
  };

  // At q = 0.3, c = 0.02, U = 100, V = 10: a tiny threshold pays constant
  // updates, a huge one pays giant pages; the planned optimum (d* around
  // 3-5) must beat both extremes on this very walk.
  const double tiny = replay_cost(0);
  const double planned = replay_cost(4);
  const double huge = replay_cost(25);
  EXPECT_LT(planned, tiny);
  EXPECT_LT(planned, huge);
}

}  // namespace
}  // namespace pcn::trace
