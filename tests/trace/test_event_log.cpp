#include "pcn/trace/event_log.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "pcn/sim/network.hpp"

namespace pcn::trace {
namespace {

constexpr MobilityProfile kProfile{0.2, 0.05};
constexpr CostWeights kWeights{50.0, 2.0};

sim::Network make_network(std::uint64_t seed) {
  return sim::Network(
      sim::NetworkConfig{Dimension::kTwoD,
                         sim::SlotSemantics::kChainFaithful, seed},
      kWeights);
}

TEST(EventLog, CountsAgreeWithTheMetrics) {
  sim::Network network = make_network(5);
  EventLog log;
  network.set_observer(&log);
  const sim::TerminalId id = network.add_terminal(
      sim::make_distance_terminal(Dimension::kTwoD, kProfile, 3,
                                  DelayBound(2)));
  network.run(5000);
  const sim::TerminalMetrics& metrics = network.metrics(id);
  EXPECT_EQ(log.count(EventKind::kMove), metrics.moves);
  EXPECT_EQ(log.count(EventKind::kUpdate), metrics.updates);
  EXPECT_EQ(log.count(EventKind::kCall), metrics.calls);
  EXPECT_EQ(log.count(EventKind::kSlotEnd), metrics.slots);
}

TEST(EventLog, PerTerminalCountsSeparateTwoTerminals) {
  sim::Network network = make_network(6);
  EventLog log;
  network.set_observer(&log);
  const sim::TerminalId a = network.add_terminal(
      sim::make_distance_terminal(Dimension::kTwoD, kProfile, 2,
                                  DelayBound(1)));
  const sim::TerminalId b = network.add_terminal(
      sim::make_distance_terminal(Dimension::kTwoD,
                                  MobilityProfile{0.01, 0.001}, 2,
                                  DelayBound(1)));
  network.run(5000);
  EXPECT_EQ(log.count(EventKind::kMove, a), network.metrics(a).moves);
  EXPECT_EQ(log.count(EventKind::kMove, b), network.metrics(b).moves);
  EXPECT_GT(log.count(EventKind::kMove, a), log.count(EventKind::kMove, b));
}

TEST(EventLog, MovesAreBetweenNeighboringCells) {
  sim::Network network = make_network(7);
  EventLog log;
  network.set_observer(&log);
  network.add_terminal(sim::make_distance_terminal(
      Dimension::kTwoD, kProfile, 3, DelayBound(2)));
  network.run(2000);
  for (const Event& event : log.events()) {
    if (event.kind != EventKind::kMove) continue;
    EXPECT_EQ(geometry::cell_distance(Dimension::kTwoD, event.from,
                                      event.cell),
              1);
  }
}

TEST(EventLog, CallEventsCarryPagingOutcome) {
  sim::Network network = make_network(8);
  EventLog log;
  network.set_observer(&log);
  const sim::TerminalId id = network.add_terminal(
      sim::make_distance_terminal(Dimension::kTwoD, kProfile, 4,
                                  DelayBound(2)));
  network.run(20000);
  std::int64_t polled = 0;
  for (const Event& event : log.events()) {
    if (event.kind != EventKind::kCall) continue;
    EXPECT_GE(event.paging_cycles, 1);
    EXPECT_LE(event.paging_cycles, 2);
    EXPECT_GT(event.polled_cells, 0);
    polled += event.polled_cells;
  }
  EXPECT_EQ(polled, network.metrics(id).polled_cells);
}

TEST(EventLog, TrajectoryHasOnePositionPerSlot) {
  sim::Network network = make_network(9);
  EventLog log;
  network.set_observer(&log);
  const sim::TerminalId id = network.add_terminal(
      sim::make_distance_terminal(Dimension::kTwoD, kProfile, 3,
                                  DelayBound(2)));
  network.run(1234);
  const auto trajectory = log.trajectory(id);
  ASSERT_EQ(trajectory.size(), 1234u);
  for (std::size_t k = 1; k < trajectory.size(); ++k) {
    EXPECT_LE(geometry::cell_distance(Dimension::kTwoD, trajectory[k - 1],
                                      trajectory[k]),
              1);
  }
}

TEST(EventLog, SlotEndRecordingCanBeDisabled) {
  sim::Network network = make_network(10);
  EventLog log(/*record_slot_ends=*/false);
  network.set_observer(&log);
  network.add_terminal(sim::make_distance_terminal(
      Dimension::kTwoD, kProfile, 3, DelayBound(2)));
  network.run(1000);
  EXPECT_EQ(log.count(EventKind::kSlotEnd), 0);
  EXPECT_GT(log.count(EventKind::kMove), 0);
}

TEST(EventLog, CsvHasHeaderAndOneLinePerEvent) {
  sim::Network network = make_network(11);
  EventLog log;
  network.set_observer(&log);
  network.add_terminal(sim::make_distance_terminal(
      Dimension::kTwoD, kProfile, 2, DelayBound(1)));
  network.run(50);
  std::ostringstream out;
  log.write_csv(out);
  const std::string csv = out.str();
  std::size_t lines = 0;
  for (char ch : csv) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, log.size() + 1);  // header + events
  EXPECT_EQ(csv.rfind("kind,terminal,time,", 0), 0u);
}

TEST(EventLog, ClearResetsTheLog) {
  EventLog log;
  log.on_update(0, 1, geometry::Cell{});
  EXPECT_EQ(log.size(), 1u);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(EventLog, DetachingTheObserverStopsRecording) {
  sim::Network network = make_network(12);
  EventLog log;
  network.set_observer(&log);
  network.add_terminal(sim::make_distance_terminal(
      Dimension::kTwoD, kProfile, 2, DelayBound(1)));
  network.run(100);
  const std::size_t recorded = log.size();
  network.set_observer(nullptr);
  network.run(100);
  EXPECT_EQ(log.size(), recorded);
}

}  // namespace
}  // namespace pcn::trace
