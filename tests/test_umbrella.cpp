// The umbrella header must compile standalone and expose the whole public
// surface; this test drives one object from every module through it.
#include "pcn/pcn.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EveryModuleIsReachable) {
  const pcn::MobilityProfile profile{0.05, 0.01};
  const pcn::CostWeights weights{100.0, 10.0};

  // geometry
  EXPECT_EQ(pcn::geometry::cells_within(pcn::Dimension::kTwoD, 2), 19);
  EXPECT_EQ(pcn::geometry::hex_from_spiral(0), (pcn::geometry::HexCell{}));

  // linalg
  EXPECT_EQ(pcn::linalg::Matrix::identity(2).at(1, 1), 1.0);

  // markov
  const auto pi = pcn::markov::solve_steady_state(
      pcn::markov::ChainSpec::one_dim(profile), 2);
  EXPECT_EQ(pi.size(), 3u);
  EXPECT_GT(pcn::markov::analyze_renewal(
                pcn::markov::ChainSpec::one_dim(profile), 2)
                .cycle_length(),
            0.0);

  // costs + optimize
  const pcn::costs::CostModel model =
      pcn::costs::CostModel::exact(pcn::Dimension::kTwoD, profile, weights);
  const pcn::optimize::Optimum optimum =
      pcn::optimize::exhaustive_search(model, pcn::DelayBound(2), 20);
  EXPECT_GE(optimum.threshold, 0);

  // stats
  pcn::stats::Summary summary;
  summary.add(1.0);
  EXPECT_EQ(summary.count(), 1);

  // proto
  pcn::proto::LocationUpdate update;
  update.terminal_id = 7;
  EXPECT_EQ(pcn::proto::decode_location_update(pcn::proto::encode(update)),
            update);

  // baselines
  EXPECT_GT(pcn::baselines::movement_based_costs(pcn::Dimension::kTwoD,
                                                 profile, weights, 3,
                                                 pcn::DelayBound(2))
                .total(),
            0.0);

  // capacity
  EXPECT_NEAR(pcn::capacity::erlang_b_blocking(1, 1.0), 0.5, 1e-12);

  // cli
  const char* argv[] = {"tool", "plan", "--q", "0.1"};
  const pcn::cli::Args args = pcn::cli::Args::parse(4, argv);
  EXPECT_EQ(args.command(), "plan");

  // core + sim + trace, end to end
  const pcn::core::LocationManager manager(pcn::Dimension::kTwoD, profile,
                                           weights);
  const pcn::core::LocationPlan plan = manager.plan(pcn::DelayBound(2));
  pcn::sim::Network network(
      pcn::sim::NetworkConfig{pcn::Dimension::kTwoD,
                              pcn::sim::SlotSemantics::kChainFaithful, 1},
      weights);
  pcn::trace::EventLog log(/*record_slot_ends=*/false);
  network.set_observer(&log);
  const pcn::sim::TerminalId id =
      network.add_terminal(manager.make_terminal_spec(plan));
  network.run(2000);
  EXPECT_EQ(network.metrics(id).slots, 2000);
  EXPECT_EQ(log.count(pcn::trace::EventKind::kUpdate),
            network.metrics(id).updates);
}

}  // namespace
