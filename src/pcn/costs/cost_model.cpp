#include "pcn/costs/cost_model.hpp"

#include <mutex>
#include <unordered_map>
#include <utility>

#include "pcn/common/error.hpp"
#include "pcn/markov/steady_state.hpp"

namespace pcn::costs {
namespace {

/// Packs (threshold, bound) into one map key; unbounded maps to all-ones.
std::uint64_t partition_key(int threshold, DelayBound bound) {
  const std::uint32_t cycles =
      bound.is_unbounded() ? ~std::uint32_t{0}
                           : static_cast<std::uint32_t>(bound.cycles());
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(threshold))
          << 32) |
         cycles;
}

}  // namespace

/// Memoized solver results.  Guarded by a mutex so a model shared across
/// simulation shards or optimizer threads stays consistent; references into
/// the maps remain valid because entries are node-stable and never erased.
struct CostModel::SolveCache {
  std::mutex mutex;
  std::unordered_map<int, std::vector<double>> steady_states;
  std::unordered_map<std::uint64_t, Partition> partitions;
  std::int64_t solves = 0;
};

CostModel::CostModel(markov::ChainSpec spec, CostWeights weights,
                     Options options)
    : spec_(spec),
      weights_(weights),
      options_(options),
      cache_(std::make_shared<SolveCache>()) {
  weights_.validate();
  PCN_EXPECT(!options_.legacy_d0_generic_update_rate ||
                 spec_.kind() != markov::ChainKind::kTwoDimExact,
             "CostModel: the legacy d = 0 quirk applies to the 1-D chain "
             "and the approximate 2-D chain only");
}

CostModel CostModel::exact(Dimension dim, MobilityProfile profile,
                           CostWeights weights, Options options) {
  return CostModel(markov::ChainSpec::exact(dim, profile), weights, options);
}

CostModel CostModel::approximate_2d(MobilityProfile profile,
                                    CostWeights weights, Options options) {
  return CostModel(markov::ChainSpec::two_dim_approx(profile), weights,
                   options);
}

const std::vector<double>& CostModel::cached_steady_state(
    int threshold) const {
  PCN_EXPECT(threshold >= 0, "CostModel: threshold must be >= 0");
  std::lock_guard<std::mutex> lock(cache_->mutex);
  auto it = cache_->steady_states.find(threshold);
  if (it == cache_->steady_states.end()) {
    it = cache_->steady_states
             .emplace(threshold, markov::solve_steady_state(spec_, threshold))
             .first;
    ++cache_->solves;
  }
  return it->second;
}

const Partition& CostModel::cached_partition(int threshold,
                                             DelayBound bound) const {
  const std::uint64_t key = partition_key(threshold, bound);
  {
    std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->partitions.find(key);
    if (it != cache_->partitions.end()) return it->second;
  }
  // Build outside the lock (the DP schemes need the steady state, which
  // itself takes the lock); insertion is idempotent on a lost race.
  Partition built = [&] {
    switch (options_.scheme) {
      case PartitionScheme::kSdfEqual:
        return Partition::sdf(threshold, bound);
      case PartitionScheme::kOptimalContiguous:
        return Partition::optimal(cached_steady_state(threshold), dimension(),
                                  bound);
      case PartitionScheme::kHighestProbabilityFirst:
        return Partition::highest_probability_first(
            cached_steady_state(threshold), dimension(), bound);
    }
    PCN_ASSERT(false);
    return Partition::blanket(threshold);
  }();
  std::lock_guard<std::mutex> lock(cache_->mutex);
  return cache_->partitions.emplace(key, std::move(built)).first->second;
}

std::int64_t CostModel::solves_performed() const {
  std::lock_guard<std::mutex> lock(cache_->mutex);
  return cache_->solves;
}

std::vector<double> CostModel::steady_state(int threshold) const {
  return cached_steady_state(threshold);
}

double CostModel::update_cost(int threshold) const {
  PCN_EXPECT(threshold >= 0, "CostModel: threshold must be >= 0");
  const std::vector<double>& pi = cached_steady_state(threshold);
  double exit_rate = spec_.up(threshold);
  if (threshold == 0 && options_.legacy_d0_generic_update_rate) {
    // The published numbers used the generic i >= 1 formula at d = 0.
    exit_rate = spec_.kind() == markov::ChainKind::kOneDimExact
                    ? spec_.profile().move_prob / 2.0
                    : spec_.profile().move_prob / 3.0;
  }
  return pi.back() * exit_rate * weights_.update_cost;
}

Partition CostModel::partition(int threshold, DelayBound bound) const {
  return cached_partition(threshold, bound);
}

double CostModel::paging_cost(int threshold, DelayBound bound) const {
  return paging_cost(threshold, cached_partition(threshold, bound));
}

double CostModel::paging_cost(int threshold,
                              const Partition& partition) const {
  PCN_EXPECT(partition.threshold() == threshold,
             "CostModel::paging_cost: partition threshold mismatch");
  const std::vector<double>& pi = cached_steady_state(threshold);
  return spec_.call() * weights_.poll_cost *
         partition.expected_polled_cells(pi, dimension());
}

CostBreakdown CostModel::cost(int threshold, DelayBound bound) const {
  return CostBreakdown{update_cost(threshold), paging_cost(threshold, bound)};
}

double CostModel::total_cost(int threshold, DelayBound bound) const {
  return cost(threshold, bound).total();
}

}  // namespace pcn::costs
