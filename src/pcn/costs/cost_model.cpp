#include "pcn/costs/cost_model.hpp"

#include <mutex>
#include <unordered_map>
#include <utility>

#include "pcn/common/error.hpp"
#include "pcn/markov/steady_state.hpp"
#include "pcn/obs/metrics.hpp"
#include "pcn/obs/timer.hpp"

namespace pcn::costs {
namespace {

/// Packs (threshold, bound) into one map key; unbounded maps to all-ones.
std::uint64_t partition_key(int threshold, DelayBound bound) {
  const std::uint32_t cycles =
      bound.is_unbounded() ? ~std::uint32_t{0}
                           : static_cast<std::uint32_t>(bound.cycles());
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(threshold))
          << 32) |
         cycles;
}

}  // namespace

/// Memoized solver results.  Guarded by a mutex so a model shared across
/// simulation shards or optimizer threads stays consistent; references into
/// the maps remain valid because entries are node-stable and never erased.
///
/// The cache keeps its own lifetime telemetry (stats, under the mutex) and
/// optionally mirrors it into a bound MetricsRegistry — null counter
/// handles make the mirroring a no-op until bind_metrics is called.
struct CostModel::SolveCache {
  std::mutex mutex;
  std::unordered_map<int, std::vector<double>> steady_states;
  std::unordered_map<std::uint64_t, Partition> partitions;
  SolveCacheStats stats;
  obs::Counter hit_counter, miss_counter, evict_counter, ns_counter;
  obs::Counter partition_hit_counter, partition_miss_counter;
};

CostModel::CostModel(markov::ChainSpec spec, CostWeights weights,
                     Options options)
    : spec_(spec),
      weights_(weights),
      options_(options),
      cache_(std::make_shared<SolveCache>()) {
  weights_.validate();
  PCN_EXPECT(!options_.legacy_d0_generic_update_rate ||
                 spec_.kind() != markov::ChainKind::kTwoDimExact,
             "CostModel: the legacy d = 0 quirk applies to the 1-D chain "
             "and the approximate 2-D chain only");
}

CostModel CostModel::exact(Dimension dim, MobilityProfile profile,
                           CostWeights weights, Options options) {
  return CostModel(markov::ChainSpec::exact(dim, profile), weights, options);
}

CostModel CostModel::approximate_2d(MobilityProfile profile,
                                    CostWeights weights, Options options) {
  return CostModel(markov::ChainSpec::two_dim_approx(profile), weights,
                   options);
}

const std::vector<double>& CostModel::cached_steady_state(
    int threshold) const {
  PCN_EXPECT(threshold >= 0, "CostModel: threshold must be >= 0");
  std::lock_guard<std::mutex> lock(cache_->mutex);
  auto it = cache_->steady_states.find(threshold);
  if (it == cache_->steady_states.end()) {
    const std::int64_t start_ns = obs::monotonic_ns();
    it = cache_->steady_states
             .emplace(threshold, markov::solve_steady_state(spec_, threshold))
             .first;
    const std::int64_t elapsed_ns = obs::monotonic_ns() - start_ns;
    ++cache_->stats.misses;
    cache_->stats.solve_ns += elapsed_ns;
    cache_->miss_counter.increment();
    cache_->ns_counter.add(elapsed_ns);
  } else {
    ++cache_->stats.hits;
    cache_->hit_counter.increment();
  }
  return it->second;
}

const Partition& CostModel::cached_partition(int threshold,
                                             DelayBound bound) const {
  const std::uint64_t key = partition_key(threshold, bound);
  {
    std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->partitions.find(key);
    if (it != cache_->partitions.end()) {
      ++cache_->stats.partition_hits;
      cache_->partition_hit_counter.increment();
      return it->second;
    }
  }
  // Build outside the lock (the DP schemes need the steady state, which
  // itself takes the lock); insertion is idempotent on a lost race.
  Partition built = [&] {
    switch (options_.scheme) {
      case PartitionScheme::kSdfEqual:
        return Partition::sdf(threshold, bound);
      case PartitionScheme::kOptimalContiguous:
        return Partition::optimal(cached_steady_state(threshold), dimension(),
                                  bound);
      case PartitionScheme::kHighestProbabilityFirst:
        return Partition::highest_probability_first(
            cached_steady_state(threshold), dimension(), bound);
    }
    PCN_ASSERT(false);
    return Partition::blanket(threshold);
  }();
  std::lock_guard<std::mutex> lock(cache_->mutex);
  const auto [it, inserted] =
      cache_->partitions.emplace(key, std::move(built));
  if (inserted) {
    ++cache_->stats.partition_misses;
    cache_->partition_miss_counter.increment();
  } else {
    // Lost the build race: the insert was a no-op and this lookup was
    // effectively served from the cache.
    ++cache_->stats.partition_hits;
    cache_->partition_hit_counter.increment();
  }
  return it->second;
}

SolveCacheStats CostModel::solve_cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_->mutex);
  return cache_->stats;
}

void CostModel::bind_metrics(obs::MetricsRegistry& registry) const {
  std::lock_guard<std::mutex> lock(cache_->mutex);
  cache_->hit_counter = registry.counter("costmodel.solve.hit");
  cache_->miss_counter = registry.counter("costmodel.solve.miss");
  cache_->evict_counter = registry.counter("costmodel.solve.evict");
  cache_->ns_counter = registry.counter("costmodel.solve.ns");
  cache_->partition_hit_counter =
      registry.counter("costmodel.partition.hit");
  cache_->partition_miss_counter =
      registry.counter("costmodel.partition.miss");
  // Back-fill activity that predates the binding so the registry shows
  // lifetime totals.
  cache_->hit_counter.add(cache_->stats.hits);
  cache_->miss_counter.add(cache_->stats.misses);
  cache_->evict_counter.add(cache_->stats.evictions);
  cache_->ns_counter.add(cache_->stats.solve_ns);
  cache_->partition_hit_counter.add(cache_->stats.partition_hits);
  cache_->partition_miss_counter.add(cache_->stats.partition_misses);
}

std::int64_t CostModel::solves_performed() const {
  return solve_cache_stats().misses;
}

std::vector<double> CostModel::steady_state(int threshold) const {
  return cached_steady_state(threshold);
}

double CostModel::update_cost(int threshold) const {
  PCN_EXPECT(threshold >= 0, "CostModel: threshold must be >= 0");
  const std::vector<double>& pi = cached_steady_state(threshold);
  double exit_rate = spec_.up(threshold);
  if (threshold == 0 && options_.legacy_d0_generic_update_rate) {
    // The published numbers used the generic i >= 1 formula at d = 0.
    exit_rate = spec_.kind() == markov::ChainKind::kOneDimExact
                    ? spec_.profile().move_prob / 2.0
                    : spec_.profile().move_prob / 3.0;
  }
  return pi.back() * exit_rate * weights_.update_cost;
}

Partition CostModel::partition(int threshold, DelayBound bound) const {
  return cached_partition(threshold, bound);
}

double CostModel::paging_cost(int threshold, DelayBound bound) const {
  return paging_cost(threshold, cached_partition(threshold, bound));
}

double CostModel::paging_cost(int threshold,
                              const Partition& partition) const {
  PCN_EXPECT(partition.threshold() == threshold,
             "CostModel::paging_cost: partition threshold mismatch");
  const std::vector<double>& pi = cached_steady_state(threshold);
  return spec_.call() * weights_.poll_cost *
         partition.expected_polled_cells(pi, dimension());
}

CostBreakdown CostModel::cost(int threshold, DelayBound bound) const {
  return CostBreakdown{update_cost(threshold), paging_cost(threshold, bound)};
}

double CostModel::total_cost(int threshold, DelayBound bound) const {
  return cost(threshold, bound).total();
}

}  // namespace pcn::costs
