#include "pcn/costs/cost_model.hpp"

#include "pcn/common/error.hpp"
#include "pcn/markov/steady_state.hpp"

namespace pcn::costs {

CostModel::CostModel(markov::ChainSpec spec, CostWeights weights,
                     Options options)
    : spec_(spec), weights_(weights), options_(options) {
  weights_.validate();
  PCN_EXPECT(!options_.legacy_d0_generic_update_rate ||
                 spec_.kind() != markov::ChainKind::kTwoDimExact,
             "CostModel: the legacy d = 0 quirk applies to the 1-D chain "
             "and the approximate 2-D chain only");
}

CostModel CostModel::exact(Dimension dim, MobilityProfile profile,
                           CostWeights weights, Options options) {
  return CostModel(markov::ChainSpec::exact(dim, profile), weights, options);
}

CostModel CostModel::approximate_2d(MobilityProfile profile,
                                    CostWeights weights, Options options) {
  return CostModel(markov::ChainSpec::two_dim_approx(profile), weights,
                   options);
}

std::vector<double> CostModel::steady_state(int threshold) const {
  return markov::solve_steady_state(spec_, threshold);
}

double CostModel::update_cost(int threshold) const {
  PCN_EXPECT(threshold >= 0, "CostModel: threshold must be >= 0");
  const std::vector<double> pi = steady_state(threshold);
  double exit_rate = spec_.up(threshold);
  if (threshold == 0 && options_.legacy_d0_generic_update_rate) {
    // The published numbers used the generic i >= 1 formula at d = 0.
    exit_rate = spec_.kind() == markov::ChainKind::kOneDimExact
                    ? spec_.profile().move_prob / 2.0
                    : spec_.profile().move_prob / 3.0;
  }
  return pi.back() * exit_rate * weights_.update_cost;
}

Partition CostModel::partition(int threshold, DelayBound bound) const {
  switch (options_.scheme) {
    case PartitionScheme::kSdfEqual:
      return Partition::sdf(threshold, bound);
    case PartitionScheme::kOptimalContiguous:
      return Partition::optimal(steady_state(threshold), dimension(), bound);
    case PartitionScheme::kHighestProbabilityFirst:
      return Partition::highest_probability_first(steady_state(threshold),
                                                  dimension(), bound);
  }
  PCN_ASSERT(false);
  return Partition::blanket(threshold);
}

double CostModel::paging_cost(int threshold, DelayBound bound) const {
  return paging_cost(threshold, partition(threshold, bound));
}

double CostModel::paging_cost(int threshold,
                              const Partition& partition) const {
  PCN_EXPECT(partition.threshold() == threshold,
             "CostModel::paging_cost: partition threshold mismatch");
  const std::vector<double> pi = steady_state(threshold);
  return spec_.call() * weights_.poll_cost *
         partition.expected_polled_cells(pi, dimension());
}

CostBreakdown CostModel::cost(int threshold, DelayBound bound) const {
  return CostBreakdown{update_cost(threshold), paging_cost(threshold, bound)};
}

double CostModel::total_cost(int threshold, DelayBound bound) const {
  return cost(threshold, bound).total();
}

}  // namespace pcn::costs
