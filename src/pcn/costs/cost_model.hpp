// Average location-update and paging cost model (paper §5).
//
// Given a chain spec (geometry + mobility/traffic profile) and cost weights
// (U, V), `CostModel` evaluates, for a threshold distance d and delay bound
// m:
//   C_u(d)    = p_{d,d} · a_{d,d+1} · U                 (eq. 61)
//   C_v(d,m)  = c · V · Σ_j α_j w_j                     (eqs. 62-65)
//   C_T(d,m)  = C_u(d) + C_v(d,m)                       (eq. 66)
// with the partitioning scheme selectable (paper SDF default).
//
// Evaluations are memoized: the steady-state distribution and the derived
// partition for each (threshold, bound) are solved once and shared by
// `update_cost`, `partition` and `paging_cost` — one `total_cost` call
// triggers exactly one chain solve, and a threshold sweep (the optimal-
// threshold search hot path) solves each chain once instead of O(d_max)
// times.  The cache is shared between copies of a model (the inputs are
// immutable) and is safe to hit from several threads.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pcn/common/params.hpp"
#include "pcn/costs/partition.hpp"
#include "pcn/markov/chain_spec.hpp"

namespace pcn::obs {
class MetricsRegistry;
}  // namespace pcn::obs

namespace pcn::costs {

/// How the residing area is split into paging subareas.
enum class PartitionScheme {
  kSdfEqual,                 ///< the paper's equal-split SDF rule
  kOptimalContiguous,        ///< DP-optimal contiguous split (paper §8)
  kHighestProbabilityFirst,  ///< per-cell-probability ring order + DP split
};

struct CostBreakdown {
  double update = 0.0;  ///< C_u(d)
  double paging = 0.0;  ///< C_v(d, m)

  double total() const { return update + paging; }
};

/// Lifetime telemetry of a model's memoized solver (shared by copies).
/// `evictions` is always 0 today — entries are never evicted, the counter
/// exists so the exported schema stays stable if an eviction policy ever
/// lands — and `solve_ns` is wall time spent inside chain solves.
struct SolveCacheStats {
  std::int64_t hits = 0;        ///< steady-state lookups served from cache
  std::int64_t misses = 0;      ///< steady-state solves performed
  std::int64_t evictions = 0;
  std::int64_t solve_ns = 0;
  std::int64_t partition_hits = 0;    ///< (d, m) partitions reused
  std::int64_t partition_misses = 0;  ///< partitions built
};

struct CostModelOptions {
  PartitionScheme scheme = PartitionScheme::kSdfEqual;
  /// Reproduce the paper's published numbers exactly: its Table 1 (1-D)
  /// and its Table 2 near-optimal columns (2-D approximate chain) computed
  /// C_u(0) with the generic i >= 1 outward rate (q/2 resp. q/3) although
  /// eqs. (3)/(43) print a_{0,1} = q.  Affects d = 0 only; defaults to the
  /// equations.  Rejected for the 2-D exact chain (the paper's Table 2
  /// exact columns correctly used q there).
  bool legacy_d0_generic_update_rate = false;
};

class CostModel {
 public:
  using Options = CostModelOptions;

  CostModel(markov::ChainSpec spec, CostWeights weights,
            Options options = {});

  /// Model with the exact chain for `dim`.
  static CostModel exact(Dimension dim, MobilityProfile profile,
                         CostWeights weights, Options options = {});

  /// Model with the approximate 2-D chain (paper §4.2).
  static CostModel approximate_2d(MobilityProfile profile, CostWeights weights,
                                  Options options = {});

  const markov::ChainSpec& spec() const { return spec_; }
  const CostWeights& weights() const { return weights_; }
  const Options& options() const { return options_; }
  Dimension dimension() const { return spec_.dimension(); }

  /// Steady-state ring-distance distribution for threshold d (d+1 entries).
  std::vector<double> steady_state(int threshold) const;

  /// Average location-update cost C_u(d).
  double update_cost(int threshold) const;

  /// Average paging cost C_v(d, m) under the configured partition scheme.
  double paging_cost(int threshold, DelayBound bound) const;

  /// Average paging cost under an explicit partition (must match d).
  double paging_cost(int threshold, const Partition& partition) const;

  /// C_u + C_v under the configured scheme.
  CostBreakdown cost(int threshold, DelayBound bound) const;

  /// Convenience: cost(threshold, bound).total().
  double total_cost(int threshold, DelayBound bound) const;

  /// The partition the configured scheme produces for (d, m).
  Partition partition(int threshold, DelayBound bound) const;

  /// Cache hit/miss/evict telemetry for the memoized solver.  Copies of a
  /// model share one cache and therefore one set of counters.
  SolveCacheStats solve_cache_stats() const;

  /// Streams the cache counters into `registry` as
  /// `costmodel.solve.hit` / `.miss` / `.evict` / `.ns` and
  /// `costmodel.partition.hit` / `.miss`.  The current lifetime totals are
  /// back-filled at bind time, so late binding loses nothing; rebinding
  /// redirects future activity to the new registry.  Copies of the model
  /// share the binding.
  void bind_metrics(obs::MetricsRegistry& registry) const;

  /// Deprecated: use solve_cache_stats().misses (this thin shim is kept so
  /// pre-telemetry callers and tests keep working unchanged).
  std::int64_t solves_performed() const;

 private:
  struct SolveCache;

  /// Cached steady-state distribution for `threshold`; solves on miss.
  /// The reference stays valid for the model's lifetime (entries are never
  /// evicted and the map's nodes are stable).
  const std::vector<double>& cached_steady_state(int threshold) const;
  /// Cached partition for (threshold, bound) under the configured scheme.
  const Partition& cached_partition(int threshold, DelayBound bound) const;

  markov::ChainSpec spec_;
  CostWeights weights_;
  Options options_;
  std::shared_ptr<SolveCache> cache_;
};

}  // namespace pcn::costs
