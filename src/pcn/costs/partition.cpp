#include "pcn/costs/partition.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "pcn/common/error.hpp"
#include "pcn/geometry/ring_metrics.hpp"

namespace pcn::costs {
namespace {

void validate_probabilities(std::span<const double> probabilities,
                            int threshold) {
  PCN_EXPECT(static_cast<int>(probabilities.size()) == threshold + 1,
             "Partition: probability vector must have threshold+1 entries");
  for (double p : probabilities) {
    PCN_EXPECT(p >= 0.0, "Partition: probabilities must be non-negative");
  }
}

}  // namespace

Partition::Partition(int threshold, std::vector<std::vector<int>> subareas)
    : threshold_(threshold), subareas_(std::move(subareas)) {}

Partition Partition::sdf(int threshold, DelayBound bound) {
  PCN_EXPECT(threshold >= 0, "Partition::sdf: threshold must be >= 0");
  const int rings = threshold + 1;
  const int groups = bound.subarea_count(threshold);
  // γ = ⌊(d+1)/ℓ⌋ rings per subarea; the last subarea takes the remainder
  // (paper §2.2 partitioning steps 1-3).
  const int per_group = rings / groups;
  std::vector<std::vector<int>> subareas(static_cast<std::size_t>(groups));
  for (int j = 0; j < groups; ++j) {
    const int first = j * per_group;
    const int last = (j == groups - 1) ? rings - 1 : (j + 1) * per_group - 1;
    for (int i = first; i <= last; ++i) {
      subareas[static_cast<std::size_t>(j)].push_back(i);
    }
  }
  return Partition(threshold, std::move(subareas));
}

Partition Partition::single_rings(int threshold) {
  return sdf(threshold, DelayBound::unbounded());
}

Partition Partition::blanket(int threshold) {
  return sdf(threshold, DelayBound(1));
}

Partition Partition::optimal(std::span<const double> probabilities,
                             Dimension dim, DelayBound bound) {
  const int threshold = static_cast<int>(probabilities.size()) - 1;
  PCN_EXPECT(threshold >= 0, "Partition::optimal: empty probability vector");
  validate_probabilities(probabilities, threshold);
  std::vector<int> order(static_cast<std::size_t>(threshold) + 1);
  std::iota(order.begin(), order.end(), 0);
  return Partition(threshold,
                   detail::dp_group(order, probabilities, dim,
                                    bound.subarea_count(threshold)));
}

Partition Partition::highest_probability_first(
    std::span<const double> probabilities, Dimension dim, DelayBound bound) {
  const int threshold = static_cast<int>(probabilities.size()) - 1;
  PCN_EXPECT(threshold >= 0,
             "Partition::highest_probability_first: empty probability vector");
  validate_probabilities(probabilities, threshold);
  std::vector<int> order(static_cast<std::size_t>(threshold) + 1);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const double pa = probabilities[static_cast<std::size_t>(a)] /
                      static_cast<double>(geometry::ring_size(dim, a));
    const double pb = probabilities[static_cast<std::size_t>(b)] /
                      static_cast<double>(geometry::ring_size(dim, b));
    return pa > pb;
  });
  return Partition(threshold,
                   detail::dp_group(order, probabilities, dim,
                                    bound.subarea_count(threshold)));
}

Partition Partition::from_subareas(int threshold,
                                   std::vector<std::vector<int>> subareas) {
  PCN_EXPECT(threshold >= 0, "Partition: threshold must be >= 0");
  std::vector<bool> seen(static_cast<std::size_t>(threshold) + 1, false);
  PCN_EXPECT(!subareas.empty(), "Partition: at least one subarea required");
  for (const auto& rings : subareas) {
    PCN_EXPECT(!rings.empty(), "Partition: subareas must be non-empty");
    for (int ring : rings) {
      PCN_EXPECT(ring >= 0 && ring <= threshold,
                 "Partition: ring index out of range");
      PCN_EXPECT(!seen[static_cast<std::size_t>(ring)],
                 "Partition: ring assigned to more than one subarea");
      seen[static_cast<std::size_t>(ring)] = true;
    }
  }
  for (bool covered : seen) {
    PCN_EXPECT(covered, "Partition: every ring must be covered");
  }
  return Partition(threshold, std::move(subareas));
}

const std::vector<int>& Partition::rings(int subarea) const {
  PCN_EXPECT(subarea >= 0 && subarea < subarea_count(),
             "Partition::rings: subarea index out of range");
  return subareas_[static_cast<std::size_t>(subarea)];
}

std::int64_t Partition::cell_count(Dimension dim, int subarea) const {
  std::int64_t cells = 0;
  for (int ring : rings(subarea)) cells += geometry::ring_size(dim, ring);
  return cells;
}

double Partition::expected_polled_cells(std::span<const double> probabilities,
                                        Dimension dim) const {
  validate_probabilities(probabilities, threshold_);
  double expected = 0.0;
  std::int64_t polled_so_far = 0;
  for (int j = 0; j < subarea_count(); ++j) {
    polled_so_far += cell_count(dim, j);
    double alpha = 0.0;
    for (int ring : rings(j)) {
      alpha += probabilities[static_cast<std::size_t>(ring)];
    }
    expected += alpha * static_cast<double>(polled_so_far);
  }
  return expected;
}

double Partition::expected_delay_cycles(
    std::span<const double> probabilities) const {
  validate_probabilities(probabilities, threshold_);
  double expected = 0.0;
  for (int j = 0; j < subarea_count(); ++j) {
    double alpha = 0.0;
    for (int ring : rings(j)) {
      alpha += probabilities[static_cast<std::size_t>(ring)];
    }
    expected += alpha * static_cast<double>(j + 1);
  }
  return expected;
}

namespace detail {

std::vector<std::vector<int>> dp_group(std::span<const int> ring_order,
                                       std::span<const double> probabilities,
                                       Dimension dim, int groups) {
  const int n = static_cast<int>(ring_order.size());
  PCN_EXPECT(groups >= 1 && groups <= n,
             "dp_group: group count must lie in [1, ring count]");

  // Prefix sums over the *ordered* ring sequence.
  std::vector<double> prob_prefix(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<double> cell_prefix(static_cast<std::size_t>(n) + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    const int ring = ring_order[static_cast<std::size_t>(i)];
    prob_prefix[static_cast<std::size_t>(i) + 1] =
        prob_prefix[static_cast<std::size_t>(i)] +
        probabilities[static_cast<std::size_t>(ring)];
    cell_prefix[static_cast<std::size_t>(i) + 1] =
        cell_prefix[static_cast<std::size_t>(i)] +
        static_cast<double>(geometry::ring_size(dim, ring));
  }

  // f[g][i] = min expected polled cells for the first i rings in g blocks;
  // the block ending at ring i-1 contributes (its mass) * (cells of the
  // whole prefix).  Splitting never hurts, so exactly `groups` blocks.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> f(
      static_cast<std::size_t>(groups) + 1,
      std::vector<double>(static_cast<std::size_t>(n) + 1, kInf));
  std::vector<std::vector<int>> arg(
      static_cast<std::size_t>(groups) + 1,
      std::vector<int>(static_cast<std::size_t>(n) + 1, -1));
  f[0][0] = 0.0;
  for (int g = 1; g <= groups; ++g) {
    for (int i = g; i <= n; ++i) {
      for (int s = g - 1; s < i; ++s) {
        const double prev = f[static_cast<std::size_t>(g) - 1]
                             [static_cast<std::size_t>(s)];
        if (prev == kInf) continue;
        const double mass = prob_prefix[static_cast<std::size_t>(i)] -
                            prob_prefix[static_cast<std::size_t>(s)];
        const double candidate =
            prev + mass * cell_prefix[static_cast<std::size_t>(i)];
        if (candidate < f[static_cast<std::size_t>(g)]
                         [static_cast<std::size_t>(i)]) {
          f[static_cast<std::size_t>(g)][static_cast<std::size_t>(i)] =
              candidate;
          arg[static_cast<std::size_t>(g)][static_cast<std::size_t>(i)] = s;
        }
      }
    }
  }

  std::vector<std::vector<int>> subareas(static_cast<std::size_t>(groups));
  int end = n;
  for (int g = groups; g >= 1; --g) {
    const int start = arg[static_cast<std::size_t>(g)]
                         [static_cast<std::size_t>(end)];
    PCN_ASSERT(start >= 0);
    for (int i = start; i < end; ++i) {
      subareas[static_cast<std::size_t>(g) - 1].push_back(
          ring_order[static_cast<std::size_t>(i)]);
    }
    end = start;
  }
  PCN_ASSERT(end == 0);
  return subareas;
}

}  // namespace detail

}  // namespace pcn::costs
