// Residing-area partitioning for delay-constrained paging (paper §2.2).
//
// With threshold distance d the residing area is the d+1 rings r_0..r_d
// around the center cell.  Under a maximum paging delay of m polling cycles
// it is split into ℓ = min(d+1, m) ordered subareas, polled one per cycle
// until the terminal answers.  The expected number of polled cells is
//   E = Σ_j α_j w_j,   α_j = Σ_{r_i ∈ A_j} p_{i,d},   w_j = Σ_{k<=j} N(A_k)
// (paper eqs. 63-65).
//
// Schemes provided:
//   * `sdf`      — the paper's shortest-distance-first equal-split rule
//                  (γ = ⌊(d+1)/ℓ⌋ rings per subarea, remainder in the last);
//   * `optimal`  — minimal-E contiguous partition via dynamic programming
//                  (the paper's §8 "optimal partitioning" future work);
//   * `highest_probability_first` — rings ordered by per-cell probability
//                  (Rose & Yates [7] ordering), then optimally grouped;
//   * `blanket` / `single_rings` — the m = 1 and m = ∞ extremes.
//
// A Partition is an ordered list of subareas, each an ordered list of ring
// indices; every ring in 0..d appears exactly once.
#pragma once

#include <span>
#include <vector>

#include "pcn/common/params.hpp"

namespace pcn::costs {

class Partition {
 public:
  /// The paper's SDF equal-split rule for threshold d under `bound`.
  static Partition sdf(int threshold, DelayBound bound);

  /// One ring per subarea (the unbounded-delay partition).
  static Partition single_rings(int threshold);

  /// Everything in one subarea (the m = 1 partition).
  static Partition blanket(int threshold);

  /// Cost-minimal contiguous (distance-ordered) partition for the given
  /// steady-state probabilities, via DP.  `probabilities` has d+1 entries.
  static Partition optimal(std::span<const double> probabilities,
                           Dimension dim, DelayBound bound);

  /// Rings sorted by per-cell location probability (descending), then
  /// grouped into ℓ subareas by the same DP.
  static Partition highest_probability_first(
      std::span<const double> probabilities, Dimension dim, DelayBound bound);

  /// Builds from explicit subarea ring lists (validated: every ring in
  /// 0..threshold exactly once, subareas non-empty).
  static Partition from_subareas(int threshold,
                                 std::vector<std::vector<int>> subareas);

  int threshold() const { return threshold_; }
  int subarea_count() const { return static_cast<int>(subareas_.size()); }

  /// Ring indices of subarea j (0-based; polled in cycle j+1).
  const std::vector<int>& rings(int subarea) const;

  /// Number of cells in subarea j.
  std::int64_t cell_count(Dimension dim, int subarea) const;

  /// Expected polled cells Σ_j α_j w_j for the given ring probabilities.
  double expected_polled_cells(std::span<const double> probabilities,
                               Dimension dim) const;

  /// Expected paging delay in polling cycles, Σ_j α_j (j+1).
  double expected_delay_cycles(std::span<const double> probabilities) const;

  friend bool operator==(const Partition&, const Partition&) = default;

 private:
  Partition(int threshold, std::vector<std::vector<int>> subareas);

  int threshold_ = 0;
  std::vector<std::vector<int>> subareas_;
};

namespace detail {

/// Groups `ring_order` (a permutation of 0..d) into exactly `groups`
/// consecutive blocks minimizing expected polled cells; returns block
/// boundaries as subarea ring lists.
std::vector<std::vector<int>> dp_group(std::span<const int> ring_order,
                                       std::span<const double> probabilities,
                                       Dimension dim, int groups);

}  // namespace detail

}  // namespace pcn::costs
