// Paging-channel capacity planning.
//
// The paper's opening motivation is "the very limited wireless bandwidth":
// each location update and each poll consumes air-interface resources.
// This module turns a planned location-management policy into channel
// requirements for a cell:
//
//   * per-cell signalling load — expected polls and updates per slot that
//     one cell carries, given a population of N statistically identical
//     users whose residing areas are uniformly positioned over the area
//     (each poll hits one cell; each update is sent in one cell);
//   * Erlang-B dimensioning — blocking probability of a g-channel paging
//     group offered that load, and the smallest channel count meeting a
//     target blocking probability (the classic telephone-engineering
//     recursion, evaluated stably in linear time).
#pragma once

#include <cstdint>

#include "pcn/common/params.hpp"
#include "pcn/core/location_manager.hpp"

namespace pcn::capacity {

/// Expected signalling messages per slot carried by one cell.
struct CellLoad {
  double polls_per_slot = 0.0;    ///< paging polls addressed to the cell
  double updates_per_slot = 0.0;  ///< location updates received by the cell

  double total_per_slot() const { return polls_per_slot + updates_per_slot; }
};

/// Per-cell load induced by `users_per_cell` statistically identical users
/// following `plan` (profile/weights taken from `manager`).  With uniform
/// user positions, each of a user's expected polled cells per slot lands
/// on a given cell with probability 1/g(d)… aggregated over the population
/// this reduces to load(cell) = users_per_cell · (expected polls per user
/// per slot), and similarly one update message per update event.
CellLoad cell_load(const core::LocationManager& manager,
                   const core::LocationPlan& plan, double users_per_cell);

/// Erlang-B blocking probability B(channels, offered_erlangs); channels >=
/// 0 (0 channels block everything), offered >= 0.
double erlang_b_blocking(int channels, double offered_erlangs);

/// Smallest channel count with blocking <= `target` for the offered load;
/// `target` in (0, 1).  Returns at most `max_channels` (throws if even
/// that is insufficient).
int min_channels(double offered_erlangs, double target,
                 int max_channels = 10000);

/// Offered paging load in Erlangs for a cell: messages/slot × (message
/// service time in slots).
double offered_erlangs(const CellLoad& load, double slots_per_message);

/// Deterministic per-slot service budget of one cell's paging channel.
///
/// A cell runs `channels` parallel paging channels and one page message
/// occupies a channel for `slots_per_message` slots, so the channel group
/// sustains rate = channels / slots_per_message pages per slot in the long
/// run.  Rather than tracking fractional in-flight messages, the budget is
/// metered out by integer credit accounting:
///
///   budget_for_slot(s) = floor((s+1)·rate) − floor(s·rate)
///
/// a pure function of the slot index.  Cumulative budget through slot s is
/// exactly floor((s+1)·rate) — never drifts from the rate — and the value
/// is independent of who asks or in what order, which is what lets `pcnd`
/// drain every cell's queue on any worker thread and still produce
/// bit-identical served/dropped counters at any thread count.
class PagingCapacityModel {
 public:
  /// channels >= 1, slots_per_message > 0.
  PagingCapacityModel(int channels, double slots_per_message);

  int channels() const { return channels_; }
  double slots_per_message() const { return slots_per_message_; }

  /// Long-run service rate in pages per slot.
  double pages_per_slot() const { return rate_; }

  /// Number of pages the channel group may serve in slot `slot` (>= 0).
  int budget_for_slot(std::int64_t slot) const;

 private:
  int channels_;
  double slots_per_message_;
  double rate_;
};

}  // namespace pcn::capacity
