#include "pcn/capacity/paging_capacity.hpp"

#include <cmath>

#include "pcn/common/error.hpp"

namespace pcn::capacity {

CellLoad cell_load(const core::LocationManager& manager,
                   const core::LocationPlan& plan, double users_per_cell) {
  PCN_EXPECT(users_per_cell >= 0.0,
             "cell_load: users_per_cell must be >= 0");
  const CostWeights& weights = manager.model().weights();
  // The plan's expected costs decompose as C_v = V · (polls per slot) and
  // C_u = U · (updates per slot) for one user; with uniformly placed users
  // every cell carries users_per_cell times the per-user message rates.
  CellLoad load;
  load.polls_per_slot =
      users_per_cell * plan.expected.paging / weights.poll_cost;
  load.updates_per_slot =
      users_per_cell * plan.expected.update / weights.update_cost;
  return load;
}

double erlang_b_blocking(int channels, double offered_erlangs) {
  PCN_EXPECT(channels >= 0, "erlang_b_blocking: channels must be >= 0");
  PCN_EXPECT(offered_erlangs >= 0.0,
             "erlang_b_blocking: offered load must be >= 0");
  if (offered_erlangs == 0.0) return channels == 0 ? 1.0 : 0.0;
  // Stable forward recursion: B_0 = 1, B_k = A·B_{k-1} / (k + A·B_{k-1}).
  double blocking = 1.0;
  for (int k = 1; k <= channels; ++k) {
    blocking = offered_erlangs * blocking /
               (static_cast<double>(k) + offered_erlangs * blocking);
  }
  return blocking;
}

int min_channels(double offered_erlangs, double target, int max_channels) {
  PCN_EXPECT(target > 0.0 && target < 1.0,
             "min_channels: target blocking must lie in (0, 1)");
  PCN_EXPECT(max_channels >= 0, "min_channels: max_channels must be >= 0");
  PCN_EXPECT(offered_erlangs >= 0.0,
             "min_channels: offered load must be >= 0");
  if (offered_erlangs == 0.0) return 0;
  double blocking = 1.0;
  for (int k = 0; k <= max_channels; ++k) {
    if (k > 0) {
      blocking = offered_erlangs * blocking /
                 (static_cast<double>(k) + offered_erlangs * blocking);
    }
    if (blocking <= target) return k;
  }
  PCN_EXPECT(false, "min_channels: target unreachable within max_channels");
  return max_channels;
}

double offered_erlangs(const CellLoad& load, double slots_per_message) {
  PCN_EXPECT(slots_per_message > 0.0,
             "offered_erlangs: service time must be > 0");
  return load.total_per_slot() * slots_per_message;
}

PagingCapacityModel::PagingCapacityModel(int channels, double slots_per_message)
    : channels_(channels),
      slots_per_message_(slots_per_message),
      rate_(static_cast<double>(channels) / slots_per_message) {
  PCN_EXPECT(channels >= 1, "PagingCapacityModel: channels must be >= 1");
  PCN_EXPECT(slots_per_message > 0.0,
             "PagingCapacityModel: slots_per_message must be > 0");
}

int PagingCapacityModel::budget_for_slot(std::int64_t slot) const {
  PCN_EXPECT(slot >= 0, "PagingCapacityModel: slot must be >= 0");
  const double lo = std::floor(static_cast<double>(slot) * rate_);
  const double hi = std::floor(static_cast<double>(slot + 1) * rate_);
  return static_cast<int>(hi - lo);
}

}  // namespace pcn::capacity
