#include "pcn/core/adaptive.hpp"

#include <algorithm>

#include "pcn/common/error.hpp"
#include "pcn/markov/chain_spec.hpp"
#include "pcn/optimize/near_optimal.hpp"

namespace pcn::core {

AdaptiveDistancePolicy::AdaptiveDistancePolicy(Dimension dim,
                                               CostWeights weights,
                                               DelayBound bound,
                                               MobilityProfile initial,
                                               Config config)
    : dim_(dim),
      weights_(weights),
      bound_(bound),
      config_(config),
      inner_(dim, 1),
      pending_threshold_(1),
      q_hat_(initial.move_prob),
      c_hat_(initial.call_prob) {
  initial.validate();
  weights_.validate();
  PCN_EXPECT(config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0,
             "AdaptiveDistancePolicy: ewma_alpha must lie in (0, 1]");
  PCN_EXPECT(config.replan_interval >= 1,
             "AdaptiveDistancePolicy: replan_interval must be >= 1");
  PCN_EXPECT(config.max_threshold >= 1,
             "AdaptiveDistancePolicy: max_threshold must be >= 1");
  PCN_EXPECT(config.floor_probability > 0.0,
             "AdaptiveDistancePolicy: floor_probability must be > 0");
  maybe_replan(0);
  inner_.set_threshold(pending_threshold_);  // no reset pending yet
}

void AdaptiveDistancePolicy::on_center_reset(geometry::Cell center,
                                             sim::SimTime now) {
  // Apply a pending re-plan exactly when the containment disk restarts, so
  // the paging area the network records at this reset stays valid.
  inner_.set_threshold(pending_threshold_);
  inner_.on_center_reset(center, now);
}

void AdaptiveDistancePolicy::on_slot(geometry::Cell position, bool moved,
                                     sim::SimTime now) {
  inner_.on_slot(position, moved, now);
  const double alpha = config_.ewma_alpha;
  q_hat_ = (1.0 - alpha) * q_hat_ + alpha * (moved ? 1.0 : 0.0);
  c_hat_ = (1.0 - alpha) * c_hat_ + alpha * (call_this_slot_ ? 1.0 : 0.0);
  call_this_slot_ = false;
  if (now - last_replan_ >= config_.replan_interval) maybe_replan(now);
}

void AdaptiveDistancePolicy::on_call(sim::SimTime) {
  call_this_slot_ = true;
}

bool AdaptiveDistancePolicy::update_due(geometry::Cell position,
                                        sim::SimTime now) const {
  return inner_.update_due(position, now);
}

std::optional<int> AdaptiveDistancePolicy::containment_radius() const {
  return inner_.containment_radius();
}

std::string AdaptiveDistancePolicy::name() const {
  return "adaptive-" + inner_.name();
}

void AdaptiveDistancePolicy::maybe_replan(sim::SimTime now) {
  last_replan_ = now;
  ++replans_;

  // Clamp the estimates into the model's domain before planning.
  MobilityProfile estimate;
  estimate.move_prob = std::clamp(q_hat_, config_.floor_probability,
                                  1.0 - config_.floor_probability);
  estimate.call_prob = std::clamp(c_hat_, config_.floor_probability,
                                  1.0 - estimate.move_prob);
  const costs::CostModel model =
      costs::CostModel::exact(dim_, estimate, weights_);
  const optimize::Optimum optimum =
      optimize::near_optimal_search(model, bound_, config_.max_threshold);
  pending_threshold_ = optimum.threshold;
}

}  // namespace pcn::core
