// Per-user adaptive threshold control (the paper's §8 "dynamic schemes",
// in the spirit of Akyildiz & Ho's dynamic location update [1]).
//
// The terminal estimates its own movement and call-arrival probabilities
// on-line with exponentially weighted moving averages and periodically
// re-plans its distance threshold with the cheap near-optimal search, so a
// user whose mobility changes through the day (commute vs. office) keeps a
// near-optimal threshold without any network-side configuration.
#pragma once

#include <memory>

#include "pcn/common/params.hpp"
#include "pcn/costs/cost_model.hpp"
#include "pcn/sim/update_policy.hpp"

namespace pcn::core {

struct AdaptivePolicyConfig {
  double ewma_alpha = 0.01;  ///< per-slot EWMA weight for q̂ and ĉ
  sim::SimTime replan_interval = 1000;  ///< slots between re-plans
  int max_threshold = 50;    ///< cap D for the near-optimal scan
  double floor_probability = 1e-4;  ///< lower clamp for q̂ and ĉ
};

/// Distance-based update policy whose threshold re-tunes itself.
class AdaptiveDistancePolicy final : public sim::UpdatePolicy {
 public:
  using Config = AdaptivePolicyConfig;

  /// `bound` is the paging delay the network enforces for this terminal;
  /// `weights` are the signalling costs the plan optimizes; `initial`
  /// seeds the estimators.
  AdaptiveDistancePolicy(Dimension dim, CostWeights weights, DelayBound bound,
                         MobilityProfile initial, Config config = {});

  void on_center_reset(geometry::Cell center, sim::SimTime now) override;
  void on_slot(geometry::Cell position, bool moved, sim::SimTime now) override;
  void on_call(sim::SimTime now) override;
  bool update_due(geometry::Cell position, sim::SimTime now) const override;
  std::optional<int> containment_radius() const override;
  std::string name() const override;

  /// The threshold currently in force.  Re-planned values take effect at
  /// the next center reset, so the network's paging disk (set at reset
  /// time) always covers the terminal.
  int threshold() const { return inner_.threshold(); }
  double estimated_move_prob() const { return q_hat_; }
  double estimated_call_prob() const { return c_hat_; }
  std::int64_t replans() const { return replans_; }

 private:
  void maybe_replan(sim::SimTime now);

  Dimension dim_;
  CostWeights weights_;
  DelayBound bound_;
  Config config_;
  sim::DistanceUpdatePolicy inner_;
  int pending_threshold_;
  double q_hat_;
  double c_hat_;
  bool call_this_slot_ = false;
  sim::SimTime last_replan_ = 0;
  std::int64_t replans_ = 0;
};

}  // namespace pcn::core
