#include "pcn/core/location_manager.hpp"

#include "pcn/common/error.hpp"
#include "pcn/optimize/exhaustive.hpp"
#include "pcn/optimize/near_optimal.hpp"

namespace pcn::core {
namespace {

costs::CostModel build_model(Dimension dim, MobilityProfile profile,
                             CostWeights weights,
                             const PlannerConfig& config) {
  costs::CostModelOptions options;
  options.scheme = config.scheme;
  options.legacy_d0_generic_update_rate = config.legacy_d0_generic_update_rate;
  return costs::CostModel::exact(dim, profile, weights, options);
}

}  // namespace

LocationManager::LocationManager(Dimension dim, MobilityProfile profile,
                                 CostWeights weights, PlannerConfig config)
    : model_(build_model(dim, profile, weights, config)), config_(config) {
  PCN_EXPECT(config.max_threshold >= 0,
             "LocationManager: max_threshold must be >= 0");
}

LocationPlan LocationManager::plan(DelayBound bound) const {
  optimize::Optimum optimum;
  switch (config_.optimizer) {
    case OptimizerKind::kExhaustive:
      optimum = optimize::exhaustive_search(model_, bound,
                                            config_.max_threshold);
      break;
    case OptimizerKind::kSimulatedAnnealing: {
      optimize::AnnealingConfig annealing = config_.annealing;
      annealing.max_threshold = config_.max_threshold;
      optimum = optimize::simulated_annealing(model_, bound, annealing);
      break;
    }
    case OptimizerKind::kNearOptimal:
      optimum =
          optimize::near_optimal_search(model_, bound, config_.max_threshold);
      break;
  }

  LocationPlan plan{optimum.threshold,
                    model_.partition(optimum.threshold, bound),
                    model_.cost(optimum.threshold, bound), 0.0,
                    optimum.evaluations};
  plan.expected_delay_cycles = plan.partition.expected_delay_cycles(
      model_.steady_state(optimum.threshold));
  return plan;
}

double LocationManager::total_cost(int threshold, DelayBound bound) const {
  return model_.total_cost(threshold, bound);
}

sim::TerminalSpec LocationManager::make_terminal_spec(
    const LocationPlan& plan) const {
  const MobilityProfile profile = this->profile();
  sim::TerminalSpec spec;
  spec.call_prob = profile.call_prob;
  spec.mobility = std::make_unique<sim::RandomWalk>(dimension(),
                                                    profile.move_prob);
  spec.update_policy =
      std::make_unique<sim::DistanceUpdatePolicy>(dimension(), plan.threshold);
  spec.paging_policy =
      std::make_unique<sim::PlanPartitionPaging>(dimension(), plan.partition);
  spec.knowledge_kind = sim::KnowledgeKind::kFixedDisk;
  spec.knowledge_radius = plan.threshold;
  return spec;
}

}  // namespace pcn::core
