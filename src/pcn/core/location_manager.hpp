// High-level facade: "give me the optimal location-management policy for
// this user profile" — the paper's end-to-end mechanism in one call.
//
// A LocationManager wraps a cost model for one (geometry, mobility profile,
// cost weights) triple and produces a LocationPlan per delay bound: the
// optimal threshold distance d*, the paging partition for it, and the
// expected costs/delay.  Plans can be turned directly into simulator
// terminal specs for end-to-end validation.
#pragma once

#include <string>

#include "pcn/common/params.hpp"
#include "pcn/costs/cost_model.hpp"
#include "pcn/costs/partition.hpp"
#include "pcn/optimize/annealing.hpp"
#include "pcn/sim/network.hpp"

namespace pcn::core {

enum class OptimizerKind {
  kExhaustive,          ///< bounded scan (paper §6, always finds d*)
  kSimulatedAnnealing,  ///< the paper's annealing loop
  kNearOptimal,         ///< approximate-chain scan + the paper's correction
};

struct PlannerConfig {
  int max_threshold = 100;  ///< the paper's cap D on candidate thresholds
  costs::PartitionScheme scheme = costs::PartitionScheme::kSdfEqual;
  OptimizerKind optimizer = OptimizerKind::kExhaustive;
  optimize::AnnealingConfig annealing{};  ///< used by kSimulatedAnnealing
  /// Reproduce the paper's published Table 1 d = 0 quirk (see CostModel).
  bool legacy_d0_generic_update_rate = false;
};

/// A concrete recommendation for one terminal and delay bound.
struct LocationPlan {
  int threshold = 0;                ///< d*
  costs::Partition partition;       ///< paging subareas for d*
  costs::CostBreakdown expected;    ///< expected C_u and C_v per slot
  double expected_delay_cycles = 0; ///< mean paging delay under the plan
  int evaluations = 0;              ///< optimizer cost evaluations

  double expected_total() const { return expected.total(); }
};

class LocationManager {
 public:
  LocationManager(Dimension dim, MobilityProfile profile, CostWeights weights,
                  PlannerConfig config = {});

  /// Computes the optimal plan for the given maximum paging delay.
  LocationPlan plan(DelayBound bound) const;

  /// Expected total cost of an arbitrary (not necessarily optimal)
  /// threshold under this manager's model and partition scheme.
  double total_cost(int threshold, DelayBound bound) const;

  /// A simulator terminal spec that implements `plan` (distance-based
  /// updates + the plan's paging partition).
  sim::TerminalSpec make_terminal_spec(const LocationPlan& plan) const;

  const costs::CostModel& model() const { return model_; }
  const PlannerConfig& config() const { return config_; }
  Dimension dimension() const { return model_.dimension(); }
  MobilityProfile profile() const { return model_.spec().profile(); }

 private:
  costs::CostModel model_;
  PlannerConfig config_;
};

}  // namespace pcn::core
