#include "pcn/trace/event_log.hpp"

namespace pcn::trace {
namespace {

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kMove:
      return "move";
    case EventKind::kUpdate:
      return "update";
    case EventKind::kCall:
      return "call";
    case EventKind::kSlotEnd:
      return "slot";
  }
  return "?";
}

}  // namespace

EventLog::EventLog(bool record_slot_ends)
    : record_slot_ends_(record_slot_ends) {}

void EventLog::on_move(sim::TerminalId id, sim::SimTime now,
                       geometry::Cell from, geometry::Cell to) {
  Event event;
  event.kind = EventKind::kMove;
  event.terminal = id;
  event.time = now;
  event.cell = to;
  event.from = from;
  events_.push_back(event);
}

void EventLog::on_update(sim::TerminalId id, sim::SimTime now,
                         geometry::Cell cell) {
  Event event;
  event.kind = EventKind::kUpdate;
  event.terminal = id;
  event.time = now;
  event.cell = cell;
  events_.push_back(event);
}

void EventLog::on_call(sim::TerminalId id, sim::SimTime now,
                       geometry::Cell cell, int cycles,
                       std::int64_t polled_cells) {
  Event event;
  event.kind = EventKind::kCall;
  event.terminal = id;
  event.time = now;
  event.cell = cell;
  event.paging_cycles = cycles;
  event.polled_cells = polled_cells;
  events_.push_back(event);
}

void EventLog::on_slot_end(sim::TerminalId id, sim::SimTime now,
                           geometry::Cell position) {
  if (!record_slot_ends_) return;
  Event event;
  event.kind = EventKind::kSlotEnd;
  event.terminal = id;
  event.time = now;
  event.cell = position;
  events_.push_back(event);
}

std::int64_t EventLog::count(EventKind kind) const {
  std::int64_t total = 0;
  for (const Event& event : events_) {
    if (event.kind == kind) ++total;
  }
  return total;
}

std::int64_t EventLog::count(EventKind kind, sim::TerminalId id) const {
  std::int64_t total = 0;
  for (const Event& event : events_) {
    if (event.kind == kind && event.terminal == id) ++total;
  }
  return total;
}

std::vector<geometry::Cell> EventLog::trajectory(sim::TerminalId id) const {
  std::vector<geometry::Cell> positions;
  for (const Event& event : events_) {
    if (event.kind == EventKind::kSlotEnd && event.terminal == id) {
      positions.push_back(event.cell);
    }
  }
  return positions;
}

void EventLog::write_csv(std::ostream& out) const {
  out << "kind,terminal,time,q,r,from_q,from_r,cycles,polled\n";
  for (const Event& event : events_) {
    out << kind_name(event.kind) << ',' << event.terminal << ','
        << event.time << ',' << event.cell.q << ',' << event.cell.r << ','
        << event.from.q << ',' << event.from.r << ',' << event.paging_cycles
        << ',' << event.polled_cells << '\n';
  }
}

}  // namespace pcn::trace
