// Deterministic trace replay.
//
// ScriptedMobility replays a recorded slot-by-slot trajectory (e.g. from
// EventLog::trajectory) through the MobilityModel interface: the slot loop
// draws its move event with probability 1 exactly when the script changes
// cells, and the move target is the scripted cell.  This lets one captured
// mobility trace be re-run under different update/paging policies for
// like-for-like comparisons.
//
// Replay dictates moves deterministically, so it must run under
// SlotSemantics::kIndependent (chain-faithful semantics suppresses the
// move when a call fires in the same slot, which would desynchronize the
// script).  After the script ends the terminal stays put.
#pragma once

#include <vector>

#include "pcn/sim/mobility.hpp"

namespace pcn::trace {

class ScriptedMobility final : public sim::MobilityModel {
 public:
  /// `start_cell` is the terminal's attach position (its TerminalSpec
  /// start); `positions[k]` is its cell at the end of slot `start + k`
  /// (slots are 1-based in Network::run, so start defaults to 1).
  /// Consecutive positions — including start_cell -> positions[0] — must
  /// be equal or neighboring cells.
  ScriptedMobility(Dimension dim, geometry::Cell start_cell,
                   std::vector<geometry::Cell> positions,
                   sim::SimTime start = 1);

  double move_probability(sim::SimTime now) const override;
  geometry::Cell move_target(geometry::Cell from, sim::SimTime now,
                             stats::Rng& rng) const override;
  std::string name() const override;

  sim::SimTime script_length() const {
    return static_cast<sim::SimTime>(positions_.size());
  }

 private:
  /// Scripted positions at the end of slots `now` and `now - 1` (clamped
  /// to the script boundaries).
  geometry::Cell position_at(sim::SimTime now) const;

  Dimension dim_;
  geometry::Cell start_cell_;
  std::vector<geometry::Cell> positions_;
  sim::SimTime start_;
};

}  // namespace pcn::trace
