// Simulation trace recording.
//
// EventLog is a NetworkObserver that records every move, location update
// and delivered call as typed events, can dump them as CSV, and can
// reconstruct a terminal's full slot-by-slot trajectory — which
// ScriptedMobility (scripted_mobility.hpp) replays deterministically, so a
// captured run can be re-executed under different policies.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "pcn/sim/observer.hpp"

namespace pcn::trace {

enum class EventKind : std::uint8_t { kMove, kUpdate, kCall, kSlotEnd };

struct Event {
  EventKind kind = EventKind::kSlotEnd;
  sim::TerminalId terminal = 0;
  sim::SimTime time = 0;
  geometry::Cell cell{};        ///< position after the event
  geometry::Cell from{};        ///< kMove only: origin cell
  int paging_cycles = 0;        ///< kCall only
  std::int64_t polled_cells = 0;  ///< kCall only

  friend bool operator==(const Event&, const Event&) = default;
};

class EventLog final : public sim::NetworkObserver {
 public:
  /// Recording end-of-slot positions makes trajectories replayable but
  /// costs one event per terminal-slot; disable for counting-only logs.
  explicit EventLog(bool record_slot_ends = true);

  void on_move(sim::TerminalId id, sim::SimTime now, geometry::Cell from,
               geometry::Cell to) override;
  void on_update(sim::TerminalId id, sim::SimTime now,
                 geometry::Cell cell) override;
  void on_call(sim::TerminalId id, sim::SimTime now, geometry::Cell cell,
               int cycles, std::int64_t polled_cells) override;
  void on_slot_end(sim::TerminalId id, sim::SimTime now,
                   geometry::Cell position) override;

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Number of recorded events of one kind (optionally one terminal).
  std::int64_t count(EventKind kind) const;
  std::int64_t count(EventKind kind, sim::TerminalId id) const;

  /// The terminal's position at the end of every recorded slot, in slot
  /// order (requires record_slot_ends).  Suitable for ScriptedMobility.
  std::vector<geometry::Cell> trajectory(sim::TerminalId id) const;

  /// Writes all events as CSV: kind,terminal,time,q,r,from_q,from_r,
  /// cycles,polled.
  void write_csv(std::ostream& out) const;

 private:
  bool record_slot_ends_;
  std::vector<Event> events_;
};

}  // namespace pcn::trace
