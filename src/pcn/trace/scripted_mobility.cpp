#include "pcn/trace/scripted_mobility.hpp"

#include "pcn/common/error.hpp"

namespace pcn::trace {

ScriptedMobility::ScriptedMobility(Dimension dim, geometry::Cell start_cell,
                                   std::vector<geometry::Cell> positions,
                                   sim::SimTime start)
    : dim_(dim),
      start_cell_(start_cell),
      positions_(std::move(positions)),
      start_(start) {
  PCN_EXPECT(!positions_.empty(), "ScriptedMobility: empty trajectory");
  geometry::Cell previous = start_cell_;
  for (const geometry::Cell& cell : positions_) {
    PCN_EXPECT(geometry::cell_distance(dim_, previous, cell) <= 1,
               "ScriptedMobility: consecutive positions must be equal or "
               "neighboring cells");
    previous = cell;
  }
}

geometry::Cell ScriptedMobility::position_at(sim::SimTime now) const {
  if (now < start_) return start_cell_;
  const auto index = static_cast<std::size_t>(now - start_);
  if (index >= positions_.size()) return positions_.back();
  return positions_[index];
}

double ScriptedMobility::move_probability(sim::SimTime now) const {
  return position_at(now) == position_at(now - 1) ? 0.0 : 1.0;
}

geometry::Cell ScriptedMobility::move_target(geometry::Cell from,
                                             sim::SimTime now,
                                             stats::Rng&) const {
  const geometry::Cell target = position_at(now);
  PCN_EXPECT(geometry::cell_distance(dim_, from, target) <= 1,
             "ScriptedMobility: replay desynchronized from the simulation "
             "(use SlotSemantics::kIndependent)");
  return target;
}

std::string ScriptedMobility::name() const { return "scripted-replay"; }

}  // namespace pcn::trace
