#include "pcn/markov/steady_state.hpp"

#include <cmath>

#include "pcn/common/error.hpp"
#include "pcn/linalg/lu.hpp"

namespace pcn::markov {

std::vector<double> solve_steady_state(const ChainSpec& spec, int threshold) {
  PCN_EXPECT(threshold >= 0, "solve_steady_state: threshold must be >= 0");
  const int d = threshold;
  const double c = spec.call();

  std::vector<double> u(static_cast<std::size_t>(d) + 1, 0.0);
  u[static_cast<std::size_t>(d)] = 1.0;
  if (d == 0) return u;

  // Rescale the partially filled tail whenever entries grow huge; only
  // ratios matter until the final normalization.
  constexpr double kRescaleAbove = 1e200;
  auto rescale = [&u, d](int lowest_filled, double by) {
    for (int k = lowest_filled; k <= d; ++k) {
      u[static_cast<std::size_t>(k)] /= by;
    }
  };

  // Boundary balance at state d (paper eq. 6):
  //   p_{d-1} a_{d-1,d} = p_d (a_{d,d+1} + b_{d,d-1} + c)
  u[static_cast<std::size_t>(d) - 1] =
      u[static_cast<std::size_t>(d)] * (spec.up(d) + spec.down(d) + c) /
      spec.up(d - 1);

  // Interior balance (paper eq. 7), walked downward:
  //   p_{i-1} a_{i-1,i} = p_i (a_{i,i+1} + b_{i,i-1} + c) − p_{i+1} b_{i+1,i}
  for (int i = d - 1; i >= 1; --i) {
    const double outflow = u[static_cast<std::size_t>(i)] *
                           (spec.up(i) + spec.down(i) + c);
    const double inflow_from_above =
        u[static_cast<std::size_t>(i) + 1] * spec.down(i + 1);
    double value = (outflow - inflow_from_above) / spec.up(i - 1);
    // The true solution is strictly positive; tiny negatives can only be
    // floating-point cancellation.
    if (value < 0.0) value = 0.0;
    u[static_cast<std::size_t>(i) - 1] = value;
    if (value > kRescaleAbove) rescale(i - 1, value);
  }

  double total = 0.0;
  for (double v : u) total += v;
  PCN_ASSERT(total > 0.0 && std::isfinite(total));
  for (double& v : u) v /= total;
  return u;
}

linalg::Matrix transition_matrix(const ChainSpec& spec, int threshold) {
  PCN_EXPECT(threshold >= 0, "transition_matrix: threshold must be >= 0");
  const auto d = static_cast<std::size_t>(threshold);
  const auto n = d + 1;
  linalg::Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const int state = static_cast<int>(i);
    double off_diag = 0.0;
    auto add = [&](std::size_t j, double prob) {
      if (j == i) return;  // self-loops are folded into the diagonal below
      p.at(i, j) += prob;
      off_diag += prob;
    };
    if (i < d) {
      add(i + 1, spec.up(state));  // outward move within the residing area
    } else if (d > 0) {
      add(0, spec.up(state));  // outward move past d: location update
    }
    if (state >= 1) {
      add(i - 1, spec.down(state));  // inward move
      add(0, spec.call());           // call arrival resets the center cell
    }
    // At state 0 a call leaves the state unchanged; at state d == 0 an
    // outward move updates and returns to 0 — both are self-loops.
    p.at(i, i) = 1.0 - off_diag;
    PCN_ASSERT(p.at(i, i) >= -1e-12);
  }
  return p;
}

std::vector<double> solve_steady_state_dense(const ChainSpec& spec,
                                             int threshold) {
  return linalg::stationary_distribution(transition_matrix(spec, threshold));
}

}  // namespace pcn::markov
