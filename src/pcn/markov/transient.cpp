#include "pcn/markov/transient.hpp"

#include <cmath>

#include "pcn/common/error.hpp"
#include "pcn/markov/steady_state.hpp"

namespace pcn::markov {
namespace {

/// One slot of evolution: out = in · P, exploiting the chain's sparsity
/// (tridiagonal plus the reset column) for O(d) per step.
std::vector<double> step_once(const ChainSpec& spec, int threshold,
                              const std::vector<double>& in) {
  const auto n = static_cast<std::size_t>(threshold) + 1;
  const double c = spec.call();
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const int state = static_cast<int>(i);
    const double mass = in[i];
    if (mass == 0.0) continue;
    const double up = spec.up(state);
    const double down = state >= 1 ? spec.down(state) : 0.0;
    const double call_out = state >= 1 ? c : 0.0;  // call at 0 is a self-loop
    if (i + 1 < n) {
      out[i + 1] += mass * up;
    } else if (threshold > 0) {
      out[0] += mass * up;  // update resets to the center
    }
    if (state >= 1) out[i - 1] += mass * down;
    out[0] += mass * call_out;
    double self = 1.0 - up - down - call_out;
    if (i + 1 == n && threshold == 0) self += up;  // d = 0: update = stay
    out[i] += mass * self;
  }
  return out;
}

}  // namespace

std::vector<double> evolve_distribution(const ChainSpec& spec, int threshold,
                                        std::vector<double> initial,
                                        std::int64_t steps) {
  PCN_EXPECT(threshold >= 0, "evolve_distribution: threshold must be >= 0");
  PCN_EXPECT(steps >= 0, "evolve_distribution: steps must be >= 0");
  PCN_EXPECT(initial.size() == static_cast<std::size_t>(threshold) + 1,
             "evolve_distribution: initial distribution size mismatch");
  double total = 0.0;
  for (double p : initial) {
    PCN_EXPECT(p >= 0.0, "evolve_distribution: negative probability");
    total += p;
  }
  PCN_EXPECT(std::fabs(total - 1.0) < 1e-9,
             "evolve_distribution: initial distribution must sum to 1");

  for (std::int64_t k = 0; k < steps; ++k) {
    initial = step_once(spec, threshold, initial);
  }
  return initial;
}

std::vector<double> distribution_after(const ChainSpec& spec, int threshold,
                                       std::int64_t steps) {
  std::vector<double> at_center(static_cast<std::size_t>(threshold) + 1,
                                0.0);
  at_center[0] = 1.0;
  return evolve_distribution(spec, threshold, std::move(at_center), steps);
}

double total_variation(const std::vector<double>& a,
                       const std::vector<double>& b) {
  PCN_EXPECT(a.size() == b.size(), "total_variation: size mismatch");
  double distance = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    distance += std::fabs(a[i] - b[i]);
  }
  return distance / 2.0;
}

std::int64_t mixing_time(const ChainSpec& spec, int threshold, double epsilon,
                         std::int64_t max_steps) {
  PCN_EXPECT(epsilon > 0.0, "mixing_time: epsilon must be > 0");
  PCN_EXPECT(max_steps >= 0, "mixing_time: max_steps must be >= 0");
  const std::vector<double> stationary =
      solve_steady_state(spec, threshold);
  std::vector<double> current(static_cast<std::size_t>(threshold) + 1, 0.0);
  current[0] = 1.0;
  for (std::int64_t k = 0; k <= max_steps; ++k) {
    if (total_variation(current, stationary) < epsilon) return k;
    current = step_once(spec, threshold, current);
  }
  return max_steps;
}

}  // namespace pcn::markov
