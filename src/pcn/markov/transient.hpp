// Transient (k-step) behaviour of the distance chain.
//
// The paper works purely in steady state; these helpers quantify how fast
// a terminal's ring-distance distribution actually reaches it — relevant
// for the adaptive controller (how soon after a re-plan the cost model is
// trustworthy) and used in tests to verify that the k-step distribution
// converges to the stationary solution.
#pragma once

#include <vector>

#include "pcn/markov/chain_spec.hpp"

namespace pcn::markov {

/// Distribution over ring distance after `steps` slots, starting from the
/// given distribution (d+1 entries, summing to ~1).
std::vector<double> evolve_distribution(const ChainSpec& spec, int threshold,
                                        std::vector<double> initial,
                                        std::int64_t steps);

/// Distribution after `steps` slots starting at the center (state 0) —
/// i.e. immediately after a location update or a located call.
std::vector<double> distribution_after(const ChainSpec& spec, int threshold,
                                       std::int64_t steps);

/// Smallest number of slots k such that the total-variation distance
/// between the k-step distribution (from state 0) and the steady state is
/// below `epsilon`; search capped at `max_steps` (returns max_steps if not
/// reached).
std::int64_t mixing_time(const ChainSpec& spec, int threshold, double epsilon,
                         std::int64_t max_steps = 1 << 20);

/// Total-variation distance between two distributions of equal size.
double total_variation(const std::vector<double>& a,
                       const std::vector<double>& b);

}  // namespace pcn::markov
