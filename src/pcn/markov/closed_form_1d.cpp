#include <cmath>

#include "pcn/common/error.hpp"
#include "pcn/markov/closed_form.hpp"

namespace pcn::markov {
namespace detail {
namespace {

/// Characteristic roots of x² − βx + 1 = 0 for β > 2; e1 >= 1 >= e2 = 1/e1.
void roots(double beta, double& e1, double& e2) {
  PCN_ASSERT(beta > 2.0);
  const double disc = std::sqrt(beta * beta - 4.0);
  e1 = (beta + disc) / 2.0;
  e2 = 1.0 / e1;  // exact product of roots; avoids cancellation in β − disc
}

double validate_and_beta(double q, double c, double coeff, int threshold) {
  PCN_EXPECT(threshold >= 0, "closed form: threshold must be >= 0");
  PCN_EXPECT(c > 0.0,
             "closed form: requires call_prob > 0 (repeated roots at c = 0; "
             "use solve_steady_state instead)");
  return 2.0 + coeff * c / q;
}

}  // namespace

std::vector<double> closed_form_distribution(double beta, double center_weight,
                                             int threshold) {
  const int d = threshold;
  std::vector<double> p(static_cast<std::size_t>(d) + 1, 0.0);
  if (d == 0) {
    p[0] = 1.0;
    return p;
  }
  double e1 = 0.0;
  double e2 = 0.0;
  roots(beta, e1, e2);

  // t_k = (e1^k − e2^k) / e1^{d+1} = e1^{k−d−1} − e2^{k+d+1}; both powers
  // have non-positive exponents for k <= d+1, so t_k ∈ [0, 1].
  auto t = [&](int k) {
    return std::pow(e1, k - (d + 1)) - std::pow(e2, k + (d + 1));
  };

  p[0] = t(d + 1) / center_weight;
  for (int i = 1; i <= d; ++i) {
    p[static_cast<std::size_t>(i)] = t(d + 1 - i);
  }
  double total = 0.0;
  for (double v : p) total += v;
  PCN_ASSERT(total > 0.0 && std::isfinite(total));
  for (double& v : p) v /= total;
  return p;
}

double closed_form_boundary(double beta, double center_weight, int threshold) {
  const int d = threshold;
  if (d == 0) return 1.0;
  double e1 = 0.0;
  double e2 = 0.0;
  roots(beta, e1, e2);

  // Z = t_{d+1}/w + Σ_{k=1..d} t_k with t_k = e1^{k−d−1} − e2^{k+d+1}:
  //   Σ e1^{k−d−1} = (1 − e1^{−d}) / (e1 − 1)
  //   Σ e2^{k+d+1} = e2^{d+2} (1 − e2^d) / (1 − e2)
  // and p_{d,d} = t_1 / Z.  All terms are bounded by d, no overflow.
  const double t_top =
      1.0 - std::pow(e2, 2 * (d + 1));  // t_{d+1} = 1 − e2^{2(d+1)}
  const double sum_pos = (1.0 - std::pow(e1, -d)) / (e1 - 1.0);
  const double sum_neg =
      std::pow(e2, d + 2) * (1.0 - std::pow(e2, d)) / (1.0 - e2);
  const double z = t_top / center_weight + (sum_pos - sum_neg);
  const double t1 = std::pow(e1, -d) - std::pow(e2, d + 2);
  PCN_ASSERT(z > 0.0);
  return t1 / z;
}

}  // namespace detail

std::vector<double> closed_form_1d(MobilityProfile profile, int threshold) {
  profile.validate();
  const double beta = detail::validate_and_beta(
      profile.move_prob, profile.call_prob, 2.0, threshold);
  return detail::closed_form_distribution(beta, 2.0, threshold);
}

double closed_form_1d_boundary_probability(MobilityProfile profile,
                                           int threshold) {
  profile.validate();
  const double beta = detail::validate_and_beta(
      profile.move_prob, profile.call_prob, 2.0, threshold);
  return detail::closed_form_boundary(beta, 2.0, threshold);
}

}  // namespace pcn::markov
