#include "pcn/common/error.hpp"
#include "pcn/markov/closed_form.hpp"

namespace pcn::markov {
namespace {

double beta_2d(MobilityProfile profile, int threshold) {
  profile.validate();
  PCN_EXPECT(threshold >= 0, "closed form: threshold must be >= 0");
  PCN_EXPECT(profile.call_prob > 0.0,
             "closed form: requires call_prob > 0 (repeated roots at c = 0; "
             "use solve_steady_state instead)");
  return 2.0 + 3.0 * profile.call_prob / profile.move_prob;
}

}  // namespace

std::vector<double> closed_form_2d_approx(MobilityProfile profile,
                                          int threshold) {
  return detail::closed_form_distribution(beta_2d(profile, threshold), 3.0,
                                          threshold);
}

double closed_form_2d_approx_boundary_probability(MobilityProfile profile,
                                                  int threshold) {
  return detail::closed_form_boundary(beta_2d(profile, threshold), 3.0,
                                      threshold);
}

}  // namespace pcn::markov
