#include "pcn/markov/renewal.hpp"

#include "pcn/common/error.hpp"
#include "pcn/linalg/tridiagonal.hpp"

#include <algorithm>
#include <cstddef>

namespace pcn::markov {

RenewalAnalysis analyze_renewal(const ChainSpec& spec, int threshold) {
  PCN_EXPECT(threshold >= 0, "analyze_renewal: threshold must be >= 0");
  const auto n = static_cast<std::size_t>(threshold) + 1;
  const double c = spec.call();

  // Row i of the first-step system (call absorbs from every state; the
  // outward move from state d absorbs as an update):
  //   (up(i) + down(i) + c)·x_i − up(i)·x_{i+1} − down(i)·x_{i-1} = rhs_i
  std::vector<double> lower(n - 1, 0.0);
  std::vector<double> diag(n, 0.0);
  std::vector<double> upper(n - 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const int state = static_cast<int>(i);
    const double down = state >= 1 ? spec.down(state) : 0.0;
    diag[i] = spec.up(state) + down + c;
    if (i + 1 < n) upper[i] = -spec.up(state);
    if (i >= 1) lower[i - 1] = -spec.down(state);
  }

  RenewalAnalysis analysis;
  analysis.expected_cycle_length =
      linalg::solve_tridiagonal(lower, diag, upper,
                                std::vector<double>(n, 1.0));

  std::vector<double> update_rhs(n, 0.0);
  update_rhs[n - 1] = spec.up(threshold);
  analysis.update_probability =
      linalg::solve_tridiagonal(lower, diag, upper, update_rhs);

  for (std::size_t i = 0; i < n; ++i) {
    PCN_ASSERT(analysis.expected_cycle_length[i] > 0.0);
    PCN_ASSERT(analysis.update_probability[i] >= -1e-12 &&
               analysis.update_probability[i] <= 1.0 + 1e-12);
  }
  return analysis;
}

std::vector<double> cycle_length_distribution(const ChainSpec& spec,
                                              int threshold,
                                              std::int64_t horizon) {
  PCN_EXPECT(threshold >= 0,
             "cycle_length_distribution: threshold must be >= 0");
  PCN_EXPECT(horizon >= 1, "cycle_length_distribution: horizon must be >= 1");
  const auto n = static_cast<std::size_t>(threshold) + 1;
  const double c = spec.call();

  // Transient mass vector over {0..d}; each slot some mass is absorbed
  // (call from any state, update from state d).  PMF[k] = mass absorbed
  // in slot k.
  std::vector<double> mass(n, 0.0);
  mass[0] = 1.0;
  std::vector<double> pmf(static_cast<std::size_t>(horizon) + 1, 0.0);
  std::vector<double> next(n, 0.0);
  for (std::int64_t k = 1; k <= horizon; ++k) {
    std::fill(next.begin(), next.end(), 0.0);
    double absorbed = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const int state = static_cast<int>(i);
      const double m = mass[i];
      if (m == 0.0) continue;
      const double up = spec.up(state);
      const double down = state >= 1 ? spec.down(state) : 0.0;
      absorbed += m * c;  // call ends the cycle from every state
      if (i + 1 < n) {
        next[i + 1] += m * up;
      } else {
        absorbed += m * up;  // outward move past d: update ends the cycle
      }
      if (state >= 1) next[i - 1] += m * down;
      next[i] += m * (1.0 - up - down - c);
    }
    pmf[static_cast<std::size_t>(k)] = absorbed;
    mass.swap(next);
  }
  return pmf;
}

}  // namespace pcn::markov
