#include "pcn/markov/chain_spec.hpp"

#include "pcn/common/error.hpp"

namespace pcn::markov {

ChainSpec::ChainSpec(ChainKind kind, MobilityProfile profile)
    : kind_(kind), profile_(profile) {
  profile_.validate();
}

ChainSpec ChainSpec::one_dim(MobilityProfile profile) {
  return ChainSpec(ChainKind::kOneDimExact, profile);
}

ChainSpec ChainSpec::two_dim_exact(MobilityProfile profile) {
  return ChainSpec(ChainKind::kTwoDimExact, profile);
}

ChainSpec ChainSpec::two_dim_approx(MobilityProfile profile) {
  return ChainSpec(ChainKind::kTwoDimApprox, profile);
}

ChainSpec ChainSpec::exact(Dimension dim, MobilityProfile profile) {
  return dim == Dimension::kOneD ? one_dim(profile) : two_dim_exact(profile);
}

Dimension ChainSpec::dimension() const {
  return kind_ == ChainKind::kOneDimExact ? Dimension::kOneD
                                          : Dimension::kTwoD;
}

double ChainSpec::up(int state) const {
  PCN_EXPECT(state >= 0, "ChainSpec::up: state must be >= 0");
  const double q = profile_.move_prob;
  if (state == 0) {
    // All moves from the center cell are outward: a_{0,1} = q (eq. 3 / 41).
    return q;
  }
  switch (kind_) {
    case ChainKind::kOneDimExact:
      return q / 2.0;
    case ChainKind::kTwoDimExact:
      return q * (1.0 / 3.0 + 1.0 / (6.0 * state));
    case ChainKind::kTwoDimApprox:
      return q / 3.0;
  }
  PCN_ASSERT(false);
  return 0.0;
}

double ChainSpec::down(int state) const {
  PCN_EXPECT(state >= 1, "ChainSpec::down: state must be >= 1");
  const double q = profile_.move_prob;
  switch (kind_) {
    case ChainKind::kOneDimExact:
      return q / 2.0;
    case ChainKind::kTwoDimExact:
      return q * (1.0 / 3.0 - 1.0 / (6.0 * state));
    case ChainKind::kTwoDimApprox:
      return q / 3.0;
  }
  PCN_ASSERT(false);
  return 0.0;
}

}  // namespace pcn::markov
