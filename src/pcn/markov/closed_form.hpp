// Closed-form steady-state solutions (paper §3.2 and §4.2).
//
// For the 1-D chain and the approximate 2-D chain the interior balance
// equations form the linear recurrence p_{i+1} = β p_i − p_{i−1} with
//   β = 2 + 2c/q   (1-D, paper eq. 10)
//   β = 2 + 3c/q   (2-D approximate, paper eq. 50)
// whose characteristic roots e1 ≥ e2 satisfy e1·e2 = 1 (paper eqs. 16-17).
// The paper's solution (eqs. 23-32 resp. 45-49, plus the printed boundary
// cases for d ≤ 2) simplifies algebraically to the compact form
//
//   p_{i,d} ∝ e1^{d+1−i} − e2^{d+1−i}          for 1 ≤ i ≤ d,
//   p_{0,d} ∝ (e1^{d+1} − e2^{d+1}) / w        with w = 2 (1-D), 3 (2-D),
//
// which we implement here.  Unit tests verify (a) exact agreement with the
// recurrence and dense-LU solvers, and (b) exact agreement with every
// boundary-case formula the paper prints (eqs. 33-38 and 55-60).
//
// All powers are evaluated pre-scaled by e1^{d+1}, so every intermediate is
// in [0, 1] and the evaluation never overflows, for any d and any β.
//
// Requires c > 0 (for c = 0 the roots coincide; use the recurrence solver).
#pragma once

#include <vector>

#include "pcn/common/params.hpp"

namespace pcn::markov {

/// Closed-form steady state of the 1-D chain: d+1 probabilities.
std::vector<double> closed_form_1d(MobilityProfile profile, int threshold);

/// Closed-form p_{d,d} of the 1-D chain in O(1) (drives the update cost).
double closed_form_1d_boundary_probability(MobilityProfile profile,
                                           int threshold);

/// Closed-form steady state of the *approximate* 2-D chain (paper §4.2).
std::vector<double> closed_form_2d_approx(MobilityProfile profile,
                                          int threshold);

/// Closed-form p_{d,d} of the approximate 2-D chain in O(1).
double closed_form_2d_approx_boundary_probability(MobilityProfile profile,
                                                  int threshold);

namespace detail {

/// Shared evaluator: β and the ring-0 weight divisor w fully determine the
/// distribution.
std::vector<double> closed_form_distribution(double beta, double center_weight,
                                             int threshold);

/// Shared O(1) evaluator for p_{d,d}.
double closed_form_boundary(double beta, double center_weight, int threshold);

}  // namespace detail

}  // namespace pcn::markov
