// Steady-state solvers for the distance Markov chain.
//
// `solve_steady_state` is the library's ground-truth solver: the chain is a
// birth-death chain on {0..d} whose only extra structure is that every
// state also jumps to 0 (call arrival) and state d additionally jumps to 0
// on an outward move (location update).  Setting p̃_d = 1 and walking the
// balance equations (paper eqs. 5-7) downward yields all unnormalized
// probabilities in O(d); on-the-fly rescaling keeps the walk inside the
// floating-point range for any parameters (the ratios grow like
// ((β+√(β²−4))/2)^d with β = 2 + 2c/q).
//
// `solve_steady_state_dense` solves the full global-balance linear system
// with the dense LU substrate — O(d³), used as an independent cross-check.
#pragma once

#include <vector>

#include "pcn/linalg/matrix.hpp"
#include "pcn/markov/chain_spec.hpp"

namespace pcn::markov {

/// Steady-state distribution p_{0,d} .. p_{d,d} of the chain `spec` with
/// location-update threshold `threshold` (= d >= 0).  The returned vector
/// has d+1 entries summing to 1.
std::vector<double> solve_steady_state(const ChainSpec& spec, int threshold);

/// Same distribution via a dense global-balance LU solve (cross-check).
std::vector<double> solve_steady_state_dense(const ChainSpec& spec,
                                             int threshold);

/// The (d+1)x(d+1) one-slot transition matrix of the chain, row-stochastic
/// (self-loops on the diagonal).  Row i holds P(i -> j).
linalg::Matrix transition_matrix(const ChainSpec& spec, int threshold);

}  // namespace pcn::markov
