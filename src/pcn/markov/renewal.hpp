// Renewal analysis of the distance chain — an independent derivation of
// the update rate that cross-checks the steady-state route the paper takes.
//
// Between two consecutive center-cell resets the terminal performs one
// "cycle": it starts at ring distance 0 and the cycle ends either with a
// location update (outward move past d) or with an incoming call (paging
// locates it).  First-step analysis over the transient states {0..d}
// yields, per starting state i:
//   * expected_cycle_length h_i — expected slots until the cycle ends,
//   * update_probability  u_i  — probability the cycle ends in an update.
// Both satisfy tridiagonal linear systems (solved with the linalg Thomas
// solver).
//
// Renewal-reward identities (verified by tests against the steady-state
// solver):
//   update rate  = u_0 / h_0        = p_{d,d} · a_{d,d+1}
//   call rate    = (1 − u_0) / h_0  = c
// so  C_u = U · u_0 / h_0  reproduces eq. (61) without ever computing the
// stationary distribution.
#pragma once

#include <vector>

#include "pcn/markov/chain_spec.hpp"

namespace pcn::markov {

struct RenewalAnalysis {
  /// h_i: expected remaining cycle length from ring distance i (slots).
  std::vector<double> expected_cycle_length;
  /// u_i: probability the cycle ends with a location update from state i.
  std::vector<double> update_probability;

  /// Expected full cycle length (start of cycle = state 0).
  double cycle_length() const { return expected_cycle_length.front(); }

  /// Probability a cycle ends in an update rather than a call.
  double update_fraction() const { return update_probability.front(); }

  /// Long-run location updates per slot, u_0 / h_0.
  double update_rate() const { return update_fraction() / cycle_length(); }

  /// Long-run cycle-ending calls per slot, (1 − u_0) / h_0.  Equals the
  /// call probability c (calls end cycles regardless of state).
  double call_rate() const {
    return (1.0 - update_fraction()) / cycle_length();
  }
};

/// Solves both first-step systems for threshold d >= 0.
/// Requires call_prob > 0 or d >= 1 (at d = 0 with c = 0 every slot a move
/// happens with probability q and cycles still end; c = 0 with d >= 1 is
/// fine too — cycles then always end in updates).
RenewalAnalysis analyze_renewal(const ChainSpec& spec, int threshold);

/// PMF of the cycle length (the inter-reset time): entry k is the
/// probability that a cycle started at state 0 ends exactly at slot k
/// (k >= 1), truncated at `horizon` slots.  Computed by evolving the
/// transient (absorbing) chain; the tail mass beyond the horizon is
/// whatever is missing from the sum.  Its mean converges to
/// RenewalAnalysis::cycle_length() as horizon grows.
std::vector<double> cycle_length_distribution(const ChainSpec& spec,
                                              int threshold,
                                              std::int64_t horizon);

}  // namespace pcn::markov
