// Transition specifications for the distance Markov chain (paper §3-§4).
//
// The chain's state i ∈ {0, .., d} is the ring distance between the
// terminal and its center cell (the cell of its last location update /
// located call).  Per slot, three competing events:
//   * move outward:  probability up(i)   (a_{i,i+1}),
//   * move inward:   probability down(i) (b_{i,i-1}),
//   * call arrival:  probability call()  (c) — resets the state to 0,
// with the remainder a self-loop.  Crossing out of state d (an outward move
// at distance d) triggers a location update and also resets to 0.
//
// Three concrete specs from the paper:
//   * 1-D exact (eqs. 3-4):        up(0) = q, up(i) = down(i) = q/2
//   * 2-D exact (eqs. 41-42):      up(0) = q, up(i) = q(1/3 + 1/(6i)),
//                                  down(i) = q(1/3 − 1/(6i))
//   * 2-D approximate (eqs. 43-44): up(0) = q, up(i) = down(i) = q/3
//
// (The paper's published Table 1 computed the d = 0 update cost with
// a_{0,1} = q/2 although eq. (3) prints a_{0,1} = q; that quirk is a cost-
// model option — see costs/cost_model.hpp — and does not affect the chain.)
#pragma once

#include "pcn/common/params.hpp"

namespace pcn::markov {

/// Which steady-state model to use for a given geometry.
enum class ChainKind {
  kOneDimExact,    ///< 1-D chain, eqs. (3)-(4)
  kTwoDimExact,    ///< 2-D chain, state-dependent rates, eqs. (41)-(42)
  kTwoDimApprox,   ///< 2-D chain with rates truncated to q/3, eqs. (43)-(44)
};

/// A birth-death-with-reset chain specification.  Value type; cheap to copy.
class ChainSpec {
 public:
  /// Builds the spec for `kind` with movement probability q and call
  /// probability c (validated).
  ChainSpec(ChainKind kind, MobilityProfile profile);

  /// Convenience factories.
  static ChainSpec one_dim(MobilityProfile profile);
  static ChainSpec two_dim_exact(MobilityProfile profile);
  static ChainSpec two_dim_approx(MobilityProfile profile);

  /// Exact chain for a geometry (1-D exact or 2-D exact).
  static ChainSpec exact(Dimension dim, MobilityProfile profile);

  ChainKind kind() const { return kind_; }
  MobilityProfile profile() const { return profile_; }

  /// Geometry this spec models (both 2-D kinds → kTwoD).
  Dimension dimension() const;

  /// a_{i,i+1}: probability of moving one ring outward from state i >= 0.
  double up(int state) const;

  /// b_{i,i-1}: probability of moving one ring inward from state i >= 1.
  double down(int state) const;

  /// c: per-slot call-arrival probability.
  double call() const { return profile_.call_prob; }

 private:
  ChainKind kind_;
  MobilityProfile profile_;
};

}  // namespace pcn::markov
