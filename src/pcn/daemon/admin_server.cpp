#include "pcn/daemon/admin_server.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "pcn/common/error.hpp"
#include "pcn/obs/json.hpp"
#include "pcn/obs/report.hpp"
#include "pcn/obs/timer.hpp"

namespace pcn::daemon {

namespace {

/// Per-connection socket timeout: a scraper that stalls longer than this
/// mid-request or mid-reply is dropped (the accept thread serves one
/// connection at a time, so this bounds how long any scraper can hold it).
constexpr int kIoTimeoutSec = 2;

/// Longest request line we accept ("prom\n" / "json\n" plus slack).
constexpr std::size_t kMaxRequestBytes = 16;

void set_io_timeouts(int fd) {
  timeval tv{};
  tv.tv_sec = kIoTimeoutSec;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Reads up to a newline; empty string on timeout, overlong line, or EOF.
std::string read_request_line(int fd) {
  std::string line;
  char ch = 0;
  while (line.size() < kMaxRequestBytes) {
    const ssize_t n = ::read(fd, &ch, 1);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return std::string();
    }
    if (ch == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    line += ch;
  }
  return std::string();
}

void send_all(int fd, std::string_view payload) {
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + sent,
                             payload.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // scraper gone or stalled past the timeout; drop the rest
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// One rolling-window section: counter rates, the windowed drop rate, and
/// windowed delay quantiles.  Zero-filled when the window has fewer than
/// two entries covering the span (rates need two points).
void write_window(obs::JsonWriter& json, const obs::RollingWindow& window,
                  std::int64_t window_ns) {
  const auto rate_of = [&](std::string_view name) {
    const auto rate = window.rate(name, window_ns);
    return rate ? rate->per_sec : 0.0;
  };
  const auto delta_of = [&](std::string_view name) {
    const auto rate = window.rate(name, window_ns);
    return rate ? rate->delta : std::int64_t{0};
  };
  const auto slots = window.rate("daemon.slot.count", window_ns);
  json.begin_object();
  json.member("span_ns", slots ? slots->span_ns : std::int64_t{0});
  json.member("slots_per_sec", slots ? slots->per_sec : 0.0);
  json.member("updates_per_sec", rate_of("daemon.request.update"));
  json.member("pages_per_sec", rate_of("daemon.request.page"));
  json.member("served_per_sec", rate_of("daemon.page.served"));
  json.member("dropped_per_sec", rate_of("daemon.page.dropped"));
  json.member("expired_per_sec", rate_of("daemon.page.expired"));
  const std::int64_t dropped = delta_of("daemon.page.dropped");
  const std::int64_t unknown = delta_of("daemon.page.unknown_terminal");
  const std::int64_t offered = delta_of("daemon.page.queued") +
                               delta_of("daemon.page.duplicate") + dropped +
                               unknown;
  const std::int64_t failed =
      dropped + delta_of("daemon.page.expired") + unknown;
  json.member("drop_rate", offered > 0
                               ? static_cast<double>(failed) /
                                     static_cast<double>(offered)
                               : 0.0);
  const auto delay =
      window.quantiles("daemon.page.queue_delay_slots", window_ns);
  json.key("delay").begin_object();
  json.member("count", delay ? delay->count : std::int64_t{0});
  json.member("mean", delay ? delay->mean : 0.0);
  json.member("p50", delay ? delay->at(0) : 0.0);
  json.member("p95", delay ? delay->at(1) : 0.0);
  json.member("p99", delay ? delay->at(2) : 0.0);
  json.member("max", delay ? delay->max : 0.0);
  json.end_object();
  json.end_object();
}

void write_snapshot(obs::JsonWriter& json,
                    const obs::MetricsSnapshot& snapshot) {
  json.begin_object();
  json.key("counters").begin_object();
  for (const obs::CounterSample& counter : snapshot.counters) {
    json.member(counter.name, counter.value);
  }
  json.end_object();
  json.key("gauges").begin_object();
  for (const obs::GaugeSample& gauge : snapshot.gauges) {
    json.member(gauge.name, gauge.value);
  }
  json.end_object();
  json.key("histograms").begin_object();
  for (const obs::HistogramSample& histogram : snapshot.histograms) {
    json.key(histogram.name).begin_object();
    json.key("bounds").begin_array();
    for (const double bound : histogram.bounds) json.value(bound);
    json.end_array();
    json.key("counts").begin_array();
    for (const std::int64_t count : histogram.counts) json.value(count);
    json.end_array();
    json.member("count", histogram.count);
    json.member("sum", histogram.sum);
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

}  // namespace

AdminServer::AdminServer(Pcnd* daemon, std::string path)
    : daemon_(daemon), path_(std::move(path)) {
  PCN_EXPECT(daemon_ != nullptr, "AdminServer: daemon must not be null");
  sockaddr_un address{};
  PCN_EXPECT(path_.size() < sizeof(address.sun_path),
             "AdminServer: socket path too long");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PCN_EXPECT(listen_fd_ >= 0, "AdminServer: cannot create socket");
  ::unlink(path_.c_str());
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path_.c_str(), path_.size() + 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string what = "AdminServer: cannot listen on '" + path_ +
                             "': " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    PCN_EXPECT(false, what.c_str());
  }
}

AdminServer::~AdminServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(path_.c_str());
}

void AdminServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void AdminServer::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
}

void AdminServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void AdminServer::handle_connection(int fd) {
  set_io_timeouts(fd);
  const std::string request = read_request_line(fd);
  if (request == "prom") {
    send_all(fd, render_prometheus());
  } else if (request == "json") {
    send_all(fd, render_live_snapshot());
  } else if (request == "series") {
    // Binary pcn.timeseries.v1 tail (send_all is length-driven, so the
    // payload may contain any byte); empty encoding when capture is off.
    send_all(fd, daemon_->timeseries_encoded());
  }
  // Anything else (timeout, EOF, unknown verb): close without a reply.
}

void AdminServer::tick() {
  const std::int64_t now_ns = obs::monotonic_ns();
  {
    const std::lock_guard<std::mutex> lock(window_mutex_);
    if (window_.size() > 0 &&
        now_ns - window_.newest_ns() < window_.bucket_interval_ns()) {
      return;  // the common per-slot case: nothing to retain yet
    }
  }
  obs::MetricsSnapshot snapshot = daemon_->metrics_registry().snapshot();
  const std::lock_guard<std::mutex> lock(window_mutex_);
  window_.maybe_add(now_ns, std::move(snapshot));
}

obs::MetricsSnapshot AdminServer::observe(std::int64_t* now_ns_out) {
  const std::int64_t now_ns = obs::monotonic_ns();
  obs::MetricsSnapshot snapshot = daemon_->metrics_registry().snapshot();
  {
    const std::lock_guard<std::mutex> lock(window_mutex_);
    window_.maybe_add(now_ns, snapshot);
  }
  if (now_ns_out != nullptr) *now_ns_out = now_ns;
  return snapshot;
}

std::string AdminServer::render_prometheus() {
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  return obs::to_prometheus(observe(nullptr));
}

std::string AdminServer::render_live_snapshot() {
  const std::uint64_t seq =
      scrapes_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::int64_t now_ns = 0;
  const obs::MetricsSnapshot snapshot = observe(&now_ns);
  const LiveQueueStats queues = daemon_->live_queue_stats();

  obs::JsonWriter json;
  json.begin_object();
  json.member("schema", "pcn.live_snapshot.v1");
  json.member("now_ns", now_ns);
  // The slot counter, not Pcnd::now(): the counter is safe to read while
  // the slot loop runs; the raw slot_ field is not.
  json.member("slot", snapshot.counter_value("daemon.slot.count"));
  json.member("scrape_seq", seq);

  const auto phase_mean = [&snapshot](std::string_view name) {
    const obs::HistogramSample* hist = snapshot.find_histogram(name);
    return hist == nullptr ? 0.0 : hist->mean();
  };
  json.key("phase_us").begin_object();
  json.member("ingest", phase_mean("daemon.phase.ingest_us"));
  json.member("apply", phase_mean("daemon.phase.apply_us"));
  json.member("drain", phase_mean("daemon.phase.drain_us"));
  json.member("finalize", phase_mean("daemon.phase.finalize_us"));
  json.end_object();

  json.key("queues").begin_object();
  json.member("live_stats_enabled", daemon_->config().live_stats);
  json.member("slot", queues.slot);
  json.member("total_pending", queues.total_pending);
  json.member("cells_pending", queues.cells_pending);
  json.member("max_depth", queues.max_depth_ever);
  json.key("deepest").begin_array();
  for (const LiveQueueStats::CellDepth& cell : queues.deepest) {
    json.begin_object();
    json.member("q", cell.cell.q);
    json.member("r", cell.cell.r);
    json.member("depth", cell.depth);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  json.key("socket").begin_object();
  json.member("frames_in", snapshot.counter_value("daemon.socket.frames_in"));
  json.member("frames_out",
              snapshot.counter_value("daemon.socket.frames_out"));
  json.member("decode_errors",
              snapshot.counter_value("daemon.socket.decode_errors"));
  json.member("rejected_ring_full",
              snapshot.counter_value("daemon.socket.rejected_ring_full"));
  json.member("disconnects",
              snapshot.counter_value("daemon.socket.disconnects"));
  const obs::GaugeSample* outbox =
      snapshot.find_gauge("daemon.socket.outbox_bytes");
  json.member("outbox_bytes", outbox == nullptr ? 0.0 : outbox->value);
  json.end_object();

  {
    const std::lock_guard<std::mutex> lock(window_mutex_);
    json.key("windows").begin_object();
    json.key("1s");
    write_window(json, window_, 1'000'000'000);
    json.key("10s");
    write_window(json, window_, 10'000'000'000);
    json.key("60s");
    write_window(json, window_, 60'000'000'000);
    json.end_object();
  }

  json.key("metrics");
  write_snapshot(json, snapshot);
  json.end_object();
  return json.take();
}

}  // namespace pcn::daemon
