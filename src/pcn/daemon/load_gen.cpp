#include "pcn/daemon/load_gen.hpp"

#include "pcn/common/error.hpp"
#include "pcn/geometry/hex.hpp"

namespace pcn::daemon {

namespace {

std::int64_t mod_floor(std::int64_t value, std::int64_t modulus) {
  const std::int64_t m = value % modulus;
  return m < 0 ? m + modulus : m;
}

}  // namespace

ClosedLoopWorkload::ClosedLoopWorkload(const ClosedLoopConfig& config)
    : config_(config),
      rng_(stats::CounterRng::keyed(config.seed, /*salt=*/0x70636e64u)),
      move_threshold_(stats::threshold32(config.move_prob)),
      call_threshold_(stats::threshold32(config.call_prob)),
      states_(config.terminals),
      outstanding_(config.terminals, 0) {
  PCN_EXPECT(config_.terminals >= 1,
             "ClosedLoopWorkload: terminals must be >= 1");
  PCN_EXPECT(config_.region >= 1, "ClosedLoopWorkload: region must be >= 1");
  PCN_EXPECT(config_.move_prob >= 0.0 && config_.move_prob <= 1.0,
             "ClosedLoopWorkload: move_prob must be in [0, 1]");
  PCN_EXPECT(config_.call_prob >= 0.0 && config_.call_prob <= 1.0,
             "ClosedLoopWorkload: call_prob must be in [0, 1]");
  PCN_EXPECT(config_.threshold >= 1,
             "ClosedLoopWorkload: threshold must be >= 1");
  // Deterministic initial scatter across the torus.
  const auto region = static_cast<std::int64_t>(config_.region);
  for (std::uint64_t t = 0; t < config_.terminals; ++t) {
    TerminalState& state = states_[t];
    const auto id = static_cast<std::int64_t>(t);
    state.position.q = id % region;
    state.position.r = config_.dimension == Dimension::kOneD
                           ? 0
                           : (id / region) % region;
    state.reported = state.position;
  }
}

geometry::Cell ClosedLoopWorkload::wrapped(geometry::Cell cell) const {
  const auto region = static_cast<std::int64_t>(config_.region);
  geometry::Cell out;
  out.q = mod_floor(cell.q, region);
  out.r = config_.dimension == Dimension::kOneD ? 0 : mod_floor(cell.r, region);
  return out;
}

void ClosedLoopWorkload::generate(int shard, int shard_count,
                                  std::int64_t slot, RequestSink& sink) {
  const auto n = config_.terminals;
  const bool one_d = config_.dimension == Dimension::kOneD;
  for (auto t = static_cast<std::uint64_t>(shard); t < n;
       t += static_cast<std::uint64_t>(shard_count)) {
    TerminalState& state = states_[t];
    const stats::PhiloxWords draw =
        rng_.block(t, static_cast<std::uint64_t>(slot));

    if (state.registered && draw[0] < move_threshold_) {
      if (one_d) {
        state.position.q += (draw[1] & 1u) != 0 ? 1 : -1;
      } else {
        state.position = geometry::hex_add(
            state.position, geometry::hex_directions()[draw[1] % 6]);
      }
    }

    const bool must_update =
        !state.registered ||
        geometry::cell_distance(config_.dimension, state.position,
                                state.reported) >=
            static_cast<std::int64_t>(config_.threshold);
    if (must_update) {
      proto::LocationUpdate update;
      update.terminal_id = t;
      update.sequence = ++state.sequence;
      update.cell = wrapped(state.position);
      update.containment_radius =
          static_cast<std::uint32_t>(config_.threshold);
      sink.update(update);
      state.reported = state.position;
      state.registered = true;
      updates_sent_.fetch_add(1, std::memory_order_relaxed);
    }

    if (outstanding_[t] == 0 && draw[2] < call_threshold_) {
      outstanding_[t] = 1;
      ++state.page_ordinal;
      const std::uint64_t page_id = state.page_ordinal * n + t + 1;
      sink.page(page_id, t);
      pages_submitted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ClosedLoopWorkload::on_outcome(std::uint64_t terminal_id,
                                    proto::PageOutcomeKind kind,
                                    std::int64_t /*slot*/) {
  PCN_ASSERT(terminal_id < config_.terminals);
  PCN_ASSERT(outstanding_[terminal_id] != 0);
  outstanding_[terminal_id] = 0;
  switch (kind) {
    case proto::PageOutcomeKind::kServed:
      served_.fetch_add(1, std::memory_order_relaxed);
      break;
    case proto::PageOutcomeKind::kDropped:
      dropped_.fetch_add(1, std::memory_order_relaxed);
      break;
    case proto::PageOutcomeKind::kExpired:
      expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case proto::PageOutcomeKind::kRejected:
      // Only socket-fed loops see this (a full request ring answers the
      // submit immediately); the terminal is free to page again.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

std::int64_t ClosedLoopWorkload::outstanding_count() const {
  std::int64_t count = 0;
  for (const std::uint8_t flag : outstanding_) count += flag != 0 ? 1 : 0;
  return count;
}

}  // namespace pcn::daemon
