// Closed-loop daemon workload: N terminals doing the paper's random walk
// and movement-based location updating, with callers paging them through
// pcnd's bounded channel.
//
// Closed loop means a terminal has at most one page in flight: a caller
// who paged waits for the verdict (served / dropped / expired) before the
// terminal becomes pageable again.  That is both the realistic client
// behavior and the property the daemon's flight-event seq scheme and
// outcome callbacks rely on.
//
// Determinism.  Every per-(terminal, slot) decision — move? which
// direction? call arrival? — is a counter-based Philox draw keyed by the
// workload seed with stream = terminal and counter = slot, so the
// generated request sequence is a pure function of (seed, config) and is
// identical at any worker-thread count.  `generate` touches only
// terminals t with t % shard_count == shard, in increasing t, as the
// SlotWorkload contract requires.
//
// Offered load.  Per slot each idle terminal pages with probability
// `call_prob`; total offered paging load is roughly
// terminals * call_prob pages/slot spread over ~region^2 cells (region^2
// queues in 2-D, region in 1-D), to be set against the per-cell
// PagingCapacityModel rate when positioning an experiment relative to
// the capacity knee.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "pcn/daemon/daemon.hpp"
#include "pcn/stats/counter_rng.hpp"

namespace pcn::daemon {

struct ClosedLoopConfig {
  std::uint64_t seed = 1;
  std::uint64_t terminals = 1024;
  /// Torus width: reported cells are wrapped to q, r in [0, region), so
  /// the daemon sees at most region^2 distinct cells (region in 1-D).
  int region = 16;
  /// Per-slot movement probability q (paper mobility model).
  double move_prob = 0.2;
  /// Per-slot page-arrival probability c for an idle terminal.
  double call_prob = 0.05;
  /// Movement-based update threshold d: a terminal updates when its
  /// distance from the last reported position reaches d.
  int threshold = 3;
  Dimension dimension = Dimension::kTwoD;
};

class ClosedLoopWorkload final : public SlotWorkload {
 public:
  explicit ClosedLoopWorkload(const ClosedLoopConfig& config);

  const ClosedLoopConfig& config() const { return config_; }

  void generate(int shard, int shard_count, std::int64_t slot,
                RequestSink& sink) override;
  void on_outcome(std::uint64_t terminal_id, proto::PageOutcomeKind kind,
                  std::int64_t slot) override;

  // --- workload-side tallies (exact; safe to read between run_slots) ---
  std::int64_t pages_submitted() const {
    return pages_submitted_.load(std::memory_order_relaxed);
  }
  std::int64_t updates_sent() const {
    return updates_sent_.load(std::memory_order_relaxed);
  }
  std::int64_t outcomes_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  std::int64_t outcomes_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::int64_t outcomes_expired() const {
    return expired_.load(std::memory_order_relaxed);
  }
  std::int64_t outcomes_rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Terminals with a page still in flight.
  std::int64_t outstanding_count() const;

 private:
  struct TerminalState {
    geometry::Cell position{};  ///< unwrapped random-walk position
    geometry::Cell reported{};  ///< unwrapped position of the last update
    std::uint64_t sequence = 0;
    std::uint64_t page_ordinal = 0;
    bool registered = false;
  };

  geometry::Cell wrapped(geometry::Cell cell) const;

  ClosedLoopConfig config_;
  stats::CounterRng rng_;
  std::uint32_t move_threshold_;
  std::uint32_t call_threshold_;
  std::vector<TerminalState> states_;
  /// outstanding_[t] != 0 while terminal t has a page in flight.  Plain
  /// bytes, not atomics: for one terminal the daemon's phase barriers
  /// order every access (generate in APPLY, the verdict in APPLY or a
  /// later DRAIN), and closed loop means at most one verdict per slot.
  std::vector<std::uint8_t> outstanding_;

  std::atomic<std::int64_t> pages_submitted_{0};
  std::atomic<std::int64_t> updates_sent_{0};
  std::atomic<std::int64_t> served_{0};
  std::atomic<std::int64_t> dropped_{0};
  std::atomic<std::int64_t> expired_{0};
  std::atomic<std::int64_t> rejected_{0};
};

}  // namespace pcn::daemon
