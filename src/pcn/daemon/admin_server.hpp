// Admin scrape endpoint for pcnd — the live introspection plane.
//
// A second Unix-domain listener (`pcnd --admin-socket PATH`), separate
// from the request front end so operators can scrape a daemon that has no
// socket clients at all (it does not require collect_outcomes).  The
// protocol is one request per connection, newline-terminated:
//
//   "prom\n"  ->  Prometheus text exposition of the live MetricsRegistry
//   "json\n"  ->  a `pcn.live_snapshot.v1` JSON document
//
// The server replies with the full payload and closes the connection.
//
// Snapshots are taken with MetricsRegistry::snapshot() — relaxed loads
// against concurrently-writing shard cells, so a scrape never blocks the
// slot loop, and because every cell is monotone, successive scrapes see
// monotone non-decreasing counter totals.  Each scrape (and each tick()
// from a serve loop) also feeds an obs::RollingWindow, from which the
// JSON snapshot derives 1s/10s/60s rates and windowed delay quantiles —
// current load, not lifetime averages.
//
// A dead or stalling scraper cannot wedge the daemon: connections are
// handled one at a time on the accept thread with short socket timeouts,
// and the worst case is one delayed scrape, never a delayed slot.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "pcn/daemon/daemon.hpp"
#include "pcn/obs/rolling_window.hpp"

namespace pcn::daemon {

class AdminServer {
 public:
  /// Binds and listens on `path` (an existing socket file is replaced).
  /// Throws InvalidArgument when binding fails.
  AdminServer(Pcnd* daemon, std::string path);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  const std::string& path() const { return path_; }

  /// Starts the accept/serve thread.
  void start();

  /// Stops accepting and joins the serve thread.  Idempotent; also run by
  /// the destructor.
  void stop();

  /// Feeds the rolling window from the host's slot loop.  Cheap when less
  /// than one bucket interval has elapsed since the last retained entry
  /// (one mutex acquire and a clock read); call it once per slot.
  void tick();

  /// Scrape requests answered so far (monotone; for tests).
  std::uint64_t scrapes() const {
    return scrapes_.load(std::memory_order_relaxed);
  }

  /// The two scrape payloads, also callable directly (tests, --once
  /// paths).  Both feed the rolling window like a socket scrape does.
  std::string render_prometheus();
  std::string render_live_snapshot();

 private:
  void accept_loop();
  void handle_connection(int fd);
  /// Snapshot now and feed the window; returns the snapshot.
  obs::MetricsSnapshot observe(std::int64_t* now_ns_out);

  Pcnd* daemon_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::atomic<std::uint64_t> scrapes_{0};

  std::mutex window_mutex_;
  obs::RollingWindow window_;
};

}  // namespace pcn::daemon
