// Delay-feedback paging planner: closes the loop between the measured
// queueing delay the daemon already records and the paging delay bound
// `m` the paper treats as a free design parameter.
//
// The paper's sequential-paging tradeoff: a page allowed m polling
// rounds partitions the candidate cells into m groups and polls them in
// decreasing-probability order, so the expected number of polled cells
// falls roughly as (m+1)/(2m) of the one-shot cost.  Fewer polled cells
// per page means more pages fit on the same paging channel, so the
// *service rate* of a cell's paging queue scales with the paging bound:
//
//     rate(m) = base_rate * factor(m),
//     factor(m) = m * (m_max + 1) / (m_max * (m + 1))
//
// normalized so factor(m_max) = 1 (the widest bound recovers the full
// PagingCapacityModel budget; m = 1 at m_max = 8 yields ~0.56).  A small
// m pages fast per call but wastes channel on broad polls; a large m is
// channel-frugal but slow per call.  Open-loop you must guess; this
// planner measures.
//
// Feedback rule (Mode::kFeedback): maintain an EWMA of the mean served
// queueing delay per slot (plus a per-cell EWMA for introspection, both
// in Q16 fixed point so the arithmetic is exact and identical on every
// platform).  Every adjust_every_slots, compare the EWMA against the
// daemon's sla_delay_slots: above sla/4, queueing delay is eating the
// budget — widen m (cheaper pages, faster drain); below sla/16, there is
// headroom — narrow m back toward fast per-call paging.  Mode::kStatic
// pins m at m_start forever: the open-loop plan the feedback mode is
// benchmarked against.
//
// Determinism: every method runs in a *serial* phase of the slot loop
// (budget_for_slot in INGEST, observe_cell / end_slot in FINALIZE), the
// EWMAs are integer fixed point, and the per-slot aggregate is a
// commutative sum over cells — so the planner's trajectory, and thus
// every downstream counter, is bit-identical at any worker-thread count.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "pcn/capacity/paging_capacity.hpp"
#include "pcn/common/error.hpp"
#include "pcn/geometry/cell.hpp"

namespace pcn::daemon {

struct DelayPlanConfig {
  enum class Mode : std::uint8_t {
    kOff = 0,      ///< legacy open-loop budget_for_slot (planner unused)
    kStatic = 1,   ///< fixed m = m_start (the open-loop comparison plan)
    kFeedback = 2  ///< m adapts to the measured queueing-delay EWMA
  };
  Mode mode = Mode::kOff;
  /// Paging-delay-bound range the planner may move in.
  int m_min = 1;
  int m_max = 8;
  /// Initial (kFeedback) or permanent (kStatic) paging delay bound.
  int m_start = 2;
  /// Slots between feedback decisions.
  int adjust_every_slots = 16;
  /// EWMA smoothing: alpha = 2^-ewma_shift (3 -> 1/8).
  int ewma_shift = 3;
};

inline const char* to_string(DelayPlanConfig::Mode mode) {
  switch (mode) {
    case DelayPlanConfig::Mode::kOff:
      return "off";
    case DelayPlanConfig::Mode::kStatic:
      return "static";
    case DelayPlanConfig::Mode::kFeedback:
      return "feedback";
  }
  return "?";
}

class DelayFeedbackPlanner {
 public:
  DelayFeedbackPlanner(const DelayPlanConfig& config,
                       const capacity::PagingCapacityModel& capacity,
                       std::int64_t sla_delay_slots);

  const DelayPlanConfig& config() const { return config_; }

  /// The paging delay bound currently in force.
  int effective_m() const { return m_; }
  /// Times the feedback rule widened / narrowed m.
  std::int64_t widen_count() const { return widens_; }
  std::int64_t narrow_count() const { return narrows_; }
  /// Service-rate multiplier for the current m (1.0 at m_max).
  double rate_factor() const { return factor_of(m_); }
  /// Global served-delay EWMA in Q16 fixed point (slots << 16).
  std::int64_t global_ewma_q16() const { return global_ewma_q16_; }
  /// Cells with a per-cell EWMA on file.
  std::size_t cells_tracked() const { return cell_ewma_q16_.size(); }
  /// Per-cell EWMA in Q16 (0 when the cell has never served a page).
  std::int64_t cell_ewma_q16(geometry::Cell cell) const;

  /// Serial INGEST: the slot's paging-channel budget under the current m.
  /// Fractional rates accumulate across slots, like budget_for_slot.
  int budget_for_slot(std::int64_t slot);

  /// Serial FINALIZE: fold one cell's served pages for the slot into the
  /// per-cell EWMA and the slot aggregate.  Cells may arrive in any
  /// order — the aggregate is a commutative sum.
  void observe_cell(geometry::Cell cell, std::int64_t served,
                    std::int64_t delay_sum_slots);

  /// Serial FINALIZE, after every observe_cell of the slot: updates the
  /// global EWMA and, on adjust boundaries, the feedback rule.
  void end_slot(std::int64_t slot);

 private:
  struct CellHash {
    std::size_t operator()(const geometry::Cell& cell) const noexcept {
      return geometry::HexCellHash{}(cell);
    }
  };

  double factor_of(int m) const {
    return static_cast<double>(m) * (config_.m_max + 1) /
           (static_cast<double>(config_.m_max) * (m + 1));
  }

  static std::int64_t ewma_step(std::int64_t ewma, std::int64_t sample_q16,
                                int shift) {
    // ewma += alpha * (sample - ewma), alpha = 2^-shift, exact in Q16.
    return ewma + ((sample_q16 - ewma) >> shift);
  }

  DelayPlanConfig config_;
  capacity::PagingCapacityModel capacity_;
  std::int64_t sla_delay_slots_ = 0;

  int m_ = 1;
  std::int64_t widens_ = 0;
  std::int64_t narrows_ = 0;

  double budget_acc_ = 0.0;  ///< fractional budget carried across slots

  std::int64_t slot_served_ = 0;     ///< served pages folded this slot
  std::int64_t slot_delay_sum_ = 0;  ///< their total delay, in slots
  std::int64_t global_ewma_q16_ = 0;
  std::unordered_map<geometry::Cell, std::int64_t, CellHash> cell_ewma_q16_;
};

}  // namespace pcn::daemon
