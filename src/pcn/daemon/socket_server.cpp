#include "pcn/daemon/socket_server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "pcn/common/error.hpp"
#include "pcn/proto/wire.hpp"

namespace pcn::daemon {

namespace {

/// Largest frame a client may send; far above any real proto frame, low
/// enough that a corrupt length prefix cannot make us allocate gigabytes.
constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Largest backlog of staged outcome bytes per connection.  A PageOutcome
/// frame is ~50 bytes, so this buffers tens of thousands of verdicts for
/// a briefly-slow reader before the connection is declared dead.
constexpr std::size_t kMaxOutboxBytes = 4u << 20;

bool read_exact(int fd, std::uint8_t* buffer, std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    const ssize_t n = ::read(fd, buffer + done, count - done);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(Pcnd* daemon, std::string path)
    : daemon_(daemon), path_(std::move(path)) {
  PCN_EXPECT(daemon_ != nullptr, "SocketServer: daemon must not be null");
  PCN_EXPECT(daemon_->config().collect_outcomes,
             "SocketServer: daemon must collect outcomes");
  sockaddr_un address{};
  PCN_EXPECT(path_.size() < sizeof(address.sun_path),
             "SocketServer: socket path too long");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PCN_EXPECT(listen_fd_ >= 0, "SocketServer: cannot create socket");
  ::unlink(path_.c_str());
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path_.c_str(), path_.size() + 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string what = "SocketServer: cannot listen on '" + path_ +
                             "': " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    PCN_EXPECT(false, what.c_str());
  }
  obs::MetricsRegistry& registry = daemon_->metrics_registry();
  frames_in_ = registry.counter("daemon.socket.frames_in");
  frames_out_ = registry.counter("daemon.socket.frames_out");
  decode_errors_ = registry.counter("daemon.socket.decode_errors");
  rejected_ = registry.counter("daemon.socket.rejected_ring_full");
  accept_errors_ = registry.counter("daemon.socket.accept_errors");
  disconnects_ = registry.counter("daemon.socket.disconnects");
  outbox_bytes_gauge_ = registry.gauge("daemon.socket.outbox_bytes");
}

SocketServer::~SocketServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(path_.c_str());
}

void SocketServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SocketServer::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  // Shut the listener down; accept() returns and the loop exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Verdicts settled since the last flush would otherwise vanish with
  // the connections: stage them now, then give every outbox a bounded
  // final drain before tearing the socket down.
  flush_outcomes();
  std::unordered_map<std::uint32_t, std::shared_ptr<Connection>> connections;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& [client, connection] : connections) {
    drain_outbox_bounded(*connection);
    ::shutdown(connection->fd, SHUT_RDWR);
    if (connection->reader.joinable()) connection->reader.join();
    ::close(connection->fd);
  }
}

void SocketServer::drain_outbox_bounded(Connection& connection) {
  // Non-blocking pumps with short sleeps in between, ~100 ms worst case:
  // a reader keeping up receives everything staged for it, while a dead
  // or stalled one can only delay shutdown by the bound, never hang it.
  for (int attempt = 0; attempt < 100; ++attempt) {
    {
      const std::lock_guard<std::mutex> write_lock(connection.write_mutex);
      if (connection.write_failed.load(std::memory_order_acquire)) return;
      if (connection.outbox.empty()) return;
      pump_outbox(connection);
      if (connection.outbox.empty()) return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::size_t SocketServer::open_connections() {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  return connections_.size();
}

void SocketServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ECONNABORTED ||
          errno == ENOBUFS || errno == ENOMEM || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        // Transient resource pressure (fd table full, aborted handshake,
        // kernel buffers exhausted).  Exiting here would silently stop
        // accepting *forever* while the daemon keeps running; instead
        // count the error and retry after a short backoff.  The backoff
        // sleeps in 1 ms steps so stop() is never delayed noticeably,
        // and under EMFILE it also gives reap_connections a chance to
        // return fds before the retry.
        accept_errors_.increment();
        for (int i = 0; i < 10 && running_.load(std::memory_order_acquire);
             ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        continue;
      }
      break;  // listener shut down (or broken beyond repair)
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    const std::uint32_t client = next_client_++;
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    // The raw reference stays valid because every path that erases the
    // registry entry (reap_connections, stop) joins the reader before
    // releasing its shared_ptr.
    Connection& ref = *connection;
    connection->reader = std::thread(
        [this, client, fd, &ref] { reader_loop(client, fd, ref); });
    connections_.emplace(client, std::move(connection));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SocketServer::reader_loop(std::uint32_t client, int fd,
                               Connection& connection) {
  std::uint8_t prefix[4];
  std::vector<std::uint8_t> frame;
  while (running_.load(std::memory_order_acquire)) {
    if (!read_exact(fd, prefix, sizeof(prefix))) break;
    const std::uint32_t length = std::uint32_t{prefix[0]} |
                                 std::uint32_t{prefix[1]} << 8 |
                                 std::uint32_t{prefix[2]} << 16 |
                                 std::uint32_t{prefix[3]} << 24;
    if (length == 0 || length > kMaxFrameBytes) {
      decode_errors_.increment(client);
      break;  // framing is lost; drop the connection
    }
    frame.resize(length);
    if (!read_exact(fd, frame.data(), length)) break;
    handle_frame(client, connection, frame);
  }
  // flush_outcomes' reap sweep closes the fd and joins this thread once
  // any staged verdicts have drained (stop() covers the rest).
  connection.reader_done.store(true, std::memory_order_release);
}

void SocketServer::handle_frame(std::uint32_t client, Connection& connection,
                                const std::vector<std::uint8_t>& frame) {
  frames_in_.increment(client);
  DaemonRequest request;
  request.client = client;
  try {
    switch (proto::peek_type(frame)) {
      case proto::MessageType::kLocationUpdate:
        request.kind = DaemonRequest::Kind::kUpdate;
        request.update = proto::decode_location_update(frame);
        break;
      case proto::MessageType::kPageSubmit: {
        const proto::PageSubmit submit = proto::decode_page_submit(frame);
        request.kind = DaemonRequest::Kind::kPage;
        request.page_id = submit.page_id;
        request.terminal_id = submit.terminal_id;
        break;
      }
      default:
        decode_errors_.increment(client);
        return;
    }
  } catch (const proto::DecodeError&) {
    decode_errors_.increment(client);
    return;
  }
  if (!daemon_->submit(request)) {
    rejected_.increment(client);
    if (request.kind == DaemonRequest::Kind::kPage) {
      // A page that never entered the ring will never settle, so the
      // daemon will never emit a verdict for it — a closed-loop client
      // would wait forever.  Answer right here with an explicit
      // kRejected outcome so backpressure is visible end to end.
      proto::PageOutcome outcome;
      outcome.page_id = request.page_id;
      outcome.terminal_id = request.terminal_id;
      outcome.outcome = proto::PageOutcomeKind::kRejected;
      const std::vector<std::uint8_t> reply = proto::encode(outcome);
      const std::lock_guard<std::mutex> write_lock(connection.write_mutex);
      if (stage_frame(connection, reply)) {
        frames_out_.increment(client);
        pump_outbox(connection);
      }
    }
  }
}

bool SocketServer::stage_frame(Connection& connection,
                               const std::vector<std::uint8_t>& frame) {
  if (connection.outbox.size() + sizeof(std::uint32_t) + frame.size() >
      kMaxOutboxBytes) {
    // The client stopped reading a long time ago; failing the connection
    // beats unbounded buffering (and beats blocking the slot loop).
    connection.write_failed.store(true, std::memory_order_release);
    return false;
  }
  const auto length = static_cast<std::uint32_t>(frame.size());
  const std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(length), static_cast<std::uint8_t>(length >> 8),
      static_cast<std::uint8_t>(length >> 16),
      static_cast<std::uint8_t>(length >> 24)};
  connection.outbox.insert(connection.outbox.end(), prefix, prefix + 4);
  connection.outbox.insert(connection.outbox.end(), frame.begin(),
                           frame.end());
  return true;
}

void SocketServer::pump_outbox(Connection& connection) {
  std::size_t sent = 0;
  while (sent < connection.outbox.size()) {
    // MSG_NOSIGNAL: a disconnected client yields EPIPE, not a SIGPIPE
    // that would kill the daemon.  MSG_DONTWAIT: a client that is not
    // reading yields EAGAIN, not a blocked slot loop.
    const ssize_t n =
        ::send(connection.fd, connection.outbox.data() + sent,
               connection.outbox.size() - sent, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      connection.write_failed.store(true, std::memory_order_release);
      break;
    }
    sent += static_cast<std::size_t>(n);
  }
  connection.outbox.erase(
      connection.outbox.begin(),
      connection.outbox.begin() + static_cast<std::ptrdiff_t>(sent));
}

void SocketServer::reap_connections() {
  std::vector<std::shared_ptr<Connection>> dead;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      Connection& connection = *it->second;
      bool reap = connection.write_failed.load(std::memory_order_acquire);
      if (!reap && connection.reader_done.load(std::memory_order_acquire)) {
        // Reader gone (client hung up or lost framing): keep the
        // connection only until its staged verdicts have drained.
        const std::lock_guard<std::mutex> write_lock(connection.write_mutex);
        reap = connection.outbox.empty();
      }
      if (reap) {
        dead.push_back(std::move(it->second));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const std::shared_ptr<Connection>& connection : dead) {
    ::shutdown(connection->fd, SHUT_RDWR);  // unblock a still-parked reader
    if (connection->reader.joinable()) connection->reader.join();
    ::close(connection->fd);
    disconnects_.increment();
  }
}

std::size_t SocketServer::flush_outcomes() {
  std::vector<PageOutcomeEvent> outcomes;
  daemon_->drain_outcomes(&outcomes);

  // Snapshot the registry, then do all socket work with connections_mutex_
  // released: a slow or dead client costs at most one bounded outbox and
  // can never stall the accept loop or the serve slot loop.
  std::unordered_map<std::uint32_t, std::shared_ptr<Connection>> routes;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    routes = connections_;
  }

  std::size_t staged = 0;
  for (const PageOutcomeEvent& event : outcomes) {
    if (event.client == 0) continue;  // in-process submitter, no frame
    const auto it = routes.find(event.client);
    if (it == routes.end()) continue;  // client went away
    Connection& connection = *it->second;
    if (connection.write_failed.load(std::memory_order_acquire)) continue;
    proto::PageOutcome outcome;
    outcome.page_id = event.page_id;
    outcome.terminal_id = event.terminal_id;
    outcome.outcome = event.kind;
    outcome.queue_delay_slots =
        static_cast<std::uint64_t>(event.queue_delay_slots);
    outcome.queue_depth = event.queue_depth;
    const std::vector<std::uint8_t> frame = proto::encode(outcome);
    const std::lock_guard<std::mutex> write_lock(connection.write_mutex);
    if (stage_frame(connection, frame)) {
      frames_out_.increment(event.client);
      ++staged;
    }
  }

  // Push this call's frames plus anything a full kernel buffer deferred.
  // The pre-pump occupancy sum is the peak backlog for this flush; its
  // high watermark is the daemon.socket.outbox_bytes gauge.
  std::size_t staged_bytes = 0;
  for (auto& [client, connection] : routes) {
    const std::lock_guard<std::mutex> write_lock(connection->write_mutex);
    staged_bytes += connection->outbox.size();
    pump_outbox(*connection);
  }
  if (staged_bytes > outbox_bytes_hwm_) {
    outbox_bytes_hwm_ = staged_bytes;
    outbox_bytes_gauge_.set(static_cast<double>(outbox_bytes_hwm_));
  }

  reap_connections();
  return staged;
}

}  // namespace pcn::daemon
