#include "pcn/daemon/socket_server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "pcn/common/error.hpp"
#include "pcn/proto/wire.hpp"

namespace pcn::daemon {

namespace {

/// Largest frame a client may send; far above any real proto frame, low
/// enough that a corrupt length prefix cannot make us allocate gigabytes.
constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

bool read_exact(int fd, std::uint8_t* buffer, std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    const ssize_t n = ::read(fd, buffer + done, count - done);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_exact(int fd, const std::uint8_t* buffer, std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    const ssize_t n = ::write(fd, buffer + done, count - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(Pcnd* daemon, std::string path)
    : daemon_(daemon), path_(std::move(path)) {
  PCN_EXPECT(daemon_ != nullptr, "SocketServer: daemon must not be null");
  PCN_EXPECT(daemon_->config().collect_outcomes,
             "SocketServer: daemon must collect outcomes");
  sockaddr_un address{};
  PCN_EXPECT(path_.size() < sizeof(address.sun_path),
             "SocketServer: socket path too long");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PCN_EXPECT(listen_fd_ >= 0, "SocketServer: cannot create socket");
  ::unlink(path_.c_str());
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path_.c_str(), path_.size() + 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string what = "SocketServer: cannot listen on '" + path_ +
                             "': " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    PCN_EXPECT(false, what.c_str());
  }
  obs::MetricsRegistry& registry = daemon_->metrics_registry();
  frames_in_ = registry.counter("daemon.socket.frames_in");
  frames_out_ = registry.counter("daemon.socket.frames_out");
  decode_errors_ = registry.counter("daemon.socket.decode_error");
  rejected_ = registry.counter("daemon.socket.rejected_ring_full");
}

SocketServer::~SocketServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(path_.c_str());
}

void SocketServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SocketServer::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  // Shut the listener down; accept() returns and the loop exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::unordered_map<std::uint32_t, std::unique_ptr<Connection>> connections;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& [client, connection] : connections) {
    ::shutdown(connection->fd, SHUT_RDWR);
    if (connection->reader.joinable()) connection->reader.join();
    ::close(connection->fd);
  }
}

void SocketServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or broken beyond repair)
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    const std::uint32_t client = next_client_++;
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    connection->reader =
        std::thread([this, client, fd] { reader_loop(client, fd); });
    connections_.emplace(client, std::move(connection));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SocketServer::reader_loop(std::uint32_t client, int fd) {
  std::uint8_t prefix[4];
  std::vector<std::uint8_t> frame;
  while (running_.load(std::memory_order_acquire)) {
    if (!read_exact(fd, prefix, sizeof(prefix))) break;
    const std::uint32_t length = std::uint32_t{prefix[0]} |
                                 std::uint32_t{prefix[1]} << 8 |
                                 std::uint32_t{prefix[2]} << 16 |
                                 std::uint32_t{prefix[3]} << 24;
    if (length == 0 || length > kMaxFrameBytes) {
      decode_errors_.increment(client);
      break;  // framing is lost; drop the connection
    }
    frame.resize(length);
    if (!read_exact(fd, frame.data(), length)) break;
    handle_frame(client, frame);
  }
  // The connection object (and fd) is reaped by stop(); marking the
  // reader done early would need a reaper thread for no test-visible
  // benefit, so a dead connection just idles until shutdown.
}

void SocketServer::handle_frame(std::uint32_t client,
                                const std::vector<std::uint8_t>& frame) {
  frames_in_.increment(client);
  DaemonRequest request;
  request.client = client;
  try {
    switch (proto::peek_type(frame)) {
      case proto::MessageType::kLocationUpdate:
        request.kind = DaemonRequest::Kind::kUpdate;
        request.update = proto::decode_location_update(frame);
        break;
      case proto::MessageType::kPageSubmit: {
        const proto::PageSubmit submit = proto::decode_page_submit(frame);
        request.kind = DaemonRequest::Kind::kPage;
        request.page_id = submit.page_id;
        request.terminal_id = submit.terminal_id;
        break;
      }
      default:
        decode_errors_.increment(client);
        return;
    }
  } catch (const proto::DecodeError&) {
    decode_errors_.increment(client);
    return;
  }
  if (!daemon_->submit(request)) rejected_.increment(client);
}

std::size_t SocketServer::flush_outcomes() {
  std::vector<PageOutcomeEvent> outcomes;
  daemon_->drain_outcomes(&outcomes);
  std::size_t written = 0;
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (const PageOutcomeEvent& event : outcomes) {
    if (event.client == 0) continue;  // in-process submitter, no frame
    const auto it = connections_.find(event.client);
    if (it == connections_.end()) continue;  // client went away
    proto::PageOutcome outcome;
    outcome.page_id = event.page_id;
    outcome.terminal_id = event.terminal_id;
    outcome.outcome = event.kind;
    outcome.queue_delay_slots =
        static_cast<std::uint64_t>(event.queue_delay_slots);
    outcome.queue_depth = event.queue_depth;
    const std::vector<std::uint8_t> frame = proto::encode(outcome);
    const auto length = static_cast<std::uint32_t>(frame.size());
    const std::uint8_t prefix[4] = {
        static_cast<std::uint8_t>(length),
        static_cast<std::uint8_t>(length >> 8),
        static_cast<std::uint8_t>(length >> 16),
        static_cast<std::uint8_t>(length >> 24)};
    if (write_exact(it->second->fd, prefix, sizeof(prefix)) &&
        write_exact(it->second->fd, frame.data(), frame.size())) {
      frames_out_.increment(event.client);
      ++written;
    }
  }
  return written;
}

}  // namespace pcn::daemon
