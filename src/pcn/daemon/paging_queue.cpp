#include "pcn/daemon/paging_queue.hpp"

#include <algorithm>

namespace pcn::daemon {

BoundedPagingQueue::BoundedPagingQueue(const PagingQueueConfig& config)
    : config_(config),
      groups_(static_cast<std::size_t>(config.groups)) {
  PCN_EXPECT(config_.max_pending >= 1,
             "BoundedPagingQueue: max_pending must be >= 1");
  PCN_EXPECT(config_.lifetime_slots >= 0,
             "BoundedPagingQueue: lifetime_slots must be >= 0");
  PCN_EXPECT(config_.groups >= 1, "BoundedPagingQueue: groups must be >= 1");
}

bool BoundedPagingQueue::contains(std::uint64_t terminal_id) const {
  const auto& group = groups_[static_cast<std::size_t>(group_of(terminal_id))];
  for (const PendingPage& page : group) {
    if (page.terminal_id == terminal_id) return true;
  }
  return false;
}

std::int64_t BoundedPagingQueue::deadline_for(std::int64_t enqueued_slot) const {
  // With no SLA configured the deadline collapses onto lifetime expiry:
  // "slack" then means "slots until the page is discarded anyway".
  const std::int64_t bound = config_.sla_delay_slots > 0
                                 ? config_.sla_delay_slots
                                 : config_.lifetime_slots;
  return enqueued_slot + bound;
}

bool BoundedPagingQueue::evict_oldest(PendingPage* evicted) {
  // The victim group is the one whose *head* has waited longest; evicting
  // a head (never a middle entry) keeps FIFO-within-group intact for the
  // survivors.  Ties break toward the lowest group index so the choice is
  // a pure function of queue contents.
  int victim = -1;
  for (int g = 0; g < config_.groups; ++g) {
    const auto& group = groups_[static_cast<std::size_t>(g)];
    if (group.empty()) continue;
    if (victim < 0 ||
        group.front().enqueued_slot <
            groups_[static_cast<std::size_t>(victim)].front().enqueued_slot) {
      victim = g;
    }
  }
  if (victim < 0) return false;
  auto& group = groups_[static_cast<std::size_t>(victim)];
  *evicted = group.front();
  group.pop_front();
  --size_;
  return true;
}

bool BoundedPagingQueue::evict_most_slack(std::int64_t incoming_deadline,
                                          PendingPage* evicted) {
  // The victim is the pending page with the latest deadline (most SLA
  // slack).  Ties break toward the latest-scanned entry, so among equal
  // deadlines the most recently enqueued page gives way to the older
  // ones already close to service.  A victim with *less* slack than the
  // incoming page would invert the priority, so then nobody is evicted.
  int victim_group = -1;
  std::size_t victim_index = 0;
  std::int64_t victim_deadline = 0;
  for (int g = 0; g < config_.groups; ++g) {
    const auto& group = groups_[static_cast<std::size_t>(g)];
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (victim_group < 0 || group[i].deadline_slot >= victim_deadline) {
        victim_group = g;
        victim_index = i;
        victim_deadline = group[i].deadline_slot;
      }
    }
  }
  if (victim_group < 0 || victim_deadline < incoming_deadline) return false;
  auto& group = groups_[static_cast<std::size_t>(victim_group)];
  *evicted = group[victim_index];
  group.erase(group.begin() + static_cast<std::ptrdiff_t>(victim_index));
  --size_;
  return true;
}

EnqueueResult BoundedPagingQueue::add(const PendingPage& page,
                                      PendingPage* evicted) {
  auto& group = groups_[static_cast<std::size_t>(group_of(page.terminal_id))];
  // Dedup before the capacity check (osmo paging_add_identity): a refresh
  // of an already-pending terminal must succeed even on a full queue.
  for (PendingPage& pending : group) {
    if (pending.terminal_id == page.terminal_id) {
      pending.expiry_slot =
          std::max(pending.expiry_slot,
                   page.enqueued_slot + config_.lifetime_slots);
      pending.deadline_slot =
          std::max(pending.deadline_slot, deadline_for(page.enqueued_slot));
      return EnqueueResult::kRefreshed;
    }
  }
  PendingPage accepted = page;
  accepted.expiry_slot = page.enqueued_slot + config_.lifetime_slots;
  accepted.deadline_slot = deadline_for(page.enqueued_slot);
  EnqueueResult result = EnqueueResult::kQueued;
  if (size_ >= config_.max_pending) {
    switch (config_.admission) {
      case AdmissionPolicy::kDropNewest:
        return EnqueueResult::kFull;
      case AdmissionPolicy::kDropOldest:
        PCN_EXPECT(evicted != nullptr,
                   "BoundedPagingQueue: eviction policy needs an out-param");
        if (!evict_oldest(evicted)) return EnqueueResult::kFull;
        result = EnqueueResult::kEvicted;
        break;
      case AdmissionPolicy::kPriorityDelayBound:
        PCN_EXPECT(evicted != nullptr,
                   "BoundedPagingQueue: eviction policy needs an out-param");
        if (!evict_most_slack(accepted.deadline_slot, evicted)) {
          return EnqueueResult::kFull;
        }
        result = EnqueueResult::kEvicted;
        break;
    }
  }
  group.push_back(accepted);
  ++size_;
  return result;
}

namespace {

/// Pops expired entries off the head of `group` into `expired`.
void pop_expired_heads(std::deque<PendingPage>& group, std::int64_t slot,
                       std::vector<PendingPage>* expired, std::size_t* size) {
  while (!group.empty() && group.front().expiry_slot < slot) {
    expired->push_back(group.front());
    group.pop_front();
    --*size;
  }
}

}  // namespace

int BoundedPagingQueue::drain(std::int64_t slot, int budget,
                              std::vector<ServedPage>* served,
                              std::vector<PendingPage>* expired) {
  PCN_EXPECT(budget >= 0, "BoundedPagingQueue: budget must be >= 0");
  // Expiry is a property of the slot, not of the budget: sweep the group
  // heads first so expired pages surface even when the channel has no
  // credit this slot.  (An expired entry stuck behind an unexpired head
  // is swept when it reaches the head — the serve path re-checks expiry,
  // so it can never be served.)
  for (auto& group : groups_) {
    pop_expired_heads(group, slot, expired, &size_);
  }
  int served_count = 0;
  int g = next_group_;
  while (served_count < budget && size_ > 0) {
    auto& group = groups_[static_cast<std::size_t>(g)];
    pop_expired_heads(group, slot, expired, &size_);
    if (!group.empty()) {
      ServedPage entry;
      entry.page = group.front();
      entry.served_slot = slot;
      entry.depth_before = size_;
      group.pop_front();
      --size_;
      served->push_back(entry);
      ++served_count;
    }
    g = (g + 1) % config_.groups;
  }
  if (budget > 0) next_group_ = g;
  return served_count;
}

}  // namespace pcn::daemon
