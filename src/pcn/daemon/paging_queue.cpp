#include "pcn/daemon/paging_queue.hpp"

#include <algorithm>

namespace pcn::daemon {

BoundedPagingQueue::BoundedPagingQueue(const PagingQueueConfig& config)
    : config_(config),
      groups_(static_cast<std::size_t>(config.groups)) {
  PCN_EXPECT(config_.max_pending >= 1,
             "BoundedPagingQueue: max_pending must be >= 1");
  PCN_EXPECT(config_.lifetime_slots >= 0,
             "BoundedPagingQueue: lifetime_slots must be >= 0");
  PCN_EXPECT(config_.groups >= 1, "BoundedPagingQueue: groups must be >= 1");
}

bool BoundedPagingQueue::contains(std::uint64_t terminal_id) const {
  const auto& group = groups_[static_cast<std::size_t>(group_of(terminal_id))];
  for (const PendingPage& page : group) {
    if (page.terminal_id == terminal_id) return true;
  }
  return false;
}

EnqueueResult BoundedPagingQueue::add(const PendingPage& page) {
  auto& group = groups_[static_cast<std::size_t>(group_of(page.terminal_id))];
  // Dedup before the capacity check (osmo paging_add_identity): a refresh
  // of an already-pending terminal must succeed even on a full queue.
  for (PendingPage& pending : group) {
    if (pending.terminal_id == page.terminal_id) {
      pending.expiry_slot =
          std::max(pending.expiry_slot,
                   page.enqueued_slot + config_.lifetime_slots);
      return EnqueueResult::kRefreshed;
    }
  }
  if (size_ >= config_.max_pending) return EnqueueResult::kFull;
  PendingPage accepted = page;
  accepted.expiry_slot = page.enqueued_slot + config_.lifetime_slots;
  group.push_back(accepted);
  ++size_;
  return EnqueueResult::kQueued;
}

namespace {

/// Pops expired entries off the head of `group` into `expired`.
void pop_expired_heads(std::deque<PendingPage>& group, std::int64_t slot,
                       std::vector<PendingPage>* expired, std::size_t* size) {
  while (!group.empty() && group.front().expiry_slot < slot) {
    expired->push_back(group.front());
    group.pop_front();
    --*size;
  }
}

}  // namespace

int BoundedPagingQueue::drain(std::int64_t slot, int budget,
                              std::vector<ServedPage>* served,
                              std::vector<PendingPage>* expired) {
  PCN_EXPECT(budget >= 0, "BoundedPagingQueue: budget must be >= 0");
  // Expiry is a property of the slot, not of the budget: sweep the group
  // heads first so expired pages surface even when the channel has no
  // credit this slot.  (An expired entry stuck behind an unexpired head
  // is swept when it reaches the head — the serve path re-checks expiry,
  // so it can never be served.)
  for (auto& group : groups_) {
    pop_expired_heads(group, slot, expired, &size_);
  }
  int served_count = 0;
  int g = next_group_;
  while (served_count < budget && size_ > 0) {
    auto& group = groups_[static_cast<std::size_t>(g)];
    pop_expired_heads(group, slot, expired, &size_);
    if (!group.empty()) {
      ServedPage entry;
      entry.page = group.front();
      entry.served_slot = slot;
      entry.depth_before = size_;
      group.pop_front();
      --size_;
      served->push_back(entry);
      ++served_count;
    }
    g = (g + 1) % config_.groups;
  }
  if (budget > 0) next_group_ = g;
  return served_count;
}

}  // namespace pcn::daemon
