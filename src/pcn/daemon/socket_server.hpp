// Unix-domain socket front end for pcnd.
//
// A deliberately thin layer: the wire surface is the existing proto frame
// codec, length-prefixed for stream transport —
//
//   u32 (LE, raw)  frame length
//   ...            one proto frame (messages.hpp: version, type, payload,
//                  CRC trailer)
//
// Inbound frames must be LocationUpdate or PageSubmit; each decodes into
// the same DaemonRequest struct in-process producers build and goes
// through Pcnd::submit — the socket path exercises exactly the ring the
// tests and load generators exercise, with `client` set to the
// connection id so verdicts route back.  Outbound, `flush_outcomes`
// drains the daemon's settled PageOutcomeEvents, stages a PageOutcome
// frame into the submitting connection's bounded outbox, and pushes
// outbox bytes with non-blocking MSG_NOSIGNAL sends.
//
// A bad client cannot stall or kill the daemon:
//
// * Frames that fail to decode, frames of an unexpected type, and pushes
//   rejected by a full ring are counted (daemon.socket.*) and the
//   connection stays up.
// * Socket writes never block and never raise SIGPIPE.  A client that
//   stops reading accumulates at most kMaxOutboxBytes of staged
//   verdicts, then its connection is failed; a client that disconnects
//   turns the next send into a counted EPIPE, not a signal.
// * Dead connections (reader exited and outbox drained, or write side
//   failed) are reaped on every flush_outcomes call — fd closed, reader
//   thread joined, registry entry erased — so a long-running daemon with
//   client churn does not accumulate fds or threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pcn/daemon/daemon.hpp"

namespace pcn::daemon {

class SocketServer {
 public:
  /// Binds and listens on `path` (an existing socket file is replaced).
  /// The daemon must have collect_outcomes enabled so verdicts can be
  /// routed back.  Throws InvalidArgument when binding fails.
  SocketServer(Pcnd* daemon, std::string path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  const std::string& path() const { return path_; }

  /// Starts the accept loop and per-connection readers.
  void start();

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Drains settled outcomes from the daemon, stages a PageOutcome frame
  /// into each submitting connection's outbox (outcomes with client 0 —
  /// in-process submitters — are discarded), pushes outbox bytes with
  /// non-blocking sends, and reaps dead connections.  Returns frames
  /// staged.  Call between run_slots calls, from one thread at a time
  /// (also serialized against stop()).
  std::size_t flush_outcomes();

  /// Connections accepted so far (monotone; for tests).
  std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// Connections currently registered (accepted, not yet reaped).
  std::size_t open_connections();

 private:
  struct Connection {
    int fd = -1;
    std::thread reader;
    std::mutex write_mutex;
    /// Length-prefixed frames the socket has not accepted yet; bounded
    /// by kMaxOutboxBytes (stage_frame fails the connection beyond it).
    std::vector<std::uint8_t> outbox;
    std::atomic<bool> reader_done{false};
    std::atomic<bool> write_failed{false};
  };

  void accept_loop();
  void reader_loop(std::uint32_t client, int fd, Connection& connection);
  void handle_frame(std::uint32_t client, Connection& connection,
                    const std::vector<std::uint8_t>& frame);
  /// Final non-blocking drain of one connection's outbox, bounded to
  /// ~100 ms; used by stop() so staged verdicts reach a live reader.
  void drain_outbox_bounded(Connection& connection);
  /// Appends one length-prefixed frame to the outbox (write_mutex held
  /// by caller); fails the connection instead of exceeding the bound.
  bool stage_frame(Connection& connection,
                   const std::vector<std::uint8_t>& frame);
  /// Sends outbox bytes without blocking (write_mutex held by caller);
  /// EAGAIN leaves the remainder staged, a fatal error (EPIPE — client
  /// gone) fails the connection.
  void pump_outbox(Connection& connection);
  /// Erases, closes, and joins every failed or finished connection.
  void reap_connections();

  Pcnd* daemon_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  std::unordered_map<std::uint32_t, std::shared_ptr<Connection>> connections_;
  std::uint32_t next_client_ = 1;  ///< 0 is reserved for in-process
  std::atomic<std::uint64_t> connections_accepted_{0};

  obs::Counter frames_in_;
  obs::Counter frames_out_;
  obs::Counter decode_errors_;
  obs::Counter rejected_;
  obs::Counter accept_errors_;
  obs::Counter disconnects_;
  obs::Gauge outbox_bytes_gauge_;
  /// High watermark of total staged outbox bytes, sampled at each flush
  /// before the pump (only flush_outcomes touches it, single caller).
  std::size_t outbox_bytes_hwm_ = 0;
};

}  // namespace pcn::daemon
