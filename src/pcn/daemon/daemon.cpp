#include "pcn/daemon/daemon.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>
#include <tuple>

#include "pcn/obs/timeseries_codec.hpp"
#include "pcn/obs/tsc.hpp"

namespace pcn::daemon {

namespace {

/// The terminal a request is about — the sort/shard key.
std::uint64_t request_terminal(const DaemonRequest& request) {
  return request.kind == DaemonRequest::Kind::kUpdate
             ? request.update.terminal_id
             : request.terminal_id;
}

void bump_dense(std::vector<std::int64_t>& hist, std::size_t index) {
  if (hist.size() <= index) hist.resize(index + 1, 0);
  ++hist[index];
}

}  // namespace

void RequestSink::update(const proto::LocationUpdate& update) {
  daemon_->requests_update_.add(1, static_cast<std::size_t>(shard_));
  daemon_->apply_update(shard_, update);
}

void RequestSink::page(std::uint64_t page_id, std::uint64_t terminal_id) {
  daemon_->requests_page_.add(1, static_cast<std::size_t>(shard_));
  daemon_->apply_page(shard_, slot_, page_id, terminal_id, /*client=*/0,
                      workload_, &tracker_);
}

Pcnd::Pcnd(const PcndConfig& config)
    : config_(config), ring_(config.ring_capacity) {
  PCN_EXPECT(config_.threads >= 1, "Pcnd: threads must be >= 1");
  PCN_EXPECT(config_.terminal_shards >= 1,
             "Pcnd: terminal_shards must be >= 1");
  PCN_EXPECT(config_.queue_shards >= 1, "Pcnd: queue_shards must be >= 1");
  PCN_EXPECT(config_.sla_delay_slots >= 0,
             "Pcnd: sla_delay_slots must be >= 0");
  // The queue's priority-eviction deadlines must rank by the same SLA
  // the daemon enforces, so the daemon's bound is authoritative.
  config_.queue.sla_delay_slots = config_.sla_delay_slots;
  if (config_.plan.mode != DelayPlanConfig::Mode::kOff) {
    planner_ = std::make_unique<DelayFeedbackPlanner>(
        config_.plan, config_.capacity, config_.sla_delay_slots);
  }
  const auto ts = static_cast<std::size_t>(config_.terminal_shards);
  const auto qs = static_cast<std::size_t>(config_.queue_shards);
  terminals_.resize(ts);
  intents_.resize(ts, std::vector<std::vector<PageIntent>>(qs));
  queue_shards_.resize(qs);
  apply_outcomes_.resize(ts);
  shard_batch_.resize(ts);
  if (config_.record_flight) {
    obs::FlightRecorderConfig recorder_config;
    recorder_config.sample_every = config_.flight_sample_every;
    recorder_config.shard_capacity = config_.flight_shard_capacity;
    recorder_ = std::make_unique<obs::FlightRecorder>(recorder_config);
    recorder_->ensure_shards(std::max(ts, qs));
  }

  if (config_.timeseries_every_slots > 0) {
    timeseries_ = std::make_unique<obs::TimeseriesRecorder>(
        config_.timeseries_every_slots, config_.timeseries_max_samples);
  }

  if (config_.live_stats) {
    // Pre-size the publish buffers so the occupancy walk never touches
    // the allocator mid-run (first publish included).
    live_stats_scratch_.reserve(1024);
    live_stats_.deepest.reserve(LiveQueueStats::kTopCells);
    live_stats_publish_scratch_.deepest.reserve(LiveQueueStats::kTopCells);
  }

  requests_update_ = registry_.counter("daemon.request.update");
  requests_page_ = registry_.counter("daemon.request.page");
  requests_rejected_ = registry_.counter("daemon.request.rejected_ring_full");
  updates_applied_ = registry_.counter("daemon.update.applied");
  updates_stale_ = registry_.counter("daemon.update.stale");
  pages_queued_ = registry_.counter("daemon.page.queued");
  pages_duplicate_ = registry_.counter("daemon.page.duplicate");
  pages_dropped_ = registry_.counter("daemon.page.dropped");
  pages_evicted_ = registry_.counter("daemon.page.evicted");
  pages_expired_ = registry_.counter("daemon.page.expired");
  pages_served_ = registry_.counter("daemon.page.served");
  pages_unknown_ = registry_.counter("daemon.page.unknown_terminal");
  sla_violations_ = registry_.counter("daemon.page.sla_violation");
  slots_run_ = registry_.counter("daemon.slot.count");
  wall_ns_ = registry_.counter("daemon.run.wall_ns");
  plan_widen_ = registry_.counter("daemon.plan.widen");
  plan_narrow_ = registry_.counter("daemon.plan.narrow");
  plan_m_gauge_ = registry_.gauge("daemon.plan.effective_m");
  if (planner_ != nullptr) {
    plan_m_gauge_.set(static_cast<double>(planner_->effective_m()));
  }
  max_depth_gauge_ = registry_.gauge("daemon.queue.max_depth");
  pending_gauge_ = registry_.gauge("daemon.queue.depth_pending");
  cells_pending_gauge_ = registry_.gauge("daemon.queue.cells_pending");
  delay_hist_ = registry_.histogram("daemon.page.queue_delay_slots",
                                    obs::exponential_buckets(1.0, 2.0, 16));
  depth_hist_ = registry_.histogram("daemon.queue.depth",
                                    obs::exponential_buckets(1.0, 2.0, 12));
  // 1 µs .. ~0.5 s upper bounds cover a phase at any scale we run.
  const std::vector<double> phase_bounds =
      obs::exponential_buckets(1.0, 2.0, 20);
  phase_ingest_ = registry_.histogram("daemon.phase.ingest_us", phase_bounds);
  phase_apply_ = registry_.histogram("daemon.phase.apply_us", phase_bounds);
  phase_drain_ = registry_.histogram("daemon.phase.drain_us", phase_bounds);
  phase_finalize_ =
      registry_.histogram("daemon.phase.finalize_us", phase_bounds);
}

Pcnd::~Pcnd() = default;

bool Pcnd::submit(const DaemonRequest& request) {
  const std::uint64_t terminal = request_terminal(request);
  if (!ring_.try_push(request)) {
    requests_rejected_.add(1, static_cast<std::size_t>(terminal));
    return false;
  }
  if (request.kind == DaemonRequest::Kind::kUpdate) {
    requests_update_.add(1, static_cast<std::size_t>(terminal));
  } else {
    requests_page_.add(1, static_cast<std::size_t>(terminal));
  }
  return true;
}

void Pcnd::ingest_phase() {
  // Planner on: the budget follows the current paging delay bound m
  // (serial, accumulator-carried).  Planner off: the legacy open-loop
  // capacity schedule, bit-for-bit.
  slot_budget_ = planner_ != nullptr
                     ? planner_->budget_for_slot(slot_)
                     : config_.capacity.budget_for_slot(slot_);
  batch_.clear();
  // Bound the drain to one ring's worth so producers racing the slot loop
  // cannot stretch INGEST indefinitely; the remainder is next slot's work.
  DaemonRequest request;
  for (std::size_t n = 0; n < ring_.capacity(); ++n) {
    if (!ring_.try_pop(&request)) break;
    batch_.push_back(request);
  }
  // Producers race each other into the ring, so arrival order is not
  // reproducible — but the *set* per slot is what callers control.  The
  // sort makes processing order a pure function of that set.
  std::stable_sort(batch_.begin(), batch_.end(),
                   [](const DaemonRequest& a, const DaemonRequest& b) {
                     return std::make_tuple(request_terminal(a),
                                            static_cast<int>(a.kind),
                                            a.update.sequence, a.page_id,
                                            a.client) <
                            std::make_tuple(request_terminal(b),
                                            static_cast<int>(b.kind),
                                            b.update.sequence, b.page_id,
                                            b.client);
                   });
  for (auto& bucket : shard_batch_) bucket.clear();
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    const int shard = terminal_shard_of(request_terminal(batch_[i]));
    shard_batch_[static_cast<std::size_t>(shard)].push_back(i);
  }
}

void Pcnd::apply_update(int shard, const proto::LocationUpdate& update) {
  PCN_ASSERT(terminal_shard_of(update.terminal_id) == shard);
  auto& db = terminals_[static_cast<std::size_t>(shard)];
  auto [it, inserted] = db.try_emplace(update.terminal_id);
  TerminalState& state = it->second;
  if (!inserted && update.sequence <= state.sequence) {
    // Duplicate or reordered frame on a lossy air interface: the stored
    // state is newer, keep it.
    updates_stale_.add(1, static_cast<std::size_t>(shard));
    return;
  }
  state.center = update.cell;
  state.sequence = update.sequence;
  state.radius = update.containment_radius;
  updates_applied_.add(1, static_cast<std::size_t>(shard));
}

void Pcnd::apply_page(int shard, std::int64_t slot, std::uint64_t page_id,
                      std::uint64_t terminal_id, std::uint32_t client,
                      SlotWorkload* workload, detail::SeqTracker* tracker) {
  PCN_ASSERT(terminal_shard_of(terminal_id) == shard);
  const std::uint32_t run = tracker->next(terminal_id);
  const auto& db = terminals_[static_cast<std::size_t>(shard)];
  const auto it = db.find(terminal_id);
  if (it == db.end()) {
    // No center cell on file: the page has nowhere to go.  Verdict now,
    // in the apply phase, owned by the terminal shard's worker.
    pages_unknown_.add(1, static_cast<std::size_t>(shard));
    sla_violations_.add(1, static_cast<std::size_t>(shard));
    record_page_event(shard, obs::FlightEventType::kPageDropped, slot,
                      terminal_id, page_id, /*seq=*/2 + run, /*cycle=*/-1,
                      /*cells=*/0, /*distance=*/-1, /*found=*/false);
    if (config_.collect_outcomes) {
      apply_outcomes_[static_cast<std::size_t>(shard)].push_back(
          {page_id, terminal_id, proto::PageOutcomeKind::kDropped,
           /*queue_delay_slots=*/0, /*queue_depth=*/0, slot, client});
    }
    if (workload != nullptr) {
      workload->on_outcome(terminal_id, proto::PageOutcomeKind::kDropped,
                           slot);
    }
    return;
  }
  const int qs = queue_shard_of(it->second.center);
  intents_[static_cast<std::size_t>(shard)][static_cast<std::size_t>(qs)]
      .push_back({it->second.center, terminal_id, page_id, client});
}

void Pcnd::apply_phase(int worker, int worker_count, std::int64_t slot,
                       SlotWorkload* workload) {
  for (int ts = worker; ts < config_.terminal_shards; ts += worker_count) {
    detail::SeqTracker tracker;
    for (const std::size_t index :
         shard_batch_[static_cast<std::size_t>(ts)]) {
      const DaemonRequest& request = batch_[index];
      if (request.kind == DaemonRequest::Kind::kUpdate) {
        apply_update(ts, request.update);
      } else {
        apply_page(ts, slot, request.page_id, request.terminal_id,
                   request.client, workload, &tracker);
      }
    }
    if (workload != nullptr) {
      RequestSink sink(this, ts, slot, workload);
      workload->generate(ts, config_.terminal_shards, slot, sink);
    }
  }
}

void Pcnd::drain_phase(int worker, int worker_count, std::int64_t slot,
                       SlotWorkload* workload) {
  const auto max_pending =
      static_cast<std::int64_t>(config_.queue.max_pending);
  for (int qs = worker; qs < config_.queue_shards; qs += worker_count) {
    QueueShard& shard = queue_shards_[static_cast<std::size_t>(qs)];
    const auto shard_index = static_cast<std::size_t>(qs);

    // Enqueue this slot's intents, iterating terminal shards in fixed
    // order 0..S-1: the per-queue arrival order is independent of both
    // the thread count and which worker runs this shard.
    detail::SeqTracker tracker;
    for (auto& per_terminal_shard : intents_) {
      auto& list = per_terminal_shard[shard_index];
      for (const PageIntent& intent : list) {
        const std::uint32_t run = tracker.next(intent.terminal_id);
        auto it = shard.queues.find(intent.cell);
        if (it == shard.queues.end()) {
          it = shard.queues.emplace(intent.cell,
                                    BoundedPagingQueue(config_.queue))
                   .first;
        }
        BoundedPagingQueue& queue = it->second;
        PendingPage page;
        page.terminal_id = intent.terminal_id;
        page.page_id = intent.page_id;
        page.client = intent.client;
        page.enqueued_slot = slot;
        PendingPage evicted;
        const EnqueueResult admit = queue.add(page, &evicted);
        if (admit == EnqueueResult::kEvicted) {
          // The victim lost its place to the incoming page: report it
          // dropped (its client sees a kDropped verdict) before the
          // admitted page's own queued event.  distance=-2 marks an
          // eviction drop apart from a tail drop's -1.
          const std::int64_t age = slot - evicted.enqueued_slot;
          pages_evicted_.add(1, shard_index);
          sla_violations_.add(1, shard_index);
          record_page_event(qs, obs::FlightEventType::kPageDropped, slot,
                            evicted.terminal_id, evicted.page_id,
                            /*seq=*/3, static_cast<std::int32_t>(age),
                            /*cells=*/max_pending, /*distance=*/-2,
                            /*found=*/false);
          if (config_.collect_outcomes) {
            shard.outcomes.push_back(
                {evicted.page_id, evicted.terminal_id,
                 proto::PageOutcomeKind::kDropped, age,
                 static_cast<std::uint32_t>(queue.size()), slot,
                 evicted.client});
          }
          if (workload != nullptr) {
            workload->on_outcome(evicted.terminal_id,
                                 proto::PageOutcomeKind::kDropped, slot);
          }
        }
        switch (admit) {
          case EnqueueResult::kEvicted:  // the incoming page was admitted
          case EnqueueResult::kQueued: {
            const auto depth = static_cast<std::int64_t>(queue.size());
            pages_queued_.add(1, shard_index);
            depth_hist_.observe(static_cast<double>(depth), shard_index);
            shard.max_depth = std::max(shard.max_depth, depth);
            record_page_event(
                qs, obs::FlightEventType::kPageQueued, slot,
                intent.terminal_id, intent.page_id, /*seq=*/1, /*cycle=*/-1,
                /*cells=*/depth,
                /*distance=*/static_cast<std::int64_t>(
                    intent.terminal_id %
                    static_cast<std::uint64_t>(config_.queue.groups)),
                /*found=*/false);
            break;
          }
          case EnqueueResult::kRefreshed:
            // The terminal is already pending here; its lifetime was
            // renewed and the original submit's outcome will cover this
            // one too.
            pages_duplicate_.add(1, shard_index);
            break;
          case EnqueueResult::kFull: {
            pages_dropped_.add(1, shard_index);
            sla_violations_.add(1, shard_index);
            record_page_event(qs, obs::FlightEventType::kPageDropped, slot,
                              intent.terminal_id, intent.page_id,
                              /*seq=*/2 + run, /*cycle=*/-1,
                              /*cells=*/max_pending, /*distance=*/-1,
                              /*found=*/false);
            if (config_.collect_outcomes) {
              shard.outcomes.push_back(
                  {intent.page_id, intent.terminal_id,
                   proto::PageOutcomeKind::kDropped, /*queue_delay_slots=*/0,
                   static_cast<std::uint32_t>(queue.size()), slot,
                   intent.client});
            }
            if (workload != nullptr) {
              workload->on_outcome(intent.terminal_id,
                                   proto::PageOutcomeKind::kDropped, slot);
            }
            break;
          }
        }
      }
      list.clear();
    }

    // Drain every queue against the slot budget.
    for (auto& [cell, queue] : shard.queues) {
      if (queue.empty()) continue;
      shard.served_scratch.clear();
      shard.expired_scratch.clear();
      queue.drain(slot, slot_budget_, &shard.served_scratch,
                  &shard.expired_scratch);
      std::int64_t cell_delay_sum = 0;
      for (const ServedPage& served : shard.served_scratch) {
        const std::int64_t delay = slot - served.page.enqueued_slot;
        cell_delay_sum += delay;
        pages_served_.add(1, shard_index);
        delay_hist_.observe(static_cast<double>(delay), shard_index);
        bump_dense(shard.delay_hist, static_cast<std::size_t>(delay));
        if (config_.sla_delay_slots > 0 &&
            delay > config_.sla_delay_slots) {
          sla_violations_.add(1, shard_index);
        }
        record_page_event(qs, obs::FlightEventType::kPageServed, slot,
                          served.page.terminal_id, served.page.page_id,
                          /*seq=*/4, static_cast<std::int32_t>(delay),
                          static_cast<std::int64_t>(served.depth_before),
                          /*distance=*/-1, /*found=*/true);
        if (config_.collect_outcomes) {
          shard.outcomes.push_back(
              {served.page.page_id, served.page.terminal_id,
               proto::PageOutcomeKind::kServed, delay,
               static_cast<std::uint32_t>(served.depth_before), slot,
               served.page.client});
        }
        if (workload != nullptr) {
          workload->on_outcome(served.page.terminal_id,
                               proto::PageOutcomeKind::kServed, slot);
        }
      }
      for (const PendingPage& expired : shard.expired_scratch) {
        const std::int64_t age = slot - expired.enqueued_slot;
        pages_expired_.add(1, shard_index);
        sla_violations_.add(1, shard_index);
        record_page_event(qs, obs::FlightEventType::kPageExpired, slot,
                          expired.terminal_id, expired.page_id, /*seq=*/4,
                          static_cast<std::int32_t>(age), /*cells=*/0,
                          /*distance=*/-1, /*found=*/false);
        if (config_.collect_outcomes) {
          shard.outcomes.push_back(
              {expired.page_id, expired.terminal_id,
               proto::PageOutcomeKind::kExpired, age,
               static_cast<std::uint32_t>(queue.size()), slot,
               expired.client});
        }
        if (workload != nullptr) {
          workload->on_outcome(expired.terminal_id,
                               proto::PageOutcomeKind::kExpired, slot);
        }
      }
      if (planner_ != nullptr && !shard.served_scratch.empty()) {
        // Staged for the serial FINALIZE fold; the planner's aggregate
        // is commutative, so shard-map iteration order cannot matter.
        shard.planner_samples.push_back(
            {cell, static_cast<std::int64_t>(shard.served_scratch.size()),
             cell_delay_sum});
      }
    }
  }
}

void Pcnd::finalize_phase() {
  if (config_.collect_outcomes) {
    const std::lock_guard<std::mutex> lock(outcomes_mutex_);
    for (auto& outcomes : apply_outcomes_) {
      outcomes_.insert(outcomes_.end(), outcomes.begin(), outcomes.end());
      outcomes.clear();
    }
    for (QueueShard& shard : queue_shards_) {
      outcomes_.insert(outcomes_.end(), shard.outcomes.begin(),
                       shard.outcomes.end());
      shard.outcomes.clear();
    }
  }
  for (const QueueShard& shard : queue_shards_) {
    max_depth_ever_ = std::max(max_depth_ever_, shard.max_depth);
  }
  max_depth_gauge_.set(static_cast<double>(max_depth_ever_));
  if (planner_ != nullptr) {
    for (QueueShard& shard : queue_shards_) {
      for (const CellServeSample& sample : shard.planner_samples) {
        planner_->observe_cell(sample.cell, sample.served, sample.delay_sum);
      }
      shard.planner_samples.clear();
    }
    planner_->end_slot(slot_);
    plan_m_gauge_.set(static_cast<double>(planner_->effective_m()));
    plan_widen_.add(planner_->widen_count() - published_widens_);
    plan_narrow_.add(planner_->narrow_count() - published_narrows_);
    published_widens_ = planner_->widen_count();
    published_narrows_ = planner_->narrow_count();
  }
  if (config_.live_stats &&
      (slot_ % LiveQueueStats::kStrideSlots == 0 || slot_ == run_last_slot_)) {
    // Read-only occupancy walk for the admin plane.  Runs in the serial
    // FINALIZE step, so no queue mutates underneath it.  Strided: the
    // walk touches every queue, so doing it each slot would cost ~1% of
    // a batch run, while every 16th slot (plus the run's last slot, so
    // a finished run always exposes its final state) is still orders of
    // magnitude fresher than any realistic scrape cadence.  Allocation-
    // free in steady state: the walk fills reused member buffers and
    // swaps them with the published copy, so enabling live stats does
    // not perturb the allocator under the hot loop.
    LiveQueueStats& stats = live_stats_publish_scratch_;
    stats.slot = slot_;
    stats.total_pending = 0;
    stats.cells_pending = 0;
    stats.max_depth_ever = max_depth_ever_;
    live_stats_scratch_.clear();
    for (const QueueShard& shard : queue_shards_) {
      for (const auto& [cell, queue] : shard.queues) {
        const auto depth = static_cast<std::int64_t>(queue.size());
        if (depth == 0) continue;
        stats.total_pending += depth;
        ++stats.cells_pending;
        live_stats_scratch_.push_back({cell, depth});
      }
    }
    // Cells are unique, so (depth desc, q, r) is a strict total order and
    // the top-K list is the same regardless of map iteration order.
    const std::size_t top = std::min(LiveQueueStats::kTopCells,
                                     live_stats_scratch_.size());
    std::partial_sort(
        live_stats_scratch_.begin(), live_stats_scratch_.begin() + top,
        live_stats_scratch_.end(),
        [](const LiveQueueStats::CellDepth& a,
           const LiveQueueStats::CellDepth& b) {
          if (a.depth != b.depth) return a.depth > b.depth;
          if (a.cell.q != b.cell.q) return a.cell.q < b.cell.q;
          return a.cell.r < b.cell.r;
        });
    stats.deepest.assign(live_stats_scratch_.begin(),
                         live_stats_scratch_.begin() + top);
    pending_gauge_.set(static_cast<double>(stats.total_pending));
    cells_pending_gauge_.set(static_cast<double>(stats.cells_pending));
    {
      const std::lock_guard<std::mutex> lock(live_stats_mutex_);
      std::swap(live_stats_, stats);  // old copy becomes the next scratch
    }
  }
  slots_run_.increment();
  ++slot_;
  if (timeseries_ != nullptr &&
      (slot_ % config_.timeseries_every_slots == 0 ||
       slot_ - 1 == run_last_slot_)) {
    // Serial step, after every worker's counters for the finished slot
    // are barrier-visible: the snapshot is a pure function of the slot
    // index, so the capture is bit-identical at any thread count (the
    // recorder's name filter keeps wall-clock series out).
    const std::lock_guard<std::mutex> lock(timeseries_mutex_);
    timeseries_->sample(slot_, registry_.snapshot());
  }
}

LiveQueueStats Pcnd::live_queue_stats() const {
  const std::lock_guard<std::mutex> lock(live_stats_mutex_);
  return live_stats_;
}

std::string Pcnd::timeseries_encoded() const {
  if (timeseries_ == nullptr) {
    obs::Timeseries empty;
    return obs::encode_timeseries_string(empty);
  }
  const std::lock_guard<std::mutex> lock(timeseries_mutex_);
  return obs::encode_timeseries_string(timeseries_->data());
}

void Pcnd::record_page_event(int recorder_shard, obs::FlightEventType type,
                             std::int64_t slot, std::uint64_t terminal_id,
                             std::uint64_t page_id, std::uint32_t seq,
                             std::int32_t cycle, std::int64_t cells,
                             std::int64_t distance, bool found) {
  if (recorder_ == nullptr || !recorder_->sampled(page_id)) return;
  obs::FlightEvent event;
  event.slot = slot;
  event.terminal = static_cast<std::int64_t>(terminal_id);
  event.seq = seq;
  event.type = type;
  event.call = page_id;
  event.cycle = cycle;
  event.cells = cells;
  event.distance = distance;
  event.found = found;
  recorder_->shard(static_cast<std::size_t>(recorder_shard)).append(event);
}

void Pcnd::run_slots(std::int64_t slots, SlotWorkload* workload) {
  PCN_EXPECT(slots >= 0, "Pcnd: slots must be >= 0");
  if (slots == 0) return;
  run_last_slot_ = slot_ + slots - 1;
  if (timeseries_ != nullptr && timeseries_->sample_count() == 0) {
    // Baseline sample before the first slot so deltas start from zero.
    const std::lock_guard<std::mutex> lock(timeseries_mutex_);
    timeseries_->sample(slot_, registry_.snapshot());
  }
  const int worker_count = std::max(1, config_.threads);
  const auto start = std::chrono::steady_clock::now();

  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto fail = [&](std::exception_ptr e) {
    const std::lock_guard<std::mutex> lock(error_mutex);
    if (error == nullptr) error = e;
    failed.store(true, std::memory_order_release);
  };

  // Calibrate the TSC once before the loop so the first slot's phase
  // timings don't absorb the ~2 ms calibration spin.
  obs::tsc_ticks_per_ns();

  // One barrier, three waits per slot; the completion function runs the
  // serial INGEST / FINALIZE steps while every worker is parked.  The
  // completion is also where the phase profiler lives: serialized-TSC
  // stamps at completion entry/exit bracket each barrier-separated span
  // (INGEST and FINALIZE inside their completions, APPLY and DRAIN as the
  // gap between one completion's exit and the next one's entry), and the
  // completion is single-threaded so plain locals suffice.
  int phase = 0;
  std::uint64_t completion_exit = 0;
  auto completion = [this, &phase, &completion_exit, &failed,
                     &fail]() noexcept {
    const std::uint64_t entry = obs::serialized_tsc();
    if (!failed.load(std::memory_order_acquire)) {
      // The serial phases allocate (batch, outcome, histogram growth); an
      // exception here must take the same fail()/rethrow path as the
      // worker phases instead of std::terminate through the noexcept.
      try {
        if (phase == 0) {
          ingest_phase();
          phase_ingest_.observe(
              obs::tsc_delta_us(entry, obs::serialized_tsc()));
        } else if (phase == 1) {
          phase_apply_.observe(obs::tsc_delta_us(completion_exit, entry));
        } else {
          phase_drain_.observe(obs::tsc_delta_us(completion_exit, entry));
          finalize_phase();
          phase_finalize_.observe(
              obs::tsc_delta_us(entry, obs::serialized_tsc()));
        }
      } catch (...) {
        fail(std::current_exception());
      }
    }
    phase = (phase + 1) % 3;
    completion_exit = obs::serialized_tsc();
  };
  std::barrier sync(worker_count, completion);

  auto worker_body = [&](int worker) {
    for (std::int64_t i = 0; i < slots; ++i) {
      sync.arrive_and_wait();  // INGEST for slot_
      const std::int64_t slot = slot_;
      if (!failed.load(std::memory_order_acquire)) {
        try {
          apply_phase(worker, worker_count, slot, workload);
        } catch (...) {
          fail(std::current_exception());
        }
      }
      sync.arrive_and_wait();  // all APPLY intents visible
      if (!failed.load(std::memory_order_acquire)) {
        try {
          drain_phase(worker, worker_count, slot, workload);
        } catch (...) {
          fail(std::current_exception());
        }
      }
      sync.arrive_and_wait();  // FINALIZE, ++slot_
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(worker_count - 1));
  for (int w = 1; w < worker_count; ++w) {
    threads.emplace_back(worker_body, w);
  }
  worker_body(0);
  for (std::thread& thread : threads) thread.join();

  const auto elapsed = std::chrono::steady_clock::now() - start;
  wall_ns_.add(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  if (error != nullptr) std::rethrow_exception(error);
}

void Pcnd::drain_outcomes(std::vector<PageOutcomeEvent>* out) {
  PCN_EXPECT(config_.collect_outcomes,
             "Pcnd: drain_outcomes requires collect_outcomes");
  const std::lock_guard<std::mutex> lock(outcomes_mutex_);
  out->insert(out->end(), outcomes_.begin(), outcomes_.end());
  outcomes_.clear();
}

std::vector<std::int64_t> Pcnd::delay_histogram() const {
  std::vector<std::int64_t> merged;
  for (const QueueShard& shard : queue_shards_) {
    if (merged.size() < shard.delay_hist.size()) {
      merged.resize(shard.delay_hist.size(), 0);
    }
    for (std::size_t i = 0; i < shard.delay_hist.size(); ++i) {
      merged[i] += shard.delay_hist[i];
    }
  }
  return merged;
}

std::size_t Pcnd::terminal_count() const {
  std::size_t total = 0;
  for (const auto& db : terminals_) total += db.size();
  return total;
}

Pcnd::TerminalInfo Pcnd::terminal_info(std::uint64_t terminal_id) const {
  const auto& db =
      terminals_[static_cast<std::size_t>(terminal_shard_of(terminal_id))];
  const auto it = db.find(terminal_id);
  if (it == db.end()) return {};
  return {true, it->second.center, it->second.sequence, it->second.radius};
}

std::int64_t Pcnd::queue_depth(geometry::Cell cell) const {
  const QueueShard& shard =
      queue_shards_[static_cast<std::size_t>(queue_shard_of(cell))];
  const auto it = shard.queues.find(cell);
  return it == shard.queues.end()
             ? 0
             : static_cast<std::int64_t>(it->second.size());
}

}  // namespace pcn::daemon
