#include "pcn/daemon/daemon_report.hpp"

#include "pcn/obs/json.hpp"

namespace pcn::daemon {

DaemonRunReport make_daemon_report(const Pcnd& daemon, std::uint64_t seed,
                                   std::int64_t terminals) {
  const PcndConfig& config = daemon.config();
  DaemonRunReport report;
  report.dimension = to_string(config.dimension);
  report.threads = config.threads;
  report.seed = seed;
  report.channels = config.capacity.channels();
  report.slots_per_message = config.capacity.slots_per_message();
  report.queue_max_pending = config.queue.max_pending;
  report.queue_lifetime_slots = config.queue.lifetime_slots;
  report.queue_groups = config.queue.groups;
  report.queue_admission = to_string(config.queue.admission);
  report.sla_delay_slots = config.sla_delay_slots;
  report.plan_mode = to_string(config.plan.mode);
  if (const DelayFeedbackPlanner* planner = daemon.planner()) {
    report.plan_m_min = config.plan.m_min;
    report.plan_m_max = config.plan.m_max;
    report.plan_m_start = config.plan.m_start;
    report.plan_effective_m = planner->effective_m();
    report.plan_widen = planner->widen_count();
    report.plan_narrow = planner->narrow_count();
  }
  report.slots = daemon.now();
  report.terminals = terminals;

  report.metrics = daemon.metrics_registry().snapshot();
  const obs::MetricsSnapshot& m = report.metrics;
  report.pages_queued = m.counter_value("daemon.page.queued");
  report.pages_duplicate = m.counter_value("daemon.page.duplicate");
  report.pages_served = m.counter_value("daemon.page.served");
  report.pages_dropped = m.counter_value("daemon.page.dropped");
  report.pages_evicted = m.counter_value("daemon.page.evicted");
  report.pages_expired = m.counter_value("daemon.page.expired");
  report.pages_unknown = m.counter_value("daemon.page.unknown_terminal");
  report.sla_violations = m.counter_value("daemon.page.sla_violation");
  // Evicted pages were counted `queued` when admitted, so they are
  // already inside `offered`; they join the failure numerator only.
  report.pages_offered = report.pages_queued + report.pages_duplicate +
                         report.pages_dropped + report.pages_unknown;
  if (report.pages_offered > 0) {
    report.drop_rate = double(report.pages_dropped + report.pages_evicted +
                              report.pages_expired + report.pages_unknown) /
                       double(report.pages_offered);
  }
  report.max_queue_depth = daemon.max_queue_depth();

  report.queue_delay_slots = daemon.delay_histogram();
  if (report.pages_served > 0) {
    double weighted = 0.0;
    for (std::size_t k = 0; k < report.queue_delay_slots.size(); ++k) {
      weighted += double(k) * double(report.queue_delay_slots[k]);
    }
    report.mean_queue_delay_slots = weighted / double(report.pages_served);
    auto percentile = [&](double quantile) {
      const double target = quantile * double(report.pages_served);
      std::int64_t cumulative = 0;
      for (std::size_t k = 0; k < report.queue_delay_slots.size(); ++k) {
        cumulative += report.queue_delay_slots[k];
        if (double(cumulative) >= target) return static_cast<int>(k);
      }
      return static_cast<int>(report.queue_delay_slots.size()) - 1;
    };
    report.delay_p50 = percentile(0.50);
    report.delay_p95 = percentile(0.95);
    report.delay_p99 = percentile(0.99);
    for (std::size_t k = 0; k < report.queue_delay_slots.size(); ++k) {
      if (report.queue_delay_slots[k] > 0) {
        report.delay_max = static_cast<int>(k);
      }
    }
  }

  report.socket_frames_in = m.counter_value("daemon.socket.frames_in");
  report.socket_frames_out = m.counter_value("daemon.socket.frames_out");
  report.socket_decode_errors =
      m.counter_value("daemon.socket.decode_errors");
  report.socket_rejected_ring_full =
      m.counter_value("daemon.socket.rejected_ring_full");
  report.socket_disconnects = m.counter_value("daemon.socket.disconnects");
  if (const obs::GaugeSample* outbox =
          m.find_gauge("daemon.socket.outbox_bytes")) {
    report.socket_outbox_bytes_hwm =
        static_cast<std::int64_t>(outbox->value);
  }

  const auto phase_mean = [&m](std::string_view name) {
    const obs::HistogramSample* hist = m.find_histogram(name);
    return hist == nullptr ? 0.0 : hist->mean();
  };
  report.phase_ingest_us = phase_mean("daemon.phase.ingest_us");
  report.phase_apply_us = phase_mean("daemon.phase.apply_us");
  report.phase_drain_us = phase_mean("daemon.phase.drain_us");
  report.phase_finalize_us = phase_mean("daemon.phase.finalize_us");

  const std::int64_t wall_ns = m.counter_value("daemon.run.wall_ns");
  if (wall_ns > 0) {
    report.run_wall_seconds = double(wall_ns) / 1e9;
    report.slots_per_sec =
        double(m.counter_value("daemon.slot.count")) / report.run_wall_seconds;
  }
  return report;
}

std::string to_json(const DaemonRunReport& report) {
  obs::JsonWriter json;
  json.begin_object();
  json.member("schema", "pcn.run_report.v1");
  json.member("kind", "daemon");
  json.key("config").begin_object();
  json.member("dimension", report.dimension);
  json.member("threads", report.threads);
  json.member("seed", std::uint64_t{report.seed});
  json.member("channels", report.channels);
  json.member("slots_per_message", report.slots_per_message);
  json.member("queue_max_pending",
              static_cast<std::int64_t>(report.queue_max_pending));
  json.member("queue_lifetime_slots", report.queue_lifetime_slots);
  json.member("queue_groups", report.queue_groups);
  json.member("queue_admission", report.queue_admission);
  json.member("sla_delay_slots", report.sla_delay_slots);
  json.end_object();
  json.key("plan").begin_object();
  json.member("mode", report.plan_mode);
  json.member("m_min", report.plan_m_min);
  json.member("m_max", report.plan_m_max);
  json.member("m_start", report.plan_m_start);
  json.member("effective_m", report.plan_effective_m);
  json.member("widen", report.plan_widen);
  json.member("narrow", report.plan_narrow);
  json.end_object();
  json.member("terminals", report.terminals);
  json.member("slots", report.slots);
  json.key("pages").begin_object();
  json.member("offered", report.pages_offered);
  json.member("queued", report.pages_queued);
  json.member("duplicate", report.pages_duplicate);
  json.member("served", report.pages_served);
  json.member("dropped", report.pages_dropped);
  json.member("evicted", report.pages_evicted);
  json.member("expired", report.pages_expired);
  json.member("unknown_terminal", report.pages_unknown);
  json.member("drop_rate", report.drop_rate);
  json.end_object();
  json.key("queue_delay_slots").begin_object();
  json.key("counts").begin_array();
  for (const std::int64_t count : report.queue_delay_slots) {
    json.value(count);
  }
  json.end_array();
  json.member("mean", report.mean_queue_delay_slots);
  json.member("p50", report.delay_p50);
  json.member("p95", report.delay_p95);
  json.member("p99", report.delay_p99);
  json.member("max", report.delay_max);
  json.end_object();
  json.key("sla").begin_object();
  json.member("bound_slots", report.sla_delay_slots);
  json.member("violations", report.sla_violations);
  json.end_object();
  json.key("queue").begin_object();
  json.member("max_depth", report.max_queue_depth);
  json.end_object();
  json.key("socket").begin_object();
  json.member("frames_in", report.socket_frames_in);
  json.member("frames_out", report.socket_frames_out);
  json.member("decode_errors", report.socket_decode_errors);
  json.member("rejected_ring_full", report.socket_rejected_ring_full);
  json.member("disconnects", report.socket_disconnects);
  json.member("outbox_bytes_hwm", report.socket_outbox_bytes_hwm);
  json.end_object();
  json.key("phase_us").begin_object();
  json.member("ingest", report.phase_ingest_us);
  json.member("apply", report.phase_apply_us);
  json.member("drain", report.phase_drain_us);
  json.member("finalize", report.phase_finalize_us);
  json.end_object();
  json.key("wall").begin_object();
  json.member("run_seconds", report.run_wall_seconds);
  json.end_object();
  json.key("throughput").begin_object();
  json.member("slots_per_sec", report.slots_per_sec);
  json.end_object();
  // Metrics snapshot, same shape as obs::to_json(MetricsSnapshot).
  json.key("metrics");
  json.begin_object();
  json.key("counters").begin_object();
  for (const obs::CounterSample& counter : report.metrics.counters) {
    json.member(counter.name, counter.value);
  }
  json.end_object();
  json.key("gauges").begin_object();
  for (const obs::GaugeSample& gauge : report.metrics.gauges) {
    json.member(gauge.name, gauge.value);
  }
  json.end_object();
  json.key("histograms").begin_object();
  for (const obs::HistogramSample& histogram : report.metrics.histograms) {
    json.key(histogram.name).begin_object();
    json.key("bounds").begin_array();
    for (const double bound : histogram.bounds) json.value(bound);
    json.end_array();
    json.key("counts").begin_array();
    for (const std::int64_t count : histogram.counts) json.value(count);
    json.end_array();
    json.member("count", histogram.count);
    json.member("sum", histogram.sum);
    json.end_object();
  }
  json.end_object();
  json.end_object();
  json.end_object();
  return json.take();
}

}  // namespace pcn::daemon
