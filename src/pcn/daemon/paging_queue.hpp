// Bounded per-cell paging queue, after the osmo-bts BTS paging model
// (see SNIPPETS.md: paging.h).  Each cell owns one queue; the daemon
// enqueues a page for a terminal whose center cell this is, and drains
// the queue against the cell's PagingCapacityModel budget each slot.
//
// The osmo-bts behaviors carried over:
//   * dedup on enqueue (`paging_add_identity` returns -EEXIST): a
//     terminal already queued is not enqueued twice — its lifetime is
//     refreshed instead, keeping its original FIFO position;
//   * backpressure (`paging_buffer_space`): the queue holds at most
//     `max_pending` pages; an enqueue beyond that is rejected — the
//     caller reports the drop, the queue never grows;
//   * paging groups: terminals hash into `groups` round-robin classes
//     (terminal_id % groups, the GSM paging-group idea), and the drain
//     rotates across non-empty groups so one chatty group cannot starve
//     the rest; within a group service is strictly FIFO;
//   * lifetime expiry (`paging_lifetime`): a page not served within
//     `lifetime_slots` of its enqueue is discarded at drain time and
//     reported as expired, never served.
//
// The queue itself is single-threaded by design — pcnd partitions cells
// into fixed shards and each shard is touched by exactly one worker per
// slot, so no lock is needed here and results cannot depend on thread
// interleaving.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "pcn/common/error.hpp"

namespace pcn::daemon {

/// What a full queue does with a new identity.
enum class AdmissionPolicy : std::uint8_t {
  /// Reject the incoming page (classic tail drop; the osmo behavior).
  kDropNewest = 0,
  /// Evict the oldest pending page — the head of the group whose head
  /// has been waiting longest — and admit the incoming one.
  kDropOldest = 1,
  /// Evict the pending page with the most remaining SLA slack (the
  /// latest deadline), provided it has at least as much slack as the
  /// incoming page; otherwise reject the incoming page.
  kPriorityDelayBound = 2,
};

inline const char* to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kDropNewest:
      return "drop_newest";
    case AdmissionPolicy::kDropOldest:
      return "drop_oldest";
    case AdmissionPolicy::kPriorityDelayBound:
      return "priority_delay_bound";
  }
  return "?";
}

struct PagingQueueConfig {
  /// Upper bound on pages pending in this cell (osmo num_paging_max).
  std::size_t max_pending = 64;
  /// Slots a page may wait before it expires unserved (osmo
  /// paging_lifetime).  A page enqueued in slot s is servable through
  /// slot s + lifetime_slots.
  std::int64_t lifetime_slots = 128;
  /// Round-robin paging groups; terminal_id % groups picks the group.
  int groups = 4;
  /// Full-queue behavior for a new identity.
  AdmissionPolicy admission = AdmissionPolicy::kDropNewest;
  /// Delay bound used to compute per-page deadlines for the priority
  /// policy.  0 means "no SLA": deadlines coincide with lifetime expiry.
  std::int64_t sla_delay_slots = 0;
};

/// One page waiting on the cell's paging channel.
struct PendingPage {
  std::uint64_t terminal_id = 0;
  std::uint64_t page_id = 0;
  std::uint32_t client = 0;        ///< outcome routing (0 = in-process)
  std::int64_t enqueued_slot = 0;
  std::int64_t expiry_slot = 0;    ///< last slot the page may be served in
  std::int64_t deadline_slot = 0;  ///< SLA deadline (priority eviction rank)
};

/// A page the drain put on the paging channel.
struct ServedPage {
  PendingPage page;
  std::int64_t served_slot = 0;
  std::size_t depth_before = 0;  ///< queue depth at serve time, incl. itself
};

enum class EnqueueResult : std::uint8_t {
  kQueued = 0,     ///< accepted; a new entry joined the queue
  kRefreshed = 1,  ///< duplicate identity; existing entry's lifetime renewed
  kFull = 2,       ///< rejected; the queue is at max_pending
  kEvicted = 3,    ///< accepted; an existing entry was evicted to make room
};

class BoundedPagingQueue {
 public:
  explicit BoundedPagingQueue(const PagingQueueConfig& config);

  const PagingQueueConfig& config() const { return config_; }

  /// Pages currently pending (including not-yet-swept expired entries).
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Remaining capacity before enqueues are rejected.
  std::size_t buffer_space() const { return config_.max_pending - size_; }

  /// Whether `terminal_id` already has a page pending.
  bool contains(std::uint64_t terminal_id) const;

  /// Enqueues a page observed in slot `slot`.  A terminal already pending
  /// is deduplicated: its expiry is refreshed (and the stored page/client
  /// keep their original values and FIFO position), result kRefreshed.
  /// On a full queue the configured AdmissionPolicy decides: kDropNewest
  /// rejects (kFull); kDropOldest and kPriorityDelayBound may instead
  /// evict a pending page — the victim is copied to `*evicted` and the
  /// result is kEvicted.  `evicted` may be null only under kDropNewest.
  EnqueueResult add(const PendingPage& page, PendingPage* evicted = nullptr);

  /// Serves up to `budget` pages in slot `slot`: rotates across groups
  /// (continuing from where the previous drain stopped), FIFO within a
  /// group.  Expired entries encountered at the head of a group are moved
  /// to `expired` without consuming budget and are never served.  Served
  /// pages append to `served` with their depth-before-drain.  Returns the
  /// number of pages served.
  int drain(std::int64_t slot, int budget, std::vector<ServedPage>* served,
            std::vector<PendingPage>* expired);

 private:
  std::int64_t deadline_for(std::int64_t enqueued_slot) const;
  bool evict_oldest(PendingPage* evicted);
  bool evict_most_slack(std::int64_t incoming_deadline, PendingPage* evicted);

  int group_of(std::uint64_t terminal_id) const {
    return static_cast<int>(terminal_id %
                            static_cast<std::uint64_t>(config_.groups));
  }

  PagingQueueConfig config_;
  std::vector<std::deque<PendingPage>> groups_;
  std::size_t size_ = 0;
  int next_group_ = 0;  ///< where the next drain starts its rotation
};

}  // namespace pcn::daemon
