// Run report for a pcnd run: schema `pcn.run_report.v1` with
// `"kind": "daemon"`, so the same consumers (tools/bench_compare.py,
// jq pipelines, tests) read simulator and daemon reports alike.
//
// The daemon-specific sections:
//   * `pages` — offered / queued / duplicate / served / dropped /
//     expired / unknown_terminal counts, and `drop_rate` = the fraction
//     of offered pages that never reached the paging channel
//     ((dropped + evicted + expired + unknown) / offered) — the overload
//     headline; `evicted` counts pages an admission policy displaced
//     after they had been queued;
//   * `queue_delay_slots` — exact per-slot delay distribution of served
//     pages with mean/p50/p95/p99/max (percentiles over served pages);
//   * `sla` — the configured delay bound and total violations (served
//     late + dropped + expired + unknown);
//   * `queue` — config echo plus the deepest queue ever observed;
//   * `socket` — front-end health (frames in/out, decode errors,
//     ring-full rejections, disconnects, staged-outbox high watermark);
//     all zero when no socket front end was attached;
//   * `phase_us` — mean per-slot barrier-phase times from the
//     daemon.phase.* histograms (0 until a slot has run).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pcn/daemon/daemon.hpp"

namespace pcn::daemon {

struct DaemonRunReport {
  // Config echo.
  std::string dimension;
  int threads = 1;
  std::uint64_t seed = 0;  ///< workload seed (0 when no workload attached)
  int channels = 0;
  double slots_per_message = 1.0;
  std::size_t queue_max_pending = 0;
  std::int64_t queue_lifetime_slots = 0;
  int queue_groups = 0;
  std::string queue_admission;
  int sla_delay_slots = 0;

  // Delay-feedback planner ("off" = legacy open-loop budget).
  std::string plan_mode;
  int plan_m_min = 0;
  int plan_m_max = 0;
  int plan_m_start = 0;
  int plan_effective_m = 0;
  std::int64_t plan_widen = 0;
  std::int64_t plan_narrow = 0;

  std::int64_t slots = 0;
  std::int64_t terminals = 0;

  // Page accounting (offered = queued + duplicate + dropped + unknown).
  std::int64_t pages_offered = 0;
  std::int64_t pages_queued = 0;
  std::int64_t pages_duplicate = 0;
  std::int64_t pages_served = 0;
  std::int64_t pages_dropped = 0;
  std::int64_t pages_evicted = 0;
  std::int64_t pages_expired = 0;
  std::int64_t pages_unknown = 0;
  double drop_rate = 0.0;

  // Served-page queueing delay, exact per-slot counts (index = slots).
  std::vector<std::int64_t> queue_delay_slots;
  double mean_queue_delay_slots = 0.0;
  int delay_p50 = 0;
  int delay_p95 = 0;
  int delay_p99 = 0;
  int delay_max = 0;

  std::int64_t sla_violations = 0;
  std::int64_t max_queue_depth = 0;

  // Socket front-end health (all zero without a SocketServer attached).
  std::int64_t socket_frames_in = 0;
  std::int64_t socket_frames_out = 0;
  std::int64_t socket_decode_errors = 0;
  std::int64_t socket_rejected_ring_full = 0;
  std::int64_t socket_disconnects = 0;
  std::int64_t socket_outbox_bytes_hwm = 0;

  // Mean per-slot barrier-phase times, microseconds.
  double phase_ingest_us = 0.0;
  double phase_apply_us = 0.0;
  double phase_drain_us = 0.0;
  double phase_finalize_us = 0.0;

  double run_wall_seconds = 0.0;
  double slots_per_sec = 0.0;

  obs::MetricsSnapshot metrics;
};

/// Builds the report from a daemon after run_slots returned.  `seed` and
/// `terminals` describe the workload (pass 0 when not applicable).
DaemonRunReport make_daemon_report(const Pcnd& daemon, std::uint64_t seed,
                                   std::int64_t terminals);

/// Serializes the report (schema pcn.run_report.v1, kind "daemon").
std::string to_json(const DaemonRunReport& report);

}  // namespace pcn::daemon
