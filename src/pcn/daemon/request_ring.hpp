// Lock-free bounded request ring: the in-process front door of pcnd.
//
// Producers (socket readers, load generators, test threads) push
// DaemonRequest values concurrently; the daemon drains the ring exactly
// once per slot, at a barrier, on a single thread.  The ring is the
// classic bounded MPMC sequence queue (Vyukov): each cell carries a
// sequence counter whose distance from the head/tail ticket says whether
// the cell is free, full, or in flight.  Both push and pop are a single
// CAS/fetch-add plus two relaxed-ish atomic ops — no locks, no dynamic
// allocation after construction.
//
// A full ring rejects the push (try_push returns false) instead of
// blocking: backpressure is a counted, reported event
// (daemon.request.rejected_ring_full), never a stall of the air-interface
// front end.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "pcn/common/error.hpp"
#include "pcn/proto/messages.hpp"

namespace pcn::daemon {

/// One queued request.  A tagged struct rather than a class hierarchy so
/// the ring can store requests by value: the socket front end decodes a
/// proto frame into exactly this struct, and in-process producers (tests,
/// load generators) build it directly — one request shape for both paths.
struct DaemonRequest {
  enum class Kind : std::uint8_t { kUpdate = 0, kPage = 1 };

  Kind kind = Kind::kUpdate;
  /// Socket connection that wants the PageOutcome routed back; 0 means
  /// in-process (no response frame).
  std::uint32_t client = 0;

  /// kind == kUpdate payload.
  proto::LocationUpdate update{};

  /// kind == kPage payload.
  std::uint64_t page_id = 0;
  std::uint64_t terminal_id = 0;
};

/// Bounded multi-producer ring of DaemonRequest.  Capacity is rounded up
/// to a power of two.  try_pop is safe from multiple threads too, but
/// pcnd only ever drains from one thread at a barrier.
class RequestRing {
 public:
  explicit RequestRing(std::size_t min_capacity) {
    std::size_t capacity = 2;  // the smallest ring that can make progress
    while (capacity < min_capacity) capacity <<= 1;
    cells_ = std::vector<Cell>(capacity);
    mask_ = capacity - 1;
    for (std::size_t i = 0; i < capacity; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  RequestRing(const RequestRing&) = delete;
  RequestRing& operator=(const RequestRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Enqueues; returns false when the ring is full (request dropped by
  /// the caller, who counts it).
  bool try_push(const DaemonRequest& request) {
    std::size_t ticket = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[ticket & mask_];
      const std::size_t sequence = cell.sequence.load(std::memory_order_acquire);
      const auto delta = static_cast<std::intptr_t>(sequence) -
                         static_cast<std::intptr_t>(ticket);
      if (delta == 0) {
        if (head_.compare_exchange_weak(ticket, ticket + 1,
                                        std::memory_order_relaxed)) {
          cell.value = request;
          cell.sequence.store(ticket + 1, std::memory_order_release);
          return true;
        }
      } else if (delta < 0) {
        return false;  // lapped: the cell still holds an unconsumed value
      } else {
        ticket = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Dequeues into *out; returns false when the ring is empty.
  bool try_pop(DaemonRequest* out) {
    std::size_t ticket = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[ticket & mask_];
      const std::size_t sequence = cell.sequence.load(std::memory_order_acquire);
      const auto delta = static_cast<std::intptr_t>(sequence) -
                         static_cast<std::intptr_t>(ticket + 1);
      if (delta == 0) {
        if (tail_.compare_exchange_weak(ticket, ticket + 1,
                                        std::memory_order_relaxed)) {
          *out = cell.value;
          cell.sequence.store(ticket + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (delta < 0) {
        return false;  // empty
      } else {
        ticket = tail_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    DaemonRequest value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer ticket
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer ticket
};

}  // namespace pcn::daemon
