// pcnd — the location-server daemon core.
//
// A long-running server for the paper's location-management plane with the
// one thing the paper assumes away: a *capacity-bounded* paging channel.
// Clients submit LocationUpdate and PageSubmit requests (through the
// lock-free RequestRing in-process, or the Unix-socket front end in
// socket_server.hpp, which decodes proto frames into the same request
// structs); the daemon maintains the per-terminal center-cell DB and a
// bounded per-cell paging queue (paging_queue.hpp), drained each slot
// against the cell's PagingCapacityModel budget.
//
// Determinism contract.  Served/dropped/expired counters, queueing-delay
// histograms, run reports, and (sampled) flight recordings are
// bit-identical at any worker-thread count, given the same per-slot
// request sets.  The design that buys this:
//
//   * Two fixed shard counts, independent of the thread count: terminal
//     state lives in `terminal_shards` maps keyed by terminal_id mod the
//     shard count, and cell queues live in `queue_shards` maps keyed by a
//     cell hash.  Threads own shards (shard s -> worker s % T), never
//     split them.
//   * A slot is three barrier-separated phases.  INGEST (serial, in the
//     barrier completion): drain the ring once, stable-sort the batch by
//     (terminal, kind, sequence, page), bucket per terminal shard.
//     APPLY (parallel over terminal shards): apply updates in sorted
//     order, route page submits to per-(terminal-shard, queue-shard)
//     intent lists; the attached SlotWorkload generates its shard's
//     traffic here, after the ring batch, in terminal-id order.  DRAIN
//     (parallel over queue shards): enqueue intents in terminal-shard
//     order 0..S-1 — an order no thread count can perturb — then drain
//     every queue against the slot budget.
//   * Per-shard metric cells (MetricsRegistry) and per-shard flight/
//     outcome buffers, merged at the slot barrier in shard order.
//
// The daemon never blocks a producer: a full ring rejects the push and
// the rejection is counted (daemon.request.rejected_ring_full).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "pcn/capacity/paging_capacity.hpp"
#include "pcn/common/params.hpp"
#include "pcn/daemon/delay_planner.hpp"
#include "pcn/daemon/paging_queue.hpp"
#include "pcn/daemon/request_ring.hpp"
#include "pcn/geometry/cell.hpp"
#include "pcn/obs/flight_recorder.hpp"
#include "pcn/obs/metrics.hpp"
#include "pcn/obs/timeseries.hpp"

namespace pcn::daemon {

struct PcndConfig {
  Dimension dimension = Dimension::kTwoD;
  /// Worker threads for the slot loop (results identical at any value).
  int threads = 1;
  /// Fixed shard counts — the determinism domain, NOT the thread count.
  int terminal_shards = 16;
  int queue_shards = 16;
  /// Request ring capacity (rounded up to a power of two).
  std::size_t ring_capacity = std::size_t{1} << 16;
  /// Per-cell paging-channel capacity.
  capacity::PagingCapacityModel capacity{2, 1.0};
  /// Per-cell bounded-queue parameters (admission policy included; the
  /// queue's sla_delay_slots is overwritten with the daemon's below).
  PagingQueueConfig queue{};
  /// Queueing-delay SLA in slots; a served page waiting longer counts as
  /// a violation.  0 = no bound (drops/expiries still violate).
  int sla_delay_slots = 0;
  /// Paging-delay-bound planner (off = legacy open-loop budget).
  DelayPlanConfig plan{};
  /// Keep PageOutcome events for drain_outcomes() (the socket front end
  /// and tests want them; the closed-loop bench does not).
  bool collect_outcomes = false;
  /// Walk the queue shards in FINALIZE and publish live occupancy
  /// (total pending, cells with pending pages, top-K deepest cells) for
  /// live_queue_stats() and the admin endpoint.  Read-only over queue
  /// state, so the determinism contract is unaffected; the walk runs
  /// every LiveQueueStats::kStrideSlots-th slot plus the last slot of
  /// each run_slots call, so its cost amortizes to noise in batch runs.
  bool live_stats = false;
  /// Flight recording of page lifecycle events (sampled by page id).
  bool record_flight = false;
  std::uint64_t flight_sample_every = 8;
  std::size_t flight_shard_capacity = std::size_t{1} << 16;
  /// Run-timeline capture: sample the metrics registry into a
  /// pcn.timeseries.v1 recording every N slots (0 = off).  Sampling runs
  /// in the serial FINALIZE step at slot boundaries, so the captured
  /// history is bit-identical at any thread count.  Every run's last slot
  /// is also sampled; under serve-style run_slots(1) cadence that means
  /// one sample per slot, which is why the recording is ring-bounded.
  std::int64_t timeseries_every_slots = 0;
  /// Most recent samples retained (live tail ring); 0 = unbounded.
  std::size_t timeseries_max_samples = 4096;
};

/// Verdict for one submitted page, mirrored onto proto::PageOutcome by
/// the socket front end.
struct PageOutcomeEvent {
  std::uint64_t page_id = 0;
  std::uint64_t terminal_id = 0;
  proto::PageOutcomeKind kind = proto::PageOutcomeKind::kServed;
  std::int64_t queue_delay_slots = 0;
  std::uint32_t queue_depth = 0;
  std::int64_t slot = 0;          ///< slot the verdict was reached in
  std::uint32_t client = 0;       ///< 0 = in-process submitter
};

class Pcnd;
class SlotWorkload;

/// Point-in-time paging-queue occupancy published from the serial
/// FINALIZE step when PcndConfig::live_stats is on — every
/// kStrideSlots-th slot and always on the last slot of a run, so the
/// walk's cost amortizes to noise while staying far fresher than any
/// scrape cadence.  `deepest` holds up to kTopCells cells ordered by
/// depth descending (ties broken by cell coordinates, so the list is
/// identical at any thread count).
struct LiveQueueStats {
  static constexpr std::size_t kTopCells = 8;
  static constexpr std::int64_t kStrideSlots = 16;
  struct CellDepth {
    geometry::Cell cell{};
    std::int64_t depth = 0;
  };
  std::int64_t slot = 0;            ///< slot the walk ran after
  std::int64_t total_pending = 0;   ///< pages pending across all queues
  std::int64_t cells_pending = 0;   ///< cells with >= 1 pending page
  std::int64_t max_depth_ever = 0;  ///< lifetime high watermark
  std::vector<CellDepth> deepest;
};

namespace detail {

/// Consecutive-submit tracker: gives repeated page submits of one
/// terminal within a slot distinct flight-event seq values.
struct SeqTracker {
  std::uint64_t last_terminal = ~std::uint64_t{0};
  std::uint32_t run = 0;
  std::uint32_t next(std::uint64_t terminal_id) {
    run = (terminal_id == last_terminal) ? run + 1 : 0;
    last_terminal = terminal_id;
    return run;
  }
};

}  // namespace detail

/// Valid only inside an APPLY phase; routes workload-generated requests
/// through exactly the code paths ring requests take.
class RequestSink {
 public:
  void update(const proto::LocationUpdate& update);
  void page(std::uint64_t page_id, std::uint64_t terminal_id);

 private:
  friend class Pcnd;
  RequestSink(Pcnd* daemon, int shard, std::int64_t slot,
              SlotWorkload* workload)
      : daemon_(daemon), shard_(shard), slot_(slot), workload_(workload) {}
  Pcnd* daemon_;
  int shard_;  ///< terminal shard this sink feeds
  std::int64_t slot_;
  SlotWorkload* workload_;
  detail::SeqTracker tracker_;
};

/// A closed-loop traffic source driven from inside the slot loop.
/// `generate` is called once per (terminal shard, slot) from that shard's
/// worker; it must only touch terminals t with t % shard_count == shard
/// and emit their requests in increasing terminal id.  `on_outcome` is
/// called from the phase that settles the page; with at most one page in
/// flight per terminal (which `generate` should maintain — it is what
/// closed-loop means) the calls for one terminal never race.
class SlotWorkload {
 public:
  virtual ~SlotWorkload() = default;
  virtual void generate(int shard, int shard_count, std::int64_t slot,
                        RequestSink& sink) = 0;
  virtual void on_outcome(std::uint64_t terminal_id,
                          proto::PageOutcomeKind kind, std::int64_t slot) = 0;
};

class Pcnd {
 public:
  explicit Pcnd(const PcndConfig& config);
  ~Pcnd();

  Pcnd(const Pcnd&) = delete;
  Pcnd& operator=(const Pcnd&) = delete;

  const PcndConfig& config() const { return config_; }

  /// Thread-safe, lock-free enqueue; false = ring full (request dropped
  /// and counted).  Takes effect at the next slot's INGEST.
  bool submit(const DaemonRequest& request);

  /// Runs `slots` slots of the ingest/apply/drain loop, with `workload`
  /// (may be null) generating in-loop traffic.
  void run_slots(std::int64_t slots, SlotWorkload* workload = nullptr);

  /// Next slot to be processed (slots completed so far).
  std::int64_t now() const { return slot_; }

  obs::MetricsRegistry& metrics_registry() { return registry_; }
  const obs::MetricsRegistry& metrics_registry() const { return registry_; }
  const obs::FlightRecorder* flight_recorder() const {
    return recorder_.get();
  }

  /// Moves every settled PageOutcomeEvent (requires collect_outcomes).
  void drain_outcomes(std::vector<PageOutcomeEvent>* out);

  /// Exact queueing-delay distribution of served pages: histogram[k] =
  /// pages served after waiting exactly k slots.
  std::vector<std::int64_t> delay_histogram() const;

  // --- introspection (not thread-safe against run_slots) ---
  std::size_t terminal_count() const;
  struct TerminalInfo {
    bool known = false;
    geometry::Cell center{};
    std::uint64_t sequence = 0;
    std::uint32_t radius = 0;
  };
  TerminalInfo terminal_info(std::uint64_t terminal_id) const;
  /// Pending pages in `cell`'s queue (0 when the cell has no queue yet).
  std::int64_t queue_depth(geometry::Cell cell) const;
  /// Largest queue depth ever observed after an enqueue.
  std::int64_t max_queue_depth() const { return max_depth_ever_; }

  /// The delay-feedback planner (nullptr when config().plan.mode is
  /// kOff).  Not thread-safe against run_slots.
  const DelayFeedbackPlanner* planner() const { return planner_.get(); }

  /// Copy of the most recent FINALIZE occupancy walk.  Thread-safe against
  /// a concurrent run_slots; all-zero until the first slot completes with
  /// config().live_stats set.
  LiveQueueStats live_queue_stats() const;

  /// The run-timeline recorder (nullptr unless timeseries_every_slots
  /// > 0).  Not thread-safe against run_slots; use timeseries_encoded()
  /// for live access.
  const obs::TimeseriesRecorder* timeseries() const {
    return timeseries_.get();
  }
  /// Thread-safe pcn.timeseries.v1 encoding of the capture so far (the
  /// admin `series` verb streams this).  An empty-timeline encoding when
  /// capture is off.
  std::string timeseries_encoded() const;

 private:
  friend class RequestSink;

  struct TerminalState {
    geometry::Cell center{};
    std::uint64_t sequence = 0;
    std::uint32_t radius = 0;
  };

  struct PageIntent {
    geometry::Cell cell{};
    std::uint64_t terminal_id = 0;
    std::uint64_t page_id = 0;
    std::uint32_t client = 0;
  };

  struct CellHash {
    std::size_t operator()(const geometry::Cell& cell) const noexcept {
      return geometry::HexCellHash{}(cell);
    }
  };

  /// One cell's served pages for the slot, staged for the planner's
  /// serial FINALIZE fold.
  struct CellServeSample {
    geometry::Cell cell{};
    std::int64_t served = 0;
    std::int64_t delay_sum = 0;
  };

  struct QueueShard {
    std::unordered_map<geometry::Cell, BoundedPagingQueue, CellHash> queues;
    std::vector<ServedPage> served_scratch;
    std::vector<PendingPage> expired_scratch;
    std::vector<PageOutcomeEvent> outcomes;
    std::vector<CellServeSample> planner_samples;
    std::vector<std::int64_t> delay_hist;  ///< dense, index = delay slots
    std::int64_t max_depth = 0;
  };

  int terminal_shard_of(std::uint64_t terminal_id) const {
    return static_cast<int>(
        terminal_id % static_cast<std::uint64_t>(config_.terminal_shards));
  }
  int queue_shard_of(geometry::Cell cell) const {
    return static_cast<int>(CellHash{}(cell) %
                            static_cast<std::size_t>(config_.queue_shards));
  }

  void ingest_phase();
  void apply_phase(int worker, int worker_count, std::int64_t slot,
                   SlotWorkload* workload);
  void drain_phase(int worker, int worker_count, std::int64_t slot,
                   SlotWorkload* workload);
  void finalize_phase();

  void apply_update(int shard, const proto::LocationUpdate& update);
  void apply_page(int shard, std::int64_t slot, std::uint64_t page_id,
                  std::uint64_t terminal_id, std::uint32_t client,
                  SlotWorkload* workload, detail::SeqTracker* tracker);

  void record_page_event(int recorder_shard, obs::FlightEventType type,
                         std::int64_t slot, std::uint64_t terminal_id,
                         std::uint64_t page_id, std::uint32_t seq,
                         std::int32_t cycle, std::int64_t cells,
                         std::int64_t distance, bool found);

  PcndConfig config_;
  RequestRing ring_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<DelayFeedbackPlanner> planner_;
  /// Planner adjustment totals already mirrored onto the counters.
  std::int64_t published_widens_ = 0;
  std::int64_t published_narrows_ = 0;

  std::vector<std::unordered_map<std::uint64_t, TerminalState>> terminals_;
  /// intents_[terminal_shard][queue_shard]: pages routed this slot.
  std::vector<std::vector<std::vector<PageIntent>>> intents_;
  std::vector<QueueShard> queue_shards_;
  /// Unknown-terminal drop outcomes produced in APPLY, per terminal shard.
  std::vector<std::vector<PageOutcomeEvent>> apply_outcomes_;

  std::vector<DaemonRequest> batch_;                   ///< sorted ingest
  std::vector<std::vector<std::size_t>> shard_batch_;  ///< [ts] -> batch idx

  std::int64_t slot_ = 0;
  int slot_budget_ = 0;  ///< capacity budget for the slot in flight
  std::int64_t max_depth_ever_ = 0;
  /// Last slot of the run_slots call in flight; FINALIZE always
  /// publishes live stats for it, stride or not.
  std::int64_t run_last_slot_ = -1;

  std::mutex outcomes_mutex_;
  std::deque<PageOutcomeEvent> outcomes_;

  /// Run-timeline capture, written only from the serial FINALIZE step
  /// (and the run_slots prologue) under timeseries_mutex_, so the admin
  /// thread can encode a consistent copy mid-run.
  std::unique_ptr<obs::TimeseriesRecorder> timeseries_;
  mutable std::mutex timeseries_mutex_;

  mutable std::mutex live_stats_mutex_;
  LiveQueueStats live_stats_;
  /// Publish builds into these reused buffers and swaps with
  /// live_stats_, keeping the walk allocation-free in steady state.
  LiveQueueStats live_stats_publish_scratch_;
  std::vector<LiveQueueStats::CellDepth> live_stats_scratch_;

  // Metric handles (resolved once; per-shard cells keep workers apart).
  obs::Counter requests_update_;
  obs::Counter requests_page_;
  obs::Counter requests_rejected_;
  obs::Counter updates_applied_;
  obs::Counter updates_stale_;
  obs::Counter pages_queued_;
  obs::Counter pages_duplicate_;
  obs::Counter pages_dropped_;
  obs::Counter pages_evicted_;
  obs::Counter pages_expired_;
  obs::Counter pages_served_;
  obs::Counter pages_unknown_;
  obs::Counter sla_violations_;
  obs::Counter slots_run_;
  obs::Counter wall_ns_;
  obs::Counter plan_widen_;
  obs::Counter plan_narrow_;
  obs::Gauge plan_m_gauge_;
  obs::Gauge max_depth_gauge_;
  obs::Gauge pending_gauge_;
  obs::Gauge cells_pending_gauge_;
  obs::Histogram delay_hist_;
  obs::Histogram depth_hist_;
  // Per-slot barrier-phase timing (serialized TSC, microseconds).  These
  // are histograms, not counters, so the determinism fingerprint over
  // counters is untouched by wall-clock jitter.
  obs::Histogram phase_ingest_;
  obs::Histogram phase_apply_;
  obs::Histogram phase_drain_;
  obs::Histogram phase_finalize_;
};

}  // namespace pcn::daemon
