#include "pcn/daemon/delay_planner.hpp"

#include <algorithm>
#include <cmath>

namespace pcn::daemon {

DelayFeedbackPlanner::DelayFeedbackPlanner(
    const DelayPlanConfig& config,
    const capacity::PagingCapacityModel& capacity, std::int64_t sla_delay_slots)
    : config_(config), capacity_(capacity), sla_delay_slots_(sla_delay_slots) {
  PCN_EXPECT(config_.mode != DelayPlanConfig::Mode::kOff,
             "DelayFeedbackPlanner: construct only when a plan mode is on");
  PCN_EXPECT(config_.m_min >= 1, "DelayFeedbackPlanner: m_min must be >= 1");
  PCN_EXPECT(config_.m_max >= config_.m_min,
             "DelayFeedbackPlanner: m_max must be >= m_min");
  PCN_EXPECT(config_.adjust_every_slots >= 1,
             "DelayFeedbackPlanner: adjust_every_slots must be >= 1");
  PCN_EXPECT(config_.ewma_shift >= 0 && config_.ewma_shift <= 16,
             "DelayFeedbackPlanner: ewma_shift must be in [0, 16]");
  if (config_.mode == DelayPlanConfig::Mode::kFeedback) {
    PCN_EXPECT(sla_delay_slots_ > 0,
               "DelayFeedbackPlanner: feedback mode needs sla_delay_slots > 0 "
               "(the EWMA is compared against it)");
  }
  m_ = std::clamp(config_.m_start, config_.m_min, config_.m_max);
}

std::int64_t DelayFeedbackPlanner::cell_ewma_q16(geometry::Cell cell) const {
  const auto it = cell_ewma_q16_.find(cell);
  return it == cell_ewma_q16_.end() ? 0 : it->second;
}

int DelayFeedbackPlanner::budget_for_slot(std::int64_t slot) {
  (void)slot;  // the accumulator carries all cross-slot state
  budget_acc_ += capacity_.pages_per_slot() * factor_of(m_);
  const int budget = static_cast<int>(std::floor(budget_acc_));
  budget_acc_ -= budget;
  return budget;
}

void DelayFeedbackPlanner::observe_cell(geometry::Cell cell,
                                        std::int64_t served,
                                        std::int64_t delay_sum_slots) {
  if (served <= 0) return;
  slot_served_ += served;
  slot_delay_sum_ += delay_sum_slots;
  const std::int64_t mean_q16 = (delay_sum_slots << 16) / served;
  std::int64_t& ewma = cell_ewma_q16_[cell];
  ewma = ewma_step(ewma, mean_q16, config_.ewma_shift);
}

void DelayFeedbackPlanner::end_slot(std::int64_t slot) {
  if (slot_served_ > 0) {
    const std::int64_t mean_q16 = (slot_delay_sum_ << 16) / slot_served_;
    global_ewma_q16_ =
        ewma_step(global_ewma_q16_, mean_q16, config_.ewma_shift);
  }
  slot_served_ = 0;
  slot_delay_sum_ = 0;
  if (config_.mode != DelayPlanConfig::Mode::kFeedback) return;
  if ((slot + 1) % config_.adjust_every_slots != 0) return;
  // Thresholds off the daemon SLA: above a quarter of the bound the
  // queue is eating the delay budget (served delays are survivor-biased
  // low — pages dropped or evicted never report one) — widen m for
  // cheaper pages and a faster drain; below a sixteenth there is clear
  // headroom — narrow m back toward fast per-call paging.  The 4x dead
  // band between them stops hunting.
  const std::int64_t high_q16 = (sla_delay_slots_ << 16) / 4;
  const std::int64_t low_q16 = (sla_delay_slots_ << 16) / 16;
  if (global_ewma_q16_ > high_q16 && m_ < config_.m_max) {
    ++m_;
    ++widens_;
  } else if (global_ewma_q16_ < low_q16 && m_ > config_.m_min) {
    --m_;
    ++narrows_;
  }
}

}  // namespace pcn::daemon
