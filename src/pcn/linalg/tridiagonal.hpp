// Thomas algorithm for tridiagonal linear systems.
//
// The distance Markov chain is a birth-death chain plus a reset column, so
// its balance system is "tridiagonal + one dense row".  The tridiagonal
// solver handles the pure birth-death part and is used in tests as a third
// independent check on the steady-state solvers.
#pragma once

#include <vector>

namespace pcn::linalg {

/// Solves the n x n tridiagonal system with sub-diagonal `lower` (n-1),
/// diagonal `diag` (n), super-diagonal `upper` (n-1) and right-hand side
/// `rhs` (n) by the Thomas algorithm.  Throws InvalidArgument on size
/// mismatch or a zero pivot (the algorithm does not pivot; the chains we
/// solve are diagonally dominant).
std::vector<double> solve_tridiagonal(const std::vector<double>& lower,
                                      const std::vector<double>& diag,
                                      const std::vector<double>& upper,
                                      const std::vector<double>& rhs);

}  // namespace pcn::linalg
