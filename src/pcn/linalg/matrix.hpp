// Minimal dense-matrix type used by the global-balance steady-state solver.
//
// The Markov chains in this library are small (state count = threshold
// distance + 1, rarely above a few hundred), so a straightforward row-major
// dense matrix with an O(n³) LU solve is both sufficient and an independent
// cross-check for the O(n) specialized solvers.
#pragma once

#include <cstddef>
#include <vector>

namespace pcn::linalg {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t row, std::size_t col);
  double at(std::size_t row, std::size_t col) const;

  /// Matrix product; dimensions must agree.
  Matrix multiply(const Matrix& rhs) const;

  /// Transposed copy.
  Matrix transposed() const;

  /// Max-absolute-entry norm.
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace pcn::linalg
