// LU decomposition with partial pivoting and linear solves.
#pragma once

#include <vector>

#include "pcn/linalg/matrix.hpp"

namespace pcn::linalg {

/// Solves A x = b by LU with partial pivoting.  A must be square and
/// nonsingular (throws InvalidArgument otherwise).
std::vector<double> lu_solve(Matrix a, std::vector<double> b);

/// Solves the stationary distribution πP = π, Σπ = 1 of a row-stochastic
/// matrix P by replacing one balance equation with the normalization row.
/// P must be square; rows need not sum exactly to 1 (self-loop mass is
/// inferred), but off-diagonal entries must be >= 0.
std::vector<double> stationary_distribution(const Matrix& transition);

}  // namespace pcn::linalg
