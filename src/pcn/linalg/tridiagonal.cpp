#include "pcn/linalg/tridiagonal.hpp"

#include <cmath>

#include "pcn/common/error.hpp"

namespace pcn::linalg {

std::vector<double> solve_tridiagonal(const std::vector<double>& lower,
                                      const std::vector<double>& diag,
                                      const std::vector<double>& upper,
                                      const std::vector<double>& rhs) {
  const std::size_t n = diag.size();
  PCN_EXPECT(n > 0, "solve_tridiagonal: empty system");
  PCN_EXPECT(lower.size() == n - 1 && upper.size() == n - 1 && rhs.size() == n,
             "solve_tridiagonal: band size mismatch");

  std::vector<double> c_prime(n - 1, 0.0);
  std::vector<double> d_prime(n, 0.0);

  PCN_EXPECT(diag[0] != 0.0, "solve_tridiagonal: zero pivot");
  if (n > 1) c_prime[0] = upper[0] / diag[0];
  d_prime[0] = rhs[0] / diag[0];

  for (std::size_t i = 1; i < n; ++i) {
    const double denom = diag[i] - lower[i - 1] * c_prime[i - 1];
    PCN_EXPECT(std::fabs(denom) > 0.0, "solve_tridiagonal: zero pivot");
    if (i < n - 1) c_prime[i] = upper[i] / denom;
    d_prime[i] = (rhs[i] - lower[i - 1] * d_prime[i - 1]) / denom;
  }

  std::vector<double> x(n, 0.0);
  x[n - 1] = d_prime[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    x[i] = d_prime[i] - c_prime[i] * x[i + 1];
  }
  return x;
}

}  // namespace pcn::linalg
