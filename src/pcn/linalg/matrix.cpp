#include "pcn/linalg/matrix.hpp"

#include <cmath>

#include "pcn/common/error.hpp"

namespace pcn::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye.at(i, i) = 1.0;
  return eye;
}

double& Matrix::at(std::size_t row, std::size_t col) {
  PCN_EXPECT(row < rows_ && col < cols_, "Matrix::at: index out of range");
  return data_[row * cols_ + col];
}

double Matrix::at(std::size_t row, std::size_t col) const {
  PCN_EXPECT(row < rows_ && col < cols_, "Matrix::at: index out of range");
  return data_[row * cols_ + col];
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  PCN_EXPECT(cols_ == rhs.rows_, "Matrix::multiply: dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double lhs_ik = data_[i * cols_ + k];
      if (lhs_ik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out.at(i, j) += lhs_ik * rhs.at(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out.at(j, i) = data_[i * cols_ + j];
    }
  }
  return out;
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

}  // namespace pcn::linalg
