#include "pcn/linalg/lu.hpp"

#include <cmath>

#include "pcn/common/error.hpp"

namespace pcn::linalg {

std::vector<double> lu_solve(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  PCN_EXPECT(a.cols() == n, "lu_solve: matrix must be square");
  PCN_EXPECT(b.size() == n, "lu_solve: rhs size mismatch");

  // In-place Doolittle LU with partial pivoting, pivoting b alongside.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::fabs(a.at(col, col));
    for (std::size_t row = col + 1; row < n; ++row) {
      const double mag = std::fabs(a.at(row, col));
      if (mag > best) {
        best = mag;
        pivot = row;
      }
    }
    PCN_EXPECT(best > 0.0, "lu_solve: matrix is singular");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a.at(col, j), a.at(pivot, j));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a.at(row, col) / a.at(col, col);
      if (factor == 0.0) continue;
      a.at(row, col) = 0.0;
      for (std::size_t j = col + 1; j < n; ++j) {
        a.at(row, j) -= factor * a.at(col, j);
      }
      b[row] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= a.at(i, j) * x[j];
    x[i] = sum / a.at(i, i);
  }
  return x;
}

std::vector<double> stationary_distribution(const Matrix& transition) {
  const std::size_t n = transition.rows();
  PCN_EXPECT(transition.cols() == n,
             "stationary_distribution: matrix must be square");
  PCN_EXPECT(n > 0, "stationary_distribution: empty chain");

  // Build A = Pᵀ − I with diagonals inferred so each row of P sums to 1,
  // then replace the last equation with Σπ = 1.
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off_diagonal = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double p = transition.at(i, j);
      PCN_EXPECT(p >= 0.0,
                 "stationary_distribution: negative transition probability");
      off_diagonal += p;
      a.at(j, i) += p;
    }
    PCN_EXPECT(off_diagonal <= 1.0 + 1e-12,
               "stationary_distribution: row mass exceeds 1");
    a.at(i, i) += (1.0 - off_diagonal) - 1.0;  // self-loop − identity
  }
  std::vector<double> b(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) a.at(n - 1, j) = 1.0;
  b[n - 1] = 1.0;

  std::vector<double> pi = lu_solve(std::move(a), std::move(b));
  for (double& v : pi) {
    if (v < 0.0 && v > -1e-12) v = 0.0;  // clamp LU round-off
  }
  return pi;
}

}  // namespace pcn::linalg
