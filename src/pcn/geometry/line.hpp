// 1-D line geometry (paper §2.1, Figure 1(a)).
//
// Cells are unit-length intervals on an unbounded line, indexed by an
// integer coordinate.  Each cell has exactly two neighbors.  The ring
// distance between two cells is |x1 - x2|; "ring r_i around c" is the pair
// of cells {c - i, c + i} (a single cell for i = 0).
#pragma once

#include <cstdint>
#include <vector>

namespace pcn::geometry {

/// A cell on the 1-D line.
struct LineCell {
  std::int64_t x = 0;

  friend bool operator==(const LineCell&, const LineCell&) = default;
  friend auto operator<=>(const LineCell&, const LineCell&) = default;
};

/// Ring distance |a.x - b.x| between two line cells.
std::int64_t line_distance(LineCell a, LineCell b);

/// The two neighbors {x-1, x+1} of a line cell.
std::vector<LineCell> line_neighbors(LineCell cell);

/// All cells in ring r_i around `center` (1 cell for i = 0, else 2).
std::vector<LineCell> line_ring(LineCell center, int ring);

/// All cells within ring-distance d of `center`, ordered by increasing
/// distance (ring 0, ring 1, ...).  Matches g(d) = 2d + 1 cells.
std::vector<LineCell> line_disk(LineCell center, int distance);

}  // namespace pcn::geometry
