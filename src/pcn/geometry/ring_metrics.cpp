#include "pcn/geometry/ring_metrics.hpp"

#include "pcn/common/error.hpp"

namespace pcn::geometry {

std::int64_t ring_size(Dimension dim, int ring) {
  PCN_EXPECT(ring >= 0, "ring_size: ring index must be >= 0");
  if (ring == 0) return 1;
  return dim == Dimension::kOneD ? 2 : std::int64_t{6} * ring;
}

std::int64_t cells_within(Dimension dim, int distance) {
  PCN_EXPECT(distance >= 0, "cells_within: distance must be >= 0");
  const std::int64_t d = distance;
  return dim == Dimension::kOneD ? 2 * d + 1 : 3 * d * (d + 1) + 1;
}

std::int64_t cells_in_ring_span(Dimension dim, int first, int last) {
  PCN_EXPECT(0 <= first && first <= last,
             "cells_in_ring_span: need 0 <= first <= last");
  if (first == 0) return cells_within(dim, last);
  return cells_within(dim, last) - cells_within(dim, first - 1);
}

}  // namespace pcn::geometry
