// Unified cell view over the two coverage-area geometries.
//
// The simulator treats both models through one cell type: a 2-D axial
// coordinate.  The 1-D line embeds as the q axis (r pinned to 0, neighbors
// q ± 1), so entity code is geometry-agnostic and dispatches through the
// `Dimension` tag.
#pragma once

#include <cstdint>
#include <vector>

#include "pcn/common/params.hpp"
#include "pcn/geometry/hex.hpp"

namespace pcn::geometry {

/// A cell in either geometry; for Dimension::kOneD only the q axis is used.
using Cell = HexCell;

/// Ring distance between two cells under the given geometry.
std::int64_t cell_distance(Dimension dim, Cell a, Cell b);

/// Neighbors of a cell (2 for 1-D, 6 for 2-D).
std::vector<Cell> cell_neighbors(Dimension dim, Cell cell);

/// All cells of ring r_i around `center`.
std::vector<Cell> cell_ring(Dimension dim, Cell center, int ring);

/// Appends the cells of ring r_i to `out` (same order as `cell_ring`);
/// allocation-free when `out` has capacity — the paging hot path reuses one
/// buffer across polling cycles.
void append_cell_ring(Dimension dim, Cell center, int ring,
                      std::vector<Cell>& out);

/// All cells within distance d of `center`, ordered ring by ring.
std::vector<Cell> cell_disk(Dimension dim, Cell center, int distance);

/// Location-area tiling usable with the unified cell type (see
/// la_tiling.hpp for the underlying constructions).
class CellLaTiling {
 public:
  CellLaTiling(Dimension dim, int radius);

  Dimension dimension() const { return dim_; }
  int radius() const { return radius_; }

  /// Cells per LA: 2R+1 (1-D) or 3R²+3R+1 (2-D).
  std::int64_t la_size() const;

  /// Center of the LA containing `cell`.
  Cell la_center(Cell cell) const;

  bool same_la(Cell a, Cell b) const;

  /// All cells of the LA centered at `center`.
  std::vector<Cell> la_cells(Cell center) const;

 private:
  Dimension dim_;
  int radius_;
};

}  // namespace pcn::geometry
