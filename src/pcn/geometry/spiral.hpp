// Spiral cell indexing: a bijection between hex cells and non-negative
// integers, ordered ring by ring (center = 0, ring 1 = 1..6, ring 2 =
// 7..18, ...).  Gives every cell a compact scalar id whose magnitude grows
// with distance from the origin — handy for database keys, varint-friendly
// wire ids, and dense per-cell arrays over a disk.
//
// The enumeration order within a ring matches geometry::hex_ring, so
// `hex_from_spiral(i)` for i in [0, g(d)) enumerates exactly hex_disk(d).
#pragma once

#include <cstdint>

#include "pcn/geometry/hex.hpp"

namespace pcn::geometry {

/// Spiral index of `cell` relative to `center` (0 for the center itself).
std::int64_t hex_spiral_index(HexCell cell, HexCell center = HexCell{});

/// Inverse: the cell at spiral index `index` around `center`; index >= 0.
HexCell hex_from_spiral(std::int64_t index, HexCell center = HexCell{});

}  // namespace pcn::geometry
