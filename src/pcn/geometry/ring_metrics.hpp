// Ring metrics for the paper's cell geometries (paper §2.1, eq. 1).
//
// Cells are grouped into "rings" around a center cell: ring r_i holds all
// cells at ring-distance i.  The paper's quantities:
//   * ring_size(i)      — number of cells in ring r_i,
//   * cells_within(d)   — g(d), cells within distance d (eq. 1):
//                           1-D:  g(d) = 2d + 1
//                           2-D:  g(d) = 3d(d+1) + 1
// These are pure integer functions used by both the analytical cost model
// and the simulator.
#pragma once

#include <cstdint>

#include "pcn/common/params.hpp"

namespace pcn::geometry {

/// Number of cells in ring r_i (i >= 0): 1 for i = 0; otherwise 2 (1-D) or
/// 6i (2-D).
std::int64_t ring_size(Dimension dim, int ring);

/// g(d): number of cells within ring-distance d of a cell, inclusive
/// (paper eq. 1).  d >= 0.
std::int64_t cells_within(Dimension dim, int distance);

/// Number of cells in rings [first, last], inclusive; 0 <= first <= last.
std::int64_t cells_in_ring_span(Dimension dim, int first, int last);

}  // namespace pcn::geometry
