#include "pcn/geometry/la_tiling.hpp"

#include "pcn/common/error.hpp"

namespace pcn::geometry {
namespace {

/// floor(a / b) for b > 0.
std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t quot = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --quot;
  return quot;
}

/// Round a/b (b > 0) to the nearest integer, halves toward +inf.
std::int64_t round_div(std::int64_t a, std::int64_t b) {
  return floor_div(2 * a + b, 2 * b);
}

/// Eisenstein product (a + bω)(c + dω) with ω² = ω − 1.
void eis_mul(std::int64_t a, std::int64_t b, std::int64_t c, std::int64_t d,
             std::int64_t& out_a, std::int64_t& out_b) {
  out_a = a * c - b * d;
  out_b = a * d + b * c + b * d;
}

}  // namespace

LineLaTiling::LineLaTiling(int radius) : radius_(radius) {
  PCN_EXPECT(radius >= 0, "LineLaTiling: radius must be >= 0");
}

LineCell LineLaTiling::la_center(LineCell cell) const {
  const std::int64_t size = la_size();
  const std::int64_t index = floor_div(cell.x + radius_, size);
  return LineCell{index * size};
}

bool LineLaTiling::same_la(LineCell a, LineCell b) const {
  return la_center(a) == la_center(b);
}

std::vector<LineCell> LineLaTiling::la_cells(LineCell center) const {
  PCN_EXPECT(la_center(center) == center,
             "LineLaTiling::la_cells: argument is not an LA center");
  return line_disk(center, radius_);
}

HexLaTiling::HexLaTiling(int radius) : radius_(radius) {
  PCN_EXPECT(radius >= 0, "HexLaTiling: radius must be >= 0");
  const std::int64_t r = radius;
  alpha_a_ = r + 1;
  alpha_b_ = r;
  conj_a_ = 2 * r + 1;
  conj_b_ = -r;
  norm_ = 3 * r * r + 3 * r + 1;
}

std::int64_t HexLaTiling::la_size() const { return norm_; }

HexCell HexLaTiling::la_center(HexCell cell) const {
  // w = z·ᾱ; the LA index is w/N rounded to the nearest Eisenstein integer,
  // then mapped back through α.  Rounding can land one lattice step off for
  // boundary cells, so we scan the rounded index and its neighbors for the
  // unique center within distance R.
  std::int64_t wa = 0;
  std::int64_t wb = 0;
  eis_mul(cell.q, cell.r, conj_a_, conj_b_, wa, wb);
  const std::int64_t ma = round_div(wa, norm_);
  const std::int64_t mb = round_div(wb, norm_);

  for (int dq = -1; dq <= 1; ++dq) {
    for (int dr = -1; dr <= 1; ++dr) {
      std::int64_t ca = 0;
      std::int64_t cb = 0;
      eis_mul(ma + dq, mb + dr, alpha_a_, alpha_b_, ca, cb);
      const HexCell center{ca, cb};
      if (hex_distance(center, cell) <= radius_) return center;
    }
  }
  PCN_ASSERT(false && "HexLaTiling: no LA center found near rounded index");
  return HexCell{};  // unreachable
}

bool HexLaTiling::same_la(HexCell a, HexCell b) const {
  return la_center(a) == la_center(b);
}

std::vector<HexCell> HexLaTiling::la_cells(HexCell center) const {
  PCN_EXPECT(la_center(center) == center,
             "HexLaTiling::la_cells: argument is not an LA center");
  return hex_disk(center, radius_);
}

}  // namespace pcn::geometry
