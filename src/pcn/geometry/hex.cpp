#include "pcn/geometry/hex.hpp"

#include <cstdlib>

#include "pcn/common/error.hpp"

namespace pcn::geometry {

const std::array<HexCell, 6>& hex_directions() {
  static const std::array<HexCell, 6> dirs = {{
      {+1, 0}, {+1, -1}, {0, -1}, {-1, 0}, {-1, +1}, {0, +1},
  }};
  return dirs;
}

HexCell hex_add(HexCell a, HexCell b) { return {a.q + b.q, a.r + b.r}; }

HexCell hex_scaled_add(HexCell a, HexCell b, std::int64_t k) {
  return {a.q + k * b.q, a.r + k * b.r};
}

std::int64_t hex_distance(HexCell a, HexCell b) {
  const std::int64_t dq = a.q - b.q;
  const std::int64_t dr = a.r - b.r;
  return (std::llabs(dq) + std::llabs(dr) + std::llabs(dq + dr)) / 2;
}

std::array<HexCell, 6> hex_neighbors(HexCell cell) {
  std::array<HexCell, 6> result;
  const auto& dirs = hex_directions();
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    result[i] = hex_add(cell, dirs[i]);
  }
  return result;
}

std::vector<HexCell> hex_ring(HexCell center, int ring) {
  std::vector<HexCell> cells;
  append_hex_ring(center, ring, cells);
  return cells;
}

void append_hex_ring(HexCell center, int ring, std::vector<HexCell>& out) {
  PCN_EXPECT(ring >= 0, "hex_ring: ring index must be >= 0");
  if (ring == 0) {
    out.push_back(center);
    return;
  }
  out.reserve(out.size() + static_cast<std::size_t>(6 * ring));
  // Start `ring` steps along direction 4 (-1,+1) and walk the six sides.
  HexCell cursor = hex_scaled_add(center, hex_directions()[4], ring);
  for (int side = 0; side < 6; ++side) {
    for (int step = 0; step < ring; ++step) {
      out.push_back(cursor);
      cursor = hex_add(cursor, hex_directions()[static_cast<std::size_t>(side)]);
    }
  }
}

std::vector<HexCell> hex_disk(HexCell center, int distance) {
  PCN_EXPECT(distance >= 0, "hex_disk: distance must be >= 0");
  std::vector<HexCell> cells;
  cells.reserve(static_cast<std::size_t>(3) * distance * (distance + 1) + 1);
  for (int i = 0; i <= distance; ++i) {
    for (HexCell cell : hex_ring(center, i)) cells.push_back(cell);
  }
  return cells;
}

MoveProfile classify_moves(HexCell center, HexCell cell) {
  const std::int64_t dist = hex_distance(center, cell);
  MoveProfile profile;
  for (HexCell next : hex_neighbors(cell)) {
    const std::int64_t next_dist = hex_distance(center, next);
    if (next_dist > dist) {
      ++profile.outward;
    } else if (next_dist < dist) {
      ++profile.inward;
    } else {
      ++profile.sideways;
    }
  }
  return profile;
}

MoveProfile ring_edge_profile(int ring) {
  PCN_EXPECT(ring >= 1, "ring_edge_profile: ring index must be >= 1");
  MoveProfile total;
  for (HexCell cell : hex_ring(HexCell{}, ring)) {
    const MoveProfile p = classify_moves(HexCell{}, cell);
    total.outward += p.outward;
    total.inward += p.inward;
    total.sideways += p.sideways;
  }
  return total;
}

std::size_t HexCellHash::operator()(const HexCell& cell) const noexcept {
  // SplitMix64-style mix of the two coordinates.
  auto mix = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  const auto q = static_cast<std::uint64_t>(cell.q);
  const auto r = static_cast<std::uint64_t>(cell.r);
  return static_cast<std::size_t>(mix(q ^ mix(r)));
}

}  // namespace pcn::geometry
