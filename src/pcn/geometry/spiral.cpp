#include "pcn/geometry/spiral.hpp"

#include <cmath>

#include "pcn/common/error.hpp"
#include "pcn/geometry/ring_metrics.hpp"

namespace pcn::geometry {

std::int64_t hex_spiral_index(HexCell cell, HexCell center) {
  const std::int64_t ring = hex_distance(cell, center);
  if (ring == 0) return 0;
  // Cells before this ring: g(ring - 1) = 3(ring-1)ring + 1.
  const std::int64_t base = 3 * (ring - 1) * ring + 1;
  const auto cells = hex_ring(center, static_cast<int>(ring));
  for (std::size_t k = 0; k < cells.size(); ++k) {
    if (cells[k] == cell) return base + static_cast<std::int64_t>(k);
  }
  PCN_ASSERT(false && "hex_spiral_index: cell not found on its own ring");
  return -1;
}

HexCell hex_from_spiral(std::int64_t index, HexCell center) {
  PCN_EXPECT(index >= 0, "hex_from_spiral: index must be >= 0");
  if (index == 0) return center;
  // Find the ring r with 3(r-1)r + 1 <= index < 3r(r+1) + 1.
  const auto approx = static_cast<std::int64_t>(
      (std::sqrt(9.0 + 12.0 * static_cast<double>(index - 1)) - 3.0) / 6.0);
  std::int64_t ring = approx > 1 ? approx - 1 : 1;
  while (3 * ring * (ring + 1) + 1 <= index) ++ring;
  while (ring > 1 && 3 * (ring - 1) * ring + 1 > index) --ring;
  const std::int64_t offset = index - (3 * (ring - 1) * ring + 1);
  PCN_ASSERT(offset >= 0 && offset < 6 * ring);
  const auto cells = hex_ring(center, static_cast<int>(ring));
  return cells[static_cast<std::size_t>(offset)];
}

}  // namespace pcn::geometry
