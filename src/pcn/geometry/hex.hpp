// 2-D hexagonal-cell geometry (paper §2.1, Figures 1(b) and 3).
//
// The coverage area is tiled by identical hexagonal cells; each cell has six
// neighbors.  We use axial coordinates (q, r): the six unit directions are
// (+1,0), (+1,-1), (0,-1), (-1,0), (-1,+1), (0,+1), and the hex (ring)
// distance between cells is
//   dist(a, b) = (|dq| + |dr| + |dq + dr|) / 2.
// Ring r_i around a center cell is the set of cells at distance exactly i
// (6i cells for i >= 1), matching the paper's ring construction.
//
// The module also verifies the paper's boundary-crossing counts (Figure 3):
// from a cell in ring r_i, of the 6 unit moves, the expected fraction that
// increases the distance from the center is p+(i) = 1/3 + 1/(6i) and the
// fraction that decreases it is p-(i) = 1/3 - 1/(6i) *averaged over the
// ring* — tests check this cell-exactly via `ring_edge_profile`.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

namespace pcn::geometry {

/// A hexagonal cell in axial coordinates.
struct HexCell {
  std::int64_t q = 0;
  std::int64_t r = 0;

  friend bool operator==(const HexCell&, const HexCell&) = default;
  friend auto operator<=>(const HexCell&, const HexCell&) = default;
};

/// The six axial unit directions, in counter-clockwise order.
const std::array<HexCell, 6>& hex_directions();

/// Component-wise sum a + b.
HexCell hex_add(HexCell a, HexCell b);

/// a + k * b.
HexCell hex_scaled_add(HexCell a, HexCell b, std::int64_t k);

/// Hex (ring) distance between two cells.
std::int64_t hex_distance(HexCell a, HexCell b);

/// The six neighbors of a cell, in direction order.
std::array<HexCell, 6> hex_neighbors(HexCell cell);

/// All cells in ring r_i around `center` (1 cell for i = 0, else 6i),
/// enumerated by walking the ring.
std::vector<HexCell> hex_ring(HexCell center, int ring);

/// Appends the cells of ring r_i to `out` (same enumeration order as
/// `hex_ring`); lets hot paths reuse one buffer across rings.
void append_hex_ring(HexCell center, int ring, std::vector<HexCell>& out);

/// All cells within distance d of `center`, ordered ring by ring.
/// Matches g(d) = 3d(d+1) + 1 cells.
std::vector<HexCell> hex_disk(HexCell center, int distance);

/// Per-cell move classification used to validate the paper's Figure 3
/// transition probabilities: for a cell at distance i from `center`, counts
/// how many of its 6 unit moves land at distance i+1 (`outward`), i-1
/// (`inward`), or i (`sideways`).
struct MoveProfile {
  int outward = 0;
  int inward = 0;
  int sideways = 0;
};

MoveProfile classify_moves(HexCell center, HexCell cell);

/// Aggregated move profile over all cells of ring r_i (i >= 1): the paper's
/// edge counts (e.g. ring 1: 18 outward, 6 inward, 12 sideways edges).
MoveProfile ring_edge_profile(int ring);

/// Hash functor so HexCell can key unordered containers.
struct HexCellHash {
  std::size_t operator()(const HexCell& cell) const noexcept;
};

}  // namespace pcn::geometry
