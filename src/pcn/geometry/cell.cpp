#include "pcn/geometry/cell.hpp"

#include "pcn/common/error.hpp"
#include "pcn/geometry/la_tiling.hpp"
#include "pcn/geometry/line.hpp"

namespace pcn::geometry {

std::int64_t cell_distance(Dimension dim, Cell a, Cell b) {
  if (dim == Dimension::kTwoD) return hex_distance(a, b);
  PCN_EXPECT(a.r == b.r, "cell_distance: 1-D cells live on one line");
  return line_distance(LineCell{a.q}, LineCell{b.q});
}

std::vector<Cell> cell_neighbors(Dimension dim, Cell cell) {
  if (dim == Dimension::kTwoD) {
    const auto neighbors = hex_neighbors(cell);
    return {neighbors.begin(), neighbors.end()};
  }
  return {Cell{cell.q - 1, cell.r}, Cell{cell.q + 1, cell.r}};
}

std::vector<Cell> cell_ring(Dimension dim, Cell center, int ring) {
  std::vector<Cell> cells;
  append_cell_ring(dim, center, ring, cells);
  return cells;
}

void append_cell_ring(Dimension dim, Cell center, int ring,
                      std::vector<Cell>& out) {
  if (dim == Dimension::kTwoD) {
    append_hex_ring(center, ring, out);
    return;
  }
  PCN_EXPECT(ring >= 0, "cell_ring: ring index must be >= 0");
  if (ring == 0) {
    out.push_back(center);
    return;
  }
  out.push_back(Cell{center.q - ring, center.r});
  out.push_back(Cell{center.q + ring, center.r});
}

std::vector<Cell> cell_disk(Dimension dim, Cell center, int distance) {
  if (dim == Dimension::kTwoD) return hex_disk(center, distance);
  PCN_EXPECT(distance >= 0, "cell_disk: distance must be >= 0");
  std::vector<Cell> cells;
  cells.reserve(static_cast<std::size_t>(2 * distance + 1));
  for (int i = 0; i <= distance; ++i) {
    for (Cell cell : cell_ring(dim, center, i)) cells.push_back(cell);
  }
  return cells;
}

CellLaTiling::CellLaTiling(Dimension dim, int radius)
    : dim_(dim), radius_(radius) {
  PCN_EXPECT(radius >= 0, "CellLaTiling: radius must be >= 0");
}

std::int64_t CellLaTiling::la_size() const {
  if (dim_ == Dimension::kTwoD) return HexLaTiling(radius_).la_size();
  return LineLaTiling(radius_).la_size();
}

Cell CellLaTiling::la_center(Cell cell) const {
  if (dim_ == Dimension::kTwoD) return HexLaTiling(radius_).la_center(cell);
  const LineCell center = LineLaTiling(radius_).la_center(LineCell{cell.q});
  return Cell{center.x, cell.r};
}

bool CellLaTiling::same_la(Cell a, Cell b) const {
  return la_center(a) == la_center(b);
}

std::vector<Cell> CellLaTiling::la_cells(Cell center) const {
  if (dim_ == Dimension::kTwoD) return HexLaTiling(radius_).la_cells(center);
  std::vector<Cell> cells;
  for (LineCell cell : LineLaTiling(radius_).la_cells(LineCell{center.q})) {
    cells.push_back(Cell{cell.x, center.r});
  }
  return cells;
}

}  // namespace pcn::geometry
