#include "pcn/geometry/line.hpp"

#include <cstdlib>

#include "pcn/common/error.hpp"

namespace pcn::geometry {

std::int64_t line_distance(LineCell a, LineCell b) {
  return std::llabs(a.x - b.x);
}

std::vector<LineCell> line_neighbors(LineCell cell) {
  return {LineCell{cell.x - 1}, LineCell{cell.x + 1}};
}

std::vector<LineCell> line_ring(LineCell center, int ring) {
  PCN_EXPECT(ring >= 0, "line_ring: ring index must be >= 0");
  if (ring == 0) return {center};
  return {LineCell{center.x - ring}, LineCell{center.x + ring}};
}

std::vector<LineCell> line_disk(LineCell center, int distance) {
  PCN_EXPECT(distance >= 0, "line_disk: distance must be >= 0");
  std::vector<LineCell> cells;
  cells.reserve(static_cast<std::size_t>(2 * distance + 1));
  for (int i = 0; i <= distance; ++i) {
    for (LineCell cell : line_ring(center, i)) cells.push_back(cell);
  }
  return cells;
}

}  // namespace pcn::geometry
