// Tiny command-line argument parser for the pcnctl tool.
//
// Grammar: `program <command> [POSITIONAL]... [--flag value]...
// [--switch]...`
// Typed getters validate and convert values, report unknown or unconsumed
// flags and positionals, and collect a usage string — enough for a focused
// operations tool without an external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace pcn::cli {

/// Thrown for malformed command lines (also carries usage guidance).
class UsageError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

class Args {
 public:
  /// Parses argv[1..): the first token is the command (may be empty), the
  /// rest `--key value` pairs, bare `--switch` flags (value-less), or
  /// positional operands (bare tokens not following a flag).
  static Args parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }

  std::size_t positional_count() const { return positionals_.size(); }

  /// Positional operand `index` (0-based); throws UsageError naming `what`
  /// when there are not enough operands.
  std::string positional(std::size_t index, const std::string& what) const;

  /// Typed getters: the _or variants supply a default; the required
  /// variants throw UsageError when the flag is missing.
  std::string get_string(const std::string& key) const;
  std::string get_string_or(const std::string& key,
                            const std::string& fallback) const;
  double get_double(const std::string& key) const;
  double get_double_or(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key) const;
  std::int64_t get_int_or(const std::string& key,
                          std::int64_t fallback) const;
  bool get_switch(const std::string& key) const;

  bool has(const std::string& key) const;

  /// Fails with UsageError if any parsed flag or positional was never
  /// queried — catches typos like `--trehshold` and stray operands passed
  /// to commands that take none.
  void reject_unconsumed() const;

 private:
  std::optional<std::string> raw(const std::string& key) const;

  std::string command_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  mutable std::vector<bool> positional_consumed_;
};

}  // namespace pcn::cli
