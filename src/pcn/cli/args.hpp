// Tiny command-line argument parser for the pcnctl tool.
//
// Grammar: `program <command> [--flag value]... [--switch]...`
// Typed getters validate and convert values, report unknown or unconsumed
// flags, and collect a usage string — enough for a focused operations
// tool without an external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

namespace pcn::cli {

/// Thrown for malformed command lines (also carries usage guidance).
class UsageError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

class Args {
 public:
  /// Parses argv[1..): the first token is the command (may be empty), the
  /// rest `--key value` pairs or bare `--switch` flags (value-less).
  static Args parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }

  /// Typed getters: the _or variants supply a default; the required
  /// variants throw UsageError when the flag is missing.
  std::string get_string(const std::string& key) const;
  std::string get_string_or(const std::string& key,
                            const std::string& fallback) const;
  double get_double(const std::string& key) const;
  double get_double_or(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key) const;
  std::int64_t get_int_or(const std::string& key,
                          std::int64_t fallback) const;
  bool get_switch(const std::string& key) const;

  bool has(const std::string& key) const;

  /// Fails with UsageError if any parsed flag was never queried — catches
  /// typos like `--trehshold`.
  void reject_unconsumed() const;

 private:
  std::optional<std::string> raw(const std::string& key) const;

  std::string command_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace pcn::cli
