#include "pcn/cli/args.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace pcn::cli {
namespace {

bool is_flag(const std::string& token) {
  return token.size() > 2 && token[0] == '-' && token[1] == '-';
}

}  // namespace

Args Args::parse(int argc, const char* const* argv) {
  Args args;
  int index = 1;
  if (index < argc && !is_flag(argv[index])) {
    args.command_ = argv[index];
    ++index;
  }
  while (index < argc) {
    const std::string token = argv[index];
    if (!is_flag(token)) {
      args.positionals_.push_back(token);
      ++index;
      continue;
    }
    const std::string key = token.substr(2);
    if (args.values_.count(key) != 0) {
      throw UsageError("duplicate flag: --" + key);
    }
    ++index;
    if (index < argc && !is_flag(argv[index])) {
      args.values_[key] = argv[index];
      ++index;
    } else {
      args.values_[key] = "";  // bare switch
    }
  }
  args.positional_consumed_.assign(args.positionals_.size(), false);
  return args;
}

std::string Args::positional(std::size_t index,
                             const std::string& what) const {
  if (index >= positionals_.size()) {
    throw UsageError("missing required argument: " + what);
  }
  positional_consumed_[index] = true;
  return positionals_[index];
}

std::optional<std::string> Args::raw(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  consumed_[key] = true;
  return it->second;
}

std::string Args::get_string(const std::string& key) const {
  const auto value = raw(key);
  if (!value || value->empty()) {
    throw UsageError("missing required flag: --" + key);
  }
  return *value;
}

std::string Args::get_string_or(const std::string& key,
                                const std::string& fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  if (value->empty()) {
    throw UsageError("flag --" + key + " requires a value");
  }
  return *value;
}

double Args::get_double(const std::string& key) const {
  const std::string value = get_string(key);
  // strtod also accepts "inf", "nan" and hex floats ("0x10"); none of
  // those are meaningful flag values, so gate on the plain decimal
  // charset before parsing.
  if (value.find_first_not_of("+-.0123456789eE") != std::string::npos) {
    throw UsageError("flag --" + key + " expects a number, got: " + value);
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    throw UsageError("flag --" + key + " expects a number, got: " + value);
  }
  // Overflow saturates to +-HUGE_VAL with ERANGE; gradual underflow to a
  // (finite) denormal is fine.
  if (errno == ERANGE && !std::isfinite(parsed)) {
    throw UsageError("flag --" + key + " is out of range: " + value);
  }
  return parsed;
}

double Args::get_double_or(const std::string& key, double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

std::int64_t Args::get_int(const std::string& key) const {
  const std::string value = get_string(key);
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw UsageError("flag --" + key + " expects an integer, got: " + value);
  }
  // strtoll clamps to LLONG_MIN/MAX with ERANGE instead of failing —
  // silently simulating for LLONG_MAX slots is not what anyone asked for.
  if (errno == ERANGE) {
    throw UsageError("flag --" + key + " is out of range: " + value);
  }
  return parsed;
}

std::int64_t Args::get_int_or(const std::string& key,
                              std::int64_t fallback) const {
  return has(key) ? get_int(key) : fallback;
}

bool Args::get_switch(const std::string& key) const {
  const auto value = raw(key);
  if (!value) return false;
  if (!value->empty()) {
    throw UsageError("flag --" + key + " does not take a value");
  }
  return true;
}

bool Args::has(const std::string& key) const {
  if (values_.count(key) == 0) return false;
  consumed_[key] = true;
  return true;
}

void Args::reject_unconsumed() const {
  for (const auto& [key, value] : values_) {
    if (consumed_.find(key) == consumed_.end()) {
      throw UsageError("unknown flag: --" + key);
    }
  }
  for (std::size_t i = 0; i < positionals_.size(); ++i) {
    if (!positional_consumed_[i]) {
      throw UsageError("unexpected positional argument: " + positionals_[i]);
    }
  }
}

}  // namespace pcn::cli
