// Core validated parameter types shared across the library.
//
// The paper's model is parameterized by:
//   * the coverage-area dimensionality (1-D line of cells or 2-D hex grid),
//   * the per-slot movement probability `q` and call-arrival probability `c`
//     of a terminal (its mobility / traffic profile),
//   * the location-update cost `U` and per-cell polling cost `V`,
//   * the maximum paging delay `m` in polling cycles (possibly unbounded).
#pragma once

#include <limits>
#include <string>

namespace pcn {

/// Coverage-area dimensionality (paper §2.1).
enum class Dimension {
  kOneD,  ///< Cells on a line; each cell has 2 neighbors (roads, tunnels, rail).
  kTwoD,  ///< Hexagonal cells; each cell has 6 neighbors (open areas, cities).
};

/// Human-readable name ("1-D" / "2-D").
std::string to_string(Dimension dim);

/// Number of neighbors of every cell in the given geometry (2 or 6).
int neighbor_count(Dimension dim);

/// Per-terminal mobility and traffic profile (paper §2.1).
///
/// In each discrete time slot the terminal moves to a uniformly chosen
/// neighboring cell with probability `move_prob` (q) and an incoming call
/// arrives with probability `call_prob` (c).
struct MobilityProfile {
  double move_prob = 0.1;   ///< q ∈ (0, 1]
  double call_prob = 0.01;  ///< c ∈ [0, 1)

  /// Throws InvalidArgument unless q ∈ (0,1], c ∈ [0,1) and q + c <= 1.
  /// (q + c <= 1 keeps the competing-event slot semantics well defined.)
  void validate() const;
};

/// Signalling costs (paper §5): one location update costs `update_cost` (U);
/// polling a single cell during paging costs `poll_cost` (V).
struct CostWeights {
  double update_cost = 100.0;  ///< U > 0
  double poll_cost = 1.0;      ///< V > 0

  void validate() const;  ///< Throws InvalidArgument unless U > 0 and V > 0.
};

/// Maximum paging delay in polling cycles (paper §2.2).
///
/// The network must locate a called terminal within `cycles` polling cycles;
/// `DelayBound::unbounded()` models the unconstrained case (the residing
/// area is then paged one ring per cycle).
class DelayBound {
 public:
  /// A bound of `cycles` polling cycles; `cycles` >= 1.
  explicit DelayBound(int cycles);

  /// No delay constraint (m = ∞).
  static DelayBound unbounded();

  bool is_unbounded() const { return cycles_ == kUnbounded; }

  /// The bound in cycles; only valid when `!is_unbounded()`.
  int cycles() const;

  /// Number of paging subareas ℓ = min(d+1, m) for threshold distance d
  /// (paper eq. 2); for the unbounded case this is d+1.
  int subarea_count(int threshold_distance) const;

  friend bool operator==(const DelayBound&, const DelayBound&) = default;

 private:
  static constexpr int kUnbounded = std::numeric_limits<int>::max();
  int cycles_;
};

std::string to_string(const DelayBound& bound);

}  // namespace pcn
