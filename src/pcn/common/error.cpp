#include "pcn/common/error.hpp"

#include <sstream>

namespace pcn::detail {

void throw_invalid_argument(const std::string& what) {
  throw InvalidArgument(what);
}

void throw_internal_error(const char* expr, const char* file, int line) {
  std::ostringstream oss;
  oss << "libpcn internal invariant violated: `" << expr << "` at " << file
      << ":" << line;
  throw InternalError(oss.str());
}

}  // namespace pcn::detail
