#include "pcn/common/params.hpp"

#include <algorithm>

#include "pcn/common/error.hpp"

namespace pcn {

std::string to_string(Dimension dim) {
  return dim == Dimension::kOneD ? "1-D" : "2-D";
}

int neighbor_count(Dimension dim) {
  return dim == Dimension::kOneD ? 2 : 6;
}

void MobilityProfile::validate() const {
  PCN_EXPECT(move_prob > 0.0 && move_prob <= 1.0,
             "MobilityProfile: move_prob (q) must lie in (0, 1]");
  PCN_EXPECT(call_prob >= 0.0 && call_prob < 1.0,
             "MobilityProfile: call_prob (c) must lie in [0, 1)");
  PCN_EXPECT(move_prob + call_prob <= 1.0,
             "MobilityProfile: q + c must not exceed 1 (competing per-slot "
             "events)");
}

void CostWeights::validate() const {
  PCN_EXPECT(update_cost > 0.0, "CostWeights: update_cost (U) must be > 0");
  PCN_EXPECT(poll_cost > 0.0, "CostWeights: poll_cost (V) must be > 0");
}

DelayBound::DelayBound(int cycles) : cycles_(cycles) {
  PCN_EXPECT(cycles >= 1, "DelayBound: at least one polling cycle required");
}

DelayBound DelayBound::unbounded() {
  DelayBound bound(1);
  bound.cycles_ = kUnbounded;
  return bound;
}

int DelayBound::cycles() const {
  PCN_EXPECT(!is_unbounded(), "DelayBound: unbounded bound has no cycle count");
  return cycles_;
}

int DelayBound::subarea_count(int threshold_distance) const {
  PCN_EXPECT(threshold_distance >= 0,
             "DelayBound: threshold distance must be >= 0");
  return std::min(threshold_distance + 1, cycles_);
}

std::string to_string(const DelayBound& bound) {
  return bound.is_unbounded() ? std::string("unbounded")
                              : std::to_string(bound.cycles());
}

}  // namespace pcn
