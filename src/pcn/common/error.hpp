// Error handling for libpcn.
//
// The library validates all externally supplied parameters at API
// boundaries and throws `pcn::InvalidArgument` (a std::invalid_argument)
// with a descriptive message on violation.  Internal invariants use
// `PCN_ASSERT`, which throws `pcn::InternalError` so that a broken
// invariant is loud in release builds too (the analytical code is cheap;
// we never need to compile the checks out).
#pragma once

#include <stdexcept>
#include <string>

namespace pcn {

/// Thrown when a caller-supplied parameter is outside its documented domain.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant of the library is violated (a bug).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const std::string& what);
[[noreturn]] void throw_internal_error(const char* expr, const char* file,
                                       int line);
}  // namespace detail

/// Validates a caller-facing precondition; throws InvalidArgument on failure.
#define PCN_EXPECT(cond, msg)                           \
  do {                                                  \
    if (!(cond)) ::pcn::detail::throw_invalid_argument(msg); \
  } while (false)

/// Checks an internal invariant; throws InternalError on failure.
#define PCN_ASSERT(cond)                                                    \
  do {                                                                      \
    if (!(cond))                                                            \
      ::pcn::detail::throw_internal_error(#cond, __FILE__, __LINE__);       \
  } while (false)

}  // namespace pcn
