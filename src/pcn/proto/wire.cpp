#include "pcn/proto/wire.hpp"

#include <array>

namespace pcn::proto {
namespace {

constexpr int kMaxVarintBytes = 10;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0xedb88320u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

void WireWriter::put_u8(std::uint8_t value) { buffer_.push_back(value); }

void WireWriter::put_varint(std::uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(value));
}

void WireWriter::put_signed(std::int64_t value) {
  put_varint(zigzag_encode(value));
}

void WireWriter::put_bytes(std::span<const std::uint8_t> bytes) {
  put_varint(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

WireReader::WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

std::uint8_t WireReader::get_u8() {
  if (offset_ >= bytes_.size()) {
    throw DecodeError("wire: truncated frame (u8)");
  }
  return bytes_[offset_++];
}

std::uint64_t WireReader::get_varint() {
  std::uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < kMaxVarintBytes; ++i) {
    if (offset_ >= bytes_.size()) {
      throw DecodeError("wire: truncated frame (varint)");
    }
    const std::uint8_t byte = bytes_[offset_++];
    if (i == kMaxVarintBytes - 1 && byte > 0x01) {
      throw DecodeError("wire: varint exceeds 64 bits");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  throw DecodeError("wire: varint too long");
}

std::int64_t WireReader::get_signed() { return zigzag_decode(get_varint()); }

std::vector<std::uint8_t> WireReader::get_bytes() {
  const std::uint64_t length = get_varint();
  if (length > remaining()) {
    throw DecodeError("wire: truncated frame (bytes)");
  }
  std::vector<std::uint8_t> out(bytes_.begin() + static_cast<long>(offset_),
                                bytes_.begin() +
                                    static_cast<long>(offset_ + length));
  offset_ += length;
  return out;
}

void WireReader::expect_exhausted() const {
  if (!exhausted()) {
    throw DecodeError("wire: trailing bytes after message");
  }
}

std::uint64_t zigzag_encode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t zigzag_decode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  std::uint32_t crc = 0xffffffffu;
  for (std::uint8_t byte : bytes) {
    crc = crc_table()[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace pcn::proto
