// The PCN signalling messages and their frame codec.
//
// Frame layout (all integers varint/zigzag, see wire.hpp):
//
//   u8      protocol version (kProtocolVersion)
//   u8      message type (MessageType)
//   ...     type-specific payload
//   u32     CRC-32 over everything before the trailer (4 raw bytes, LE)
//
// Messages:
//   * LocationUpdate  — terminal -> network: "my cell is (q, r)"; carries a
//     sequence number (duplicate suppression on a lossy air interface) and
//     the terminal's current containment radius so dynamic per-user
//     thresholds propagate (paper §8).
//   * PageRequest     — network -> cells of one polling cycle.  Cells are
//     delta-encoded against the first cell, which keeps a ring's frame
//     near-linear in cell count with ~2 bytes/cell.
//   * PageResponse    — terminal -> network: "here I am" for a page id.
//   * PageSubmit      — client -> pcnd: "page this terminal"; the daemon
//     routes it to the terminal's center cell's bounded paging queue.
//   * PageOutcome     — pcnd -> client: terminal lifecycle verdict for a
//     submitted page (served / dropped at enqueue / expired in queue) plus
//     the observed queueing delay and queue depth.
//
// Every decoder validates version, type, CRC, and exact frame length.
#pragma once

#include <cstdint>
#include <vector>

#include "pcn/geometry/cell.hpp"
#include "pcn/proto/wire.hpp"

namespace pcn::proto {

inline constexpr std::uint8_t kProtocolVersion = 1;

enum class MessageType : std::uint8_t {
  kLocationUpdate = 1,
  kPageRequest = 2,
  kPageResponse = 3,
  kPageSubmit = 4,
  kPageOutcome = 5,
};

struct LocationUpdate {
  std::uint64_t terminal_id = 0;
  std::uint64_t sequence = 0;       ///< per-terminal update counter
  geometry::Cell cell{};            ///< reported position
  std::uint32_t containment_radius = 0;  ///< rings the network may assume

  friend bool operator==(const LocationUpdate&,
                         const LocationUpdate&) = default;
};

struct PageRequest {
  std::uint64_t page_id = 0;        ///< correlates request and response
  std::uint64_t terminal_id = 0;
  std::uint32_t cycle = 0;          ///< polling-cycle index (0-based)
  std::vector<geometry::Cell> cells;  ///< cells polled this cycle

  friend bool operator==(const PageRequest&, const PageRequest&) = default;
};

struct PageResponse {
  std::uint64_t page_id = 0;
  std::uint64_t terminal_id = 0;
  geometry::Cell cell{};            ///< where the terminal answered

  friend bool operator==(const PageResponse&, const PageResponse&) = default;
};

/// Daemon request: ask pcnd to page a terminal.  The daemon looks up the
/// terminal's center cell and enqueues the page on that cell's bounded
/// paging queue (or reports kDropped when the queue is full).
struct PageSubmit {
  std::uint64_t page_id = 0;        ///< correlates submit and outcome
  std::uint64_t terminal_id = 0;

  friend bool operator==(const PageSubmit&, const PageSubmit&) = default;
};

/// Lifecycle verdict for a submitted page.
enum class PageOutcomeKind : std::uint8_t {
  kServed = 1,    ///< drained onto the paging channel within its lifetime
  kDropped = 2,   ///< rejected (queue full, or unknown terminal)
  kExpired = 3,   ///< lifetime elapsed while still queued
  kRejected = 4,  ///< never admitted: the daemon's request ring was full
};

/// Upper bound accepted for PageOutcome::queue_depth — a daemon queue is
/// bounded far below this; anything larger is a corrupt frame.
inline constexpr std::uint32_t kMaxQueueDepth = 1u << 20;

/// Daemon response: what happened to a submitted page.
struct PageOutcome {
  std::uint64_t page_id = 0;
  std::uint64_t terminal_id = 0;
  PageOutcomeKind outcome = PageOutcomeKind::kServed;
  std::uint64_t queue_delay_slots = 0;  ///< slots spent queued before verdict
  std::uint32_t queue_depth = 0;        ///< cell queue depth at verdict time

  friend bool operator==(const PageOutcome&, const PageOutcome&) = default;
};

/// Serializes one message into a framed byte vector.
std::vector<std::uint8_t> encode(const LocationUpdate& message);
std::vector<std::uint8_t> encode(const PageRequest& message);
std::vector<std::uint8_t> encode(const PageResponse& message);
std::vector<std::uint8_t> encode(const PageSubmit& message);
std::vector<std::uint8_t> encode(const PageOutcome& message);

/// Peeks the message type of a framed buffer (validates version + CRC).
MessageType peek_type(std::span<const std::uint8_t> frame);

/// Decoders; throw DecodeError on any malformation (wrong version or type,
/// bad CRC, truncation, trailing bytes).
LocationUpdate decode_location_update(std::span<const std::uint8_t> frame);
PageRequest decode_page_request(std::span<const std::uint8_t> frame);
PageResponse decode_page_response(std::span<const std::uint8_t> frame);
PageSubmit decode_page_submit(std::span<const std::uint8_t> frame);
PageOutcome decode_page_outcome(std::span<const std::uint8_t> frame);

/// Encoded sizes without materializing the frame — used by the simulator's
/// air-interface byte accounting.
std::size_t encoded_size(const LocationUpdate& message);
std::size_t encoded_size(const PageRequest& message);
std::size_t encoded_size(const PageResponse& message);
std::size_t encoded_size(const PageSubmit& message);
std::size_t encoded_size(const PageOutcome& message);

}  // namespace pcn::proto
