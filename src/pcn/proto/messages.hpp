// The PCN signalling messages and their frame codec.
//
// Frame layout (all integers varint/zigzag, see wire.hpp):
//
//   u8      protocol version (kProtocolVersion)
//   u8      message type (MessageType)
//   ...     type-specific payload
//   u32     CRC-32 over everything before the trailer (4 raw bytes, LE)
//
// Messages:
//   * LocationUpdate  — terminal -> network: "my cell is (q, r)"; carries a
//     sequence number (duplicate suppression on a lossy air interface) and
//     the terminal's current containment radius so dynamic per-user
//     thresholds propagate (paper §8).
//   * PageRequest     — network -> cells of one polling cycle.  Cells are
//     delta-encoded against the first cell, which keeps a ring's frame
//     near-linear in cell count with ~2 bytes/cell.
//   * PageResponse    — terminal -> network: "here I am" for a page id.
//
// Every decoder validates version, type, CRC, and exact frame length.
#pragma once

#include <cstdint>
#include <vector>

#include "pcn/geometry/cell.hpp"
#include "pcn/proto/wire.hpp"

namespace pcn::proto {

inline constexpr std::uint8_t kProtocolVersion = 1;

enum class MessageType : std::uint8_t {
  kLocationUpdate = 1,
  kPageRequest = 2,
  kPageResponse = 3,
};

struct LocationUpdate {
  std::uint64_t terminal_id = 0;
  std::uint64_t sequence = 0;       ///< per-terminal update counter
  geometry::Cell cell{};            ///< reported position
  std::uint32_t containment_radius = 0;  ///< rings the network may assume

  friend bool operator==(const LocationUpdate&,
                         const LocationUpdate&) = default;
};

struct PageRequest {
  std::uint64_t page_id = 0;        ///< correlates request and response
  std::uint64_t terminal_id = 0;
  std::uint32_t cycle = 0;          ///< polling-cycle index (0-based)
  std::vector<geometry::Cell> cells;  ///< cells polled this cycle

  friend bool operator==(const PageRequest&, const PageRequest&) = default;
};

struct PageResponse {
  std::uint64_t page_id = 0;
  std::uint64_t terminal_id = 0;
  geometry::Cell cell{};            ///< where the terminal answered

  friend bool operator==(const PageResponse&, const PageResponse&) = default;
};

/// Serializes one message into a framed byte vector.
std::vector<std::uint8_t> encode(const LocationUpdate& message);
std::vector<std::uint8_t> encode(const PageRequest& message);
std::vector<std::uint8_t> encode(const PageResponse& message);

/// Peeks the message type of a framed buffer (validates version + CRC).
MessageType peek_type(std::span<const std::uint8_t> frame);

/// Decoders; throw DecodeError on any malformation (wrong version or type,
/// bad CRC, truncation, trailing bytes).
LocationUpdate decode_location_update(std::span<const std::uint8_t> frame);
PageRequest decode_page_request(std::span<const std::uint8_t> frame);
PageResponse decode_page_response(std::span<const std::uint8_t> frame);

/// Encoded sizes without materializing the frame — used by the simulator's
/// air-interface byte accounting.
std::size_t encoded_size(const LocationUpdate& message);
std::size_t encoded_size(const PageRequest& message);
std::size_t encoded_size(const PageResponse& message);

}  // namespace pcn::proto
