// Bounds-checked wire primitives for the PCN signalling protocol.
//
// The air interface carries three message families (location updates, page
// requests, page responses).  This module provides the byte-level codec
// they share:
//   * LEB128 varints for unsigned integers (small ids stay small),
//   * zigzag-mapped varints for signed cell coordinates,
//   * a CRC-32 (IEEE 802.3, reflected) trailer for frame integrity.
// The reader never reads past its buffer and reports malformed input via
// DecodeError (a pcn::InvalidArgument), so a corrupted or truncated frame
// can never crash the stack.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pcn/common/error.hpp"

namespace pcn::proto {

/// Thrown when decoding malformed, truncated or corrupted frames.
class DecodeError : public InvalidArgument {
 public:
  using InvalidArgument::InvalidArgument;
};

/// Appends wire primitives to a byte buffer.
class WireWriter {
 public:
  void put_u8(std::uint8_t value);

  /// LEB128 varint (1-10 bytes).
  void put_varint(std::uint64_t value);

  /// Zigzag-mapped varint for signed values.
  void put_signed(std::int64_t value);

  /// Varint length prefix + raw bytes.
  void put_bytes(std::span<const std::uint8_t> bytes);

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Consumes wire primitives from a byte view; throws DecodeError on
/// truncation or malformed varints.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes);

  std::uint8_t get_u8();
  std::uint64_t get_varint();
  std::int64_t get_signed();
  std::vector<std::uint8_t> get_bytes();

  std::size_t remaining() const { return bytes_.size() - offset_; }
  bool exhausted() const { return remaining() == 0; }

  /// Fails unless every byte has been consumed (catches trailing garbage).
  void expect_exhausted() const;

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

/// Zigzag mapping n -> 2n (n >= 0), -n -> 2n - 1.
std::uint64_t zigzag_encode(std::int64_t value);
std::int64_t zigzag_decode(std::uint64_t value);

/// CRC-32 (IEEE), as used by the frame trailer.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

}  // namespace pcn::proto
