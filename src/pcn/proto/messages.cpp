#include "pcn/proto/messages.hpp"

namespace pcn::proto {
namespace {

void put_header(WireWriter& writer, MessageType type) {
  writer.put_u8(kProtocolVersion);
  writer.put_u8(static_cast<std::uint8_t>(type));
}

std::vector<std::uint8_t> seal(WireWriter writer) {
  std::vector<std::uint8_t> frame = writer.take();
  const std::uint32_t crc = crc32(frame);
  frame.push_back(static_cast<std::uint8_t>(crc));
  frame.push_back(static_cast<std::uint8_t>(crc >> 8));
  frame.push_back(static_cast<std::uint8_t>(crc >> 16));
  frame.push_back(static_cast<std::uint8_t>(crc >> 24));
  return frame;
}

/// Strips + verifies the CRC trailer and the (version, type) header;
/// returns a reader positioned at the payload.
WireReader open_frame(std::span<const std::uint8_t> frame,
                      MessageType expected) {
  if (frame.size() < 6) {  // version + type + 4-byte CRC minimum
    throw DecodeError("frame: too short");
  }
  const std::span<const std::uint8_t> body = frame.subspan(0, frame.size() - 4);
  const std::span<const std::uint8_t> trailer = frame.subspan(frame.size() - 4);
  const std::uint32_t stored = static_cast<std::uint32_t>(trailer[0]) |
                               static_cast<std::uint32_t>(trailer[1]) << 8 |
                               static_cast<std::uint32_t>(trailer[2]) << 16 |
                               static_cast<std::uint32_t>(trailer[3]) << 24;
  if (crc32(body) != stored) {
    throw DecodeError("frame: CRC mismatch");
  }
  WireReader reader(body);
  if (reader.get_u8() != kProtocolVersion) {
    throw DecodeError("frame: unsupported protocol version");
  }
  const auto type = static_cast<MessageType>(reader.get_u8());
  if (type != expected) {
    throw DecodeError("frame: unexpected message type");
  }
  return reader;
}

void put_cell(WireWriter& writer, geometry::Cell cell) {
  writer.put_signed(cell.q);
  writer.put_signed(cell.r);
}

geometry::Cell get_cell(WireReader& reader) {
  geometry::Cell cell;
  cell.q = reader.get_signed();
  cell.r = reader.get_signed();
  return cell;
}

}  // namespace

std::vector<std::uint8_t> encode(const LocationUpdate& message) {
  WireWriter writer;
  put_header(writer, MessageType::kLocationUpdate);
  writer.put_varint(message.terminal_id);
  writer.put_varint(message.sequence);
  put_cell(writer, message.cell);
  writer.put_varint(message.containment_radius);
  return seal(std::move(writer));
}

std::vector<std::uint8_t> encode(const PageRequest& message) {
  WireWriter writer;
  put_header(writer, MessageType::kPageRequest);
  writer.put_varint(message.page_id);
  writer.put_varint(message.terminal_id);
  writer.put_varint(message.cycle);
  writer.put_varint(message.cells.size());
  // Delta-encode against the previous cell: consecutive ring cells are
  // neighbors, so deltas are almost always in {-1, 0, 1}.
  geometry::Cell previous{};
  for (const geometry::Cell& cell : message.cells) {
    writer.put_signed(cell.q - previous.q);
    writer.put_signed(cell.r - previous.r);
    previous = cell;
  }
  return seal(std::move(writer));
}

std::vector<std::uint8_t> encode(const PageResponse& message) {
  WireWriter writer;
  put_header(writer, MessageType::kPageResponse);
  writer.put_varint(message.page_id);
  writer.put_varint(message.terminal_id);
  put_cell(writer, message.cell);
  return seal(std::move(writer));
}

std::vector<std::uint8_t> encode(const PageSubmit& message) {
  WireWriter writer;
  put_header(writer, MessageType::kPageSubmit);
  writer.put_varint(message.page_id);
  writer.put_varint(message.terminal_id);
  return seal(std::move(writer));
}

std::vector<std::uint8_t> encode(const PageOutcome& message) {
  WireWriter writer;
  put_header(writer, MessageType::kPageOutcome);
  writer.put_varint(message.page_id);
  writer.put_varint(message.terminal_id);
  writer.put_u8(static_cast<std::uint8_t>(message.outcome));
  writer.put_varint(message.queue_delay_slots);
  writer.put_varint(message.queue_depth);
  return seal(std::move(writer));
}

MessageType peek_type(std::span<const std::uint8_t> frame) {
  if (frame.size() < 6) {
    throw DecodeError("frame: too short");
  }
  const std::span<const std::uint8_t> body = frame.subspan(0, frame.size() - 4);
  const std::span<const std::uint8_t> trailer = frame.subspan(frame.size() - 4);
  const std::uint32_t stored = static_cast<std::uint32_t>(trailer[0]) |
                               static_cast<std::uint32_t>(trailer[1]) << 8 |
                               static_cast<std::uint32_t>(trailer[2]) << 16 |
                               static_cast<std::uint32_t>(trailer[3]) << 24;
  if (crc32(body) != stored) {
    throw DecodeError("frame: CRC mismatch");
  }
  if (body[0] != kProtocolVersion) {
    throw DecodeError("frame: unsupported protocol version");
  }
  const auto type = static_cast<MessageType>(body[1]);
  switch (type) {
    case MessageType::kLocationUpdate:
    case MessageType::kPageRequest:
    case MessageType::kPageResponse:
    case MessageType::kPageSubmit:
    case MessageType::kPageOutcome:
      return type;
  }
  throw DecodeError("frame: unknown message type");
}

LocationUpdate decode_location_update(std::span<const std::uint8_t> frame) {
  WireReader reader = open_frame(frame, MessageType::kLocationUpdate);
  LocationUpdate message;
  message.terminal_id = reader.get_varint();
  message.sequence = reader.get_varint();
  message.cell = get_cell(reader);
  const std::uint64_t radius = reader.get_varint();
  if (radius > 0xffffffffu) {
    throw DecodeError("location update: containment radius out of range");
  }
  message.containment_radius = static_cast<std::uint32_t>(radius);
  reader.expect_exhausted();
  return message;
}

PageRequest decode_page_request(std::span<const std::uint8_t> frame) {
  WireReader reader = open_frame(frame, MessageType::kPageRequest);
  PageRequest message;
  message.page_id = reader.get_varint();
  message.terminal_id = reader.get_varint();
  const std::uint64_t cycle = reader.get_varint();
  if (cycle > 0xffffffffu) {
    throw DecodeError("page request: cycle out of range");
  }
  message.cycle = static_cast<std::uint32_t>(cycle);
  const std::uint64_t count = reader.get_varint();
  // Each cell needs at least 2 payload bytes; reject absurd counts before
  // allocating.
  if (count > reader.remaining()) {
    throw DecodeError("page request: cell count exceeds frame size");
  }
  message.cells.reserve(static_cast<std::size_t>(count));
  geometry::Cell previous{};
  for (std::uint64_t i = 0; i < count; ++i) {
    previous.q += reader.get_signed();
    previous.r += reader.get_signed();
    message.cells.push_back(previous);
  }
  reader.expect_exhausted();
  return message;
}

PageResponse decode_page_response(std::span<const std::uint8_t> frame) {
  WireReader reader = open_frame(frame, MessageType::kPageResponse);
  PageResponse message;
  message.page_id = reader.get_varint();
  message.terminal_id = reader.get_varint();
  message.cell = get_cell(reader);
  reader.expect_exhausted();
  return message;
}

PageSubmit decode_page_submit(std::span<const std::uint8_t> frame) {
  WireReader reader = open_frame(frame, MessageType::kPageSubmit);
  PageSubmit message;
  message.page_id = reader.get_varint();
  message.terminal_id = reader.get_varint();
  reader.expect_exhausted();
  return message;
}

PageOutcome decode_page_outcome(std::span<const std::uint8_t> frame) {
  WireReader reader = open_frame(frame, MessageType::kPageOutcome);
  PageOutcome message;
  message.page_id = reader.get_varint();
  message.terminal_id = reader.get_varint();
  const std::uint8_t outcome = reader.get_u8();
  if (outcome < static_cast<std::uint8_t>(PageOutcomeKind::kServed) ||
      outcome > static_cast<std::uint8_t>(PageOutcomeKind::kRejected)) {
    throw DecodeError("page outcome: unknown outcome kind");
  }
  message.outcome = static_cast<PageOutcomeKind>(outcome);
  message.queue_delay_slots = reader.get_varint();
  const std::uint64_t depth = reader.get_varint();
  if (depth > kMaxQueueDepth) {
    throw DecodeError("page outcome: queue depth out of range");
  }
  message.queue_depth = static_cast<std::uint32_t>(depth);
  reader.expect_exhausted();
  return message;
}

std::size_t encoded_size(const LocationUpdate& message) {
  return encode(message).size();
}

std::size_t encoded_size(const PageRequest& message) {
  return encode(message).size();
}

std::size_t encoded_size(const PageResponse& message) {
  return encode(message).size();
}

std::size_t encoded_size(const PageSubmit& message) {
  return encode(message).size();
}

std::size_t encoded_size(const PageOutcome& message) {
  return encode(message).size();
}

}  // namespace pcn::proto
