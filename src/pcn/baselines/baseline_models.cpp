#include "pcn/baselines/baseline_models.hpp"

#include <cmath>

#include "pcn/common/error.hpp"
#include "pcn/costs/partition.hpp"
#include "pcn/geometry/ring_metrics.hpp"

namespace pcn::baselines {
namespace {

/// Per-move outward probability from ring i (ring-averaged).
double p_out(Dimension dim, int ring) {
  if (ring == 0) return 1.0;
  return dim == Dimension::kOneD ? 0.5 : 1.0 / 3.0 + 1.0 / (6.0 * ring);
}

/// Per-move inward probability from ring i >= 1.
double p_in(Dimension dim, int ring) {
  return dim == Dimension::kOneD ? 0.5 : 1.0 / 3.0 - 1.0 / (6.0 * ring);
}

/// One *move* of the direction walk (2-D moves can be sideways and stay on
/// the same ring).  `dist` has at least current_support + 2 entries.
void walk_step(Dimension dim, std::vector<double>& dist) {
  std::vector<double> next(dist.size(), 0.0);
  for (std::size_t i = 0; i < dist.size(); ++i) {
    const double mass = dist[i];
    if (mass == 0.0) continue;
    const int ring = static_cast<int>(i);
    const double out = p_out(dim, ring);
    const double in = ring >= 1 ? p_in(dim, ring) : 0.0;
    if (i + 1 < next.size()) next[i + 1] += mass * out;
    if (ring >= 1) next[i - 1] += mass * in;
    next[i] += mass * (1.0 - out - in);  // sideways (2-D only)
  }
  dist.swap(next);
}

}  // namespace

std::vector<double> walk_ring_distribution(Dimension dim, int moves) {
  PCN_EXPECT(moves >= 0, "walk_ring_distribution: moves must be >= 0");
  std::vector<double> current(static_cast<std::size_t>(moves) + 1, 0.0);
  current[0] = 1.0;
  for (int step = 1; step <= moves; ++step) {
    walk_step(dim, current);
  }
  return current;
}

std::vector<double> lazy_walk_ring_distribution(Dimension dim,
                                                double move_prob,
                                                int slots) {
  PCN_EXPECT(slots >= 0, "lazy_walk_ring_distribution: slots must be >= 0");
  PCN_EXPECT(move_prob >= 0.0 && move_prob <= 1.0,
             "lazy_walk_ring_distribution: move_prob must lie in [0, 1]");
  std::vector<double> current(static_cast<std::size_t>(slots) + 1, 0.0);
  current[0] = 1.0;
  for (int slot = 1; slot <= slots; ++slot) {
    std::vector<double> moved = current;
    walk_step(dim, moved);
    for (std::size_t i = 0; i < current.size(); ++i) {
      current[i] = (1.0 - move_prob) * current[i] + move_prob * moved[i];
    }
  }
  return current;
}

BaselineCosts movement_based_costs(Dimension dim, MobilityProfile profile,
                                   CostWeights weights, int max_moves,
                                   DelayBound bound) {
  profile.validate();
  weights.validate();
  PCN_EXPECT(max_moves >= 1,
             "movement_based_costs: max_moves must be >= 1");
  const double q = profile.move_prob;
  const double c = profile.call_prob;
  const int threshold = max_moves - 1;  // containment radius between updates

  // Stationary crossing-count distribution: π_j ∝ (q/(q+c))^j, j < M.
  const double ratio = q / (q + c);
  std::vector<double> count(static_cast<std::size_t>(max_moves), 0.0);
  double mass = 1.0;
  double total = 0.0;
  for (int j = 0; j < max_moves; ++j) {
    count[static_cast<std::size_t>(j)] = mass;
    total += mass;
    mass *= ratio;
  }
  for (double& value : count) value /= total;

  BaselineCosts costs;
  // An update fires whenever the count is M-1 and a move happens.
  costs.update = weights.update_cost * count.back() * q;

  // Ring distribution at call instants: mix the pure walks over counts.
  std::vector<double> rings(static_cast<std::size_t>(threshold) + 1, 0.0);
  std::vector<double> walk(rings.size(), 0.0);
  walk[0] = 1.0;
  for (int j = 0; j < max_moves; ++j) {
    if (j > 0) walk_step(dim, walk);
    for (std::size_t i = 0; i < rings.size(); ++i) {
      rings[i] += count[static_cast<std::size_t>(j)] * walk[i];
    }
  }

  const costs::Partition partition = costs::Partition::sdf(threshold, bound);
  costs.paging = c * weights.poll_cost *
                 partition.expected_polled_cells(rings, dim);
  costs.expected_delay_cycles = partition.expected_delay_cycles(rings);
  return costs;
}

BaselineCosts time_based_costs(Dimension dim, MobilityProfile profile,
                               CostWeights weights, std::int64_t period,
                               int rings_per_cycle) {
  profile.validate();
  weights.validate();
  PCN_EXPECT(period >= 1, "time_based_costs: period must be >= 1");
  PCN_EXPECT(rings_per_cycle >= 1,
             "time_based_costs: rings_per_cycle must be >= 1");
  const double q = profile.move_prob;
  const double c = profile.call_prob;
  // In a slot without a call the terminal moves with probability q/(1-c)
  // (chain-faithful competing events).
  const double conditional_move = c < 1.0 ? q / (1.0 - c) : 0.0;

  // Stationary elapsed-time distribution: π(e) ∝ (1-c)^{e-1}, e in 1..T.
  const auto t = static_cast<std::size_t>(period);
  std::vector<double> elapsed(t + 1, 0.0);  // index e = 1..T
  double mass = 1.0;
  double total = 0.0;
  for (std::size_t e = 1; e <= t; ++e) {
    elapsed[e] = mass;
    total += mass;
    mass *= 1.0 - c;
  }
  for (double& value : elapsed) value /= total;

  BaselineCosts costs;
  // The update fires on every visit to e = T (before a same-slot call).
  costs.update = weights.update_cost * elapsed[t];

  // Expanding-ring paging: a terminal at ring i with knowledge radius e is
  // found in cycle floor(i/g)+1 after polling all rings through the end of
  // that group (clamped to the radius).
  auto polled_cells = [&](int ring, int radius) {
    const int group_end = (ring / rings_per_cycle + 1) * rings_per_cycle - 1;
    return static_cast<double>(
        geometry::cells_within(dim, std::min(group_end, radius)));
  };
  auto cycles_for = [&](int ring) { return ring / rings_per_cycle + 1; };

  double expected_polled = 0.0;
  double expected_cycles = 0.0;
  std::vector<double> rings(t, 0.0);  // support after at most T-1 slots
  rings[0] = 1.0;
  std::vector<double> moved(rings.size(), 0.0);
  for (std::size_t e = 1; e <= t; ++e) {
    if (e > 1) {
      // Advance the lazy walk by one slot (to e-1 slots since reset).
      moved = rings;
      walk_step(dim, moved);
      for (std::size_t i = 0; i < rings.size(); ++i) {
        rings[i] = (1.0 - conditional_move) * rings[i] +
                   conditional_move * moved[i];
      }
    }
    if (e == t) {
      // A call in the update slot is paged right after the update with a
      // fresh center: one cell, one cycle.
      expected_polled += elapsed[e] * 1.0;
      expected_cycles += elapsed[e] * 1.0;
      continue;
    }
    const int radius = static_cast<int>(e);
    double polled = 0.0;
    double cycles = 0.0;
    for (std::size_t i = 0; i < e; ++i) {  // position within e-1 rings
      if (rings[i] == 0.0) continue;
      polled += rings[i] * polled_cells(static_cast<int>(i), radius);
      cycles += rings[i] * static_cast<double>(cycles_for(static_cast<int>(i)));
    }
    expected_polled += elapsed[e] * polled;
    expected_cycles += elapsed[e] * cycles;
  }
  costs.paging = c * weights.poll_cost * expected_polled;
  costs.expected_delay_cycles = expected_cycles;
  return costs;
}

}  // namespace pcn::baselines
