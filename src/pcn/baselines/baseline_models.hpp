// Analytical cost models for the baseline update schemes (Bar-Noy,
// Kessler & Sidi [3]) under the paper's slotted mobility model — so the
// distance-vs-baseline comparison is available in closed form, not only by
// simulation.  Both models are exact for the simulator's chain-faithful
// semantics and are validated against it in tests.
//
// Movement-based (threshold M): update after M cell crossings.
//   * The crossing count j ∈ {0..M-1} is a birth chain with reset: per
//     slot, a call (prob c) resets it, a move (prob q) increments it, and
//     reaching M updates.  Stationary: π_j ∝ (q/(q+c))^j.
//   * Given the count j at a call instant (calls see the stationary law),
//     the terminal's ring distance is the pure direction walk after
//     exactly j moves — `walk_ring_distribution`.
//   * Paging = SDF partition of the disk of radius M-1 under the delay
//     bound, exactly what the simulator's movement terminal executes.
//
// Time-based (period T): update every T slots since the last reset.
//   * The elapsed time e ∈ {1..T} since reset satisfies π(e) ∝ (1-c)^{e-1}
//     (each further slot survives without a call); reaching e = T updates.
//   * At a call with elapsed e, the e-1 prior slots each moved with the
//     conditional probability q' = q/(1-c) (the slot had no call), so the
//     position follows the lazy walk after e-1 slots —
//     `lazy_walk_ring_distribution`.  A call in the update slot (e = T) is
//     paged after the update with radius 0.
//   * Paging = expanding-ring search from the stale center (the
//     simulator's growing-disk knowledge), `rings_per_cycle` per cycle.
#pragma once

#include <vector>

#include "pcn/common/params.hpp"

namespace pcn::baselines {

/// Expected per-slot costs of a baseline policy.
struct BaselineCosts {
  double update = 0.0;  ///< counterpart of C_u
  double paging = 0.0;  ///< counterpart of C_v
  double expected_delay_cycles = 0.0;  ///< mean paging delay per call

  double total() const { return update + paging; }
};

/// Ring-distance distribution after exactly `moves` steps of the pure
/// direction walk from the center (each step goes outward/inward with the
/// geometry's ring-averaged probabilities; from ring 0 always outward).
/// Returns moves+1 entries.
std::vector<double> walk_ring_distribution(Dimension dim, int moves);

/// Ring-distance distribution after `slots` slots of the lazy walk: each
/// slot moves with probability `move_prob`, else stays.  Returns slots+1
/// entries.
std::vector<double> lazy_walk_ring_distribution(Dimension dim,
                                                double move_prob, int slots);

/// Exact expected costs of the movement-based policy with threshold
/// `max_moves` >= 1 and SDF paging under `bound` — the analytic twin of
/// sim::make_movement_terminal.
BaselineCosts movement_based_costs(Dimension dim, MobilityProfile profile,
                                   CostWeights weights, int max_moves,
                                   DelayBound bound);

/// Exact expected costs of the time-based policy with period `period` >= 1
/// and expanding-ring paging (`rings_per_cycle` rings per polling cycle) —
/// the analytic twin of sim::make_time_terminal.
BaselineCosts time_based_costs(Dimension dim, MobilityProfile profile,
                               CostWeights weights, std::int64_t period,
                               int rings_per_cycle = 1);

}  // namespace pcn::baselines
