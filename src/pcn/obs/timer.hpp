// Scoped wall-clock timing and a lock-free span trace for the hot paths.
//
// `ScopedTimer` measures one region with the steady clock and, on scope
// exit, adds the elapsed nanoseconds to a Counter (per-shard, relaxed — the
// same cost as any counter increment) and optionally records a span into a
// `TraceRing`.
//
// `TraceRing` is a fixed-capacity ring of the most recent spans.  Writers
// claim a slot with one atomic fetch_add and publish every field through
// relaxed atomics plus a release on the sequence word, so recording is
// wait-free and TSan-clean from any number of threads; `recent()` copies
// out the retained spans and drops slots that were mid-rewrite (sequence
// mismatch) instead of blocking writers.  Intended use: keep the ring
// attached during a run and dump the last N spans when something goes
// wrong — see docs/observability.md.
//
// Span names must be string literals (or otherwise outlive the ring): the
// ring stores the pointer, never a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pcn/obs/metrics.hpp"

namespace pcn::obs {

/// Monotonic timestamp in nanoseconds (std::chrono::steady_clock).
std::int64_t monotonic_ns();

struct TraceSpan {
  const char* name = "";
  std::int64_t start_ns = 0;     ///< monotonic_ns() at entry
  std::int64_t duration_ns = 0;
  std::uint32_t shard = 0;
};

class TraceRing {
 public:
  /// Capacity is rounded up to a power of two; at most that many most
  /// recent spans are retained.
  explicit TraceRing(std::size_t capacity = 256);

  void record(const char* name, std::int64_t start_ns,
              std::int64_t duration_ns, std::uint32_t shard = 0) noexcept;

  /// The retained spans, oldest first.  Skips slots concurrently being
  /// rewritten; safe to call while writers keep recording.
  std::vector<TraceSpan> recent() const;

  /// Multi-line human-readable dump of recent() (for error paths).
  std::string format() const;

  std::size_t capacity() const { return capacity_; }
  /// Total spans ever recorded (>= retained count).
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    /// Even ticket published after the fields: readers pair an acquire
    /// load of `seq` with the writer's release store and re-check it after
    /// copying, a seqlock with atomic fields (no torn reads, TSan-clean).
    std::atomic<std::uint64_t> seq{0};
    std::atomic<const char*> name{""};
    std::atomic<std::int64_t> start_ns{0};
    std::atomic<std::int64_t> duration_ns{0};
    std::atomic<std::uint32_t> shard{0};
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
};

/// RAII region timer; see the header comment.  Null counter handles make
/// the timer a cheap no-op apart from the clock reads.
class ScopedTimer {
 public:
  explicit ScopedTimer(Counter ns_counter, std::size_t shard = 0)
      : ScopedTimer(ns_counter, nullptr, "", shard) {}
  ScopedTimer(Counter ns_counter, TraceRing* ring, const char* name,
              std::size_t shard = 0)
      : counter_(ns_counter),
        ring_(ring),
        name_(name),
        shard_(shard),
        start_ns_(monotonic_ns()) {}
  ~ScopedTimer() {
    const std::int64_t elapsed = monotonic_ns() - start_ns_;
    counter_.add(elapsed, shard_);
    if (ring_ != nullptr) {
      ring_->record(name_, start_ns_, elapsed,
                    static_cast<std::uint32_t>(shard_));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  std::int64_t elapsed_ns() const { return monotonic_ns() - start_ns_; }

 private:
  Counter counter_;
  TraceRing* ring_;
  const char* name_;
  std::size_t shard_;
  std::int64_t start_ns_;
};

}  // namespace pcn::obs
