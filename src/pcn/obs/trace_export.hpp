// Serialization of flight-recorder recordings.
//
// Two formats:
//   * `pcn.trace.v1` JSONL — line 1 is a header object carrying the run's
//     model parameters (so `pcnctl trace-summary` can rebuild the cost
//     model without the original command line), then one JSON object per
//     event in (slot, terminal, seq) order.  Payload fields equal to their
//     FlightEvent defaults are omitted, so parsing a line into a
//     default-constructed event round-trips exactly.
//   * Chrome `trace_event` JSON — loadable in Perfetto (ui.perfetto.dev)
//     or chrome://tracing.  Terminals map to threads; each recorded call
//     becomes a duration slice (1 slot = 1 ms of trace time) with nested
//     per-cycle slices, and update / lost / reset / fallback events become
//     thread-scoped instants.
//
// Both exporters are deterministic functions of (meta, events): byte-
// identical output for byte-identical recordings, which is what the
// 1-vs-N-thread determinism tests assert.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pcn/obs/flight_recorder.hpp"

namespace pcn::obs {

/// Run parameters carried in the trace header — everything the analysis
/// pass needs to compare a recording against the paper's cost model.
struct TraceMeta {
  int dimension = 1;  ///< 1 or 2
  std::string semantics = "chain_faithful";
  std::uint64_t seed = 0;
  int threads = 1;
  std::int64_t slots = 0;
  double move_prob = 0.0;   ///< q
  double call_prob = 0.0;   ///< c
  double update_cost = 0.0; ///< U
  double poll_cost = 0.0;   ///< V
  /// Update-policy family the fleet ran ("distance", "movement", "time",
  /// "la", or "mixed" when terminals differ).
  std::string policy;
  std::int64_t param = 0;  ///< policy parameter (threshold d for distance)
  std::string scheme = "sdf";  ///< partition scheme (distance policy)
  int delay_cycles = 0;        ///< delay bound m; 0 = unbounded
  std::uint64_t sample_every = 1;
  std::uint64_t dropped_events = 0;

  friend bool operator==(const TraceMeta&, const TraceMeta&) = default;
};

/// The `pcn.trace.v1` JSONL document (header line + one line per event;
/// ends with a newline).
std::string to_trace_jsonl(const TraceMeta& meta,
                           const std::vector<FlightEvent>& events);

/// Parses a `pcn.trace.v1` document.  On failure returns false and fills
/// `*error` with a line-qualified reason; `meta`/`events` may be partially
/// filled.
bool parse_trace_jsonl(std::string_view text, TraceMeta* meta,
                       std::vector<FlightEvent>* events, std::string* error);

/// The Chrome trace_event JSON document for the recording (one slot of
/// simulated time renders as 1 ms).
std::string to_chrome_trace(const TraceMeta& meta,
                            const std::vector<FlightEvent>& events);

}  // namespace pcn::obs
