// Low-overhead runtime telemetry: a registry of named counters, gauges and
// fixed-bucket histograms (paper-level observability for the C_u/C_v
// trade-off: where the signalling and the cycles actually go).
//
// Hot-path design.  Every counter and histogram bucket is an array of
// kShards cache-line-padded atomic cells; a writer touches only
// cells[shard & kShardMask] with relaxed atomics, so concurrent simulator
// shards never contend and an increment costs about one uncontended atomic
// add.  Snapshots sum the cells with relaxed loads — writers are never
// blocked and never take a lock (registering a *new* metric takes the
// registry mutex, but handles are resolved once, off the hot path).
//
// Handles (Counter, Gauge, Histogram) are trivially copyable pointers into
// node-stable registry storage and stay valid for the registry's lifetime.
// A default-constructed handle is null; add()/observe() through it is a
// no-op, which lets instrumented code keep unconditional call sites and pay
// only a predicted branch when telemetry is detached.
//
// Naming scheme (see docs/observability.md): lowercase dotted paths,
// `<subsystem>.<object>.<property>`, e.g. `sim.page.polled_cells`,
// `costmodel.solve.miss`.  Durations are counters in nanoseconds with a
// `.ns` suffix.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pcn::obs {

/// Number of accumulation cells per metric (power of two).  Shard indices
/// from callers are folded with `& (kShards - 1)`, so any worker count
/// works; distinct shards below kShards never share a cell.
inline constexpr std::size_t kShards = 16;
inline constexpr std::size_t kShardMask = kShards - 1;

namespace detail {

/// One cache line per cell so concurrent shards never false-share.
struct alignas(64) Cell {
  std::atomic<std::int64_t> value{0};
};

struct CounterImpl {
  std::string name;
  Cell cells[kShards];
};

struct GaugeImpl {
  std::string name;
  std::atomic<double> value{0.0};
};

struct HistogramImpl {
  std::string name;
  /// Upper bounds, strictly increasing; observation x lands in the first
  /// bucket with x <= bounds[i] (Prometheus `le` semantics), or in the
  /// overflow bucket at index bounds.size().
  std::vector<double> bounds;
  /// bounds.size() + 1 bucket rows, each kShards cells.
  std::vector<Cell> cells;
  /// Sum of observed values, accumulated per shard without contention.
  struct alignas(64) SumCell {
    std::atomic<double> value{0.0};
  };
  std::vector<SumCell> sums;  // kShards entries
};

}  // namespace detail

/// Monotonically increasing integer metric.
class Counter {
 public:
  Counter() = default;

  void add(std::int64_t delta, std::size_t shard = 0) noexcept {
    if (impl_ == nullptr) return;
    impl_->cells[shard & kShardMask].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void increment(std::size_t shard = 0) noexcept { add(1, shard); }

  /// Sum over all shards (relaxed; concurrent writers allowed).
  std::int64_t value() const noexcept;

  bool valid() const noexcept { return impl_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterImpl* impl) : impl_(impl) {}
  detail::CounterImpl* impl_ = nullptr;
};

/// Last-write-wins floating-point level (occupancy, rates, config echoes).
class Gauge {
 public:
  Gauge() = default;

  void set(double value) noexcept {
    if (impl_ != nullptr) {
      impl_->value.store(value, std::memory_order_relaxed);
    }
  }
  double value() const noexcept {
    return impl_ == nullptr ? 0.0
                            : impl_->value.load(std::memory_order_relaxed);
  }
  bool valid() const noexcept { return impl_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeImpl* impl) : impl_(impl) {}
  detail::GaugeImpl* impl_ = nullptr;
};

/// Fixed-bucket histogram; bucket layout is chosen at registration and
/// never reallocated, so observation is lock-free like Counter::add.
class Histogram {
 public:
  Histogram() = default;

  void observe(double value, std::size_t shard = 0) noexcept;

  /// Total observations / sum of observed values across shards.
  std::int64_t count() const noexcept;
  double sum() const noexcept;

  bool valid() const noexcept { return impl_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramImpl* impl) : impl_(impl) {}
  detail::HistogramImpl* impl_ = nullptr;
};

// --- Snapshots ---------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;            ///< upper bounds (le)
  std::vector<std::int64_t> counts;      ///< bounds.size() + 1 entries
  std::int64_t count = 0;                ///< total observations
  double sum = 0.0;                      ///< sum of observed values

  double mean() const { return count == 0 ? 0.0 : sum / double(count); }
};

/// A point-in-time copy of every metric, sorted by name within each kind.
/// Taken with relaxed loads while writers keep writing: each individual
/// cell read is atomic, so totals are consistent up to increments that
/// land mid-snapshot (no torn values, no writer stalls).
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* find_counter(std::string_view name) const;
  const GaugeSample* find_gauge(std::string_view name) const;
  const HistogramSample* find_histogram(std::string_view name) const;
  /// find_counter(name)->value, or 0 when absent.
  std::int64_t counter_value(std::string_view name) const;
};

// --- Registry ----------------------------------------------------------------

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create.  Names must be non-empty lowercase dotted paths over
  /// [a-z0-9_.]; a second registration of the same name returns a handle to
  /// the same metric (for histograms the bucket bounds must then match).
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot snapshot() const;

  /// Registered metric count (all kinds), for tests and sanity checks.
  std::size_t size() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Exponential bucket upper bounds: start, start*factor, ... (`count`
/// entries) — the usual latency-histogram layout.
std::vector<double> exponential_buckets(double start, double factor,
                                        int count);
/// Linear bucket upper bounds: start, start+width, ... (`count` entries).
std::vector<double> linear_buckets(double start, double width, int count);

}  // namespace pcn::obs
