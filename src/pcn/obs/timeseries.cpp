#include "pcn/obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace pcn::obs {

namespace {

bool ends_with(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.substr(name.size() - suffix.size()) == suffix;
}

}  // namespace

bool timeseries_series_is_deterministic(std::string_view name) {
  // Duration counters measure wall clock / TSC, never slot-indexed state.
  if (ends_with(name, "_ns") || ends_with(name, "_us")) return false;
  if (ends_with(name, ".ns") || ends_with(name, ".us")) return false;
  // Known scheduling- or sampling-dependent simulator series:
  //   sim.page.sampled / sim.page.cycles / sim.page.polled_per_call —
  //     1-in-32 cycle sampling keyed to a per-scratch tick, so the set of
  //     sampled polls depends on how terminals were sharded;
  //   sim.segment.parallel — counts segments that took the worker-pool
  //     path, which is precisely the thread-count decision.
  return name != "sim.page.sampled" && name != "sim.page.cycles" &&
         name != "sim.page.polled_per_call" && name != "sim.segment.parallel";
}

const Timeseries::Series* Timeseries::find(std::string_view name) const {
  for (const Series& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

MetricsSnapshot Timeseries::snapshot_at(std::size_t index) const {
  MetricsSnapshot out;
  if (index >= slots.size()) return out;
  for (const Series& s : series) {
    switch (s.kind) {
      case SeriesKind::kCounter:
        out.counters.push_back(CounterSample{s.name, s.values[index]});
        break;
      case SeriesKind::kGauge:
        out.gauges.push_back(GaugeSample{s.name, s.dvalues[index]});
        break;
      case SeriesKind::kHistogram: {
        HistogramSample h;
        h.name = s.name;
        h.bounds = s.bounds;
        h.counts.reserve(s.bucket_columns.size());
        for (const std::vector<std::int64_t>& column : s.bucket_columns) {
          h.counts.push_back(column[index]);
        }
        h.count = s.counts[index];
        h.sum = s.dvalues[index];
        out.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  // The dictionary preserves snapshot order (sorted per kind), but sort
  // defensively so find_counter()'s binary search holds for decoded files
  // whose dictionary order is merely plausible.
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

TimeseriesRecorder::TimeseriesRecorder(std::int64_t every_slots,
                                       std::size_t max_samples)
    : max_samples_(max_samples) {
  data_.every_slots = every_slots;
}

void TimeseriesRecorder::reserve(std::size_t expected_samples) {
  if (max_samples_ > 0) {
    expected_samples = std::min(expected_samples, max_samples_);
  }
  data_.slots.reserve(expected_samples);
  for (Timeseries::Series& s : data_.series) {
    s.values.reserve(expected_samples);
    s.dvalues.reserve(expected_samples);
    s.counts.reserve(expected_samples);
    for (std::vector<std::int64_t>& column : s.bucket_columns) {
      column.reserve(expected_samples);
    }
  }
}

void TimeseriesRecorder::fix_dictionary(const MetricsSnapshot& snapshot) {
  for (const CounterSample& c : snapshot.counters) {
    if (!timeseries_series_is_deterministic(c.name)) continue;
    Timeseries::Series s;
    s.name = c.name;
    s.kind = SeriesKind::kCounter;
    data_.series.push_back(std::move(s));
  }
  for (const GaugeSample& g : snapshot.gauges) {
    if (!timeseries_series_is_deterministic(g.name)) continue;
    Timeseries::Series s;
    s.name = g.name;
    s.kind = SeriesKind::kGauge;
    data_.series.push_back(std::move(s));
  }
  for (const HistogramSample& h : snapshot.histograms) {
    if (!timeseries_series_is_deterministic(h.name)) continue;
    Timeseries::Series s;
    s.name = h.name;
    s.kind = SeriesKind::kHistogram;
    s.bounds = h.bounds;
    s.bucket_columns.resize(h.bounds.size() + 1);
    data_.series.push_back(std::move(s));
  }
}

bool TimeseriesRecorder::sample(std::int64_t slot,
                                const MetricsSnapshot& snapshot) {
  if (!data_.slots.empty() && slot <= data_.slots.back()) return false;
  if (data_.series.empty() && data_.slots.empty()) fix_dictionary(snapshot);
  data_.slots.push_back(slot);
  for (Timeseries::Series& s : data_.series) {
    switch (s.kind) {
      case SeriesKind::kCounter: {
        const CounterSample* c = snapshot.find_counter(s.name);
        s.values.push_back(c == nullptr ? 0 : c->value);
        break;
      }
      case SeriesKind::kGauge: {
        const GaugeSample* g = snapshot.find_gauge(s.name);
        s.dvalues.push_back(g == nullptr ? 0.0 : g->value);
        break;
      }
      case SeriesKind::kHistogram: {
        const HistogramSample* h = snapshot.find_histogram(s.name);
        for (std::size_t i = 0; i < s.bucket_columns.size(); ++i) {
          const bool have = h != nullptr && h->counts.size() ==
                                                s.bucket_columns.size();
          s.bucket_columns[i].push_back(have ? h->counts[i] : 0);
        }
        s.counts.push_back(h == nullptr ? 0 : h->count);
        s.dvalues.push_back(h == nullptr ? 0.0 : h->sum);
        break;
      }
    }
  }
  trim_to_max();
  return true;
}

void TimeseriesRecorder::trim_to_max() {
  if (max_samples_ == 0 || data_.slots.size() <= max_samples_) return;
  const std::size_t drop = data_.slots.size() - max_samples_;
  data_.slots.erase(data_.slots.begin(),
                    data_.slots.begin() + static_cast<std::ptrdiff_t>(drop));
  for (Timeseries::Series& s : data_.series) {
    const auto trim = [drop](auto& column) {
      if (column.size() >= drop) {
        column.erase(column.begin(),
                     column.begin() + static_cast<std::ptrdiff_t>(drop));
      }
    };
    trim(s.values);
    trim(s.dvalues);
    trim(s.counts);
    for (std::vector<std::int64_t>& column : s.bucket_columns) trim(column);
  }
}

Changepoint detect_upward_shift(std::span<const std::int64_t> slots,
                                std::span<const double> values,
                                const ChangepointConfig& config) {
  Changepoint out;
  const std::size_t n = std::min(slots.size(), values.size());
  if (n < 2) return out;

  std::size_t baseline = std::max<std::size_t>(config.baseline_samples, 1);
  baseline = std::min(baseline, n / 2);
  baseline = std::max<std::size_t>(baseline, 1);

  double mean = 0.0;
  for (std::size_t i = 0; i < baseline; ++i) mean += values[i];
  mean /= static_cast<double>(baseline);
  double variance = 0.0;
  for (std::size_t i = 0; i < baseline; ++i) {
    const double d = values[i] - mean;
    variance += d * d;
  }
  variance /= static_cast<double>(baseline);

  // Scale floor: a perfectly flat baseline (sigma 0) is the common
  // pre-overload case, so floor sigma at a small fraction of the series
  // magnitude.  An all-zero series then has scale ~0 bounded away from 0
  // by the absolute epsilon, and no step ever accumulates.
  double magnitude = std::abs(mean);
  for (std::size_t i = 0; i < n; ++i) {
    magnitude = std::max(magnitude, std::abs(values[i]));
  }
  out.baseline_mean = mean;
  out.scale = std::max(std::sqrt(variance),
                       std::max(1e-3 * magnitude, 1e-12));

  double score = 0.0;
  for (std::size_t i = baseline; i < n; ++i) {
    const double z = (values[i] - mean) / out.scale;
    score = std::max(0.0, score + z - config.drift_sigmas);
    out.peak_score = std::max(out.peak_score, score);
    if (!out.detected && score >= config.threshold_sigmas) {
      out.detected = true;
      out.onset_index = i;
      out.onset_slot = slots[i];
    }
  }
  return out;
}

}  // namespace pcn::obs
