#include "pcn/obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "pcn/common/error.hpp"

namespace pcn::obs {

void JsonWriter::append_escaped(std::string_view text) {
  out_ += '"';
  for (const char ch : text) {
    switch (ch) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out_ += buf;
        } else {
          out_ += ch;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::before_value() {
  if (scopes_.empty()) {
    PCN_ASSERT(out_.empty());  // a document holds exactly one root value
    return;
  }
  if (scopes_.back() == Scope::kObject) {
    PCN_ASSERT(key_pending_);  // object members need key() first
    key_pending_ = false;
    return;
  }
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  scopes_.push_back(Scope::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PCN_ASSERT(!scopes_.empty() && scopes_.back() == Scope::kObject &&
             !key_pending_);
  out_ += '}';
  scopes_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  scopes_.push_back(Scope::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PCN_ASSERT(!scopes_.empty() && scopes_.back() == Scope::kArray);
  out_ += ']';
  scopes_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  PCN_ASSERT(!scopes_.empty() && scopes_.back() == Scope::kObject &&
             !key_pending_);
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  append_escaped(name);
  out_ += ':';
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  append_escaped(text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), number);
  PCN_ASSERT(result.ec == std::errc());
  out_.append(buf, result.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof(buf), number);
  PCN_ASSERT(result.ec == std::errc());
  out_.append(buf, result.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof(buf), number);
  PCN_ASSERT(result.ec == std::errc());
  out_.append(buf, result.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
  return *this;
}

std::string JsonWriter::take() {
  PCN_ASSERT(scopes_.empty() && !key_pending_ && !out_.empty());
  return std::move(out_);
}

}  // namespace pcn::obs
