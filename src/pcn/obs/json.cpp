#include "pcn/obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "pcn/common/error.hpp"

namespace pcn::obs {

void JsonWriter::append_escaped(std::string_view text) {
  out_ += '"';
  for (const char ch : text) {
    switch (ch) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out_ += buf;
        } else {
          out_ += ch;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::before_value() {
  if (scopes_.empty()) {
    PCN_ASSERT(out_.empty());  // a document holds exactly one root value
    return;
  }
  if (scopes_.back() == Scope::kObject) {
    PCN_ASSERT(key_pending_);  // object members need key() first
    key_pending_ = false;
    return;
  }
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  scopes_.push_back(Scope::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PCN_ASSERT(!scopes_.empty() && scopes_.back() == Scope::kObject &&
             !key_pending_);
  out_ += '}';
  scopes_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  scopes_.push_back(Scope::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PCN_ASSERT(!scopes_.empty() && scopes_.back() == Scope::kArray);
  out_ += ']';
  scopes_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  PCN_ASSERT(!scopes_.empty() && scopes_.back() == Scope::kObject &&
             !key_pending_);
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  append_escaped(name);
  out_ += ':';
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  append_escaped(text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), number);
  PCN_ASSERT(result.ec == std::errc());
  out_.append(buf, result.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof(buf), number);
  PCN_ASSERT(result.ec == std::errc());
  out_.append(buf, result.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof(buf), number);
  PCN_ASSERT(result.ec == std::errc());
  out_.append(buf, result.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
  return *this;
}

std::string JsonWriter::take() {
  PCN_ASSERT(scopes_.empty() && !key_pending_ && !out_.empty());
  return std::move(out_);
}

// --- Parser ------------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->kind == Kind::kNumber ? value->number
                                                         : fallback;
}

std::int64_t JsonValue::int_or(std::string_view key,
                               std::int64_t fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->kind == Kind::kNumber
             ? static_cast<std::int64_t>(value->number)
             : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->kind == Kind::kString
             ? value->string
             : std::string(fallback);
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->kind == Kind::kBool ? value->boolean
                                                        : fallback;
}

namespace {

/// Recursive-descent parser over a string_view; positions reported in the
/// error are byte offsets into the document.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue* out, std::string* error) {
    if (!parse_value(out)) {
      if (error != nullptr) *error = error_;
      return false;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
      if (error != nullptr) *error = error_;
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& reason) {
    if (error_.empty()) {
      error_ = reason + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + expected + "'");
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool parse_value(JsonValue* out) {
    if (depth_ > kMaxDepth) return fail("nesting too deep");
    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return consume_literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return consume_literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return consume_literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++depth_;
    if (!consume('{')) return false;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_whitespace();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_whitespace();
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      --depth_;
      return consume('}');
    }
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++depth_;
    if (!consume('[')) return false;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->array.push_back(std::move(value));
      skip_whitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      --depth_;
      return consume(']');
    }
  }

  bool parse_hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char ch = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (ch >= '0' && ch <= '9') {
        value |= static_cast<unsigned>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        value |= static_cast<unsigned>(ch - 'a' + 10);
      } else if (ch >= 'A' && ch <= 'F') {
        value |= static_cast<unsigned>(ch - 'A' + 10);
      } else {
        return fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void append_utf8(std::string* out, unsigned code_point) {
    if (code_point < 0x80) {
      *out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      *out += static_cast<char>(0xC0 | (code_point >> 6));
      *out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      *out += static_cast<char>(0xE0 | (code_point >> 12));
      *out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code_point >> 18));
      *out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  bool parse_string(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (ch == '"') {
        ++pos_;
        return true;
      }
      if (ch == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("truncated escape");
        const char escape = text_[pos_++];
        switch (escape) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            unsigned code_point = 0;
            if (!parse_hex4(&code_point)) return false;
            if (code_point >= 0xD800 && code_point <= 0xDBFF &&
                text_.substr(pos_, 2) == "\\u") {
              pos_ += 2;
              unsigned low = 0;
              if (!parse_hex4(&low)) return false;
              if (low >= 0xDC00 && low <= 0xDFFF) {
                code_point = 0x10000 + ((code_point - 0xD800) << 10) +
                             (low - 0xDC00);
              } else {
                return fail("invalid surrogate pair");
              }
            }
            append_utf8(out, code_point);
            break;
          }
          default: return fail("invalid escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(ch) < 0x20) {
        return fail("unescaped control character in string");
      }
      *out += ch;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    out->kind = JsonValue::Kind::kNumber;
    const auto result = std::from_chars(text_.data() + start,
                                        text_.data() + pos_, out->number);
    if (result.ec != std::errc() || result.ptr != text_.data() + pos_) {
      pos_ = start;
      return fail("invalid number");
    }
    return true;
  }

  static constexpr int kMaxDepth = 128;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue* out, std::string* error) {
  JsonValue value;
  JsonParser parser(text);
  if (!parser.parse(&value, error)) return false;
  *out = std::move(value);
  return true;
}

}  // namespace pcn::obs
