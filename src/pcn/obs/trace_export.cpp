#include "pcn/obs/trace_export.hpp"

#include <algorithm>
#include <unordered_map>

#include "pcn/obs/json.hpp"

namespace pcn::obs {

namespace {

constexpr std::string_view kSchema = "pcn.trace.v1";

void append_header(const TraceMeta& meta, std::string* out) {
  JsonWriter writer;
  writer.begin_object()
      .member("schema", kSchema)
      .member("dimension", meta.dimension)
      .member("semantics", meta.semantics)
      .member("seed", meta.seed)
      .member("threads", meta.threads)
      .member("slots", meta.slots)
      .member("move_prob", meta.move_prob)
      .member("call_prob", meta.call_prob)
      .member("update_cost", meta.update_cost)
      .member("poll_cost", meta.poll_cost)
      .member("policy", meta.policy)
      .member("param", meta.param)
      .member("scheme", meta.scheme)
      .member("delay_cycles", meta.delay_cycles)
      .member("sample_every", meta.sample_every)
      .member("dropped_events", meta.dropped_events)
      .end_object();
  *out += writer.take();
  *out += '\n';
}

void append_event(const FlightEvent& event, std::string* out) {
  JsonWriter writer;
  writer.begin_object()
      .member("slot", event.slot)
      .member("terminal", std::int64_t{event.terminal})
      .member("seq", std::uint64_t{event.seq})
      .member("type", to_string(event.type));
  if (event.call != 0) writer.member("call", event.call);
  if (event.cycle != -1) writer.member("cycle", std::int64_t{event.cycle});
  if (event.cells != 0) writer.member("cells", event.cells);
  if (event.cost != 0.0) writer.member("cost", event.cost);
  if (event.ring_lo != -1) {
    writer.member("ring_lo", std::int64_t{event.ring_lo});
  }
  if (event.ring_hi != -1) {
    writer.member("ring_hi", std::int64_t{event.ring_hi});
  }
  if (event.distance != -1) writer.member("distance", event.distance);
  if (event.found) writer.member("found", true);
  writer.end_object();
  *out += writer.take();
  *out += '\n';
}

bool fail_line(std::size_t line_number, std::string_view reason,
               std::string* error) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_number) + ": " +
             std::string(reason);
  }
  return false;
}

}  // namespace

std::string to_trace_jsonl(const TraceMeta& meta,
                           const std::vector<FlightEvent>& events) {
  std::string out;
  // ~64 bytes per compact event line is a comfortable overestimate.
  out.reserve(256 + events.size() * 64);
  append_header(meta, &out);
  for (const FlightEvent& event : events) append_event(event, &out);
  return out;
}

bool parse_trace_jsonl(std::string_view text, TraceMeta* meta,
                       std::vector<FlightEvent>* events, std::string* error) {
  std::size_t line_number = 0;
  std::size_t pos = 0;
  bool saw_header = false;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_number;
    if (line.empty()) continue;

    JsonValue value;
    std::string json_error;
    if (!parse_json(line, &value, &json_error)) {
      return fail_line(line_number, json_error, error);
    }
    if (!value.is_object()) {
      return fail_line(line_number, "expected a JSON object", error);
    }

    if (!saw_header) {
      if (value.string_or("schema", "") != kSchema) {
        return fail_line(line_number, "missing or unknown schema", error);
      }
      saw_header = true;
      if (meta != nullptr) {
        meta->dimension = static_cast<int>(value.int_or("dimension", 1));
        meta->semantics = value.string_or("semantics", "chain_faithful");
        meta->seed = static_cast<std::uint64_t>(value.int_or("seed", 0));
        meta->threads = static_cast<int>(value.int_or("threads", 1));
        meta->slots = value.int_or("slots", 0);
        meta->move_prob = value.number_or("move_prob", 0.0);
        meta->call_prob = value.number_or("call_prob", 0.0);
        meta->update_cost = value.number_or("update_cost", 0.0);
        meta->poll_cost = value.number_or("poll_cost", 0.0);
        meta->policy = value.string_or("policy", "");
        meta->param = value.int_or("param", 0);
        meta->scheme = value.string_or("scheme", "sdf");
        meta->delay_cycles =
            static_cast<int>(value.int_or("delay_cycles", 0));
        meta->sample_every =
            static_cast<std::uint64_t>(value.int_or("sample_every", 1));
        meta->dropped_events =
            static_cast<std::uint64_t>(value.int_or("dropped_events", 0));
      }
      continue;
    }

    FlightEvent event;
    const std::string type_name = value.string_or("type", "");
    if (!parse_flight_event_type(type_name, &event.type)) {
      return fail_line(line_number, "unknown event type \"" + type_name + '"',
                       error);
    }
    event.slot = value.int_or("slot", 0);
    event.terminal = value.int_or("terminal", 0);
    event.seq = static_cast<std::uint32_t>(value.int_or("seq", 0));
    event.call = static_cast<std::uint64_t>(value.int_or("call", 0));
    event.cycle = static_cast<std::int32_t>(value.int_or("cycle", -1));
    event.cells = value.int_or("cells", 0);
    event.cost = value.number_or("cost", 0.0);
    event.ring_lo = static_cast<std::int32_t>(value.int_or("ring_lo", -1));
    event.ring_hi = static_cast<std::int32_t>(value.int_or("ring_hi", -1));
    event.distance = value.int_or("distance", -1);
    event.found = value.bool_or("found", false);
    if (events != nullptr) events->push_back(event);
  }
  if (!saw_header) return fail_line(1, "empty document", error);
  return true;
}

namespace {

/// µs of trace time per simulated slot (renders as 1 ms in the viewer).
constexpr std::int64_t kSlotUs = 1000;

void chrome_event_prologue(JsonWriter& writer, std::string_view phase,
                           std::int64_t terminal) {
  writer.begin_object()
      .member("ph", phase)
      .member("pid", 1)
      .member("tid", std::int64_t{terminal});
}

void chrome_instant(JsonWriter& writer, const FlightEvent& event) {
  const bool daemon_page = event.type >= FlightEventType::kPageQueued;
  chrome_event_prologue(writer, "i", event.terminal);
  writer.member("ts", event.slot * kSlotUs)
      .member("s", "t")
      .member("name", to_string(event.type))
      .member("cat", daemon_page ? "daemon" : "update");
  writer.key("args").begin_object();
  if (event.cost != 0.0) writer.member("cost", event.cost);
  if (event.distance != -1) writer.member("distance", event.distance);
  if (event.cells != 0) writer.member("radius", event.cells);
  if (event.cycle != -1) writer.member("cycle", std::int64_t{event.cycle});
  writer.end_object().end_object();
}

/// An open call lifecycle: arrival seen, found not yet.
struct PendingCall {
  FlightEvent arrival;
  std::vector<FlightEvent> cycles;
  bool fallback = false;
};

void chrome_call(JsonWriter& writer, const PendingCall& pending,
                 const FlightEvent& found) {
  const std::int64_t ts = found.slot * kSlotUs;
  chrome_event_prologue(writer, "X", found.terminal);
  writer.member("ts", ts)
      .member("dur", kSlotUs)
      .member("name", "call " + std::to_string(found.call))
      .member("cat", "call");
  writer.key("args")
      .begin_object()
      .member("cycles", std::int64_t{found.cycle})
      .member("cells", found.cells)
      .member("cost", found.cost)
      .member("arrival_distance", found.distance)
      .member("containment_radius", pending.arrival.cells)
      .member("clean", found.found)
      .end_object()
      .end_object();

  const std::int64_t n =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                    pending.cycles.size()));
  const std::int64_t dur = std::max<std::int64_t>(1, kSlotUs / n);
  for (std::size_t i = 0; i < pending.cycles.size(); ++i) {
    const FlightEvent& cycle = pending.cycles[i];
    chrome_event_prologue(writer, "X", cycle.terminal);
    writer.member("ts", ts + static_cast<std::int64_t>(i) * dur)
        .member("dur", dur)
        .member("name", "cycle " + std::to_string(cycle.cycle + 1))
        .member("cat", "cycle");
    writer.key("args")
        .begin_object()
        .member("cells", cycle.cells)
        .member("cost", cycle.cost)
        .member("ring_lo", std::int64_t{cycle.ring_lo})
        .member("ring_hi", std::int64_t{cycle.ring_hi})
        .member("found", cycle.found)
        .end_object()
        .end_object();
  }
}

}  // namespace

std::string to_chrome_trace(const TraceMeta& meta,
                            const std::vector<FlightEvent>& events) {
  JsonWriter writer;
  writer.begin_object().member("displayTimeUnit", "ms");
  writer.key("otherData")
      .begin_object()
      .member("schema", kSchema)
      .member("dimension", meta.dimension)
      .member("semantics", meta.semantics)
      .member("seed", meta.seed)
      .member("threads", meta.threads)
      .member("slots", meta.slots)
      .member("policy", meta.policy)
      .member("sample_every", meta.sample_every)
      .end_object();
  writer.key("traceEvents").begin_array();

  std::vector<std::int64_t> terminals;
  for (const FlightEvent& event : events) terminals.push_back(event.terminal);
  std::sort(terminals.begin(), terminals.end());
  terminals.erase(std::unique(terminals.begin(), terminals.end()),
                  terminals.end());
  for (const std::int64_t terminal : terminals) {
    chrome_event_prologue(writer, "M", terminal);
    writer.member("name", "thread_name");
    writer.key("args")
        .begin_object()
        .member("name", "terminal " + std::to_string(terminal))
        .end_object()
        .end_object();
  }

  // Call lifecycles are contiguous per (terminal, slot) in merged order, but
  // track them per terminal anyway so a recording with dropped events still
  // exports what it can instead of mispairing.
  std::unordered_map<std::int64_t, PendingCall> pending;
  for (const FlightEvent& event : events) {
    switch (event.type) {
      case FlightEventType::kCallArrival:
        pending[event.terminal] = PendingCall{event, {}, false};
        break;
      case FlightEventType::kPollCycle: {
        auto it = pending.find(event.terminal);
        if (it != pending.end() && it->second.arrival.call == event.call) {
          it->second.cycles.push_back(event);
        }
        break;
      }
      case FlightEventType::kPageFallback: {
        auto it = pending.find(event.terminal);
        if (it != pending.end() && it->second.arrival.call == event.call) {
          it->second.fallback = true;
        }
        chrome_instant(writer, event);
        break;
      }
      case FlightEventType::kCallFound: {
        auto it = pending.find(event.terminal);
        if (it != pending.end() && it->second.arrival.call == event.call) {
          chrome_call(writer, it->second, event);
          pending.erase(it);
        }
        break;
      }
      case FlightEventType::kLocationUpdate:
      case FlightEventType::kUpdateLost:
      case FlightEventType::kAreaReset:
      case FlightEventType::kPageQueued:
      case FlightEventType::kPageServed:
      case FlightEventType::kPageDropped:
      case FlightEventType::kPageExpired:
        chrome_instant(writer, event);
        break;
    }
  }

  writer.end_array().end_object();
  return writer.take();
}

}  // namespace pcn::obs
