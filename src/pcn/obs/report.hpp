// Exporters for the telemetry subsystem.
//
// Two stable machine-readable outputs:
//   * Prometheus text exposition (`to_prometheus`) — every metric becomes
//     `pcn_<name with dots as underscores>`, histograms use the standard
//     cumulative `_bucket{le="..."}` / `_sum` / `_count` triplet.
//   * A JSON `RunReport` (`make_run_report` + `to_json`) — schema
//     `pcn.run_report.v1`: config echo, aggregate event counts, per-slot
//     cost rates, per-ring occupancy, the paging-delay histogram, a
//     wall-time breakdown from the `.ns` timer counters, throughput
//     (slots/sec and terminals x slots/sec), and the full metrics
//     snapshot.  `pcnctl simulate --metrics-out=FILE` and the tests
//     consume this shape; see docs/observability.md for how to read one.
//
// This header is the top layer of pcn/obs: unlike metrics.hpp / timer.hpp
// it may depend on the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pcn/obs/metrics.hpp"
#include "pcn/sim/network.hpp"

namespace pcn::obs {

/// Prometheus text exposition of a snapshot (sorted by metric name), with
/// `# HELP` / `# TYPE` headers per metric and label values escaped per the
/// text-format spec.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Escapes a label value for the Prometheus text format: backslash, double
/// quote and newline become \\, \" and \n.
std::string prometheus_escape_label_value(std::string_view value);

/// One-line help text for a metric name: a curated description for the
/// metrics this project emits, or a generic fallback naming the dotted
/// path.  Already escaped for use after `# HELP`.
std::string prometheus_help(std::string_view name);

/// Snapshot as a JSON object {"counters":{...},"gauges":{...},
/// "histograms":{name:{"bounds":[...],"counts":[...],"count":n,"sum":x}}}.
std::string to_json(const MetricsSnapshot& snapshot);

/// Everything a run produced, aggregated over terminals.  Wall-time and
/// throughput fields are zero unless the network ran with
/// NetworkConfig::collect_runtime_stats.
struct RunReport {
  // Config echo.
  std::string dimension;           ///< "1-D" / "2-D"
  std::string semantics;           ///< "chain-faithful" / "independent"
  std::uint64_t seed = 0;
  int threads = 1;
  bool collect_runtime_stats = false;
  bool count_signalling_bytes = true;
  double update_loss_prob = 0.0;

  int terminals = 0;
  std::int64_t slots = 0;  ///< slots simulated per terminal

  // Aggregate event counts (sums over terminals).
  std::int64_t moves = 0;
  std::int64_t calls = 0;
  std::int64_t updates = 0;
  std::int64_t lost_updates = 0;
  std::int64_t paging_failures = 0;
  std::int64_t polled_cells = 0;
  std::int64_t update_bytes = 0;
  std::int64_t paging_bytes = 0;

  // Fleet-average cost rates (the simulated C_u, C_v, C_T per slot).
  double update_cost_per_slot = 0.0;
  double paging_cost_per_slot = 0.0;
  double total_cost_per_slot = 0.0;

  /// Fraction of terminal-slots spent at each ring distance from the
  /// network's knowledge center (the empirical chain occupancy).
  std::vector<double> ring_occupancy;
  /// Calls located after exactly k polling cycles (index k; [0] unused).
  std::vector<std::int64_t> paging_delay_cycles;
  double mean_paging_delay_cycles = 0.0;
  /// Percentiles of the same distribution (0 when no calls arrived).
  int delay_p50 = 0;
  int delay_p95 = 0;
  int delay_p99 = 0;
  int delay_max = 0;
  /// Tightest bounded paging delay bound m across the fleet's policies
  /// (0 when every policy is unbounded), and the number of calls that took
  /// more cycles than their own terminal's bound — nonzero only when lost
  /// updates forced expanding-ring recovery.
  int sla_bound_cycles = 0;
  std::int64_t sla_violations = 0;

  // Wall time and throughput, from the runtime-stats registry.
  double run_wall_seconds = 0.0;
  double slots_per_sec = 0.0;
  double terminal_slots_per_sec = 0.0;

  MetricsSnapshot metrics;
};

/// Builds the report from a finished (or paused) simulation.
RunReport make_run_report(const sim::Network& network);

/// Serializes the report (schema pcn.run_report.v1, compact JSON).
std::string to_json(const RunReport& report);

/// Writes `contents` to `path`, "-" meaning stdout.  Returns false and
/// fills `*error` with a path-qualified reason on failure.
bool write_file(const std::string& path, std::string_view contents,
                std::string* error);

/// Reads the whole file at `path` ("-" meaning stdin) into `*out`.
/// Returns false and fills `*error` with a path-qualified reason on
/// failure.
bool read_file(const std::string& path, std::string* out, std::string* error);

}  // namespace pcn::obs
