// Binary codec for run timelines: the `pcn.timeseries.v1` columnar format.
//
// Layout (all integers are wire varints unless noted):
//
//   bytes   "pcn.timeseries.v1"          length-prefixed schema string
//   varint  every_slots
//   varint  sample_count
//   column  slot indices                 zigzag delta-encoded (first value
//                                        absolute, then successive deltas)
//   varint  series_count
//   dictionary, series_count entries:
//     bytes  name
//     u8     kind (SeriesKind)
//     if histogram: varint bounds_count, then bounds_count f64-LE bounds
//   column blocks, series_count entries, each:
//     varint series index (into the dictionary; writer emits 0..n-1)
//     counter:    sample_count zigzag-delta varints
//     gauge:      sample_count f64-LE values
//     histogram:  counts column (zigzag-delta), sums (f64-LE),
//                 then bounds_count + 1 bucket columns (zigzag-delta)
//   u32-LE  CRC-32 (IEEE) over every preceding byte
//
// The reader validates the CRC *before* parsing anything, so a truncated
// or bit-flipped file always yields a qualified proto::DecodeError and
// never drives allocation from corrupted lengths.  Encoding is
// deterministic: encode(decode(bytes)) == bytes for any valid file.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pcn/obs/timeseries.hpp"

namespace pcn::obs {

/// Serialise to pcn.timeseries.v1 bytes (deterministic).
std::vector<std::uint8_t> encode_timeseries(const Timeseries& series);

/// Parse pcn.timeseries.v1 bytes; throws proto::DecodeError on any
/// corruption (bad CRC, truncation, bad schema, out-of-range dictionary
/// index, duplicate or missing column block, trailing garbage).
Timeseries decode_timeseries(std::span<const std::uint8_t> bytes);

/// encode_timeseries as a std::string (for write_file / socket replies).
std::string encode_timeseries_string(const Timeseries& series);

/// decode_timeseries over string contents (as returned by read_file).
Timeseries decode_timeseries_string(std::string_view bytes);

/// Write the encoded timeline to `path` ("-" = stdout).  Returns false and
/// fills `*error` on failure.
bool write_timeseries_file(const std::string& path, const Timeseries& series,
                           std::string* error);

/// Read and decode a timeline from `path` ("-" = stdin).  Returns false
/// and fills `*error` on IO failure or decode error.
bool read_timeseries_file(const std::string& path, Timeseries* out,
                          std::string* error);

}  // namespace pcn::obs
