#include "pcn/obs/trace_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "pcn/costs/cost_model.hpp"

namespace pcn::obs {

namespace {

/// Smallest cycle count whose cumulative share reaches `quantile`.
int percentile(const std::vector<std::int64_t>& hist, std::int64_t total,
               double quantile) {
  if (total <= 0) return 0;
  const double target = quantile * static_cast<double>(total);
  std::int64_t cumulative = 0;
  for (std::size_t k = 0; k < hist.size(); ++k) {
    cumulative += hist[k];
    // The first crossing necessarily lands on a non-empty bucket.
    if (static_cast<double>(cumulative) >= target) {
      return static_cast<int>(k);
    }
  }
  return static_cast<int>(hist.size()) - 1;
}

void bump(std::vector<std::int64_t>& hist, std::size_t index) {
  if (hist.size() <= index) hist.resize(index + 1, 0);
  ++hist[index];
}

}  // namespace

TraceAnalysis analyze_trace(const TraceMeta& meta,
                            const std::vector<FlightEvent>& events) {
  TraceAnalysis analysis;
  analysis.sla_bound = meta.delay_cycles;
  double clean_cost = 0.0;
  for (const FlightEvent& event : events) {
    switch (event.type) {
      case FlightEventType::kPollCycle: {
        const auto k = static_cast<std::size_t>(std::max(0, event.cycle));
        if (analysis.per_cycle.size() <= k) {
          analysis.per_cycle.resize(k + 1);
        }
        CycleBreakdown& cycle = analysis.per_cycle[k];
        ++cycle.reached;
        if (event.found) ++cycle.found;
        cycle.cells += event.cells;
        cycle.cost += event.cost;
        break;
      }
      case FlightEventType::kCallFound: {
        ++analysis.calls;
        const auto cycles = static_cast<std::size_t>(std::max(1, event.cycle));
        bump(analysis.cycles_hist, cycles);
        if (event.found) {
          ++analysis.clean_calls;
          bump(analysis.clean_cycles_hist, cycles);
          clean_cost += event.cost;
        } else {
          ++analysis.fallback_calls;
        }
        analysis.total_cells += event.cells;
        analysis.total_cost += event.cost;
        if (analysis.sla_bound > 0 && event.cycle > analysis.sla_bound) {
          analysis.violations.push_back(
              {event.slot, event.terminal, event.call, event.cycle});
        }
        break;
      }
      case FlightEventType::kLocationUpdate: ++analysis.updates; break;
      case FlightEventType::kUpdateLost: ++analysis.updates_lost; break;
      case FlightEventType::kAreaReset: ++analysis.resets; break;
      case FlightEventType::kPageQueued: ++analysis.pages_queued; break;
      case FlightEventType::kPageServed:
        ++analysis.pages_served;
        // cycle carries the queueing delay in slots for daemon events.
        if (analysis.sla_bound > 0 && event.cycle > analysis.sla_bound) {
          analysis.violations.push_back(
              {event.slot, event.terminal, event.call, event.cycle});
        }
        break;
      case FlightEventType::kPageDropped:
        // A dropped page never reaches the paging channel: the callee is
        // unreachable, which violates any delay SLA regardless of bound.
        ++analysis.pages_dropped;
        analysis.violations.push_back({event.slot, event.terminal, event.call,
                                       SlaViolation::kDroppedPage});
        break;
      case FlightEventType::kPageExpired:
        ++analysis.pages_expired;
        analysis.violations.push_back({event.slot, event.terminal, event.call,
                                       SlaViolation::kExpiredPage});
        break;
      case FlightEventType::kCallArrival:
      case FlightEventType::kPageFallback: break;
    }
  }

  if (analysis.calls > 0) {
    std::int64_t cycle_sum = 0;
    for (std::size_t k = 0; k < analysis.cycles_hist.size(); ++k) {
      cycle_sum += static_cast<std::int64_t>(k) * analysis.cycles_hist[k];
      if (analysis.cycles_hist[k] > 0) {
        analysis.max_cycles = static_cast<int>(k);
      }
    }
    analysis.mean_cycles = static_cast<double>(cycle_sum) /
                           static_cast<double>(analysis.calls);
    analysis.p50 = percentile(analysis.cycles_hist, analysis.calls, 0.50);
    analysis.p95 = percentile(analysis.cycles_hist, analysis.calls, 0.95);
    analysis.p99 = percentile(analysis.cycles_hist, analysis.calls, 0.99);
    analysis.mean_cost =
        analysis.total_cost / static_cast<double>(analysis.calls);
  }
  if (analysis.clean_calls > 0) {
    analysis.clean_mean_cost =
        clean_cost / static_cast<double>(analysis.clean_calls);
  }
  return analysis;
}

namespace {

bool parse_scheme(std::string_view name, costs::PartitionScheme* out) {
  if (name == "sdf") {
    *out = costs::PartitionScheme::kSdfEqual;
  } else if (name == "optimal") {
    *out = costs::PartitionScheme::kOptimalContiguous;
  } else if (name == "hpf" || name == "highest_probability_first") {
    *out = costs::PartitionScheme::kHighestProbabilityFirst;
  } else {
    return false;
  }
  return true;
}

AlphaComparison not_applicable(std::string reason) {
  AlphaComparison comparison;
  comparison.applicable = false;
  comparison.reason = std::move(reason);
  return comparison;
}

/// Upper quantile of the chi-square distribution with `dof` degrees of
/// freedom via the Wilson–Hilferty cube approximation; `z` is the matching
/// standard-normal quantile (3.0902 for 99.9%).
double chi_square_quantile(int dof, double z) {
  const double k = static_cast<double>(dof);
  const double term = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * term * term * term;
}

}  // namespace

AlphaComparison compare_with_model(const TraceMeta& meta,
                                   const TraceAnalysis& analysis) {
  if (meta.policy != "distance") {
    return not_applicable("policy \"" + meta.policy +
                          "\" has no chain-model prediction (only the "
                          "distance policy does)");
  }
  if (meta.move_prob <= 0.0 || meta.call_prob <= 0.0) {
    return not_applicable("trace header lacks a mobility profile");
  }
  if (meta.param < 0) return not_applicable("negative threshold in header");
  costs::PartitionScheme scheme = costs::PartitionScheme::kSdfEqual;
  if (!parse_scheme(meta.scheme, &scheme)) {
    return not_applicable("unknown partition scheme \"" + meta.scheme + '"');
  }
  if (analysis.clean_calls <= 0) {
    return not_applicable("no clean calls recorded");
  }

  const Dimension dim =
      meta.dimension == 1 ? Dimension::kOneD : Dimension::kTwoD;
  const MobilityProfile profile{meta.move_prob, meta.call_prob};
  const CostWeights weights{meta.update_cost, meta.poll_cost};
  costs::CostModelOptions options;
  options.scheme = scheme;
  const auto model =
      costs::CostModel::exact(dim, profile, weights, options);
  const int threshold = static_cast<int>(meta.param);
  const DelayBound bound = meta.delay_cycles > 0
                               ? DelayBound(meta.delay_cycles)
                               : DelayBound::unbounded();
  const costs::Partition partition = model.partition(threshold, bound);
  const std::vector<double> probabilities = model.steady_state(threshold);

  AlphaComparison comparison;
  comparison.applicable = true;
  comparison.sample_size = analysis.clean_calls;
  comparison.observed_cost_per_call = analysis.clean_mean_cost;
  comparison.predicted_cost_per_call =
      meta.poll_cost *
      partition.expected_polled_cells(probabilities, dim);

  const int subareas = partition.subarea_count();
  comparison.predicted_alpha.resize(static_cast<std::size_t>(subareas), 0.0);
  comparison.observed_counts.resize(static_cast<std::size_t>(subareas), 0);
  comparison.observed_alpha.resize(static_cast<std::size_t>(subareas), 0.0);
  for (int j = 0; j < subareas; ++j) {
    double alpha = 0.0;
    for (const int ring : partition.rings(j)) {
      alpha += probabilities[static_cast<std::size_t>(ring)];
    }
    comparison.predicted_alpha[static_cast<std::size_t>(j)] = alpha;
    // Clean calls found in cycle j+1 correspond to subarea j.
    const auto cycle = static_cast<std::size_t>(j + 1);
    const std::int64_t observed =
        cycle < analysis.clean_cycles_hist.size()
            ? analysis.clean_cycles_hist[cycle]
            : 0;
    comparison.observed_counts[static_cast<std::size_t>(j)] = observed;
    comparison.observed_alpha[static_cast<std::size_t>(j)] =
        static_cast<double>(observed) /
        static_cast<double>(comparison.sample_size);
  }

  // Chi-square GOF with cells pooled left-to-right until each pooled cell
  // has expected count >= 5; a trailing short cell merges into the last.
  const double n = static_cast<double>(comparison.sample_size);
  std::vector<double> pooled_expected;
  std::vector<double> pooled_observed;
  double exp_acc = 0.0;
  double obs_acc = 0.0;
  for (int j = 0; j < subareas; ++j) {
    exp_acc += n * comparison.predicted_alpha[static_cast<std::size_t>(j)];
    obs_acc +=
        static_cast<double>(comparison.observed_counts[static_cast<std::size_t>(j)]);
    if (exp_acc >= 5.0) {
      pooled_expected.push_back(exp_acc);
      pooled_observed.push_back(obs_acc);
      exp_acc = obs_acc = 0.0;
    }
  }
  if (exp_acc > 0.0 || obs_acc > 0.0) {
    if (!pooled_expected.empty()) {
      pooled_expected.back() += exp_acc;
      pooled_observed.back() += obs_acc;
    } else if (exp_acc > 0.0) {
      pooled_expected.push_back(exp_acc);
      pooled_observed.push_back(obs_acc);
    }
  }

  comparison.dof = static_cast<int>(pooled_expected.size()) - 1;
  if (comparison.dof >= 1) {
    double statistic = 0.0;
    for (std::size_t i = 0; i < pooled_expected.size(); ++i) {
      const double diff = pooled_observed[i] - pooled_expected[i];
      statistic += diff * diff / pooled_expected[i];
    }
    comparison.chi_square = statistic;
    comparison.critical_999 = chi_square_quantile(comparison.dof, 3.0902);
    comparison.consistent = statistic <= comparison.critical_999;
  } else {
    // A single pooled cell (or none) carries no information to test.
    comparison.dof = std::max(comparison.dof, 0);
    comparison.consistent = true;
  }
  return comparison;
}

}  // namespace pcn::obs
