#include "pcn/obs/rolling_window.hpp"

#include <algorithm>
#include <utility>

namespace pcn::obs {
namespace {

/// Value at cumulative-fraction `q` of a windowed histogram delta, linearly
/// interpolated inside the winning bucket (Prometheus histogram_quantile
/// semantics; the overflow bucket clamps to its lower bound).
double quantile_from_deltas(const std::vector<double>& bounds,
                            const std::vector<std::int64_t>& deltas,
                            std::int64_t total, double q) {
  if (total <= 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const std::int64_t in_bucket = deltas[i];
    if (in_bucket <= 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      if (i >= bounds.size()) {
        // Overflow bucket has no upper bound; report its lower edge.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double into =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

/// Upper bound of the highest non-empty bucket (the window's observed
/// maximum, to bucket resolution); the overflow bucket clamps to the last
/// finite bound like the interpolation above.
double max_from_deltas(const std::vector<double>& bounds,
                       const std::vector<std::int64_t>& deltas) {
  for (std::size_t i = deltas.size(); i-- > 0;) {
    if (deltas[i] <= 0) continue;
    if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
    return bounds[i];
  }
  return 0.0;
}

}  // namespace

RollingWindow::RollingWindow(std::int64_t bucket_interval_ns,
                             std::size_t capacity)
    : bucket_interval_ns_(bucket_interval_ns),
      capacity_(std::max<std::size_t>(capacity, 2)) {}

bool RollingWindow::maybe_add(std::int64_t now_ns, MetricsSnapshot snapshot) {
  if (!entries_.empty() &&
      now_ns - entries_.back().ts_ns < bucket_interval_ns_) {
    return false;
  }
  add(now_ns, std::move(snapshot));
  return true;
}

void RollingWindow::add(std::int64_t now_ns, MetricsSnapshot snapshot) {
  entries_.push_back(Entry{now_ns, std::move(snapshot)});
  while (entries_.size() > capacity_) entries_.pop_front();
}

const RollingWindow::Entry* RollingWindow::window_base(
    std::int64_t window_ns) const {
  if (entries_.size() < 2) return nullptr;
  const std::int64_t floor_ns = entries_.back().ts_ns - window_ns;
  // Oldest retained entry inside the window; the newest entry itself never
  // qualifies as the base (a rate needs a distinct earlier point).
  for (std::size_t i = 0; i + 1 < entries_.size(); ++i) {
    if (entries_[i].ts_ns >= floor_ns) return &entries_[i];
  }
  return nullptr;
}

std::optional<WindowRate> RollingWindow::rate(std::string_view counter_name,
                                              std::int64_t window_ns) const {
  const Entry* base = window_base(window_ns);
  if (base == nullptr) return std::nullopt;
  const Entry& newest = entries_.back();
  WindowRate out;
  out.span_ns = newest.ts_ns - base->ts_ns;
  const std::int64_t newest_value =
      newest.snapshot.counter_value(counter_name);
  out.delta = newest_value - base->snapshot.counter_value(counter_name);
  // A cumulative counter can only shrink when the process restarted; the
  // post-restart value is then the whole window's activity.
  if (out.delta < 0) out.delta = newest_value;
  if (out.span_ns > 0) {
    out.per_sec = static_cast<double>(out.delta) * 1e9 /
                  static_cast<double>(out.span_ns);
  }
  return out;
}

std::optional<WindowQuantiles> RollingWindow::quantiles(
    std::string_view histogram_name, std::int64_t window_ns,
    std::span<const double> wanted) const {
  const Entry* base = window_base(window_ns);
  if (base == nullptr) return std::nullopt;
  const HistogramSample* now =
      entries_.back().snapshot.find_histogram(histogram_name);
  if (now == nullptr) return std::nullopt;
  const HistogramSample* then =
      base->snapshot.find_histogram(histogram_name);

  std::vector<std::int64_t> deltas = now->counts;
  double sum_delta = now->sum;
  std::int64_t count_delta = now->count;
  if (then != nullptr && then->counts.size() == deltas.size()) {
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      deltas[i] -= then->counts[i];
    }
    sum_delta -= then->sum;
    count_delta -= then->count;
    // Cumulative bucket counts only shrink across a process restart;
    // treat the newest raw counts as the window, like rate() does.
    const bool reset =
        count_delta < 0 ||
        std::any_of(deltas.begin(), deltas.end(),
                    [](std::int64_t d) { return d < 0; });
    if (reset) {
      deltas = now->counts;
      sum_delta = now->sum;
      count_delta = now->count;
    }
  }

  WindowQuantiles out;
  out.count = count_delta;
  if (count_delta > 0) {
    out.mean = sum_delta / static_cast<double>(count_delta);
    out.max = max_from_deltas(now->bounds, deltas);
    out.values.reserve(wanted.size());
    for (const double q : wanted) {
      out.values.push_back(
          quantile_from_deltas(now->bounds, deltas, count_delta, q));
    }
  } else {
    out.values.assign(wanted.size(), 0.0);
  }
  return out;
}

}  // namespace pcn::obs
