#include "pcn/obs/report.hpp"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>

#include "pcn/common/error.hpp"
#include "pcn/obs/json.hpp"

namespace pcn::obs {
namespace {

/// `pcn_` prefix + dots flattened: sim.page.cycles -> pcn_sim_page_cycles.
std::string prometheus_name(std::string_view name) {
  std::string out = "pcn_";
  for (const char ch : name) out += ch == '.' ? '_' : ch;
  return out;
}

std::string format_double(double value) {
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  PCN_ASSERT(result.ec == std::errc());
  return std::string(buf, result.ptr);
}

/// Curated `# HELP` texts for the metrics this project emits.  Names not
/// listed fall back to a generic line; keep entries terse — they ship in
/// every scrape.
struct HelpEntry {
  std::string_view name;
  std::string_view help;
};

constexpr HelpEntry kHelpTable[] = {
    {"daemon.request.update", "Location-update requests submitted."},
    {"daemon.request.page", "Page requests submitted."},
    {"daemon.request.rejected_ring_full",
     "Requests rejected because the ingest ring was full."},
    {"daemon.update.applied", "Location updates applied to the registry."},
    {"daemon.update.stale", "Location updates discarded as stale."},
    {"daemon.page.queued", "Pages admitted to a cell paging queue."},
    {"daemon.page.duplicate",
     "Pages coalesced into an already-queued page."},
    {"daemon.page.dropped", "Pages dropped by queue admission."},
    {"daemon.page.expired", "Pages expired before a paging slot served them."},
    {"daemon.page.served", "Pages served over the paging channel."},
    {"daemon.page.unknown_terminal",
     "Pages addressed to terminals the registry does not know."},
    {"daemon.page.sla_violation",
     "Served pages that exceeded the delay bound."},
    {"daemon.page.queue_delay_slots",
     "Slots a page waited in its cell queue before being served."},
    {"daemon.slot.count", "Paging slots processed."},
    {"daemon.run.wall_ns", "Wall time spent inside run_slots, nanoseconds."},
    {"daemon.queue.max_depth",
     "Deepest cell paging queue observed over the run."},
    {"daemon.queue.depth", "Cell queue depth sampled at each slot."},
    {"daemon.queue.depth_pending",
     "Pages pending across all cell queues (live-stats walk)."},
    {"daemon.queue.cells_pending",
     "Cells with at least one pending page (live-stats walk)."},
    {"daemon.phase.ingest_us",
     "Per-slot INGEST phase time, microseconds (serialized TSC)."},
    {"daemon.phase.apply_us",
     "Per-slot APPLY phase time, microseconds (serialized TSC)."},
    {"daemon.phase.drain_us",
     "Per-slot DRAIN phase time, microseconds (serialized TSC)."},
    {"daemon.phase.finalize_us",
     "Per-slot FINALIZE phase time, microseconds (serialized TSC)."},
    {"daemon.socket.frames_in", "Frames decoded from socket clients."},
    {"daemon.socket.frames_out", "Outcome frames written to socket clients."},
    {"daemon.socket.decode_errors",
     "Client frames rejected by the decoder."},
    {"daemon.socket.rejected_ring_full",
     "Client requests rejected because the ingest ring was full."},
    {"daemon.socket.disconnects", "Client connections torn down."},
    {"daemon.socket.outbox_bytes",
     "High watermark of staged outbox bytes across connections."},
    {"sim.run.wall_ns", "Wall time spent simulating, nanoseconds."},
    {"sim.run.slots", "Slots simulated."},
    {"sim.terminal.slots", "Terminal-slots simulated."},
};

std::string escape_help(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (const char ch : help) {
    if (ch == '\\') {
      out += "\\\\";
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out += ch;
    }
  }
  return out;
}

}  // namespace

std::string prometheus_escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char ch : value) {
    if (ch == '\\') {
      out += "\\\\";
    } else if (ch == '"') {
      out += "\\\"";
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out += ch;
    }
  }
  return out;
}

std::string prometheus_help(std::string_view name) {
  for (const HelpEntry& entry : kHelpTable) {
    if (entry.name == name) return escape_help(entry.help);
  }
  return escape_help(std::string("pcn metric ") + std::string(name) + ".");
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterSample& counter : snapshot.counters) {
    const std::string name = prometheus_name(counter.name);
    out += "# HELP " + name + ' ' + prometheus_help(counter.name) + '\n';
    out += "# TYPE " + name + " counter\n";
    out += name + ' ' + std::to_string(counter.value) + '\n';
  }
  for (const GaugeSample& gauge : snapshot.gauges) {
    const std::string name = prometheus_name(gauge.name);
    out += "# HELP " + name + ' ' + prometheus_help(gauge.name) + '\n';
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ' + format_double(gauge.value) + '\n';
  }
  for (const HistogramSample& histogram : snapshot.histograms) {
    const std::string name = prometheus_name(histogram.name);
    out += "# HELP " + name + ' ' + prometheus_help(histogram.name) + '\n';
    out += "# TYPE " + name + " histogram\n";
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
      cumulative += histogram.counts[i];
      out += name + "_bucket{le=\"" +
             prometheus_escape_label_value(format_double(
                 histogram.bounds[i])) +
             "\"} " + std::to_string(cumulative) + '\n';
    }
    out += name + "_bucket{le=\"+Inf\"} " +
           std::to_string(histogram.count) + '\n';
    out += name + "_sum " + format_double(histogram.sum) + '\n';
    out += name + "_count " + std::to_string(histogram.count) + '\n';
  }
  return out;
}

namespace {

void snapshot_to_json(JsonWriter& json, const MetricsSnapshot& snapshot) {
  json.begin_object();
  json.key("counters").begin_object();
  for (const CounterSample& counter : snapshot.counters) {
    json.member(counter.name, counter.value);
  }
  json.end_object();
  json.key("gauges").begin_object();
  for (const GaugeSample& gauge : snapshot.gauges) {
    json.member(gauge.name, gauge.value);
  }
  json.end_object();
  json.key("histograms").begin_object();
  for (const HistogramSample& histogram : snapshot.histograms) {
    json.key(histogram.name).begin_object();
    json.key("bounds").begin_array();
    for (const double bound : histogram.bounds) json.value(bound);
    json.end_array();
    json.key("counts").begin_array();
    for (const std::int64_t count : histogram.counts) json.value(count);
    json.end_array();
    json.member("count", histogram.count);
    json.member("sum", histogram.sum);
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  JsonWriter json;
  snapshot_to_json(json, snapshot);
  return json.take();
}

RunReport make_run_report(const sim::Network& network) {
  RunReport report;
  const sim::NetworkConfig& config = network.config();
  report.dimension = to_string(config.dimension);
  report.semantics = config.semantics == sim::SlotSemantics::kChainFaithful
                         ? "chain-faithful"
                         : "independent";
  report.seed = config.seed;
  report.threads = config.threads;
  report.collect_runtime_stats = config.collect_runtime_stats;
  report.count_signalling_bytes = config.count_signalling_bytes;
  report.update_loss_prob = config.update_loss_prob;
  report.terminals = static_cast<int>(network.terminal_count());
  report.slots = network.now();

  std::int64_t total_slots = 0;
  double update_cost = 0.0;
  double paging_cost = 0.0;
  std::vector<std::int64_t> ring_counts;
  for (std::size_t i = 0; i < network.terminal_count(); ++i) {
    const sim::TerminalMetrics& m =
        network.metrics(static_cast<sim::TerminalId>(i));
    total_slots += m.slots;
    report.moves += m.moves;
    report.calls += m.calls;
    report.updates += m.updates;
    report.lost_updates += m.lost_updates;
    report.paging_failures += m.paging_failures;
    report.polled_cells += m.polled_cells;
    report.update_bytes += m.update_bytes;
    report.paging_bytes += m.paging_bytes;
    update_cost += m.update_cost;
    paging_cost += m.paging_cost;
    if (m.ring_distance.bucket_count() >
        static_cast<int>(ring_counts.size())) {
      ring_counts.resize(
          static_cast<std::size_t>(m.ring_distance.bucket_count()));
    }
    for (int r = 0; r < m.ring_distance.bucket_count(); ++r) {
      ring_counts[static_cast<std::size_t>(r)] += m.ring_distance.count(r);
    }
    if (m.paging_cycles.bucket_count() >
        static_cast<int>(report.paging_delay_cycles.size())) {
      report.paging_delay_cycles.resize(
          static_cast<std::size_t>(m.paging_cycles.bucket_count()));
    }
    for (int k = 0; k < m.paging_cycles.bucket_count(); ++k) {
      report.paging_delay_cycles[static_cast<std::size_t>(k)] +=
          m.paging_cycles.count(k);
    }
  }
  if (total_slots > 0) {
    report.update_cost_per_slot = update_cost / double(total_slots);
    report.paging_cost_per_slot = paging_cost / double(total_slots);
    report.total_cost_per_slot =
        report.update_cost_per_slot + report.paging_cost_per_slot;
    report.ring_occupancy.reserve(ring_counts.size());
    for (const std::int64_t count : ring_counts) {
      report.ring_occupancy.push_back(double(count) / double(total_slots));
    }
  }
  if (report.calls > 0) {
    double weighted = 0.0;
    for (std::size_t k = 0; k < report.paging_delay_cycles.size(); ++k) {
      weighted += double(k) * double(report.paging_delay_cycles[k]);
    }
    report.mean_paging_delay_cycles = weighted / double(report.calls);
    auto percentile = [&](double quantile) {
      const double target = quantile * double(report.calls);
      std::int64_t cumulative = 0;
      for (std::size_t k = 0; k < report.paging_delay_cycles.size(); ++k) {
        cumulative += report.paging_delay_cycles[k];
        if (double(cumulative) >= target) return static_cast<int>(k);
      }
      return static_cast<int>(report.paging_delay_cycles.size()) - 1;
    };
    report.delay_p50 = percentile(0.50);
    report.delay_p95 = percentile(0.95);
    report.delay_p99 = percentile(0.99);
    for (std::size_t k = 0; k < report.paging_delay_cycles.size(); ++k) {
      if (report.paging_delay_cycles[k] > 0) {
        report.delay_max = static_cast<int>(k);
      }
    }
  }

  // SLA verdicts: each terminal is judged against its own policy's bound.
  for (std::size_t i = 0; i < network.terminal_count(); ++i) {
    const auto id = static_cast<sim::TerminalId>(i);
    const DelayBound bound = network.paging_policy(id).delay_bound();
    if (bound.is_unbounded()) continue;
    if (report.sla_bound_cycles == 0 ||
        bound.cycles() < report.sla_bound_cycles) {
      report.sla_bound_cycles = bound.cycles();
    }
    const sim::TerminalMetrics& m = network.metrics(id);
    for (int k = bound.cycles() + 1; k < m.paging_cycles.bucket_count();
         ++k) {
      report.sla_violations += m.paging_cycles.count(k);
    }
  }

  report.metrics = network.metrics_registry().snapshot();
  const std::int64_t wall_ns =
      report.metrics.counter_value("sim.run.wall_ns");
  if (wall_ns > 0) {
    report.run_wall_seconds = double(wall_ns) / 1e9;
    report.slots_per_sec =
        double(report.metrics.counter_value("sim.run.slots")) /
        report.run_wall_seconds;
    report.terminal_slots_per_sec =
        double(report.metrics.counter_value("sim.terminal.slots")) /
        report.run_wall_seconds;
  }
  return report;
}

std::string to_json(const RunReport& report) {
  JsonWriter json;
  json.begin_object();
  json.member("schema", "pcn.run_report.v1");
  json.key("config").begin_object();
  json.member("dimension", report.dimension);
  json.member("semantics", report.semantics);
  json.member("seed", std::uint64_t{report.seed});
  json.member("threads", report.threads);
  json.member("collect_runtime_stats", report.collect_runtime_stats);
  json.member("count_signalling_bytes", report.count_signalling_bytes);
  json.member("update_loss_prob", report.update_loss_prob);
  json.end_object();
  json.member("terminals", report.terminals);
  json.member("slots", report.slots);
  json.key("events").begin_object();
  json.member("moves", report.moves);
  json.member("calls", report.calls);
  json.member("updates", report.updates);
  json.member("lost_updates", report.lost_updates);
  json.member("paging_failures", report.paging_failures);
  json.member("polled_cells", report.polled_cells);
  json.end_object();
  json.key("costs").begin_object();
  json.member("update_per_slot", report.update_cost_per_slot);
  json.member("paging_per_slot", report.paging_cost_per_slot);
  json.member("total_per_slot", report.total_cost_per_slot);
  json.end_object();
  json.key("bytes").begin_object();
  json.member("update", report.update_bytes);
  json.member("paging", report.paging_bytes);
  json.end_object();
  json.key("ring_occupancy").begin_array();
  for (const double fraction : report.ring_occupancy) json.value(fraction);
  json.end_array();
  json.key("paging_delay_cycles").begin_object();
  json.key("counts").begin_array();
  for (const std::int64_t count : report.paging_delay_cycles) {
    json.value(count);
  }
  json.end_array();
  json.member("mean", report.mean_paging_delay_cycles);
  json.member("p50", report.delay_p50);
  json.member("p95", report.delay_p95);
  json.member("p99", report.delay_p99);
  json.member("max", report.delay_max);
  json.end_object();
  json.key("sla").begin_object();
  json.member("bound_cycles", report.sla_bound_cycles);
  json.member("violations", report.sla_violations);
  json.end_object();
  json.key("wall").begin_object();
  json.member("run_seconds", report.run_wall_seconds);
  json.key("breakdown_seconds").begin_object();
  for (const CounterSample& counter : report.metrics.counters) {
    // Duration counters end in ".ns" or "_ns" by convention (see
    // docs/observability.md); strip the unit for the per-phase breakdown.
    if (counter.name.size() > 3 &&
        (counter.name.compare(counter.name.size() - 3, 3, ".ns") == 0 ||
         counter.name.compare(counter.name.size() - 3, 3, "_ns") == 0)) {
      json.member(counter.name.substr(0, counter.name.size() - 3),
                  double(counter.value) / 1e9);
    }
  }
  json.end_object();
  json.end_object();
  json.key("throughput").begin_object();
  json.member("slots_per_sec", report.slots_per_sec);
  json.member("terminal_slots_per_sec", report.terminal_slots_per_sec);
  json.end_object();
  json.key("metrics");
  snapshot_to_json(json, report.metrics);
  json.end_object();
  return json.take();
}

bool write_file(const std::string& path, std::string_view contents,
                std::string* error) {
  if (path == "-") {
    std::fwrite(contents.data(), 1, contents.size(), stdout);
    return true;
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = "cannot open '" + path + "' for writing: " +
               std::strerror(errno);
    }
    return false;
  }
  const std::size_t written =
      std::fwrite(contents.data(), 1, contents.size(), file);
  const bool flushed = std::fclose(file) == 0;
  if (written != contents.size() || !flushed) {
    if (error != nullptr) *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::string* out,
               std::string* error) {
  std::FILE* file = path == "-" ? stdin : std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = "cannot open '" + path + "' for reading: " +
               std::strerror(errno);
    }
    return false;
  }
  out->clear();
  char buffer[1 << 16];
  std::size_t read;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out->append(buffer, read);
  }
  const bool failed = std::ferror(file) != 0;
  if (file != stdin) std::fclose(file);
  if (failed) {
    if (error != nullptr) *error = "read error on '" + path + "'";
    return false;
  }
  return true;
}

}  // namespace pcn::obs
