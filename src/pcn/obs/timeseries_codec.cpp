#include "pcn/obs/timeseries_codec.hpp"

#include <bit>
#include <cstring>
#include <utility>

#include "pcn/obs/report.hpp"
#include "pcn/proto/wire.hpp"

namespace pcn::obs {
namespace {

constexpr std::string_view kSchema = "pcn.timeseries.v1";

std::span<const std::uint8_t> as_bytes(std::string_view text) {
  return {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()};
}

void put_f64(proto::WireWriter& writer, double value) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  for (int shift = 0; shift < 64; shift += 8) {
    writer.put_u8(static_cast<std::uint8_t>(bits >> shift));
  }
}

double get_f64(proto::WireReader& reader) {
  std::uint64_t bits = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    bits |= static_cast<std::uint64_t>(reader.get_u8()) << shift;
  }
  return std::bit_cast<double>(bits);
}

/// Zigzag delta-encode a column: first value absolute, then deltas.  Small
/// monotone counters (the common case) collapse to one or two bytes per
/// sample.
void put_delta_column(proto::WireWriter& writer,
                      const std::vector<std::int64_t>& column) {
  std::int64_t previous = 0;
  for (const std::int64_t value : column) {
    writer.put_signed(value - previous);
    previous = value;
  }
}

std::vector<std::int64_t> get_delta_column(proto::WireReader& reader,
                                           std::size_t count) {
  std::vector<std::int64_t> column;
  column.reserve(count);
  std::int64_t previous = 0;
  for (std::size_t i = 0; i < count; ++i) {
    previous += reader.get_signed();
    column.push_back(previous);
  }
  return column;
}

/// A varint count that implies more payload than remains in the buffer is
/// corruption; fail before it can drive an allocation.
std::size_t get_count(proto::WireReader& reader, std::size_t min_bytes_each,
                      std::string_view what) {
  const std::uint64_t count = reader.get_varint();
  if (min_bytes_each > 0 && count > reader.remaining() / min_bytes_each) {
    throw proto::DecodeError(std::string("timeseries: implausible ") +
                             std::string(what) + " count");
  }
  return static_cast<std::size_t>(count);
}

}  // namespace

std::vector<std::uint8_t> encode_timeseries(const Timeseries& series) {
  proto::WireWriter writer;
  writer.put_bytes(as_bytes(kSchema));
  writer.put_varint(static_cast<std::uint64_t>(series.every_slots));
  const std::size_t samples = series.slots.size();
  writer.put_varint(samples);
  put_delta_column(writer, series.slots);
  writer.put_varint(series.series.size());
  for (const Timeseries::Series& s : series.series) {
    writer.put_bytes(as_bytes(s.name));
    writer.put_u8(static_cast<std::uint8_t>(s.kind));
    if (s.kind == SeriesKind::kHistogram) {
      writer.put_varint(s.bounds.size());
      for (const double bound : s.bounds) put_f64(writer, bound);
    }
  }
  for (std::size_t index = 0; index < series.series.size(); ++index) {
    const Timeseries::Series& s = series.series[index];
    writer.put_varint(index);
    switch (s.kind) {
      case SeriesKind::kCounter:
        put_delta_column(writer, s.values);
        break;
      case SeriesKind::kGauge:
        for (const double value : s.dvalues) put_f64(writer, value);
        break;
      case SeriesKind::kHistogram:
        put_delta_column(writer, s.counts);
        for (const double sum : s.dvalues) put_f64(writer, sum);
        for (const std::vector<std::int64_t>& column : s.bucket_columns) {
          put_delta_column(writer, column);
        }
        break;
    }
  }
  const std::uint32_t crc = proto::crc32(writer.buffer());
  for (int shift = 0; shift < 32; shift += 8) {
    writer.put_u8(static_cast<std::uint8_t>(crc >> shift));
  }
  return writer.take();
}

Timeseries decode_timeseries(std::span<const std::uint8_t> bytes) {
  // Integrity first: the CRC trailer covers every byte before it, so any
  // truncation or bit flip is rejected here, before a single corrupted
  // length can reach an allocation.
  if (bytes.size() < 4) {
    throw proto::DecodeError("timeseries: shorter than its CRC trailer");
  }
  const std::span<const std::uint8_t> body = bytes.first(bytes.size() - 4);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(bytes[body.size() + i]) << (8 * i);
  }
  if (proto::crc32(body) != stored) {
    throw proto::DecodeError("timeseries: CRC mismatch (corrupt file)");
  }

  proto::WireReader reader(body);
  const std::vector<std::uint8_t> schema = reader.get_bytes();
  if (std::string_view(reinterpret_cast<const char*>(schema.data()),
                       schema.size()) != kSchema) {
    throw proto::DecodeError("timeseries: schema is not pcn.timeseries.v1");
  }
  Timeseries out;
  out.every_slots = static_cast<std::int64_t>(reader.get_varint());
  const std::size_t samples = get_count(reader, 1, "sample");
  out.slots = get_delta_column(reader, samples);
  for (std::size_t i = 1; i < out.slots.size(); ++i) {
    if (out.slots[i] <= out.slots[i - 1]) {
      throw proto::DecodeError("timeseries: slot column not increasing");
    }
  }
  const std::size_t series_count = get_count(reader, 2, "series");
  out.series.resize(series_count);
  for (Timeseries::Series& s : out.series) {
    const std::vector<std::uint8_t> name = reader.get_bytes();
    s.name.assign(reinterpret_cast<const char*>(name.data()), name.size());
    const std::uint8_t kind = reader.get_u8();
    if (kind > static_cast<std::uint8_t>(SeriesKind::kHistogram)) {
      throw proto::DecodeError("timeseries: unknown series kind");
    }
    s.kind = static_cast<SeriesKind>(kind);
    if (s.kind == SeriesKind::kHistogram) {
      const std::size_t bounds = get_count(reader, 8, "bound");
      s.bounds.reserve(bounds);
      for (std::size_t i = 0; i < bounds; ++i) {
        s.bounds.push_back(get_f64(reader));
      }
    }
  }
  std::vector<bool> seen(series_count, false);
  for (std::size_t block = 0; block < series_count; ++block) {
    const std::uint64_t index = reader.get_varint();
    if (index >= series_count) {
      throw proto::DecodeError(
          "timeseries: column block series index out of range");
    }
    if (seen[static_cast<std::size_t>(index)]) {
      throw proto::DecodeError(
          "timeseries: duplicate column block for series");
    }
    seen[static_cast<std::size_t>(index)] = true;
    Timeseries::Series& s = out.series[static_cast<std::size_t>(index)];
    switch (s.kind) {
      case SeriesKind::kCounter:
        s.values = get_delta_column(reader, samples);
        break;
      case SeriesKind::kGauge:
        s.dvalues.reserve(samples);
        for (std::size_t i = 0; i < samples; ++i) {
          s.dvalues.push_back(get_f64(reader));
        }
        break;
      case SeriesKind::kHistogram:
        s.counts = get_delta_column(reader, samples);
        s.dvalues.reserve(samples);
        for (std::size_t i = 0; i < samples; ++i) {
          s.dvalues.push_back(get_f64(reader));
        }
        s.bucket_columns.resize(s.bounds.size() + 1);
        for (std::vector<std::int64_t>& column : s.bucket_columns) {
          column = get_delta_column(reader, samples);
        }
        break;
    }
  }
  reader.expect_exhausted();
  return out;
}

std::string encode_timeseries_string(const Timeseries& series) {
  const std::vector<std::uint8_t> bytes = encode_timeseries(series);
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

Timeseries decode_timeseries_string(std::string_view bytes) {
  return decode_timeseries(as_bytes(bytes));
}

bool write_timeseries_file(const std::string& path, const Timeseries& series,
                           std::string* error) {
  return write_file(path, encode_timeseries_string(series), error);
}

bool read_timeseries_file(const std::string& path, Timeseries* out,
                          std::string* error) {
  std::string contents;
  if (!read_file(path, &contents, error)) return false;
  try {
    *out = decode_timeseries_string(contents);
  } catch (const proto::DecodeError& decode_error) {
    if (error != nullptr) *error = decode_error.what();
    return false;
  }
  return true;
}

}  // namespace pcn::obs
