// Per-call flight recorder: a structured, low-overhead event log capturing
// the causal lifecycle of every incoming call — arrival, each polling
// cycle (which rings were swept, how many cells, what it cost), the
// located/answered event — interleaved with the location-update and
// residing-area-reset events that explain *why* the network's knowledge
// looked the way it did when the call arrived.
//
// Recording design.  The simulator appends events into per-worker-shard
// buffers that are preallocated up front (`FlightRecorderConfig::
// shard_capacity`), so the hot path never allocates and shards never share
// a cache line; a full shard drops further events and counts them instead
// of blocking.  Every event carries a (slot, terminal, seq) key — `seq`
// numbers the events a terminal emits within one slot — and terminals are
// fully independent, so the union of shard buffers is the same set of
// events at every worker-thread count.  `merged()` sorts by that key,
// making the merged recording (and everything exported from it) bit-
// identical at 1 or N threads whenever no events were dropped.
//
// Sampling.  With `sample_every = N`, 1 in N call lifecycles per terminal
// is recorded (selected by the terminal's own monotone call ordinal, so
// the choice is deterministic and thread-count independent), and likewise
// 1 in N location-update events.  Counts in the metrics registry stay
// exact; the recording is an unbiased 1/N sample of the per-call detail.
//
// This header is sim-agnostic on purpose (plain integer fields), sitting
// next to metrics.hpp / timer.hpp below the simulator; the simulator-side
// wiring lives in sim/network.cpp and the exporters in trace_export.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace pcn::obs {

/// What happened; field semantics per type are documented on FlightEvent.
enum class FlightEventType : std::uint8_t {
  kCallArrival = 0,     ///< incoming call hit the paging machinery
  kPollCycle = 1,       ///< one polling cycle swept a group of cells
  kCallFound = 2,       ///< terminal answered; the call lifecycle closes
  kPageFallback = 3,    ///< schedule exhausted; expanding-ring recovery
  kLocationUpdate = 4,  ///< terminal sent a location update (delivered)
  kUpdateLost = 5,      ///< terminal sent an update that was lost
  kAreaReset = 6,       ///< knowledge center/radius reset (update or page)
  // Daemon (pcnd) bounded-paging-queue lifecycle events:
  kPageQueued = 7,      ///< page accepted onto a cell's bounded queue
  kPageServed = 8,      ///< page drained onto the paging channel
  kPageDropped = 9,     ///< page rejected at enqueue (queue full)
  kPageExpired = 10,    ///< page lifetime elapsed while still queued
};

/// Stable wire name ("call_arrival", "poll_cycle", ...).
std::string_view to_string(FlightEventType type);
/// Inverse of to_string; returns false for unknown names.
bool parse_flight_event_type(std::string_view name, FlightEventType* out);

/// One recorded event.  The (slot, terminal, seq) triple is a unique,
/// thread-count-independent total order.  Field use per type:
///   kCallArrival    call, distance = terminal's actual ring distance from
///                   the knowledge center, cells = containment radius the
///                   schedule will cover (where paging looks first).
///   kPollCycle      call, cycle (0-based), cells = cells swept, cost =
///                   poll cost accrued, ring_lo/ring_hi = nearest/farthest
///                   ring polled, found = terminal was in this group.
///   kCallFound      call, cycle = cycles used (1-based count), cells /
///                   cost = totals across the call, distance = arrival
///                   distance, found = located by the normal schedule
///                   (false when expanding-ring recovery was needed).
///   kPageFallback   call, cycle = first recovery cycle, distance = stale
///                   containment radius that missed the terminal.
///   kLocationUpdate cost = update cost U, distance = ring distance from
///                   the previous knowledge center.
///   kUpdateLost     same fields; the frame never reached the network.
///   kAreaReset      cells = new containment radius (center is now the
///                   terminal's cell; distance resets to 0).
///   kPageQueued     call = page id, cells = queue depth after enqueue,
///                   distance = paging group the page joined.
///   kPageServed     call = page id, cycle = queueing delay in slots,
///                   cells = queue depth before the drain, found = true.
///   kPageDropped    call = page id, cells = queue depth (== its bound),
///                   found = false (the page never reached the channel).
///   kPageExpired    call = page id, cycle = age in slots at expiry,
///                   found = false.
struct FlightEvent {
  std::int64_t slot = 0;
  std::int64_t terminal = 0;
  std::uint32_t seq = 0;  ///< order within (terminal, slot)
  FlightEventType type = FlightEventType::kCallArrival;
  std::uint64_t call = 0;  ///< per-terminal call ordinal (call events only)
  std::int32_t cycle = -1;
  std::int64_t cells = 0;
  double cost = 0.0;
  std::int32_t ring_lo = -1;
  std::int32_t ring_hi = -1;
  std::int64_t distance = -1;
  bool found = false;

  friend bool operator==(const FlightEvent&, const FlightEvent&) = default;
};

struct FlightRecorderConfig {
  /// Record 1 in N call lifecycles and 1 in N update events per terminal
  /// (N = 1 records everything).  Selection uses per-terminal ordinals, so
  /// it is deterministic at any thread count.
  std::uint64_t sample_every = 8;
  /// Events preallocated per worker shard; a full shard drops (and
  /// counts) further events rather than reallocating on the hot path.
  std::size_t shard_capacity = std::size_t{1} << 16;
};

class FlightRecorder {
 public:
  /// One worker's preallocated append-only log.  Only its owning worker
  /// writes it; the recorder reads it after the workers joined.
  class Shard {
   public:
    void append(const FlightEvent& event) noexcept {
      if (events_.size() < events_.capacity()) {
        events_.push_back(event);
      } else {
        ++dropped_;
      }
    }
    const std::vector<FlightEvent>& events() const { return events_; }
    std::uint64_t dropped() const { return dropped_; }

   private:
    friend class FlightRecorder;
    std::vector<FlightEvent> events_;
    std::uint64_t dropped_ = 0;
  };

  explicit FlightRecorder(FlightRecorderConfig config = {});

  const FlightRecorderConfig& config() const { return config_; }

  /// Whether the lifecycle with per-terminal ordinal `ordinal` is sampled.
  bool sampled(std::uint64_t ordinal) const {
    return ordinal % config_.sample_every == 0;
  }

  /// Preallocates shards [0, count); existing shards are kept.  Call
  /// before worker threads start (not thread-safe against shard()).
  void ensure_shards(std::size_t count);

  /// Shard `index` (must be < the count passed to ensure_shards).
  Shard& shard(std::size_t index) { return *shards_[index]; }

  std::size_t shard_count() const { return shards_.size(); }

  /// Events retained / dropped across all shards.
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  /// All retained events in (slot, terminal, seq) order — deterministic
  /// for every worker-thread count as long as dropped() == 0.
  std::vector<FlightEvent> merged() const;

  /// Drops every retained event and resets the drop counters (the shard
  /// buffers keep their preallocated capacity).
  void clear();

 private:
  FlightRecorderConfig config_;
  /// unique_ptr per shard: node-stable addresses let workers hold a plain
  /// Shard* while ensure_shards grows the vector between runs.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pcn::obs
