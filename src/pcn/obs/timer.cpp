#include "pcn/obs/timer.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "pcn/common/error.hpp"

namespace pcn::obs {

std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(round_up_pow2(capacity == 0 ? 1 : capacity)),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void TraceRing::record(const char* name, std::int64_t start_ns,
                       std::int64_t duration_ns,
                       std::uint32_t shard) noexcept {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & (capacity_ - 1)];
  // Mark the slot in-flight (odd), write the fields, then publish the even
  // generation ticket with release so recent() can detect torn rewrites.
  slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  slot.shard.store(shard, std::memory_order_relaxed);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<TraceSpan> TraceRing::recent() const {
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  std::vector<TraceSpan> spans;
  spans.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t ticket = begin; ticket < end; ++ticket) {
    const Slot& slot = slots_[ticket & (capacity_ - 1)];
    if (slot.seq.load(std::memory_order_acquire) != 2 * ticket + 2) {
      continue;  // being rewritten by a newer span (or not yet published)
    }
    TraceSpan span;
    span.name = slot.name.load(std::memory_order_relaxed);
    span.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    span.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    span.shard = slot.shard.load(std::memory_order_relaxed);
    if (slot.seq.load(std::memory_order_acquire) != 2 * ticket + 2) {
      continue;  // rewritten underneath the copy; drop the torn span
    }
    spans.push_back(span);
  }
  return spans;
}

std::string TraceRing::format() const {
  std::string out;
  char line[160];
  for (const TraceSpan& span : recent()) {
    std::snprintf(line, sizeof(line),
                  "  %-20s shard=%2" PRIu32 " start=%" PRId64
                  "ns dur=%" PRId64 "ns\n",
                  span.name, span.shard, span.start_ns, span.duration_ns);
    out += line;
  }
  return out;
}

}  // namespace pcn::obs
