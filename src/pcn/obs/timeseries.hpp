// Run timelines: a deterministic in-run time-series recorder over the
// metrics registry, plus changepoint analytics on the captured series.
//
// A TimeseriesRecorder samples a MetricsSnapshot every N *slots* — never
// wall-clock — into preallocated per-series columns.  Because samples are
// keyed by simulated slot and taken at points where every engine has
// flushed its per-shard scratch state, the captured history is
// bit-identical at any thread count.  Series whose values are inherently
// thread- or wall-clock-dependent (duration counters, sampled cycle
// tallies, the parallel-segment count) are filtered out of the recording
// by name, so the determinism contract holds for every retained column.
//
// The in-memory model (`Timeseries`) is columnar: one slot column plus one
// value column per series (histograms carry one column per bucket, in
// parallel).  timeseries_codec.hpp serialises it as the compact
// `pcn.timeseries.v1` binary format; `pcnctl timeline` replays it through
// RollingWindow delta math and the CUSUM detector below.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pcn/obs/metrics.hpp"

namespace pcn::obs {

/// Which registry kind a recorded series mirrors.  Values are part of the
/// pcn.timeseries.v1 wire format — do not renumber.
enum class SeriesKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

/// A captured run timeline: one slot column and a fixed dictionary of
/// series, each holding one value per sample.  All per-sample vectors are
/// parallel to `slots`.
struct Timeseries {
  struct Series {
    std::string name;
    SeriesKind kind = SeriesKind::kCounter;
    /// Histogram bucket upper bounds (empty for counters and gauges).
    std::vector<double> bounds;
    /// Counter values, one per sample (kCounter only).
    std::vector<std::int64_t> values;
    /// Gauge values (kGauge) or histogram sums (kHistogram), per sample.
    std::vector<double> dvalues;
    /// Histogram total counts per sample (kHistogram only).
    std::vector<std::int64_t> counts;
    /// Histogram buckets: bounds.size() + 1 columns, each one value per
    /// sample (kHistogram only).
    std::vector<std::vector<std::int64_t>> bucket_columns;
  };

  /// Sampling cadence the recorder was configured with (slots between
  /// samples); informational, preserved by the codec.
  std::int64_t every_slots = 0;
  /// Slot index of each sample, strictly increasing.
  std::vector<std::int64_t> slots;
  /// Fixed dictionary, ordered as first captured (registry snapshot order:
  /// counters, then gauges, then histograms, each sorted by name).
  std::vector<Series> series;

  std::size_t sample_count() const { return slots.size(); }
  /// Linear scan by name (series counts are small); nullptr when absent.
  const Series* find(std::string_view name) const;
  /// Reconstruct the MetricsSnapshot recorded at sample `index` (sorted by
  /// name per kind, like MetricsRegistry::snapshot()).  Out-of-range
  /// indices return an empty snapshot.
  MetricsSnapshot snapshot_at(std::size_t index) const;
};

/// True when `name` is stable across thread counts and may be recorded.
/// Filters duration counters (`*_ns`, `*_us`) and the known sampled /
/// scheduling-dependent simulator series.
bool timeseries_series_is_deterministic(std::string_view name);

/// Samples a registry into a Timeseries.  The series dictionary is fixed
/// by the first sample: metrics registered after that are ignored, so
/// every column stays parallel to the slot column.
class TimeseriesRecorder {
 public:
  /// `every_slots` is the intended cadence (recorded into the output;
  /// callers drive the actual sampling).  `max_samples` > 0 bounds the
  /// recording to the most recent samples (a live tail ring for serve
  /// mode); 0 keeps everything.
  explicit TimeseriesRecorder(std::int64_t every_slots,
                              std::size_t max_samples = 0);

  /// Preallocate columns for `expected_samples` (cheap insurance against
  /// mid-run reallocation; safe to skip).
  void reserve(std::size_t expected_samples);

  /// Record `snapshot` at `slot`.  Returns false (and records nothing)
  /// when `slot` is not newer than the last recorded sample, so callers
  /// with overlapping sample triggers stay idempotent.
  bool sample(std::int64_t slot, const MetricsSnapshot& snapshot);

  std::size_t sample_count() const { return data_.sample_count(); }
  std::int64_t every_slots() const { return data_.every_slots; }
  const Timeseries& data() const { return data_; }

 private:
  void fix_dictionary(const MetricsSnapshot& snapshot);
  void trim_to_max();

  std::size_t max_samples_;
  Timeseries data_;
};

// --- Changepoint detection ---------------------------------------------------

/// CUSUM configuration for detect_upward_shift().
struct ChangepointConfig {
  /// Samples that define the pre-change baseline (clamped to
  /// [1, n/2] for an n-sample series).
  std::size_t baseline_samples = 8;
  /// Slack subtracted per step, in baseline scales: shifts smaller than
  /// this drift never accumulate.
  double drift_sigmas = 0.5;
  /// Cumulative score, in baseline scales, at which a shift is declared.
  double threshold_sigmas = 8.0;
};

/// Result of a one-sided (upward) CUSUM scan.
struct Changepoint {
  bool detected = false;
  std::int64_t onset_slot = -1;   ///< slot of the first sample at/after onset
  std::size_t onset_index = 0;    ///< index into the scanned series
  double baseline_mean = 0.0;
  double scale = 0.0;             ///< sigma estimate the scores are scaled by
  double peak_score = 0.0;        ///< maximum cumulative score reached
};

/// One-sided CUSUM over `values` (parallel to `slots`): accumulates
/// positive deviations from the baseline mean in units of the baseline
/// scale and reports the first sample where the cumulative score crosses
/// the threshold.  The scale is floored relative to the series magnitude
/// so a zero-variance baseline (the usual pre-overload case: a flat zero
/// drop rate) still detects a later step, while an all-zero series never
/// fires.
Changepoint detect_upward_shift(std::span<const std::int64_t> slots,
                                std::span<const double> values,
                                const ChangepointConfig& config = {});

}  // namespace pcn::obs
