#include "pcn/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "pcn/common/error.hpp"

namespace pcn::obs {
namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') ||
                    ch == '_' || ch == '.';
    if (!ok) return false;
  }
  return name.front() != '.' && name.back() != '.';
}

/// Relaxed-sum over a metric's shard cells.
std::int64_t sum_cells(const detail::Cell* cells) {
  std::int64_t total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    total += cells[s].value.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace

std::int64_t Counter::value() const noexcept {
  return impl_ == nullptr ? 0 : sum_cells(impl_->cells);
}

void Histogram::observe(double value, std::size_t shard) noexcept {
  if (impl_ == nullptr) return;
  // First bucket with value <= bound (le semantics); overflow otherwise.
  const auto it = std::lower_bound(impl_->bounds.begin(), impl_->bounds.end(),
                                   value);
  const auto bucket =
      static_cast<std::size_t>(it - impl_->bounds.begin());
  const std::size_t cell = shard & kShardMask;
  impl_->cells[bucket * kShards + cell].value.fetch_add(
      1, std::memory_order_relaxed);
  // GCC/libstdc++ implement the C++20 floating-point fetch_add with a CAS
  // loop; contention is already avoided by the per-shard cell.
  impl_->sums[cell].value.fetch_add(value, std::memory_order_relaxed);
}

std::int64_t Histogram::count() const noexcept {
  if (impl_ == nullptr) return 0;
  std::int64_t total = 0;
  for (const detail::Cell& cell : impl_->cells) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const noexcept {
  if (impl_ == nullptr) return 0.0;
  double total = 0.0;
  for (const detail::HistogramImpl::SumCell& cell : impl_->sums) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

namespace {

template <typename Sample>
const Sample* find_by_name(const std::vector<Sample>& samples,
                           std::string_view name) {
  for (const Sample& sample : samples) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

}  // namespace

const CounterSample* MetricsSnapshot::find_counter(
    std::string_view name) const {
  return find_by_name(counters, name);
}

const GaugeSample* MetricsSnapshot::find_gauge(std::string_view name) const {
  return find_by_name(gauges, name);
}

const HistogramSample* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  return find_by_name(histograms, name);
}

std::int64_t MetricsSnapshot::counter_value(std::string_view name) const {
  const CounterSample* sample = find_counter(name);
  return sample == nullptr ? 0 : sample->value;
}

/// Node-stable storage: deques never relocate existing metrics, so handles
/// and in-flight writers stay valid while new metrics register.
struct MetricsRegistry::Impl {
  mutable std::mutex mutex;  ///< guards registration and enumeration only
  std::deque<detail::CounterImpl> counters;
  std::deque<detail::GaugeImpl> gauges;
  std::deque<detail::HistogramImpl> histograms;
  std::unordered_map<std::string, detail::CounterImpl*> counter_index;
  std::unordered_map<std::string, detail::GaugeImpl*> gauge_index;
  std::unordered_map<std::string, detail::HistogramImpl*> histogram_index;
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

Counter MetricsRegistry::counter(std::string_view name) {
  PCN_EXPECT(valid_metric_name(name),
             "MetricsRegistry::counter: names are non-empty dotted "
             "lowercase paths over [a-z0-9_.]");
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->counter_index.find(std::string(name));
  if (it != impl_->counter_index.end()) return Counter(it->second);
  detail::CounterImpl& impl = impl_->counters.emplace_back();
  impl.name = std::string(name);
  impl_->counter_index.emplace(impl.name, &impl);
  return Counter(&impl);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  PCN_EXPECT(valid_metric_name(name),
             "MetricsRegistry::gauge: names are non-empty dotted "
             "lowercase paths over [a-z0-9_.]");
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->gauge_index.find(std::string(name));
  if (it != impl_->gauge_index.end()) return Gauge(it->second);
  detail::GaugeImpl& impl = impl_->gauges.emplace_back();
  impl.name = std::string(name);
  impl_->gauge_index.emplace(impl.name, &impl);
  return Gauge(&impl);
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds) {
  PCN_EXPECT(valid_metric_name(name),
             "MetricsRegistry::histogram: names are non-empty dotted "
             "lowercase paths over [a-z0-9_.]");
  PCN_EXPECT(!bounds.empty(),
             "MetricsRegistry::histogram: need at least one bucket bound");
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    PCN_EXPECT(std::isfinite(bounds[i]),
               "MetricsRegistry::histogram: bounds must be finite");
    PCN_EXPECT(i == 0 || bounds[i - 1] < bounds[i],
               "MetricsRegistry::histogram: bounds must be strictly "
               "increasing");
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->histogram_index.find(std::string(name));
  if (it != impl_->histogram_index.end()) {
    PCN_EXPECT(it->second->bounds == bounds,
               "MetricsRegistry::histogram: re-registration with different "
               "bucket bounds");
    return Histogram(it->second);
  }
  detail::HistogramImpl& impl = impl_->histograms.emplace_back();
  impl.name = std::string(name);
  impl.bounds = std::move(bounds);
  // Constructed once at registration and never resized: the cell arrays
  // must stay put for lock-free writers.
  impl.cells = std::vector<detail::Cell>((impl.bounds.size() + 1) * kShards);
  impl.sums = std::vector<detail::HistogramImpl::SumCell>(kShards);
  impl_->histogram_index.emplace(impl.name, &impl);
  return Histogram(&impl);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  out.counters.reserve(impl_->counters.size());
  for (const detail::CounterImpl& counter : impl_->counters) {
    out.counters.push_back({counter.name, sum_cells(counter.cells)});
  }
  out.gauges.reserve(impl_->gauges.size());
  for (const detail::GaugeImpl& gauge : impl_->gauges) {
    out.gauges.push_back(
        {gauge.name, gauge.value.load(std::memory_order_relaxed)});
  }
  out.histograms.reserve(impl_->histograms.size());
  for (const detail::HistogramImpl& histogram : impl_->histograms) {
    HistogramSample sample;
    sample.name = histogram.name;
    sample.bounds = histogram.bounds;
    sample.counts.resize(histogram.bounds.size() + 1);
    for (std::size_t bucket = 0; bucket < sample.counts.size(); ++bucket) {
      sample.counts[bucket] = sum_cells(&histogram.cells[bucket * kShards]);
      sample.count += sample.counts[bucket];
    }
    for (const detail::HistogramImpl::SumCell& cell : histogram.sums) {
      sample.sum += cell.value.load(std::memory_order_relaxed);
    }
    out.histograms.push_back(std::move(sample));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->counters.size() + impl_->gauges.size() +
         impl_->histograms.size();
}

std::vector<double> exponential_buckets(double start, double factor,
                                        int count) {
  PCN_EXPECT(start > 0.0 && factor > 1.0 && count >= 1,
             "exponential_buckets: need start > 0, factor > 1, count >= 1");
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> linear_buckets(double start, double width, int count) {
  PCN_EXPECT(width > 0.0 && count >= 1,
             "linear_buckets: need width > 0 and count >= 1");
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    bounds.push_back(start + width * i);
  }
  return bounds;
}

}  // namespace pcn::obs
